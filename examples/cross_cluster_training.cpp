/// Cross-cluster training (paper §2.2, case 2): two GPU clusters at
/// different locations, each internally RDMA-capable, joined only by
/// commodity Ethernet. The example walks through why pipeline parallelism
/// is the right dimension to stretch across the slow link, quantifying the
/// traffic each parallel dimension would put on it.

#include <iostream>

#include "core/experiment.h"
#include "util/table.h"
#include "util/units.h"

using namespace holmes;
using namespace holmes::core;

int main() {
  // Two InfiniBand clusters, 2 nodes each, no shared high-speed switch —
  // e.g. two pods in different buildings.
  const net::Topology topo =
      net::Topology::split_clusters(/*nodes_per_cluster=*/2,
                                    net::NicType::kInfiniBand);
  const model::ParameterGroup& workload = model::parameter_group(3);  // 7.5B

  // ---- Why pipeline parallelism crosses the slow link ----
  // Per iteration and device pair, the dimensions move very different
  // volumes. Data parallelism synchronizes full gradients; pipeline
  // parallelism only passes micro-batch activations.
  const Planner planner(FrameworkConfig::holmes());
  const TrainingPlan plan = planner.plan(topo, workload);
  const CostModel cost;

  const double stage_params = workload.config.layer_parameters() *
                              plan.partition[0] /
                              plan.degrees.tensor;
  const Bytes dp_bytes =
      static_cast<Bytes>(stage_params * cost.grad_bytes_per_param);
  const Bytes pp_bytes =
      workload.config.activation_bytes(workload.micro_batch_size) *
      plan.micro_batches * 2;  // forward + backward per boundary

  std::cout << "Per-iteration traffic a single device pair would put on the "
               "inter-cluster link:\n"
            << "  data parallel (gradient sync): " << format_bytes(dp_bytes)
            << "\n"
            << "  pipeline parallel (activations, all micro-batches): "
            << format_bytes(pp_bytes) << "\n\n";

  // Holmes therefore places pipeline stages across the clusters: stage 0 in
  // cluster A, stage 1 in cluster B; every DP ring stays inside one cluster
  // on InfiniBand.
  std::cout << "Stage placement:";
  const auto clusters = parallel::stage_clusters(plan.groups, topo);
  for (std::size_t s = 0; s < clusters.size(); ++s) {
    std::cout << " stage" << s << "->"
              << (clusters[s] >= 0 ? topo.cluster(clusters[s]).name : "mixed");
  }
  std::cout << "\n\n";

  // ---- Performance: the paper's Fig. 4 comparison for this workload ----
  TextTable table({"Environment", "TFLOPS", "Throughput"});
  struct Row {
    const char* label;
    NicEnv env;
  };
  for (const Row& row :
       {Row{"InfiniBand (one switched cluster; upper bound)", NicEnv::kInfiniBand},
        Row{"InfiniBand & Ethernet (this example)", NicEnv::kSplitIB},
        Row{"Ethernet only (lower bound)", NicEnv::kEthernet}}) {
    const IterationMetrics m =
        run_experiment(FrameworkConfig::holmes(), row.env, 4, 3);
    table.add_row({row.label, TextTable::num(m.tflops_per_gpu, 0),
                   TextTable::num(m.throughput, 2)});
  }
  table.print();

  std::cout << "\nTwo stranded clusters recover most of the single-cluster "
               "performance without any new interconnect.\n";
  return 0;
}
