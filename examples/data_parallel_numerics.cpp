/// Data-parallel numerics end to end: trains a tiny linear regression with
/// the library's *real* collective algorithms and optimizer math, the exact
/// flow a distributed optimizer runs per iteration:
///
///   per-rank gradient -> ring reduce-scatter -> shard-local Adam update ->
///   ring all-gather of parameters
///
/// Four simulated data-parallel ranks each hold a quarter of the dataset.
/// The loss printed every few epochs converges to ~0, demonstrating that
/// the step programs driving the timing simulation are numerically the
/// genuine NCCL-style algorithms.

#include <cstdio>
#include <vector>

#include "comm/communicator.h"
#include "optimizer/adam.h"
#include "util/rng.h"

using namespace holmes;

namespace {

constexpr int kRanks = 4;
constexpr int kFeatures = 8;
constexpr int kSamplesPerRank = 32;

struct Shard {
  std::vector<std::vector<float>> x;  // samples
  std::vector<float> y;               // targets
};

}  // namespace

int main() {
  // Ground-truth weights the model must recover.
  std::vector<float> truth(kFeatures);
  Rng rng(2024);
  for (auto& w : truth) w = static_cast<float>(rng.uniform(-2.0, 2.0));

  // Partition a synthetic dataset across the data-parallel ranks.
  std::vector<Shard> shards(kRanks);
  for (auto& shard : shards) {
    for (int i = 0; i < kSamplesPerRank; ++i) {
      std::vector<float> x(kFeatures);
      float target = 0;
      for (int f = 0; f < kFeatures; ++f) {
        x[static_cast<std::size_t>(f)] = static_cast<float>(rng.uniform(-1, 1));
        target += x[static_cast<std::size_t>(f)] *
                  truth[static_cast<std::size_t>(f)];
      }
      shard.x.push_back(std::move(x));
      shard.y.push_back(target);
    }
  }

  // Every rank holds the replicated parameters; optimizer state exists only
  // for the rank's owned reduce-scatter shard (ZeRO-1 layout).
  std::vector<float> params(kFeatures, 0.0f);
  const comm::ChunkLayout layout(kFeatures, kRanks);
  std::vector<std::vector<float>> m_state(kRanks), v_state(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    const int chunk = comm::ring_owned_chunk(kRanks, r);
    m_state[static_cast<std::size_t>(r)].assign(
        static_cast<std::size_t>(layout.count(chunk)), 0.0f);
    v_state[static_cast<std::size_t>(r)] = m_state[static_cast<std::size_t>(r)];
  }

  optimizer::AdamParams hp;
  hp.lr = 0.05;

  std::printf("epoch    loss\n");
  for (long epoch = 1; epoch <= 60; ++epoch) {
    // Each rank: replicate params, compute its local MSE gradient.
    std::vector<std::vector<float>> grads(
        kRanks, std::vector<float>(kFeatures, 0.0f));
    double loss = 0;
    for (int r = 0; r < kRanks; ++r) {
      const Shard& shard = shards[static_cast<std::size_t>(r)];
      for (int i = 0; i < kSamplesPerRank; ++i) {
        float pred = 0;
        for (int f = 0; f < kFeatures; ++f) {
          pred += shard.x[static_cast<std::size_t>(i)][static_cast<std::size_t>(f)] *
                  params[static_cast<std::size_t>(f)];
        }
        const float err = pred - shard.y[static_cast<std::size_t>(i)];
        loss += err * err;
        for (int f = 0; f < kFeatures; ++f) {
          grads[static_cast<std::size_t>(r)][static_cast<std::size_t>(f)] +=
              2.0f * err *
              shard.x[static_cast<std::size_t>(i)][static_cast<std::size_t>(f)] /
              (kRanks * kSamplesPerRank);
        }
      }
    }
    loss /= kRanks * kSamplesPerRank;

    // Gradient reduce-scatter: afterwards each rank's owned chunk holds the
    // sum over ranks (the real ring algorithm, not a shortcut).
    comm::BufferSet grad_spans;
    for (auto& g : grads) grad_spans.emplace_back(g);
    comm::reduce_scatter_inplace(grad_spans);

    // Shard-local Adam on a per-rank copy of the parameters.
    std::vector<std::vector<float>> replica(
        kRanks, params);  // each rank's parameter copy
    for (int r = 0; r < kRanks; ++r) {
      const int chunk = comm::ring_owned_chunk(kRanks, r);
      const auto off = static_cast<std::size_t>(layout.offset(chunk));
      const auto cnt = static_cast<std::size_t>(layout.count(chunk));
      optimizer::adam_step(
          std::span(replica[static_cast<std::size_t>(r)]).subspan(off, cnt),
          std::span<const float>(grads[static_cast<std::size_t>(r)])
              .subspan(off, cnt),
          m_state[static_cast<std::size_t>(r)],
          v_state[static_cast<std::size_t>(r)], epoch, hp);
    }

    // All-gather the updated shards so every rank has the full parameters.
    comm::BufferSet replica_spans;
    for (auto& p : replica) replica_spans.emplace_back(p);
    comm::all_gather_inplace(replica_spans);
    params = replica[0];

    if (epoch % 10 == 0 || epoch == 1) {
      std::printf("%5ld  %7.4f\n", epoch, loss);
    }
  }

  double err = 0;
  for (int f = 0; f < kFeatures; ++f) {
    const double d = params[static_cast<std::size_t>(f)] -
                     truth[static_cast<std::size_t>(f)];
    err += d * d;
  }
  std::printf("\nfinal parameter error (L2^2): %.6f\n", err);
  return err < 1e-2 ? 0 : 1;
}
