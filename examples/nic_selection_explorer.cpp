/// NIC-selection explorer: a small CLI over the planning API.
///
///   nic_selection_explorer [env] [nodes] [group] [framework] [trace.json]
///
///   env        InfiniBand | RoCE | Ethernet | Hybrid | SplitIB | SplitRoCE,
///              or a topology spec like "2x8:ib+2x8:roce" (nodes ignored)
///   nodes      total node count (default 4)
///   group      parameter group 1-8 (default 1)
///   framework  holmes | megatron-lm | megatron-deepspeed | megatron-llama
///   trace.json optional: dump a Chrome trace of one iteration's task
///              timeline (open in https://ui.perfetto.dev)
///
/// Prints the resolved plan — stage-to-cluster mapping, the fabric every
/// data-parallel group ends up on, the layer partition — and the simulated
/// steady-state metrics. Useful for exploring what Automatic NIC Selection
/// changes on a given topology.

#include <fstream>
#include <iostream>
#include <string>

#include "core/experiment.h"
#include "net/topology_parse.h"
#include "util/error.h"
#include "util/table.h"
#include "util/units.h"

using namespace holmes;
using namespace holmes::core;

namespace {

NicEnv parse_env(const std::string& name) {
  if (name == "InfiniBand" || name == "ib") return NicEnv::kInfiniBand;
  if (name == "RoCE" || name == "roce") return NicEnv::kRoCE;
  if (name == "Ethernet" || name == "eth") return NicEnv::kEthernet;
  if (name == "Hybrid" || name == "hybrid") return NicEnv::kHybrid;
  if (name == "SplitIB") return NicEnv::kSplitIB;
  if (name == "SplitRoCE") return NicEnv::kSplitRoCE;
  throw ConfigError("unknown environment: " + name);
}

FrameworkConfig parse_framework(const std::string& name) {
  if (name == "holmes") return FrameworkConfig::holmes();
  if (name == "megatron-lm") return FrameworkConfig::megatron_lm();
  if (name == "megatron-deepspeed") return FrameworkConfig::megatron_deepspeed();
  if (name == "megatron-llama") return FrameworkConfig::megatron_llama();
  throw ConfigError("unknown framework: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string env_arg = argc > 1 ? argv[1] : "Hybrid";
    const int nodes = argc > 2 ? std::stoi(argv[2]) : 4;
    const int group = argc > 3 ? std::stoi(argv[3]) : 1;
    const FrameworkConfig framework =
        argc > 4 ? parse_framework(argv[4]) : FrameworkConfig::holmes();
    const std::string trace_path = argc > 5 ? argv[5] : "";

    // Either a named paper environment or a raw topology spec like
    // "2x8:ib+2x8:roce".
    const bool is_spec = env_arg.find(':') != std::string::npos;
    const net::Topology topo = is_spec
                                   ? net::parse_topology(env_arg)
                                   : make_environment(parse_env(env_arg), nodes);
    const TrainingPlan plan =
        Planner(framework).plan(topo, model::parameter_group(group));

    std::cout << framework.name << " on "
              << (is_spec ? net::format_topology(topo) : env_arg) << " ("
              << topo.total_nodes() << " nodes), parameter group " << group
              << " (" << plan.degrees.to_string() << ")\n\n";

    std::cout << "Pipeline stages:\n";
    const auto clusters = parallel::stage_clusters(plan.groups, topo);
    for (std::size_t s = 0; s < clusters.size(); ++s) {
      std::cout << "  stage " << s << ": " << plan.partition[s] << " layers on "
                << (clusters[s] >= 0 ? topo.cluster(clusters[s]).name
                                     : std::string("MIXED clusters"))
                << " (effective NIC " << net::to_string(plan.stage_nics[s])
                << ")\n";
    }
    if (plan.ethernet_fallback) {
      std::cout << "  !! NIC-oblivious stack: all inter-node traffic forced "
                   "onto Ethernet\n";
    }

    std::cout << "\nData-parallel groups (" << plan.groups.dp_groups().size()
              << " of size " << plan.degrees.data << "):\n";
    TextTable dp({"Group", "First rank", "Transport"});
    for (std::size_t i = 0; i < plan.groups.dp_groups().size(); ++i) {
      const auto& g = plan.groups.dp_groups()[i];
      const std::string transport =
          plan.ethernet_fallback
              ? "Ethernet (fallback)"
              : net::to_string(g.size() > 1 ? topo.fastest_common_fabric(g)
                                            : net::FabricKind::kNVLink);
      dp.add_row({TextTable::num(static_cast<std::int64_t>(i)),
                  TextTable::num(static_cast<std::int64_t>(g.front())),
                  transport});
    }
    dp.print();

    IterationMetrics m;
    if (trace_path.empty()) {
      m = TrainingSimulator{}.run(topo, plan);
    } else {
      std::ofstream trace(trace_path);
      if (!trace) throw ConfigError("cannot open trace file " + trace_path);
      m = TrainingSimulator{}.run(topo, plan, 3, {}, &trace);
      std::cout << "\nChrome trace written to " << trace_path
                << " (open in https://ui.perfetto.dev)\n";
    }
    std::cout << "\nSteady state: " << format_time(m.iteration_time)
              << " per iteration, " << TextTable::num(m.tflops_per_gpu, 0)
              << " TFLOPS/GPU, " << TextTable::num(m.throughput, 2)
              << " samples/s\n";
    return 0;
  } catch (const Error& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
}
