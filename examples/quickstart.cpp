/// Quickstart: plan and simulate one training job with Holmes.
///
/// Builds the paper's Hybrid environment (an InfiniBand cluster and a RoCE
/// cluster joined only by Ethernet), plans the 3.6 B GPT model on it, and
/// prints the scheduling decisions plus the steady-state performance — a
/// five-minute tour of the public API.

#include <iostream>

#include "core/experiment.h"
#include "util/units.h"

using namespace holmes;
using namespace holmes::core;

int main() {
  // 1. Describe the hardware: two 2-node clusters with incompatible RDMA
  //    NICs. Cross-cluster traffic can only use Ethernet.
  const net::Topology topo = net::Topology::hybrid_two_clusters(/*nodes=*/2);
  std::cout << "Topology: " << topo.world_size() << " GPUs in "
            << topo.cluster_count() << " clusters\n";

  // 2. Pick a workload: parameter group 1 from the paper's Table 2
  //    (GPT 3.6 B, tensor parallel 1, pipeline parallel 2, batch 768).
  const model::ParameterGroup& workload = model::parameter_group(1);
  std::cout << "Workload: GPT with "
            << workload.config.parameter_count() / 1e9 << "B parameters, "
            << "batch " << workload.batch_size << "\n\n";

  // 3. Plan with Holmes: cluster-aligned pipeline stages, NIC-homogeneous
  //    data-parallel groups, self-adapting partition, overlapped optimizer.
  const Planner planner(FrameworkConfig::holmes());
  const TrainingPlan plan = planner.plan(topo, workload);

  std::cout << "Plan (" << plan.framework.name << "):\n"
            << "  degrees: " << plan.degrees.to_string() << ", "
            << plan.micro_batches << " micro-batches per replica\n"
            << "  stage layers:";
  for (std::size_t s = 0; s < plan.partition.size(); ++s) {
    std::cout << " stage" << s << "=" << plan.partition[s] << " ("
              << net::to_string(plan.stage_nics[s]) << ")";
  }
  std::cout << "\n  Ethernet fallback: "
            << (plan.ethernet_fallback ? "yes" : "no") << "\n";

  // Every data-parallel group stays on one RDMA fabric:
  std::cout << "  NIC-homogeneous DP groups: "
            << parallel::rdma_dp_group_fraction(plan.groups, topo) * 100
            << "%\n\n";

  // 4. Simulate a few iterations and read the steady-state metrics.
  const IterationMetrics metrics = TrainingSimulator{}.run(topo, plan);
  std::cout << "Steady-state iteration: " << format_time(metrics.iteration_time)
            << "\n  " << metrics.tflops_per_gpu << " TFLOPS per GPU\n  "
            << metrics.throughput << " samples/s aggregate\n  "
            << "grads reduce-scatter span: "
            << format_time(metrics.grad_sync_span) << "\n";

  // 5. Compare with the NIC-oblivious baseline on the same hardware.
  const TrainingPlan baseline =
      Planner(FrameworkConfig::megatron_lm()).plan(topo, workload);
  const IterationMetrics baseline_metrics =
      TrainingSimulator{}.run(topo, baseline);
  std::cout << "\nMegatron-LM on the same clusters: "
            << baseline_metrics.tflops_per_gpu << " TFLOPS per GPU ("
            << metrics.throughput / baseline_metrics.throughput
            << "x slower than Holmes)\n";
  return 0;
}
