/// Auto-tuning the parallel layout: given hardware and a model, search all
/// feasible (tensor, pipeline, data) decompositions, simulate each, and
/// rank them — the "scheduling methods for diverse environments" the paper
/// names as future work.
///
///   autotune_layout [env] [nodes] [group]
///
/// Defaults: Hybrid, 4 nodes, parameter group 1.

#include <iostream>
#include <string>

#include "core/autotune.h"
#include "core/experiment.h"
#include "util/error.h"
#include "util/table.h"
#include "util/units.h"

using namespace holmes;
using namespace holmes::core;

int main(int argc, char** argv) {
  try {
    NicEnv env = NicEnv::kHybrid;
    if (argc > 1) {
      const std::string name = argv[1];
      if (name == "ib") env = NicEnv::kInfiniBand;
      else if (name == "roce") env = NicEnv::kRoCE;
      else if (name == "eth") env = NicEnv::kEthernet;
      else if (name == "hybrid") env = NicEnv::kHybrid;
      else throw ConfigError("env must be ib|roce|eth|hybrid, got " + name);
    }
    const int nodes = argc > 2 ? std::stoi(argv[2]) : 4;
    const int group = argc > 3 ? std::stoi(argv[3]) : 1;

    const net::Topology topo = make_environment(env, nodes);
    const model::ParameterGroup& workload = model::parameter_group(group);
    std::cout << "Searching layouts for the "
              << workload.config.parameter_count() / 1e9 << "B model on "
              << nodes << " " << to_string(env) << " nodes ("
              << topo.world_size() << " GPUs, batch " << workload.batch_size
              << ")\n\n";

    TuneOptions options;
    options.max_pipeline = 8;
    const auto ranked =
        autotune(FrameworkConfig::holmes(), topo, workload, options);

    TextTable table({"Rank", "t", "p", "d", "TFLOPS", "Throughput",
                     "Memory/GPU"});
    const std::size_t shown = std::min<std::size_t>(ranked.size(), 10);
    for (std::size_t i = 0; i < shown; ++i) {
      const TuneCandidate& c = ranked[i];
      table.add_row({TextTable::num(static_cast<std::int64_t>(i + 1)),
                     TextTable::num(static_cast<std::int64_t>(c.tensor)),
                     TextTable::num(static_cast<std::int64_t>(c.pipeline)),
                     TextTable::num(static_cast<std::int64_t>(c.data)),
                     TextTable::num(c.metrics.tflops_per_gpu, 0),
                     TextTable::num(c.metrics.throughput, 2),
                     format_bytes(c.estimated_memory)});
    }
    table.print();
    std::cout << "\n(" << ranked.size() << " feasible layouts simulated; "
              << "the paper's Table 2 fixed t=" << workload.tensor_parallel
              << ", p=" << workload.pipeline_parallel << " for this group)\n";
    return 0;
  } catch (const Error& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
}
