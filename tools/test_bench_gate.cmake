# CTest script rehearsing the full `holmes_cli bench` baseline gate:
#   1. record a baseline trajectory (in-process probe only, no bench bins),
#   2. an identical re-run diffed against it must pass --fail-over 25,
#   3. a deliberately slowed re-run (HOLMES_BENCH_DELIBERATE_DELAY_MS) must
#      trip the same gate with a non-zero exit.
# Run as: cmake -DCLI=<path-to-holmes_cli> -P test_bench_gate.cmake

if(NOT DEFINED CLI)
  message(FATAL_ERROR "pass -DCLI=<path to holmes_cli>")
endif()

set(BASELINE "${CMAKE_CURRENT_BINARY_DIR}/bench_gate_baseline.json")

execute_process(
  COMMAND "${CLI}" bench --repeat 3 --warmup 1 --json=${BASELINE}
  RESULT_VARIABLE record_rc
)
if(NOT record_rc EQUAL 0)
  message(FATAL_ERROR "baseline recording failed (rc=${record_rc})")
endif()

execute_process(
  COMMAND "${CLI}" bench --repeat 3 --warmup 1
          --baseline ${BASELINE} --fail-over 25
  RESULT_VARIABLE clean_rc
)
if(NOT clean_rc EQUAL 0)
  message(FATAL_ERROR
          "identical re-run tripped the gate (rc=${clean_rc}); the noise "
          "floor or counters are unstable")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env HOLMES_BENCH_DELIBERATE_DELAY_MS=400
          "${CLI}" bench --repeat 3 --warmup 1
          --baseline ${BASELINE} --fail-over 25
  RESULT_VARIABLE slow_rc
)
if(slow_rc EQUAL 0)
  message(FATAL_ERROR
          "deliberately slowed run passed the gate; --fail-over is not "
          "catching timing regressions")
endif()

message(STATUS "bench gate rehearsal OK: clean pass, slowdown tripped")
