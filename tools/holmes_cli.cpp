/// holmes_cli — consolidated command-line interface over the library.
///
///   holmes_cli simulate <topology> <group> [options]
///       Plan + simulate one scenario; print metrics.
///       --framework F    holmes | megatron-lm | megatron-deepspeed |
///                        megatron-llama            (default holmes)
///       --iterations N   simulated iterations      (default 3)
///       --trace FILE     write a Chrome trace of the run
///       --straggler R:F  slow rank R down by factor F (repeatable)
///
///   holmes_cli plan <topology> <group> [--framework F]
///       Print the resolved plan: degrees, stage placement, partition,
///       per-DP-group transport.
///
///   holmes_cli tune <topology> <group> [--top N]
///       Auto-tune the (tensor, pipeline) layout; print the ranking.
///
///   holmes_cli sweep <topology> <group...> [--markdown|--csv]
///       All four frameworks x the given groups on one topology.
///
///   holmes_cli analytic <topology> <group> [--framework F]
///       Closed-form iteration-time breakdown (see core/analytic.h).
///
///   holmes_cli stats <topology> <group> [options]
///       Simulate one scenario and print the observability breakdown:
///       per-device utilization, per-stage pipeline-bubble fraction,
///       per-link busy/contention time, per-communicator traffic, and the
///       exposed-vs-overlapped grad-sync split (docs/observability.md).
///       --framework F    as for simulate          (default holmes)
///       --iterations N   simulated iterations     (default 3)
///       --json[=FILE]    stable JSON run summary (see JSON output below)
///       --straggler R:F  slow rank R down by factor F (repeatable)
///
///   holmes_cli explain <topology> <group> [options]
///       Simulate one scenario, extract the critical path, and print the
///       makespan attribution: per-stage compute, per-NIC-class and
///       per-communicator serialization, propagation latency, queue wait —
///       plus first-order what-if sensitivities (docs/observability.md).
///       Segment durations sum to the makespan exactly.
///       --framework F    as for simulate          (default holmes)
///       --iterations N   simulated iterations     (default 3)
///       --json[=FILE]    stable JSON critical-path summary
///       --top N          longest segments / what-ifs shown (default 16)
///       --window A:B     clip the attribution to [A, B] seconds
///       --trace FILE     Chrome trace with flow arrows + critical lane
///       --straggler R:F  slow rank R down by factor F (repeatable)
///
///   holmes_cli diff <before.json> <after.json> [options]
///       Compare two JSON documents emitted by this tool (run summaries,
///       critical-path summaries, bench results): numeric leaves are
///       paired structurally — arrays of named objects align by name — and
///       the largest relative changes are reported.
///       --fail-over P    exit 2 when any |relative change| exceeds P
///                        (percent; "5" or "5%"), or on structure changes
///       --top N          rows shown                (default 16)
///       --json[=FILE]    machine-readable delta report
///
///   holmes_cli lint <topology> <group> [options]
///       Static verifier: plan-family (HV1xx) lints over the resolved plan,
///       then graph/execution-family (HV2xx/HV3xx) lints over a simulated
///       run. Exits non-zero when any error-severity rule fires
///       (docs/static-analysis.md).
///       --framework F    as for simulate          (default holmes)
///       --iterations N   simulated iterations     (default 3)
///       --json[=FILE]    stable JSON lint report
///       --strict         promote warnings to errors
///       --no-graph       plan lints only (skip the simulation)
///       --rules          print the rule catalog and exit
///
///   holmes_cli envs
///       List the named environments and their topology specs.
///
/// Global options:
///   --log-level L    debug | info | warning | error  (default warning)
///
/// JSON output: every subcommand that emits JSON takes `--json[=FILE]`.
/// A bare `--json` or `--json=-` writes the JSON to stdout *instead of*
/// the text report; `--json=FILE` writes the file alongside the report.
///
/// <topology> is either a named environment (ib, roce, eth, hybrid —
/// 4 nodes by default, or e.g. hybrid:8 for 8 nodes) or a spec like
/// "2x8:ib+2x8:roce" (see net/topology_parse.h).

#include <algorithm>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "core/analytic.h"
#include "core/autotune.h"
#include "core/preflight.h"
#include "core/experiment.h"
#include "core/report.h"
#include "core/run_stats.h"
#include "model/memory.h"
#include "net/topology_parse.h"
#include "obs/critical_path.h"
#include "obs/summary.h"
#include "sim/trace.h"
#include "util/error.h"
#include "util/json.h"
#include "util/json_diff.h"
#include "util/logging.h"
#include "util/table.h"
#include "util/units.h"
#include "verify/rules.h"

using namespace holmes;
using namespace holmes::core;

namespace {

struct Args {
  std::string command;
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;  // --key value (or "" for flags)
  std::vector<std::string> stragglers;
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc < 2) throw ConfigError("usage: holmes_cli <command> ... (try envs)");
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      std::string key = token.substr(2);
      // --key=value form; "--json" stays valueless (= stdout).
      const std::size_t eq = key.find('=');
      if (eq != std::string::npos) {
        const std::string value = key.substr(eq + 1);
        key = key.substr(0, eq);
        if (key == "straggler") {
          args.stragglers.push_back(value);
        } else {
          args.options[key] = value;
        }
        continue;
      }
      const bool is_flag = key == "markdown" || key == "csv" ||
                           key == "strict" || key == "no-graph" ||
                           key == "rules" || key == "json";
      if (!is_flag) {
        if (i + 1 >= argc) throw ConfigError("missing value for --" + key);
        const std::string value = argv[++i];
        if (key == "straggler") {
          args.stragglers.push_back(value);
        } else {
          args.options[key] = value;
        }
      } else {
        args.options[key] = "";
      }
    } else {
      args.positional.push_back(token);
    }
  }
  return args;
}

net::Topology resolve_topology(const std::string& name) {
  if (name.find('x') != std::string::npos &&
      name.find(':') != std::string::npos) {
    return net::parse_topology(name);
  }
  std::string env = name;
  int nodes = 4;
  const std::size_t colon = name.find(':');
  if (colon != std::string::npos) {
    env = name.substr(0, colon);
    nodes = std::stoi(name.substr(colon + 1));
  }
  if (env == "ib") return make_environment(NicEnv::kInfiniBand, nodes);
  if (env == "roce") return make_environment(NicEnv::kRoCE, nodes);
  if (env == "eth") return make_environment(NicEnv::kEthernet, nodes);
  if (env == "hybrid") return make_environment(NicEnv::kHybrid, nodes);
  if (env == "split-ib") return make_environment(NicEnv::kSplitIB, nodes);
  if (env == "split-roce") return make_environment(NicEnv::kSplitRoCE, nodes);
  throw ConfigError("unknown topology '" + name +
                    "' (named env or spec like 2x8:ib+2x8:roce)");
}

FrameworkConfig resolve_framework(const Args& args) {
  const auto it = args.options.find("framework");
  const std::string name = it == args.options.end() ? "holmes" : it->second;
  if (name == "holmes") return FrameworkConfig::holmes();
  if (name == "megatron-lm") return FrameworkConfig::megatron_lm();
  if (name == "megatron-deepspeed") return FrameworkConfig::megatron_deepspeed();
  if (name == "megatron-llama") return FrameworkConfig::megatron_llama();
  throw ConfigError("unknown framework '" + name + "'");
}

int option_int(const Args& args, const std::string& key, int fallback) {
  const auto it = args.options.find(key);
  return it == args.options.end() ? fallback : std::stoi(it->second);
}

void apply_log_level(const Args& args) {
  const auto it = args.options.find("log-level");
  if (it == args.options.end()) return;
  const std::string& level = it->second;
  if (level == "debug") {
    set_log_level(LogLevel::kDebug);
  } else if (level == "info") {
    set_log_level(LogLevel::kInfo);
  } else if (level == "warning") {
    set_log_level(LogLevel::kWarning);
  } else if (level == "error") {
    set_log_level(LogLevel::kError);
  } else {
    throw ConfigError("unknown log level '" + level +
                      "' (debug|info|warning|error)");
  }
}

Perturbations resolve_perturbations(const Args& args) {
  Perturbations perturb;
  for (const std::string& spec : args.stragglers) {
    const std::size_t colon = spec.find(':');
    if (colon == std::string::npos) {
      throw ConfigError("--straggler expects RANK:FACTOR, got '" + spec + "'");
    }
    perturb.device_slowdown[std::stoi(spec.substr(0, colon))] =
        std::stod(spec.substr(colon + 1));
  }
  return perturb;
}

/// `--json[=FILE]` convention: absent -> no JSON; "" or "-" -> stdout
/// replacing the text report; otherwise a file alongside it.
enum class JsonDest { kNone, kStdout, kFile };

JsonDest json_dest(const Args& args) {
  const auto it = args.options.find("json");
  if (it == args.options.end()) return JsonDest::kNone;
  return it->second.empty() || it->second == "-" ? JsonDest::kStdout
                                                 : JsonDest::kFile;
}

/// Writes one JSON document per the --json convention; `write` must not
/// emit the trailing newline. `what` names the artifact in the
/// confirmation line printed for the file case.
template <typename WriteFn>
void emit_json(const Args& args, const char* what, WriteFn&& write) {
  switch (json_dest(args)) {
    case JsonDest::kNone:
      return;
    case JsonDest::kStdout:
      write(std::cout);
      std::cout << "\n";
      return;
    case JsonDest::kFile: {
      const std::string& file = args.options.at("json");
      std::ofstream out(file);
      if (!out) throw ConfigError("cannot open " + file);
      write(out);
      out << "\n";
      std::cout << "\n" << what << " written to " << file << "\n";
      return;
    }
  }
}

int cmd_simulate(const Args& args) {
  if (args.positional.size() < 2) {
    throw ConfigError("usage: holmes_cli simulate <topology> <group>");
  }
  const net::Topology topo = resolve_topology(args.positional[0]);
  const int group = std::stoi(args.positional[1]);
  const FrameworkConfig framework = resolve_framework(args);
  const int iterations = option_int(args, "iterations", 3);
  const Perturbations perturb = resolve_perturbations(args);

  const TrainingPlan plan =
      Planner(framework).plan(topo, model::parameter_group(group));
  IterationMetrics m;
  const auto trace = args.options.find("trace");
  if (trace != args.options.end()) {
    std::ofstream out(trace->second);
    if (!out) throw ConfigError("cannot open " + trace->second);
    m = TrainingSimulator{}.run(topo, plan, iterations, perturb, &out);
    std::cout << "trace written to " << trace->second << "\n";
  } else {
    m = TrainingSimulator{}.run(topo, plan, iterations, perturb);
  }

  std::cout << framework.name << " / group " << group << " on "
            << net::format_topology(topo) << " (" << plan.degrees.to_string()
            << ")\n"
            << "  iteration      " << format_time(m.iteration_time) << "\n"
            << "  TFLOPS/GPU     " << TextTable::num(m.tflops_per_gpu, 1) << "\n"
            << "  throughput     " << TextTable::num(m.throughput, 2)
            << " samples/s\n"
            << "  grad sync      " << format_time(m.grad_sync_span) << "\n"
            << "  param gather   " << format_time(m.param_allgather_span) << "\n"
            << "  optimizer      " << format_time(m.optimizer_span) << "\n"
            << "  simulated tasks " << m.task_count << "\n";
  return 0;
}

int cmd_plan(const Args& args) {
  if (args.positional.size() < 2) {
    throw ConfigError("usage: holmes_cli plan <topology> <group>");
  }
  const net::Topology topo = resolve_topology(args.positional[0]);
  const int group = std::stoi(args.positional[1]);
  const FrameworkConfig framework = resolve_framework(args);
  const TrainingPlan plan =
      Planner(framework).plan(topo, model::parameter_group(group));

  std::cout << framework.name << " plan for group " << group << " on "
            << net::format_topology(topo) << "\n"
            << "  degrees        " << plan.degrees.to_string() << "\n"
            << "  micro-batches  " << plan.micro_batches << " per replica\n"
            << "  fallback       " << (plan.ethernet_fallback ? "yes" : "no")
            << "\n  stages:\n";
  const auto clusters = parallel::stage_clusters(plan.groups, topo);
  for (std::size_t s = 0; s < clusters.size(); ++s) {
    std::cout << "    stage " << s << ": "
              << plan.partition[static_cast<std::size_t>(s)] << " layers on "
              << (clusters[s] >= 0 ? topo.cluster(clusters[s]).name : "MIXED")
              << " (" << net::to_string(plan.stage_nics[s]) << ")\n";
  }
  std::cout << "  NIC-homogeneous DP groups: "
            << parallel::rdma_dp_group_fraction(plan.groups, topo) * 100
            << "%\n";

  // Worst-stage per-device memory estimate (first stage holds the most
  // layers under the uniform split; self-adapting may shift the peak, so
  // take the max over stages).
  Bytes peak = 0;
  for (int s = 0; s < plan.degrees.pipeline; ++s) {
    int layers = 0;
    for (int v = s; v < plan.virtual_stages(); v += plan.degrees.pipeline) {
      layers += plan.partition[static_cast<std::size_t>(v)];
    }
    const auto est = model::estimate_device_memory(
        plan.workload.config, layers, plan.degrees.tensor,
        plan.workload.micro_batch_size,
        std::min(plan.degrees.pipeline, 8),
        plan.framework.dp_sync.shards_optimizer() ? plan.degrees.data : 1, {},
        plan.framework.dp_sync.shards_weights() ? plan.degrees.data : 1);
    peak = std::max(peak, est.total());
  }
  std::cout << "  est. memory/GPU (worst stage): " << format_bytes(peak)
            << "\n";
  return 0;
}

int cmd_tune(const Args& args) {
  if (args.positional.size() < 2) {
    throw ConfigError("usage: holmes_cli tune <topology> <group>");
  }
  const net::Topology topo = resolve_topology(args.positional[0]);
  const int group = std::stoi(args.positional[1]);
  TuneOptions options;
  options.max_pipeline = option_int(args, "max-pipeline", 8);
  const auto ranked = autotune(resolve_framework(args), topo,
                               model::parameter_group(group), options);
  const int top = option_int(args, "top", 10);

  TextTable table({"Rank", "t", "p", "d", "TFLOPS", "Throughput", "Mem/GPU"});
  for (std::size_t i = 0;
       i < std::min<std::size_t>(ranked.size(), static_cast<std::size_t>(top));
       ++i) {
    const TuneCandidate& c = ranked[i];
    table.add_row({TextTable::num(static_cast<std::int64_t>(i + 1)),
                   TextTable::num(static_cast<std::int64_t>(c.tensor)),
                   TextTable::num(static_cast<std::int64_t>(c.pipeline)),
                   TextTable::num(static_cast<std::int64_t>(c.data)),
                   TextTable::num(c.metrics.tflops_per_gpu, 0),
                   TextTable::num(c.metrics.throughput, 2),
                   format_bytes(c.estimated_memory)});
  }
  table.print();
  return 0;
}

int cmd_sweep(const Args& args) {
  if (args.positional.size() < 2) {
    throw ConfigError("usage: holmes_cli sweep <topology> <group...>");
  }
  const net::Topology topo = resolve_topology(args.positional[0]);
  ExperimentGrid grid("Framework sweep on " + net::format_topology(topo),
                      "Framework");
  for (const FrameworkConfig& framework :
       {FrameworkConfig::megatron_lm(), FrameworkConfig::megatron_deepspeed(),
        FrameworkConfig::megatron_llama(), FrameworkConfig::holmes()}) {
    for (std::size_t g = 1; g < args.positional.size(); ++g) {
      const int group = std::stoi(args.positional[g]);
      grid.set(framework.name, "group " + std::to_string(group),
               run_experiment(framework, topo, group));
    }
  }
  if (args.options.count("csv")) {
    std::cout << grid.to_csv();
  } else if (args.options.count("markdown")) {
    std::cout << grid.to_markdown(ExperimentGrid::tflops(), 0);
  } else {
    std::cout << grid.to_text(ExperimentGrid::tflops(), 0);
  }
  return 0;
}

int cmd_analytic(const Args& args) {
  if (args.positional.size() < 2) {
    throw ConfigError("usage: holmes_cli analytic <topology> <group>");
  }
  const net::Topology topo = resolve_topology(args.positional[0]);
  const int group = std::stoi(args.positional[1]);
  const TrainingPlan plan = Planner(resolve_framework(args))
                                .plan(topo, model::parameter_group(group));
  const AnalyticBreakdown b = analytic_iteration(topo, plan);
  const IterationMetrics simulated = TrainingSimulator{}.run(topo, plan);
  std::cout << "closed-form breakdown (seconds):\n"
            << "  overhead         " << b.overhead << "\n"
            << "  steady compute   " << b.steady_compute << "\n"
            << "  pipeline bubble  " << b.pipeline_bubble << "\n"
            << "  grad sync        " << b.grad_reduce_scatter << "\n"
            << "  optimizer        " << b.optimizer << "\n"
            << "  param all-gather " << b.param_allgather << "\n"
            << "  total            " << b.total() << "\n"
            << "simulated          " << simulated.iteration_time << "\n"
            << "agreement          "
            << TextTable::num(b.total() / simulated.iteration_time * 100, 1)
            << "%\n";
  return 0;
}

int cmd_stats(const Args& args) {
  if (args.positional.size() < 2) {
    throw ConfigError("usage: holmes_cli stats <topology> <group>");
  }
  const net::Topology topo = resolve_topology(args.positional[0]);
  const int group = std::stoi(args.positional[1]);
  const FrameworkConfig framework = resolve_framework(args);
  const int iterations = option_int(args, "iterations", 3);
  const Perturbations perturb = resolve_perturbations(args);

  const TrainingPlan plan =
      Planner(framework).plan(topo, model::parameter_group(group));
  SimArtifacts artifacts;
  const IterationMetrics m =
      TrainingSimulator{}.run(topo, plan, iterations, perturb,
                              /*chrome_trace=*/nullptr, &artifacts);
  const obs::RunSummary summary =
      build_run_summary(topo, plan, m, artifacts);

  if (json_dest(args) == JsonDest::kStdout) {
    obs::write_json(std::cout, summary);
    std::cout << "\n";
    return 0;
  }

  std::cout << summary.framework << " / " << summary.workload << " on "
            << summary.topology << " (" << plan.degrees.to_string() << ")\n"
            << "  iteration   " << format_time(m.iteration_time)
            << "   TFLOPS/GPU " << TextTable::num(m.tflops_per_gpu, 1)
            << "   throughput " << TextTable::num(m.throughput, 2)
            << " samples/s\n"
            << "  window      [" << TextTable::num(summary.window_begin_s, 3)
            << "s, " << TextTable::num(summary.window_end_s, 3) << "s)\n\n";

  TextTable devices({"Device", "Busy", "Waiting", "Util %", "Tasks"});
  for (const auto& d : summary.devices) {
    devices.add_row({d.name, format_time(d.busy_s), format_time(d.waiting_s),
                     TextTable::num(d.utilization * 100, 1),
                     TextTable::num(static_cast<std::int64_t>(d.tasks))});
  }
  std::cout << "device utilization (steady-state window)\n";
  devices.print();

  TextTable stages(
      {"Stage", "Devices", "Layers", "Compute busy", "Span", "Bubble %"});
  for (const auto& st : summary.stages) {
    stages.add_row({TextTable::num(static_cast<std::int64_t>(st.stage)),
                    TextTable::num(static_cast<std::int64_t>(st.devices)),
                    TextTable::num(static_cast<std::int64_t>(st.layers)),
                    format_time(st.compute_busy_s), format_time(st.span_s),
                    TextTable::num(st.bubble_fraction * 100, 1)});
  }
  std::cout << "\npipeline bubble (measured iteration)\n";
  stages.print();

  // Links, busiest first; everything idle is dropped by the summary already.
  std::vector<obs::RunSummary::Link> links = summary.links;
  std::sort(links.begin(), links.end(),
            [](const auto& a, const auto& b) { return a.busy_s > b.busy_s; });
  constexpr std::size_t kMaxLinks = 16;
  TextTable link_table(
      {"Link", "Busy", "Waiting", "Util %", "Bytes", "Eff Gbit/s"});
  for (std::size_t i = 0; i < std::min(links.size(), kMaxLinks); ++i) {
    const auto& l = links[i];
    link_table.add_row({l.name, format_time(l.busy_s), format_time(l.waiting_s),
                        TextTable::num(l.utilization * 100, 1),
                        format_bytes(l.bytes),
                        TextTable::num(l.effective_gbps, 1)});
  }
  std::cout << "\nbusiest links (" << std::min(links.size(), kMaxLinks)
            << " of " << links.size() << " active)\n";
  link_table.print();

  TextTable comms({"Comm", "Bytes", "Transfers", "Busy", "Span", "Bus Gbit/s"});
  for (const auto& c : summary.comms) {
    comms.add_row({c.name, format_bytes(c.bytes),
                   TextTable::num(static_cast<std::int64_t>(c.transfers)),
                   format_time(c.busy_s), format_time(c.span_s),
                   TextTable::num(c.bus_gbps, 1)});
  }
  std::cout << "\ncommunicator traffic (steady-state window)\n";
  comms.print();

  std::cout << "\ngrad sync      total " << format_time(summary.grad_sync.total_s)
            << "  overlapped " << format_time(summary.grad_sync.overlapped_s)
            << "  exposed " << format_time(summary.grad_sync.exposed_s) << "\n"
            << "param gather   total "
            << format_time(summary.param_allgather.total_s) << "  overlapped "
            << format_time(summary.param_allgather.overlapped_s)
            << "  exposed " << format_time(summary.param_allgather.exposed_s)
            << "\n";

  emit_json(args, "JSON summary",
            [&](std::ostream& out) { obs::write_json(out, summary); });
  return 0;
}

int cmd_explain(const Args& args) {
  if (args.positional.size() < 2) {
    throw ConfigError(
        "usage: holmes_cli explain <topology> <group> [--framework F] "
        "[--json[=FILE]] [--top N] [--window A:B] [--trace FILE]");
  }
  const net::Topology topo = resolve_topology(args.positional[0]);
  const int group = std::stoi(args.positional[1]);
  const FrameworkConfig framework = resolve_framework(args);
  const int iterations = option_int(args, "iterations", 3);
  const Perturbations perturb = resolve_perturbations(args);

  CriticalPathOptions options;
  const int top = option_int(args, "top", 16);
  if (top <= 0) throw ConfigError("--top expects a positive count");
  options.top_segments = static_cast<std::size_t>(top);
  const auto window = args.options.find("window");
  if (window != args.options.end()) {
    const std::size_t colon = window->second.find(':');
    if (colon == std::string::npos) {
      throw ConfigError("--window expects BEGIN:END seconds, got '" +
                        window->second + "'");
    }
    try {
      options.window_begin = std::stod(window->second.substr(0, colon));
      const std::string end = window->second.substr(colon + 1);
      options.window_end = end.empty() ? -1 : std::stod(end);
    } catch (const std::exception&) {
      throw ConfigError("--window expects BEGIN:END seconds, got '" +
                        window->second + "'");
    }
    if (options.window_end >= 0 && options.window_begin >= options.window_end) {
      throw ConfigError("--window is empty: got '" + window->second +
                        "' (need BEGIN < END)");
    }
  }

  const TrainingPlan plan =
      Planner(framework).plan(topo, model::parameter_group(group));
  SimArtifacts artifacts;
  const IterationMetrics m =
      TrainingSimulator{}.run(topo, plan, iterations, perturb,
                              /*chrome_trace=*/nullptr, &artifacts);
  obs::CriticalPath path;
  const obs::CriticalPathSummary summary =
      build_critical_path_summary(topo, plan, m, artifacts, options, &path);

  const auto trace = args.options.find("trace");
  if (trace != args.options.end()) {
    std::ofstream out(trace->second);
    if (!out) throw ConfigError("cannot open " + trace->second);
    sim::TraceOptions trace_options;
    trace_options.critical_tasks = path.tasks;
    sim::write_chrome_trace(out, artifacts.graph, *artifacts.result,
                            trace_options);
  }

  if (json_dest(args) == JsonDest::kStdout) {
    obs::write_json(std::cout, summary);
    std::cout << "\n";
    return 0;
  }
  obs::print_text(std::cout, summary, options.top_segments);
  if (trace != args.options.end()) {
    std::cout << "\ntrace written to " << trace->second << "\n";
  }
  emit_json(args, "JSON summary",
            [&](std::ostream& out) { obs::write_json(out, summary); });
  return 0;
}

int cmd_diff(const Args& args) {
  if (args.positional.size() < 2) {
    throw ConfigError(
        "usage: holmes_cli diff <before.json> <after.json> "
        "[--fail-over P] [--top N] [--json[=FILE]]");
  }
  auto load = [](const std::string& file) {
    std::ifstream in(file);
    if (!in) throw ConfigError("cannot open " + file);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    try {
      return json_parse(text);
    } catch (const Error& e) {
      throw ConfigError(file + ": " + e.what());
    }
  };
  const JsonValue before = load(args.positional[0]);
  const JsonValue after = load(args.positional[1]);
  const JsonDiffResult diff = diff_json(before, after);

  double threshold = -1;  // < 0: report only, no gating
  const auto fail_over = args.options.find("fail-over");
  if (fail_over != args.options.end()) {
    std::string spec = fail_over->second;
    if (!spec.empty() && spec.back() == '%') spec.pop_back();
    try {
      threshold = std::stod(spec) / 100.0;
    } catch (const std::exception&) {
      throw ConfigError("--fail-over expects a percentage, got '" +
                        fail_over->second + "'");
    }
    if (threshold < 0) throw ConfigError("--fail-over expects a percentage");
  }

  const auto top = static_cast<std::size_t>(option_int(args, "top", 16));
  std::vector<JsonDelta> changed;
  for (const JsonDelta& delta : diff.deltas) {
    if (delta.before != delta.after) changed.push_back(delta);
  }

  if (json_dest(args) != JsonDest::kStdout) {
    std::cout << args.positional[0] << " -> " << args.positional[1] << ": "
              << diff.compared << " numeric leaves compared, "
              << changed.size() << " changed, max relative change "
              << TextTable::num(diff.max_rel_change() * 100, 3) << "%\n";
    for (const std::string& path : diff.removed) {
      std::cout << "  removed: " << path << "\n";
    }
    for (const std::string& path : diff.added) {
      std::cout << "  added:   " << path << "\n";
    }
    for (const std::string& path : diff.changed) {
      std::cout << "  changed: " << path << "\n";
    }
    if (!changed.empty()) {
      TextTable table({"Path", "Before", "After", "Change %"});
      for (std::size_t i = 0; i < std::min(top, changed.size()); ++i) {
        const JsonDelta& delta = changed[i];
        table.add_row({delta.path, TextTable::num(delta.before, 6),
                       TextTable::num(delta.after, 6),
                       TextTable::num(delta.rel_change() * 100, 3)});
      }
      std::cout << "largest relative changes (" << std::min(top, changed.size())
                << " of " << changed.size() << ")\n"
                << table.to_string();
    }
  }

  emit_json(args, "JSON delta report", [&](std::ostream& out) {
    out << "{\"schema\":\"holmes.json_diff.v1\",\"compared\":" << diff.compared
        << ",\"max_rel_change\":" << json_number(diff.max_rel_change())
        << ",\"added\":" << diff.added.size()
        << ",\"removed\":" << diff.removed.size()
        << ",\"changed_non_numeric\":" << diff.changed.size()
        << ",\"deltas\":[";
    for (std::size_t i = 0; i < std::min(top, changed.size()); ++i) {
      const JsonDelta& delta = changed[i];
      if (i > 0) out << ",";
      out << "{\"path\":\"" << json_escape(delta.path)
          << "\",\"before\":" << json_number(delta.before)
          << ",\"after\":" << json_number(delta.after)
          << ",\"rel_change\":" << json_number(delta.rel_change()) << "}";
    }
    out << "]}";
  });

  if (threshold >= 0 && diff.over_threshold(threshold)) {
    std::cerr << "diff exceeds --fail-over threshold ("
              << TextTable::num(diff.max_rel_change() * 100, 3) << "% > "
              << TextTable::num(threshold * 100, 3) << "% or structure "
              << "changed)\n";
    return 2;
  }
  return 0;
}

int cmd_lint(const Args& args) {
  if (args.options.count("rules")) {
    TextTable table({"Rule", "Family", "Severity", "Title"});
    for (const verify::RuleInfo& rule : verify::rule_catalog()) {
      table.add_row({rule.id, verify::to_string(rule.family),
                     verify::to_string(rule.default_severity), rule.title});
    }
    table.print();
    std::cout << "\nSee docs/static-analysis.md for the full catalog.\n";
    return 0;
  }
  if (args.positional.size() < 2) {
    throw ConfigError(
        "usage: holmes_cli lint <topology> <group> "
        "[--framework F] [--json FILE] [--strict] [--no-graph] (or lint "
        "--rules)");
  }
  const net::Topology topo = resolve_topology(args.positional[0]);
  const int group = std::stoi(args.positional[1]);
  const FrameworkConfig framework = resolve_framework(args);
  const int iterations = option_int(args, "iterations", 3);

  const TrainingPlan plan =
      Planner(framework).plan(topo, model::parameter_group(group));
  verify::LintReport report = lint_training_plan(topo, plan);

  if (!args.options.count("no-graph")) {
    // Lower + simulate the plan and audit the task graph and its timings.
    // The debug pre-flight inside run() would re-lint the plan and throw on
    // the first error; lint wants the *full* report, so run it at the
    // current (non-debug) log level and keep the linting here.
    SimArtifacts artifacts;
    TrainingSimulator{}.run(topo, plan, iterations, /*perturbations=*/{},
                            /*chrome_trace=*/nullptr, &artifacts);
    report.merge(lint_artifacts(artifacts));
  }
  if (args.options.count("strict")) report.promote_warnings();

  if (json_dest(args) == JsonDest::kStdout) {
    verify::write_json(std::cout, report);
    std::cout << "\n";
    return report.ok() ? 0 : 1;
  }

  std::cout << framework.name << " / group " << group << " on "
            << net::format_topology(topo) << " (" << plan.degrees.to_string()
            << ")\n";
  verify::print_text(std::cout, report);

  emit_json(args, "JSON report",
            [&](std::ostream& out) { verify::write_json(out, report); });
  return report.ok() ? 0 : 1;
}

int cmd_envs() {
  TextTable table({"Name", "Spec (4 nodes)", "Description"});
  table.add_row({"ib", "4x8:ib", "one InfiniBand cluster"});
  table.add_row({"roce", "4x8:roce", "one RoCE cluster"});
  table.add_row({"eth", "4x8:eth", "one Ethernet-only cluster"});
  table.add_row({"hybrid", "2x8:ib+2x8:roce",
                 "two clusters, incompatible RDMA NICs (paper Hybrid)"});
  table.add_row({"split-ib", "2x8:ib+2x8:ib",
                 "two IB clusters, Ethernet between (Fig. 4)"});
  table.add_row({"split-roce", "2x8:roce+2x8:roce",
                 "two RoCE clusters, Ethernet between (Fig. 4)"});
  table.print();
  std::cout << "\nAny spec of the form <nodes>x<gpus>:<nic>[@gbps] joined by "
               "'+' is accepted; named envs take ':<nodes>'.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    apply_log_level(args);
    if (args.command == "simulate") return cmd_simulate(args);
    if (args.command == "plan") return cmd_plan(args);
    if (args.command == "tune") return cmd_tune(args);
    if (args.command == "sweep") return cmd_sweep(args);
    if (args.command == "analytic") return cmd_analytic(args);
    if (args.command == "stats") return cmd_stats(args);
    if (args.command == "explain") return cmd_explain(args);
    if (args.command == "diff") return cmd_diff(args);
    if (args.command == "lint") return cmd_lint(args);
    if (args.command == "envs") return cmd_envs();
    throw ConfigError(
        "unknown command '" + args.command +
        "' (simulate|plan|tune|sweep|analytic|stats|explain|diff|lint|envs)");
  } catch (const Error& e) {
    std::cerr << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
