/// holmes_cli — consolidated command-line interface over the library.
///
///   holmes_cli simulate <topology> <group> [options]
///       Plan + simulate one scenario; print metrics.
///       --framework F    holmes | megatron-lm | megatron-deepspeed |
///                        megatron-llama            (default holmes)
///       --iterations N   simulated iterations      (default 3)
///       --trace FILE     write a Chrome trace of the run
///       --straggler R:F  slow rank R down by factor F (repeatable)
///
///   holmes_cli plan <topology> <group> [--framework F]
///       Print the resolved plan: degrees, stage placement, partition,
///       per-DP-group transport.
///
///   holmes_cli tune <topology> <group> [--top N]
///       Auto-tune the (tensor, pipeline) layout; print the ranking.
///
///   holmes_cli sweep <topology> <group...> [--markdown|--csv]
///       All four frameworks x the given groups on one topology.
///
///   holmes_cli analytic <topology> <group> [--framework F]
///       Closed-form iteration-time breakdown (see core/analytic.h).
///
///   holmes_cli stats <topology> <group> [options]
///       Simulate one scenario and print the observability breakdown:
///       per-device utilization, per-stage pipeline-bubble fraction,
///       per-link busy/contention time, per-communicator traffic, and the
///       exposed-vs-overlapped grad-sync split (docs/observability.md).
///       --framework F    as for simulate          (default holmes)
///       --iterations N   simulated iterations     (default 3)
///       --json[=FILE]    stable JSON run summary (see JSON output below)
///       --window A:B     clip the accounting to [A, B] seconds (explain's
///                        clipping semantics) instead of the steady-state
///                        window
///       --straggler R:F  slow rank R down by factor F (repeatable)
///       --self-profile[=FILE]  engine self-profile of the run: bare, an
///                        extra text section; =FILE, holmes.self_profile.v1
///
///   holmes_cli explain <topology> <group> [options]
///       Simulate one scenario, extract the critical path, and print the
///       makespan attribution: per-stage compute, per-NIC-class and
///       per-communicator serialization, propagation latency, queue wait —
///       plus first-order what-if sensitivities (docs/observability.md).
///       Segment durations sum to the makespan exactly.
///       --framework F    as for simulate          (default holmes)
///       --iterations N   simulated iterations     (default 3)
///       --json[=FILE]    stable JSON critical-path summary
///       --top N          longest segments / what-ifs shown (default 16)
///       --window A:B     clip the attribution to [A, B] seconds
///       --trace FILE     Chrome trace with flow arrows + critical lane
///       --straggler R:F  slow rank R down by factor F (repeatable)
///       --self-profile[=FILE]  as for stats
///
///   holmes_cli timeline <topology> <group> [options]
///       Simulate one scenario and print its exact time-resolved fabric
///       telemetry (docs/observability.md): per-NIC-class occupancy
///       sparklines with saturation intervals, per-link top talkers,
///       per-channel in-flight byte peaks, and effective-rate overlays for
///       degraded resources. The JSON document (holmes.timeline.v1) is
///       byte-identical at any --threads count and across disjoint tie
///       seeds. Fires HV406 when the Ethernet fallback fabric is saturated
///       beyond --warn-share of the window; exit codes as for lint.
///       --framework F    as for simulate          (default holmes)
///       --iterations N   simulated iterations     (default 3)
///       --window A:B     observe [A, B] seconds   (default the full run)
///       --buckets N      curve resolution         (default 48)
///       --resource S     keep only resources whose name contains S
///       --top N          top talkers shown        (default 8)
///       --saturation F   busy-port fraction that counts as saturated
///                        (default 1.0 = every port)
///       --warn-share F   saturated share of the window above which HV406
///                        fires                    (default 0.25)
///       --threads N      extraction fan-out workers (default 1 = serial,
///                        0 = hardware concurrency)
///       --seed S         nonzero: re-run under the disjoint tie
///                        permutation seeded S (byte-identity probe)
///       --fault-plan FILE  inject a holmes.fault_plan.v1 schedule; its
///                        degradation windows become rate overlays
///       --trace FILE     Chrome trace with "rate <resource>" counter
///                        tracks at breakpoint resolution
///       --json[=FILE]    stable holmes.timeline.v1 document
///       --straggler R:F  slow rank R down by factor F (repeatable)
///
///   holmes_cli diff <before.json> <after.json> [options]
///       Compare two JSON documents emitted by this tool (run summaries,
///       critical-path summaries, bench results): numeric leaves are
///       paired structurally — arrays of named objects align by name — and
///       the largest relative changes are reported.
///       --fail-over P    exit 2 when any |relative change| exceeds P
///                        (percent; "5" or "5%"), or on structure changes
///       --top N          rows shown                (default 16)
///       --json[=FILE]    machine-readable delta report
///
///   holmes_cli lint <topology> <group> [options]
///       Static verifier: plan-family (HV1xx) lints over the resolved plan,
///       then graph/execution/flow-family (HV2xx/HV3xx/HV4xx) lints over a
///       simulated run. Exit codes are graded (docs/static-analysis.md):
///       0 clean, 1 warnings only, 2 errors, 3 internal failure.
///       --framework F    as for simulate          (default holmes)
///       --iterations N   simulated iterations     (default 3)
///       --json[=FILE]    stable JSON lint report (fingerprint-stamped)
///       --strict         promote warnings to errors
///       --no-graph       plan lints only (skip the simulation)
///       --rules          print the rule catalog and exit
///       --rules --markdown  emit the catalog as the markdown table
///                        docs/static-analysis.md embeds (CI drift check)
///
///   holmes_cli check <topology> <group> [options]
///       Schedule-race determinism check (rule HV405): simulate the
///       scenario canonically, then re-run it under N seeded permutations
///       of equal-ready-time ties and byte-compare the run-summary and
///       critical-path JSON documents. Any divergence is an error naming
///       the first task that moved. The HV4xx flow bounds (static lower
///       bound vs simulated makespan) are checked on the same run. Exit
///       codes as for lint.
///       --permutations N as described             (default 5)
///       --seed S         base tie seed            (default 0x484F4C4D4553)
///       --policy P       disjoint | all           (default disjoint;
///                        disjoint must never diverge, all also flags
///                        legitimately tie-order-sensitive schedules)
///       --framework F    as for simulate          (default holmes)
///       --iterations N   simulated iterations     (default 3)
///       --threads N      permutation fan-out workers (default 1 = serial,
///                        0 = hardware concurrency; the report is
///                        byte-identical at any thread count)
///       --json[=FILE]    stable holmes.check_report.v1 document
///       --strict         promote warnings to errors
///       --fault-plan FILE  holmes.fault_plan.v1 document; its degradation
///                        windows and stragglers are active during the
///                        canonical run and every permutation, proving the
///                        determinism contract holds with faults injected
///
///   holmes_cli inject <topology> <group> --fault-plan FILE [options]
///       Fault injection + elastic recovery (docs/robustness.md): lint the
///       holmes.fault_plan.v1 document (HV501-503), then simulate the job
///       three ways — fault-free, faulted with the static partition, and
///       faulted with a partition re-planned from per-stage speeds measured
///       on the executed graph. Reports the recovered throughput fraction,
///       the checkpoint-replay downtime of a node loss, and the
///       critical-path attribution delta. Exit codes as for lint.
///       --fault-plan FILE  the fault schedule (required)
///       --framework F    as for simulate          (default holmes)
///       --iterations N   simulated iterations     (default 3)
///       --json[=FILE]    unstamped holmes.recovery_report.v1 document
///                        (byte-stable across machines, CI-diffable)
///
///   holmes_cli bench [binaries...] [options]
///       Perf-trajectory harness (docs/observability.md): runs bench
///       binaries (explicit paths and/or --bin-dir discovery of
///       bench_*/micro_* executables) `--repeat` times after `--warmup`
///       discarded passes, folds the per-bench holmes.bench.v1 documents
///       plus an in-process deterministic engine probe into one
///       holmes.bench_suite.v1 trajectory stamped with the build
///       fingerprint, and optionally gates against a stored baseline.
///       --bin-dir DIR    discover bench_*/micro_* binaries in DIR
///       --filter S       keep only binaries whose name contains S
///       --repeat N       timed passes per bench        (default 3)
///       --warmup N       discarded passes per bench    (default 1)
///       --no-probe       skip the in-process engine probe
///       --json[=FILE]    write the trajectory document
///       --baseline FILE  diff the fresh trajectory against FILE
///       --fail-over P    with --baseline: exit 2 when a metric regresses
///                        by more than P percent. Timing leaves (wall_s,
///                        time_s/*, phases) must also move more than the
///                        noise floor; counters and simulated seconds gate
///                        exactly. Fingerprint drift never gates.
///       --noise-floor S  absolute seconds below which timing deltas are
///                        noise                         (default 0.05)
///       HOLMES_BENCH_DELIBERATE_DELAY_MS=<ms> in the environment slows
///       every timed pass — the CI gate rehearsal.
///
///   holmes_cli envs
///       List the named environments and their topology specs.
///
/// Global options:
///   --version        print the build fingerprint and exit
///   --log-level L    debug | info | warning | error  (default warning)
///
/// JSON output: every subcommand that emits JSON takes `--json[=FILE]`.
/// A bare `--json` or `--json=-` writes the JSON to stdout *instead of*
/// the text report; `--json=FILE` writes the file alongside the report.
///
/// <topology> is either a named environment (ib, roce, eth, hybrid —
/// 4 nodes by default, or e.g. hybrid:8 for 8 nodes) or a spec like
/// "2x8:ib+2x8:roce" (see net/topology_parse.h).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/analytic.h"
#include "core/autotune.h"
#include "core/preflight.h"
#include "core/experiment.h"
#include "core/faults.h"
#include "core/schedule_check.h"
#include "core/report.h"
#include "core/run_stats.h"
#include "core/timeline_report.h"
#include "model/memory.h"
#include "net/topology_parse.h"
#include "obs/critical_path.h"
#include "obs/self_profile.h"
#include "obs/summary.h"
#include "sim/scenario_runner.h"
#include "sim/trace.h"
#include "util/build_info.h"
#include "util/error.h"
#include "util/json.h"
#include "util/json_diff.h"
#include "util/logging.h"
#include "util/sample_stats.h"
#include "util/table.h"
#include "util/units.h"
#include "util/window_spec.h"
#include "verify/rules.h"

using namespace holmes;
using namespace holmes::core;

namespace {

struct Args {
  std::string command;
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;  // --key value (or "" for flags)
  std::vector<std::string> stragglers;
};

std::string usage_text() {
  return
      "usage: holmes_cli <command> [args]\n"
      "\n"
      "  simulate <topology> <group>    plan + simulate one scenario\n"
      "  plan     <topology> <group>    print the resolved plan\n"
      "  tune     <topology> <group>    auto-tune the (tensor, pipeline) "
      "layout\n"
      "  sweep    <topology> <group..>  all frameworks x groups grid\n"
      "  analytic <topology> <group>    closed-form iteration breakdown\n"
      "  stats    <topology> <group>    observability breakdown of one run\n"
      "  explain  <topology> <group>    critical-path makespan attribution\n"
      "  timeline <topology> <group>    time-resolved fabric telemetry of "
      "one run\n"
      "  diff     <before> <after>      compare two emitted JSON documents\n"
      "  lint     <topology> <group>    static verifier (or lint --rules)\n"
      "  check    <topology> <group>    schedule-race determinism check\n"
      "  inject   <topology> <group>    fault injection + elastic recovery\n"
      "  bench    [binaries...]         perf-trajectory harness over the "
      "bench binaries\n"
      "  envs                           list named environments\n"
      "\n"
      "global options: --version, --log-level debug|info|warning|error\n"
      "see the holmes_cli source header for per-command options";
}

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc < 2) throw ConfigError(usage_text());
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      std::string key = token.substr(2);
      // --key=value form; "--json" stays valueless (= stdout).
      const std::size_t eq = key.find('=');
      if (eq != std::string::npos) {
        const std::string value = key.substr(eq + 1);
        key = key.substr(0, eq);
        if (key == "straggler") {
          args.stragglers.push_back(value);
        } else {
          args.options[key] = value;
        }
        continue;
      }
      const bool is_flag = key == "markdown" || key == "csv" ||
                           key == "strict" || key == "no-graph" ||
                           key == "rules" || key == "json" ||
                           key == "self-profile" || key == "no-probe";
      if (!is_flag) {
        if (i + 1 >= argc) throw ConfigError("missing value for --" + key);
        const std::string value = argv[++i];
        if (key == "straggler") {
          args.stragglers.push_back(value);
        } else {
          args.options[key] = value;
        }
      } else {
        args.options[key] = "";
      }
    } else {
      args.positional.push_back(token);
    }
  }
  return args;
}

net::Topology resolve_topology(const std::string& name) {
  if (name.find('x') != std::string::npos &&
      name.find(':') != std::string::npos) {
    return net::parse_topology(name);
  }
  std::string env = name;
  int nodes = 4;
  const std::size_t colon = name.find(':');
  if (colon != std::string::npos) {
    env = name.substr(0, colon);
    nodes = std::stoi(name.substr(colon + 1));
  }
  if (env == "ib") return make_environment(NicEnv::kInfiniBand, nodes);
  if (env == "roce") return make_environment(NicEnv::kRoCE, nodes);
  if (env == "eth") return make_environment(NicEnv::kEthernet, nodes);
  if (env == "hybrid") return make_environment(NicEnv::kHybrid, nodes);
  if (env == "split-ib") return make_environment(NicEnv::kSplitIB, nodes);
  if (env == "split-roce") return make_environment(NicEnv::kSplitRoCE, nodes);
  throw ConfigError("unknown topology '" + name +
                    "' (named env or spec like 2x8:ib+2x8:roce)");
}

FrameworkConfig resolve_framework(const Args& args) {
  const auto it = args.options.find("framework");
  const std::string name = it == args.options.end() ? "holmes" : it->second;
  if (name == "holmes") return FrameworkConfig::holmes();
  if (name == "megatron-lm") return FrameworkConfig::megatron_lm();
  if (name == "megatron-deepspeed") return FrameworkConfig::megatron_deepspeed();
  if (name == "megatron-llama") return FrameworkConfig::megatron_llama();
  throw ConfigError("unknown framework '" + name + "'");
}

int option_int(const Args& args, const std::string& key, int fallback) {
  const auto it = args.options.find(key);
  return it == args.options.end() ? fallback : std::stoi(it->second);
}

void apply_log_level(const Args& args) {
  const auto it = args.options.find("log-level");
  if (it == args.options.end()) return;
  const std::string& level = it->second;
  if (level == "debug") {
    set_log_level(LogLevel::kDebug);
  } else if (level == "info") {
    set_log_level(LogLevel::kInfo);
  } else if (level == "warning") {
    set_log_level(LogLevel::kWarning);
  } else if (level == "error") {
    set_log_level(LogLevel::kError);
  } else {
    throw ConfigError("unknown log level '" + level +
                      "' (debug|info|warning|error)");
  }
}

Perturbations resolve_perturbations(const Args& args) {
  Perturbations perturb;
  for (const std::string& spec : args.stragglers) {
    const std::size_t colon = spec.find(':');
    if (colon == std::string::npos) {
      throw ConfigError("--straggler expects RANK:FACTOR, got '" + spec + "'");
    }
    perturb.device_slowdown[std::stoi(spec.substr(0, colon))] =
        std::stod(spec.substr(colon + 1));
  }
  return perturb;
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open " + path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// `--json[=FILE]` convention: absent -> no JSON; "" or "-" -> stdout
/// replacing the text report; otherwise a file alongside it.
enum class JsonDest { kNone, kStdout, kFile };

JsonDest json_dest(const Args& args) {
  const auto it = args.options.find("json");
  if (it == args.options.end()) return JsonDest::kNone;
  return it->second.empty() || it->second == "-" ? JsonDest::kStdout
                                                 : JsonDest::kFile;
}

/// Writes one JSON document per the --json convention; `write` must not
/// emit the trailing newline. `what` names the artifact in the
/// confirmation line printed for the file case.
template <typename WriteFn>
void emit_json(const Args& args, const char* what, WriteFn&& write) {
  switch (json_dest(args)) {
    case JsonDest::kNone:
      return;
    case JsonDest::kStdout:
      write(std::cout);
      std::cout << "\n";
      return;
    case JsonDest::kFile: {
      const std::string& file = args.options.at("json");
      std::ofstream out(file);
      if (!out) throw ConfigError("cannot open " + file);
      write(out);
      out << "\n";
      std::cout << "\n" << what << " written to " << file << "\n";
      return;
    }
  }
}

/// `--self-profile[=FILE]`: bare appends a text section to the report
/// (suppressed when --json owns stdout); =FILE writes the stable
/// holmes.self_profile.v1 document alongside it.
void emit_self_profile(const Args& args, const SimArtifacts& artifacts) {
  if (!args.options.count("self-profile")) return;
  if (!artifacts.self_profile.has_value()) return;
  const std::string& file = args.options.at("self-profile");
  if (file.empty() || file == "-") {
    if (json_dest(args) == JsonDest::kStdout) return;
    std::cout << "\n";
    obs::print_text(std::cout, *artifacts.self_profile);
    return;
  }
  std::ofstream out(file);
  if (!out) throw ConfigError("cannot open " + file);
  obs::write_json(out, *artifacts.self_profile);
  out << "\n";
  if (json_dest(args) != JsonDest::kStdout) {
    std::cout << "\nself-profile written to " << file << "\n";
  }
}

int cmd_simulate(const Args& args) {
  if (args.positional.size() < 2) {
    throw ConfigError("usage: holmes_cli simulate <topology> <group>");
  }
  const net::Topology topo = resolve_topology(args.positional[0]);
  const int group = std::stoi(args.positional[1]);
  const FrameworkConfig framework = resolve_framework(args);
  const int iterations = option_int(args, "iterations", 3);
  const Perturbations perturb = resolve_perturbations(args);

  const TrainingPlan plan =
      Planner(framework).plan(topo, model::parameter_group(group));
  IterationMetrics m;
  const auto trace = args.options.find("trace");
  if (trace != args.options.end()) {
    std::ofstream out(trace->second);
    if (!out) throw ConfigError("cannot open " + trace->second);
    m = TrainingSimulator{}.run(topo, plan, iterations, perturb, &out);
    std::cout << "trace written to " << trace->second << "\n";
  } else {
    m = TrainingSimulator{}.run(topo, plan, iterations, perturb);
  }

  std::cout << framework.name << " / group " << group << " on "
            << net::format_topology(topo) << " (" << plan.degrees.to_string()
            << ")\n"
            << "  iteration      " << format_time(m.iteration_time) << "\n"
            << "  TFLOPS/GPU     " << TextTable::num(m.tflops_per_gpu, 1) << "\n"
            << "  throughput     " << TextTable::num(m.throughput, 2)
            << " samples/s\n"
            << "  grad sync      " << format_time(m.grad_sync_span) << "\n"
            << "  param gather   " << format_time(m.param_allgather_span) << "\n"
            << "  optimizer      " << format_time(m.optimizer_span) << "\n"
            << "  simulated tasks " << m.task_count << "\n";
  return 0;
}

int cmd_plan(const Args& args) {
  if (args.positional.size() < 2) {
    throw ConfigError("usage: holmes_cli plan <topology> <group>");
  }
  const net::Topology topo = resolve_topology(args.positional[0]);
  const int group = std::stoi(args.positional[1]);
  const FrameworkConfig framework = resolve_framework(args);
  const TrainingPlan plan =
      Planner(framework).plan(topo, model::parameter_group(group));

  std::cout << framework.name << " plan for group " << group << " on "
            << net::format_topology(topo) << "\n"
            << "  degrees        " << plan.degrees.to_string() << "\n"
            << "  micro-batches  " << plan.micro_batches << " per replica\n"
            << "  fallback       " << (plan.ethernet_fallback ? "yes" : "no")
            << "\n  stages:\n";
  const auto clusters = parallel::stage_clusters(plan.groups, topo);
  for (std::size_t s = 0; s < clusters.size(); ++s) {
    std::cout << "    stage " << s << ": "
              << plan.partition[static_cast<std::size_t>(s)] << " layers on "
              << (clusters[s] >= 0 ? topo.cluster(clusters[s]).name : "MIXED")
              << " (" << net::to_string(plan.stage_nics[s]) << ")\n";
  }
  std::cout << "  NIC-homogeneous DP groups: "
            << parallel::rdma_dp_group_fraction(plan.groups, topo) * 100
            << "%\n";

  // Worst-stage per-device memory estimate (first stage holds the most
  // layers under the uniform split; self-adapting may shift the peak, so
  // take the max over stages).
  Bytes peak = 0;
  for (int s = 0; s < plan.degrees.pipeline; ++s) {
    int layers = 0;
    for (int v = s; v < plan.virtual_stages(); v += plan.degrees.pipeline) {
      layers += plan.partition[static_cast<std::size_t>(v)];
    }
    const auto est = model::estimate_device_memory(
        plan.workload.config, layers, plan.degrees.tensor,
        plan.workload.micro_batch_size,
        std::min(plan.degrees.pipeline, 8),
        plan.framework.dp_sync.shards_optimizer() ? plan.degrees.data : 1, {},
        plan.framework.dp_sync.shards_weights() ? plan.degrees.data : 1);
    peak = std::max(peak, est.total());
  }
  std::cout << "  est. memory/GPU (worst stage): " << format_bytes(peak)
            << "\n";
  return 0;
}

int cmd_tune(const Args& args) {
  if (args.positional.size() < 2) {
    throw ConfigError("usage: holmes_cli tune <topology> <group>");
  }
  const net::Topology topo = resolve_topology(args.positional[0]);
  const int group = std::stoi(args.positional[1]);
  TuneOptions options;
  options.max_pipeline = option_int(args, "max-pipeline", 8);
  const auto ranked = autotune(resolve_framework(args), topo,
                               model::parameter_group(group), options);
  const int top = option_int(args, "top", 10);

  TextTable table({"Rank", "t", "p", "d", "TFLOPS", "Throughput", "Mem/GPU"});
  for (std::size_t i = 0;
       i < std::min<std::size_t>(ranked.size(), static_cast<std::size_t>(top));
       ++i) {
    const TuneCandidate& c = ranked[i];
    table.add_row({TextTable::num(static_cast<std::int64_t>(i + 1)),
                   TextTable::num(static_cast<std::int64_t>(c.tensor)),
                   TextTable::num(static_cast<std::int64_t>(c.pipeline)),
                   TextTable::num(static_cast<std::int64_t>(c.data)),
                   TextTable::num(c.metrics.tflops_per_gpu, 0),
                   TextTable::num(c.metrics.throughput, 2),
                   format_bytes(c.estimated_memory)});
  }
  table.print();
  return 0;
}

int cmd_sweep(const Args& args) {
  if (args.positional.size() < 2) {
    throw ConfigError("usage: holmes_cli sweep <topology> <group...>");
  }
  const net::Topology topo = resolve_topology(args.positional[0]);
  ExperimentGrid grid("Framework sweep on " + net::format_topology(topo),
                      "Framework");
  for (const FrameworkConfig& framework :
       {FrameworkConfig::megatron_lm(), FrameworkConfig::megatron_deepspeed(),
        FrameworkConfig::megatron_llama(), FrameworkConfig::holmes()}) {
    for (std::size_t g = 1; g < args.positional.size(); ++g) {
      const int group = std::stoi(args.positional[g]);
      grid.set(framework.name, "group " + std::to_string(group),
               run_experiment(framework, topo, group));
    }
  }
  if (args.options.count("csv")) {
    std::cout << grid.to_csv();
  } else if (args.options.count("markdown")) {
    std::cout << grid.to_markdown(ExperimentGrid::tflops(), 0);
  } else {
    std::cout << grid.to_text(ExperimentGrid::tflops(), 0);
  }
  return 0;
}

int cmd_analytic(const Args& args) {
  if (args.positional.size() < 2) {
    throw ConfigError("usage: holmes_cli analytic <topology> <group>");
  }
  const net::Topology topo = resolve_topology(args.positional[0]);
  const int group = std::stoi(args.positional[1]);
  const TrainingPlan plan = Planner(resolve_framework(args))
                                .plan(topo, model::parameter_group(group));
  const AnalyticBreakdown b = analytic_iteration(topo, plan);
  const IterationMetrics simulated = TrainingSimulator{}.run(topo, plan);
  std::cout << "closed-form breakdown (seconds):\n"
            << "  overhead         " << b.overhead << "\n"
            << "  steady compute   " << b.steady_compute << "\n"
            << "  pipeline bubble  " << b.pipeline_bubble << "\n"
            << "  grad sync        " << b.grad_reduce_scatter << "\n"
            << "  optimizer        " << b.optimizer << "\n"
            << "  param all-gather " << b.param_allgather << "\n"
            << "  total            " << b.total() << "\n"
            << "simulated          " << simulated.iteration_time << "\n"
            << "agreement          "
            << TextTable::num(b.total() / simulated.iteration_time * 100, 1)
            << "%\n";
  return 0;
}

int cmd_stats(const Args& args) {
  if (args.positional.size() < 2) {
    throw ConfigError("usage: holmes_cli stats <topology> <group>");
  }
  const net::Topology topo = resolve_topology(args.positional[0]);
  const int group = std::stoi(args.positional[1]);
  const FrameworkConfig framework = resolve_framework(args);
  const int iterations = option_int(args, "iterations", 3);
  const Perturbations perturb = resolve_perturbations(args);

  RunSummaryOptions options;
  const auto window = args.options.find("window");
  if (window != args.options.end()) {
    const WindowSpec spec = parse_window_spec(window->second);
    options.override_window = true;
    options.window_begin = spec.begin;
    options.window_end = spec.end;
  }

  const TrainingPlan plan =
      Planner(framework).plan(topo, model::parameter_group(group));
  // SelfProfiler is in-place only (the thread-local points at its member).
  std::optional<obs::SelfProfiler> profiler;
  if (args.options.count("self-profile")) profiler.emplace();
  SimArtifacts artifacts;
  const IterationMetrics m =
      TrainingSimulator{}.run(topo, plan, iterations, perturb,
                              /*chrome_trace=*/nullptr, &artifacts);
  const obs::RunSummary summary =
      build_run_summary(topo, plan, m, artifacts, options);

  if (json_dest(args) == JsonDest::kStdout) {
    obs::write_json(std::cout, summary);
    std::cout << "\n";
    emit_self_profile(args, artifacts);
    return 0;
  }

  std::cout << summary.framework << " / " << summary.workload << " on "
            << summary.topology << " (" << plan.degrees.to_string() << ")\n"
            << "  iteration   " << format_time(m.iteration_time)
            << "   TFLOPS/GPU " << TextTable::num(m.tflops_per_gpu, 1)
            << "   throughput " << TextTable::num(m.throughput, 2)
            << " samples/s\n"
            << "  window      [" << TextTable::num(summary.window_begin_s, 3)
            << "s, " << TextTable::num(summary.window_end_s, 3) << "s)\n\n";

  TextTable devices({"Device", "Busy", "Waiting", "Util %", "Tasks"});
  for (const auto& d : summary.devices) {
    devices.add_row({d.name, format_time(d.busy_s), format_time(d.waiting_s),
                     TextTable::num(d.utilization * 100, 1),
                     TextTable::num(static_cast<std::int64_t>(d.tasks))});
  }
  std::cout << "device utilization (steady-state window)\n";
  devices.print();

  TextTable stages(
      {"Stage", "Devices", "Layers", "Compute busy", "Span", "Bubble %"});
  for (const auto& st : summary.stages) {
    stages.add_row({TextTable::num(static_cast<std::int64_t>(st.stage)),
                    TextTable::num(static_cast<std::int64_t>(st.devices)),
                    TextTable::num(static_cast<std::int64_t>(st.layers)),
                    format_time(st.compute_busy_s), format_time(st.span_s),
                    TextTable::num(st.bubble_fraction * 100, 1)});
  }
  std::cout << "\npipeline bubble (measured iteration)\n";
  stages.print();

  // Links, busiest first; everything idle is dropped by the summary already.
  std::vector<obs::RunSummary::Link> links = summary.links;
  std::sort(links.begin(), links.end(),
            [](const auto& a, const auto& b) { return a.busy_s > b.busy_s; });
  constexpr std::size_t kMaxLinks = 16;
  TextTable link_table(
      {"Link", "Busy", "Waiting", "Util %", "Bytes", "Eff Gbit/s"});
  for (std::size_t i = 0; i < std::min(links.size(), kMaxLinks); ++i) {
    const auto& l = links[i];
    link_table.add_row({l.name, format_time(l.busy_s), format_time(l.waiting_s),
                        TextTable::num(l.utilization * 100, 1),
                        format_bytes(l.bytes),
                        TextTable::num(l.effective_gbps, 1)});
  }
  std::cout << "\nbusiest links (" << std::min(links.size(), kMaxLinks)
            << " of " << links.size() << " active)\n";
  link_table.print();

  TextTable comms({"Comm", "Bytes", "Transfers", "Busy", "Span", "Bus Gbit/s"});
  for (const auto& c : summary.comms) {
    comms.add_row({c.name, format_bytes(c.bytes),
                   TextTable::num(static_cast<std::int64_t>(c.transfers)),
                   format_time(c.busy_s), format_time(c.span_s),
                   TextTable::num(c.bus_gbps, 1)});
  }
  std::cout << "\ncommunicator traffic (steady-state window)\n";
  comms.print();

  std::cout << "\ngrad sync      total " << format_time(summary.grad_sync.total_s)
            << "  overlapped " << format_time(summary.grad_sync.overlapped_s)
            << "  exposed " << format_time(summary.grad_sync.exposed_s) << "\n"
            << "param gather   total "
            << format_time(summary.param_allgather.total_s) << "  overlapped "
            << format_time(summary.param_allgather.overlapped_s)
            << "  exposed " << format_time(summary.param_allgather.exposed_s)
            << "\n";

  emit_self_profile(args, artifacts);
  emit_json(args, "JSON summary",
            [&](std::ostream& out) { obs::write_json(out, summary); });
  return 0;
}

int cmd_explain(const Args& args) {
  if (args.positional.size() < 2) {
    throw ConfigError(
        "usage: holmes_cli explain <topology> <group> [--framework F] "
        "[--json[=FILE]] [--top N] [--window A:B] [--trace FILE]");
  }
  const net::Topology topo = resolve_topology(args.positional[0]);
  const int group = std::stoi(args.positional[1]);
  const FrameworkConfig framework = resolve_framework(args);
  const int iterations = option_int(args, "iterations", 3);
  const Perturbations perturb = resolve_perturbations(args);

  CriticalPathOptions options;
  const int top = option_int(args, "top", 16);
  if (top <= 0) throw ConfigError("--top expects a positive count");
  options.top_segments = static_cast<std::size_t>(top);
  const auto window = args.options.find("window");
  if (window != args.options.end()) {
    const WindowSpec spec = parse_window_spec(window->second);
    options.window_begin = spec.begin;
    options.window_end = spec.end;
  }

  const TrainingPlan plan =
      Planner(framework).plan(topo, model::parameter_group(group));
  std::optional<obs::SelfProfiler> profiler;
  if (args.options.count("self-profile")) profiler.emplace();
  SimArtifacts artifacts;
  const IterationMetrics m =
      TrainingSimulator{}.run(topo, plan, iterations, perturb,
                              /*chrome_trace=*/nullptr, &artifacts);
  obs::CriticalPath path;
  const obs::CriticalPathSummary summary =
      build_critical_path_summary(topo, plan, m, artifacts, options, &path);

  const auto trace = args.options.find("trace");
  if (trace != args.options.end()) {
    std::ofstream out(trace->second);
    if (!out) throw ConfigError("cannot open " + trace->second);
    sim::TraceOptions trace_options;
    trace_options.critical_tasks = path.tasks;
    if (!artifacts.rates.empty()) trace_options.rates = &artifacts.rates;
    sim::write_chrome_trace(out, artifacts.graph, *artifacts.result,
                            trace_options);
  }

  if (json_dest(args) == JsonDest::kStdout) {
    obs::write_json(std::cout, summary);
    std::cout << "\n";
    emit_self_profile(args, artifacts);
    return 0;
  }
  obs::print_text(std::cout, summary, options.top_segments);
  if (trace != args.options.end()) {
    std::cout << "\ntrace written to " << trace->second << "\n";
  }
  emit_self_profile(args, artifacts);
  emit_json(args, "JSON summary",
            [&](std::ostream& out) { obs::write_json(out, summary); });
  return 0;
}

/// Graded verdict exit code shared by `lint`, `check`, and `timeline`:
/// 0 clean (notes never gate), 1 warnings only, 2 errors. Internal
/// failures exit 3 via main()'s catch.
int verdict_exit_code(const verify::LintReport& report) {
  if (report.count(verify::Severity::kError) > 0) return 2;
  if (report.count(verify::Severity::kWarning) > 0) return 1;
  return 0;
}

int cmd_timeline(const Args& args) {
  if (args.positional.size() < 2) {
    throw ConfigError(
        "usage: holmes_cli timeline <topology> <group> [--framework F] "
        "[--iterations N] [--window A:B] [--buckets N] [--resource S] "
        "[--top N] [--saturation F] [--warn-share F] [--threads N] "
        "[--seed S] [--fault-plan FILE] [--trace FILE] [--json[=FILE]]");
  }
  const net::Topology topo = resolve_topology(args.positional[0]);
  const int group = std::stoi(args.positional[1]);
  const FrameworkConfig framework = resolve_framework(args);
  const int iterations = option_int(args, "iterations", 3);
  Perturbations perturb = resolve_perturbations(args);

  TimelineReportOptions options;
  const auto window = args.options.find("window");
  if (window != args.options.end()) {
    const WindowSpec spec = parse_window_spec(window->second);
    options.override_window = true;
    options.window_begin = spec.begin;
    options.window_end = spec.end;
  }
  options.buckets = option_int(args, "buckets", 48);
  if (options.buckets < 1) throw ConfigError("--buckets expects a positive count");
  options.top_talkers = option_int(args, "top", 8);
  if (options.top_talkers < 0) throw ConfigError("--top expects a non-negative count");
  const auto resource = args.options.find("resource");
  if (resource != args.options.end()) options.resource_filter = resource->second;
  const auto saturation = args.options.find("saturation");
  if (saturation != args.options.end()) {
    try {
      options.saturation_threshold = std::stod(saturation->second);
    } catch (const std::exception&) {
      throw ConfigError("--saturation expects a fraction, got '" +
                        saturation->second + "'");
    }
    if (options.saturation_threshold <= 0 || options.saturation_threshold > 1) {
      throw ConfigError("--saturation expects a fraction in (0, 1]");
    }
  }
  const auto warn_share = args.options.find("warn-share");
  if (warn_share != args.options.end()) {
    try {
      options.saturation_warn_share = std::stod(warn_share->second);
    } catch (const std::exception&) {
      throw ConfigError("--warn-share expects a fraction, got '" +
                        warn_share->second + "'");
    }
    if (options.saturation_warn_share < 0) {
      throw ConfigError("--warn-share expects a non-negative fraction");
    }
  }
  int threads = option_int(args, "threads", 1);
  if (threads < 0) throw ConfigError("--threads expects a non-negative count");
  if (threads == 0) {
    threads = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  options.threads = threads;

  // A fault plan's runtime faults become perturbations; the lowered
  // degradation windows then surface as effective-rate overlays. A plan
  // that fails its own HV501-503 lint gates here, as in `check`.
  const auto fault_plan = args.options.find("fault-plan");
  if (fault_plan != args.options.end()) {
    const FaultPlan faults =
        parse_fault_plan(read_text_file(fault_plan->second));
    const verify::LintReport plan_lint = lint_fault_plan(faults, topo);
    if (!plan_lint.ok()) {
      std::cout << "fault plan " << fault_plan->second << " failed lint:\n";
      verify::print_text(std::cout, plan_lint);
      return verdict_exit_code(plan_lint);
    }
    perturb = lower_fault_plan(faults, topo);
  }

  const TrainingPlan plan =
      Planner(framework).plan(topo, model::parameter_group(group));
  TrainingSimulator simulator;
  const auto seed = args.options.find("seed");
  if (seed != args.options.end()) {
    std::uint64_t tie_seed = 0;
    try {
      tie_seed = std::stoull(seed->second, nullptr, 0);
    } catch (const std::exception&) {
      throw ConfigError("--seed expects an integer, got '" + seed->second +
                        "'");
    }
    if (tie_seed != 0) {
      // The disjoint permutation must be byte-identical to canonical at any
      // seed (the HV405 contract) — CI byte-compares timeline documents
      // across seeds on exactly this path.
      sim::ExecutorOptions exec;
      exec.tie_break = sim::TieBreak::kPermuteDisjoint;
      exec.tie_seed = tie_seed;
      simulator.set_executor_options(exec);
    }
  }

  SimArtifacts artifacts;
  IterationMetrics m;
  const auto trace = args.options.find("trace");
  if (trace != args.options.end()) {
    std::ofstream out(trace->second);
    if (!out) throw ConfigError("cannot open " + trace->second);
    m = simulator.run(topo, plan, iterations, perturb, &out, &artifacts);
  } else {
    m = simulator.run(topo, plan, iterations, perturb,
                      /*chrome_trace=*/nullptr, &artifacts);
  }
  const TimelineSummary summary =
      build_timeline_summary(topo, plan, m, artifacts, options);

  if (json_dest(args) == JsonDest::kStdout) {
    write_timeline_json(std::cout, summary);
    std::cout << "\n";
    return verdict_exit_code(summary.lint);
  }
  print_timeline(std::cout, summary);
  if (trace != args.options.end()) {
    std::cout << "\ntrace written to " << trace->second << "\n";
  }
  emit_json(args, "timeline", [&](std::ostream& out) {
    write_timeline_json(out, summary);
  });
  return verdict_exit_code(summary.lint);
}

/// Fingerprint drift (new commit, other host, fresh flags) is reported but
/// never gates: stamped documents exist to catch result changes, not
/// metadata changes. Shared by `diff --fail-over` and the bench gate.
bool fingerprint_leaf(const std::string& path) {
  return path.rfind("fingerprint", 0) == 0;
}

int cmd_diff(const Args& args) {
  if (args.positional.size() < 2) {
    throw ConfigError(
        "usage: holmes_cli diff <before.json> <after.json> "
        "[--fail-over P] [--top N] [--json[=FILE]]");
  }
  auto load = [](const std::string& file) {
    std::ifstream in(file);
    if (!in) throw ConfigError("cannot open " + file);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    try {
      return json_parse(text);
    } catch (const Error& e) {
      throw ConfigError(file + ": " + e.what());
    }
  };
  const JsonValue before = load(args.positional[0]);
  const JsonValue after = load(args.positional[1]);
  const JsonDiffResult diff = diff_json(before, after);

  double threshold = -1;  // < 0: report only, no gating
  const auto fail_over = args.options.find("fail-over");
  if (fail_over != args.options.end()) {
    std::string spec = fail_over->second;
    if (!spec.empty() && spec.back() == '%') spec.pop_back();
    try {
      threshold = std::stod(spec) / 100.0;
    } catch (const std::exception&) {
      throw ConfigError("--fail-over expects a percentage, got '" +
                        fail_over->second + "'");
    }
    if (threshold < 0) throw ConfigError("--fail-over expects a percentage");
  }

  const auto top = static_cast<std::size_t>(option_int(args, "top", 16));
  std::vector<JsonDelta> changed;
  for (const JsonDelta& delta : diff.deltas) {
    if (delta.before != delta.after) changed.push_back(delta);
  }

  if (json_dest(args) != JsonDest::kStdout) {
    std::cout << args.positional[0] << " -> " << args.positional[1] << ": "
              << diff.compared << " numeric leaves compared, "
              << changed.size() << " changed, max relative change "
              << TextTable::num(diff.max_rel_change() * 100, 3) << "%\n";
    for (const std::string& path : diff.removed) {
      std::cout << "  removed: " << path << "\n";
    }
    for (const std::string& path : diff.added) {
      std::cout << "  added:   " << path << "\n";
    }
    for (const std::string& path : diff.changed) {
      std::cout << "  changed: " << path << "\n";
    }
    if (!changed.empty()) {
      TextTable table({"Path", "Before", "After", "Change %"});
      for (std::size_t i = 0; i < std::min(top, changed.size()); ++i) {
        const JsonDelta& delta = changed[i];
        table.add_row({delta.path, TextTable::num(delta.before, 6),
                       TextTable::num(delta.after, 6),
                       TextTable::num(delta.rel_change() * 100, 3)});
      }
      std::cout << "largest relative changes (" << std::min(top, changed.size())
                << " of " << changed.size() << ")\n"
                << table.to_string();
    }
  }

  emit_json(args, "JSON delta report", [&](std::ostream& out) {
    out << "{\"schema\":\"holmes.json_diff.v1\",\"compared\":" << diff.compared
        << ",\"max_rel_change\":" << json_number(diff.max_rel_change())
        << ",\"added\":" << diff.added.size()
        << ",\"removed\":" << diff.removed.size()
        << ",\"changed_non_numeric\":" << diff.changed.size()
        << ",\"deltas\":[";
    for (std::size_t i = 0; i < std::min(top, changed.size()); ++i) {
      const JsonDelta& delta = changed[i];
      if (i > 0) out << ",";
      out << "{\"path\":\"" << json_escape(delta.path)
          << "\",\"before\":" << json_number(delta.before)
          << ",\"after\":" << json_number(delta.after)
          << ",\"rel_change\":" << json_number(delta.rel_change()) << "}";
    }
    out << "]}";
  });

  if (threshold >= 0) {
    // over_threshold minus the fingerprint subtree: a golden re-stamped by
    // a different build must not trip a result gate.
    bool structure = false;
    for (const std::string& path : diff.removed) {
      structure = structure || !fingerprint_leaf(path);
    }
    for (const std::string& path : diff.added) {
      structure = structure || !fingerprint_leaf(path);
    }
    for (const std::string& path : diff.changed) {
      structure = structure || !fingerprint_leaf(path);
    }
    double max_rel = 0;
    for (const JsonDelta& delta : diff.deltas) {
      if (fingerprint_leaf(delta.path)) continue;
      if (std::fabs(delta.abs_change()) <= 1e-12) continue;
      max_rel = std::max(max_rel, std::fabs(delta.rel_change()));
    }
    if (structure || max_rel > threshold) {
      std::cerr << "diff exceeds --fail-over threshold ("
                << TextTable::num(max_rel * 100, 3) << "% > "
                << TextTable::num(threshold * 100, 3) << "% or structure "
                << "changed)\n";
      return 2;
    }
  }
  return 0;
}

int cmd_lint(const Args& args) {
  if (args.options.count("rules")) {
    if (args.options.count("markdown")) {
      // The exact table docs/static-analysis.md embeds between its
      // rule-catalog markers; CI diffs the two to catch drift.
      verify::write_rule_catalog_markdown(std::cout);
      return 0;
    }
    TextTable table({"Rule", "Family", "Severity", "Title"});
    for (const verify::RuleInfo& rule : verify::rule_catalog()) {
      table.add_row({rule.id, verify::to_string(rule.family),
                     verify::to_string(rule.default_severity), rule.title});
    }
    table.print();
    std::cout << "\nSee docs/static-analysis.md for the full catalog.\n";
    return 0;
  }
  if (args.positional.size() < 2) {
    throw ConfigError(
        "usage: holmes_cli lint <topology> <group> "
        "[--framework F] [--json FILE] [--strict] [--no-graph] (or lint "
        "--rules [--markdown])");
  }
  const net::Topology topo = resolve_topology(args.positional[0]);
  const int group = std::stoi(args.positional[1]);
  const FrameworkConfig framework = resolve_framework(args);
  const int iterations = option_int(args, "iterations", 3);

  const TrainingPlan plan =
      Planner(framework).plan(topo, model::parameter_group(group));
  verify::LintReport report = lint_training_plan(topo, plan);

  if (!args.options.count("no-graph")) {
    // Lower + simulate the plan and audit the task graph and its timings.
    // The debug pre-flight inside run() would re-lint the plan and throw on
    // the first error; lint wants the *full* report, so run it at the
    // current (non-debug) log level and keep the linting here.
    SimArtifacts artifacts;
    TrainingSimulator{}.run(topo, plan, iterations, /*perturbations=*/{},
                            /*chrome_trace=*/nullptr, &artifacts);
    report.merge(lint_artifacts(artifacts, &topo));
  }
  if (args.options.count("strict")) report.promote_warnings();

  if (json_dest(args) == JsonDest::kStdout) {
    verify::write_json(std::cout, report, current_build_info());
    std::cout << "\n";
    return verdict_exit_code(report);
  }

  std::cout << framework.name << " / group " << group << " on "
            << net::format_topology(topo) << " (" << plan.degrees.to_string()
            << ")\n";
  verify::print_text(std::cout, report);

  emit_json(args, "JSON report", [&](std::ostream& out) {
    verify::write_json(out, report, current_build_info());
  });
  return verdict_exit_code(report);
}

int cmd_check(const Args& args) {
  if (args.positional.size() < 2) {
    throw ConfigError(
        "usage: holmes_cli check <topology> <group> [--permutations N] "
        "[--seed S] [--policy disjoint|all] [--framework F] [--iterations N] "
        "[--threads N] [--json[=FILE]] [--strict] [--fault-plan FILE]");
  }
  const net::Topology topo = resolve_topology(args.positional[0]);
  const int group = std::stoi(args.positional[1]);
  const FrameworkConfig framework = resolve_framework(args);

  ScheduleCheckOptions options;
  options.permutations = option_int(args, "permutations", 5);
  if (options.permutations < 1) {
    throw ConfigError("--permutations expects a positive count");
  }
  options.iterations = option_int(args, "iterations", 3);
  const int threads = option_int(args, "threads", 1);
  if (threads < 0) throw ConfigError("--threads expects a non-negative count");
  options.threads = static_cast<std::size_t>(threads);
  const auto seed = args.options.find("seed");
  if (seed != args.options.end()) {
    try {
      options.base_seed = std::stoull(seed->second, nullptr, 0);
    } catch (const std::exception&) {
      throw ConfigError("--seed expects an integer, got '" + seed->second +
                        "'");
    }
  }
  const auto policy = args.options.find("policy");
  if (policy != args.options.end()) {
    if (policy->second == "disjoint") {
      options.tie_break = sim::TieBreak::kPermuteDisjoint;
    } else if (policy->second == "all") {
      options.tie_break = sim::TieBreak::kPermuteAll;
    } else {
      throw ConfigError("unknown --policy '" + policy->second +
                        "' (disjoint|all)");
    }
  }

  // A fault plan's runtime faults (degradation windows, stragglers) are
  // lowered to perturbations active in the canonical run and every
  // permutation alike — the check then proves byte-determinism *with the
  // faults injected*. A plan that fails its own HV501-503 lint gates here.
  const auto fault_plan = args.options.find("fault-plan");
  if (fault_plan != args.options.end()) {
    const FaultPlan faults =
        parse_fault_plan(read_text_file(fault_plan->second));
    const verify::LintReport plan_lint = lint_fault_plan(faults, topo);
    if (!plan_lint.ok()) {
      std::cout << "fault plan " << fault_plan->second << " failed lint:\n";
      verify::print_text(std::cout, plan_lint);
      return verdict_exit_code(plan_lint);
    }
    options.perturbations = lower_fault_plan(faults, topo);
  }

  const TrainingPlan plan =
      Planner(framework).plan(topo, model::parameter_group(group));
  ScheduleCheckResult result = check_schedule_determinism(topo, plan, options);
  if (args.options.count("strict")) result.report.promote_warnings();

  if (json_dest(args) == JsonDest::kStdout) {
    write_check_report_json(std::cout, result, current_build_info());
    std::cout << "\n";
    return verdict_exit_code(result.report);
  }

  std::cout << framework.name << " / group " << group << " on "
            << net::format_topology(topo) << " (" << plan.degrees.to_string()
            << ")\n"
            << "determinism: " << result.permutations << " '"
            << core::to_string(result.tie_break)
            << "' tie permutations (base seed " << result.base_seed << "), ";
  if (result.diverged == 0) {
    std::cout << "all byte-identical\n";
  } else {
    std::cout << result.diverged << " diverged\n";
  }
  const double tight =
      result.makespan_s > 0
          ? result.flow.makespan_bound_s / result.makespan_s * 100
          : 0.0;
  std::cout << "flow bound:  " << format_time(result.flow.makespan_bound_s)
            << " <= makespan " << format_time(result.makespan_s) << " ("
            << TextTable::num(tight, 1) << "% tight)\n";
  verify::print_text(std::cout, result.report);

  emit_json(args, "JSON check report", [&](std::ostream& out) {
    write_check_report_json(out, result, current_build_info());
  });
  return verdict_exit_code(result.report);
}

int cmd_inject(const Args& args) {
  if (args.positional.size() < 2 || !args.options.count("fault-plan")) {
    throw ConfigError(
        "usage: holmes_cli inject <topology> <group> --fault-plan FILE "
        "[--framework F] [--iterations N] [--json[=FILE]]");
  }
  const net::Topology topo = resolve_topology(args.positional[0]);
  RecoveryOptions options;
  options.group_id = std::stoi(args.positional[1]);
  options.framework = resolve_framework(args);
  options.iterations = option_int(args, "iterations", 3);

  const FaultPlan plan =
      parse_fault_plan(read_text_file(args.options.at("fault-plan")));
  const RecoveryReport report = run_fault_injection(topo, plan, options);

  if (json_dest(args) == JsonDest::kStdout) {
    write_recovery_report_json(std::cout, report);
    std::cout << "\n";
    return verdict_exit_code(report.lint);
  }
  print_recovery_report(std::cout, report);
  emit_json(args, "recovery report", [&](std::ostream& out) {
    write_recovery_report_json(out, report);
  });
  return verdict_exit_code(report.lint);
}

/// Timing leaves get the noise floor; everything else (self-profile
/// counters, simulated seconds) is deterministic and gates exactly.
bool bench_timing_leaf(const std::string& path) {
  return path.find("wall_s") != std::string::npos ||
         path.find("time_s/") != std::string::npos ||
         path.find("phases") != std::string::npos;
}

/// Spread and max are noise statistics — over a handful of repeats their
/// relative change carries no signal (a lucky min makes spread swing by
/// orders of magnitude). They stay in the report but never gate; the gate
/// watches the robust statistics (min, median) instead.
bool bench_noise_only_leaf(const std::string& path) {
  const auto ends_with = [&path](const char* suffix) {
    const std::string s(suffix);
    return path.size() >= s.size() &&
           path.compare(path.size() - s.size(), s.size(), s) == 0;
  };
  return ends_with(".spread") || ends_with(".max");
}

int cmd_bench(const Args& args) {
  namespace fs = std::filesystem;
  const int repeat = option_int(args, "repeat", 3);
  const int warmup = option_int(args, "warmup", 1);
  if (repeat < 1) throw ConfigError("--repeat expects a positive count");
  if (warmup < 0) throw ConfigError("--warmup expects a non-negative count");

  double noise_floor = 0.05;
  const auto noise = args.options.find("noise-floor");
  if (noise != args.options.end()) {
    try {
      noise_floor = std::stod(noise->second);
    } catch (const std::exception&) {
      throw ConfigError("--noise-floor expects seconds, got '" +
                        noise->second + "'");
    }
    if (noise_floor < 0) {
      throw ConfigError("--noise-floor expects non-negative seconds");
    }
  }

  double threshold = -1;  // < 0: report only, no gating
  const auto fail_over = args.options.find("fail-over");
  if (fail_over != args.options.end()) {
    std::string spec = fail_over->second;
    if (!spec.empty() && spec.back() == '%') spec.pop_back();
    try {
      threshold = std::stod(spec) / 100.0;
    } catch (const std::exception&) {
      throw ConfigError("--fail-over expects a percentage, got '" +
                        fail_over->second + "'");
    }
    if (threshold < 0) throw ConfigError("--fail-over expects a percentage");
    if (!args.options.count("baseline")) {
      throw ConfigError("--fail-over needs --baseline to compare against");
    }
  }

  // Binary list: explicit paths plus --bin-dir discovery, optionally
  // narrowed by --filter.
  std::vector<std::string> bins = args.positional;
  const auto dir = args.options.find("bin-dir");
  if (dir != args.options.end()) {
    if (!fs::is_directory(dir->second)) {
      throw ConfigError("--bin-dir is not a directory: " + dir->second);
    }
    std::vector<std::string> found;
    for (const auto& entry : fs::directory_iterator(dir->second)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (name.find('.') != std::string::npos) continue;  // JSON leftovers
      if (name.rfind("bench_", 0) == 0 || name.rfind("micro_", 0) == 0) {
        found.push_back(entry.path().string());
      }
    }
    std::sort(found.begin(), found.end());
    bins.insert(bins.end(), found.begin(), found.end());
  }
  const auto filter = args.options.find("filter");
  if (filter != args.options.end()) {
    bins.erase(std::remove_if(bins.begin(), bins.end(),
                              [&](const std::string& bin) {
                                return fs::path(bin).filename().string().find(
                                           filter->second) ==
                                       std::string::npos;
                              }),
               bins.end());
  }
  const bool run_probe = !args.options.count("no-probe");
  if (bins.empty() && !run_probe) {
    throw ConfigError("nothing to run: no bench binaries and --no-probe");
  }

  // Each binary runs as a subprocess with the shared BenchReport flags and
  // writes one holmes.bench.v1 document to a temp file; "bench" becomes
  // "name" so json_diff aligns trajectory entries by it.
  std::vector<JsonValue> benches;
  for (const std::string& bin : bins) {
    const std::string base = fs::path(bin).filename().string();
    const std::string tmp = base + ".bench_tmp.json";
    std::ostringstream cmd;
    cmd << "\"" << bin << "\" --json=\"" << tmp << "\" --repeat " << repeat
        << " --warmup " << warmup << " >/dev/null 2>&1";
    std::cerr << "bench: " << base << " (repeat " << repeat << ", warmup "
              << warmup << ")\n";
    const int rc = std::system(cmd.str().c_str());
    if (rc != 0) {
      std::remove(tmp.c_str());
      throw ConfigError("bench binary failed: " + bin);
    }
    std::ifstream in(tmp);
    if (!in) throw ConfigError(bin + " produced no JSON (expected " + tmp + ")");
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    std::remove(tmp.c_str());
    JsonValue doc;
    try {
      doc = json_parse(text);
    } catch (const Error& e) {
      throw ConfigError(bin + ": " + e.what());
    }
    std::vector<std::pair<std::string, JsonValue>> members;
    members.emplace_back("name", JsonValue::string(doc.at("bench").as_string()));
    for (const auto& [key, value] : doc.as_object()) {
      if (key == "schema" || key == "bench") continue;
      members.emplace_back(key, value);
    }
    benches.push_back(JsonValue::object(std::move(members)));
  }

  // In-process deterministic probe: a fixed hybrid:2 group-1 simulation
  // under a SelfProfiler. Its counters anchor the trajectory (zero noise)
  // and fill the suite-level self_profile section.
  std::optional<obs::SelfProfile> suite_profile;
  if (run_probe) {
    std::cerr << "bench: engine probe (hybrid:2, group 1, repeat " << repeat
              << ")\n";
    const net::Topology topo = make_environment(NicEnv::kHybrid, 2);
    const TrainingPlan plan =
        Planner(FrameworkConfig::holmes()).plan(topo, model::parameter_group(1));
    obs::SelfProfiler profiler;
    std::vector<double> wall;
    IterationMetrics last_metrics;
    for (int i = 0; i < warmup + repeat; ++i) {
      SimArtifacts artifacts;
      const auto t0 = std::chrono::steady_clock::now();
      last_metrics = TrainingSimulator{}.run(topo, plan, 3, {},
                                             /*chrome_trace=*/nullptr,
                                             &artifacts);
      // Same CI gate rehearsal hook the BenchReport harness honors.
      const char* delay = std::getenv("HOLMES_BENCH_DELIBERATE_DELAY_MS");
      if (delay != nullptr && std::atoi(delay) > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(std::atoi(delay)));
      }
      const double seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
      if (i >= warmup) wall.push_back(seconds);
      suite_profile = artifacts.self_profile;
    }
    // Memoized scenario fan demo: two structurally identical scenarios
    // through a single-worker ScenarioRunner sharing one SimMemo —
    // deterministically one miss then one structural hit. Folded into the
    // suite profile so the memo/scenario counters anchor the trajectory.
    {
      obs::SelfProfiler demo_profiler;
      sim::SimMemo memo;
      sim::ScenarioRunner scenario_runner(1);
      scenario_runner.run_all(2, [&](std::size_t) {
        TrainingSimulator simulator;
        simulator.set_memo(&memo);
        simulator.run(topo, plan, 3);
      });
      memo.flush_profile();
      const obs::SelfProfileCounters& d = demo_profiler.snapshot().counters;
      suite_profile->counters.scenarios_run = d.scenarios_run;
      suite_profile->counters.memo_hits = d.memo_hits;
      suite_profile->counters.memo_misses = d.memo_misses;
      suite_profile->counters.memo_bypass = d.memo_bypass;
    }
    const SampleStats stats = summarize_samples(std::move(wall));
    std::vector<JsonValue> metrics;
    const auto metric = [&metrics](const std::string& name, double value) {
      metrics.push_back(
          JsonValue::object({{"name", JsonValue::string(name)},
                             {"value", JsonValue::number(value)}}));
    };
    const obs::SelfProfileCounters& c = suite_profile->counters;
    metric("counters/tasks_created", static_cast<double>(c.tasks_created));
    metric("counters/compute_tasks", static_cast<double>(c.compute_tasks));
    metric("counters/transfer_tasks", static_cast<double>(c.transfer_tasks));
    metric("counters/noop_tasks", static_cast<double>(c.noop_tasks));
    metric("counters/deps_added", static_cast<double>(c.deps_added));
    metric("counters/resources_created",
           static_cast<double>(c.resources_created));
    metric("counters/channels_created",
           static_cast<double>(c.channels_created));
    metric("counters/executor_runs", static_cast<double>(c.executor_runs));
    metric("counters/ready_pushes", static_cast<double>(c.ready_pushes));
    metric("counters/ready_pops", static_cast<double>(c.ready_pops));
    metric("counters/max_ready_queue", static_cast<double>(c.max_ready_queue));
    metric("counters/events_scheduled",
           static_cast<double>(c.events_scheduled));
    metric("counters/events_fired", static_cast<double>(c.events_fired));
    metric("counters/cost_model_evals",
           static_cast<double>(c.cost_model_evals));
    metric("counters/arena_blocks", static_cast<double>(c.arena_blocks));
    metric("counters/arena_bytes", static_cast<double>(c.arena_bytes));
    metric("counters/scenarios_run", static_cast<double>(c.scenarios_run));
    metric("counters/memo_hits", static_cast<double>(c.memo_hits));
    metric("counters/memo_misses", static_cast<double>(c.memo_misses));
    metric("counters/memo_bypass", static_cast<double>(c.memo_bypass));
    metric("iteration_time_s", last_metrics.iteration_time);
    metric("task_count", static_cast<double>(last_metrics.task_count));
    benches.insert(
        benches.begin(),
        JsonValue::object(
            {{"name", JsonValue::string("cli_probe")},
             {"repeat", JsonValue::number(repeat)},
             {"warmup", JsonValue::number(warmup)},
             {"wall_s",
              JsonValue::object({{"min", JsonValue::number(stats.min)},
                                 {"median", JsonValue::number(stats.median)},
                                 {"max", JsonValue::number(stats.max)},
                                 {"spread", JsonValue::number(stats.spread())}})},
             {"metrics", JsonValue::array(std::move(metrics))}}));
  }

  // One holmes.bench_suite.v1 document: fingerprint, suite self-profile
  // (counters + phases; peak RSS deliberately excluded — it is neither a
  // perf metric nor stable enough to gate), then the bench entries.
  std::ostringstream doc;
  doc << "{\"schema\":\"holmes.bench_suite.v1\",\"fingerprint\":";
  write_build_info_json(doc, current_build_info());
  doc << ",\"repeat\":" << repeat << ",\"warmup\":" << warmup;
  if (suite_profile.has_value()) {
    const obs::SelfProfilePhases& p = suite_profile->phases;
    doc << ",\"self_profile\":{\"counters\":"
        << obs::counters_json(suite_profile->counters)
        << ",\"phases\":{\"graph_build_s\":" << json_number(p.graph_build_s)
        << ",\"event_loop_s\":" << json_number(p.event_loop_s)
        << ",\"accounting_s\":" << json_number(p.accounting_s)
        << ",\"total_s\":" << json_number(p.total_s) << "}}";
  }
  doc << ",\"benches\":[";
  for (std::size_t i = 0; i < benches.size(); ++i) {
    if (i > 0) doc << ",";
    doc << json_serialize(benches[i]);
  }
  doc << "]}";
  const std::string trajectory = doc.str();

  if (json_dest(args) != JsonDest::kStdout) {
    std::cout << "bench suite: " << benches.size() << " benches, repeat "
              << repeat << ", warmup " << warmup << "\n"
              << "fingerprint: " << fingerprint_line(current_build_info())
              << "\n";
    TextTable table({"Bench", "Wall median", "Spread", "Metrics"});
    for (const JsonValue& bench : benches) {
      const JsonValue* wall_s = bench.find("wall_s");
      table.add_row(
          {bench.at("name").as_string(),
           wall_s != nullptr ? format_time(wall_s->at("median").as_number())
                             : "-",
           wall_s != nullptr ? format_time(wall_s->at("spread").as_number())
                             : "-",
           TextTable::num(static_cast<std::int64_t>(
               bench.at("metrics").as_array().size()))});
    }
    table.print();
  }
  emit_json(args, "trajectory",
            [&](std::ostream& out) { out << trajectory; });

  const auto baseline = args.options.find("baseline");
  if (baseline == args.options.end()) return 0;

  std::ifstream in(baseline->second);
  if (!in) throw ConfigError("cannot open " + baseline->second);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  JsonValue before;
  try {
    before = json_parse(text);
  } catch (const Error& e) {
    throw ConfigError(baseline->second + ": " + e.what());
  }
  const JsonDiffResult diff = diff_json(before, json_parse(trajectory));

  std::vector<std::string> structural;
  for (const std::string& path : diff.removed) {
    if (!fingerprint_leaf(path)) structural.push_back("removed: " + path);
  }
  for (const std::string& path : diff.added) {
    if (!fingerprint_leaf(path)) structural.push_back("added: " + path);
  }
  for (const std::string& path : diff.changed) {
    if (!fingerprint_leaf(path)) structural.push_back("changed: " + path);
  }
  std::vector<JsonDelta> moved;  // descending |rel_change|, like diff.deltas
  for (const JsonDelta& delta : diff.deltas) {
    if (!fingerprint_leaf(delta.path) && delta.before != delta.after) {
      moved.push_back(delta);
    }
  }

  if (json_dest(args) != JsonDest::kStdout) {
    std::cout << "\nbaseline " << baseline->second << ": " << diff.compared
              << " numeric leaves compared, " << moved.size() << " moved\n";
    for (const std::string& line : structural) {
      std::cout << "  " << line << "\n";
    }
    if (!moved.empty()) {
      TextTable table({"Path", "Before", "After", "Change %"});
      for (std::size_t i = 0; i < std::min<std::size_t>(moved.size(), 10);
           ++i) {
        table.add_row({moved[i].path, TextTable::num(moved[i].before, 6),
                       TextTable::num(moved[i].after, 6),
                       TextTable::num(moved[i].rel_change() * 100, 3)});
      }
      table.print();
    }
  }

  if (threshold < 0) return 0;
  std::vector<std::string> trips = structural;
  for (const JsonDelta& delta : moved) {
    if (bench_noise_only_leaf(delta.path)) continue;
    const bool timing = bench_timing_leaf(delta.path);
    const double floor = timing ? noise_floor : 1e-12;
    if (std::fabs(delta.rel_change()) > threshold &&
        std::fabs(delta.abs_change()) > floor) {
      trips.push_back((timing ? "timing: " : "metric: ") + delta.path + " " +
                      TextTable::num(delta.rel_change() * 100, 1) + "%");
    }
  }
  if (trips.empty()) return 0;
  std::cerr << "bench gate tripped (--fail-over "
            << TextTable::num(threshold * 100, 1) << "%, noise floor "
            << TextTable::num(noise_floor, 3) << "s):\n";
  for (const std::string& line : trips) std::cerr << "  " << line << "\n";
  return 2;
}

int cmd_envs() {
  TextTable table({"Name", "Spec (4 nodes)", "Description"});
  table.add_row({"ib", "4x8:ib", "one InfiniBand cluster"});
  table.add_row({"roce", "4x8:roce", "one RoCE cluster"});
  table.add_row({"eth", "4x8:eth", "one Ethernet-only cluster"});
  table.add_row({"hybrid", "2x8:ib+2x8:roce",
                 "two clusters, incompatible RDMA NICs (paper Hybrid)"});
  table.add_row({"split-ib", "2x8:ib+2x8:ib",
                 "two IB clusters, Ethernet between (Fig. 4)"});
  table.add_row({"split-roce", "2x8:roce+2x8:roce",
                 "two RoCE clusters, Ethernet between (Fig. 4)"});
  table.print();
  std::cout << "\nAny spec of the form <nodes>x<gpus>:<nic>[@gbps] joined by "
               "'+' is accepted; named envs take ':<nodes>'.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2 && std::string(argv[1]) == "--version") {
      std::cout << "holmes_cli " << fingerprint_line(current_build_info())
                << "\n";
      return 0;
    }
    const Args args = parse_args(argc, argv);
    apply_log_level(args);
    if (args.command == "simulate") return cmd_simulate(args);
    if (args.command == "plan") return cmd_plan(args);
    if (args.command == "tune") return cmd_tune(args);
    if (args.command == "sweep") return cmd_sweep(args);
    if (args.command == "analytic") return cmd_analytic(args);
    if (args.command == "stats") return cmd_stats(args);
    if (args.command == "explain") return cmd_explain(args);
    if (args.command == "timeline") return cmd_timeline(args);
    if (args.command == "diff") return cmd_diff(args);
    if (args.command == "lint") return cmd_lint(args);
    if (args.command == "check") return cmd_check(args);
    if (args.command == "inject") return cmd_inject(args);
    if (args.command == "bench") return cmd_bench(args);
    if (args.command == "envs") return cmd_envs();
    throw ConfigError("unknown command '" + args.command + "'\n" +
                      usage_text());
  } catch (const Error& e) {
    // 3 = internal/usage failure, distinct from the graded lint/check
    // verdicts (0 clean, 1 warnings, 2 errors / tripped gates).
    std::cerr << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 3;
  }
}
