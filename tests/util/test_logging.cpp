#include "util/logging.h"

#include <gtest/gtest.h>

namespace holmes {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kWarning); }
};

TEST_F(LoggingTest, LevelIsSettable) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LoggingTest, SuppressedLevelDoesNotEvaluateNothingCrashy) {
  set_log_level(LogLevel::kOff);
  // The statement must compile and be a no-op for every level.
  HOLMES_LOG(kDebug) << "debug " << 1;
  HOLMES_LOG(kInfo) << "info " << 2.5;
  HOLMES_LOG(kWarning) << "warn";
  HOLMES_LOG(kError) << "error";
  SUCCEED();
}

TEST_F(LoggingTest, EmitsToStderrWhenEnabled) {
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  HOLMES_LOG(kInfo) << "hello " << 42;
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("hello 42"), std::string::npos);
  EXPECT_NE(out.find("INFO"), std::string::npos);
}

TEST_F(LoggingTest, BelowThresholdIsSilent) {
  set_log_level(LogLevel::kWarning);
  ::testing::internal::CaptureStderr();
  HOLMES_LOG(kInfo) << "should not appear";
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(out.empty()) << out;
}

}  // namespace
}  // namespace holmes
