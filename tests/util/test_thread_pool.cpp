#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace holmes {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.parallel_for(0, [](std::size_t) { FAIL(); }));
}

TEST(ThreadPool, ParallelForRethrows) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(8);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 1000; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum += i; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 1000L * 1001 / 2);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] { done++; });
    }
  }  // destructor must wait for all 50
  EXPECT_EQ(done.load(), 50);
}

}  // namespace
}  // namespace holmes
