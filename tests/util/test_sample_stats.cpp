#include "util/sample_stats.h"

#include <gtest/gtest.h>

namespace holmes {
namespace {

TEST(SampleStats, EmptyIsAllZero) {
  const SampleStats s = summarize_samples({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.spread(), 0.0);
}

TEST(SampleStats, SingleSample) {
  const SampleStats s = summarize_samples({3.5});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.spread(), 0.0);
}

TEST(SampleStats, OddCountMedianIsMiddle) {
  // Order must not matter.
  const SampleStats s = summarize_samples({9.0, 1.0, 5.0});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.spread(), 8.0);
}

TEST(SampleStats, EvenCountMedianAveragesMiddlePair) {
  const SampleStats s = summarize_samples({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
}

TEST(SampleStats, NegativeValues) {
  const SampleStats s = summarize_samples({-2.0, -8.0, -4.0});
  EXPECT_DOUBLE_EQ(s.min, -8.0);
  EXPECT_DOUBLE_EQ(s.median, -4.0);
  EXPECT_DOUBLE_EQ(s.max, -2.0);
  EXPECT_DOUBLE_EQ(s.spread(), 6.0);
}

}  // namespace
}  // namespace holmes
