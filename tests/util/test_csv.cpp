#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace holmes {
namespace {

TEST(CsvWriter, PlainRow) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row("env", "tflops", 197);
  EXPECT_EQ(os.str(), "env,tflops,197\n");
}

TEST(CsvWriter, QuotesFieldsWithCommas) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row("a,b", "plain");
  EXPECT_EQ(os.str(), "\"a,b\",plain\n");
}

TEST(CsvWriter, DoublesEmbeddedQuotes) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row("say \"hi\"");
  EXPECT_EQ(os.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriter, QuotesNewlines) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row("line1\nline2");
  EXPECT_EQ(os.str(), "\"line1\nline2\"\n");
}

TEST(CsvWriter, FormatsDoublesCompactly) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row(1.5, 0.000001, 99.23);
  EXPECT_EQ(os.str(), "1.5,1e-06,99.23\n");
}

TEST(CsvWriter, MultipleRows) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row("h1", "h2");
  csv.row(1, 2);
  EXPECT_EQ(os.str(), "h1,h2\n1,2\n");
}

}  // namespace
}  // namespace holmes
