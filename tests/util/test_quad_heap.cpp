#include "util/quad_heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace holmes {
namespace {

struct IntLess {
  bool operator()(int a, int b) const { return a < b; }
};

TEST(QuadHeap, PopsInSortedOrder) {
  QuadHeap<int, IntLess> heap;
  Rng rng(7);
  std::vector<int> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(static_cast<int>(rng() % 500));
  }
  for (int v : values) heap.push(v);
  EXPECT_EQ(heap.size(), values.size());

  std::sort(values.begin(), values.end());
  for (int expected : values) {
    ASSERT_FALSE(heap.empty());
    EXPECT_EQ(heap.top(), expected);
    heap.pop();
  }
  EXPECT_TRUE(heap.empty());
}

TEST(QuadHeap, InterleavedPushPopKeepsHeapProperty) {
  QuadHeap<int, IntLess> heap;
  Rng rng(13);
  std::vector<int> mirror;
  for (int round = 0; round < 2000; ++round) {
    if (mirror.empty() || rng() % 3 != 0) {
      const int v = static_cast<int>(rng() % 1000);
      heap.push(v);
      mirror.push_back(v);
    } else {
      const auto it = std::min_element(mirror.begin(), mirror.end());
      ASSERT_EQ(heap.top(), *it);
      heap.pop();
      mirror.erase(it);
    }
    ASSERT_EQ(heap.size(), mirror.size());
  }
}

/// The executor's contract: entries ordered by a (primary, secondary) pair
/// must pop in exact lexicographic order, regardless of arity or internal
/// layout — ties resolved by the comparator, never by insertion accidents.
TEST(QuadHeap, TieOrderFollowsComparatorExactly) {
  struct Entry {
    std::uint64_t key;
    std::int32_t id;
  };
  struct Before {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.key != b.key) return a.key < b.key;
      return a.id < b.id;
    }
  };
  QuadHeap<Entry, Before> heap;
  Rng rng(99);
  std::vector<Entry> entries;
  for (std::int32_t i = 0; i < 500; ++i) {
    entries.push_back({rng() % 16, i});  // dense keys: many ties
  }
  // Push in a scrambled order.
  std::vector<Entry> scrambled = entries;
  for (std::size_t i = scrambled.size(); i > 1; --i) {
    std::swap(scrambled[i - 1], scrambled[rng() % i]);
  }
  for (const Entry& e : scrambled) heap.push(e);

  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return Before{}(a, b); });
  for (const Entry& expected : entries) {
    ASSERT_EQ(heap.top().key, expected.key);
    ASSERT_EQ(heap.top().id, expected.id);
    heap.pop();
  }
}

TEST(QuadHeap, SingleElementAndClear) {
  QuadHeap<int, IntLess> heap;
  heap.push(42);
  EXPECT_EQ(heap.top(), 42);
  heap.pop();
  EXPECT_TRUE(heap.empty());
  heap.push(1);
  heap.clear();
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.size(), 0u);
}

}  // namespace
}  // namespace holmes
