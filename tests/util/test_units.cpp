#include "util/units.h"

#include <gtest/gtest.h>

namespace holmes {
namespace {

TEST(Units, GbpsConversionRoundTrips) {
  const double bps = units::gbps_to_bytes_per_sec(200.0);
  EXPECT_DOUBLE_EQ(bps, 25e9);  // 200 Gbit/s == 25 GB/s
  EXPECT_DOUBLE_EQ(units::bytes_per_sec_to_gbps(bps), 200.0);
}

TEST(Units, ByteConstructors) {
  EXPECT_EQ(units::KiB(1), 1024);
  EXPECT_EQ(units::MiB(2), 2 * 1024 * 1024);
  EXPECT_EQ(units::GiB(1), 1024LL * 1024 * 1024);
}

TEST(Units, TimeConstructors) {
  EXPECT_DOUBLE_EQ(units::microseconds(3), 3e-6);
  EXPECT_DOUBLE_EQ(units::milliseconds(1.5), 1.5e-3);
}

TEST(Units, FormatBytesPicksSuffix) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(units::KiB(1)), "1.00 KiB");
  EXPECT_EQ(format_bytes(units::MiB(3.5)), "3.50 MiB");
  EXPECT_EQ(format_bytes(units::GiB(2)), "2.00 GiB");
}

TEST(Units, FormatTimePicksScale) {
  EXPECT_EQ(format_time(2.5), "2.500 s");
  EXPECT_EQ(format_time(0.0315), "31.500 ms");
  EXPECT_EQ(format_time(42e-6), "42.000 us");
  EXPECT_EQ(format_time(5e-9), "5.000 ns");
}

}  // namespace
}  // namespace holmes
