#include "util/json.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace holmes {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(json_parse("null").is_null());
  EXPECT_TRUE(json_parse("true").as_bool());
  EXPECT_FALSE(json_parse("false").as_bool());
  EXPECT_DOUBLE_EQ(json_parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(json_parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(json_parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, StringEscapes) {
  // Exactly the escapes json_escape emits must round-trip.
  const std::string raw = "quote\" back\\ nl\n tab\t cr\r ctrl\x01 end";
  const std::string doc = "\"" + json_escape(raw) + "\"";
  EXPECT_EQ(json_parse(doc).as_string(), raw);
}

TEST(JsonParse, NestedStructure) {
  const JsonValue v =
      json_parse(R"({"a":[1,2,{"b":true}],"c":{"d":null},"e":"x"})");
  ASSERT_TRUE(v.is_object());
  const auto& a = v.at("a").as_array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[1].as_number(), 2.0);
  EXPECT_TRUE(a[2].at("b").as_bool());
  EXPECT_TRUE(v.at("c").at("d").is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), ConfigError);
}

TEST(JsonParse, ObjectKeepsDocumentOrder) {
  const JsonValue v = json_parse(R"({"z":1,"a":2,"m":3})");
  const auto& members = v.as_object();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(json_parse("[]").as_array().empty());
  EXPECT_TRUE(json_parse("{}").as_object().empty());
  EXPECT_TRUE(json_parse(" [ ] ").as_array().empty());
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(json_parse(""), ConfigError);
  EXPECT_THROW(json_parse("{"), ConfigError);
  EXPECT_THROW(json_parse("[1,]"), ConfigError);
  EXPECT_THROW(json_parse("{\"a\" 1}"), ConfigError);
  EXPECT_THROW(json_parse("\"unterminated"), ConfigError);
  EXPECT_THROW(json_parse("nul"), ConfigError);
  EXPECT_THROW(json_parse("1 2"), ConfigError);  // trailing garbage
}

TEST(JsonParse, AccessorKindMismatchThrows) {
  const JsonValue v = json_parse("[1]");
  EXPECT_THROW(v.as_object(), ConfigError);
  EXPECT_THROW(v.as_number(), ConfigError);
  EXPECT_EQ(v.find("x"), nullptr);  // not an object: lookup is just absent
}

TEST(JsonSerialize, RoundTripsNestedDocument) {
  const std::string doc =
      R"({"schema":"x.v1","a":[1,2.5,{"b":true}],"c":{"d":null},"e":"q\"q"})";
  const JsonValue parsed = json_parse(doc);
  const std::string emitted = json_serialize(parsed);
  // Serialization keeps document order, so parse→serialize is idempotent.
  EXPECT_EQ(emitted, json_serialize(json_parse(emitted)));
  const JsonValue again = json_parse(emitted);
  EXPECT_EQ(again.at("schema").as_string(), "x.v1");
  EXPECT_DOUBLE_EQ(again.at("a").as_array()[1].as_number(), 2.5);
  EXPECT_TRUE(again.at("a").as_array()[2].at("b").as_bool());
  EXPECT_TRUE(again.at("c").at("d").is_null());
  EXPECT_EQ(again.at("e").as_string(), "q\"q");
}

TEST(JsonSerialize, PreservesObjectOrderAndEscapes) {
  const JsonValue obj = JsonValue::object({
      {"z", JsonValue::number(1)},
      {"a", JsonValue::string("tab\there")},
      {"m", JsonValue::array({})},
  });
  EXPECT_EQ(json_serialize(obj), "{\"z\":1,\"a\":\"tab\\there\",\"m\":[]}");
}

TEST(JsonParse, RoundTripsEmitterNumbers) {
  // json_number's %.12g output must re-parse to a close value.
  for (double d : {0.0, 1.5, -2.75e-9, 3.14159265358979, 1e12}) {
    const JsonValue v = json_parse(json_number(d));
    EXPECT_NEAR(v.as_number(), d, std::abs(d) * 1e-11 + 1e-300);
  }
  // Non-finite values are emitted as 0, which parses fine.
  EXPECT_DOUBLE_EQ(json_parse(json_number(1.0 / 0.0)).as_number(), 0.0);
}

// ---- round-trip byte-identity ----
//
// The determinism checker byte-compares serialized documents across runs,
// so parse -> serialize -> parse -> serialize must be byte-identical: a
// re-serialized document may differ from the *original* text (number
// formatting, whitespace) but must be a fixpoint of its own emitter.

TEST(JsonRoundTrip, SerializeIsAFixpointOnNestedDocuments) {
  const char* docs[] = {
      R"({"a":[1,2,{"b":true}],"c":{"d":null},"e":"x"})",
      R"([0.1,1e-9,-3.5e2,123456789012,0,-0])",
      R"({"empty_obj":{},"empty_arr":[],"s":""})",
      R"({"z":1,"a":2,"m":{"q":[false,null,"t"]}})",
  };
  for (const char* doc : docs) {
    const std::string once = json_serialize(json_parse(doc));
    const std::string twice = json_serialize(json_parse(once));
    EXPECT_EQ(once, twice) << doc;
  }
}

TEST(JsonRoundTrip, EscapesSurviveByteIdentically) {
  const std::string raw = "quote\" back\\ nl\n tab\t cr\r ctrl\x01 \x1f end";
  const std::string doc = "{\"k\":\"" + json_escape(raw) + "\"}";
  const std::string once = json_serialize(json_parse(doc));
  EXPECT_EQ(json_parse(once).at("k").as_string(), raw);
  EXPECT_EQ(json_serialize(json_parse(once)), once);
}

TEST(JsonRoundTrip, NumberFormattingIsStable) {
  // json_number drives every writer in the tree; its output must parse
  // back to the same double and re-serialize to the same bytes.
  for (double value : {0.0, 1.0, -1.5, 0.1, 1e-12, 9.87654321e8,
                       52.5905447891, 1.0 / 3.0}) {
    const std::string text = json_number(value);
    const double parsed = json_parse(text).as_number();
    EXPECT_EQ(json_number(parsed), text) << value;
  }
}

TEST(JsonRoundTrip, ObjectKeyOrderIsPreservedNotSorted) {
  const std::string doc = R"({"z":1,"a":2,"0":3})";
  EXPECT_EQ(json_serialize(json_parse(doc)), doc);
}

}  // namespace
}  // namespace holmes
