#include "util/math_util.h"

#include <gtest/gtest.h>

namespace holmes {
namespace {

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 5), 2);
  EXPECT_EQ(ceil_div(11, 5), 3);
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div(1, 1), 1);
  EXPECT_EQ(ceil_div(768, 64), 12);
}

TEST(MathUtil, ApproxEqual) {
  EXPECT_TRUE(approx_equal(1.0, 1.0));
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  // Relative tolerance for large magnitudes.
  EXPECT_TRUE(approx_equal(1e12, 1e12 + 1.0));
  EXPECT_FALSE(approx_equal(1e12, 1.001e12));
}

TEST(MathUtil, FloorPow2) {
  EXPECT_EQ(floor_pow2(1), 1);
  EXPECT_EQ(floor_pow2(2), 2);
  EXPECT_EQ(floor_pow2(3), 2);
  EXPECT_EQ(floor_pow2(8), 8);
  EXPECT_EQ(floor_pow2(1000), 512);
}

TEST(MathUtil, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(-4));
  EXPECT_FALSE(is_pow2(96));
}

}  // namespace
}  // namespace holmes
