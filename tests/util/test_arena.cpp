#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace holmes {
namespace {

TEST(Arena, AllocationsAreDisjointAndAligned) {
  Arena arena;
  std::vector<void*> ptrs;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.allocate(24, 8);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 8, 0u);
    std::memset(p, i, 24);  // asan would catch overlap/overflow
    ptrs.push_back(p);
  }
  for (std::size_t i = 0; i + 1 < ptrs.size(); ++i) {
    for (std::size_t j = i + 1; j < ptrs.size(); ++j) {
      const auto a = reinterpret_cast<std::uintptr_t>(ptrs[i]);
      const auto b = reinterpret_cast<std::uintptr_t>(ptrs[j]);
      EXPECT_TRUE(a + 24 <= b || b + 24 <= a) << i << " overlaps " << j;
    }
  }
  EXPECT_EQ(arena.bytes_allocated(), 2400u);
}

TEST(Arena, StrictAlignmentHonored) {
  Arena arena;
  arena.allocate(1, 1);
  void* p = arena.allocate(64, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
}

TEST(Arena, GrowsBeyondOneBlock) {
  Arena arena;
  // Default block is 64 KiB; allocate well past it.
  for (int i = 0; i < 1000; ++i) arena.allocate(256, 8);
  EXPECT_GE(arena.bytes_allocated(), 256000u);
  EXPECT_GT(arena.block_count(), 1u);
}

TEST(Arena, OversizedAllocationGetsOwnBlock) {
  Arena arena;
  void* p = arena.allocate(1 << 20, 8);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xab, 1 << 20);
  EXPECT_GE(arena.bytes_reserved(), static_cast<std::size_t>(1) << 20);
}

TEST(Arena, ResetConsolidatesToSingleBlockAtHighWater) {
  Arena arena;
  for (int i = 0; i < 1000; ++i) arena.allocate(256, 8);
  const std::size_t reserved = arena.bytes_reserved();
  EXPECT_GT(arena.block_count(), 1u);

  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.block_count(), 1u);
  EXPECT_GE(arena.bytes_reserved(), reserved);

  // Steady state: the same workload now fits without growing a new block.
  const std::size_t blocks_before = arena.block_count();
  for (int i = 0; i < 1000; ++i) arena.allocate(256, 8);
  EXPECT_EQ(arena.block_count(), blocks_before);
}

TEST(Arena, CreateConstructsInPlace) {
  struct Pod {
    std::uint64_t a;
    std::uint32_t b;
  };
  Arena arena;
  Pod* p = arena.create<Pod>(Pod{42, 7});
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->a, 42u);
  EXPECT_EQ(p->b, 7u);
}

}  // namespace
}  // namespace holmes
