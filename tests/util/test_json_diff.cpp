#include "util/json_diff.h"

#include <gtest/gtest.h>

namespace holmes {
namespace {

JsonDiffResult diff(const std::string& before, const std::string& after) {
  return diff_json(json_parse(before), json_parse(after));
}

TEST(JsonDiff, IdenticalDocumentsAreClean) {
  const JsonDiffResult r =
      diff(R"({"a":1,"b":[2,3],"c":"x"})", R"({"a":1,"b":[2,3],"c":"x"})");
  EXPECT_EQ(r.compared, 3u);
  EXPECT_TRUE(r.added.empty());
  EXPECT_TRUE(r.removed.empty());
  EXPECT_TRUE(r.changed.empty());
  EXPECT_DOUBLE_EQ(r.max_rel_change(), 0.0);
  EXPECT_FALSE(r.over_threshold(0.0));
}

TEST(JsonDiff, NumericChangeIsRelative) {
  const JsonDiffResult r = diff(R"({"thr":100})", R"({"thr":90})");
  ASSERT_EQ(r.deltas.size(), 1u);
  EXPECT_EQ(r.deltas[0].path, "thr");
  EXPECT_DOUBLE_EQ(r.deltas[0].abs_change(), -10.0);
  EXPECT_NEAR(r.deltas[0].rel_change(), -0.1, 1e-12);
  EXPECT_TRUE(r.over_threshold(0.05));
  EXPECT_FALSE(r.over_threshold(0.15));
}

TEST(JsonDiff, DeltasSortedByRelativeMagnitude) {
  const JsonDiffResult r =
      diff(R"({"a":100,"b":10,"c":1})", R"({"a":101,"b":15,"c":1})");
  ASSERT_GE(r.deltas.size(), 2u);
  EXPECT_EQ(r.deltas[0].path, "b");  // 50% beats 1%
  EXPECT_EQ(r.deltas[1].path, "a");
}

TEST(JsonDiff, AtolGuardsNearZeroNoise) {
  const JsonDiffResult r = diff(R"({"tiny":0})", R"({"tiny":1e-15})");
  // 100% relative change, but below the absolute-tolerance floor.
  EXPECT_DOUBLE_EQ(r.max_rel_change(1e-12), 0.0);
  EXPECT_FALSE(r.over_threshold(0.01, 1e-12));
}

TEST(JsonDiff, StructuralDifferencesReported) {
  const JsonDiffResult r =
      diff(R"({"a":1,"gone":2,"s":"x"})", R"({"a":1,"fresh":3,"s":"y"})");
  ASSERT_EQ(r.removed.size(), 1u);
  EXPECT_EQ(r.removed[0], "gone");
  ASSERT_EQ(r.added.size(), 1u);
  EXPECT_EQ(r.added[0], "fresh");
  ASSERT_EQ(r.changed.size(), 1u);
  EXPECT_EQ(r.changed[0], "s (\"x\" -> \"y\")");
  // Any structural disagreement trips the threshold regardless of deltas.
  EXPECT_TRUE(r.over_threshold(1e9));
}

TEST(JsonDiff, KindChangeIsStructural) {
  const JsonDiffResult r = diff(R"({"v":1})", R"({"v":"one"})");
  ASSERT_EQ(r.changed.size(), 1u);
  EXPECT_EQ(r.changed[0], "v (number -> string)");
  EXPECT_TRUE(r.over_threshold(1e9));
}

TEST(JsonDiff, ArraysOfObjectsAlignByName) {
  // Reordered buckets must diff by matching name, not position.
  const JsonDiffResult r = diff(
      R"({"buckets":[{"name":"a","seconds":1},{"name":"b","seconds":2}]})",
      R"({"buckets":[{"name":"b","seconds":2},{"name":"a","seconds":1.5}]})");
  EXPECT_TRUE(r.added.empty());
  EXPECT_TRUE(r.removed.empty());
  double a_change = 0;
  for (const JsonDelta& d : r.deltas) {
    if (d.path == "buckets[a].seconds") a_change = d.abs_change();
  }
  EXPECT_DOUBLE_EQ(a_change, 0.5);
}

TEST(JsonDiff, IdAlignmentReportsAddedAndRemovedElements) {
  const JsonDiffResult r = diff(
      R"([{"name":"keep","v":1},{"name":"old","v":2}])",
      R"([{"name":"keep","v":1},{"name":"new","v":3}])");
  ASSERT_EQ(r.removed.size(), 1u);
  EXPECT_EQ(r.removed[0], "[old]");
  ASSERT_EQ(r.added.size(), 1u);
  EXPECT_EQ(r.added[0], "[new]");
}

TEST(JsonDiff, DuplicateIdsFallBackToIndexAlignment) {
  const JsonDiffResult r = diff(
      R"([{"name":"x","v":1},{"name":"x","v":2}])",
      R"([{"name":"x","v":10},{"name":"x","v":2}])");
  // Index-aligned: element 0's v changed 1 -> 10.
  bool saw = false;
  for (const JsonDelta& d : r.deltas) {
    if (d.path == "[0].v") {
      saw = true;
      EXPECT_DOUBLE_EQ(d.after, 10.0);
    }
  }
  EXPECT_TRUE(saw);
}

TEST(JsonDiff, LengthMismatchOnPlainArrays) {
  const JsonDiffResult r = diff(R"([1,2,3])", R"([1,2])");
  ASSERT_EQ(r.removed.size(), 1u);
  EXPECT_EQ(r.removed[0], "[2]");
  EXPECT_TRUE(r.over_threshold(1e9));
}

}  // namespace
}  // namespace holmes
