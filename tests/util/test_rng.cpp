#include "util/rng.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

namespace holmes {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 95);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-5, 12);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 12);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(42);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformMeanIsPlausible) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(10.0, 20.0);
  EXPECT_NEAR(sum / n, 15.0, 0.1);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, WorksWithStdDistributions) {
  Rng rng(33);
  std::uniform_int_distribution<int> dist(1, 6);
  for (int i = 0; i < 100; ++i) {
    const int v = dist(rng);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
  }
}

}  // namespace
}  // namespace holmes
