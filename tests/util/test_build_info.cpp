#include "util/build_info.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/json.h"

namespace holmes {
namespace {

TEST(BuildInfo, ConfigureTimeFieldsArePopulated) {
  const BuildInfo info = current_build_info();
  // The commit may legitimately be "unknown" (tarball build) but is never
  // empty; compiler and build type come straight from CMake.
  EXPECT_FALSE(info.commit.empty());
  EXPECT_FALSE(info.compiler.empty());
  EXPECT_FALSE(info.build_type.empty());
}

TEST(BuildInfo, FingerprintLineMentionsCommitAndCompiler) {
  const BuildInfo info = current_build_info();
  const std::string line = fingerprint_line(info);
  EXPECT_NE(line.find(info.commit), std::string::npos);
  EXPECT_NE(line.find(info.build_type), std::string::npos);
}

TEST(BuildInfo, JsonRoundTripsWithFixedKeys) {
  const BuildInfo info = current_build_info();
  std::ostringstream out;
  write_build_info_json(out, info);
  const JsonValue doc = json_parse(out.str());
  EXPECT_EQ(doc.at("commit").as_string(), info.commit);
  EXPECT_EQ(doc.at("compiler").as_string(), info.compiler);
  EXPECT_EQ(doc.at("flags").as_string(), info.flags);
  EXPECT_EQ(doc.at("build_type").as_string(), info.build_type);
  EXPECT_EQ(doc.at("host").as_string(), info.host);
  EXPECT_EQ(doc.at("os").as_string(), info.os);
  // Key order is part of the stable schema.
  const auto& members = doc.as_object();
  ASSERT_EQ(members.size(), 6u);
  EXPECT_EQ(members[0].first, "commit");
  EXPECT_EQ(members[5].first, "os");
}

TEST(BuildInfo, EmissionIsByteStable) {
  std::ostringstream a;
  std::ostringstream b;
  write_build_info_json(a, current_build_info());
  write_build_info_json(b, current_build_info());
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace holmes
