#include "util/table.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace holmes {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"NIC Env", "TFLOPS"});
  t.add_row({"InfiniBand", "197"});
  t.add_row({"RoCE", "160"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("NIC Env"), std::string::npos);
  EXPECT_NE(out.find("InfiniBand"), std::string::npos);
  EXPECT_NE(out.find("197"), std::string::npos);
  // header + separator + 2 rows = 4 lines
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTable, ColumnsAreAligned) {
  TextTable t({"a", "b"});
  t.add_row({"xxxxxxxx", "1"});
  t.add_row({"y", "22"});
  const std::string out = t.to_string();
  // Every line must have the same length since columns are padded.
  std::size_t prev = std::string::npos;
  std::size_t start = 0;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    const std::size_t len = end - start;
    if (prev != std::string::npos) {
      EXPECT_EQ(len, prev);
    }
    prev = len;
    start = end + 1;
  }
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), InternalError);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), InternalError);
}

TEST(TextTable, EmptyHeadersThrow) {
  EXPECT_THROW(TextTable({}), InternalError);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(99.228, 2), "99.23");
  EXPECT_EQ(TextTable::num(197.0, 0), "197");
  EXPECT_EQ(TextTable::num(std::int64_t{1536}), "1536");
}

TEST(TextTable, CountsRowsAndColumns) {
  TextTable t({"a", "b", "c"});
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1u);
}

}  // namespace
}  // namespace holmes
