#include "util/error.h"

#include <gtest/gtest.h>

namespace holmes {
namespace {

TEST(Error, CheckPassesOnTrueCondition) {
  EXPECT_NO_THROW(HOLMES_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(HOLMES_CHECK_MSG(true, "never shown"));
}

TEST(Error, CheckThrowsInternalErrorWithExpression) {
  try {
    HOLMES_CHECK(2 + 2 == 5);
    FAIL() << "expected InternalError";
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_error.cpp"), std::string::npos);
  }
}

TEST(Error, CheckMsgIncludesMessage) {
  try {
    HOLMES_CHECK_MSG(false, "rank 7 out of range");
    FAIL() << "expected InternalError";
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("rank 7 out of range"),
              std::string::npos);
  }
}

TEST(Error, HierarchyIsCatchableAsError) {
  EXPECT_THROW(throw ConfigError("bad degree"), Error);
  EXPECT_THROW(throw InternalError("bug"), Error);
  EXPECT_THROW(throw ConfigError("bad"), std::runtime_error);
}

TEST(Error, ConfigErrorPrefixesMessage) {
  ConfigError e("t*p*d != N");
  EXPECT_EQ(std::string(e.what()), "config error: t*p*d != N");
}

}  // namespace
}  // namespace holmes
