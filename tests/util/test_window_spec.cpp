#include "util/window_spec.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace holmes {
namespace {

TEST(WindowSpec, ParsesBeginAndEnd) {
  const WindowSpec w = parse_window_spec("1.5:4.25");
  EXPECT_DOUBLE_EQ(w.begin, 1.5);
  EXPECT_DOUBLE_EQ(w.end, 4.25);
}

TEST(WindowSpec, EmptyEndMeansUnbounded) {
  const WindowSpec w = parse_window_spec("2:");
  EXPECT_DOUBLE_EQ(w.begin, 2.0);
  EXPECT_LT(w.end, 0.0);
}

TEST(WindowSpec, ZeroBeginToEnd) {
  const WindowSpec w = parse_window_spec("0:10");
  EXPECT_DOUBLE_EQ(w.begin, 0.0);
  EXPECT_DOUBLE_EQ(w.end, 10.0);
}

TEST(WindowSpec, RejectsMissingColon) {
  EXPECT_THROW(parse_window_spec("3.5"), ConfigError);
}

TEST(WindowSpec, RejectsNonNumeric) {
  EXPECT_THROW(parse_window_spec("a:b"), ConfigError);
  EXPECT_THROW(parse_window_spec(":2"), ConfigError);
}

TEST(WindowSpec, RejectsEmptyWindow) {
  // stats and explain share these exact semantics: BEGIN must precede a
  // bounded END; "5:" stays legal (unbounded).
  EXPECT_THROW(parse_window_spec("5:5"), ConfigError);
  EXPECT_THROW(parse_window_spec("6:5"), ConfigError);
}

}  // namespace
}  // namespace holmes
