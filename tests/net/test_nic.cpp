#include "net/nic.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace holmes::net {
namespace {

TEST(Nic, RdmaCompatibilityMatrix) {
  // Same RDMA type: compatible.
  EXPECT_TRUE(rdma_compatible(NicType::kInfiniBand, NicType::kInfiniBand));
  EXPECT_TRUE(rdma_compatible(NicType::kRoCE, NicType::kRoCE));
  // The paper's core constraint: IB and RoCE are mutually incompatible.
  EXPECT_FALSE(rdma_compatible(NicType::kInfiniBand, NicType::kRoCE));
  EXPECT_FALSE(rdma_compatible(NicType::kRoCE, NicType::kInfiniBand));
  // Ethernet NICs never speak RDMA.
  EXPECT_FALSE(rdma_compatible(NicType::kEthernet, NicType::kEthernet));
  EXPECT_FALSE(rdma_compatible(NicType::kEthernet, NicType::kInfiniBand));
}

TEST(Nic, RdmaFabricMapping) {
  EXPECT_EQ(rdma_fabric(NicType::kInfiniBand), FabricKind::kInfiniBand);
  EXPECT_EQ(rdma_fabric(NicType::kRoCE), FabricKind::kRoCE);
}

TEST(Nic, ToStringRoundTrip) {
  EXPECT_EQ(to_string(NicType::kInfiniBand), "InfiniBand");
  EXPECT_EQ(to_string(NicType::kRoCE), "RoCE");
  EXPECT_EQ(to_string(NicType::kEthernet), "Ethernet");
  for (NicType t : {NicType::kInfiniBand, NicType::kRoCE, NicType::kEthernet}) {
    EXPECT_EQ(parse_nic_type(to_string(t)), t);
  }
}

TEST(Nic, ParseAcceptsAliasesCaseInsensitive) {
  EXPECT_EQ(parse_nic_type("IB"), NicType::kInfiniBand);
  EXPECT_EQ(parse_nic_type("ib"), NicType::kInfiniBand);
  EXPECT_EQ(parse_nic_type("roce"), NicType::kRoCE);
  EXPECT_EQ(parse_nic_type("ETH"), NicType::kEthernet);
  EXPECT_EQ(parse_nic_type("ethernet"), NicType::kEthernet);
}

TEST(Nic, ParseRejectsUnknown) {
  EXPECT_THROW(parse_nic_type("omnipath"), ConfigError);
  EXPECT_THROW(parse_nic_type(""), ConfigError);
}

TEST(Nic, FabricNames) {
  EXPECT_EQ(to_string(FabricKind::kNVLink), "NVLink");
  EXPECT_EQ(to_string(FabricKind::kPCIe), "PCIe");
  EXPECT_EQ(to_string(FabricKind::kEthernet), "Ethernet");
}

}  // namespace
}  // namespace holmes::net
