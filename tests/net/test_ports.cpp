#include "net/ports.h"

#include <gtest/gtest.h>

#include "sim/executor.h"
#include "util/error.h"

namespace holmes::net {
namespace {

TEST(PortMap, ResourcesAreDistinct) {
  Topology topo = Topology::homogeneous(2, NicType::kInfiniBand, 2);
  sim::TaskGraph graph;
  PortMap ports(topo, graph);
  EXPECT_NE(ports.compute(0), ports.compute(1));
  EXPECT_NE(ports.tx(0, FabricKind::kEthernet), ports.rx(0, FabricKind::kEthernet));
  EXPECT_NE(ports.tx(0, FabricKind::kEthernet), ports.tx(0, FabricKind::kInfiniBand));
  EXPECT_NE(ports.tx(0, FabricKind::kInfiniBand), ports.tx(1, FabricKind::kInfiniBand));
  // RDMA ports are per GPU even within one node.
  EXPECT_NE(ports.tx(2, FabricKind::kInfiniBand), ports.tx(3, FabricKind::kInfiniBand));
}

TEST(PortMap, EthernetPortsAreSharedPerNode) {
  // Commodity Ethernet NICs belong to the node and are shared round-robin
  // by its GPUs; RDMA NICs are per GPU.
  Topology topo = Topology::homogeneous(2, NicType::kInfiniBand, 4);
  sim::TaskGraph graph;
  PortMap ports(topo, graph, /*ethernet_ports_per_node=*/2);
  // GPUs 0 and 2 share port 0; GPUs 1 and 3 share port 1.
  EXPECT_EQ(ports.tx(0, FabricKind::kEthernet), ports.tx(2, FabricKind::kEthernet));
  EXPECT_EQ(ports.tx(1, FabricKind::kEthernet), ports.tx(3, FabricKind::kEthernet));
  EXPECT_NE(ports.tx(0, FabricKind::kEthernet), ports.tx(1, FabricKind::kEthernet));
  // Different nodes never share ports.
  EXPECT_NE(ports.tx(0, FabricKind::kEthernet), ports.tx(4, FabricKind::kEthernet));
  EXPECT_EQ(ports.rx(0, FabricKind::kEthernet), ports.rx(2, FabricKind::kEthernet));
}

TEST(PortMap, SingleEthernetPortSerializesWholeNode) {
  Topology topo = Topology::homogeneous(1, NicType::kInfiniBand, 4);
  sim::TaskGraph graph;
  PortMap ports(topo, graph, /*ethernet_ports_per_node=*/1);
  for (int r = 1; r < 4; ++r) {
    EXPECT_EQ(ports.tx(0, FabricKind::kEthernet),
              ports.tx(r, FabricKind::kEthernet));
  }
  EXPECT_THROW(PortMap(topo, graph, 0), InternalError);
}

TEST(PortMap, OutOfRangeRankRejected) {
  Topology topo = Topology::homogeneous(1, NicType::kInfiniBand, 2);
  sim::TaskGraph graph;
  PortMap ports(topo, graph);
  EXPECT_THROW(ports.compute(2), InternalError);
  EXPECT_THROW(ports.tx(-1, FabricKind::kNVLink), InternalError);
}

TEST(EmitTransfer, ResolvesFabricFromTopology) {
  Topology topo = Topology::hybrid_two_clusters(1, 4);  // ranks 0-3 IB, 4-7 RoCE
  sim::TaskGraph graph;
  PortMap ports(topo, graph);
  const auto intra = emit_transfer(graph, ports, topo, 0, 1, 1000);
  const auto cross = emit_transfer(graph, ports, topo, 0, 4, 1000);
  // Intra-node transfer uses the fat NVLink pipe; the cross-cluster one the
  // thin Ethernet pipe.
  EXPECT_GT(graph.task(intra).bandwidth, graph.task(cross).bandwidth);
  EXPECT_LT(graph.task(intra).latency, graph.task(cross).latency);
}

TEST(EmitTransfer, TimingMatchesPathModel) {
  Topology topo = Topology::homogeneous(2, NicType::kInfiniBand, 1);
  sim::TaskGraph graph;
  PortMap ports(topo, graph);
  const Bytes bytes = 100'000'000;
  const auto t = emit_transfer(graph, ports, topo, 0, 1, bytes);
  const PathInfo path = topo.path(0, 1);
  sim::SimResult result = sim::TaskGraphExecutor{}.run(graph);
  const SimTime expected = path.latency + static_cast<double>(bytes) / path.bandwidth;
  EXPECT_NEAR(result.timing(t).finish, expected, 1e-12);
}

TEST(EmitTransfer, ForcedFabricOverridesResolution) {
  Topology topo = Topology::homogeneous(2, NicType::kInfiniBand, 1);
  sim::TaskGraph graph;
  PortMap ports(topo, graph);
  // Force onto Ethernet even though IB is available (what a NIC-oblivious
  // framework ends up doing with mixed groups).
  const auto t = emit_transfer_on(graph, ports, topo, FabricKind::kEthernet,
                                  0, 1, 1000);
  const auto spec = topo.catalog().spec(FabricKind::kEthernet);
  EXPECT_DOUBLE_EQ(graph.task(t).bandwidth, spec.effective_bandwidth());
}

TEST(EmitTransfer, SelfTransferRejected) {
  Topology topo = Topology::homogeneous(1, NicType::kInfiniBand, 2);
  sim::TaskGraph graph;
  PortMap ports(topo, graph);
  EXPECT_THROW(emit_transfer(graph, ports, topo, 1, 1, 10), InternalError);
}

TEST(EmitTransfer, ConcurrentDisjointPairsDoNotSerialize) {
  Topology topo = Topology::homogeneous(4, NicType::kInfiniBand, 1);
  sim::TaskGraph graph;
  PortMap ports(topo, graph);
  const Bytes bytes = 250'000'000;  // 10ms at IB speed
  const auto a = emit_transfer(graph, ports, topo, 0, 1, bytes);
  const auto b = emit_transfer(graph, ports, topo, 2, 3, bytes);
  sim::SimResult result = sim::TaskGraphExecutor{}.run(graph);
  // Disjoint port pairs -> identical start times.
  EXPECT_DOUBLE_EQ(result.timing(a).start, result.timing(b).start);
}

TEST(EmitTransfer, SharedSenderPortSerializes) {
  Topology topo = Topology::homogeneous(3, NicType::kInfiniBand, 1);
  sim::TaskGraph graph;
  PortMap ports(topo, graph);
  const Bytes bytes = 250'000'000;
  const auto a = emit_transfer(graph, ports, topo, 0, 1, bytes);
  const auto b = emit_transfer(graph, ports, topo, 0, 2, bytes);
  sim::SimResult result = sim::TaskGraphExecutor{}.run(graph);
  // Same TX port on rank 0 -> second transfer starts after the first's
  // serialization completes.
  EXPECT_GT(result.timing(b).start, result.timing(a).start);
}

}  // namespace
}  // namespace holmes::net
