#include "net/topology_parse.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace holmes::net {
namespace {

TEST(TopologyParse, SingleCluster) {
  const Topology topo = parse_topology("4x8:ib");
  EXPECT_EQ(topo.cluster_count(), 1);
  EXPECT_EQ(topo.total_nodes(), 4);
  EXPECT_EQ(topo.gpus_per_node(), 8);
  EXPECT_EQ(topo.cluster(0).nic, NicType::kInfiniBand);
  EXPECT_EQ(topo.world_size(), 32);
}

TEST(TopologyParse, HybridSpec) {
  const Topology topo = parse_topology("2x8:ib+2x8:roce");
  EXPECT_EQ(topo.cluster_count(), 2);
  EXPECT_EQ(topo.cluster(0).nic, NicType::kInfiniBand);
  EXPECT_EQ(topo.cluster(1).nic, NicType::kRoCE);
  // Equivalent to the built-in factory.
  const Topology factory = Topology::hybrid_two_clusters(2);
  EXPECT_EQ(topo.world_size(), factory.world_size());
  EXPECT_EQ(topo.fabric_between(0, 16), factory.fabric_between(0, 16));
}

TEST(TopologyParse, WhitespaceAndAliases) {
  const Topology topo = parse_topology(" 1x4 : InfiniBand + 2x4 : ETHERNET ");
  EXPECT_EQ(topo.cluster_count(), 2);
  EXPECT_EQ(topo.cluster(0).nic, NicType::kInfiniBand);
  EXPECT_EQ(topo.cluster(1).nic, NicType::kEthernet);
  EXPECT_EQ(topo.gpus_per_node(), 4);
}

TEST(TopologyParse, BandwidthOverride) {
  const Topology topo = parse_topology("2x8:ib@100");
  EXPECT_DOUBLE_EQ(topo.cluster(0).nic_gbps, 100.0);
  // The override caps the RDMA path.
  const Topology full = parse_topology("2x8:ib");
  EXPECT_LT(topo.path(0, 8).bandwidth, full.path(0, 8).bandwidth);
}

TEST(TopologyParse, ThreeClusterTableFourSpec) {
  const Topology topo = parse_topology("2x8:roce + 2x8:roce + 2x8:ib");
  EXPECT_EQ(topo.cluster_count(), 3);
  EXPECT_EQ(topo.world_size(), 48);
  EXPECT_EQ(topo.cluster(2).nic, NicType::kInfiniBand);
}

TEST(TopologyParse, MalformedSpecsRejected) {
  EXPECT_THROW(parse_topology(""), ConfigError);
  EXPECT_THROW(parse_topology("8:ib"), ConfigError);        // missing x
  EXPECT_THROW(parse_topology("2x8"), ConfigError);         // missing nic
  EXPECT_THROW(parse_topology("2x8:omnipath"), ConfigError);
  EXPECT_THROW(parse_topology("0x8:ib"), ConfigError);      // zero nodes
  EXPECT_THROW(parse_topology("2x-8:ib"), ConfigError);
  EXPECT_THROW(parse_topology("2x8:ib@"), ConfigError);
  EXPECT_THROW(parse_topology("2x8:ib++2x8:roce"), ConfigError);
  EXPECT_THROW(parse_topology("ax8:ib"), ConfigError);
  EXPECT_THROW(parse_topology("2x8:ib@fast"), ConfigError);
}

TEST(TopologyParse, FormatRoundTrips) {
  for (const char* spec :
       {"4x8:ib", "2x8:ib+2x8:roce", "2x4:eth", "1x8:ib@100+3x8:roce"}) {
    const Topology topo = parse_topology(spec);
    EXPECT_EQ(format_topology(topo), spec);
    // And re-parsing the formatted form yields the same structure.
    const Topology again = parse_topology(format_topology(topo));
    EXPECT_EQ(again.world_size(), topo.world_size());
    EXPECT_EQ(again.cluster_count(), topo.cluster_count());
  }
}

}  // namespace
}  // namespace holmes::net
