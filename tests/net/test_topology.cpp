#include "net/topology.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace holmes::net {
namespace {

TEST(Topology, HomogeneousRankNumbering) {
  // 4 nodes x 8 GPUs: rank = 8*node + gpu (paper §2.4, 0-based).
  Topology topo = Topology::homogeneous(4, NicType::kInfiniBand);
  EXPECT_EQ(topo.world_size(), 32);
  EXPECT_EQ(topo.cluster_count(), 1);
  EXPECT_EQ(topo.total_nodes(), 4);
  const DeviceInfo& d = topo.device(19);
  EXPECT_EQ(d.rank, 19);
  EXPECT_EQ(d.global_node, 2);
  EXPECT_EQ(d.gpu_in_node, 3);
  EXPECT_EQ(d.nic, NicType::kInfiniBand);
}

TEST(Topology, MultiClusterRankNumberingIsContiguous) {
  // Paper Fig. 2: 2 clusters x 2 nodes x 4 GPUs.
  Topology topo({
      ClusterSpec{"c1", 2, 4, NicType::kInfiniBand},
      ClusterSpec{"c2", 2, 4, NicType::kRoCE},
  });
  EXPECT_EQ(topo.world_size(), 16);
  // Rank 8 is the first device of cluster 2 (node 3 globally, node 0 local).
  const DeviceInfo& d = topo.device(8);
  EXPECT_EQ(d.cluster, 1);
  EXPECT_EQ(d.node_in_cluster, 0);
  EXPECT_EQ(d.global_node, 2);
  EXPECT_EQ(d.gpu_in_node, 0);
  EXPECT_EQ(d.nic, NicType::kRoCE);
}

TEST(Topology, RanksInCluster) {
  Topology topo = Topology::hybrid_two_clusters(2, 4);
  const auto c0 = topo.ranks_in_cluster(0);
  const auto c1 = topo.ranks_in_cluster(1);
  ASSERT_EQ(c0.size(), 8u);
  ASSERT_EQ(c1.size(), 8u);
  EXPECT_EQ(c0.front(), 0);
  EXPECT_EQ(c0.back(), 7);
  EXPECT_EQ(c1.front(), 8);
  EXPECT_EQ(c1.back(), 15);
}

TEST(Topology, DegenerateSpecsRejected) {
  EXPECT_THROW(Topology({}), ConfigError);
  EXPECT_THROW(Topology({ClusterSpec{"c", 0, 8, NicType::kRoCE}}), ConfigError);
  EXPECT_THROW(Topology({ClusterSpec{"c", 2, 0, NicType::kRoCE}}), ConfigError);
}

TEST(Topology, SameNodeUsesNVLink) {
  Topology topo = Topology::homogeneous(2, NicType::kRoCE);
  EXPECT_EQ(topo.fabric_between(0, 7), FabricKind::kNVLink);
}

TEST(Topology, SameNodeWithoutNVLinkUsesPCIe) {
  Topology topo({ClusterSpec{"c", 1, 8, NicType::kInfiniBand, 0, false}});
  EXPECT_EQ(topo.fabric_between(0, 1), FabricKind::kPCIe);
}

TEST(Topology, SameClusterCrossNodeUsesRdma) {
  Topology ib = Topology::homogeneous(2, NicType::kInfiniBand);
  EXPECT_EQ(ib.fabric_between(0, 8), FabricKind::kInfiniBand);
  Topology roce = Topology::homogeneous(2, NicType::kRoCE);
  EXPECT_EQ(roce.fabric_between(0, 8), FabricKind::kRoCE);
}

TEST(Topology, EthernetClusterHasNoRdma) {
  Topology topo = Topology::homogeneous(2, NicType::kEthernet);
  EXPECT_EQ(topo.fabric_between(0, 8), FabricKind::kEthernet);
}

TEST(Topology, CrossClusterAlwaysEthernet) {
  // Even when both clusters run the same RDMA NIC type, there is no shared
  // high-speed switch between clusters (paper §2.2 case 2).
  Topology same = Topology::split_clusters(2, NicType::kInfiniBand, 4);
  EXPECT_EQ(same.fabric_between(0, 8), FabricKind::kEthernet);
  Topology hybrid = Topology::hybrid_two_clusters(2, 4);
  EXPECT_EQ(hybrid.fabric_between(0, 8), FabricKind::kEthernet);
}

TEST(Topology, SelfFabricRejected) {
  Topology topo = Topology::homogeneous(1, NicType::kInfiniBand);
  EXPECT_THROW(topo.fabric_between(3, 3), InternalError);
}

TEST(Topology, PathBandwidthOrdering) {
  Topology hybrid = Topology::hybrid_two_clusters(2, 4);
  const PathInfo nvlink = hybrid.path(0, 1);
  const PathInfo ib = hybrid.path(0, 4);
  const PathInfo eth = hybrid.path(0, 8);
  EXPECT_GT(nvlink.bandwidth, ib.bandwidth);
  EXPECT_GT(ib.bandwidth, eth.bandwidth);
  EXPECT_LT(ib.latency, eth.latency);
}

TEST(Topology, NicGbpsOverrideCapsRdmaBandwidth) {
  Topology topo({ClusterSpec{"slow-ib", 2, 8, NicType::kInfiniBand, 100.0}});
  const PathInfo p = topo.path(0, 8);
  EXPECT_EQ(p.fabric, FabricKind::kInfiniBand);
  const double expected =
      units::gbps_to_bytes_per_sec(100.0) *
      topo.catalog().spec(FabricKind::kInfiniBand).efficiency;
  EXPECT_DOUBLE_EQ(p.bandwidth, expected);
}

TEST(Topology, FastestCommonFabricSameNode) {
  Topology topo = Topology::homogeneous(2, NicType::kInfiniBand);
  EXPECT_EQ(topo.fastest_common_fabric({0, 1, 2, 3}), FabricKind::kNVLink);
}

TEST(Topology, FastestCommonFabricSameCluster) {
  Topology topo = Topology::homogeneous(2, NicType::kRoCE);
  EXPECT_EQ(topo.fastest_common_fabric({0, 8}), FabricKind::kRoCE);
}

TEST(Topology, FastestCommonFabricMixedClustersFallsToEthernet) {
  Topology topo = Topology::hybrid_two_clusters(2, 4);
  // A group straddling IB and RoCE clusters can only use Ethernet — this is
  // exactly the degradation Automatic NIC Selection avoids.
  EXPECT_EQ(topo.fastest_common_fabric({0, 8}), FabricKind::kEthernet);
  EXPECT_EQ(topo.fastest_common_fabric({0, 4, 8, 12}), FabricKind::kEthernet);
}

TEST(Topology, FastestCommonFabricNeedsTwoRanks) {
  Topology topo = Topology::homogeneous(1, NicType::kInfiniBand);
  EXPECT_THROW(topo.fastest_common_fabric({0}), InternalError);
}

TEST(Topology, GpusPerNodeConsistencyCheck) {
  Topology ok = Topology::hybrid_two_clusters(2, 4);
  EXPECT_EQ(ok.gpus_per_node(), 4);
  Topology bad({
      ClusterSpec{"a", 1, 4, NicType::kInfiniBand},
      ClusterSpec{"b", 1, 8, NicType::kRoCE},
  });
  EXPECT_THROW(bad.gpus_per_node(), InternalError);
}

}  // namespace
}  // namespace holmes::net
