#include "net/fabric.h"

#include <gtest/gtest.h>

namespace holmes::net {
namespace {

TEST(Fabric, EffectiveBandwidthAppliesEfficiency) {
  FabricSpec spec{FabricKind::kInfiniBand, 200.0, 0.5, 0.0};
  EXPECT_DOUBLE_EQ(spec.effective_bandwidth(), 12.5e9);  // 200Gbps/2 in bytes
}

TEST(Fabric, DefaultCatalogOrderings) {
  FabricCatalog cat;
  const double ib = cat.spec(FabricKind::kInfiniBand).effective_bandwidth();
  const double roce = cat.spec(FabricKind::kRoCE).effective_bandwidth();
  const double eth = cat.spec(FabricKind::kEthernet).effective_bandwidth();
  const double nvlink = cat.spec(FabricKind::kNVLink).effective_bandwidth();
  // The calibrated defaults must preserve the paper's empirical ordering:
  // NVLink >> IB > RoCE >> Ethernet in achievable bandwidth.
  EXPECT_GT(nvlink, ib);
  EXPECT_GT(ib, roce);
  EXPECT_GT(roce, eth);
  // and IB < RoCE < Ethernet in latency.
  EXPECT_LT(cat.spec(FabricKind::kInfiniBand).latency,
            cat.spec(FabricKind::kRoCE).latency);
  EXPECT_LT(cat.spec(FabricKind::kRoCE).latency,
            cat.spec(FabricKind::kEthernet).latency);
}

TEST(Fabric, NominalBandwidthsMatchPaperTestbed) {
  FabricCatalog cat;
  EXPECT_DOUBLE_EQ(cat.spec(FabricKind::kInfiniBand).bandwidth_gbps, 200.0);
  EXPECT_DOUBLE_EQ(cat.spec(FabricKind::kRoCE).bandwidth_gbps, 200.0);
  EXPECT_DOUBLE_EQ(cat.spec(FabricKind::kEthernet).bandwidth_gbps, 25.0);
}

TEST(Fabric, SetOverridesSpec) {
  FabricCatalog cat;
  FabricSpec custom{FabricKind::kEthernet, 100.0, 1.0, 1e-6};
  cat.set(custom);
  EXPECT_DOUBLE_EQ(cat.spec(FabricKind::kEthernet).bandwidth_gbps, 100.0);
  EXPECT_DOUBLE_EQ(cat.spec(FabricKind::kEthernet).efficiency, 1.0);
}

TEST(Fabric, MutableSpecReference) {
  FabricCatalog cat;
  cat.spec(FabricKind::kRoCE).efficiency = 0.9;
  EXPECT_DOUBLE_EQ(cat.spec(FabricKind::kRoCE).efficiency, 0.9);
}

}  // namespace
}  // namespace holmes::net
