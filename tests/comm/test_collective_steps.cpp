#include "comm/collective_steps.h"

#include <gtest/gtest.h>

#include <set>

#include "util/error.h"

namespace holmes::comm {
namespace {

TEST(ChunkLayout, EvenSplit) {
  ChunkLayout layout(12, 4);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(layout.count(c), 3);
    EXPECT_EQ(layout.offset(c), 3 * c);
  }
}

TEST(ChunkLayout, RemainderGoesToFirstChunks) {
  ChunkLayout layout(10, 4);  // 3,3,2,2
  EXPECT_EQ(layout.count(0), 3);
  EXPECT_EQ(layout.count(1), 3);
  EXPECT_EQ(layout.count(2), 2);
  EXPECT_EQ(layout.count(3), 2);
  EXPECT_EQ(layout.offset(0), 0);
  EXPECT_EQ(layout.offset(1), 3);
  EXPECT_EQ(layout.offset(2), 6);
  EXPECT_EQ(layout.offset(3), 8);
}

TEST(ChunkLayout, ChunksCoverBufferExactly) {
  for (std::int64_t elems : {0, 1, 7, 64, 1000}) {
    for (int chunks : {1, 2, 3, 8}) {
      ChunkLayout layout(elems, chunks);
      std::int64_t total = 0;
      for (int c = 0; c < chunks; ++c) {
        EXPECT_EQ(layout.offset(c), total);
        total += layout.count(c);
      }
      EXPECT_EQ(total, elems);
    }
  }
}

TEST(ChunkLayout, MoreChunksThanElems) {
  ChunkLayout layout(2, 5);  // 1,1,0,0,0
  EXPECT_EQ(layout.count(0), 1);
  EXPECT_EQ(layout.count(1), 1);
  EXPECT_EQ(layout.count(2), 0);
}

class RingStepsTest : public ::testing::TestWithParam<int> {};

TEST_P(RingStepsTest, ReduceScatterShape) {
  const int n = GetParam();
  const std::int64_t elems = 64;
  const auto steps = ring_reduce_scatter_steps(n, elems);
  validate_steps(steps, n, elems);
  if (n == 1) {
    EXPECT_TRUE(steps.empty());
    return;
  }
  // n*(n-1) steps (each rank sends once per round) when no chunk is empty.
  EXPECT_EQ(steps.size(), static_cast<std::size_t>(n) * (n - 1));
  for (const auto& s : steps) {
    EXPECT_TRUE(s.reduce);
    EXPECT_EQ(s.dst, (s.src + 1) % n);          // ring neighbours only
    EXPECT_EQ(s.src_offset, s.dst_offset);      // in-place convention
  }
}

TEST_P(RingStepsTest, AllGatherShape) {
  const int n = GetParam();
  const auto steps = ring_all_gather_steps(n, 64);
  validate_steps(steps, n, 64);
  for (const auto& s : steps) {
    EXPECT_FALSE(s.reduce);
    EXPECT_EQ(s.dst, (s.src + 1) % n);
  }
}

TEST_P(RingStepsTest, AllReduceBytesSentIsBandwidthOptimal) {
  const int n = GetParam();
  if (n == 1) return;
  const std::int64_t elems = 64 * n;  // divisible: exact factor
  const auto steps = ring_all_reduce_steps(n, elems);
  // Each rank transmits exactly 2*(n-1)/n of the buffer.
  const Bytes expected = 2 * (n - 1) * (elems / n);
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(bytes_sent_by(steps, r, 1), expected) << "rank " << r;
  }
}

TEST_P(RingStepsTest, ReduceScatterBytesSent) {
  const int n = GetParam();
  if (n == 1) return;
  const std::int64_t elems = 16 * n;
  const auto steps = ring_reduce_scatter_steps(n, elems);
  const Bytes expected = (n - 1) * (elems / n);
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(bytes_sent_by(steps, r, 1), expected);
  }
}

TEST_P(RingStepsTest, BroadcastValidatesForEveryRoot) {
  const int n = GetParam();
  for (int root = 0; root < n; ++root) {
    const auto steps = broadcast_steps(n, root, 37);
    validate_steps(steps, n, 37);
  }
}

TEST_P(RingStepsTest, ReduceValidatesForEveryRoot) {
  const int n = GetParam();
  for (int root = 0; root < n; ++root) {
    const auto steps = reduce_steps(n, root, 41);
    validate_steps(steps, n, 41);
  }
}

TEST_P(RingStepsTest, AllToAllCoversAllPairs) {
  const int n = GetParam();
  const auto steps = all_to_all_steps(n, 8);
  validate_steps(steps, n, -1, /*in_place=*/false);
  std::set<std::pair<int, int>> pairs;
  for (const auto& s : steps) pairs.insert({s.src, s.dst});
  EXPECT_EQ(pairs.size(), static_cast<std::size_t>(n) * (n - 1));
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, RingStepsTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16));

TEST(RingSteps, OwnedChunkConvention) {
  EXPECT_EQ(ring_owned_chunk(4, 0), 1);
  EXPECT_EQ(ring_owned_chunk(4, 3), 0);
  EXPECT_EQ(ring_owned_chunk(1, 0), 0);
  // Ownership is a bijection.
  std::set<int> owned;
  for (int r = 0; r < 7; ++r) owned.insert(ring_owned_chunk(7, r));
  EXPECT_EQ(owned.size(), 7u);
}

TEST(RingSteps, TinyBufferSkipsEmptyChunks) {
  // 2 elements across 5 ranks: 3 chunks are empty; steps must skip them.
  const auto steps = ring_reduce_scatter_steps(5, 2);
  validate_steps(steps, 5, 2);
  for (const auto& s : steps) EXPECT_GT(s.count, 0);
}

TEST(RingSteps, ZeroElemsYieldNoSteps) {
  EXPECT_TRUE(ring_all_reduce_steps(4, 0).empty());
  EXPECT_TRUE(broadcast_steps(4, 0, 0).empty());
  EXPECT_TRUE(all_to_all_steps(4, 0).empty());
}

TEST(RingSteps, InvalidArgsRejected) {
  EXPECT_THROW(ring_reduce_scatter_steps(0, 8), InternalError);
  EXPECT_THROW(broadcast_steps(4, 4, 8), InternalError);
  EXPECT_THROW(broadcast_steps(4, -1, 8), InternalError);
  EXPECT_THROW(reduce_steps(4, 9, 8), InternalError);
}

TEST(ValidateSteps, CatchesHazards) {
  // A step that reads what another same-round step writes on its rank.
  std::vector<CollectiveStep> bad = {
      {0, 0, 1, 0, 0, 4, false},  // writes rank1[0..4)
      {0, 1, 2, 2, 2, 4, false},  // reads rank1[2..6) -> hazard
  };
  EXPECT_THROW(validate_steps(bad, 3, 8), InternalError);
}

TEST(ValidateSteps, CatchesOutOfRange) {
  std::vector<CollectiveStep> bad = {{0, 0, 1, 0, 6, 4, false}};
  EXPECT_THROW(validate_steps(bad, 2, 8), InternalError);  // 6+4 > 8
  std::vector<CollectiveStep> self = {{0, 1, 1, 0, 0, 4, false}};
  EXPECT_THROW(validate_steps(self, 2, 8), InternalError);
}

}  // namespace
}  // namespace holmes::comm
