#include "comm/halving_doubling.h"

#include <gtest/gtest.h>

#include <set>

#include "comm/inprocess.h"
#include "net/ports.h"
#include "sim/executor.h"
#include "util/error.h"
#include "util/rng.h"

namespace holmes::comm {
namespace {

struct Shape {
  int n;
  std::int64_t elems;
};

class HalvingDoublingSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(HalvingDoublingSweep, ProgramValidates) {
  const auto [n, elems] = GetParam();
  const auto steps = halving_doubling_all_reduce_steps(n, elems);
  validate_steps(steps, n, elems);
}

TEST_P(HalvingDoublingSweep, ComputesGlobalSum) {
  const auto [n, elems] = GetParam();
  Rng rng(17);
  std::vector<std::vector<float>> bufs(static_cast<std::size_t>(n));
  std::vector<float> expected(static_cast<std::size_t>(elems), 0.0f);
  for (auto& buf : bufs) {
    buf.resize(static_cast<std::size_t>(elems));
    for (std::int64_t k = 0; k < elems; ++k) {
      buf[static_cast<std::size_t>(k)] =
          static_cast<float>(rng.uniform_int(-5, 5));
      expected[static_cast<std::size_t>(k)] += buf[static_cast<std::size_t>(k)];
    }
  }
  BufferSet spans;
  for (auto& b : bufs) spans.emplace_back(b);
  apply_steps(halving_doubling_all_reduce_steps(n, elems), spans, spans);
  for (int r = 0; r < n; ++r) {
    ASSERT_EQ(bufs[static_cast<std::size_t>(r)], expected) << "rank " << r;
  }
}

TEST_P(HalvingDoublingSweep, UsesLogarithmicRounds) {
  const auto [n, elems] = GetParam();
  if (n == 1) return;
  const auto steps = halving_doubling_all_reduce_steps(n, elems);
  std::set<int> rounds;
  for (const auto& s : steps) rounds.insert(s.round);
  int log2n = 0;
  for (int x = n; x > 1; x /= 2) ++log2n;
  EXPECT_LE(static_cast<int>(rounds.size()), 2 * log2n);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HalvingDoublingSweep,
    ::testing::Values(Shape{1, 8}, Shape{2, 16}, Shape{4, 64}, Shape{8, 64},
                      Shape{16, 256}, Shape{8, 5}, Shape{4, 1}, Shape{32, 97}),
    [](const ::testing::TestParamInfo<Shape>& param_info) {
      return "n" + std::to_string(param_info.param.n) + "_e" +
             std::to_string(param_info.param.elems);
    });

TEST(HalvingDoubling, BandwidthMatchesRing) {
  // Same total bytes per rank as the bandwidth-optimal ring: 2(n-1)/n * E.
  const int n = 8;
  const std::int64_t elems = 64 * n;
  const auto steps = halving_doubling_all_reduce_steps(n, elems);
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(bytes_sent_by(steps, r, 1), 2 * (n - 1) * (elems / n));
  }
}

TEST(HalvingDoubling, RejectsNonPowerOfTwo) {
  EXPECT_THROW(halving_doubling_all_reduce_steps(3, 8), ConfigError);
  EXPECT_THROW(halving_doubling_all_reduce_steps(6, 8), ConfigError);
  EXPECT_THROW(halving_doubling_all_reduce_steps(0, 8), ConfigError);
}

TEST(HalvingDoubling, SuggestedSelectionSwitchesBySize) {
  // Small payload on a power-of-two group -> halving-doubling (few rounds).
  const auto small = suggested_all_reduce_steps(8, 1024);
  std::set<int> small_rounds;
  for (const auto& s : small) small_rounds.insert(s.round);
  EXPECT_EQ(small_rounds.size(), 6u);  // 2 * log2(8)

  // Large payload -> ring (2(n-1) rounds).
  const auto large = suggested_all_reduce_steps(8, 1 << 22);
  std::set<int> large_rounds;
  for (const auto& s : large) large_rounds.insert(s.round);
  EXPECT_EQ(large_rounds.size(), 14u);  // 2 * (8 - 1)

  // Non-power-of-two group -> ring regardless of size.
  EXPECT_EQ(suggested_all_reduce_steps(6, 1024), ring_all_reduce_steps(6, 1024));
}

TEST(HalvingDoubling, LatencyWinForSmallPayloads) {
  // 16 single-GPU nodes, 4 KB payload: 6 rounds of latency beat the ring's
  // 30 in simulated time.
  const int n = 16;
  const net::Topology topo =
      net::Topology::homogeneous(n, net::NicType::kInfiniBand, 1);

  auto simulate = [&](const std::vector<CollectiveStep>& steps) {
    sim::TaskGraph graph;
    const net::PortMap ports(topo, graph);
    std::vector<sim::TaskId> last(static_cast<std::size_t>(n),
                                  sim::kInvalidTask);
    for (const auto& s : steps) {
      const sim::TaskId x =
          net::emit_transfer(graph, ports, topo, s.src, s.dst, s.count);
      graph.add_deps(x, {last[static_cast<std::size_t>(s.src)]});
      last[static_cast<std::size_t>(s.dst)] = x;
    }
    return sim::TaskGraphExecutor{}.run(graph).makespan();
  };

  const SimTime hd = simulate(halving_doubling_all_reduce_steps(n, 4096));
  const SimTime ring = simulate(ring_all_reduce_steps(n, 4096));
  EXPECT_LT(hd, ring * 0.5);
}

}  // namespace
}  // namespace holmes::comm
