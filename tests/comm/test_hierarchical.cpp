#include "comm/hierarchical.h"

#include <gtest/gtest.h>

#include <vector>

#include "comm/communicator.h"
#include "comm/inprocess.h"
#include "sim/executor.h"
#include "util/error.h"
#include "util/rng.h"

namespace holmes::comm {
namespace {

using net::NicType;
using net::PortMap;
using net::Topology;

std::vector<int> node_layout(int nodes, int locals) {
  std::vector<int> layout;
  for (int k = 0; k < nodes; ++k) {
    for (int i = 0; i < locals; ++i) layout.push_back(k);
  }
  return layout;
}

struct Shape {
  int nodes;
  int locals;
  std::int64_t elems;
};

class HierarchicalSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(HierarchicalSweep, ProgramValidates) {
  const auto [nodes, locals, elems] = GetParam();
  const auto steps =
      hierarchical_all_reduce_steps(node_layout(nodes, locals), elems);
  validate_steps(steps, nodes * locals, elems);
}

TEST_P(HierarchicalSweep, ComputesGlobalSum) {
  const auto [nodes, locals, elems] = GetParam();
  const int n = nodes * locals;
  Rng rng(91);
  std::vector<std::vector<float>> bufs(static_cast<std::size_t>(n));
  std::vector<float> expected(static_cast<std::size_t>(elems), 0.0f);
  for (auto& buf : bufs) {
    buf.resize(static_cast<std::size_t>(elems));
    for (std::int64_t k = 0; k < elems; ++k) {
      buf[static_cast<std::size_t>(k)] =
          static_cast<float>(rng.uniform_int(-6, 6));
      expected[static_cast<std::size_t>(k)] += buf[static_cast<std::size_t>(k)];
    }
  }
  BufferSet spans;
  for (auto& b : bufs) spans.emplace_back(b);
  apply_steps(hierarchical_all_reduce_steps(node_layout(nodes, locals), elems),
              spans, spans);
  for (int r = 0; r < n; ++r) {
    ASSERT_EQ(bufs[static_cast<std::size_t>(r)], expected) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HierarchicalSweep,
    ::testing::Values(Shape{2, 2, 16}, Shape{2, 4, 64}, Shape{4, 2, 64},
                      Shape{4, 8, 256}, Shape{3, 3, 27}, Shape{2, 8, 7},
                      Shape{1, 4, 32}, Shape{4, 1, 32}),
    [](const ::testing::TestParamInfo<Shape>& param_info) {
      return "n" + std::to_string(param_info.param.nodes) + "x" +
             std::to_string(param_info.param.locals) + "_e" +
             std::to_string(param_info.param.elems);
    });

TEST(Hierarchical, DegeneratesToFlatRing) {
  EXPECT_EQ(hierarchical_all_reduce_steps(node_layout(1, 4), 64),
            ring_all_reduce_steps(4, 64));
  EXPECT_EQ(hierarchical_all_reduce_steps(node_layout(4, 1), 64),
            ring_all_reduce_steps(4, 64));
}

TEST(Hierarchical, RejectsIrregularLayouts) {
  EXPECT_THROW(hierarchical_all_reduce_steps({}, 8), ConfigError);
  EXPECT_THROW(hierarchical_all_reduce_steps({0, 0, 1}, 8), ConfigError);
  EXPECT_THROW(hierarchical_all_reduce_steps({0, 1, 0, 1}, 8), ConfigError);
  EXPECT_THROW(hierarchical_all_reduce_steps({0, 0}, -1), ConfigError);
}

TEST(Hierarchical, NumericViaCommunicator) {
  Topology topo = Topology::homogeneous(2, NicType::kInfiniBand, 4);
  std::vector<int> ranks = {0, 1, 2, 3, 4, 5, 6, 7};
  const Communicator comm(topo, ranks);
  std::vector<std::vector<float>> bufs(8, std::vector<float>(10, 1.0f));
  BufferSet spans;
  for (auto& b : bufs) spans.emplace_back(b);
  comm.hierarchical_all_reduce(spans);
  for (const auto& b : bufs) {
    for (float x : b) ASSERT_EQ(x, 8.0f);
  }
}

TEST(Hierarchical, TimedLoweringBeatsFlatRingAcrossNodes) {
  // 4 nodes x 4 GPUs on InfiniBand: the hierarchical algorithm pushes the
  // inter-node volume through 4 NICs per node instead of 1, so the large
  // all-reduce must finish substantially faster.
  Topology topo = Topology::homogeneous(4, NicType::kInfiniBand, 4);
  std::vector<int> ranks;
  for (int r = 0; r < 16; ++r) ranks.push_back(r);
  const Communicator comm(topo, ranks);
  const Bytes bytes = 4'000'000'000;

  auto finish = [&](bool hierarchical) {
    sim::TaskGraph graph;
    const PortMap ports(topo, graph);
    const TaskHandles done =
        hierarchical
            ? comm.lower_hierarchical_all_reduce(graph, ports, bytes, {})
            : comm.lower_all_reduce(graph, ports, bytes, {});
    const auto result = sim::TaskGraphExecutor{}.run(graph);
    SimTime latest = 0;
    for (sim::TaskId t : done) {
      latest = std::max(latest, result.timing(t).finish);
    }
    return latest;
  };

  const SimTime flat = finish(false);
  const SimTime hier = finish(true);
  EXPECT_LT(hier, flat * 0.5);
}

}  // namespace
}  // namespace holmes::comm
