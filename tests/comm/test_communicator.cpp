#include "comm/communicator.h"

#include <gtest/gtest.h>

#include "sim/executor.h"
#include "util/error.h"

namespace holmes::comm {
namespace {

using net::FabricKind;
using net::NicType;
using net::PortMap;
using net::Topology;

SimTime finish_of(const sim::SimResult& result, const TaskHandles& done) {
  SimTime latest = 0;
  for (sim::TaskId t : done) {
    if (t != sim::kInvalidTask) latest = std::max(latest, result.timing(t).finish);
  }
  return latest;
}

TEST(Communicator, ConstructionValidatesRanks) {
  Topology topo = Topology::homogeneous(1, NicType::kInfiniBand, 4);
  EXPECT_THROW(Communicator(topo, {}), ConfigError);
  EXPECT_THROW(Communicator(topo, {0, 0}), ConfigError);
  EXPECT_THROW(Communicator(topo, {0, 99}), ConfigError);
  EXPECT_NO_THROW(Communicator(topo, {0, 1, 2, 3}));
}

TEST(Communicator, TransportSelection) {
  Topology hybrid = Topology::hybrid_two_clusters(2, 4);  // 0-7 IB, 8-15 RoCE
  EXPECT_EQ(Communicator(hybrid, {0, 1}).transport(), FabricKind::kNVLink);
  EXPECT_EQ(Communicator(hybrid, {0, 4}).transport(), FabricKind::kInfiniBand);
  EXPECT_EQ(Communicator(hybrid, {8, 12}).transport(), FabricKind::kRoCE);
  EXPECT_EQ(Communicator(hybrid, {0, 8}).transport(), FabricKind::kEthernet);
  EXPECT_TRUE(Communicator(hybrid, {0, 4}).is_rdma_capable());
  EXPECT_FALSE(Communicator(hybrid, {0, 8}).is_rdma_capable());
}

TEST(Communicator, NumericAllReduceMatchesEagerBackend) {
  Topology topo = Topology::homogeneous(1, NicType::kInfiniBand, 4);
  Communicator comm(topo, {0, 1, 2, 3});
  std::vector<std::vector<float>> bufs(4, std::vector<float>{1, 2, 3, 4});
  BufferSet spans;
  for (auto& b : bufs) spans.emplace_back(b);
  comm.all_reduce(spans);
  for (const auto& b : bufs) {
    EXPECT_EQ(b, (std::vector<float>{4, 8, 12, 16}));
  }
}

TEST(Communicator, NumericBufferCountMustMatchGroup) {
  Topology topo = Topology::homogeneous(1, NicType::kInfiniBand, 4);
  Communicator comm(topo, {0, 1, 2});
  std::vector<float> a(4), b(4);
  EXPECT_THROW(comm.all_reduce({std::span<float>(a), std::span<float>(b)}),
               InternalError);
}

TEST(CommunicatorLowering, AllReduceTimeMatchesRingCostModel) {
  // 4 single-GPU nodes on IB; ring all-reduce of V bytes should take about
  // 2*(n-1)/n * V / bw (plus small latency terms).
  const int n = 4;
  Topology topo = Topology::homogeneous(n, NicType::kInfiniBand, 1);
  Communicator comm(topo, {0, 1, 2, 3});
  sim::TaskGraph graph;
  PortMap ports(topo, graph);
  const Bytes bytes = 1'000'000'000;  // 1 GB
  const auto done = comm.lower_all_reduce(graph, ports, bytes, {});
  const auto result = sim::TaskGraphExecutor{}.run(graph);
  const double bw = topo.path(0, 1).bandwidth;
  const double ideal = 2.0 * (n - 1) / n * static_cast<double>(bytes) / bw;
  const SimTime simulated = finish_of(result, done);
  EXPECT_GT(simulated, ideal);              // latency makes it strictly slower
  EXPECT_LT(simulated, ideal * 1.05);       // but within 5% for a 1GB buffer
}

TEST(CommunicatorLowering, ReduceScatterIsHalfOfAllReduce) {
  const int n = 8;
  Topology topo = Topology::homogeneous(n, NicType::kRoCE, 1);
  std::vector<int> ranks;
  for (int i = 0; i < n; ++i) ranks.push_back(i);
  const Bytes bytes = 500'000'000;

  sim::TaskGraph g1;
  PortMap p1(topo, g1);
  Communicator comm(topo, ranks);
  const auto rs_done = comm.lower_reduce_scatter(g1, p1, bytes, {});
  const SimTime rs = finish_of(sim::TaskGraphExecutor{}.run(g1), rs_done);

  sim::TaskGraph g2;
  PortMap p2(topo, g2);
  const auto ar_done = comm.lower_all_reduce(g2, p2, bytes, {});
  const SimTime ar = finish_of(sim::TaskGraphExecutor{}.run(g2), ar_done);

  EXPECT_NEAR(ar / rs, 2.0, 0.05);
}

TEST(CommunicatorLowering, MixedNicGroupIsGatedByEthernet) {
  // Same group size and payload; one group inside the IB cluster, one
  // straddling IB and RoCE clusters. The straddling group's ring contains
  // Ethernet hops and must be dramatically slower.
  Topology topo = Topology::hybrid_two_clusters(2, 4);  // 0-7 IB, 8-15 RoCE
  const Bytes bytes = 100'000'000;

  sim::TaskGraph g1;
  PortMap p1(topo, g1);
  Communicator within(topo, {0, 4});  // two IB nodes
  const auto d1 = within.lower_all_reduce(g1, p1, bytes, {});
  const SimTime fast = finish_of(sim::TaskGraphExecutor{}.run(g1), d1);

  sim::TaskGraph g2;
  PortMap p2(topo, g2);
  Communicator across(topo, {0, 8});  // IB device + RoCE device
  const auto d2 = across.lower_all_reduce(g2, p2, bytes, {});
  const SimTime slow = finish_of(sim::TaskGraphExecutor{}.run(g2), d2);

  EXPECT_GT(slow / fast, 5.0);
}

TEST(CommunicatorLowering, ReadyHandlesDelayStart) {
  Topology topo = Topology::homogeneous(2, NicType::kInfiniBand, 1);
  Communicator comm(topo, {0, 1});
  sim::TaskGraph graph;
  PortMap ports(topo, graph);
  // A 1-second compute on rank 0 gates its participation.
  const auto pre = graph.add_compute(ports.compute(0), 1.0);
  const auto done =
      comm.lower_all_reduce(graph, ports, 1000, {pre, sim::kInvalidTask});
  const auto result = sim::TaskGraphExecutor{}.run(graph);
  EXPECT_GE(finish_of(result, done), 1.0);
}

TEST(CommunicatorLowering, SingleMemberGroupIsFree) {
  Topology topo = Topology::homogeneous(1, NicType::kInfiniBand, 2);
  Communicator comm(topo, {0});
  sim::TaskGraph graph;
  PortMap ports(topo, graph);
  const auto done = comm.lower_all_reduce(graph, ports, 1'000'000, {});
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done.front(), sim::kInvalidTask);  // nothing to wait for
  EXPECT_DOUBLE_EQ(sim::TaskGraphExecutor{}.run(graph).makespan(), 0.0);
}

TEST(CommunicatorLowering, BarrierIsLatencyOnly) {
  const int n = 4;
  Topology topo = Topology::homogeneous(n, NicType::kInfiniBand, 1);
  Communicator comm(topo, {0, 1, 2, 3});
  sim::TaskGraph graph;
  PortMap ports(topo, graph);
  const auto done = comm.lower_barrier(graph, ports, {});
  const auto result = sim::TaskGraphExecutor{}.run(graph);
  const SimTime latency = topo.path(0, 1).latency;
  const SimTime t = finish_of(result, done);
  // 2*(n-1) rounds of (latency + ~zero serialization).
  EXPECT_GE(t, 2 * (n - 1) * latency);
  EXPECT_LT(t, 3 * 2 * (n - 1) * latency);
}

TEST(CommunicatorLowering, BroadcastScalesWithPayloadNotGroupSize) {
  // Pipelined broadcast: doubling the group adds rounds but the dominant
  // term stays V/bw, so time grows mildly, not proportionally.
  const Bytes bytes = 1'000'000'000;
  auto run = [&](int n) {
    Topology topo = Topology::homogeneous(n, NicType::kInfiniBand, 1);
    std::vector<int> ranks;
    for (int i = 0; i < n; ++i) ranks.push_back(i);
    Communicator comm(topo, ranks);
    sim::TaskGraph graph;
    PortMap ports(topo, graph);
    const auto done = comm.lower_broadcast(graph, ports, bytes, 0, {});
    return finish_of(sim::TaskGraphExecutor{}.run(graph), done);
  };
  const SimTime t4 = run(4);
  const SimTime t8 = run(8);
  EXPECT_LT(t8 / t4, 1.5);
}

TEST(CommunicatorLowering, ForcedInternodeFabricSlowsRdmaGroup) {
  // The NCCL global-fallback model: forcing inter-node hops onto Ethernet
  // must slow an IB group's all-reduce dramatically, while leaving
  // intra-node (NVLink) hops untouched.
  Topology topo = Topology::homogeneous(2, NicType::kInfiniBand, 2);
  std::vector<int> ranks = {0, 1, 2, 3};
  const Bytes bytes = 200'000'000;

  Communicator rdma(topo, ranks);
  sim::TaskGraph g1;
  PortMap p1(topo, g1);
  const SimTime fast = finish_of(sim::TaskGraphExecutor{}.run(g1),
                                 rdma.lower_all_reduce(g1, p1, bytes, {}));

  Communicator fallback(topo, ranks);
  fallback.force_internode_fabric(FabricKind::kEthernet);
  EXPECT_EQ(fallback.internode_fabric_override(), FabricKind::kEthernet);
  sim::TaskGraph g2;
  PortMap p2(topo, g2);
  const SimTime slow = finish_of(sim::TaskGraphExecutor{}.run(g2),
                                 fallback.lower_all_reduce(g2, p2, bytes, {}));
  EXPECT_GT(slow, fast * 3);
}

TEST(CommunicatorLowering, AllToAllUsesAllPortPairs) {
  // 4 single-GPU IB nodes: all-to-all's rounds pair distinct port sets, so
  // total time stays near (n-1) * block / bw instead of serializing.
  const int n = 4;
  Topology topo = Topology::homogeneous(n, NicType::kInfiniBand, 1);
  Communicator comm(topo, {0, 1, 2, 3});
  sim::TaskGraph graph;
  PortMap ports(topo, graph);
  const Bytes block = 250'000'000;
  const auto done = comm.lower_all_to_all(graph, ports, block, {});
  const SimTime t = finish_of(sim::TaskGraphExecutor{}.run(graph), done);
  const double bw = topo.path(0, 1).bandwidth;
  const double ideal = (n - 1) * static_cast<double>(block) / bw;
  EXPECT_GT(t, ideal * 0.99);
  EXPECT_LT(t, ideal * 1.3);
}

TEST(CommunicatorLowering, BroadcastFromEveryRootCompletes) {
  Topology topo = Topology::hybrid_two_clusters(1, 2);  // 4 GPUs, 2 clusters
  Communicator comm(topo, {0, 1, 2, 3});
  sim::TaskGraph graph;
  PortMap ports(topo, graph);
  comm::TaskHandles prev;
  for (int root = 0; root < 4; ++root) {
    prev = comm.lower_broadcast(graph, ports, 1'000'000, root, prev);
  }
  const auto result = sim::TaskGraphExecutor{}.run(graph);
  EXPECT_GT(finish_of(result, prev), 0.0);
}

TEST(CommunicatorLowering, TagPropagatesToTasks) {
  Topology topo = Topology::homogeneous(2, NicType::kInfiniBand, 1);
  Communicator comm(topo, {0, 1});
  sim::TaskGraph graph;
  PortMap ports(topo, graph);
  constexpr sim::TaskTag kTag = 77;
  comm.lower_all_reduce(graph, ports, 1'000'000, {}, kTag);
  const auto result = sim::TaskGraphExecutor{}.run(graph);
  EXPECT_GT(result.tag_busy(graph, kTag), 0.0);
}

TEST(CommunicatorLowering, TransfersCarryTheCommunicatorChannel) {
  // Every transfer a collective emits is attributed to a channel named
  // after the communicator, so the observability layer can report
  // per-communicator bytes without parsing labels.
  Topology topo = Topology::homogeneous(4, NicType::kInfiniBand, 1);
  Communicator comm(topo, {0, 1, 2, 3}, "dp0");
  sim::TaskGraph graph;
  PortMap ports(topo, graph);
  comm.lower_all_reduce(graph, ports, 1'000'000, {});
  ASSERT_EQ(graph.channel_count(), 1u);
  const sim::ChannelId dp0 = graph.channel("dp0");
  std::size_t transfers = 0;
  for (const sim::Task& task : graph.tasks()) {
    if (task.kind != sim::TaskKind::kTransfer) continue;
    EXPECT_EQ(task.channel, dp0);
    ++transfers;
  }
  // Ring all-reduce over 4 members: 2*(n-1) rounds of n transfers.
  EXPECT_EQ(transfers, 24u);
}

}  // namespace
}  // namespace holmes::comm
