#include "comm/inprocess.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace holmes::comm {
namespace {

/// Builds n buffers of `elems` deterministic pseudo-random floats and
/// returns them along with the expected element-wise sum.
struct Fixture {
  std::vector<std::vector<float>> storage;
  std::vector<float> expected_sum;

  Fixture(int n, std::int64_t elems, std::uint64_t seed = 42) {
    Rng rng(seed);
    storage.resize(static_cast<std::size_t>(n));
    expected_sum.assign(static_cast<std::size_t>(elems), 0.0f);
    for (auto& buf : storage) {
      buf.resize(static_cast<std::size_t>(elems));
      for (std::int64_t k = 0; k < elems; ++k) {
        buf[static_cast<std::size_t>(k)] =
            static_cast<float>(rng.uniform_int(-8, 8));  // exact in fp32
        expected_sum[static_cast<std::size_t>(k)] += buf[static_cast<std::size_t>(k)];
      }
    }
  }

  BufferSet spans() {
    BufferSet s;
    for (auto& buf : storage) s.emplace_back(buf);
    return s;
  }
};

struct Shape {
  int n;
  std::int64_t elems;
};

class InProcessSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(InProcessSweep, AllReduceComputesGlobalSum) {
  const auto [n, elems] = GetParam();
  Fixture fx(n, elems);
  all_reduce_inplace(fx.spans());
  for (int r = 0; r < n; ++r) {
    for (std::int64_t k = 0; k < elems; ++k) {
      ASSERT_EQ(fx.storage[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)],
                fx.expected_sum[static_cast<std::size_t>(k)])
          << "rank " << r << " elem " << k;
    }
  }
}

TEST_P(InProcessSweep, ReduceScatterOwnedChunksHoldFullSum) {
  const auto [n, elems] = GetParam();
  Fixture fx(n, elems);
  reduce_scatter_inplace(fx.spans());
  const ChunkLayout layout(elems, n);
  for (int r = 0; r < n; ++r) {
    const int chunk = ring_owned_chunk(n, r);
    const std::int64_t off = layout.offset(chunk);
    for (std::int64_t k = 0; k < layout.count(chunk); ++k) {
      ASSERT_EQ(
          fx.storage[static_cast<std::size_t>(r)][static_cast<std::size_t>(off + k)],
          fx.expected_sum[static_cast<std::size_t>(off + k)])
          << "rank " << r << " chunk " << chunk;
    }
  }
}

TEST_P(InProcessSweep, ReduceScatterThenAllGatherEqualsAllReduce) {
  const auto [n, elems] = GetParam();
  Fixture fx(n, elems);
  reduce_scatter_inplace(fx.spans());
  all_gather_inplace(fx.spans());
  for (int r = 0; r < n; ++r) {
    for (std::int64_t k = 0; k < elems; ++k) {
      ASSERT_EQ(fx.storage[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)],
                fx.expected_sum[static_cast<std::size_t>(k)]);
    }
  }
}

TEST_P(InProcessSweep, BroadcastReplicatesRootFromEveryRoot) {
  const auto [n, elems] = GetParam();
  for (int root = 0; root < n; ++root) {
    Fixture fx(n, elems, 7 + static_cast<std::uint64_t>(root));
    const std::vector<float> root_copy = fx.storage[static_cast<std::size_t>(root)];
    broadcast_inplace(fx.spans(), root);
    for (int r = 0; r < n; ++r) {
      ASSERT_EQ(fx.storage[static_cast<std::size_t>(r)], root_copy)
          << "root " << root << " rank " << r;
    }
  }
}

TEST_P(InProcessSweep, ReduceDeliversSumAtRoot) {
  const auto [n, elems] = GetParam();
  for (int root = 0; root < n; ++root) {
    Fixture fx(n, elems, 99 + static_cast<std::uint64_t>(root));
    reduce_inplace(fx.spans(), root);
    for (std::int64_t k = 0; k < elems; ++k) {
      ASSERT_EQ(
          fx.storage[static_cast<std::size_t>(root)][static_cast<std::size_t>(k)],
          fx.expected_sum[static_cast<std::size_t>(k)])
          << "root " << root;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, InProcessSweep,
    ::testing::Values(Shape{1, 16}, Shape{2, 16}, Shape{3, 16}, Shape{4, 64},
                      Shape{5, 17}, Shape{8, 64}, Shape{8, 3}, Shape{16, 256},
                      Shape{7, 1}),
    [](const ::testing::TestParamInfo<Shape>& param_info) {
      return "n" + std::to_string(param_info.param.n) + "_e" +
             std::to_string(param_info.param.elems);
    });

TEST(InProcessAllToAll, ExchangesBlocksBySourceAndDestination) {
  const int n = 4;
  const std::int64_t block = 3;
  std::vector<std::vector<float>> send(n), recv(n);
  for (int i = 0; i < n; ++i) {
    send[static_cast<std::size_t>(i)].resize(static_cast<std::size_t>(n * block));
    recv[static_cast<std::size_t>(i)].assign(static_cast<std::size_t>(n * block), -1.0f);
    for (int d = 0; d < n; ++d) {
      for (std::int64_t k = 0; k < block; ++k) {
        // Value encodes (source, destination, position).
        send[static_cast<std::size_t>(i)][static_cast<std::size_t>(d * block + k)] =
            static_cast<float>(100 * i + 10 * d + k);
      }
    }
  }
  BufferSet send_spans, recv_spans;
  for (auto& b : send) send_spans.emplace_back(b);
  for (auto& b : recv) recv_spans.emplace_back(b);
  all_to_all(send_spans, recv_spans);
  for (int d = 0; d < n; ++d) {
    for (int s = 0; s < n; ++s) {
      for (std::int64_t k = 0; k < block; ++k) {
        ASSERT_EQ(recv[static_cast<std::size_t>(d)][static_cast<std::size_t>(s * block + k)],
                  static_cast<float>(100 * s + 10 * d + k));
      }
    }
  }
}

TEST(InProcess, MismatchedBufferLengthsRejected) {
  std::vector<float> a(8), b(4);
  EXPECT_THROW(all_reduce_inplace({std::span<float>(a), std::span<float>(b)}),
               InternalError);
}

TEST(InProcess, EmptyBufferSetRejected) {
  EXPECT_THROW(all_reduce_inplace({}), InternalError);
}

TEST(InProcess, AllToAllRequiresDivisibleBuffer) {
  std::vector<float> a(7), b(7), c(7), d(7);
  BufferSet send = {std::span<float>(a), std::span<float>(b)};
  BufferSet recv = {std::span<float>(c), std::span<float>(d)};
  EXPECT_THROW(all_to_all(send, recv), InternalError);  // 7 % 2 != 0
}

TEST(InProcess, SingleRankCollectivesAreIdentity) {
  std::vector<float> buf = {1, 2, 3};
  const std::vector<float> orig = buf;
  BufferSet set = {std::span<float>(buf)};
  all_reduce_inplace(set);
  EXPECT_EQ(buf, orig);
  broadcast_inplace(set, 0);
  EXPECT_EQ(buf, orig);
}

}  // namespace
}  // namespace holmes::comm
