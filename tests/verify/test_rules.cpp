#include "verify/rules.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace holmes::verify {
namespace {

TEST(RuleCatalog, HasTwentySixRulesWithUniqueAscendingIds) {
  const auto& catalog = rule_catalog();
  EXPECT_EQ(catalog.size(), 26u);
  std::set<std::string> ids;
  std::string prev;
  for (const RuleInfo& rule : catalog) {
    EXPECT_TRUE(ids.insert(rule.id).second) << "duplicate id " << rule.id;
    EXPECT_LT(prev, rule.id) << "catalog not ascending at " << rule.id;
    prev = rule.id;
  }
}

TEST(RuleCatalog, FamiliesMatchIdNumbering) {
  for (const RuleInfo& rule : rule_catalog()) {
    const std::string id = rule.id;
    ASSERT_EQ(id.size(), 5u) << id;
    ASSERT_EQ(id.substr(0, 2), "HV") << id;
    switch (id[2]) {
      case '1':
        EXPECT_EQ(rule.family, RuleFamily::kPlan) << id;
        break;
      case '2':
        EXPECT_EQ(rule.family, RuleFamily::kGraph) << id;
        break;
      case '3':
        EXPECT_EQ(rule.family, RuleFamily::kExecution) << id;
        break;
      case '4':
        EXPECT_EQ(rule.family, RuleFamily::kFlow) << id;
        break;
      case '5':
        EXPECT_EQ(rule.family, RuleFamily::kFault) << id;
        break;
      default:
        FAIL() << "unknown family digit in " << id;
    }
  }
}

TEST(RuleCatalog, EveryRuleIsDocumented) {
  for (const RuleInfo& rule : rule_catalog()) {
    EXPECT_FALSE(std::string(rule.title).empty()) << rule.id;
    EXPECT_FALSE(std::string(rule.detail).empty()) << rule.id;
  }
}

TEST(RuleCatalog, ConstantsResolve) {
  for (const char* id :
       {kRuleDpGroupTransport, kRuleTpGroupLocality, kRuleDpClusterCrossing,
        kRulePartitionStructure, kRulePartitionSpeedOrder, kRuleMemoryFit,
        kRuleDegreesConsistent, kRuleNeedlessFallback, kRuleGraphAcyclic,
        kRuleDepsValid, kRuleTaskFields, kRuleSerialOrder,
        kRuleChannelConservation, kRuleTimingMonotone, kRuleResourceExclusive,
        kRuleResultComplete, kRuleFlowChainBound, kRuleFlowResourceBound,
        kRuleFlowMemoryWatermark, kRuleChannelCutBalance, kRuleScheduleRace,
        kRuleFaultWindowSane, kRuleFaultScopeValid, kRuleCheckpointModelSane,
        kRuleRecoveryInvariant}) {
    EXPECT_NE(find_rule(id), nullptr) << id << " missing from the catalog";
  }
}

TEST(RuleCatalog, FindRuleReturnsNullForUnknownIds) {
  EXPECT_EQ(find_rule("HV999"), nullptr);
  EXPECT_EQ(find_rule(""), nullptr);
}

TEST(RuleCatalog, KnownDefaults) {
  const RuleInfo* hv101 = find_rule("HV101");
  ASSERT_NE(hv101, nullptr);
  EXPECT_EQ(hv101->default_severity, Severity::kError);
  EXPECT_EQ(std::string(hv101->title), "dp-group-transport");
  const RuleInfo* hv103 = find_rule("HV103");
  ASSERT_NE(hv103, nullptr);
  EXPECT_EQ(hv103->default_severity, Severity::kWarning);
}

TEST(RuleFamilyNames, ToString) {
  EXPECT_EQ(to_string(RuleFamily::kPlan), "plan");
  EXPECT_EQ(to_string(RuleFamily::kGraph), "graph");
  EXPECT_EQ(to_string(RuleFamily::kExecution), "execution");
  EXPECT_EQ(to_string(RuleFamily::kFlow), "flow");
}

}  // namespace
}  // namespace holmes::verify
