#include "verify/diagnostics.h"

#include <gtest/gtest.h>

#include <sstream>

namespace holmes::verify {
namespace {

TEST(LintReport, EmptyReportPasses) {
  LintReport report;
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.count(Severity::kError), 0u);
  EXPECT_TRUE(report.diagnostics().empty());
  EXPECT_TRUE(report.rules_checked().empty());
}

TEST(LintReport, CountsBySeverity) {
  LintReport report;
  report.add("HV101", Severity::kError, "dp0", "broken");
  report.add("HV103", Severity::kWarning, "dp1", "suspicious");
  report.add("HV103", Severity::kWarning, "dp2", "suspicious");
  report.add("HV108", Severity::kNote, "transport", "fyi");
  EXPECT_EQ(report.count(Severity::kError), 1u);
  EXPECT_EQ(report.count(Severity::kWarning), 2u);
  EXPECT_EQ(report.count(Severity::kNote), 1u);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.fired("HV101"));
  EXPECT_TRUE(report.fired("HV103"));
  EXPECT_FALSE(report.fired("HV102"));
}

TEST(LintReport, WarningsDoNotFailTheVerdict) {
  LintReport report;
  report.add("HV103", Severity::kWarning, "dp1", "suspicious");
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.clean());
}

TEST(LintReport, AddMarksTheRuleChecked) {
  LintReport report;
  report.add("HV101", Severity::kError, "dp0", "broken");
  ASSERT_EQ(report.rules_checked().size(), 1u);
  EXPECT_EQ(report.rules_checked()[0], "HV101");
}

TEST(LintReport, MarkCheckedIsIdempotent) {
  LintReport report;
  report.mark_checked("HV201");
  report.mark_checked("HV201");
  report.mark_checked("HV202");
  EXPECT_EQ(report.rules_checked().size(), 2u);
}

TEST(LintReport, MergeAppendsDiagnosticsAndDedupesCheckedRules) {
  LintReport a;
  a.mark_checked("HV101");
  a.add("HV102", Severity::kError, "tp0", "spans nodes");
  LintReport b;
  b.mark_checked("HV101");  // duplicate across reports
  b.add("HV201", Severity::kError, "graph", "cycle");
  a.merge(b);
  EXPECT_EQ(a.diagnostics().size(), 2u);
  EXPECT_EQ(a.rules_checked().size(), 3u);  // HV101, HV102, HV201
  EXPECT_TRUE(a.fired("HV201"));
}

TEST(LintReport, PromoteWarningsTurnsWarningsIntoErrors) {
  LintReport report;
  report.add("HV103", Severity::kWarning, "dp1", "suspicious");
  report.add("HV108", Severity::kNote, "transport", "fyi");
  EXPECT_TRUE(report.ok());
  report.promote_warnings();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.count(Severity::kWarning), 0u);
  EXPECT_EQ(report.count(Severity::kError), 1u);
  EXPECT_EQ(report.count(Severity::kNote), 1u);  // notes are untouched
}

TEST(PrintText, RendersDiagnosticsSummaryAndVerdict) {
  LintReport report;
  report.mark_checked("HV102");
  report.add("HV101", Severity::kError, "dp0", "no common RDMA fabric");
  std::ostringstream out;
  print_text(out, report);
  const std::string text = out.str();
  EXPECT_NE(text.find("HV101 [error] dp0: no common RDMA fabric"),
            std::string::npos);
  EXPECT_NE(text.find("checked 2 rules: 1 errors, 0 warnings, 0 notes"),
            std::string::npos);
  EXPECT_NE(text.find("verdict: fail"), std::string::npos);
}

TEST(WriteJson, ByteStableDocument) {
  LintReport report;
  report.mark_checked("HV101");
  report.add("HV103", Severity::kWarning, "dp1", "crosses clusters");
  std::ostringstream out;
  write_json(out, report);
  EXPECT_EQ(out.str(),
            "{\"schema\":\"holmes.lint_report.v1\",\"verdict\":\"pass\","
            "\"errors\":0,\"warnings\":1,\"notes\":0,"
            "\"rules_checked\":[\"HV101\",\"HV103\"],"
            "\"diagnostics\":[{\"rule\":\"HV103\",\"severity\":\"warning\","
            "\"subject\":\"dp1\",\"message\":\"crosses clusters\"}]}");
}

TEST(WriteJson, EscapesMessages) {
  LintReport report;
  report.add("HV203", Severity::kError, "task 1 'x\"y'", "a\"b");
  std::ostringstream out;
  write_json(out, report);
  EXPECT_NE(out.str().find("\"subject\":\"task 1 'x\\\"y'\""),
            std::string::npos);
  EXPECT_NE(out.str().find("\"message\":\"a\\\"b\""), std::string::npos);
}

}  // namespace
}  // namespace holmes::verify
