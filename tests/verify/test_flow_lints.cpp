#include "verify/flow_lints.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sim/executor.h"
#include "sim/task_graph.h"
#include "verify/rules.h"

namespace holmes::verify {
namespace {

using sim::ResourceId;
using sim::SimResult;
using sim::TaskGraph;
using sim::TaskGraphExecutor;
using sim::TaskId;
using sim::TaskTiming;

bool checked(const LintReport& report, const char* rule) {
  const auto& rules = report.rules_checked();
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

/// Two devices, a chained compute -> transfer -> compute, plus independent
/// work on gpu1 — enough structure for every flow quantity to be non-zero.
struct SmallGraph {
  TaskGraph graph;
  ResourceId gpu0, gpu1, tx, rx;
  TaskId a, move, b, extra;

  SmallGraph() {
    gpu0 = graph.add_resource("gpu0.compute");
    gpu1 = graph.add_resource("gpu1.compute");
    tx = graph.add_resource("gpu0.ib.tx");
    rx = graph.add_resource("gpu1.ib.rx");
    a = graph.add_compute(gpu0, 1.0, "fwd0");
    move = graph.add_transfer(tx, rx, Bytes{1000}, 1e3, 0.5, "act");
    graph.add_dep(move, a);
    b = graph.add_compute(gpu1, 2.0, "fwd1");
    graph.add_dep(b, move);
    extra = graph.add_compute(gpu1, 0.5, "other1");
  }
};

// ---- analyze_flow ----

TEST(FlowAnalysis, ChainAndResourceBounds) {
  SmallGraph fx;
  const FlowAnalysis flow = analyze_flow(fx.graph);
  ASSERT_TRUE(flow.valid);
  // Chain: fwd0 (1.0) + transfer (1000/1e3 + 0.5) + fwd1 (2.0).
  EXPECT_DOUBLE_EQ(flow.chain_bound_s, 1.0 + 1.5 + 2.0);
  ASSERT_EQ(flow.chain.size(), 3u);
  EXPECT_EQ(flow.chain.front(), fx.a);
  EXPECT_EQ(flow.chain.back(), fx.b);
  // Busiest resource: gpu1 with 2.0 + 0.5 aggregate compute.
  EXPECT_EQ(flow.busiest_resource, fx.gpu1);
  EXPECT_DOUBLE_EQ(flow.resource_bound_s, 2.5);
  EXPECT_DOUBLE_EQ(flow.makespan_bound_s, flow.chain_bound_s);
  // Watermark: 1000 bytes live at the gpu1.ib endpoint.
  ASSERT_EQ(flow.watermarks.size(), 1u);
  EXPECT_EQ(flow.watermarks[0].endpoint, "gpu1.ib");
  EXPECT_EQ(flow.watermarks[0].peak_bytes, Bytes{1000});
}

TEST(FlowAnalysis, InvalidOnCyclicGraph) {
  TaskGraph graph;
  const ResourceId r = graph.add_resource("gpu0.compute");
  const TaskId x = graph.add_compute(r, 1.0);
  const TaskId y = graph.add_compute(r, 1.0);
  graph.add_dep(x, y);
  graph.add_dep(y, x);
  EXPECT_FALSE(analyze_flow(graph).valid);
}

// ---- HV401 flow-chain-bound ----

TEST(FlowLints, HV401CleanOnExecutedGraph) {
  SmallGraph fx;
  const SimResult result = TaskGraphExecutor{}.run(fx.graph);
  const LintReport report = lint_flow(fx.graph, result);
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(checked(report, kRuleFlowChainBound));
  EXPECT_TRUE(checked(report, kRuleFlowResourceBound));
}

TEST(FlowLints, HV401ErrorWhenMakespanBeatsTheChain) {
  SmallGraph fx;
  const std::size_t n = fx.graph.task_count();
  // A fabricated result claiming everything finished instantly: the chain
  // bound (4.5 s) proves it impossible.
  const SimResult impossible(std::vector<TaskTiming>(n, {0.0, 0.0}),
                             std::vector<SimTime>(fx.graph.resource_count(), 0),
                             /*makespan=*/0.0);
  const LintReport report = lint_flow(fx.graph, impossible);
  EXPECT_TRUE(report.fired(kRuleFlowChainBound));
  EXPECT_FALSE(report.ok());
}

// ---- HV402 flow-resource-bound ----

TEST(FlowLints, HV402ErrorWhenBusyAccountingDisagrees) {
  SmallGraph fx;
  const SimResult result = TaskGraphExecutor{}.run(fx.graph);
  // Re-use the true timings but claim every resource idled: the static
  // aggregate (e.g. gpu1's 2.5 s) disagrees with the accounted busy time.
  SimResult cooked(std::vector<TaskTiming>(result.timings()),
                   std::vector<SimTime>(fx.graph.resource_count(), 0.0),
                   result.makespan());
  const LintReport report = lint_flow(fx.graph, cooked);
  EXPECT_TRUE(report.fired(kRuleFlowResourceBound));
}

TEST(FlowLints, HV402SkippedWithoutExecutedTimings) {
  SmallGraph fx;
  const LintReport report = lint_flow(as_ref(fx.graph), nullptr);
  EXPECT_FALSE(checked(report, kRuleFlowChainBound));
  EXPECT_FALSE(checked(report, kRuleFlowResourceBound));
  EXPECT_TRUE(report.ok());
}

// ---- HV403 flow-memory-watermark ----

TEST(FlowLints, HV403WarningOverBufferBudget) {
  SmallGraph fx;
  FlowLintOptions options;
  options.buffer_budget = 500;  // the fixture moves 1000 bytes
  const LintReport report = lint_flow(as_ref(fx.graph), nullptr, options);
  EXPECT_TRUE(checked(report, kRuleFlowMemoryWatermark));
  EXPECT_TRUE(report.fired(kRuleFlowMemoryWatermark));
  EXPECT_TRUE(report.ok());  // warning, not error
}

TEST(FlowLints, HV403CleanUnderBudgetAndDisabledAtZero) {
  SmallGraph fx;
  FlowLintOptions options;
  options.buffer_budget = 1 << 20;
  EXPECT_FALSE(
      lint_flow(as_ref(fx.graph), nullptr, options).fired(kRuleFlowMemoryWatermark));
  options.buffer_budget = 0;
  EXPECT_FALSE(checked(lint_flow(as_ref(fx.graph), nullptr, options),
                       kRuleFlowMemoryWatermark));
}

// ---- HV404 channel-cut-balance ----

/// Closed two-endpoint channel crossing a cluster cut; `back_bytes` tunes
/// the balance.
TaskGraph cut_graph(Bytes back_bytes) {
  TaskGraph graph;
  const ResourceId tx0 = graph.add_resource("gpu0.eth.tx");
  const ResourceId rx0 = graph.add_resource("gpu0.eth.rx");
  const ResourceId tx1 = graph.add_resource("gpu1.eth.tx");
  const ResourceId rx1 = graph.add_resource("gpu1.eth.rx");
  const sim::ChannelId ch = graph.channel("dp0");
  graph.add_transfer(tx0, rx1, Bytes{1000}, 1e9, 0, "fwd", sim::kUntagged, ch);
  graph.add_transfer(tx1, rx0, back_bytes, 1e9, 0, "bwd", sim::kUntagged, ch);
  return graph;
}

FlowLintOptions cut_options() {
  FlowLintOptions options;
  options.resource_cluster = {0, 0, 1, 1};  // gpu0 ports / gpu1 ports
  return options;
}

TEST(FlowLints, HV404CleanOnBalancedCut) {
  const TaskGraph graph = cut_graph(Bytes{1000});
  const LintReport report = lint_flow(as_ref(graph), nullptr, cut_options());
  EXPECT_TRUE(checked(report, kRuleChannelCutBalance));
  EXPECT_FALSE(report.fired(kRuleChannelCutBalance));
}

TEST(FlowLints, HV404WarningOnUnbalancedCut) {
  const TaskGraph graph = cut_graph(Bytes{250});
  const LintReport report = lint_flow(as_ref(graph), nullptr, cut_options());
  EXPECT_TRUE(report.fired(kRuleChannelCutBalance));
  EXPECT_TRUE(report.ok());  // warning severity
}

TEST(FlowLints, HV404SkippedWithoutClusterMap) {
  const TaskGraph graph = cut_graph(Bytes{250});
  const LintReport report = lint_flow(as_ref(graph), nullptr);
  EXPECT_FALSE(checked(report, kRuleChannelCutBalance));
}

// ---- HV405 schedule-race ----

/// Deliberately tie-order-dependent: two equal-ready computes of *different*
/// durations contend for one resource, and a third task depends on the
/// first. Whichever runs first changes the dependent's start, so permuting
/// the tie under kPermuteAll must move timings.
TaskGraph racy_graph() {
  TaskGraph graph;
  const ResourceId gpu = graph.add_resource("gpu0.compute");
  const TaskId first = graph.add_compute(gpu, 1.0, "short");
  graph.add_compute(gpu, 2.0, "long");
  const TaskId dep = graph.add_compute(gpu, 0.5, "after-short");
  graph.add_dep(dep, first);
  return graph;
}

TEST(DeterminismCheck, CleanUnderDisjointPermutations) {
  SmallGraph fx;
  DeterminismCheckOptions options;  // kPermuteDisjoint default
  const LintReport report = check_determinism(fx.graph, options);
  EXPECT_TRUE(checked(report, kRuleScheduleRace));
  EXPECT_TRUE(report.clean());
}

TEST(DeterminismCheck, RacyGraphStaysCleanUnderDisjoint) {
  // The contending tie keeps id order under the disjoint policy, so even a
  // schedule-order-sensitive graph must not diverge.
  const LintReport report = check_determinism(racy_graph(), {});
  EXPECT_TRUE(report.clean());
}

TEST(DeterminismCheck, HV405FlagsTieOrderDependentSchedule) {
  DeterminismCheckOptions options;
  options.tie_break = sim::TieBreak::kPermuteAll;
  options.permutations = 8;  // enough seeds that at least one swaps the tie
  const LintReport report = check_determinism(racy_graph(), options);
  ASSERT_TRUE(report.fired(kRuleScheduleRace));
  // The diagnostic names the first diverging task by id and label.
  bool named = false;
  for (const Diagnostic& diag : report.diagnostics()) {
    if (diag.rule == kRuleScheduleRace &&
        diag.subject.find("task") != std::string::npos) {
      named = true;
    }
  }
  EXPECT_TRUE(named);
  EXPECT_FALSE(report.ok());
}

TEST(DeterminismCheck, CapsDiagnostics) {
  DeterminismCheckOptions options;
  options.tie_break = sim::TieBreak::kPermuteAll;
  options.permutations = 32;
  options.max_diagnostics_per_rule = 2;
  const LintReport report = check_determinism(racy_graph(), options);
  std::size_t count = 0;
  for (const Diagnostic& diag : report.diagnostics()) {
    if (diag.rule == kRuleScheduleRace) ++count;
  }
  EXPECT_LE(count, 2u);
}

}  // namespace
}  // namespace holmes::verify
