#include "verify/plan_lints.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "model/transformer.h"
#include "net/nic.h"
#include "net/topology.h"
#include "parallel/groups.h"
#include "pipeline/partition.h"
#include "verify/rules.h"

namespace holmes::verify {
namespace {

using net::NicType;
using net::Topology;
using parallel::ParallelConfig;
using parallel::ParallelGroups;

/// Identity permutation with ranks `a` and `b` swapped.
std::vector<int> swapped_order(int world, int a, int b) {
  std::vector<int> order(static_cast<std::size_t>(world));
  std::iota(order.begin(), order.end(), 0);
  std::swap(order[static_cast<std::size_t>(a)],
            order[static_cast<std::size_t>(b)]);
  return order;
}

bool checked(const LintReport& report, const char* rule) {
  const auto& rules = report.rules_checked();
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

model::TransformerConfig tiny_model() {
  model::TransformerConfig config;
  config.layers = 8;
  config.hidden = 512;
  config.heads = 8;
  return config;
}

// ---- HV101 dp-group-transport ----

TEST(PlanLints, HV101CleanOnClusterAlignedHybridLayout) {
  const Topology topo = Topology::hybrid_two_clusters(2);
  const ParallelGroups groups(ParallelConfig{1, 2, 16});  // stage == cluster
  PlanView view;
  view.groups = &groups;
  view.per_group_transport = true;
  const LintReport report = lint_plan(topo, view);
  EXPECT_FALSE(report.fired(kRuleDpGroupTransport));
  EXPECT_FALSE(report.fired(kRuleDpClusterCrossing));
  EXPECT_TRUE(checked(report, kRuleDpGroupTransport));
  EXPECT_TRUE(report.ok());
}

TEST(PlanLints, HV101ErrorOnNicMixedDpGroupUnderPerGroupTransport) {
  const Topology topo = Topology::hybrid_two_clusters(2);
  // Swapping one IB rank with one RoCE rank poisons two DP groups.
  const ParallelGroups groups(ParallelConfig{1, 2, 16},
                              swapped_order(32, 0, 16));
  PlanView view;
  view.groups = &groups;
  view.per_group_transport = true;
  const LintReport report = lint_plan(topo, view);
  EXPECT_TRUE(report.fired(kRuleDpGroupTransport));
  EXPECT_FALSE(report.ok());
  bool named = false;
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.rule == kRuleDpGroupTransport) {
      EXPECT_EQ(d.severity, Severity::kError);
      if (d.subject.rfind("dp", 0) == 0) named = true;
    }
  }
  EXPECT_TRUE(named) << "diagnostic must name the offending dp group";
}

TEST(PlanLints, HV101DowngradesToWarningUnderDeliberateFallback) {
  const Topology topo = Topology::hybrid_two_clusters(2);
  const ParallelGroups groups(ParallelConfig{1, 2, 16},
                              swapped_order(32, 0, 16));
  PlanView view;
  view.groups = &groups;
  view.per_group_transport = false;
  view.ethernet_fallback = true;
  const LintReport report = lint_plan(topo, view);
  EXPECT_TRUE(report.fired(kRuleDpGroupTransport));
  EXPECT_TRUE(report.ok());  // warning, not error: the cost is deliberate
}

TEST(PlanLints, HV101IgnoresEthernetOnlyGroups) {
  const Topology topo = Topology::homogeneous(2, NicType::kEthernet);
  const ParallelGroups groups(ParallelConfig{1, 2, 8});
  PlanView view;
  view.groups = &groups;
  view.per_group_transport = true;
  const LintReport report = lint_plan(topo, view);
  // Ethernet is the best these members have; nothing was lost.
  EXPECT_FALSE(report.fired(kRuleDpGroupTransport));
}

// ---- HV102 tp-group-locality ----

TEST(PlanLints, HV102ErrorWhenTensorGroupSpansNodes) {
  const Topology topo = Topology::homogeneous(2, NicType::kInfiniBand);
  const ParallelGroups groups(ParallelConfig{8, 2, 1},
                              swapped_order(16, 0, 8));
  PlanView view;
  view.groups = &groups;
  const LintReport report = lint_plan(topo, view);
  EXPECT_TRUE(report.fired(kRuleTpGroupLocality));
  EXPECT_FALSE(report.ok());
}

TEST(PlanLints, HV102CleanOnNodeLocalTensorGroups) {
  const Topology topo = Topology::homogeneous(2, NicType::kInfiniBand);
  const ParallelGroups groups(ParallelConfig{8, 2, 1});
  PlanView view;
  view.groups = &groups;
  const LintReport report = lint_plan(topo, view);
  EXPECT_FALSE(report.fired(kRuleTpGroupLocality));
  EXPECT_TRUE(report.ok());
}

// ---- HV103 dp-cluster-crossing ----

TEST(PlanLints, HV103WarnsWhenDpGroupCrossesClusters) {
  const Topology topo = Topology::hybrid_two_clusters(1);
  const ParallelGroups groups(ParallelConfig{1, 1, 16});  // one giant DP group
  PlanView view;
  view.groups = &groups;
  view.ethernet_fallback = true;  // keep HV101 at warning severity
  const LintReport report = lint_plan(topo, view);
  EXPECT_TRUE(report.fired(kRuleDpClusterCrossing));
  EXPECT_EQ(report.count(Severity::kError), 0u);
}

// ---- HV107 degrees-consistent ----

TEST(PlanLints, HV107ErrorOnWorldSizeMismatch) {
  const Topology topo = Topology::homogeneous(2, NicType::kInfiniBand);  // 16
  const ParallelGroups groups(ParallelConfig{1, 1, 8});                 // 8
  PlanView view;
  view.groups = &groups;
  const LintReport report = lint_plan(topo, view);
  EXPECT_TRUE(report.fired(kRuleDegreesConsistent));
  EXPECT_FALSE(report.ok());
}

TEST(PlanLints, HV107ErrorWhenTensorDegreeDoesNotDivideNode) {
  const Topology topo = Topology::homogeneous(2, NicType::kInfiniBand, 6);
  const ParallelGroups groups(ParallelConfig{4, 1, 3});  // t=4 vs 6 GPUs/node
  PlanView view;
  view.groups = &groups;
  const LintReport report = lint_plan(topo, view);
  EXPECT_TRUE(report.fired(kRuleDegreesConsistent));
}

TEST(PlanLints, HV107ErrorOnZeroMicroBatches) {
  const Topology topo = Topology::homogeneous(1, NicType::kInfiniBand);
  const ParallelGroups groups(ParallelConfig{1, 2, 4});
  PlanView view;
  view.groups = &groups;
  view.micro_batches = 0;
  const LintReport report = lint_plan(topo, view);
  EXPECT_TRUE(report.fired(kRuleDegreesConsistent));
}

TEST(PlanLints, HV107CleanOnConsistentDegrees) {
  const Topology topo = Topology::homogeneous(1, NicType::kInfiniBand);
  const ParallelGroups groups(ParallelConfig{1, 2, 4});
  PlanView view;
  view.groups = &groups;
  view.micro_batches = 8;
  const LintReport report = lint_plan(topo, view);
  EXPECT_FALSE(report.fired(kRuleDegreesConsistent));
  EXPECT_TRUE(report.ok());
}

// ---- HV104 partition-structure ----

struct PartitionFixture {
  Topology topo = Topology::homogeneous(1, NicType::kInfiniBand);
  ParallelGroups groups{ParallelConfig{1, 2, 4}};
  model::TransformerConfig model = tiny_model();
  pipeline::StagePartition partition;
  std::vector<NicType> nics{NicType::kInfiniBand, NicType::kInfiniBand};

  PlanView view() {
    PlanView v;
    v.groups = &groups;
    v.partition = &partition;
    v.stage_nics = &nics;
    v.model = &model;
    return v;
  }
};

TEST(PlanLints, HV104CleanOnBalancedPartition) {
  PartitionFixture fx;
  fx.partition = {4, 4};
  const LintReport report = lint_plan(fx.topo, fx.view());
  EXPECT_FALSE(report.fired(kRulePartitionStructure));
  EXPECT_TRUE(checked(report, kRulePartitionStructure));
}

TEST(PlanLints, HV104ErrorWhenLayerSumDisagreesWithModel) {
  PartitionFixture fx;
  fx.partition = {3, 4};  // 7 layers for an 8-layer model
  const LintReport report = lint_plan(fx.topo, fx.view());
  EXPECT_TRUE(report.fired(kRulePartitionStructure));
  EXPECT_FALSE(report.ok());
}

TEST(PlanLints, HV104ErrorWhenSizeIsNotMultipleOfPipeline) {
  PartitionFixture fx;
  fx.partition = {4, 2, 2};  // 3 virtual stages on p=2
  const LintReport report = lint_plan(fx.topo, fx.view());
  EXPECT_TRUE(report.fired(kRulePartitionStructure));
}

TEST(PlanLints, HV104ErrorOnEmptyStage) {
  PartitionFixture fx;
  fx.partition = {0, 8};
  const LintReport report = lint_plan(fx.topo, fx.view());
  EXPECT_TRUE(report.fired(kRulePartitionStructure));
}

// ---- HV105 partition-speed-order ----

TEST(PlanLints, HV105WarnsWhenFasterNicStageGetsFewerLayers) {
  PartitionFixture fx;
  fx.partition = {3, 5};
  fx.nics = {NicType::kInfiniBand, NicType::kEthernet};  // Eq. (2) inverted
  const LintReport report = lint_plan(fx.topo, fx.view());
  EXPECT_TRUE(report.fired(kRulePartitionSpeedOrder));
  EXPECT_TRUE(report.ok());  // warning only
}

TEST(PlanLints, HV105CleanWhenLayersFollowSpeeds) {
  PartitionFixture fx;
  fx.partition = {5, 3};
  fx.nics = {NicType::kInfiniBand, NicType::kEthernet};
  const LintReport report = lint_plan(fx.topo, fx.view());
  EXPECT_FALSE(report.fired(kRulePartitionSpeedOrder));
  EXPECT_TRUE(checked(report, kRulePartitionSpeedOrder));
}

TEST(PlanLints, HV105SkippedUnderGlobalFallback) {
  PartitionFixture fx;
  fx.partition = {3, 5};
  fx.nics = {NicType::kInfiniBand, NicType::kEthernet};
  PlanView view = fx.view();
  view.ethernet_fallback = true;  // all stages ride Ethernet; order is moot
  const LintReport report = lint_plan(fx.topo, view);
  EXPECT_FALSE(checked(report, kRulePartitionSpeedOrder));
}

// ---- HV106 memory-fit ----

TEST(PlanLints, HV106ErrorWhenEstimateExceedsBudget) {
  PartitionFixture fx;
  fx.partition = {4, 4};
  PlanView view = fx.view();
  view.micro_batch_size = 1;
  view.device_memory = 1024;  // nothing fits in a kilobyte
  const LintReport report = lint_plan(fx.topo, view);
  EXPECT_TRUE(report.fired(kRuleMemoryFit));
  EXPECT_FALSE(report.ok());
}

TEST(PlanLints, HV106CleanWhenTinyModelFitsTheDefaultBudget) {
  PartitionFixture fx;
  fx.partition = {4, 4};
  PlanView view = fx.view();
  view.micro_batch_size = 1;
  const LintReport report = lint_plan(fx.topo, view);
  EXPECT_FALSE(report.fired(kRuleMemoryFit));
  EXPECT_TRUE(checked(report, kRuleMemoryFit));
}

TEST(PlanLints, HV106SkippedWithoutMicroBatchSize) {
  PartitionFixture fx;
  fx.partition = {4, 4};
  PlanView view = fx.view();
  view.micro_batch_size = 0;
  const LintReport report = lint_plan(fx.topo, view);
  EXPECT_FALSE(checked(report, kRuleMemoryFit));
}

// ---- HV108 needless-fallback ----

TEST(PlanLints, HV108WarnsOnFallbackInHomogeneousRdmaCluster) {
  const Topology topo = Topology::homogeneous(2, NicType::kInfiniBand);
  const ParallelGroups groups(ParallelConfig{1, 2, 8});
  PlanView view;
  view.groups = &groups;
  view.ethernet_fallback = true;
  const LintReport report = lint_plan(topo, view);
  EXPECT_TRUE(report.fired(kRuleNeedlessFallback));
  EXPECT_TRUE(report.ok());
}

TEST(PlanLints, HV108SilentWhenFallbackIsJustified) {
  const Topology hybrid = Topology::hybrid_two_clusters(2);
  const ParallelGroups on_hybrid(ParallelConfig{1, 2, 16});
  PlanView view;
  view.groups = &on_hybrid;
  view.ethernet_fallback = true;
  EXPECT_FALSE(lint_plan(hybrid, view).fired(kRuleNeedlessFallback));

  const Topology eth = Topology::homogeneous(2, NicType::kEthernet);
  const ParallelGroups on_eth(ParallelConfig{1, 2, 8});
  PlanView eth_view;
  eth_view.groups = &on_eth;
  eth_view.ethernet_fallback = true;
  EXPECT_FALSE(lint_plan(eth, eth_view).fired(kRuleNeedlessFallback));
}

}  // namespace
}  // namespace holmes::verify
