#include "verify/graph_lints.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/executor.h"
#include "sim/task_graph.h"
#include "verify/rules.h"

namespace holmes::verify {
namespace {

using sim::ResourceId;
using sim::SimResult;
using sim::Task;
using sim::TaskGraph;
using sim::TaskGraphExecutor;
using sim::TaskId;
using sim::TaskKind;
using sim::TaskTiming;

bool checked(const LintReport& report, const char* rule) {
  const auto& rules = report.rules_checked();
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

/// Raw-task fixtures: vectors the TaskGraph API would refuse to build.
Task compute(ResourceId resource, SimTime duration,
             std::vector<TaskId> deps = {}) {
  Task task;
  task.kind = TaskKind::kCompute;
  task.resource = resource;
  task.duration = duration;
  task.deps = std::move(deps);
  return task;
}

Task transfer(ResourceId src, ResourceId dst, Bytes bytes, double bandwidth,
              SimTime latency, sim::ChannelId channel = sim::kInvalidChannel,
              std::vector<TaskId> deps = {}) {
  Task task;
  task.kind = TaskKind::kTransfer;
  task.src_port = src;
  task.dst_port = dst;
  task.bytes = bytes;
  task.bandwidth = bandwidth;
  task.latency = latency;
  task.channel = channel;
  task.deps = std::move(deps);
  return task;
}

TaskSetRef raw(const std::vector<Task>& tasks, std::size_t resources,
               std::size_t channels = 0) {
  return TaskSetRef{&tasks, resources, channels, nullptr};
}

/// A small well-formed graph: two devices computing, one transfer between
/// them over a channel, everything properly chained.
struct GoodGraph {
  TaskGraph graph;
  ResourceId gpu0, gpu1, tx, rx;
  GraphLintOptions options;

  GoodGraph() {
    gpu0 = graph.add_resource("gpu0.compute");
    gpu1 = graph.add_resource("gpu1.compute");
    tx = graph.add_resource("gpu0.ib.tx");
    rx = graph.add_resource("gpu1.ib.rx");
    const TaskId a = graph.add_compute(gpu0, 1.0, "fwd0");
    const TaskId move = graph.add_transfer(tx, rx, 1000, 1e9, 1e-6, "act",
                                           sim::kUntagged, graph.channel("pp"));
    graph.add_dep(move, a);
    const TaskId b = graph.add_compute(gpu1, 2.0, "fwd1");
    graph.add_dep(b, move);
    options.serial_programs = {gpu0, gpu1};
  }
};

// ---- HV201 graph-acyclic / HV202 deps-valid ----

TEST(GraphLints, CleanOnWellFormedGraph) {
  GoodGraph fx;
  const LintReport report = lint_graph(fx.graph, fx.options);
  EXPECT_TRUE(report.clean());
  for (const char* rule : {kRuleGraphAcyclic, kRuleDepsValid, kRuleTaskFields,
                           kRuleSerialOrder, kRuleChannelConservation}) {
    EXPECT_TRUE(checked(report, rule)) << rule;
  }
}

TEST(GraphLints, HV201ErrorOnDependencyCycle) {
  const std::vector<Task> tasks = {compute(0, 1.0, {1}), compute(0, 1.0, {0})};
  const LintReport report = lint_graph(raw(tasks, 1));
  EXPECT_TRUE(report.fired(kRuleGraphAcyclic));
  EXPECT_FALSE(report.ok());
}

TEST(GraphLints, HV202ErrorOnDanglingDependency) {
  const std::vector<Task> tasks = {compute(0, 1.0, {7})};
  const LintReport report = lint_graph(raw(tasks, 1));
  EXPECT_TRUE(report.fired(kRuleDepsValid));
  // Broken ids gate the reachability passes — they must not run (or crash).
  EXPECT_FALSE(checked(report, kRuleGraphAcyclic));
}

TEST(GraphLints, HV202ErrorOnSelfDependency) {
  const std::vector<Task> tasks = {compute(0, 1.0, {0})};
  const LintReport report = lint_graph(raw(tasks, 1));
  EXPECT_TRUE(report.fired(kRuleDepsValid));
}

// ---- HV203 task-fields ----

TEST(GraphLints, HV203ErrorOnUnknownResourceAndNegativeDuration) {
  const std::vector<Task> tasks = {compute(5, 1.0), compute(0, -2.0)};
  const LintReport report = lint_graph(raw(tasks, 1));
  EXPECT_TRUE(report.fired(kRuleTaskFields));
  EXPECT_EQ(report.count(Severity::kError), 2u);
}

TEST(GraphLints, HV203ErrorOnBrokenTransferFields) {
  const std::vector<Task> tasks = {
      transfer(0, 0, 100, 1e9, 0),    // TX == RX port
      transfer(0, 1, 100, 0, 0),      // bytes but no bandwidth
      transfer(0, 1, -5, 1e9, 0),     // negative bytes
      transfer(0, 1, 100, 1e9, -1),   // negative latency
      transfer(0, 1, 100, 1e9, 0, 3)  // unknown channel (only 1 registered)
  };
  const LintReport report = lint_graph(raw(tasks, 2, 1));
  EXPECT_TRUE(report.fired(kRuleTaskFields));
  EXPECT_GE(report.count(Severity::kError), 5u);
}

TEST(GraphLints, HV203CapsDiagnosticsPerRule) {
  std::vector<Task> tasks;
  for (int i = 0; i < 100; ++i) tasks.push_back(compute(9, 1.0));
  GraphLintOptions options;
  options.max_diagnostics_per_rule = 3;
  const LintReport report = lint_graph(raw(tasks, 1), options);
  EXPECT_EQ(report.count(Severity::kError), 3u);
}

// ---- HV204 serial-order ----

TEST(GraphLints, HV204ErrorWhenProgramOrderConflictsWithDeps) {
  // Task 0 is issued first on the device but depends on task 1 — an
  // in-order issue engine would deadlock even though deps alone are acyclic.
  const std::vector<Task> tasks = {compute(0, 1.0, {1}), compute(0, 1.0)};
  GraphLintOptions options;
  options.serial_programs = {0};
  const LintReport report = lint_graph(raw(tasks, 1), options);
  EXPECT_TRUE(report.fired(kRuleSerialOrder));
  EXPECT_FALSE(lint_graph(raw(tasks, 1)).fired(kRuleGraphAcyclic));
}

TEST(GraphLints, HV204SkippedWithoutDeclaredPrograms) {
  const std::vector<Task> tasks = {compute(0, 1.0, {1}), compute(0, 1.0)};
  const LintReport report = lint_graph(raw(tasks, 1));
  EXPECT_FALSE(checked(report, kRuleSerialOrder));
}

// ---- HV205 channel-conservation ----

TEST(GraphLints, HV205WarnsOnImbalancedClosedChannel) {
  const std::vector<Task> tasks = {transfer(0, 1, 100, 1e9, 0, 0),
                                   transfer(1, 0, 40, 1e9, 0, 0)};
  const LintReport report = lint_graph(raw(tasks, 2, 1));
  EXPECT_TRUE(report.fired(kRuleChannelConservation));
  EXPECT_TRUE(report.ok());  // warning severity
}

TEST(GraphLints, HV205CleanOnBalancedChannelAndSilentOnOpenOnes) {
  const std::vector<Task> balanced = {transfer(0, 1, 100, 1e9, 0, 0),
                                      transfer(1, 0, 100, 1e9, 0, 0)};
  EXPECT_FALSE(
      lint_graph(raw(balanced, 2, 1)).fired(kRuleChannelConservation));
  // One-directional (open) channels carry no conservation claim.
  const std::vector<Task> open = {transfer(0, 1, 100, 1e9, 0, 0)};
  EXPECT_FALSE(lint_graph(raw(open, 2, 1)).fired(kRuleChannelConservation));
}

// ---- HV301..HV303 execution lints ----

TEST(ExecutionLints, CleanOnRealExecutorRun) {
  GoodGraph fx;
  const SimResult result = TaskGraphExecutor{}.run(fx.graph);
  const LintReport report = lint_execution(fx.graph, result, fx.options);
  EXPECT_TRUE(report.clean());
  for (const char* rule :
       {kRuleTimingMonotone, kRuleResourceExclusive, kRuleResultComplete}) {
    EXPECT_TRUE(checked(report, rule)) << rule;
  }
}

TEST(ExecutionLints, HV301ErrorWhenSpanDisagreesWithDuration) {
  const std::vector<Task> tasks = {compute(0, 1.0)};
  const SimResult result({{0.0, 0.5}}, {0.5}, 0.5);
  const LintReport report = lint_execution(raw(tasks, 1), result);
  EXPECT_TRUE(report.fired(kRuleTimingMonotone));
}

TEST(ExecutionLints, HV301ErrorWhenTaskStartsBeforeDependencyFinished) {
  const std::vector<Task> tasks = {compute(0, 1.0), compute(1, 1.0, {0})};
  const SimResult result({{0.0, 1.0}, {0.5, 1.5}}, {1.0, 1.0}, 1.5);
  const LintReport report = lint_execution(raw(tasks, 2), result);
  EXPECT_TRUE(report.fired(kRuleTimingMonotone));
}

TEST(ExecutionLints, HV301ErrorOnNegativeStart) {
  const std::vector<Task> tasks = {compute(0, 1.0)};
  const SimResult result({{-1.0, 0.0}}, {1.0}, 0.0);
  EXPECT_TRUE(
      lint_execution(raw(tasks, 1), result).fired(kRuleTimingMonotone));
}

TEST(ExecutionLints, HV302ErrorOnOverlappingSerialResource) {
  const std::vector<Task> tasks = {compute(0, 1.0), compute(0, 1.0)};
  const SimResult result({{0.0, 1.0}, {0.5, 1.5}}, {2.0}, 1.5);
  const LintReport report = lint_execution(raw(tasks, 1), result);
  EXPECT_TRUE(report.fired(kRuleResourceExclusive));
}

TEST(ExecutionLints, HV302PortOccupancyExcludesPropagationLatency) {
  // Two back-to-back transfers on the same ports: the second starts when
  // serialization of the first ends, while the first's *finish* (including
  // latency) is later. That is legal — ports are held for serialization
  // only.
  const std::vector<Task> tasks = {transfer(0, 1, 1000, 1e3, 0.5),
                                   transfer(0, 1, 1000, 1e3, 0.5)};
  const SimResult result({{0.0, 1.5}, {1.0, 2.5}}, {2.0, 2.0}, 2.5);
  const LintReport report = lint_execution(raw(tasks, 2), result);
  EXPECT_FALSE(report.fired(kRuleResourceExclusive));
  EXPECT_FALSE(report.fired(kRuleTimingMonotone));
}

TEST(ExecutionLints, HV303ErrorOnMissingTimings) {
  const std::vector<Task> tasks = {compute(0, 1.0), compute(0, 1.0)};
  const SimResult result({{0.0, 1.0}}, {1.0}, 1.0);
  const LintReport report = lint_execution(raw(tasks, 1), result);
  EXPECT_TRUE(report.fired(kRuleResultComplete));
  // Per-task passes cannot run over a truncated result.
  EXPECT_FALSE(checked(report, kRuleTimingMonotone));
  EXPECT_FALSE(checked(report, kRuleResourceExclusive));
}

TEST(ExecutionLints, HV303ErrorOnMakespanMismatch) {
  const std::vector<Task> tasks = {compute(0, 1.0)};
  const SimResult result({{0.0, 1.0}}, {1.0}, 7.0);
  EXPECT_TRUE(
      lint_execution(raw(tasks, 1), result).fired(kRuleResultComplete));
}

}  // namespace
}  // namespace holmes::verify
