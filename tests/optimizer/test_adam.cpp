#include "optimizer/adam.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "comm/inprocess.h"
#include "util/error.h"
#include "util/rng.h"

namespace holmes::optimizer {
namespace {

TEST(Adam, SingleStepMatchesHandComputation) {
  // One parameter, g = 1: m = 0.1, v = 0.001, m_hat = 1, v_hat = 1,
  // update = lr * 1 / (1 + eps) ~= lr.
  std::vector<float> p = {1.0f}, g = {1.0f}, m = {0.0f}, v = {0.0f};
  AdamParams hp;
  hp.lr = 0.01;
  adam_step(p, g, m, v, 1, hp);
  EXPECT_NEAR(p[0], 1.0f - 0.01f, 1e-6);
  EXPECT_NEAR(m[0], 0.1f, 1e-7);
  EXPECT_NEAR(v[0], 0.001f, 1e-8);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize f(x) = (x - 3)^2; gradient = 2(x - 3).
  std::vector<float> p = {10.0f}, m = {0.0f}, v = {0.0f};
  AdamParams hp;
  hp.lr = 0.1;
  for (long step = 1; step <= 2000; ++step) {
    std::vector<float> g = {2.0f * (p[0] - 3.0f)};
    adam_step(p, g, m, v, step, hp);
  }
  EXPECT_NEAR(p[0], 3.0f, 1e-2);
}

TEST(Adam, WeightDecayPullsTowardZero) {
  std::vector<float> p = {5.0f}, m = {0.0f}, v = {0.0f};
  AdamParams hp;
  hp.lr = 0.1;
  hp.weight_decay = 0.1;
  for (long step = 1; step <= 500; ++step) {
    std::vector<float> g = {0.0f};  // no loss gradient, only decay
    adam_step(p, g, m, v, step, hp);
  }
  EXPECT_LT(std::fabs(p[0]), 0.5f);
}

TEST(Adam, ShardedUpdateMatchesWholeBufferUpdate) {
  // The correctness basis of the distributed optimizer: updating each
  // reduce-scatter shard independently must equal updating the whole
  // buffer (element-wise optimizer, paper §3.2 principle 1).
  const std::size_t n = 64;
  Rng rng(3);
  std::vector<float> params(n), grads(n);
  for (std::size_t i = 0; i < n; ++i) {
    params[i] = static_cast<float>(rng.uniform(-1, 1));
    grads[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  std::vector<float> whole_p = params, whole_m(n, 0.0f), whole_v(n, 0.0f);
  adam_step(whole_p, grads, whole_m, whole_v, 1);

  std::vector<float> shard_p = params, shard_m(n, 0.0f), shard_v(n, 0.0f);
  const std::size_t half = n / 2;
  adam_step(std::span(shard_p).subspan(0, half),
            std::span<const float>(grads).subspan(0, half),
            std::span(shard_m).subspan(0, half),
            std::span(shard_v).subspan(0, half), 1);
  adam_step(std::span(shard_p).subspan(half),
            std::span<const float>(grads).subspan(half),
            std::span(shard_m).subspan(half),
            std::span(shard_v).subspan(half), 1);
  EXPECT_EQ(whole_p, shard_p);
  EXPECT_EQ(whole_m, shard_m);
}

TEST(Adam, DistributedDataParallelStepIsConsistent) {
  // End-to-end mini ZeRO-1: 4 ranks hold per-rank gradients; reduce-scatter,
  // shard-update, all-gather must equal a serial all-reduce + full update.
  const int d = 4;
  const std::size_t n = 32;
  Rng rng(11);
  std::vector<float> params(n);
  for (auto& x : params) x = static_cast<float>(rng.uniform(-1, 1));
  std::vector<std::vector<float>> grads(d, std::vector<float>(n));
  std::vector<float> grad_sum(n, 0.0f);
  for (auto& g : grads) {
    for (std::size_t i = 0; i < n; ++i) {
      g[i] = static_cast<float>(rng.uniform_int(-4, 4));
      grad_sum[i] += g[i];
    }
  }

  // Reference: full all-reduced gradient, full update on one rank.
  std::vector<float> ref_p = params, ref_m(n, 0.0f), ref_v(n, 0.0f);
  adam_step(ref_p, grad_sum, ref_m, ref_v, 1);

  // Distributed: ring reduce-scatter the gradients across 4 "ranks".
  std::vector<std::vector<float>> rank_grads = grads;
  comm::BufferSet spans;
  for (auto& g : rank_grads) spans.emplace_back(g);
  comm::reduce_scatter_inplace(spans);

  // Each rank updates only its owned chunk of a shared parameter copy.
  std::vector<float> dist_p = params, dist_m(n, 0.0f), dist_v(n, 0.0f);
  const comm::ChunkLayout layout(static_cast<std::int64_t>(n), d);
  for (int r = 0; r < d; ++r) {
    const int chunk = comm::ring_owned_chunk(d, r);
    const auto off = static_cast<std::size_t>(layout.offset(chunk));
    const auto cnt = static_cast<std::size_t>(layout.count(chunk));
    adam_step(std::span(dist_p).subspan(off, cnt),
              std::span<const float>(rank_grads[static_cast<std::size_t>(r)])
                  .subspan(off, cnt),
              std::span(dist_m).subspan(off, cnt),
              std::span(dist_v).subspan(off, cnt), 1);
  }
  EXPECT_EQ(ref_p, dist_p);
}

TEST(Adam, RejectsBadArguments) {
  std::vector<float> p(4), g(3), m(4), v(4);
  EXPECT_THROW(adam_step(p, g, m, v, 1), InternalError);
  std::vector<float> g4(4);
  EXPECT_THROW(adam_step(p, g4, m, v, 0), InternalError);
}

TEST(Sgd, PlainStep) {
  std::vector<float> p = {2.0f}, g = {1.0f}, mom = {0.0f};
  SgdParams hp;
  hp.lr = 0.5;
  hp.momentum = 0.0;
  sgd_step(p, g, mom, hp);
  EXPECT_NEAR(p[0], 1.5f, 1e-7);
}

TEST(Sgd, MomentumAccumulates) {
  std::vector<float> p = {0.0f}, g = {1.0f}, mom = {0.0f};
  SgdParams hp;
  hp.lr = 1.0;
  hp.momentum = 0.9;
  sgd_step(p, g, mom, hp);  // mom=1, p=-1
  sgd_step(p, g, mom, hp);  // mom=1.9, p=-2.9
  EXPECT_NEAR(p[0], -2.9f, 1e-6);
}

TEST(Sgd, ConvergesOnQuadratic) {
  std::vector<float> p = {10.0f}, mom = {0.0f};
  SgdParams hp;
  hp.lr = 0.05;
  for (int i = 0; i < 500; ++i) {
    std::vector<float> g = {2.0f * (p[0] - 3.0f)};
    sgd_step(p, g, mom, hp);
  }
  EXPECT_NEAR(p[0], 3.0f, 1e-3);
}

}  // namespace
}  // namespace holmes::optimizer
