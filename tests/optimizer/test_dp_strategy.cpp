#include "optimizer/dp_strategy.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/error.h"

namespace holmes::optimizer {
namespace {

TEST(DpStrategy, FactoryProperties) {
  const DpSyncConfig ar = DpSyncConfig::all_reduce();
  EXPECT_EQ(ar.kind, DpSyncKind::kAllReduce);
  EXPECT_FALSE(ar.shards_optimizer());
  EXPECT_FALSE(ar.overlaps_backward());
  EXPECT_FALSE(ar.overlaps_next_forward());
  EXPECT_EQ(ar.effective_buckets(), 1);

  const DpSyncConfig dist = DpSyncConfig::distributed();
  EXPECT_TRUE(dist.shards_optimizer());
  EXPECT_FALSE(dist.overlaps_backward());

  const DpSyncConfig over = DpSyncConfig::overlapped(8);
  EXPECT_TRUE(over.shards_optimizer());
  EXPECT_TRUE(over.overlaps_backward());
  EXPECT_TRUE(over.overlaps_next_forward());
  EXPECT_EQ(over.effective_buckets(), 8);
}

TEST(DpStrategy, FullyShardedProperties) {
  const DpSyncConfig fsdp = DpSyncConfig::fully_sharded();
  EXPECT_TRUE(fsdp.shards_optimizer());
  EXPECT_TRUE(fsdp.shards_weights());
  EXPECT_EQ(fsdp.allgather_passes(), 2);
  EXPECT_FALSE(fsdp.overlaps_backward());
  // The others never shard weights.
  EXPECT_FALSE(DpSyncConfig::all_reduce().shards_weights());
  EXPECT_FALSE(DpSyncConfig::distributed().shards_weights());
  EXPECT_FALSE(DpSyncConfig::overlapped().shards_weights());
  EXPECT_EQ(DpSyncConfig::distributed().allgather_passes(), 1);
}

TEST(DpStrategy, Names) {
  EXPECT_EQ(to_string(DpSyncKind::kAllReduce), "allreduce");
  EXPECT_EQ(to_string(DpSyncKind::kDistributedOptimizer),
            "distributed-optimizer");
  EXPECT_EQ(to_string(DpSyncKind::kOverlappedDistributedOptimizer),
            "overlapped-distributed-optimizer");
}

TEST(BucketSizes, SumsToTotal) {
  for (Bytes total : {0LL, 1LL, 1000LL, 123456789LL}) {
    for (int buckets : {1, 2, 4, 7}) {
      const auto sizes = bucket_sizes(total, buckets);
      EXPECT_EQ(sizes.size(), static_cast<std::size_t>(buckets));
      EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), Bytes{0}), total);
    }
  }
}

TEST(BucketSizes, NearEqual) {
  const auto sizes = bucket_sizes(10, 4);
  EXPECT_EQ(sizes, (std::vector<Bytes>{3, 3, 2, 2}));
}

TEST(BucketSizes, MoreBucketsThanBytes) {
  const auto sizes = bucket_sizes(2, 5);
  EXPECT_EQ(sizes, (std::vector<Bytes>{1, 1, 0, 0, 0}));
}

TEST(BucketSizes, Validation) {
  EXPECT_THROW(bucket_sizes(100, 0), ConfigError);
  EXPECT_THROW(bucket_sizes(-1, 2), ConfigError);
}

}  // namespace
}  // namespace holmes::optimizer
