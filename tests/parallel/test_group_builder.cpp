#include "parallel/group_builder.h"

#include <gtest/gtest.h>

namespace holmes::parallel {
namespace {

using net::ClusterSpec;
using net::NicType;
using net::Topology;

TEST(MegatronBuilder, UsesLauncherOrder) {
  Topology topo = Topology::hybrid_two_clusters(2, 4);  // 16 GPUs
  const ParallelConfig config{1, 2, 8};
  const ParallelGroups g = MegatronGroupBuilder{}.build(topo, config);
  EXPECT_EQ(g.stage_ranks(0), (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  validate_groups(g, topo);
}

TEST(HolmesBuilder, MatchesMegatronWhenAlreadyAligned) {
  Topology topo = Topology::hybrid_two_clusters(2, 4);
  const ParallelConfig config{1, 2, 8};
  const ParallelGroups holmes = HolmesGroupBuilder{}.build(topo, config);
  const ParallelGroups megatron = MegatronGroupBuilder{}.build(topo, config);
  EXPECT_EQ(holmes.stage_ranks(0), megatron.stage_ranks(0));
  EXPECT_EQ(holmes.dp_groups(), megatron.dp_groups());
}

TEST(HolmesBuilder, RealignsMisalignedClusters) {
  // Clusters of 1 + 2 + 1 nodes (4 GPUs each), p=2, t=1, d=8: a stage needs
  // 2 nodes. Megatron's stage 0 = nodes {0,1} and stage 1 = nodes {2,3}
  // both straddle clusters, so *every* DP group falls back to Ethernet.
  // Holmes carves one whole stage out of the middle 2-node cluster.
  Topology topo({
      ClusterSpec{"ib-a", 1, 4, NicType::kInfiniBand},
      ClusterSpec{"roce", 2, 4, NicType::kRoCE},
      ClusterSpec{"ib-b", 1, 4, NicType::kInfiniBand},
  });
  const ParallelConfig config{1, 2, 8};

  const ParallelGroups megatron = MegatronGroupBuilder{}.build(topo, config);
  const ParallelGroups holmes = HolmesGroupBuilder{}.build(topo, config);
  validate_groups(megatron, topo);
  validate_groups(holmes, topo);

  const auto megatron_stages = stage_clusters(megatron, topo);
  const auto holmes_stages = stage_clusters(holmes, topo);
  // Megatron: both stages mixed.
  EXPECT_EQ(megatron_stages, (std::vector<int>{-1, -1}));
  // Holmes: one stage fully inside the RoCE cluster; the leftover single
  // nodes of the two IB clusters form the (unavoidably mixed) other stage.
  EXPECT_EQ(holmes_stages[0], 1);
  EXPECT_EQ(holmes_stages[1], -1);

  // The payoff: strictly more NIC-homogeneous DP groups.
  EXPECT_DOUBLE_EQ(rdma_dp_group_fraction(megatron, topo), 0.0);
  EXPECT_DOUBLE_EQ(rdma_dp_group_fraction(holmes, topo), 0.5);
}

TEST(HolmesBuilder, ThreeClusterPipelineAlignment) {
  // Table 4's setting: 3 clusters x 2 nodes (8 GPUs), p=3, t=1, d=16.
  Topology topo({
      ClusterSpec{"roce-a", 2, 8, NicType::kRoCE},
      ClusterSpec{"roce-b", 2, 8, NicType::kRoCE},
      ClusterSpec{"ib", 2, 8, NicType::kInfiniBand},
  });
  const ParallelConfig config{1, 3, 16};
  const ParallelGroups g = HolmesGroupBuilder{}.build(topo, config);
  validate_groups(g, topo);
  EXPECT_EQ(stage_clusters(g, topo), (std::vector<int>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(rdma_dp_group_fraction(g, topo), 1.0);
}

TEST(HolmesBuilder, SubNodeStagesKeepIdentity) {
  // t=1, d=4 on 8-GPU nodes: a stage is half a node; identity order is
  // already aligned everywhere.
  Topology topo = Topology::homogeneous(2, NicType::kInfiniBand, 8);
  const ParallelConfig config{1, 4, 4};
  const ParallelGroups holmes = HolmesGroupBuilder{}.build(topo, config);
  const ParallelGroups megatron = MegatronGroupBuilder{}.build(topo, config);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(holmes.stage_ranks(s), megatron.stage_ranks(s));
  }
}

TEST(HolmesBuilder, TensorGroupsStayWithinNodesAfterPermutation) {
  Topology topo({
      ClusterSpec{"small", 1, 8, NicType::kInfiniBand},
      ClusterSpec{"big", 3, 8, NicType::kRoCE},
  });
  const ParallelConfig config{8, 2, 2};  // stage = 16 devices = 2 nodes
  const ParallelGroups g = HolmesGroupBuilder{}.build(topo, config);
  validate_groups(g, topo);  // includes the TP-within-node rule
}

TEST(StageClusters, DetectsMixedStages) {
  Topology topo = Topology::hybrid_two_clusters(1, 4);  // 2 nodes total
  // p=1: the single stage spans both clusters.
  const ParallelGroups g(ParallelConfig{1, 1, 8});
  EXPECT_EQ(stage_clusters(g, topo), (std::vector<int>{-1}));
}

}  // namespace
}  // namespace holmes::parallel
