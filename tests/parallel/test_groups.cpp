#include "parallel/groups.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace holmes::parallel {
namespace {

using net::NicType;
using net::Topology;

// The worked example of paper Fig. 2: 16 GPUs, d=2, t=2, p=4.
const ParallelConfig kFig2{2, 4, 2};

TEST(Groups, Eq1TensorGroupsAreContiguousPairs) {
  ParallelGroups g(kFig2);
  ASSERT_EQ(g.tp_groups().size(), 8u);  // p*d
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(g.tp_groups()[static_cast<std::size_t>(i)],
              (std::vector<int>{2 * i, 2 * i + 1}));
  }
}

TEST(Groups, Eq3PipelineGroupsStrideByTd) {
  ParallelGroups g(kFig2);
  ASSERT_EQ(g.pp_groups().size(), 4u);  // t*d
  EXPECT_EQ(g.pp_groups()[0], (std::vector<int>{0, 4, 8, 12}));
  EXPECT_EQ(g.pp_groups()[1], (std::vector<int>{1, 5, 9, 13}));
  EXPECT_EQ(g.pp_groups()[2], (std::vector<int>{2, 6, 10, 14}));
  EXPECT_EQ(g.pp_groups()[3], (std::vector<int>{3, 7, 11, 15}));
}

TEST(Groups, Eq4DataGroupsWithinStageBlocks) {
  ParallelGroups g(kFig2);
  ASSERT_EQ(g.dp_groups().size(), 8u);  // p*t
  EXPECT_EQ(g.dp_groups()[0], (std::vector<int>{0, 2}));
  EXPECT_EQ(g.dp_groups()[1], (std::vector<int>{1, 3}));
  EXPECT_EQ(g.dp_groups()[2], (std::vector<int>{4, 6}));  // stage 1
  EXPECT_EQ(g.dp_groups()[7], (std::vector<int>{13, 15}));
}

TEST(Groups, CoordRoundTrip) {
  ParallelGroups g(kFig2);
  for (int rank = 0; rank < 16; ++rank) {
    const RankCoord c = g.coord_of(rank);
    EXPECT_EQ(g.rank_at(c), rank);
  }
  // Spot values: rank 7 = slot 7 -> tp=1, dp=1, stage=1.
  EXPECT_EQ(g.coord_of(7), (RankCoord{1, 1, 1}));
  EXPECT_EQ(g.coord_of(0), (RankCoord{0, 0, 0}));
  EXPECT_EQ(g.coord_of(15), (RankCoord{1, 1, 3}));
}

TEST(Groups, StageRanksAreBlocks) {
  ParallelGroups g(kFig2);
  EXPECT_EQ(g.stage_ranks(0), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(g.stage_ranks(3), (std::vector<int>{12, 13, 14, 15}));
  EXPECT_THROW(g.stage_ranks(4), InternalError);
}

TEST(Groups, GroupOfLookupsAgreeWithMatrices) {
  ParallelGroups g(kFig2);
  for (int rank = 0; rank < 16; ++rank) {
    const auto& dp = g.dp_group_of(rank);
    EXPECT_NE(std::find(dp.begin(), dp.end(), rank), dp.end());
    const auto& pp = g.pp_group_of(rank);
    EXPECT_NE(std::find(pp.begin(), pp.end(), rank), pp.end());
    const auto& tp = g.tp_group_of(rank);
    EXPECT_NE(std::find(tp.begin(), tp.end(), rank), tp.end());
  }
}

TEST(Groups, PermutationRemapsRanks) {
  // Reverse order: slot s -> rank 15-s.
  std::vector<int> order;
  for (int s = 0; s < 16; ++s) order.push_back(15 - s);
  ParallelGroups g(kFig2, order);
  EXPECT_EQ(g.tp_groups()[0], (std::vector<int>{15, 14}));
  EXPECT_EQ(g.coord_of(15), (RankCoord{0, 0, 0}));
}

TEST(Groups, BadPermutationsRejected) {
  EXPECT_THROW(ParallelGroups(kFig2, {0, 1, 2}), ConfigError);
  std::vector<int> dup(16, 0);
  EXPECT_THROW(ParallelGroups(kFig2, dup), ConfigError);
  std::vector<int> oob;
  for (int s = 0; s < 16; ++s) oob.push_back(s + 1);
  EXPECT_THROW(ParallelGroups(kFig2, oob), ConfigError);
}

TEST(Groups, ValidateAcceptsWellFormed) {
  // Fig. 2's topology: 2 clusters x 2 nodes x 4 GPUs.
  Topology topo({
      net::ClusterSpec{"c1", 2, 4, NicType::kInfiniBand},
      net::ClusterSpec{"c2", 2, 4, NicType::kRoCE},
  });
  ParallelGroups g(kFig2);
  EXPECT_NO_THROW(validate_groups(g, topo));
}

TEST(Groups, ValidateRejectsTensorGroupsAcrossNodes) {
  // t=4 with only 2 GPUs per node: TP groups would span nodes.
  Topology topo = Topology::homogeneous(8, NicType::kInfiniBand, 2);
  ParallelGroups g(ParallelConfig{4, 2, 2});
  EXPECT_THROW(validate_groups(g, topo), ConfigError);
}

TEST(Groups, ValidateRejectsWorldMismatch) {
  Topology topo = Topology::homogeneous(1, NicType::kInfiniBand, 8);
  ParallelGroups g(kFig2);  // world 16 != 8
  EXPECT_THROW(validate_groups(g, topo), ConfigError);
}

TEST(Groups, RdmaDpFractionHybridDefaultOrder) {
  // 2 clusters x 2 nodes x 4 GPUs, t=1, p=2, d=8: stage blocks have 8
  // devices = 2 nodes = exactly one cluster -> all DP groups homogeneous.
  Topology topo({
      net::ClusterSpec{"c1", 2, 4, NicType::kInfiniBand},
      net::ClusterSpec{"c2", 2, 4, NicType::kRoCE},
  });
  ParallelGroups aligned(ParallelConfig{1, 2, 8});
  EXPECT_DOUBLE_EQ(rdma_dp_group_fraction(aligned, topo), 1.0);
  // p=4: each stage is one node; DP groups stay within a node's cluster.
  ParallelGroups p4(ParallelConfig{1, 4, 4});
  EXPECT_DOUBLE_EQ(rdma_dp_group_fraction(p4, topo), 1.0);
  // p=1: every DP group spans both clusters -> 0.
  ParallelGroups p1(ParallelConfig{1, 1, 16});
  EXPECT_DOUBLE_EQ(rdma_dp_group_fraction(p1, topo), 0.0);
}

}  // namespace
}  // namespace holmes::parallel
