#include "parallel/parallel_config.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace holmes::parallel {
namespace {

using net::NicType;
using net::Topology;

TEST(ParallelConfig, ValidatesProduct) {
  Topology topo = Topology::homogeneous(4, NicType::kInfiniBand);  // 32 GPUs
  EXPECT_NO_THROW((ParallelConfig{1, 2, 16}).validate(topo));
  EXPECT_NO_THROW((ParallelConfig{8, 2, 2}).validate(topo));
  EXPECT_THROW((ParallelConfig{1, 2, 8}).validate(topo), ConfigError);
  EXPECT_THROW((ParallelConfig{0, 2, 16}).validate(topo), ConfigError);
  EXPECT_THROW((ParallelConfig{1, -2, 16}).validate(topo), ConfigError);
}

TEST(ParallelConfig, TensorDegreeBoundedByNode) {
  Topology topo = Topology::homogeneous(4, NicType::kInfiniBand);  // G=8
  EXPECT_THROW((ParallelConfig{16, 1, 2}).validate(topo), ConfigError);
  // t=3 does not divide G=8.
  Topology topo2 = Topology::homogeneous(3, NicType::kRoCE);  // 24 GPUs
  EXPECT_THROW((ParallelConfig{3, 1, 8}).validate(topo2), ConfigError);
}

TEST(ParallelConfig, DeriveComputesDataDegree) {
  Topology topo = Topology::homogeneous(4, NicType::kInfiniBand);
  const ParallelConfig c = derive_config(topo, 1, 2);
  EXPECT_EQ(c.data, 16);
  const ParallelConfig c2 = derive_config(topo, 8, 2);
  EXPECT_EQ(c2.data, 2);
}

TEST(ParallelConfig, DeriveRejectsIndivisible) {
  Topology topo = Topology::homogeneous(4, NicType::kInfiniBand);  // 32
  EXPECT_THROW(derive_config(topo, 1, 3), ConfigError);            // 32 % 3
  EXPECT_THROW(derive_config(topo, 0, 2), ConfigError);
}

TEST(ParallelConfig, ToStringIsReadable) {
  EXPECT_EQ((ParallelConfig{8, 2, 4}).to_string(), "t=8,p=2,d=4");
}

}  // namespace
}  // namespace holmes::parallel
