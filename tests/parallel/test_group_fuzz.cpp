/// Property tests of the group builders on randomized multi-cluster
/// topologies: whatever the cluster shapes, both builders must produce
/// structurally valid groups, and Holmes must never be *worse* than the
/// launcher order at keeping data-parallel groups NIC-homogeneous.

#include <gtest/gtest.h>

#include "parallel/group_builder.h"
#include "util/rng.h"

namespace holmes::parallel {
namespace {

using net::ClusterSpec;
using net::NicType;
using net::Topology;

Topology random_topology(Rng& rng) {
  const int clusters = static_cast<int>(rng.uniform_int(1, 4));
  const int gpus = 1 << rng.uniform_int(0, 3);  // 1, 2, 4, 8 per node
  std::vector<ClusterSpec> specs;
  for (int c = 0; c < clusters; ++c) {
    const NicType nic = static_cast<NicType>(rng.uniform_int(0, 2));
    specs.push_back(ClusterSpec{"c" + std::to_string(c),
                                static_cast<int>(rng.uniform_int(1, 4)), gpus,
                                nic});
  }
  return Topology(std::move(specs));
}

/// All (t, p) pairs valid for the topology.
std::vector<ParallelConfig> valid_configs(const Topology& topo) {
  std::vector<ParallelConfig> configs;
  const int n = topo.world_size();
  const int gpus = topo.gpus_per_node();
  for (int t = 1; t <= gpus; ++t) {
    if (gpus % t != 0 || n % t != 0) continue;
    for (int p = 1; p <= n / t; ++p) {
      if (n % (t * p) != 0) continue;
      configs.push_back(ParallelConfig{t, p, n / (t * p)});
    }
  }
  return configs;
}

class GroupBuilderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GroupBuilderFuzz, BothBuildersProduceValidGroups) {
  Rng rng(GetParam());
  const MegatronGroupBuilder megatron;
  const HolmesGroupBuilder holmes;
  for (int trial = 0; trial < 10; ++trial) {
    const Topology topo = random_topology(rng);
    for (const ParallelConfig& config : valid_configs(topo)) {
      const ParallelGroups m = megatron.build(topo, config);
      const ParallelGroups h = holmes.build(topo, config);
      ASSERT_NO_THROW(validate_groups(m, topo)) << config.to_string();
      ASSERT_NO_THROW(validate_groups(h, topo)) << config.to_string();

      // Holmes' cluster alignment must never *reduce* the fraction of
      // NIC-homogeneous data-parallel groups.
      ASSERT_GE(rdma_dp_group_fraction(h, topo) + 1e-12,
                rdma_dp_group_fraction(m, topo))
          << config.to_string();

      // Coordinate round-trip for both.
      for (int rank = 0; rank < topo.world_size(); ++rank) {
        ASSERT_EQ(m.rank_at(m.coord_of(rank)), rank);
        ASSERT_EQ(h.rank_at(h.coord_of(rank)), rank);
      }
    }
  }
}

TEST_P(GroupBuilderFuzz, StageClustersConsistentWithGroups) {
  Rng rng(GetParam() * 977);
  const HolmesGroupBuilder holmes;
  for (int trial = 0; trial < 10; ++trial) {
    const Topology topo = random_topology(rng);
    for (const ParallelConfig& config : valid_configs(topo)) {
      const ParallelGroups g = holmes.build(topo, config);
      const auto clusters = stage_clusters(g, topo);
      ASSERT_EQ(clusters.size(), static_cast<std::size_t>(config.pipeline));
      for (int s = 0; s < config.pipeline; ++s) {
        const auto ranks = g.stage_ranks(s);
        if (clusters[static_cast<std::size_t>(s)] >= 0) {
          for (int r : ranks) {
            ASSERT_EQ(topo.cluster_of(r), clusters[static_cast<std::size_t>(s)]);
          }
        } else {
          // Mixed stage really does span clusters.
          bool mixed = false;
          for (int r : ranks) {
            mixed |= topo.cluster_of(r) != topo.cluster_of(ranks.front());
          }
          ASSERT_TRUE(mixed);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupBuilderFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace holmes::parallel
