#include "core/training_sim.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "core/experiment.h"
#include "obs/self_profile.h"
#include "sim/scenario_runner.h"
#include "util/error.h"

namespace holmes::core {
namespace {

using net::NicType;
using net::Topology;

IterationMetrics simulate(const FrameworkConfig& fw, const Topology& topo,
                          int group, int iterations = 3) {
  const TrainingPlan plan = Planner(fw).plan(topo, model::parameter_group(group));
  return TrainingSimulator{}.run(topo, plan, iterations);
}

TEST(TrainingSim, ProducesPositiveSteadyStateMetrics) {
  Topology topo = Topology::homogeneous(4, NicType::kInfiniBand);
  const IterationMetrics m = simulate(FrameworkConfig::holmes(), topo, 1);
  EXPECT_GT(m.iteration_time, 0.0);
  EXPECT_GT(m.tflops_per_gpu, 0.0);
  EXPECT_GT(m.throughput, 0.0);
  EXPECT_GT(m.forward_busy, 0.0);
  EXPECT_GT(m.backward_busy, 0.0);
  EXPECT_GT(m.task_count, 0u);
}

TEST(TrainingSim, TflopsAndThroughputAreConsistent) {
  // throughput = B / time and tflops = F / (time * N) imply
  // tflops * N / throughput == F / B for the same run.
  Topology topo = Topology::homogeneous(4, NicType::kInfiniBand);
  const IterationMetrics m = simulate(FrameworkConfig::holmes(), topo, 1);
  const auto& group = model::parameter_group(1);
  const double f_over_b =
      group.config.flops_per_iteration(group.batch_size) /
      static_cast<double>(group.batch_size);
  EXPECT_NEAR(m.tflops_per_gpu * 1e12 * 32 / m.throughput, f_over_b,
              f_over_b * 1e-9);
}

TEST(TrainingSim, IsDeterministic) {
  Topology topo = Topology::hybrid_two_clusters(2);
  const IterationMetrics a = simulate(FrameworkConfig::holmes(), topo, 1);
  const IterationMetrics b = simulate(FrameworkConfig::holmes(), topo, 1);
  EXPECT_DOUBLE_EQ(a.iteration_time, b.iteration_time);
  EXPECT_DOUBLE_EQ(a.tflops_per_gpu, b.tflops_per_gpu);
  EXPECT_EQ(a.task_count, b.task_count);
}

TEST(TrainingSim, MemoHitReturnsIdenticalMetricsWithoutRerunning) {
  Topology topo = Topology::hybrid_two_clusters(1);
  const TrainingPlan plan =
      Planner(FrameworkConfig::holmes()).plan(topo, model::parameter_group(1));
  obs::SelfProfiler profiler;
  sim::SimMemo memo;
  TrainingSimulator simulator;
  simulator.set_memo(&memo);
  const IterationMetrics cold = simulator.run(topo, plan, 2);
  const std::uint64_t pops_after_cold =
      profiler.snapshot().counters.ready_pops;
  EXPECT_GT(pops_after_cold, 0u);
  EXPECT_EQ(memo.misses(), 1u);

  const IterationMetrics warm = simulator.run(topo, plan, 2);
  EXPECT_EQ(memo.hits(), 1u);
  // The hit skipped the executor: no further ready-queue traffic.
  EXPECT_EQ(profiler.snapshot().counters.ready_pops, pops_after_cold);
  EXPECT_EQ(cold.iteration_time, warm.iteration_time);
  EXPECT_EQ(cold.throughput, warm.throughput);
  EXPECT_EQ(cold.grad_sync_span, warm.grad_sync_span);
}

TEST(TrainingSim, ObserverBypassesMemo) {
  // A live observer needs real per-task events, so the memo must not
  // short-circuit the run even when it holds a structural match.
  class CountingObserver : public sim::ExecutionObserver {
   public:
    void on_task_scheduled(const sim::TaskGraph&, sim::TaskId,
                           const sim::TaskTiming&, SimTime) override {
      ++scheduled;
    }
    std::size_t scheduled = 0;
  };
  Topology topo = Topology::hybrid_two_clusters(1);
  const TrainingPlan plan =
      Planner(FrameworkConfig::holmes()).plan(topo, model::parameter_group(1));
  sim::SimMemo memo;
  TrainingSimulator simulator;
  simulator.set_memo(&memo);
  simulator.run(topo, plan, 2);  // populate the memo
  CountingObserver observer;
  simulator.run(topo, plan, 2, {}, nullptr, nullptr, &observer);
  EXPECT_GT(observer.scheduled, 0u);
  EXPECT_EQ(memo.hits(), 0u);
}

TEST(TrainingSim, SteadyStateIsStableAcrossIterationCounts) {
  // Measuring iteration 3 or iteration 5 must give (nearly) the same
  // steady-state time.
  Topology topo = Topology::homogeneous(2, NicType::kRoCE);
  const IterationMetrics three = simulate(FrameworkConfig::holmes(), topo, 1, 3);
  const IterationMetrics five = simulate(FrameworkConfig::holmes(), topo, 1, 5);
  EXPECT_NEAR(three.iteration_time, five.iteration_time,
              three.iteration_time * 0.01);
}

TEST(TrainingSim, RequiresWarmupIteration) {
  Topology topo = Topology::homogeneous(2, NicType::kInfiniBand);
  const TrainingPlan plan = Planner(FrameworkConfig::holmes())
                                .plan(topo, model::parameter_group(1));
  EXPECT_THROW(TrainingSimulator{}.run(topo, plan, 1), ConfigError);
  EXPECT_NO_THROW(TrainingSimulator{}.run(topo, plan, 2));
}

TEST(TrainingSim, FasterFabricTrainsFaster) {
  Topology ib = Topology::homogeneous(4, NicType::kInfiniBand);
  Topology eth = Topology::homogeneous(4, NicType::kEthernet);
  const IterationMetrics fast = simulate(FrameworkConfig::holmes(), ib, 1);
  const IterationMetrics slow = simulate(FrameworkConfig::holmes(), eth, 1);
  EXPECT_GT(fast.tflops_per_gpu, slow.tflops_per_gpu * 1.2);
  EXPECT_GT(fast.throughput, slow.throughput);
}

TEST(TrainingSim, GradSyncSpanTracksFabricSpeed) {
  Topology ib = Topology::homogeneous(4, NicType::kInfiniBand);
  Topology eth = Topology::homogeneous(4, NicType::kEthernet);
  const IterationMetrics fast = simulate(FrameworkConfig::holmes(), ib, 1);
  const IterationMetrics slow = simulate(FrameworkConfig::holmes(), eth, 1);
  EXPECT_GT(slow.grad_sync_span, fast.grad_sync_span * 2);
}

TEST(TrainingSim, OverlappedOptimizerBeatsPlainDistributed) {
  // On an RDMA cluster, overlapping gradient reduce-scatter with backward
  // compute and prefetching the all-gather must not be slower.
  Topology topo = Topology::homogeneous(4, NicType::kInfiniBand);
  const IterationMetrics overlapped =
      simulate(FrameworkConfig::holmes(), topo, 2);
  const IterationMetrics plain =
      simulate(FrameworkConfig::holmes().without_overlapped_optimizer(), topo, 2);
  EXPECT_LE(overlapped.iteration_time, plain.iteration_time * 1.005);
}

TEST(TrainingSim, BiggerBatchRaisesUtilization) {
  // Groups 1 and 2 share the model; group 2 doubles the batch, amortizing
  // the pipeline flush and DP sync -> higher TFLOPS.
  Topology topo = Topology::homogeneous(4, NicType::kRoCE);
  const IterationMetrics small = simulate(FrameworkConfig::holmes(), topo, 1);
  const IterationMetrics large = simulate(FrameworkConfig::holmes(), topo, 2);
  EXPECT_GT(large.tflops_per_gpu, small.tflops_per_gpu);
}

TEST(TrainingSim, MoreNodesLowerPerGpuTflopsAtFixedBatch) {
  // Table 3 trend: scaling out at a fixed global batch shrinks per-GPU
  // work relative to synchronization cost.
  const IterationMetrics n4 = simulate(
      FrameworkConfig::holmes(), Topology::homogeneous(4, NicType::kInfiniBand), 1);
  const IterationMetrics n8 = simulate(
      FrameworkConfig::holmes(), Topology::homogeneous(8, NicType::kInfiniBand), 1);
  EXPECT_LT(n8.tflops_per_gpu, n4.tflops_per_gpu);
  EXPECT_GT(n8.throughput, n4.throughput);  // but aggregate speed grows
}

TEST(TrainingSim, TensorParallelGroupSeven) {
  // Group 7 (39B, t=8) must lay out and simulate on 8 nodes.
  Topology topo = Topology::homogeneous(8, NicType::kInfiniBand);
  const IterationMetrics m = simulate(FrameworkConfig::holmes(), topo, 7, 2);
  EXPECT_GT(m.tflops_per_gpu, 50.0);
  EXPECT_LT(m.tflops_per_gpu, 312.0);
}

TEST(TrainingSim, PipelineDepthThreeGroupFive) {
  // Group 5 (p=3) on 6 nodes in three clusters (Table 4's shape).
  Topology topo({
      net::ClusterSpec{"a", 2, 8, NicType::kRoCE},
      net::ClusterSpec{"b", 2, 8, NicType::kRoCE},
      net::ClusterSpec{"c", 2, 8, NicType::kInfiniBand},
  });
  const IterationMetrics m = simulate(FrameworkConfig::holmes(), topo, 5, 2);
  EXPECT_GT(m.tflops_per_gpu, 0.0);
}

TEST(TrainingSim, FullyShardedPaysExtraAllGather) {
  // ZeRO-3's backward re-gather roughly doubles the all-gather span and
  // can only slow the iteration, never speed it up.
  Topology topo = Topology::homogeneous(4, NicType::kRoCE);
  FrameworkConfig zero1 = FrameworkConfig::holmes().without_overlapped_optimizer();
  FrameworkConfig zero3 = zero1;
  zero3.dp_sync = optimizer::DpSyncConfig::fully_sharded();
  const IterationMetrics a = simulate(zero1, topo, 1);
  const IterationMetrics b = simulate(zero3, topo, 1);
  // The span grows sublinearly (it includes cross-stage idle gaps), but
  // the extra volume must be clearly visible and the iteration slower.
  EXPECT_GT(b.param_allgather_span, a.param_allgather_span * 1.15);
  EXPECT_GT(b.iteration_time, a.iteration_time);
}

TEST(TrainingSim, InterleavedScheduleRunsAndStaysClose) {
  // The interleaved schedule must simulate correctly and land within a
  // reasonable band of plain 1F1B (smaller bubble vs more p2p traffic).
  Topology topo = Topology::homogeneous(4, NicType::kInfiniBand);
  const IterationMetrics plain = simulate(FrameworkConfig::holmes(), topo, 1);
  const IterationMetrics interleaved = simulate(
      FrameworkConfig::holmes().with_schedule(SchedulePolicy::kInterleaved, 2),
      topo, 1);
  EXPECT_NEAR(interleaved.iteration_time / plain.iteration_time, 1.0, 0.15);
}

TEST(TrainingSim, GPipeMatchesOneFOneBOnBubbleTime) {
  // Same micro-batch count -> same fill/drain bubble; the two schedules
  // should land close in time (GPipe differs in memory, not speed).
  Topology topo = Topology::homogeneous(2, NicType::kInfiniBand);
  const IterationMetrics flush = simulate(FrameworkConfig::holmes(), topo, 1);
  const IterationMetrics gpipe = simulate(
      FrameworkConfig::holmes().with_schedule(SchedulePolicy::kGPipe), topo, 1);
  EXPECT_NEAR(gpipe.iteration_time / flush.iteration_time, 1.0, 0.1);
}

TEST(TrainingSim, PcieNodesPayForIntraNodePipelineTraffic) {
  // One 8-GPU node, p = 4 (stages are sub-node): inter-stage activations
  // ride NVLink or PCIe. The PCIe variant must be slower, and both must
  // beat nothing-at-all sanity bounds.
  model::ParameterGroup workload = model::parameter_group(1);
  workload.pipeline_parallel = 4;

  net::Topology nvlink = net::Topology::homogeneous(1, NicType::kInfiniBand);
  net::Topology pcie({net::ClusterSpec{"pcie", 1, 8, NicType::kInfiniBand, 0,
                                       /*has_nvlink=*/false}});
  const Planner planner(FrameworkConfig::holmes());
  const IterationMetrics fast =
      TrainingSimulator{}.run(nvlink, planner.plan(nvlink, workload));
  const IterationMetrics slow =
      TrainingSimulator{}.run(pcie, planner.plan(pcie, workload));
  EXPECT_GT(slow.iteration_time, fast.iteration_time);
  EXPECT_GT(fast.tflops_per_gpu, 100.0);
}

TEST(TrainingSim, WeakScalingHoldsTflopsRoughlyFlat) {
  // Groups 3 (B=1536) on 4 nodes vs 4 (B=2688) on 7 nodes keep per-GPU
  // batch similar; per-GPU TFLOPS should stay within a modest band.
  const IterationMetrics small = simulate(
      FrameworkConfig::holmes(), Topology::homogeneous(4, NicType::kRoCE), 3);
  const IterationMetrics large = simulate(
      FrameworkConfig::holmes(), Topology::homogeneous(7, NicType::kRoCE), 4);
  EXPECT_NEAR(large.tflops_per_gpu / small.tflops_per_gpu, 1.0, 0.1);
}

TEST(TrainingSim, LargestScenarioCombinedFeaturesStress) {
  // Table 4's largest setting with every feature on at once: 12 nodes in
  // three clusters, interleaved schedule, overlapped optimizer,
  // self-adapting partition, plus a straggler. Must complete quickly and
  // produce sane numbers.
  net::Topology topo({
      net::ClusterSpec{"roce-a", 4, 8, NicType::kRoCE},
      net::ClusterSpec{"ib-a", 4, 8, NicType::kInfiniBand},
      net::ClusterSpec{"ib-b", 4, 8, NicType::kInfiniBand},
  });
  FrameworkConfig fw =
      FrameworkConfig::holmes().with_schedule(SchedulePolicy::kInterleaved, 2);
  const TrainingPlan plan = Planner(fw).plan(topo, model::parameter_group(6));
  Perturbations perturb;
  perturb.device_slowdown[17] = 1.3;
  perturb.compute_jitter = 0.02;
  const IterationMetrics m = TrainingSimulator{}.run(topo, plan, 3, perturb);
  EXPECT_GT(m.tflops_per_gpu, 40.0);
  EXPECT_LT(m.tflops_per_gpu, 312.0);
  EXPECT_GT(m.task_count, 10000u);
}

TEST(TrainingSim, HolmesBeatsFallbackBaselineOnHybrid) {
  Topology topo = Topology::hybrid_two_clusters(4);
  const IterationMetrics holmes = simulate(FrameworkConfig::holmes(), topo, 3);
  const IterationMetrics lm = simulate(FrameworkConfig::megatron_lm(), topo, 3);
  EXPECT_GT(holmes.tflops_per_gpu, lm.tflops_per_gpu * 1.3);
}

}  // namespace
}  // namespace holmes::core
