#include "core/perturbation.h"

#include <gtest/gtest.h>

#include "core/experiment.h"

namespace holmes::core {
namespace {

using net::NicType;
using net::Topology;

IterationMetrics simulate(const Topology& topo, const Perturbations& perturb,
                          int group = 1) {
  const TrainingPlan plan = Planner(FrameworkConfig::holmes())
                                .plan(topo, model::parameter_group(group));
  return TrainingSimulator{}.run(topo, plan, 3, perturb);
}

TEST(Perturbation, EmptyPerturbationMatchesBaseline) {
  Topology topo = Topology::homogeneous(2, NicType::kInfiniBand);
  const IterationMetrics base = simulate(topo, {});
  Perturbations none;
  const IterationMetrics same = simulate(topo, none);
  EXPECT_DOUBLE_EQ(base.iteration_time, same.iteration_time);
}

TEST(Perturbation, StragglerSlowsTheWholePipeline) {
  // One straggler GPU gates its stage, whose cadence gates the iteration —
  // the synchronous-training pathology the paper's future work targets.
  Topology topo = Topology::homogeneous(2, NicType::kInfiniBand);
  const IterationMetrics base = simulate(topo, {});
  Perturbations straggler;
  straggler.device_slowdown[3] = 1.5;
  const IterationMetrics slow = simulate(topo, straggler);
  EXPECT_GT(slow.iteration_time, base.iteration_time * 1.15);
}

TEST(Perturbation, SlowdownFactorScalesImpact) {
  Topology topo = Topology::homogeneous(2, NicType::kInfiniBand);
  Perturbations mild, severe;
  mild.device_slowdown[0] = 1.2;
  severe.device_slowdown[0] = 2.0;
  EXPECT_GT(simulate(topo, severe).iteration_time,
            simulate(topo, mild).iteration_time);
}

TEST(Perturbation, JitterIsDeterministicPerSeed) {
  Topology topo = Topology::homogeneous(2, NicType::kRoCE);
  Perturbations jitter;
  jitter.compute_jitter = 0.1;
  jitter.seed = 42;
  const IterationMetrics a = simulate(topo, jitter);
  const IterationMetrics b = simulate(topo, jitter);
  EXPECT_DOUBLE_EQ(a.iteration_time, b.iteration_time);
  jitter.seed = 43;
  const IterationMetrics c = simulate(topo, jitter);
  EXPECT_NE(a.iteration_time, c.iteration_time);
}

TEST(Perturbation, JitterSlowsButBounded) {
  // Jitter in [1, 1.1] can delay an iteration by at most ~10% plus
  // desynchronization effects; it must never speed it up.
  Topology topo = Topology::homogeneous(2, NicType::kInfiniBand);
  const IterationMetrics base = simulate(topo, {});
  Perturbations jitter;
  jitter.compute_jitter = 0.1;
  const IterationMetrics noisy = simulate(topo, jitter);
  EXPECT_GE(noisy.iteration_time, base.iteration_time);
  EXPECT_LE(noisy.iteration_time, base.iteration_time * 1.25);
}

TEST(Perturbation, FactorHelper) {
  Perturbations p;
  p.device_slowdown[7] = 2.0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(p.factor(0, rng), 1.0);
  EXPECT_DOUBLE_EQ(p.factor(7, rng), 2.0);
  p.compute_jitter = 0.5;
  const double f = p.factor(0, rng);
  EXPECT_GE(f, 1.0);
  EXPECT_LE(f, 1.5);
}

TEST(Perturbation, SpeedAwareRepartitionRecoversStragglerLoss) {
  // Future-work demo: when a whole stage is slow (e.g. thermally throttled
  // cluster), re-running the proportional partition with *measured* stage
  // speeds recovers part of the loss — the self-adapting machinery
  // generalizes beyond NIC classes.
  Topology topo = Topology::hybrid_two_clusters(2);
  const model::ParameterGroup& g = model::parameter_group(1);
  Perturbations straggler;
  for (int r = 16; r < 32; ++r) straggler.device_slowdown[r] = 2.0;

  const Planner planner(FrameworkConfig::holmes());
  TrainingPlan plan = planner.plan(topo, g);
  const IterationMetrics unaware = TrainingSimulator{}.run(topo, plan, 3, straggler);

  // Re-balance layers with the observed speeds (stage 1 runs 2x slower).
  TrainingPlan aware = plan;
  aware.partition = pipeline::proportional_partition(
      g.config.layers, {1.0, 1.0 / 2.0}, 1.0);
  const IterationMetrics tuned = TrainingSimulator{}.run(topo, aware, 3, straggler);
  EXPECT_GT(tuned.throughput, unaware.throughput * 1.05);
}

}  // namespace
}  // namespace holmes::core
