#include "core/preflight.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/plan.h"
#include "model/gpt_zoo.h"
#include "net/topology.h"
#include "util/error.h"
#include "util/logging.h"
#include "verify/rules.h"

namespace holmes::core {
namespace {

TrainingPlan plan_for(const FrameworkConfig& framework,
                      const net::Topology& topo, int group = 1) {
  return Planner(framework).plan(topo, model::parameter_group(group));
}

TEST(Preflight, PlanViewMirrorsAHolmesPlan) {
  const net::Topology topo = net::Topology::hybrid_two_clusters(2);
  const TrainingPlan plan = plan_for(FrameworkConfig::holmes(), topo);
  const verify::PlanView view = make_plan_view(plan);
  EXPECT_EQ(view.groups, &plan.groups);
  EXPECT_EQ(view.partition, &plan.partition);
  EXPECT_EQ(view.stage_nics, &plan.stage_nics);
  EXPECT_EQ(view.model, &plan.workload.config);
  EXPECT_EQ(view.micro_batch_size, plan.workload.micro_batch_size);
  ASSERT_TRUE(view.micro_batches.has_value());
  EXPECT_EQ(*view.micro_batches, plan.micro_batches);
  EXPECT_TRUE(view.per_group_transport);  // Holmes: per-group best transport
  EXPECT_FALSE(view.ethernet_fallback);
  // The overlapped distributed optimizer shards optimizer state over DP.
  EXPECT_EQ(view.optimizer_shards, plan.degrees.data);
  EXPECT_EQ(view.weight_shards, 1);
}

TEST(Preflight, PlanViewMirrorsAMegatronFallbackPlan) {
  const net::Topology topo = net::Topology::hybrid_two_clusters(2);
  const TrainingPlan plan = plan_for(FrameworkConfig::megatron_lm(), topo);
  const verify::PlanView view = make_plan_view(plan);
  EXPECT_FALSE(view.per_group_transport);
  EXPECT_TRUE(view.ethernet_fallback);  // heterogeneous job downgrades
  EXPECT_EQ(view.optimizer_shards, 1);  // plain all-reduce DDP
}

TEST(Preflight, PlannedLayoutsPassThePlanLints) {
  const net::Topology topo = net::Topology::hybrid_two_clusters(2);
  for (const FrameworkConfig& framework :
       {FrameworkConfig::holmes(), FrameworkConfig::megatron_lm(),
        FrameworkConfig::megatron_llama()}) {
    const TrainingPlan plan = plan_for(framework, topo);
    const verify::LintReport report = lint_training_plan(topo, plan);
    EXPECT_TRUE(report.ok()) << framework.name;
    EXPECT_FALSE(report.fired(verify::kRuleDpGroupTransport))
        << framework.name;
  }
}

TEST(Preflight, ArtifactsOfARealRunPassGraphAndExecutionLints) {
  const net::Topology topo = net::Topology::hybrid_two_clusters(1);
  const TrainingPlan plan = plan_for(FrameworkConfig::holmes(), topo);
  SimArtifacts artifacts;
  TrainingSimulator{}.run(topo, plan, 2, {}, nullptr, &artifacts);
  const verify::LintReport report = lint_artifacts(artifacts);
  EXPECT_TRUE(report.clean());
  const auto& rules = report.rules_checked();
  // The compute-resource map supplies serial programs, so the deadlock rule
  // and the execution family must actually have run.
  for (const char* rule :
       {verify::kRuleGraphAcyclic, verify::kRuleSerialOrder,
        verify::kRuleTimingMonotone, verify::kRuleResourceExclusive}) {
    EXPECT_NE(std::find(rules.begin(), rules.end(), rule), rules.end())
        << rule;
  }
}

TEST(Preflight, DebugModePreflightThrowsOnNicMixedDpGroups) {
  const net::Topology topo = net::Topology::hybrid_two_clusters(2);
  TrainingPlan plan = plan_for(FrameworkConfig::holmes(), topo);
  // Poison the layout: swap one InfiniBand rank with one RoCE rank, mixing
  // NICs inside two DP groups. The Planner would never emit this; a refactor
  // bug might.
  std::vector<int> order(static_cast<std::size_t>(topo.world_size()));
  std::iota(order.begin(), order.end(), 0);
  std::swap(order[0], order[16]);
  plan.groups = parallel::ParallelGroups(plan.degrees, order);

  const LogLevel saved = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_THROW(TrainingSimulator{}.run(topo, plan), ConfigError);
  // Outside debug mode the pre-flight stays out of the hot path.
  set_log_level(LogLevel::kWarning);
  EXPECT_NO_THROW(TrainingSimulator{}.run(topo, plan));
  set_log_level(saved);
}

}  // namespace
}  // namespace holmes::core
