#include "core/plan.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/error.h"

namespace holmes::core {
namespace {

using net::NicType;
using net::Topology;

TEST(Planner, DerivesDegreesFromWorkloadAndTopology) {
  // Group 1: t=1, p=2 on 4 nodes x 8 GPUs -> d=16.
  Topology topo = Topology::homogeneous(4, NicType::kInfiniBand);
  const TrainingPlan plan =
      Planner(FrameworkConfig::holmes()).plan(topo, model::parameter_group(1));
  EXPECT_EQ(plan.degrees.tensor, 1);
  EXPECT_EQ(plan.degrees.pipeline, 2);
  EXPECT_EQ(plan.degrees.data, 16);
  EXPECT_EQ(plan.micro_batches, 12);  // 768 / 16 / 4
}

TEST(Planner, RejectsImpossibleLayouts) {
  // Group 1 needs t*p = 2 to divide N; 3 nodes x 8 = 24 works, but group 7
  // (t=8, p=2 -> 16) does not divide 24.
  Topology topo = Topology::homogeneous(3, NicType::kInfiniBand);
  EXPECT_THROW(Planner(FrameworkConfig::holmes())
                   .plan(topo, model::parameter_group(7)),
               ConfigError);
}

TEST(Planner, HomogeneousJobNeverFallsBack) {
  Topology topo = Topology::homogeneous(4, NicType::kRoCE);
  for (const auto& fw : {FrameworkConfig::holmes(), FrameworkConfig::megatron_lm()}) {
    const TrainingPlan plan = Planner(fw).plan(topo, model::parameter_group(1));
    EXPECT_FALSE(plan.ethernet_fallback) << fw.name;
  }
}

TEST(Planner, HeterogeneousJobTriggersFallbackOnlyForBaselines) {
  Topology topo = Topology::hybrid_two_clusters(2);
  EXPECT_TRUE(is_heterogeneous_job(topo));
  const TrainingPlan lm = Planner(FrameworkConfig::megatron_lm())
                              .plan(topo, model::parameter_group(1));
  EXPECT_TRUE(lm.ethernet_fallback);
  const TrainingPlan holmes = Planner(FrameworkConfig::holmes())
                                  .plan(topo, model::parameter_group(1));
  EXPECT_FALSE(holmes.ethernet_fallback);
}

TEST(Planner, SplitSameNicClustersAlsoHeterogeneous) {
  // Fig. 4's "InfiniBand & Ethernet": two IB clusters without a shared
  // switch still count as a heterogeneous job for a NIC-oblivious stack.
  Topology topo = Topology::split_clusters(2, NicType::kInfiniBand);
  EXPECT_TRUE(is_heterogeneous_job(topo));
}

TEST(Planner, StageNicsFollowClusters) {
  Topology topo = Topology::hybrid_two_clusters(2);  // IB cluster, RoCE cluster
  const TrainingPlan plan = Planner(FrameworkConfig::holmes())
                                .plan(topo, model::parameter_group(1));
  ASSERT_EQ(plan.stage_nics.size(), 2u);
  EXPECT_EQ(plan.stage_nics[0], NicType::kInfiniBand);
  EXPECT_EQ(plan.stage_nics[1], NicType::kRoCE);
}

TEST(Planner, FallbackFlattensStageNicsToEthernet) {
  Topology topo = Topology::hybrid_two_clusters(2);
  const TrainingPlan plan = Planner(FrameworkConfig::megatron_lm())
                                .plan(topo, model::parameter_group(1));
  for (NicType nic : plan.stage_nics) EXPECT_EQ(nic, NicType::kEthernet);
}

TEST(Planner, SelfAdaptingGivesIbStageMoreLayers) {
  Topology topo = Topology::hybrid_two_clusters(2);
  const TrainingPlan plan = Planner(FrameworkConfig::holmes())
                                .plan(topo, model::parameter_group(1));
  ASSERT_EQ(plan.partition.size(), 2u);
  // Paper's worked example: 30 layers, alpha=1.05 -> 17 / 13.
  EXPECT_EQ(plan.partition[0], 17);
  EXPECT_EQ(plan.partition[1], 13);
}

TEST(Planner, UniformPartitionWhenConfigured) {
  Topology topo = Topology::hybrid_two_clusters(2);
  const TrainingPlan plan = Planner(FrameworkConfig::holmes().without_self_adapting())
                                .plan(topo, model::parameter_group(1));
  EXPECT_EQ(plan.partition, (pipeline::StagePartition{15, 15}));
}

TEST(Planner, PartitionAlwaysSumsToModelLayers) {
  Topology topo = Topology::hybrid_two_clusters(3);  // 6 nodes
  for (int group : {1, 3, 5}) {
    for (const auto& fw :
         {FrameworkConfig::holmes(), FrameworkConfig::megatron_llama()}) {
      const TrainingPlan plan =
          Planner(fw).plan(topo, model::parameter_group(group));
      const int total = std::accumulate(plan.partition.begin(),
                                        plan.partition.end(), 0);
      EXPECT_EQ(total, plan.workload.config.layers)
          << fw.name << " group " << group;
    }
  }
}

TEST(Planner, GroupsAreValidatedAgainstTopology) {
  Topology topo = Topology::hybrid_two_clusters(2);
  const TrainingPlan plan = Planner(FrameworkConfig::holmes())
                                .plan(topo, model::parameter_group(1));
  EXPECT_NO_THROW(parallel::validate_groups(plan.groups, topo));
  // Holmes guarantee: every DP group NIC-homogeneous when clusters align.
  EXPECT_DOUBLE_EQ(parallel::rdma_dp_group_fraction(plan.groups, topo), 1.0);
}

TEST(Planner, ThreeClusterTableFourLayout) {
  // Table 4: 2 RoCE + 2 RoCE + 2 IB nodes, group 5 (p=3).
  Topology topo({
      net::ClusterSpec{"roce-a", 2, 8, NicType::kRoCE},
      net::ClusterSpec{"roce-b", 2, 8, NicType::kRoCE},
      net::ClusterSpec{"ib", 2, 8, NicType::kInfiniBand},
  });
  const TrainingPlan plan = Planner(FrameworkConfig::holmes())
                                .plan(topo, model::parameter_group(5));
  EXPECT_EQ(plan.degrees.pipeline, 3);
  ASSERT_EQ(plan.stage_nics.size(), 3u);
  EXPECT_EQ(plan.stage_nics[2], NicType::kInfiniBand);
  // The IB-backed stage receives the most layers.
  EXPECT_GT(plan.partition[2], plan.partition[0]);
}

}  // namespace
}  // namespace holmes::core
