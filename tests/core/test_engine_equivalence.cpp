/// Engine equivalence suite: the optimized DES engine must be *observably
/// identical* to the seed engine it replaced.
///
/// The goldens under tests/core/goldens/engine were recorded from the seed
/// engine (std::function event queue, binary std::priority_queue, per-task
/// dependency vectors) across the 36 env x group x framework fixture
/// configs. Every hot-path rewrite since — arena-backed events, the 4-ary
/// ready heap, the CSR graph layout, the flat trace accumulators, the
/// parallel ScenarioRunner — must reproduce the `holmes.run_summary.v1`
/// and `holmes.critical_path.v1` documents byte for byte.
///
/// Regenerate (only when the *simulated semantics* deliberately change, not
/// for engine perf work) by running holmes_core_tests with
/// HOLMES_REGEN_ENGINE_GOLDENS=1 and --gtest_filter='EngineEquivalence.*'.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/faults.h"
#include "core/framework.h"
#include "core/run_stats.h"
#include "model/gpt_zoo.h"
#include "obs/critical_path.h"
#include "obs/summary.h"
#include "sim/scenario_runner.h"

#ifndef HOLMES_ENGINE_GOLDEN_DIR
#error "tests/CMakeLists.txt must define HOLMES_ENGINE_GOLDEN_DIR"
#endif

namespace holmes::core {
namespace {

struct Config {
  NicEnv env;
  int group;
  const char* framework;
};

std::vector<Config> fixture_configs() {
  std::vector<Config> configs;
  for (NicEnv env : {NicEnv::kInfiniBand, NicEnv::kRoCE, NicEnv::kEthernet,
                     NicEnv::kHybrid}) {
    for (int group : {1, 2, 3}) {
      for (const char* framework :
           {"holmes", "megatron-lm", "megatron-deepspeed"}) {
        configs.push_back({env, group, framework});
      }
    }
  }
  return configs;
}

FrameworkConfig resolve(const std::string& name) {
  if (name == "holmes") return FrameworkConfig::holmes();
  if (name == "megatron-lm") return FrameworkConfig::megatron_lm();
  return FrameworkConfig::megatron_deepspeed();
}

std::string golden_name(const Config& config) {
  return to_string(config.env) + "_g" + std::to_string(config.group) + "_" +
         config.framework + ".json";
}

/// Serializes the two byte-stable documents of one simulated run exactly as
/// the determinism checker does (core/schedule_check.cpp), wrapped in one
/// object so each config is a single golden file.
std::string run_config(const Config& config) {
  const net::Topology topo = make_environment(config.env, 2);
  const TrainingPlan plan = Planner(resolve(config.framework))
                                .plan(topo, model::parameter_group(config.group));
  TrainingSimulator simulator;
  SimArtifacts artifacts;
  const IterationMetrics metrics =
      simulator.run(topo, plan, 3, {}, nullptr, &artifacts);
  std::ostringstream out;
  out << "{\"run_summary\":";
  obs::write_json(out, build_run_summary(topo, plan, metrics, artifacts));
  out << ",\"critical_path\":";
  obs::write_json(out,
                  build_critical_path_summary(topo, plan, metrics, artifacts));
  out << "}\n";
  return out.str();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool regen_requested() {
  const char* regen = std::getenv("HOLMES_REGEN_ENGINE_GOLDENS");
  return regen != nullptr && regen[0] != '\0' && regen[0] != '0';
}

void compare_or_regen(const Config& config, const std::string& actual) {
  const std::string path =
      std::string(HOLMES_ENGINE_GOLDEN_DIR) + "/" + golden_name(config);
  if (regen_requested()) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty())
      << "missing golden " << path
      << " (regenerate with HOLMES_REGEN_ENGINE_GOLDENS=1)";
  // Byte equality, with a readable first-difference report on mismatch.
  if (actual != expected) {
    std::size_t at = 0;
    while (at < actual.size() && at < expected.size() &&
           actual[at] == expected[at]) {
      ++at;
    }
    const std::size_t lo = at < 60 ? 0 : at - 60;
    FAIL() << golden_name(config) << " diverges from the seed engine at byte "
           << at << "\n  golden: ..."
           << expected.substr(lo, 120) << "\n  actual: ..."
           << actual.substr(lo, 120);
  }
}

TEST(EngineEquivalence, MatchesSeedGoldens) {
  for (const Config& config : fixture_configs()) {
    SCOPED_TRACE(golden_name(config));
    compare_or_regen(config, run_config(config));
  }
}

// The faulted fixture: the canonical fault plan (a 2.0x straggler on the
// RoCE cluster's first node plus a NIC degradation window) lowered onto the
// hybrid config. Exercises the rate-timeline executor path — stretched
// occupancies, ports_free timings, stretch-aware critical path — which the
// clean matrix above never enters.
std::string run_faulted_hybrid() {
  const net::Topology topo = make_environment(NicEnv::kHybrid, 2);
  const TrainingPlan plan =
      Planner(FrameworkConfig::holmes()).plan(topo, model::parameter_group(1));
  FaultPlan faults;
  ComputeStraggler straggler;
  straggler.cluster = 1;
  straggler.node_in_cluster = 0;
  straggler.slowdown = 2.0;
  faults.stragglers.push_back(straggler);
  NicDegradation window;
  window.cluster = 1;
  window.begin_s = 1.0;
  window.end_s = 10.0;
  window.bandwidth_factor = 0.5;
  faults.nic_degradation.push_back(window);
  const Perturbations perturb = lower_fault_plan(faults, topo);

  TrainingSimulator simulator;
  SimArtifacts artifacts;
  const IterationMetrics metrics =
      simulator.run(topo, plan, 3, perturb, nullptr, &artifacts);
  std::ostringstream out;
  out << "{\"run_summary\":";
  obs::write_json(out, build_run_summary(topo, plan, metrics, artifacts));
  out << ",\"critical_path\":";
  obs::write_json(out,
                  build_critical_path_summary(topo, plan, metrics, artifacts));
  out << "}\n";
  return out.str();
}

TEST(EngineEquivalence, FaultedHybridMatchesGolden) {
  compare_or_regen({NicEnv::kHybrid, 1, "holmes_faulted"},
                   run_faulted_hybrid());
}

// The parallel fan-out must be observably identical to the serial loop:
// the same 36 configs, simulated across >= 4 ScenarioRunner threads, must
// reproduce the same golden bytes (this is the suite the tsan CI matrix
// runs to prove per-thread isolation of the engine's caches and arenas).
TEST(EngineEquivalence, ParallelScenarioRunnerMatchesSeedGoldens) {
  if (regen_requested()) GTEST_SKIP() << "goldens regenerate serially";
  const std::vector<Config> configs = fixture_configs();
  // +1: the faulted hybrid config rides along, so the rate-timeline path is
  // also proven race-free under the pool.
  std::vector<std::string> actual(configs.size() + 1);
  sim::ScenarioRunner runner(4);
  runner.run_all(actual.size(), [&](std::size_t i) {
    actual[i] =
        i < configs.size() ? run_config(configs[i]) : run_faulted_hybrid();
  });
  EXPECT_GE(runner.threads(), 4u);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE(golden_name(configs[i]));
    compare_or_regen(configs[i], actual[i]);
  }
  compare_or_regen({NicEnv::kHybrid, 1, "holmes_faulted"}, actual.back());
}

}  // namespace
}  // namespace holmes::core
