#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/run_stats.h"
#include "obs/summary.h"

namespace holmes::core {
namespace {

using net::NicType;
using net::Topology;

struct SimRun {
  TrainingPlan plan;
  IterationMetrics metrics;
  SimArtifacts artifacts;
};

SimRun simulate(const FrameworkConfig& fw, const Topology& topo, int group,
                int iterations = 3, const Perturbations& perturb = {}) {
  SimRun run{Planner(fw).plan(topo, model::parameter_group(group)), {}, {}};
  run.metrics = TrainingSimulator{}.run(topo, run.plan, iterations, perturb,
                                        nullptr, &run.artifacts);
  return run;
}

// --- Acceptance: exact attribution on the NIC-mixed topology -------------

TEST(CriticalPathE2E, SegmentsTileTheMakespanExactly) {
  const Topology topo = Topology::hybrid_two_clusters(2);
  const SimRun run = simulate(FrameworkConfig::megatron_lm(), topo, 1);
  obs::CriticalPath path;
  const obs::CriticalPathSummary s = build_critical_path_summary(
      topo, run.plan, run.metrics, run.artifacts, {}, &path);

  // The raw path partitions [0, makespan]: no gaps, no overlaps, exact FP
  // equality (starts are copies of constraint times, not re-derived).
  ASSERT_FALSE(path.segments.empty());
  EXPECT_EQ(path.segments.front().begin, 0.0);
  for (std::size_t i = 1; i < path.segments.size(); ++i) {
    EXPECT_EQ(path.segments[i].begin, path.segments[i - 1].end);
  }
  EXPECT_EQ(path.segments.back().end, path.makespan);
  EXPECT_DOUBLE_EQ(path.makespan, run.artifacts.result->makespan());

  // Bucket seconds partition the attribution window (= the makespan here).
  double bucket_sum = 0;
  double share_sum = 0;
  for (const auto& b : s.buckets) {
    EXPECT_GT(b.seconds, 0.0) << b.name;
    bucket_sum += b.seconds;
    share_sum += b.share;
  }
  EXPECT_NEAR(bucket_sum, s.makespan_s, 1e-9 * s.makespan_s);
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.window_begin_s, 0.0);
  EXPECT_DOUBLE_EQ(s.window_end_s, s.makespan_s);
}

TEST(CriticalPathE2E, EthernetFallbackAppearsOnHybrid) {
  // The NIC-oblivious baseline on the hybrid environment routes collectives
  // across the cross-cluster Ethernet fallback; the critical path must show
  // at least one Ethernet-attributed bucket.
  const Topology topo = Topology::hybrid_two_clusters(2);
  const SimRun run = simulate(FrameworkConfig::megatron_lm(), topo, 1);
  const obs::CriticalPathSummary s = build_critical_path_summary(
      topo, run.plan, run.metrics, run.artifacts);

  bool saw_ethernet = false;
  for (const auto& b : s.buckets) {
    if (b.name.find("Ethernet") != std::string::npos) saw_ethernet = true;
  }
  EXPECT_TRUE(saw_ethernet);
  EXPECT_FALSE(s.sensitivities.empty());
  EXPECT_FALSE(s.top_segments.empty());
}

TEST(CriticalPathE2E, WindowClipsAttributionToTheRequestedSpan) {
  const Topology topo = Topology::hybrid_two_clusters(2);
  const SimRun run = simulate(FrameworkConfig::holmes(), topo, 1);
  CriticalPathOptions options;
  const double makespan = run.artifacts.result->makespan();
  options.window_begin = 0.25 * makespan;
  options.window_end = 0.75 * makespan;
  const obs::CriticalPathSummary s = build_critical_path_summary(
      topo, run.plan, run.metrics, run.artifacts, options);

  EXPECT_DOUBLE_EQ(s.window_begin_s, options.window_begin);
  EXPECT_DOUBLE_EQ(s.window_end_s, options.window_end);
  double bucket_sum = 0;
  for (const auto& b : s.buckets) bucket_sum += b.seconds;
  const double span = options.window_end - options.window_begin;
  EXPECT_NEAR(bucket_sum, span, 1e-9 * span);
}

// --- Acceptance: sensitivity vs brute-force re-simulation ----------------

/// Re-simulates `base` with the class named by `bucket` sped up by `factor`
/// (compute stages via per-rank perturbation, link classes via the fabric
/// catalog) and returns the measured makespan saving.
double resimulated_savings(const Topology& topo, const SimRun& base,
                           const std::string& bucket, double factor) {
  SimArtifacts fast;
  if (bucket.rfind("compute/stage", 0) == 0) {
    const int stage =
        std::stoi(bucket.substr(std::string("compute/stage").size()));
    Perturbations perturb;
    for (int rank : base.plan.groups.stage_ranks(stage)) {
      perturb.device_slowdown[rank] = 1.0 / factor;
    }
    TrainingSimulator{}.run(topo, base.plan, base.artifacts.iterations,
                            perturb, nullptr, &fast);
  } else {
    EXPECT_EQ(bucket.rfind("link/", 0), 0u) << bucket;
    const std::string cls = bucket.substr(std::string("link/").size());
    net::FabricCatalog catalog = topo.catalog();
    bool found = false;
    for (net::FabricKind kind :
         {net::FabricKind::kNVLink, net::FabricKind::kPCIe,
          net::FabricKind::kInfiniBand, net::FabricKind::kRoCE,
          net::FabricKind::kEthernet}) {
      if (net::to_string(kind) == cls) {
        catalog.spec(kind).bandwidth_gbps *= factor;
        found = true;
      }
    }
    EXPECT_TRUE(found) << cls;
    const Topology fast_topo(topo.clusters(), catalog);
    TrainingSimulator{}.run(fast_topo, base.plan, base.artifacts.iterations,
                            {}, nullptr, &fast);
  }
  return base.artifacts.result->makespan() - fast.result->makespan();
}

TEST(CriticalPathE2E, TopSensitivityAgreesWithBruteForceResimulation) {
  // Holmes on the hybrid environment: the advertised 10%-speedup saving
  // must match an actual re-simulation with the class 10% faster.
  const Topology topo = Topology::hybrid_two_clusters(2);
  const SimRun base = simulate(FrameworkConfig::holmes(), topo, 1);
  const obs::CriticalPathSummary s = build_critical_path_summary(
      topo, base.plan, base.metrics, base.artifacts);
  ASSERT_FALSE(s.sensitivities.empty());
  const obs::CriticalPathSummary::Sensitivity& top = s.sensitivities[0];

  const double measured = resimulated_savings(topo, base, top.bucket, 1.1);
  EXPECT_GT(measured, 0.0);
  EXPECT_NEAR(top.savings_10pct_s, measured, 0.10 * measured)
      << "target " << top.bucket << ": predicted " << top.savings_10pct_s
      << " s vs re-simulated " << measured << " s";
}

TEST(CriticalPathE2E, SensitivityDerivativeMatchesForSmallSpeedups) {
  // The NIC-oblivious baseline's Ethernet contention makes finite speedups
  // non-smooth (queue reordering), but the *derivative* the sensitivity
  // reports must still match brute force in the small-step limit.
  const Topology topo = Topology::hybrid_two_clusters(2);
  const SimRun base = simulate(FrameworkConfig::megatron_lm(), topo, 1);
  const obs::CriticalPathSummary s = build_critical_path_summary(
      topo, base.plan, base.metrics, base.artifacts);
  ASSERT_FALSE(s.sensitivities.empty());
  const obs::CriticalPathSummary::Sensitivity& top = s.sensitivities[0];

  const double factor = 1.01;
  const double predicted = top.critical_s * (1.0 - 1.0 / factor);
  const double measured = resimulated_savings(topo, base, top.bucket, factor);
  EXPECT_GT(measured, 0.0);
  EXPECT_NEAR(predicted, measured, 0.10 * measured)
      << "target " << top.bucket << ": predicted " << predicted
      << " s vs re-simulated " << measured << " s";
}

// --- Acceptance: byte-identical determinism ------------------------------

TEST(CriticalPathE2E, IdenticalRunsProduceByteIdenticalJson) {
  const Topology topo = Topology::hybrid_two_clusters(2);

  auto render = [&topo]() {
    const SimRun run = simulate(FrameworkConfig::holmes(), topo, 1);
    const obs::RunSummary summary =
        build_run_summary(topo, run.plan, run.metrics, run.artifacts);
    const obs::CriticalPathSummary critical = build_critical_path_summary(
        topo, run.plan, run.metrics, run.artifacts);
    std::ostringstream a;
    obs::write_json(a, summary);
    a << "\n";
    obs::write_json(a, critical);
    return a.str();
  };

  // Two full, independent pipelines: plan, simulate, summarize, serialize.
  const std::string first = render();
  const std::string second = render();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("holmes.run_summary.v1"), std::string::npos);
  EXPECT_NE(first.find("holmes.critical_path.v1"), std::string::npos);
}

}  // namespace
}  // namespace holmes::core
