/// End-to-end: TrainingSimulator attaches a holmes.self_profile.v1 delta to
/// SimArtifacts, the counters agree with the run's own metrics, and two
/// identical runs produce byte-identical counter JSON (the determinism the
/// `holmes_cli bench` trajectory gate relies on).

#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.h"
#include "obs/self_profile.h"

namespace holmes::core {
namespace {

struct ProfiledRun {
  IterationMetrics metrics;
  obs::SelfProfile profile;
};

ProfiledRun profiled_run() {
  const net::Topology topo = make_environment(NicEnv::kHybrid, 2);
  const TrainingPlan plan =
      Planner(FrameworkConfig::holmes()).plan(topo, model::parameter_group(1));
  obs::SelfProfiler profiler;
  SimArtifacts artifacts;
  ProfiledRun run;
  run.metrics = TrainingSimulator{}.run(topo, plan, 3, {},
                                        /*chrome_trace=*/nullptr, &artifacts);
  EXPECT_TRUE(artifacts.self_profile.has_value());
  run.profile = *artifacts.self_profile;
  return run;
}

TEST(SelfProfileE2E, NotAttachedWithoutProfiler) {
  const net::Topology topo = make_environment(NicEnv::kHybrid, 2);
  const TrainingPlan plan =
      Planner(FrameworkConfig::holmes()).plan(topo, model::parameter_group(1));
  SimArtifacts artifacts;
  (void)TrainingSimulator{}.run(topo, plan, 3, {}, nullptr, &artifacts);
  EXPECT_FALSE(artifacts.self_profile.has_value());
}

TEST(SelfProfileE2E, CountersAgreeWithRunMetrics) {
  const ProfiledRun run = profiled_run();
  const obs::SelfProfileCounters& c = run.profile.counters;
  // Every simulated task was created, pushed ready exactly once and popped
  // exactly once (the run completes, so the graph is acyclic).
  EXPECT_EQ(c.tasks_created, run.metrics.task_count);
  EXPECT_EQ(c.ready_pushes, run.metrics.task_count);
  EXPECT_EQ(c.ready_pops, run.metrics.task_count);
  EXPECT_EQ(c.tasks_created,
            c.compute_tasks + c.transfer_tasks + c.noop_tasks);
  EXPECT_EQ(c.executor_runs, 1u);
  EXPECT_GT(c.deps_added, 0u);
  EXPECT_GT(c.resources_created, 0u);
  EXPECT_GT(c.cost_model_evals, 0u);
  EXPECT_GE(c.max_ready_queue, 1u);
}

TEST(SelfProfileE2E, CountersByteIdenticalAcrossIdenticalRuns) {
  const std::string first = obs::counters_json(profiled_run().profile.counters);
  const std::string second =
      obs::counters_json(profiled_run().profile.counters);
  EXPECT_EQ(first, second);
}

TEST(SelfProfileE2E, PhasesArePresentAndConsistent) {
  const obs::SelfProfilePhases p = profiled_run().profile.phases;
  EXPECT_GT(p.graph_build_s, 0.0);
  EXPECT_GT(p.event_loop_s, 0.0);
  EXPECT_GT(p.accounting_s, 0.0);
  EXPECT_GT(p.total_s, 0.0);
  // The named phases partition a subset of the run: their sum can never
  // exceed the measured total (allow scheduler-tick slack).
  EXPECT_LE(p.graph_build_s + p.event_loop_s + p.accounting_s,
            p.total_s + 1e-3);
}

TEST(SelfProfileE2E, DeltaIsolatesEachRunUnderOneProfiler) {
  const net::Topology topo = make_environment(NicEnv::kHybrid, 2);
  const TrainingPlan plan =
      Planner(FrameworkConfig::holmes()).plan(topo, model::parameter_group(1));
  obs::SelfProfiler profiler;
  SimArtifacts first;
  SimArtifacts second;
  (void)TrainingSimulator{}.run(topo, plan, 3, {}, nullptr, &first);
  (void)TrainingSimulator{}.run(topo, plan, 3, {}, nullptr, &second);
  ASSERT_TRUE(first.self_profile.has_value());
  ASSERT_TRUE(second.self_profile.has_value());
  // Each run's attached profile is its own delta, not the running total.
  EXPECT_EQ(obs::counters_json(first.self_profile->counters),
            obs::counters_json(second.self_profile->counters));
}

TEST(SelfProfileE2E, WriteJsonCarriesRunCounters) {
  const ProfiledRun run = profiled_run();
  std::ostringstream out;
  obs::write_json(out, run.profile);
  const std::string doc = out.str();
  EXPECT_NE(doc.find("\"schema\":\"holmes.self_profile.v1\""),
            std::string::npos);
  std::ostringstream expected;
  expected << "\"tasks_created\":" << run.metrics.task_count;
  EXPECT_NE(doc.find(expected.str()), std::string::npos);
}

}  // namespace
}  // namespace holmes::core
