#include "core/autotune.h"

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "obs/self_profile.h"
#include "sim/scenario_runner.h"
#include "util/error.h"

namespace holmes::core {
namespace {

using net::NicType;
using net::Topology;

TuneOptions fast_options() {
  TuneOptions options;
  options.iterations = 2;
  options.max_pipeline = 8;
  return options;
}

TEST(Autotune, FindsFeasibleLayoutsSortedByThroughput) {
  Topology topo = Topology::homogeneous(2, NicType::kInfiniBand);
  const auto ranked = autotune(FrameworkConfig::holmes(), topo,
                               model::parameter_group(1), fast_options());
  ASSERT_GE(ranked.size(), 2u);
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].metrics.throughput, ranked[i].metrics.throughput);
  }
  for (const auto& c : ranked) {
    EXPECT_EQ(c.tensor * c.pipeline * c.data, topo.world_size());
    EXPECT_GT(c.metrics.tflops_per_gpu, 0.0);
  }
}

TEST(Autotune, RespectsMemoryBudget) {
  Topology topo = Topology::homogeneous(2, NicType::kInfiniBand);
  TuneOptions tight = fast_options();
  tight.device_memory = 20LL * 1024 * 1024 * 1024;  // 20 GB
  const auto ranked = autotune(FrameworkConfig::holmes(), topo,
                               model::parameter_group(1), tight);
  for (const auto& c : ranked) {
    EXPECT_LE(c.estimated_memory, tight.device_memory);
  }
  // An impossible budget must fail loudly.
  tight.device_memory = 1024;
  EXPECT_THROW(autotune(FrameworkConfig::holmes(), topo,
                        model::parameter_group(1), tight),
               ConfigError);
}

TEST(Autotune, LargeModelRequiresModelParallelism) {
  // The 39B model cannot fit t=1, p=1 on 80 GB; every surviving candidate
  // must shard the model somehow.
  Topology topo = Topology::homogeneous(2, NicType::kInfiniBand);
  const auto ranked = autotune(FrameworkConfig::holmes(), topo,
                               model::parameter_group(7), fast_options());
  for (const auto& c : ranked) {
    EXPECT_GT(c.tensor * c.pipeline, 1)
        << "t=" << c.tensor << " p=" << c.pipeline;
  }
}

TEST(Autotune, MaxPipelineCapsSearch) {
  Topology topo = Topology::homogeneous(2, NicType::kInfiniBand);
  TuneOptions options = fast_options();
  options.max_pipeline = 2;
  const auto ranked = autotune(FrameworkConfig::holmes(), topo,
                               model::parameter_group(1), options);
  for (const auto& c : ranked) EXPECT_LE(c.pipeline, 2);
}

TEST(Autotune, HybridPrefersPipelineAcrossClusters) {
  // On the hybrid topology, the best layout must use p >= 2: p = 1 would
  // put every DP group across the IB/RoCE divide onto Ethernet.
  Topology topo = Topology::hybrid_two_clusters(2);
  const auto ranked = autotune(FrameworkConfig::holmes(), topo,
                               model::parameter_group(1), fast_options());
  ASSERT_FALSE(ranked.empty());
  EXPECT_GE(ranked.front().pipeline, 2);
  // And the winner must beat the best single-stage layout clearly.
  for (const auto& c : ranked) {
    if (c.pipeline == 1) {
      EXPECT_GT(ranked.front().metrics.throughput,
                c.metrics.throughput * 1.1);
    }
  }
}

TEST(Autotune, WarmSweepHitsMemoAndMatchesColdSweep) {
  // A memo shared across sweeps turns a repeated sweep into pure cache
  // hits: the second pass simulates nothing and returns identical rankings.
  Topology topo = Topology::homogeneous(2, NicType::kInfiniBand);
  obs::SelfProfiler profiler;
  sim::SimMemo memo;
  TuneOptions options = fast_options();
  options.memo = &memo;
  options.threads = 1;  // deterministic hit/miss split
  const auto cold = autotune(FrameworkConfig::holmes(), topo,
                             model::parameter_group(1), options);
  const obs::SelfProfile after_cold = profiler.snapshot();
  EXPECT_EQ(after_cold.counters.memo_hits, 0u);
  EXPECT_EQ(after_cold.counters.memo_misses, cold.size());
  // Every enumerated layout runs as a scenario, including ones the planner
  // rejects (they never reach the simulator, so they are not misses).
  EXPECT_GE(after_cold.counters.scenarios_run, cold.size());

  const auto warm = autotune(FrameworkConfig::holmes(), topo,
                             model::parameter_group(1), options);
  const obs::SelfProfile after_warm = profiler.snapshot();
  EXPECT_EQ(after_warm.counters.memo_hits, warm.size());
  EXPECT_EQ(after_warm.counters.memo_misses, after_cold.counters.memo_misses);

  ASSERT_EQ(cold.size(), warm.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(cold[i].tensor, warm[i].tensor);
    EXPECT_EQ(cold[i].pipeline, warm[i].pipeline);
    EXPECT_EQ(cold[i].metrics.iteration_time, warm[i].metrics.iteration_time);
    EXPECT_EQ(cold[i].metrics.throughput, warm[i].metrics.throughput);
  }
}

TEST(Autotune, BestLayoutAtLeastMatchesPaperChoice) {
  // The paper picked (t=1, p=2) for group 1; the tuner's winner on the
  // same hardware must be at least as good as that choice.
  Topology topo = Topology::homogeneous(4, NicType::kInfiniBand);
  const auto ranked = autotune(FrameworkConfig::holmes(), topo,
                               model::parameter_group(1), fast_options());
  const IterationMetrics paper_choice = run_experiment(
      FrameworkConfig::holmes(), NicEnv::kInfiniBand, 4, 1, {}, 2);
  EXPECT_GE(ranked.front().metrics.throughput,
            paper_choice.throughput * 0.999);
}

}  // namespace
}  // namespace holmes::core
