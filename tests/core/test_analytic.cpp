#include "core/analytic.h"

#include <gtest/gtest.h>

#include "core/experiment.h"

namespace holmes::core {
namespace {

using net::NicType;
using net::Topology;

/// The configurations where the closed form applies: plain 1F1B, no
/// communication overlap.
FrameworkConfig plain() {
  return FrameworkConfig::holmes()
      .without_self_adapting()
      .without_overlapped_optimizer();
}

class AnalyticAgreement : public ::testing::TestWithParam<NicEnv> {};

TEST_P(AnalyticAgreement, WithinTwentyFivePercentOfSimulation) {
  const NicEnv env = GetParam();
  const Topology topo = make_environment(env, 4);
  const TrainingPlan plan =
      Planner(plain()).plan(topo, model::parameter_group(1));
  const AnalyticBreakdown analytic = analytic_iteration(topo, plan);
  const IterationMetrics simulated = TrainingSimulator{}.run(topo, plan);
  EXPECT_NEAR(analytic.total() / simulated.iteration_time, 1.0, 0.25)
      << "analytic " << analytic.total() << "s vs simulated "
      << simulated.iteration_time << "s";
}

INSTANTIATE_TEST_SUITE_P(Envs, AnalyticAgreement,
                         ::testing::Values(NicEnv::kInfiniBand, NicEnv::kRoCE,
                                           NicEnv::kEthernet, NicEnv::kHybrid),
                         [](const ::testing::TestParamInfo<NicEnv>& param_info) {
                           std::string name = to_string(param_info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(Analytic, BreakdownComponentsArePositiveAndSum) {
  const Topology topo = Topology::homogeneous(4, NicType::kRoCE);
  const TrainingPlan plan =
      Planner(plain()).plan(topo, model::parameter_group(1));
  const AnalyticBreakdown b = analytic_iteration(topo, plan);
  EXPECT_GT(b.steady_compute, 0);
  EXPECT_GT(b.pipeline_bubble, 0);
  EXPECT_GT(b.grad_reduce_scatter, 0);
  EXPECT_GT(b.optimizer, 0);
  EXPECT_GT(b.param_allgather, 0);
  EXPECT_NEAR(b.total(),
              b.overhead + b.steady_compute + b.pipeline_bubble +
                  b.grad_reduce_scatter + b.optimizer + b.param_allgather,
              1e-12);
}

TEST(Analytic, OrdersEnvironmentsLikeTheSimulator) {
  const TrainingPlan ib_plan = Planner(plain()).plan(
      Topology::homogeneous(4, NicType::kInfiniBand), model::parameter_group(1));
  const TrainingPlan eth_plan = Planner(plain()).plan(
      Topology::homogeneous(4, NicType::kEthernet), model::parameter_group(1));
  EXPECT_LT(
      analytic_iteration(Topology::homogeneous(4, NicType::kInfiniBand), ib_plan)
          .total(),
      analytic_iteration(Topology::homogeneous(4, NicType::kEthernet), eth_plan)
          .total());
}

TEST(Analytic, ClassicDdpDoublesGradVolume) {
  const Topology topo = Topology::homogeneous(4, NicType::kRoCE);
  const TrainingPlan ddp = Planner(FrameworkConfig::megatron_lm())
                               .plan(topo, model::parameter_group(1));
  const TrainingPlan zero = Planner(plain()).plan(topo, model::parameter_group(1));
  const AnalyticBreakdown a = analytic_iteration(topo, ddp);
  const AnalyticBreakdown b = analytic_iteration(topo, zero);
  // All-reduce moves 2x the reduce-scatter volume and skips the all-gather.
  EXPECT_NEAR(a.grad_reduce_scatter / b.grad_reduce_scatter, 2.0, 0.01);
  EXPECT_DOUBLE_EQ(a.param_allgather, 0);
  // ...but pays the full (unsharded) optimizer.
  EXPECT_GT(a.optimizer, b.optimizer * 3);
}

TEST(Analytic, FallbackInflatesSyncCost) {
  const Topology topo = Topology::hybrid_two_clusters(2);
  const TrainingPlan holmes = Planner(plain()).plan(topo, model::parameter_group(1));
  TrainingPlan fallback = holmes;
  fallback.ethernet_fallback = true;
  EXPECT_GT(analytic_iteration(topo, fallback).grad_reduce_scatter,
            analytic_iteration(topo, holmes).grad_reduce_scatter * 3);
}

}  // namespace
}  // namespace holmes::core
