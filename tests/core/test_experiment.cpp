#include "core/experiment.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace holmes::core {
namespace {

TEST(Environment, NamesMatchPaper) {
  EXPECT_EQ(to_string(NicEnv::kInfiniBand), "InfiniBand");
  EXPECT_EQ(to_string(NicEnv::kHybrid), "Hybrid");
  EXPECT_EQ(to_string(NicEnv::kSplitIB), "InfiniBand & Ethernet");
  EXPECT_EQ(to_string(NicEnv::kSplitRoCE), "RoCE & Ethernet");
}

TEST(Environment, HomogeneousBuildsSingleCluster) {
  const net::Topology topo = make_environment(NicEnv::kRoCE, 4);
  EXPECT_EQ(topo.cluster_count(), 1);
  EXPECT_EQ(topo.world_size(), 32);
  EXPECT_EQ(topo.device(0).nic, net::NicType::kRoCE);
}

TEST(Environment, HybridBuildsTwoUnequalNicClusters) {
  const net::Topology topo = make_environment(NicEnv::kHybrid, 6);
  EXPECT_EQ(topo.cluster_count(), 2);
  EXPECT_EQ(topo.cluster(0).nodes, 3);
  EXPECT_EQ(topo.cluster(0).nic, net::NicType::kInfiniBand);
  EXPECT_EQ(topo.cluster(1).nic, net::NicType::kRoCE);
}

TEST(Environment, SplitBuildsSameNicClusters) {
  const net::Topology ib = make_environment(NicEnv::kSplitIB, 4);
  EXPECT_EQ(ib.cluster_count(), 2);
  EXPECT_EQ(ib.cluster(0).nic, net::NicType::kInfiniBand);
  EXPECT_EQ(ib.cluster(1).nic, net::NicType::kInfiniBand);
}

TEST(Environment, SplitEnvironmentsNeedEvenNodes) {
  EXPECT_THROW(make_environment(NicEnv::kHybrid, 3), ConfigError);
  EXPECT_NO_THROW(make_environment(NicEnv::kEthernet, 3));
}

// ---- Integration: the reproduction-fidelity claims of DESIGN.md §4 ----

class PaperShapes : public ::testing::Test {
 protected:
  static double tflops(const FrameworkConfig& fw, NicEnv env, int nodes,
                       int group) {
    return run_experiment(fw, env, nodes, group).tflops_per_gpu;
  }
  // Tables 1/3 rows use uniform partition (the paper applies the
  // self-adapting strategy only in Fig. 5-7 and Table 5).
  static FrameworkConfig table_holmes() {
    return FrameworkConfig::holmes().without_self_adapting();
  }
};

TEST_F(PaperShapes, Table1OrderingHolds) {
  // IB > RoCE ~ Hybrid > Ethernet for group 1 on 4 nodes. (The paper has
  // Hybrid slightly below RoCE for group 1 and essentially tied for group
  // 4; our calibration lands the pair within 5% — see EXPERIMENTS.md.)
  const double ib = tflops(table_holmes(), NicEnv::kInfiniBand, 4, 1);
  const double roce = tflops(table_holmes(), NicEnv::kRoCE, 4, 1);
  const double hybrid = tflops(table_holmes(), NicEnv::kHybrid, 4, 1);
  const double eth = tflops(table_holmes(), NicEnv::kEthernet, 4, 1);
  EXPECT_GT(ib, roce);
  EXPECT_GT(ib, hybrid * 1.05);
  EXPECT_NEAR(hybrid / roce, 1.0, 0.05);
  EXPECT_GT(hybrid, eth * 1.2);
  // The headline: hybrid lands much closer to the RDMA envs than to
  // Ethernet.
  EXPECT_GT(hybrid - eth, std::abs(roce - hybrid));
}

TEST_F(PaperShapes, Table1AbsoluteNumbersAreInBand) {
  // Within ~12% of the paper's anchor row (197 / 160 / 122).
  EXPECT_NEAR(tflops(table_holmes(), NicEnv::kInfiniBand, 4, 1), 197.0, 24.0);
  EXPECT_NEAR(tflops(table_holmes(), NicEnv::kRoCE, 4, 1), 160.0, 20.0);
  EXPECT_NEAR(tflops(table_holmes(), NicEnv::kEthernet, 4, 1), 122.0, 15.0);
}

TEST_F(PaperShapes, SelfAdaptingBeatsUniformOnHybrid) {
  // Fig. 5.
  for (int group : {1, 3}) {
    const double sa = tflops(FrameworkConfig::holmes(), NicEnv::kHybrid, 4, group);
    const double uni = tflops(table_holmes(), NicEnv::kHybrid, 4, group);
    EXPECT_GT(sa, uni) << "group " << group;
  }
}

TEST_F(PaperShapes, FrameworkOrderingOnHybrid) {
  // Fig. 6: Holmes > Megatron-LLaMA > {DeepSpeed, LM}.
  const double holmes = tflops(FrameworkConfig::holmes(), NicEnv::kHybrid, 8, 3);
  const double llama =
      tflops(FrameworkConfig::megatron_llama(), NicEnv::kHybrid, 8, 3);
  const double ds =
      tflops(FrameworkConfig::megatron_deepspeed(), NicEnv::kHybrid, 8, 3);
  const double lm = tflops(FrameworkConfig::megatron_lm(), NicEnv::kHybrid, 8, 3);
  EXPECT_GT(holmes, llama * 1.2);
  EXPECT_GT(llama, ds);
  EXPECT_GT(ds, lm);
}

TEST_F(PaperShapes, AblationDeltasKeepSignAndOrder) {
  // Table 5: removing the overlapped optimizer costs more than removing
  // the self-adapting partition, and both cost something.
  const FrameworkConfig h = FrameworkConfig::holmes();
  const double full = tflops(h, NicEnv::kHybrid, 8, 3);
  const double no_sa = tflops(h.without_self_adapting(), NicEnv::kHybrid, 8, 3);
  const double no_ov =
      tflops(h.without_overlapped_optimizer(), NicEnv::kHybrid, 8, 3);
  const double no_both = tflops(
      h.without_self_adapting().without_overlapped_optimizer(), NicEnv::kHybrid,
      8, 3);
  EXPECT_GT(full, no_sa);
  EXPECT_GT(no_sa, no_ov);
  EXPECT_GT(no_ov, no_both);
  // Even stripped to Automatic NIC Selection alone, Holmes clearly beats
  // the fallback baseline (Table 5's first vs last rows).
  const double lm = tflops(FrameworkConfig::megatron_lm(), NicEnv::kHybrid, 8, 3);
  EXPECT_GT(no_both, lm * 1.3);
}

TEST_F(PaperShapes, SplitClustersStayNearRdmaPerformance) {
  // Fig. 4 (case 2): two same-NIC clusters joined only by Ethernet still
  // train much faster than the pure Ethernet environment.
  const double split_ib = tflops(table_holmes(), NicEnv::kSplitIB, 4, 1);
  const double split_roce = tflops(table_holmes(), NicEnv::kSplitRoCE, 4, 1);
  const double eth = tflops(table_holmes(), NicEnv::kEthernet, 4, 1);
  const double ib = tflops(table_holmes(), NicEnv::kInfiniBand, 4, 1);
  EXPECT_GT(split_ib, eth * 1.15);
  EXPECT_GT(split_roce, eth * 1.05);
  EXPECT_LT(split_ib, ib);  // upper bound is the homogeneous switch
}

TEST_F(PaperShapes, SpeedupGrowsWithScale) {
  // Fig. 7: Holmes' advantage over Megatron-LM widens with node count.
  double prev_speedup = 0;
  for (int nodes : {4, 6, 8}) {
    const double holmes = run_experiment(FrameworkConfig::holmes(),
                                         NicEnv::kHybrid, nodes, 7)
                              .throughput;
    const double lm = run_experiment(FrameworkConfig::megatron_lm(),
                                     NicEnv::kHybrid, nodes, 7)
                          .throughput;
    const double speedup = holmes / lm;
    EXPECT_GT(speedup, prev_speedup);
    prev_speedup = speedup;
  }
  EXPECT_GT(prev_speedup, 1.1);
}

}  // namespace
}  // namespace holmes::core
