#include "core/schedule_check.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/plan.h"
#include "model/gpt_zoo.h"
#include "net/topology.h"
#include "util/build_info.h"
#include "util/json.h"
#include "verify/rules.h"

namespace holmes::core {
namespace {

TrainingPlan plan_for(const FrameworkConfig& framework,
                      const net::Topology& topo, int group = 1) {
  return Planner(framework).plan(topo, model::parameter_group(group));
}

ScheduleCheckOptions quick_options() {
  ScheduleCheckOptions options;
  options.permutations = 2;
  options.iterations = 2;
  return options;
}

TEST(ScheduleCheck, HybridRunIsDeterministicUnderDisjointPermutations) {
  const net::Topology topo = net::Topology::hybrid_two_clusters(1);
  const TrainingPlan plan = plan_for(FrameworkConfig::holmes(), topo);
  const ScheduleCheckResult result =
      check_schedule_determinism(topo, plan, quick_options());
  EXPECT_EQ(result.permutations, 2);
  EXPECT_EQ(result.diverged, 0);
  EXPECT_TRUE(result.report.ok());
  EXPECT_FALSE(result.report.fired(verify::kRuleScheduleRace));
}

TEST(ScheduleCheck, FlowBoundsHoldAcrossFrameworks) {
  const net::Topology topo = net::Topology::hybrid_two_clusters(1);
  for (const FrameworkConfig& framework :
       {FrameworkConfig::holmes(), FrameworkConfig::megatron_lm()}) {
    const TrainingPlan plan = plan_for(framework, topo);
    ScheduleCheckOptions options = quick_options();
    options.permutations = 1;
    const ScheduleCheckResult result =
        check_schedule_determinism(topo, plan, options);
    ASSERT_TRUE(result.flow.valid) << framework.name;
    EXPECT_GT(result.flow.makespan_bound_s, 0) << framework.name;
    EXPECT_LE(result.flow.makespan_bound_s, result.makespan_s * (1 + 1e-9))
        << framework.name;
    EXPECT_FALSE(result.report.fired(verify::kRuleFlowChainBound))
        << framework.name;
    EXPECT_FALSE(result.report.fired(verify::kRuleFlowResourceBound))
        << framework.name;
  }
}

TEST(ScheduleCheck, ReportJsonIsStampedParsableAndStable) {
  const net::Topology topo = net::Topology::hybrid_two_clusters(1);
  const TrainingPlan plan = plan_for(FrameworkConfig::holmes(), topo);
  ScheduleCheckOptions options = quick_options();
  options.permutations = 1;
  const ScheduleCheckResult result =
      check_schedule_determinism(topo, plan, options);

  std::ostringstream a;
  write_check_report_json(a, result, current_build_info());
  const JsonValue doc = json_parse(a.str());
  EXPECT_EQ(doc.at("schema").as_string(), kCheckReportSchema);
  EXPECT_TRUE(doc.find("fingerprint") != nullptr);
  EXPECT_EQ(doc.at("verdict").as_string(), "pass");
  EXPECT_EQ(doc.at("policy").as_string(), "disjoint");
  EXPECT_EQ(doc.at("diverged").as_number(), 0);
  EXPECT_GT(doc.at("flow").at("chain_bound_s").as_number(), 0);
  EXPECT_EQ(doc.at("lint").at("schema").as_string(), "holmes.lint_report.v1");

  std::ostringstream b;
  write_check_report_json(b, result, current_build_info());
  EXPECT_EQ(a.str(), b.str());  // byte-stable for fixed inputs
}

TEST(ScheduleCheck, ParallelFanOutMatchesSerialReportBytes) {
  // The permutation fan-out is embarrassingly parallel; the report must be
  // byte-identical whether the permuted runs execute serially or across a
  // pool (the sim::ScenarioRunner determinism contract, end to end).
  const net::Topology topo = net::Topology::hybrid_two_clusters(1);
  const TrainingPlan plan = plan_for(FrameworkConfig::holmes(), topo);
  ScheduleCheckOptions serial = quick_options();
  serial.permutations = 4;
  ScheduleCheckOptions parallel = serial;
  parallel.threads = 4;
  const ScheduleCheckResult a =
      check_schedule_determinism(topo, plan, serial);
  const ScheduleCheckResult b =
      check_schedule_determinism(topo, plan, parallel);
  std::ostringstream sa;
  std::ostringstream sb;
  write_check_report_json(sa, a, current_build_info());
  write_check_report_json(sb, b, current_build_info());
  EXPECT_EQ(sa.str(), sb.str());
  EXPECT_EQ(b.permutations, 4);
  EXPECT_EQ(b.diverged, 0);
}

// A representative fault schedule: a straggler node plus a NIC degradation
// window, i.e. both the duration-perturbing and the rate-timeline paths.
Perturbations faulted_perturbations() {
  Perturbations perturb;
  for (int rank = 8; rank < 16; ++rank) perturb.device_slowdown[rank] = 2.0;
  NicDegradation window;
  window.cluster = 1;
  window.begin_s = 1.0;
  window.end_s = 10.0;
  window.bandwidth_factor = 0.5;
  perturb.nic_degradation.push_back(window);
  return perturb;
}

TEST(ScheduleCheck, FaultedRunStaysDeterministicAcrossPermutations) {
  // Byte-identity is part of the fault-injection contract: degradation
  // windows stretch occupancies but must not open scheduling races.
  const net::Topology topo = net::Topology::hybrid_two_clusters(1);
  const TrainingPlan plan = plan_for(FrameworkConfig::holmes(), topo);
  ScheduleCheckOptions options = quick_options();
  options.perturbations = faulted_perturbations();
  const ScheduleCheckResult result =
      check_schedule_determinism(topo, plan, options);
  EXPECT_EQ(result.permutations, 2);
  EXPECT_EQ(result.diverged, 0);
  EXPECT_TRUE(result.report.ok());
  EXPECT_FALSE(result.report.fired(verify::kRuleScheduleRace));
}

TEST(ScheduleCheck, FaultedParallelFanOutMatchesSerialReportBytes) {
  const net::Topology topo = net::Topology::hybrid_two_clusters(1);
  const TrainingPlan plan = plan_for(FrameworkConfig::holmes(), topo);
  ScheduleCheckOptions serial = quick_options();
  serial.permutations = 4;
  serial.perturbations = faulted_perturbations();
  ScheduleCheckOptions parallel = serial;
  parallel.threads = 4;
  const ScheduleCheckResult a = check_schedule_determinism(topo, plan, serial);
  const ScheduleCheckResult b =
      check_schedule_determinism(topo, plan, parallel);
  std::ostringstream sa;
  std::ostringstream sb;
  write_check_report_json(sa, a, current_build_info());
  write_check_report_json(sb, b, current_build_info());
  EXPECT_EQ(sa.str(), sb.str());
  EXPECT_EQ(b.diverged, 0);

  // The faults actually bit: the checked makespan differs from fault-free.
  ScheduleCheckOptions clean = quick_options();
  clean.permutations = 1;
  const ScheduleCheckResult baseline =
      check_schedule_determinism(topo, plan, clean);
  EXPECT_GT(a.makespan_s, baseline.makespan_s);
}

TEST(ScheduleCheck, TieBreakNamesAreStable) {
  EXPECT_EQ(to_string(sim::TieBreak::kCanonical), "canonical");
  EXPECT_EQ(to_string(sim::TieBreak::kPermuteDisjoint), "disjoint");
  EXPECT_EQ(to_string(sim::TieBreak::kPermuteAll), "all");
}

}  // namespace
}  // namespace holmes::core
