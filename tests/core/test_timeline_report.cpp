#include "core/timeline_report.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/faults.h"
#include "core/plan.h"
#include "core/training_sim.h"
#include "model/gpt_zoo.h"
#include "net/topology.h"
#include "sim/executor.h"
#include "verify/rules.h"

namespace holmes::core {
namespace {

using net::Topology;

struct SimRun {
  TrainingPlan plan;
  IterationMetrics metrics;
  SimArtifacts artifacts;
};

SimRun simulate(const Topology& topo, int group,
                const Perturbations& perturb = {},
                const sim::ExecutorOptions* exec = nullptr) {
  SimRun run{Planner(FrameworkConfig::holmes()).plan(topo,
                                                     model::parameter_group(group)),
             {},
             {}};
  TrainingSimulator simulator;
  if (exec != nullptr) simulator.set_executor_options(*exec);
  run.metrics =
      simulator.run(topo, run.plan, 2, perturb, nullptr, &run.artifacts);
  return run;
}

std::string timeline_json(const SimRun& run, const Topology& topo,
                          const TimelineReportOptions& options = {}) {
  const TimelineSummary summary = build_timeline_summary(
      topo, run.plan, run.metrics, run.artifacts, options);
  std::ostringstream out;
  write_timeline_json(out, summary);
  return out.str();
}

TEST(TimelineReport, SerialAndThreadedExtractionAreByteIdentical) {
  const Topology topo = Topology::hybrid_two_clusters(2);
  const SimRun run = simulate(topo, 1);
  TimelineReportOptions serial;
  TimelineReportOptions fanned;
  fanned.threads = 4;
  EXPECT_EQ(timeline_json(run, topo, serial), timeline_json(run, topo, fanned));
}

TEST(TimelineReport, DisjointTieSeedsAreByteIdentical) {
  // kPermuteDisjoint reorders only placement decisions that commute, so the
  // executed timings — and with them every timeline byte — must not move.
  const Topology topo = Topology::hybrid_two_clusters(2);
  sim::ExecutorOptions a_opts;
  a_opts.tie_break = sim::TieBreak::kPermuteDisjoint;
  a_opts.tie_seed = 0x11;
  sim::ExecutorOptions b_opts = a_opts;
  b_opts.tie_seed = 0x5EEDBEEF;
  const SimRun base = simulate(topo, 1);
  const SimRun a = simulate(topo, 1, {}, &a_opts);
  const SimRun b = simulate(topo, 1, {}, &b_opts);
  const std::string golden = timeline_json(base, topo);
  EXPECT_EQ(golden, timeline_json(a, topo));
  EXPECT_EQ(golden, timeline_json(b, topo));
}

TEST(TimelineReport, FabricSaturationLintFiresOnHybridOnly) {
  // hybrid: the Ethernet fallback fabric is >= 50% busy for ~21.7% of the
  // run — past the 20% warning bar. Homogeneous IB has no Ethernet class at
  // all, so HV406 stays silent (but checked) there.
  TimelineReportOptions options;
  options.saturation_threshold = 0.5;
  options.saturation_warn_share = 0.2;

  const Topology hybrid = Topology::hybrid_two_clusters(2);
  const SimRun hybrid_run = simulate(hybrid, 1);
  const TimelineSummary hot = build_timeline_summary(
      hybrid, hybrid_run.plan, hybrid_run.metrics, hybrid_run.artifacts,
      options);
  EXPECT_TRUE(hot.lint.fired(verify::kRuleFabricSaturation));

  const Topology ib = Topology::homogeneous(2, net::NicType::kInfiniBand);
  const SimRun ib_run = simulate(ib, 1);
  const TimelineSummary cold = build_timeline_summary(
      ib, ib_run.plan, ib_run.metrics, ib_run.artifacts, options);
  EXPECT_FALSE(cold.lint.fired(verify::kRuleFabricSaturation));
  EXPECT_TRUE(cold.lint.ok());
}

TEST(TimelineReport, WindowOverrideClipsTheObservation) {
  const Topology topo = Topology::hybrid_two_clusters(2);
  const SimRun run = simulate(topo, 1);
  const double makespan = run.artifacts.result->makespan();
  TimelineReportOptions options;
  options.override_window = true;
  options.window_begin = 0.0;
  options.window_end = makespan / 2;
  const TimelineSummary summary = build_timeline_summary(
      topo, run.plan, run.metrics, run.artifacts, options);
  EXPECT_DOUBLE_EQ(summary.timeline.window.begin, 0.0);
  EXPECT_DOUBLE_EQ(summary.timeline.window.end, makespan / 2);
  // An empty window is a configuration error, not a silent zero report.
  TimelineReportOptions empty;
  empty.override_window = true;
  empty.window_begin = 5.0;
  empty.window_end = 5.0;
  EXPECT_ANY_THROW(build_timeline_summary(topo, run.plan, run.metrics,
                                          run.artifacts, empty));
}

TEST(TimelineReport, FaultPlanRatesProduceOverlays) {
  const Topology topo = Topology::hybrid_two_clusters(2);
  FaultPlan plan;
  NicDegradation degraded;
  degraded.cluster = 1;
  degraded.begin_s = 1.0;
  degraded.end_s = 10.0;
  degraded.bandwidth_factor = 0.5;
  plan.nic_degradation.push_back(degraded);
  const Perturbations perturb = lower_fault_plan(plan, topo);
  const SimRun run = simulate(topo, 1, perturb);
  ASSERT_FALSE(run.artifacts.rates.empty());
  const TimelineSummary summary = build_timeline_summary(
      topo, run.plan, run.metrics, run.artifacts);
  EXPECT_FALSE(summary.timeline.overlays.empty());
  for (const obs::RateOverlay& overlay : summary.timeline.overlays) {
    EXPECT_GT(overlay.degraded_total, 0.0) << overlay.name;
    EXPECT_LT(overlay.effective.values()[1], 1.0);
  }
}

TEST(TimelineReport, JsonCarriesSchemaAndIdentity) {
  const Topology topo = Topology::hybrid_two_clusters(2);
  const SimRun run = simulate(topo, 1);
  const std::string json = timeline_json(run, topo);
  EXPECT_NE(json.find("\"schema\":\"holmes.timeline.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"fingerprint\""), std::string::npos);
  EXPECT_NE(json.find("\"resources\""), std::string::npos);
  EXPECT_NE(json.find("\"classes\""), std::string::npos);
  EXPECT_NE(json.find("\"top_talkers\""), std::string::npos);
  EXPECT_EQ(json.back(), '}');  // no trailing newline
}

}  // namespace
}  // namespace holmes::core
