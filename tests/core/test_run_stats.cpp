#include "core/run_stats.h"

#include <gtest/gtest.h>

#include <sstream>

#include "optimizer/dp_strategy.h"
#include "util/error.h"

namespace holmes::core {
namespace {

using net::NicType;
using net::Topology;

struct SimRun {
  TrainingPlan plan;
  IterationMetrics metrics;
  SimArtifacts artifacts;
};

SimRun simulate_with_artifacts(const FrameworkConfig& fw, const Topology& topo,
                            int group, int iterations = 3) {
  SimRun run{Planner(fw).plan(topo, model::parameter_group(group)), {}, {}};
  run.metrics = TrainingSimulator{}.run(topo, run.plan, iterations, {},
                                        nullptr, &run.artifacts);
  return run;
}

TEST(RunStats, RequiresPopulatedArtifacts) {
  const Topology topo = Topology::homogeneous(2, NicType::kInfiniBand);
  const TrainingPlan plan = Planner(FrameworkConfig::holmes())
                                .plan(topo, model::parameter_group(1));
  const SimArtifacts empty;
  EXPECT_THROW(build_run_summary(topo, plan, {}, empty), Error);
}

TEST(RunStats, SummaryIsPopulatedAndConsistent) {
  const Topology topo = Topology::hybrid_two_clusters(2);
  const SimRun run =
      simulate_with_artifacts(FrameworkConfig::holmes(), topo, 1);
  const obs::RunSummary s =
      build_run_summary(topo, run.plan, run.metrics, run.artifacts);

  EXPECT_EQ(s.schema, std::string(obs::kRunSummarySchema));
  EXPECT_FALSE(s.topology.empty());
  EXPECT_EQ(s.framework, "Holmes");
  EXPECT_EQ(s.iterations, 3);
  EXPECT_GT(s.window_end_s, s.window_begin_s);
  EXPECT_DOUBLE_EQ(s.iteration_s, run.metrics.iteration_time);

  // One entry per device, all meaningfully utilized on this workload.
  ASSERT_EQ(s.devices.size(), static_cast<std::size_t>(topo.world_size()));
  for (const auto& d : s.devices) {
    EXPECT_GT(d.busy_s, 0.0) << d.name;
    EXPECT_GT(d.utilization, 0.0);
    EXPECT_LE(d.utilization, 1.0 + 1e-9);
    EXPECT_GT(d.tasks, 0u);
  }

  // One entry per physical stage; layers cover the whole partition.
  ASSERT_EQ(s.stages.size(),
            static_cast<std::size_t>(run.plan.degrees.pipeline));
  int layer_sum = 0;
  int partition_sum = 0;
  for (const auto& st : s.stages) {
    EXPECT_GT(st.compute_busy_s, 0.0);
    EXPECT_GT(st.span_s, 0.0);
    EXPECT_GE(st.bubble_fraction, 0.0);
    EXPECT_LT(st.bubble_fraction, 1.0);
    layer_sum += st.layers;
  }
  for (int layers : run.plan.partition) partition_sum += layers;
  EXPECT_EQ(layer_sum, partition_sum);

  // Only active links are reported; each carried real traffic.
  EXPECT_FALSE(s.links.empty());
  for (const auto& l : s.links) {
    EXPECT_TRUE(l.busy_s > 0 || l.bytes > 0) << l.name;
  }

  // The DP communicators and pipeline channel show up by name.
  bool saw_dp = false;
  bool saw_pp = false;
  for (const auto& c : s.comms) {
    EXPECT_GT(c.bytes, 0) << c.name;
    EXPECT_GT(c.transfers, 0u);
    if (c.name.rfind("dp", 0) == 0) saw_dp = true;
    if (c.name == "pp") saw_pp = true;
  }
  EXPECT_TRUE(saw_dp);
  EXPECT_EQ(saw_pp, run.plan.degrees.pipeline > 1);

  // Overlap split is an exact partition of the union span.
  EXPECT_NEAR(s.grad_sync.total_s,
              s.grad_sync.overlapped_s + s.grad_sync.exposed_s,
              1e-9 * std::max(1.0, s.grad_sync.total_s));
  EXPECT_GT(s.grad_sync.total_s, 0.0);
}

TEST(RunStats, WindowMatchesSteadyStateIterationTime) {
  const Topology topo = Topology::homogeneous(2, NicType::kRoCE);
  const int iterations = 4;
  const SimRun run = simulate_with_artifacts(FrameworkConfig::holmes(), topo, 1,
                                          iterations);
  const double window =
      run.artifacts.window_end() - run.artifacts.window_begin();
  EXPECT_NEAR(run.metrics.iteration_time, window / (iterations - 1),
              1e-9 * window);
}

TEST(RunStats, MetricsAndSummaryAgreeOnExposedGradSync) {
  const Topology topo = Topology::hybrid_two_clusters(2);
  const SimRun run =
      simulate_with_artifacts(FrameworkConfig::holmes(), topo, 1);
  const obs::RunSummary s =
      build_run_summary(topo, run.plan, run.metrics, run.artifacts);
  EXPECT_NEAR(s.grad_sync.exposed_s, run.metrics.grad_sync_exposed,
              1e-9 * std::max(1.0, run.metrics.grad_sync_exposed));
  EXPECT_NEAR(s.grad_sync.overlapped_s, run.metrics.grad_sync_overlapped,
              1e-9 * std::max(1.0, run.metrics.grad_sync_overlapped));
}

// The paper's Table 5 ablation: with the overlapped distributed optimizer
// the gradient reduce-scatter hides under the backward pass, so its exposed
// wall time must be strictly below the non-overlapped baseline's on the
// hybrid (IB + RoCE) environment.
TEST(RunStats, OverlappedOptimizerExposesLessGradSyncOnHybrid) {
  const Topology topo = Topology::hybrid_two_clusters(2);

  FrameworkConfig overlapped = FrameworkConfig::holmes();
  overlapped.dp_sync = optimizer::DpSyncConfig::overlapped();
  FrameworkConfig sequential = FrameworkConfig::holmes();
  sequential.dp_sync = optimizer::DpSyncConfig::distributed();

  const SimRun with = simulate_with_artifacts(overlapped, topo, 1);
  const SimRun without = simulate_with_artifacts(sequential, topo, 1);

  EXPECT_GT(with.metrics.grad_sync_overlapped, 0.0);
  EXPECT_LT(with.metrics.grad_sync_exposed, without.metrics.grad_sync_exposed);
  // And the hidden time is the dominant share for the overlapped run.
  EXPECT_GT(with.metrics.grad_sync_overlapped,
            with.metrics.grad_sync_exposed);
}

TEST(RunStats, SummaryJsonRoundTripIsStable) {
  const Topology topo = Topology::homogeneous(2, NicType::kInfiniBand);
  const SimRun run =
      simulate_with_artifacts(FrameworkConfig::holmes(), topo, 1);
  const obs::RunSummary s =
      build_run_summary(topo, run.plan, run.metrics, run.artifacts);
  std::ostringstream a;
  std::ostringstream b;
  obs::write_json(a, s);
  obs::write_json(b, s);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"schema\":\"holmes.run_summary.v1\""),
            std::string::npos);
}

}  // namespace
}  // namespace holmes::core
