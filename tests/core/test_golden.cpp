/// Golden regression suite: locks the calibrated reproduction numbers so
/// accidental changes to the cost model, fabric catalog, or simulator
/// semantics surface immediately. Bands are deliberately tight (±4 TFLOPS
/// around the values recorded in EXPERIMENTS.md) — if a deliberate
/// re-calibration moves them, update EXPERIMENTS.md alongside this file.

#include <gtest/gtest.h>

#include "core/experiment.h"

namespace holmes::core {
namespace {

double table_tflops(NicEnv env, int nodes, int group) {
  return run_experiment(FrameworkConfig::holmes().without_self_adapting(), env,
                        nodes, group)
      .tflops_per_gpu;
}

TEST(Golden, Table1Anchor) {
  EXPECT_NEAR(table_tflops(NicEnv::kInfiniBand, 4, 1), 197.0, 4.0);
  EXPECT_NEAR(table_tflops(NicEnv::kRoCE, 4, 1), 166.0, 4.0);
  EXPECT_NEAR(table_tflops(NicEnv::kEthernet, 4, 1), 125.0, 4.0);
  EXPECT_NEAR(table_tflops(NicEnv::kHybrid, 4, 1), 169.0, 4.0);
}

TEST(Golden, Table3SelectedCells) {
  // Group 3 at 8 nodes (the Fig. 6 / Table 5 workload).
  EXPECT_NEAR(table_tflops(NicEnv::kInfiniBand, 8, 3), 198.0, 4.0);
  EXPECT_NEAR(table_tflops(NicEnv::kEthernet, 8, 3), 122.0, 4.0);
  // Group 4 at 6 nodes.
  EXPECT_NEAR(table_tflops(NicEnv::kRoCE, 6, 4), 181.0, 4.0);
}

TEST(Golden, Table5Ablation) {
  const FrameworkConfig h = FrameworkConfig::holmes();
  EXPECT_NEAR(run_experiment(h, NicEnv::kHybrid, 8, 3).tflops_per_gpu, 175.0,
              4.0);
  EXPECT_NEAR(run_experiment(FrameworkConfig::megatron_lm(), NicEnv::kHybrid,
                             8, 3)
                  .tflops_per_gpu,
              99.0, 4.0);
  EXPECT_NEAR(run_experiment(h.without_self_adapting()
                                 .without_overlapped_optimizer(),
                             NicEnv::kHybrid, 8, 3)
                  .tflops_per_gpu,
              162.0, 4.0);
}

TEST(Golden, Fig3ReduceScatterSeconds) {
  const FrameworkConfig fw = FrameworkConfig::holmes()
                                 .without_self_adapting()
                                 .without_overlapped_optimizer();
  EXPECT_NEAR(run_experiment(fw, NicEnv::kInfiniBand, 4, 1).grad_sync_span,
              0.71, 0.1);
  EXPECT_NEAR(run_experiment(fw, NicEnv::kEthernet, 4, 1).grad_sync_span, 4.64,
              0.5);
}

TEST(Golden, DeterministicAcrossRuns) {
  const IterationMetrics a =
      run_experiment(FrameworkConfig::holmes(), NicEnv::kHybrid, 4, 1);
  const IterationMetrics b =
      run_experiment(FrameworkConfig::holmes(), NicEnv::kHybrid, 4, 1);
  EXPECT_DOUBLE_EQ(a.iteration_time, b.iteration_time);
  EXPECT_DOUBLE_EQ(a.grad_sync_span, b.grad_sync_span);
}

}  // namespace
}  // namespace holmes::core
