#include "core/faults.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/experiment.h"
#include "obs/self_profile.h"
#include "sim/scenario_runner.h"
#include "util/error.h"
#include "util/json.h"
#include "verify/rules.h"

namespace holmes::core {
namespace {

net::Topology hybrid() { return make_environment(NicEnv::kHybrid, 4); }

/// The CI fixture scenario: the first RoCE node runs compute 2x slow.
FaultPlan straggler_plan(double slowdown = 2.0) {
  FaultPlan plan;
  ComputeStraggler straggler;
  straggler.cluster = 1;
  straggler.node_in_cluster = 0;
  straggler.slowdown = slowdown;
  plan.stragglers.push_back(straggler);
  return plan;
}

// ---------------------------------------------------------------------------
// Schema round-trip
// ---------------------------------------------------------------------------

TEST(FaultPlan, JsonRoundTripsByteExactly) {
  FaultPlan plan = straggler_plan();
  NicDegradation window;
  window.cluster = 1;
  window.begin_s = 2.0;
  window.end_s = 6.5;
  window.bandwidth_factor = 0.5;
  plan.nic_degradation.push_back(window);
  plan.node_failure = {20.0, 1, 1};
  plan.checkpoint = {1, 0.5, 2.0};
  plan.seed = 99;

  const std::string first = fault_plan_json(plan);
  const FaultPlan reparsed = parse_fault_plan(first);
  EXPECT_EQ(fault_plan_json(reparsed), first);
  EXPECT_EQ(reparsed.seed, 99u);
  ASSERT_EQ(reparsed.nic_degradation.size(), 1u);
  EXPECT_EQ(reparsed.nic_degradation[0].end_s, 6.5);
  ASSERT_EQ(reparsed.stragglers.size(), 1u);
  EXPECT_EQ(reparsed.stragglers[0].slowdown, 2.0);
  EXPECT_TRUE(reparsed.has_node_failure());
  EXPECT_EQ(reparsed.checkpoint.period_iterations, 1);
}

TEST(FaultPlan, ParseAcceptsMinimalDocumentWithDefaults) {
  const FaultPlan plan =
      parse_fault_plan("{\"schema\":\"holmes.fault_plan.v1\"}");
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(plan.has_node_failure());
  EXPECT_EQ(plan.seed, 0x5EEDu);
}

TEST(FaultPlan, ParseRejectsWrongSchemaAndUnknownKeys) {
  EXPECT_THROW(parse_fault_plan("{\"schema\":\"holmes.fault_plan.v2\"}"),
               ConfigError);
  EXPECT_THROW(parse_fault_plan("{}"), ConfigError);
  EXPECT_THROW(parse_fault_plan("{\"schema\":\"holmes.fault_plan.v1\","
                                "\"stragglerz\":[]}"),
               ConfigError);
  EXPECT_THROW(
      parse_fault_plan("{\"schema\":\"holmes.fault_plan.v1\","
                       "\"stragglers\":[{\"slowdwn\":2}]}"),
      ConfigError);
}

// ---------------------------------------------------------------------------
// HV501-503 lints
// ---------------------------------------------------------------------------

TEST(FaultLint, CleanPlanChecksAllThreeRules) {
  const verify::LintReport report = lint_fault_plan(straggler_plan(), hybrid());
  EXPECT_TRUE(report.ok());
  for (const char* rule : {verify::kRuleFaultWindowSane,
                           verify::kRuleFaultScopeValid,
                           verify::kRuleCheckpointModelSane}) {
    EXPECT_FALSE(report.fired(rule)) << rule;
  }
  EXPECT_EQ(report.rules_checked().size(), 3u);
}

TEST(FaultLint, MalformedWindowFiresHV501) {
  FaultPlan plan;
  NicDegradation window;
  window.begin_s = 5.0;
  window.end_s = 5.0;  // not after begin
  window.bandwidth_factor = 0.5;
  plan.nic_degradation.push_back(window);
  const verify::LintReport report = lint_fault_plan(plan, hybrid());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.fired(verify::kRuleFaultWindowSane));

  FaultPlan negative_factor;
  window.end_s = 6.0;
  window.bandwidth_factor = 0.0;
  negative_factor.nic_degradation.push_back(window);
  EXPECT_TRUE(lint_fault_plan(negative_factor, hybrid())
                  .fired(verify::kRuleFaultWindowSane));
}

TEST(FaultLint, WindowBeyondHorizonWarns) {
  FaultPlan plan;
  NicDegradation window;
  window.begin_s = 100.0;
  window.end_s = 200.0;
  window.bandwidth_factor = 0.5;
  plan.nic_degradation.push_back(window);
  const verify::LintReport report =
      lint_fault_plan(plan, hybrid(), /*horizon_s=*/50.0);
  EXPECT_TRUE(report.ok()) << "a dormant window is a warning, not an error";
  EXPECT_TRUE(report.fired(verify::kRuleFaultWindowSane));
  EXPECT_EQ(report.count(verify::Severity::kWarning), 1u);
}

TEST(FaultLint, UnresolvableScopeFiresHV502) {
  FaultPlan plan = straggler_plan();
  plan.stragglers[0].cluster = 99;
  EXPECT_TRUE(
      lint_fault_plan(plan, hybrid()).fired(verify::kRuleFaultScopeValid));

  FaultPlan bad_failure;
  bad_failure.node_failure = {10.0, 0, 77};
  bad_failure.checkpoint = {1, 0.1, 1.0};
  EXPECT_TRUE(lint_fault_plan(bad_failure, hybrid())
                  .fired(verify::kRuleFaultScopeValid));
}

TEST(FaultLint, NodeFailureWithoutCheckpointFiresHV503) {
  FaultPlan plan;
  plan.node_failure = {10.0, 1, 0};
  const verify::LintReport report = lint_fault_plan(plan, hybrid());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.fired(verify::kRuleCheckpointModelSane));

  plan.checkpoint = {1, 0.5, 2.0};
  EXPECT_FALSE(lint_fault_plan(plan, hybrid())
                   .fired(verify::kRuleCheckpointModelSane));
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

TEST(FaultLowering, StragglerScopeResolvesToMemberRanks) {
  const net::Topology topo = hybrid();
  const Perturbations perturb = lower_fault_plan(straggler_plan(), topo);
  // Cluster 1's first node on the 2x8:ib+2x8:roce fixture is ranks 16-23.
  EXPECT_EQ(perturb.device_slowdown.size(), 8u);
  for (int rank = 16; rank < 24; ++rank) {
    ASSERT_TRUE(perturb.device_slowdown.count(rank)) << rank;
    EXPECT_EQ(perturb.device_slowdown.at(rank), 2.0);
  }
}

TEST(FaultLowering, IdentitySlowdownLowersToNothing) {
  const Perturbations perturb =
      lower_fault_plan(straggler_plan(/*slowdown=*/1.0), hybrid());
  EXPECT_TRUE(perturb.empty());
}

TEST(FaultLowering, OverlappingStragglerScopesCompound) {
  FaultPlan plan = straggler_plan(2.0);
  ComputeStraggler whole_cluster;
  whole_cluster.cluster = 1;
  whole_cluster.slowdown = 1.5;
  plan.stragglers.push_back(whole_cluster);
  const Perturbations perturb = lower_fault_plan(plan, hybrid());
  EXPECT_EQ(perturb.device_slowdown.at(16), 3.0);  // 2.0 * 1.5
  EXPECT_EQ(perturb.device_slowdown.at(24), 1.5);  // cluster-wide only
}

TEST(FaultLowering, WindowsCarrySeedAndScopes) {
  FaultPlan plan;
  NicDegradation window;
  window.cluster = 0;
  window.begin_s = 1.0;
  window.end_s = 2.0;
  window.bandwidth_factor = 0.25;
  plan.nic_degradation.push_back(window);
  plan.seed = 1234;
  const Perturbations perturb = lower_fault_plan(plan, hybrid());
  ASSERT_EQ(perturb.nic_degradation.size(), 1u);
  EXPECT_EQ(perturb.nic_degradation[0].bandwidth_factor, 0.25);
  EXPECT_EQ(perturb.seed, 1234u);
  EXPECT_FALSE(perturb.empty());
}

// ---------------------------------------------------------------------------
// Recovery experiment
// ---------------------------------------------------------------------------

TEST(FaultRecovery, MeetsAcceptanceBarForTwoXStraggler) {
  const RecoveryReport report = run_fault_injection(hybrid(), straggler_plan());
  ASSERT_TRUE(report.valid);
  EXPECT_TRUE(report.lint.ok());
  EXPECT_LT(report.faulted.throughput, report.fault_free.throughput);
  EXPECT_GT(report.replanned.throughput, report.faulted.throughput);
  // The repo's acceptance bar: measured-speed re-planning must win back at
  // least half the throughput a 2.0x straggler destroys.
  EXPECT_GE(report.recovery_ratio, 0.5);
  EXPECT_FALSE(report.node_lost);
  EXPECT_EQ(report.static_partition.size(), report.replanned_partition.size());
  EXPECT_FALSE(report.bucket_deltas.empty());
}

TEST(FaultRecovery, ReportJsonIsByteStableAndUnstamped) {
  const FaultPlan plan = straggler_plan();
  std::ostringstream a;
  write_recovery_report_json(a, run_fault_injection(hybrid(), plan));
  std::ostringstream b;
  write_recovery_report_json(b, run_fault_injection(hybrid(), plan));
  EXPECT_EQ(a.str(), b.str()) << "recovery reports must be byte-stable";

  const JsonValue doc = json_parse(a.str());
  EXPECT_EQ(doc.at("schema").as_string(), kRecoveryReportSchema);
  EXPECT_EQ(doc.at("verdict").as_string(), "pass");
  EXPECT_EQ(doc.find("fingerprint"), nullptr)
      << "recovery reports are deliberately unstamped (cross-machine CI "
         "goldens)";
  EXPECT_GE(doc.at("recovery_ratio").as_number(), 0.5);
  EXPECT_EQ(doc.at("fault_plan").at("schema").as_string(), kFaultPlanSchema);
}

TEST(FaultRecovery, InvalidPlanShortCircuitsWithoutSimulating) {
  FaultPlan plan = straggler_plan();
  plan.stragglers[0].cluster = 99;
  const RecoveryReport report = run_fault_injection(hybrid(), plan);
  EXPECT_FALSE(report.valid);
  EXPECT_FALSE(report.lint.ok());
  EXPECT_EQ(report.fault_free.makespan_s, 0);
  std::ostringstream out;
  write_recovery_report_json(out, report);
  EXPECT_EQ(json_parse(out.str()).at("verdict").as_string(), "fail");
}

TEST(FaultRecovery, NodeLossAccountsCheckpointReplayDowntime) {
  FaultPlan plan;
  plan.node_failure = {20.0, 1, 1};
  plan.checkpoint = {1, 0.5, 2.0};
  const RecoveryReport report = run_fault_injection(hybrid(), plan);
  ASSERT_TRUE(report.valid);
  EXPECT_TRUE(report.node_lost);
  EXPECT_TRUE(report.recoverable);
  EXPECT_EQ(report.failed_ranks, 8);
  EXPECT_GE(report.checkpointed_iterations, 1);
  EXPECT_GE(report.lost_work_s, 0);
  EXPECT_EQ(report.downtime_s, report.lost_work_s + report.restart_s);
  EXPECT_GT(report.elastic_throughput, 0);
  // Survivors are fewer, so the elastic steady state is slower than the
  // full machine's.
  EXPECT_LT(report.elastic_throughput, report.fault_free.throughput);
  // The composed recovery timeline cannot beat simply never failing.
  EXPECT_GT(report.recovered_makespan_s, report.fault_free.makespan_s);
  // Synthetic recovery buckets join the critical-path delta.
  bool found_restart = false;
  for (const RecoveryReport::BucketDelta& d : report.bucket_deltas) {
    if (d.name == "recovery/restart") {
      found_restart = true;
      EXPECT_EQ(d.faulted_s, 2.0);
    }
  }
  EXPECT_TRUE(found_restart);
}

TEST(FaultRecovery, HV504IsCheckedOnEveryLeg) {
  const RecoveryReport report = run_fault_injection(hybrid(), straggler_plan());
  EXPECT_FALSE(report.lint.fired(verify::kRuleRecoveryInvariant));
  bool checked = false;
  for (const std::string& rule : report.lint.rules_checked()) {
    if (rule == verify::kRuleRecoveryInvariant) checked = true;
  }
  EXPECT_TRUE(checked);
}

// ---------------------------------------------------------------------------
// SimMemo interaction
// ---------------------------------------------------------------------------

TEST(FaultMemo, ActiveRateTimelineBypassesTheMemoAndCounts) {
  const net::Topology topo = hybrid();
  const TrainingPlan plan =
      Planner(FrameworkConfig::holmes()).plan(topo, model::parameter_group(1));

  FaultPlan faults;
  NicDegradation window;
  window.cluster = 1;
  window.begin_s = 0.0;
  window.end_s = 30.0;
  window.bandwidth_factor = 0.25;
  faults.nic_degradation.push_back(window);
  const Perturbations degraded = lower_fault_plan(faults, topo);

  obs::SelfProfiler profiler;
  sim::SimMemo memo;
  TrainingSimulator simulator;
  simulator.set_memo(&memo);

  // Clean run seeds the memo; the degraded run must not consult it (the
  // memo key hashes structure, not execution-time rates) nor poison it.
  const IterationMetrics clean = simulator.run(topo, plan, 2);
  const std::size_t memo_after_clean = memo.size();
  const IterationMetrics slow = simulator.run(topo, plan, 2, degraded);
  EXPECT_EQ(memo.size(), memo_after_clean)
      << "a faulted run must never enter the memo";
  EXPECT_GT(slow.iteration_time, clean.iteration_time);

  // Re-running degraded is deterministic and still bypasses.
  const IterationMetrics slow_again = simulator.run(topo, plan, 2, degraded);
  EXPECT_DOUBLE_EQ(slow.iteration_time, slow_again.iteration_time);

  // And the clean scenario still hits the memo with the clean result.
  const IterationMetrics clean_again = simulator.run(topo, plan, 2);
  EXPECT_DOUBLE_EQ(clean.iteration_time, clean_again.iteration_time);

  memo.flush_profile();
  const obs::SelfProfileCounters& counters = profiler.snapshot().counters;
  EXPECT_GE(counters.memo_bypass, 2u);
  EXPECT_GE(counters.memo_hits, 1u);
}

TEST(FaultMemo, BypassCountEqualsRateActiveRunsInMixedBatch) {
  const net::Topology topo = hybrid();
  const TrainingPlan plan =
      Planner(FrameworkConfig::holmes()).plan(topo, model::parameter_group(1));

  FaultPlan faults;
  NicDegradation window;
  window.cluster = 1;
  window.begin_s = 1.0;
  window.end_s = 10.0;
  window.bandwidth_factor = 0.5;
  faults.nic_degradation.push_back(window);
  const Perturbations degraded = lower_fault_plan(faults, topo);

  // A straggler perturbs durations but installs no rate timeline, so it
  // must take the memo path (distinct key), never the bypass.
  Perturbations straggler;
  straggler.device_slowdown[0] = 2.0;

  obs::SelfProfiler profiler;
  sim::SimMemo memo;
  TrainingSimulator simulator;
  simulator.set_memo(&memo);

  // Mixed batch: faulted (rate-active) and unfaulted scenarios interleaved.
  // Exactly the rate-active runs bypass — no more (clean/straggler runs
  // must not inflate the counter), no fewer (every degraded run counts,
  // memo warm or cold).
  const std::vector<const Perturbations*> batch = {
      nullptr, &degraded, nullptr, &straggler, &degraded, &degraded, nullptr,
  };
  std::size_t rate_active = 0;
  for (const Perturbations* perturb : batch) {
    simulator.run(topo, plan, 2, perturb == nullptr ? Perturbations{} : *perturb);
    if (perturb == &degraded) ++rate_active;
  }

  memo.flush_profile();
  const obs::SelfProfileCounters& counters = profiler.snapshot().counters;
  EXPECT_EQ(counters.memo_bypass, rate_active)
      << "memo_bypass must equal the rate-active run count exactly";
  // Two distinct structural keys entered the memo: clean and straggler.
  EXPECT_EQ(memo.size(), 2u);
  EXPECT_EQ(counters.memo_misses, 2u);
  // 3 clean runs (1 miss, 2 hits) + 1 straggler run (1 miss, 0 hits).
  EXPECT_EQ(counters.memo_hits, 2u);
}

TEST(FaultMemo, DifferentFaultSchedulesNeverCollide) {
  const net::Topology topo = hybrid();
  const TrainingPlan plan =
      Planner(FrameworkConfig::holmes()).plan(topo, model::parameter_group(1));
  sim::SimMemo memo;
  TrainingSimulator simulator;
  simulator.set_memo(&memo);

  // Stragglers and jitter seeds perturb task *durations*, so they reach
  // the memo path — distinct schedules must produce distinct keys.
  Perturbations straggler_a;
  straggler_a.device_slowdown[16] = 2.0;
  Perturbations straggler_b;
  straggler_b.device_slowdown[16] = 3.0;
  const IterationMetrics a = simulator.run(topo, plan, 2, straggler_a);
  const IterationMetrics b = simulator.run(topo, plan, 2, straggler_b);
  EXPECT_NE(a.iteration_time, b.iteration_time)
      << "distinct fault schedules must not collide in the memo";

  Perturbations jitter_a;
  jitter_a.compute_jitter = 0.1;
  jitter_a.seed = 42;
  Perturbations jitter_b = jitter_a;
  jitter_b.seed = 43;
  const IterationMetrics ja = simulator.run(topo, plan, 2, jitter_a);
  const IterationMetrics jb = simulator.run(topo, plan, 2, jitter_b);
  EXPECT_NE(ja.iteration_time, jb.iteration_time);

  // Re-running each scenario reproduces its own memoized result exactly.
  EXPECT_DOUBLE_EQ(simulator.run(topo, plan, 2, straggler_a).iteration_time,
                   a.iteration_time);
  EXPECT_DOUBLE_EQ(simulator.run(topo, plan, 2, jitter_b).iteration_time,
                   jb.iteration_time);
}

}  // namespace
}  // namespace holmes::core
