/// Locks the full Table 3 grid's trends: for every parameter group and node
/// count, the environment ordering and scaling behaviour the paper reports
/// must hold cell-by-cell (48 simulations, one sweep).

#include <gtest/gtest.h>

#include <map>

#include "core/experiment.h"
#include "util/thread_pool.h"

namespace holmes::core {
namespace {

struct Key {
  int group;
  NicEnv env;
  int nodes;
  bool operator<(const Key& other) const {
    return std::tie(group, env, nodes) <
           std::tie(other.group, other.env, other.nodes);
  }
};

class Table3Grid : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    grid_ = new std::map<Key, IterationMetrics>();
    const FrameworkConfig fw = FrameworkConfig::holmes().without_self_adapting();
    std::vector<Key> keys;
    for (int group : {1, 2, 3, 4}) {
      for (NicEnv env : {NicEnv::kInfiniBand, NicEnv::kRoCE, NicEnv::kEthernet,
                         NicEnv::kHybrid}) {
        for (int nodes : {4, 6, 8}) keys.push_back({group, env, nodes});
      }
    }
    std::vector<IterationMetrics> metrics(keys.size());
    ThreadPool pool;
    pool.parallel_for(keys.size(), [&](std::size_t i) {
      metrics[i] =
          run_experiment(fw, keys[i].env, keys[i].nodes, keys[i].group);
    });
    for (std::size_t i = 0; i < keys.size(); ++i) {
      (*grid_)[keys[i]] = metrics[i];
    }
  }
  static void TearDownTestSuite() {
    delete grid_;
    grid_ = nullptr;
  }

  static double tflops(int group, NicEnv env, int nodes) {
    return grid_->at({group, env, nodes}).tflops_per_gpu;
  }
  static double throughput(int group, NicEnv env, int nodes) {
    return grid_->at({group, env, nodes}).throughput;
  }

  static std::map<Key, IterationMetrics>* grid_;
};

std::map<Key, IterationMetrics>* Table3Grid::grid_ = nullptr;

TEST_F(Table3Grid, InfiniBandLeadsEveryCell) {
  for (int group : {1, 2, 3, 4}) {
    for (int nodes : {4, 6, 8}) {
      for (NicEnv other :
           {NicEnv::kRoCE, NicEnv::kEthernet, NicEnv::kHybrid}) {
        EXPECT_GT(tflops(group, NicEnv::kInfiniBand, nodes),
                  tflops(group, other, nodes))
            << "group " << group << " nodes " << nodes;
      }
    }
  }
}

TEST_F(Table3Grid, EthernetTrailsEveryCell) {
  for (int group : {1, 2, 3, 4}) {
    for (int nodes : {4, 6, 8}) {
      for (NicEnv other :
           {NicEnv::kInfiniBand, NicEnv::kRoCE, NicEnv::kHybrid}) {
        EXPECT_LT(tflops(group, NicEnv::kEthernet, nodes),
                  tflops(group, other, nodes))
            << "group " << group << " nodes " << nodes;
      }
    }
  }
}

TEST_F(Table3Grid, HybridStaysWithinTenPercentOfRoce) {
  // The headline: heterogeneous clusters under Holmes perform like a
  // homogeneous RDMA cluster.
  for (int group : {1, 2, 3, 4}) {
    for (int nodes : {4, 6, 8}) {
      EXPECT_NEAR(tflops(group, NicEnv::kHybrid, nodes) /
                      tflops(group, NicEnv::kRoCE, nodes),
                  1.0, 0.12)
          << "group " << group << " nodes " << nodes;
    }
  }
}

TEST_F(Table3Grid, PerGpuTflopsDeclinesWithScaleAtFixedBatch) {
  for (int group : {1, 2, 3, 4}) {
    for (NicEnv env : {NicEnv::kInfiniBand, NicEnv::kRoCE, NicEnv::kEthernet,
                       NicEnv::kHybrid}) {
      EXPECT_GE(tflops(group, env, 4), tflops(group, env, 8) * 0.999)
          << to_string(env) << " group " << group;
    }
  }
}

TEST_F(Table3Grid, AggregateThroughputGrowsWithScale) {
  for (int group : {1, 2, 3, 4}) {
    for (NicEnv env : {NicEnv::kInfiniBand, NicEnv::kRoCE, NicEnv::kEthernet,
                       NicEnv::kHybrid}) {
      EXPECT_GT(throughput(group, env, 8), throughput(group, env, 4))
          << to_string(env) << " group " << group;
    }
  }
}

TEST_F(Table3Grid, BiggerBatchRaisesUtilization) {
  // Groups 2 and 4 double groups 1 and 3's batch on the same model.
  for (NicEnv env : {NicEnv::kInfiniBand, NicEnv::kRoCE, NicEnv::kEthernet,
                     NicEnv::kHybrid}) {
    for (int nodes : {4, 6, 8}) {
      EXPECT_GT(tflops(2, env, nodes), tflops(1, env, nodes))
          << to_string(env) << " nodes " << nodes;
      EXPECT_GT(tflops(4, env, nodes), tflops(3, env, nodes))
          << to_string(env) << " nodes " << nodes;
    }
  }
}

}  // namespace
}  // namespace holmes::core
