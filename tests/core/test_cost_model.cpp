#include "core/cost_model.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace holmes::core {
namespace {

TEST(CostModel, ComputeSecondsScalesWithFlops) {
  CostModel cm;
  const SimTime one = cm.compute_seconds(1e12, 1);
  const SimTime two = cm.compute_seconds(2e12, 1);
  EXPECT_NEAR(two / one, 2.0, 1e-12);
}

TEST(CostModel, ComputeSecondsMatchesPeakTimesMfu) {
  CostModel cm;
  cm.peak_tflops = 312.0;
  cm.mfu = 0.5;
  // 156 TFLOP at an effective 156 TFLOP/s -> 1 second.
  EXPECT_NEAR(cm.compute_seconds(156e12, 1), 1.0, 1e-12);
}

TEST(CostModel, TensorParallelismAppliesEfficiencyPenalty) {
  CostModel cm;
  const SimTime t1 = cm.compute_seconds(1e12, 1);
  const SimTime t8 = cm.compute_seconds(1e12, 8);
  EXPECT_NEAR(t8 / t1, 1.0 / cm.tp_efficiency, 1e-12);
}

TEST(CostModel, OptimizerSeconds) {
  CostModel cm;
  cm.optimizer_elems_per_sec = 1e9;
  EXPECT_NEAR(cm.optimizer_seconds(2e9), 2.0, 1e-12);
}

TEST(CostModel, NicInterferenceOrdering) {
  CostModel cm;
  EXPECT_DOUBLE_EQ(cm.nic_interference(net::NicType::kInfiniBand), 1.0);
  EXPECT_GT(cm.nic_interference(net::NicType::kRoCE), 1.0);
  EXPECT_GT(cm.nic_interference(net::NicType::kEthernet),
            cm.nic_interference(net::NicType::kInfiniBand));
}

TEST(CostModel, RejectsNegativeInputs) {
  CostModel cm;
  EXPECT_THROW(cm.compute_seconds(-1.0, 1), InternalError);
  EXPECT_THROW(cm.compute_seconds(1.0, 0), InternalError);
  EXPECT_THROW(cm.optimizer_seconds(-1.0), InternalError);
}

TEST(CostModel, ForwardFractionIsOneThird) {
  // Backward ~ 2x forward for transformer GEMMs; the split must stay
  // consistent with the Eq. (6) decomposition used everywhere.
  CostModel cm;
  EXPECT_NEAR(cm.forward_fraction, 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace holmes::core
