#include "core/report.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace holmes::core {
namespace {

IterationMetrics metrics(double tflops, double thr) {
  IterationMetrics m;
  m.tflops_per_gpu = tflops;
  m.throughput = thr;
  m.iteration_time = 1.0;
  return m;
}

ExperimentGrid sample() {
  ExperimentGrid grid("Demo grid", "Group");
  grid.set("1", "InfiniBand", metrics(197, 99.23));
  grid.set("1", "RoCE", metrics(160, 80.54));
  grid.set("2", "InfiniBand", metrics(206, 103.66));
  return grid;
}

TEST(ExperimentGrid, TracksRowsAndColumnsInInsertionOrder) {
  const ExperimentGrid grid = sample();
  EXPECT_EQ(grid.rows(), (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(grid.columns(), (std::vector<std::string>{"InfiniBand", "RoCE"}));
  EXPECT_TRUE(grid.has("1", "RoCE"));
  EXPECT_FALSE(grid.has("2", "RoCE"));
  EXPECT_DOUBLE_EQ(grid.at("1", "InfiniBand").tflops_per_gpu, 197);
  EXPECT_THROW(grid.at("2", "RoCE"), InternalError);
}

TEST(ExperimentGrid, OverwritingACellKeepsShape) {
  ExperimentGrid grid = sample();
  grid.set("1", "RoCE", metrics(165, 83.0));
  EXPECT_EQ(grid.rows().size(), 2u);
  EXPECT_DOUBLE_EQ(grid.at("1", "RoCE").tflops_per_gpu, 165);
}

TEST(ExperimentGrid, TextRendersMissingCellsAsDash) {
  const std::string text = sample().to_text(ExperimentGrid::tflops(), 0);
  EXPECT_NE(text.find("Demo grid"), std::string::npos);
  EXPECT_NE(text.find("197"), std::string::npos);
  EXPECT_NE(text.find("| -"), std::string::npos);  // missing (2, RoCE)
}

TEST(ExperimentGrid, MarkdownHasHeaderSeparator) {
  const std::string md = sample().to_markdown(ExperimentGrid::throughput());
  EXPECT_NE(md.find("### Demo grid"), std::string::npos);
  EXPECT_NE(md.find("| Group | InfiniBand | RoCE |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|---|"), std::string::npos);
  EXPECT_NE(md.find("99.23"), std::string::npos);
}

TEST(ExperimentGrid, CsvHasHeaderAndOneLinePerCell) {
  const std::string csv = sample().to_csv();
  EXPECT_NE(csv.find("row,column,tflops"), std::string::npos);
  // Header + 3 cells = 4 lines.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
  EXPECT_NE(csv.find("1,RoCE,160"), std::string::npos);
}

TEST(ExperimentGrid, ExtractorsPickFields) {
  IterationMetrics m;
  m.tflops_per_gpu = 1;
  m.throughput = 2;
  m.iteration_time = 3;
  m.grad_sync_span = 4;
  m.grad_sync_exposed = 5;
  EXPECT_DOUBLE_EQ(ExperimentGrid::tflops()(m), 1);
  EXPECT_DOUBLE_EQ(ExperimentGrid::throughput()(m), 2);
  EXPECT_DOUBLE_EQ(ExperimentGrid::iteration_seconds()(m), 3);
  EXPECT_DOUBLE_EQ(ExperimentGrid::grad_sync_seconds()(m), 4);
  EXPECT_DOUBLE_EQ(ExperimentGrid::grad_sync_exposed_seconds()(m), 5);
}

TEST(ExperimentGrid, CsvSkipsMissingCellsEntirely) {
  const std::string csv = sample().to_csv();
  // The missing (2, RoCE) cell produces no line at all — no dangling commas
  // or placeholder values a downstream parser could misread.
  EXPECT_EQ(csv.find("2,RoCE"), std::string::npos);
  EXPECT_NE(csv.find("2,InfiniBand"), std::string::npos);
  EXPECT_NE(csv.find("grad_exposed_s"), std::string::npos);
}

TEST(ExperimentGrid, MarkdownRendersMissingCellsAsDash) {
  const std::string md = sample().to_markdown(ExperimentGrid::tflops(), 0);
  // Row 2 has InfiniBand but no RoCE value.
  EXPECT_NE(md.find("| 2 | 206 | - |"), std::string::npos) << md;
}

TEST(ExperimentGrid, EmptyGridRendersHeadersOnly) {
  const ExperimentGrid grid("Empty", "Row");
  const std::string csv = grid.to_csv();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1);  // header only
  const std::string md = grid.to_markdown(ExperimentGrid::tflops());
  EXPECT_NE(md.find("### Empty"), std::string::npos);
}

}  // namespace
}  // namespace holmes::core
