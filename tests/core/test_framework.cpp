#include "core/framework.h"

#include <gtest/gtest.h>

namespace holmes::core {
namespace {

TEST(Framework, HolmesBundlesAllFourComponents) {
  const FrameworkConfig h = FrameworkConfig::holmes();
  EXPECT_EQ(h.name, "Holmes");
  EXPECT_EQ(h.groups, GroupPolicy::kClusterAligned);
  EXPECT_EQ(h.transport, TransportPolicy::kPerGroupBest);
  EXPECT_EQ(h.partition, PartitionPolicy::kSelfAdapting);
  EXPECT_EQ(h.dp_sync.kind,
            optimizer::DpSyncKind::kOverlappedDistributedOptimizer);
  EXPECT_DOUBLE_EQ(h.alpha, 1.05);  // the paper's hyper-parameter
}

TEST(Framework, MegatronLmIsTheNicObliviousBaseline) {
  const FrameworkConfig lm = FrameworkConfig::megatron_lm();
  EXPECT_EQ(lm.groups, GroupPolicy::kLauncherOrder);
  EXPECT_EQ(lm.transport, TransportPolicy::kGlobalEthernetFallback);
  EXPECT_EQ(lm.partition, PartitionPolicy::kUniform);
  EXPECT_EQ(lm.dp_sync.kind, optimizer::DpSyncKind::kAllReduce);
}

TEST(Framework, DeepSpeedDiffersOnlyInOptimizer) {
  const FrameworkConfig lm = FrameworkConfig::megatron_lm();
  const FrameworkConfig ds = FrameworkConfig::megatron_deepspeed();
  EXPECT_EQ(ds.groups, lm.groups);
  EXPECT_EQ(ds.transport, lm.transport);
  EXPECT_EQ(ds.partition, lm.partition);
  EXPECT_EQ(ds.dp_sync.kind, optimizer::DpSyncKind::kDistributedOptimizer);
}

TEST(Framework, LlamaAddsOverlappedOptimizer) {
  const FrameworkConfig llama = FrameworkConfig::megatron_llama();
  EXPECT_EQ(llama.dp_sync.kind,
            optimizer::DpSyncKind::kOverlappedDistributedOptimizer);
  EXPECT_EQ(llama.transport, TransportPolicy::kGlobalEthernetFallback);
}

TEST(Framework, AblationsStripExactlyOneComponent) {
  const FrameworkConfig h = FrameworkConfig::holmes();
  const FrameworkConfig no_sa = h.without_self_adapting();
  EXPECT_EQ(no_sa.partition, PartitionPolicy::kUniform);
  EXPECT_EQ(no_sa.dp_sync.kind, h.dp_sync.kind);
  EXPECT_EQ(no_sa.transport, h.transport);

  const FrameworkConfig no_ov = h.without_overlapped_optimizer();
  EXPECT_EQ(no_ov.partition, h.partition);
  EXPECT_EQ(no_ov.dp_sync.kind, optimizer::DpSyncKind::kDistributedOptimizer);

  const FrameworkConfig no_both =
      h.without_self_adapting().without_overlapped_optimizer();
  EXPECT_EQ(no_both.partition, PartitionPolicy::kUniform);
  EXPECT_EQ(no_both.dp_sync.kind, optimizer::DpSyncKind::kDistributedOptimizer);
  // Automatic NIC Selection and cross-cluster grouping remain.
  EXPECT_EQ(no_both.transport, TransportPolicy::kPerGroupBest);
  EXPECT_EQ(no_both.groups, GroupPolicy::kClusterAligned);
}

TEST(Framework, AblationNamesAreDescriptive) {
  const FrameworkConfig h = FrameworkConfig::holmes();
  EXPECT_NE(h.without_self_adapting().name.find("Self-Adapting"),
            std::string::npos);
  EXPECT_NE(h.without_overlapped_optimizer().name.find("Overlapped"),
            std::string::npos);
}

}  // namespace
}  // namespace holmes::core
