/// Property tests of the task-graph executor on randomized DAGs: for every
/// generated graph, the reported timings must satisfy the simulator's
/// defining invariants regardless of shape.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/executor.h"
#include "util/rng.h"

namespace holmes::sim {
namespace {

struct RandomGraph {
  TaskGraph graph;
  int resources = 0;
};

/// Random DAG: tasks may only depend on lower-numbered tasks, so it is
/// acyclic by construction.
RandomGraph make_random_graph(Rng& rng) {
  RandomGraph out;
  const int resources = static_cast<int>(rng.uniform_int(1, 6));
  std::vector<ResourceId> res;
  std::vector<ResourceId> ports;  // transfer ports, disjoint from compute
  for (int r = 0; r < resources; ++r) {
    res.push_back(out.graph.add_resource("r" + std::to_string(r)));
    ports.push_back(out.graph.add_resource("port" + std::to_string(r)));
  }
  const int tasks = static_cast<int>(rng.uniform_int(1, 60));
  for (int i = 0; i < tasks; ++i) {
    const double kind = rng.uniform01();
    TaskId id;
    if (kind < 0.6) {
      id = out.graph.add_compute(res[static_cast<std::size_t>(
                                     rng.uniform_int(0, resources - 1))],
                                 rng.uniform(0.0, 2.0));
    } else if (kind < 0.9 && resources >= 2) {
      const auto a = static_cast<std::size_t>(rng.uniform_int(0, resources - 1));
      auto b = static_cast<std::size_t>(rng.uniform_int(0, resources - 1));
      if (b == a) b = (b + 1) % static_cast<std::size_t>(resources);
      id = out.graph.add_transfer(ports[a], ports[b],
                                  rng.uniform_int(0, 1 << 20), 1e9,
                                  rng.uniform(0.0, 1e-3));
    } else {
      id = out.graph.add_noop();
    }
    // Random backward dependencies.
    const int deps = static_cast<int>(rng.uniform_int(0, std::min(i, 3)));
    for (int k = 0; k < deps; ++k) {
      out.graph.add_dep(id, static_cast<TaskId>(rng.uniform_int(0, i - 1)));
    }
  }
  out.resources = resources;
  return out;
}

class ExecutorFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExecutorFuzz, InvariantsHoldOnRandomDags) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    RandomGraph rg = make_random_graph(rng);
    const SimResult result = TaskGraphExecutor{}.run(rg.graph);
    const auto& tasks = rg.graph.tasks();

    SimTime max_finish = 0;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const TaskTiming& timing = result.timing(static_cast<TaskId>(i));
      // Time flows forward.
      ASSERT_GE(timing.finish, timing.start);
      ASSERT_GE(timing.start, 0);
      max_finish = std::max(max_finish, timing.finish);
      // No task starts before its dependencies finish.
      for (TaskId dep : tasks[i].deps) {
        ASSERT_GE(timing.start, result.timing(dep).finish - 1e-12)
            << "task " << i << " started before dep " << dep;
      }
      // Durations match the declared cost model.
      if (tasks[i].kind == TaskKind::kCompute) {
        ASSERT_NEAR(timing.finish - timing.start, tasks[i].duration, 1e-12);
      }
      if (tasks[i].kind == TaskKind::kNoop) {
        ASSERT_NEAR(timing.finish - timing.start, 0.0, 1e-12);
      }
    }
    // Makespan is the latest finish.
    ASSERT_NEAR(result.makespan(), max_finish, 1e-12);

    // Serial-resource exclusivity: compute tasks on one resource never
    // overlap.
    std::map<ResourceId, std::vector<std::pair<SimTime, SimTime>>> occupancy;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (tasks[i].kind != TaskKind::kCompute) continue;
      const TaskTiming& timing = result.timing(static_cast<TaskId>(i));
      occupancy[tasks[i].resource].emplace_back(timing.start, timing.finish);
    }
    for (auto& [resource, spans] : occupancy) {
      std::sort(spans.begin(), spans.end());
      SimTime busy = 0;
      for (std::size_t k = 0; k < spans.size(); ++k) {
        busy += spans[k].second - spans[k].first;
        if (k > 0) {
          ASSERT_GE(spans[k].first, spans[k - 1].second - 1e-12)
              << "overlap on resource " << resource;
        }
      }
      // Accounting matches: busy time equals the sum of durations.
      ASSERT_NEAR(result.resource_busy(resource), busy, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace holmes::sim
