/// Property tests of the task-graph executor on randomized DAGs: for every
/// generated graph, the reported timings must satisfy the simulator's
/// defining invariants regardless of shape.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/executor.h"
#include "util/rng.h"

namespace holmes::sim {
namespace {

struct RandomGraph {
  TaskGraph graph;
  int resources = 0;
};

/// Random DAG: tasks may only depend on lower-numbered tasks, so it is
/// acyclic by construction.
RandomGraph make_random_graph(Rng& rng) {
  RandomGraph out;
  const int resources = static_cast<int>(rng.uniform_int(1, 6));
  std::vector<ResourceId> res;
  std::vector<ResourceId> ports;  // transfer ports, disjoint from compute
  for (int r = 0; r < resources; ++r) {
    res.push_back(out.graph.add_resource("r" + std::to_string(r)));
    ports.push_back(out.graph.add_resource("port" + std::to_string(r)));
  }
  const int tasks = static_cast<int>(rng.uniform_int(1, 60));
  for (int i = 0; i < tasks; ++i) {
    const double kind = rng.uniform01();
    TaskId id;
    if (kind < 0.6) {
      id = out.graph.add_compute(res[static_cast<std::size_t>(
                                     rng.uniform_int(0, resources - 1))],
                                 rng.uniform(0.0, 2.0));
    } else if (kind < 0.9 && resources >= 2) {
      const auto a = static_cast<std::size_t>(rng.uniform_int(0, resources - 1));
      auto b = static_cast<std::size_t>(rng.uniform_int(0, resources - 1));
      if (b == a) b = (b + 1) % static_cast<std::size_t>(resources);
      id = out.graph.add_transfer(ports[a], ports[b],
                                  rng.uniform_int(0, 1 << 20), 1e9,
                                  rng.uniform(0.0, 1e-3));
    } else {
      id = out.graph.add_noop();
    }
    // Random backward dependencies.
    const int deps = static_cast<int>(rng.uniform_int(0, std::min(i, 3)));
    for (int k = 0; k < deps; ++k) {
      out.graph.add_dep(id, static_cast<TaskId>(rng.uniform_int(0, i - 1)));
    }
  }
  out.resources = resources;
  return out;
}

class ExecutorFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExecutorFuzz, InvariantsHoldOnRandomDags) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    RandomGraph rg = make_random_graph(rng);
    const SimResult result = TaskGraphExecutor{}.run(rg.graph);
    const auto& tasks = rg.graph.tasks();

    SimTime max_finish = 0;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const TaskTiming& timing = result.timing(static_cast<TaskId>(i));
      // Time flows forward.
      ASSERT_GE(timing.finish, timing.start);
      ASSERT_GE(timing.start, 0);
      max_finish = std::max(max_finish, timing.finish);
      // No task starts before its dependencies finish.
      for (TaskId dep : rg.graph.deps(static_cast<TaskId>(i))) {
        ASSERT_GE(timing.start, result.timing(dep).finish - 1e-12)
            << "task " << i << " started before dep " << dep;
      }
      // Durations match the declared cost model.
      if (tasks[i].kind == TaskKind::kCompute) {
        ASSERT_NEAR(timing.finish - timing.start, tasks[i].duration, 1e-12);
      }
      if (tasks[i].kind == TaskKind::kNoop) {
        ASSERT_NEAR(timing.finish - timing.start, 0.0, 1e-12);
      }
    }
    // Makespan is the latest finish.
    ASSERT_NEAR(result.makespan(), max_finish, 1e-12);

    // Serial-resource exclusivity: compute tasks on one resource never
    // overlap.
    std::map<ResourceId, std::vector<std::pair<SimTime, SimTime>>> occupancy;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (tasks[i].kind != TaskKind::kCompute) continue;
      const TaskTiming& timing = result.timing(static_cast<TaskId>(i));
      occupancy[tasks[i].resource].emplace_back(timing.start, timing.finish);
    }
    for (auto& [resource, spans] : occupancy) {
      std::sort(spans.begin(), spans.end());
      SimTime busy = 0;
      for (std::size_t k = 0; k < spans.size(); ++k) {
        busy += spans[k].second - spans[k].first;
        if (k > 0) {
          ASSERT_GE(spans[k].first, spans[k - 1].second - 1e-12)
              << "overlap on resource " << resource;
        }
      }
      // Accounting matches: busy time equals the sum of durations.
      ASSERT_NEAR(result.resource_busy(resource), busy, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

/// The resource-disjoint tie permutation only reorders placements that
/// commute, so on ANY graph — including ones with noop joins releasing
/// same-time dependents — its results must be bitwise identical to the
/// canonical discipline. This is the invariant `holmes_cli check` relies
/// on: a divergence under kPermuteDisjoint is an executor bug, never a
/// property of the graph.
TEST_P(ExecutorFuzz, DisjointPermutationIsOutcomePreserving) {
  Rng rng(GetParam() ^ 0x9E3779B97F4A7C15ull);
  for (int trial = 0; trial < 20; ++trial) {
    RandomGraph rg = make_random_graph(rng);
    const SimResult canonical = TaskGraphExecutor{}.run(rg.graph);
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      ExecutorOptions options;
      options.tie_break = TieBreak::kPermuteDisjoint;
      options.tie_seed = seed;
      const SimResult permuted = TaskGraphExecutor{options}.run(rg.graph);
      ASSERT_EQ(canonical.makespan(), permuted.makespan());
      for (std::size_t i = 0; i < rg.graph.task_count(); ++i) {
        const auto id = static_cast<TaskId>(i);
        ASSERT_EQ(canonical.timing(id).start, permuted.timing(id).start)
            << "task " << i << " seed " << seed;
        ASSERT_EQ(canonical.timing(id).finish, permuted.timing(id).finish)
            << "task " << i << " seed " << seed;
      }
      for (std::size_t r = 0; r < rg.graph.resource_count(); ++r) {
        const auto res = static_cast<ResourceId>(r);
        ASSERT_EQ(canonical.resource_busy(res), permuted.resource_busy(res));
      }
    }
  }
}

/// Default-constructed options are the canonical policy: byte-identical to
/// the no-options executor on the same graphs.
TEST_P(ExecutorFuzz, DefaultOptionsMatchCanonical) {
  Rng rng(GetParam() ^ 0x5DEECE66Dull);
  RandomGraph rg = make_random_graph(rng);
  const SimResult a = TaskGraphExecutor{}.run(rg.graph);
  const SimResult b = TaskGraphExecutor{ExecutorOptions{}}.run(rg.graph);
  ASSERT_EQ(a.makespan(), b.makespan());
  for (std::size_t i = 0; i < rg.graph.task_count(); ++i) {
    const auto id = static_cast<TaskId>(i);
    ASSERT_EQ(a.timing(id).start, b.timing(id).start);
    ASSERT_EQ(a.timing(id).finish, b.timing(id).finish);
  }
}

/// kPermuteAll legitimately changes schedule-order-sensitive graphs: two
/// equal-ready computes of different durations on one resource, with a
/// dependent hanging off the first — some seed must swap them.
TEST(ExecutorTieBreak, PermuteAllSwapsContendingTies) {
  TaskGraph graph;
  const ResourceId gpu = graph.add_resource("gpu0.compute");
  const TaskId first = graph.add_compute(gpu, 1.0, "short");
  graph.add_compute(gpu, 2.0, "long");
  const TaskId dep = graph.add_compute(gpu, 0.5, "after-short");
  graph.add_dep(dep, first);
  const SimResult canonical = TaskGraphExecutor{}.run(graph);
  bool swapped = false;
  for (std::uint64_t seed = 0; seed < 8 && !swapped; ++seed) {
    ExecutorOptions options;
    options.tie_break = TieBreak::kPermuteAll;
    options.tie_seed = seed;
    const SimResult permuted = TaskGraphExecutor{options}.run(graph);
    if (permuted.timing(first).start != canonical.timing(first).start) {
      swapped = true;
    }
  }
  EXPECT_TRUE(swapped);
}

}  // namespace
}  // namespace holmes::sim
