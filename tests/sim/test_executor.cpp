#include "sim/executor.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace holmes::sim {
namespace {

TEST(Executor, SingleComputeTask) {
  TaskGraph g;
  const ResourceId r = g.add_resource("gpu");
  const TaskId t = g.add_compute(r, 2.0);
  SimResult result = TaskGraphExecutor{}.run(g);
  EXPECT_DOUBLE_EQ(result.timing(t).start, 0.0);
  EXPECT_DOUBLE_EQ(result.timing(t).finish, 2.0);
  EXPECT_DOUBLE_EQ(result.makespan(), 2.0);
}

TEST(Executor, SerialResourceQueuesIndependentTasks) {
  TaskGraph g;
  const ResourceId r = g.add_resource("gpu");
  const TaskId a = g.add_compute(r, 1.0);
  const TaskId b = g.add_compute(r, 1.0);
  SimResult result = TaskGraphExecutor{}.run(g);
  // No dependency, but the resource is serial: tasks run back to back.
  EXPECT_DOUBLE_EQ(result.timing(a).finish, 1.0);
  EXPECT_DOUBLE_EQ(result.timing(b).start, 1.0);
  EXPECT_DOUBLE_EQ(result.makespan(), 2.0);
}

TEST(Executor, IndependentResourcesRunInParallel) {
  TaskGraph g;
  const ResourceId r0 = g.add_resource("gpu0");
  const ResourceId r1 = g.add_resource("gpu1");
  g.add_compute(r0, 3.0);
  g.add_compute(r1, 3.0);
  EXPECT_DOUBLE_EQ(TaskGraphExecutor{}.run(g).makespan(), 3.0);
}

TEST(Executor, DependencyDelaysStart) {
  TaskGraph g;
  const ResourceId r0 = g.add_resource("gpu0");
  const ResourceId r1 = g.add_resource("gpu1");
  const TaskId a = g.add_compute(r0, 2.0);
  const TaskId b = g.add_compute(r1, 1.0);
  g.add_dep(b, a);
  SimResult result = TaskGraphExecutor{}.run(g);
  EXPECT_DOUBLE_EQ(result.timing(b).start, 2.0);
  EXPECT_DOUBLE_EQ(result.makespan(), 3.0);
}

TEST(Executor, TransferTimingIsLatencyPlusSerialization) {
  TaskGraph g;
  const ResourceId tx = g.add_resource("tx");
  const ResourceId rx = g.add_resource("rx");
  // 1 MB over 1 MB/s with 0.5 s latency -> finish at 1.5 s.
  const TaskId t = g.add_transfer(tx, rx, 1'000'000, 1e6, 0.5);
  SimResult result = TaskGraphExecutor{}.run(g);
  EXPECT_DOUBLE_EQ(result.timing(t).finish, 1.5);
}

TEST(Executor, PortsFreeAfterSerializationNotLatency) {
  TaskGraph g;
  const ResourceId tx = g.add_resource("tx");
  const ResourceId rx = g.add_resource("rx");
  // Two back-to-back transfers on the same ports: the second starts after
  // the first's serialization (1 s), not after its latency-inclusive finish.
  const TaskId a = g.add_transfer(tx, rx, 1'000'000, 1e6, 10.0);
  const TaskId b = g.add_transfer(tx, rx, 1'000'000, 1e6, 10.0);
  SimResult result = TaskGraphExecutor{}.run(g);
  EXPECT_DOUBLE_EQ(result.timing(a).finish, 11.0);
  EXPECT_DOUBLE_EQ(result.timing(b).start, 1.0);
  EXPECT_DOUBLE_EQ(result.timing(b).finish, 12.0);
}

TEST(Executor, ComputeOverlapsWithTransferOnDifferentResources) {
  TaskGraph g;
  const ResourceId gpu = g.add_resource("gpu");
  const ResourceId tx = g.add_resource("tx");
  const ResourceId rx = g.add_resource("rx");
  g.add_compute(gpu, 5.0);
  g.add_transfer(tx, rx, 5'000'000, 1e6, 0.0);
  // Both take 5 s but use disjoint resources -> total still 5 s.
  EXPECT_DOUBLE_EQ(TaskGraphExecutor{}.run(g).makespan(), 5.0);
}

TEST(Executor, DiamondDependencyJoinsAtMax) {
  TaskGraph g;
  const ResourceId r0 = g.add_resource("a");
  const ResourceId r1 = g.add_resource("b");
  const TaskId src = g.add_noop("src");
  const TaskId left = g.add_compute(r0, 1.0);
  const TaskId right = g.add_compute(r1, 4.0);
  const TaskId join = g.add_noop("join");
  g.add_dep(left, src);
  g.add_dep(right, src);
  g.add_dep(join, left);
  g.add_dep(join, right);
  SimResult result = TaskGraphExecutor{}.run(g);
  EXPECT_DOUBLE_EQ(result.timing(join).finish, 4.0);
}

TEST(Executor, CycleDetected) {
  TaskGraph g;
  const ResourceId r = g.add_resource("r");
  const TaskId a = g.add_compute(r, 1.0);
  const TaskId b = g.add_compute(r, 1.0);
  g.add_dep(a, b);
  g.add_dep(b, a);
  EXPECT_THROW(TaskGraphExecutor{}.run(g), ConfigError);
}

TEST(Executor, ResourceBusyAndUtilization) {
  TaskGraph g;
  const ResourceId r0 = g.add_resource("busy");
  const ResourceId r1 = g.add_resource("half");
  const TaskId a = g.add_compute(r0, 4.0);
  const TaskId b = g.add_compute(r1, 2.0);
  g.add_dep(b, a);  // makespan 6
  SimResult result = TaskGraphExecutor{}.run(g);
  EXPECT_DOUBLE_EQ(result.resource_busy(r0), 4.0);
  EXPECT_DOUBLE_EQ(result.resource_busy(r1), 2.0);
  EXPECT_NEAR(result.resource_utilization(r0), 4.0 / 6.0, 1e-12);
}

TEST(Executor, TagAggregation) {
  TaskGraph g;
  const ResourceId r = g.add_resource("r");
  const ResourceId other_r = g.add_resource("other");
  constexpr TaskTag kTag = 42;
  const TaskId a = g.add_compute(r, 1.0, "x", kTag);
  const TaskId b = g.add_compute(r, 2.0, "y", kTag);
  g.add_compute(other_r, 7.0, "other", 1);
  g.add_dep(b, a);
  SimResult result = TaskGraphExecutor{}.run(g);
  EXPECT_DOUBLE_EQ(result.tag_busy(g, kTag), 3.0);
  EXPECT_DOUBLE_EQ(result.tag_span(g, kTag), 3.0);
  EXPECT_DOUBLE_EQ(result.tag_span(g, 999), 0.0);
}

TEST(Executor, EmptyGraphHasZeroMakespan) {
  TaskGraph g;
  EXPECT_DOUBLE_EQ(TaskGraphExecutor{}.run(g).makespan(), 0.0);
}

class RecordingObserver final : public ExecutionObserver {
 public:
  struct Event {
    TaskId id;
    TaskTiming timing;
    SimTime ready_at;
  };
  std::vector<Event> events;
  int completions = 0;
  SimTime final_makespan = -1;

  void on_task_scheduled(const TaskGraph&, TaskId id, const TaskTiming& timing,
                         SimTime ready_at) override {
    events.push_back({id, timing, ready_at});
  }
  void on_run_complete(const TaskGraph&, const SimResult& result) override {
    ++completions;
    final_makespan = result.makespan();
  }
};

TEST(Executor, ObserverSeesEveryTaskWithQueueWait) {
  TaskGraph g;
  const ResourceId r = g.add_resource("r");
  const TaskId a = g.add_compute(r, 2.0);
  const TaskId b = g.add_compute(r, 1.0);  // queues behind a for 2 s
  RecordingObserver observer;
  const SimResult result = TaskGraphExecutor{}.run(g, &observer);
  ASSERT_EQ(observer.events.size(), 2u);
  EXPECT_EQ(observer.completions, 1);
  EXPECT_DOUBLE_EQ(observer.final_makespan, result.makespan());
  for (const auto& e : observer.events) {
    // Timings reported to the observer match the final result.
    EXPECT_DOUBLE_EQ(e.timing.start, result.timing(e.id).start);
    EXPECT_DOUBLE_EQ(e.timing.finish, result.timing(e.id).finish);
  }
  // Both tasks were ready at t=0; b waited 2 s for the resource.
  const auto& eb = observer.events[0].id == b ? observer.events[0]
                                              : observer.events[1];
  EXPECT_EQ(eb.id, b);
  EXPECT_DOUBLE_EQ(eb.ready_at, 0.0);
  EXPECT_DOUBLE_EQ(eb.timing.start - eb.ready_at, 2.0);
  (void)a;
}

TEST(Executor, NullObserverIsFine) {
  TaskGraph g;
  const ResourceId r = g.add_resource("r");
  g.add_compute(r, 1.0);
  EXPECT_NO_THROW(TaskGraphExecutor{}.run(g, nullptr));
}

TEST(Executor, LargeChainIsLinear) {
  TaskGraph g;
  const ResourceId r = g.add_resource("r");
  TaskId prev = kInvalidTask;
  for (int i = 0; i < 10000; ++i) {
    const TaskId t = g.add_compute(r, 0.001);
    if (prev != kInvalidTask) g.add_dep(t, prev);
    prev = t;
  }
  EXPECT_NEAR(TaskGraphExecutor{}.run(g).makespan(), 10.0, 1e-6);
}

}  // namespace
}  // namespace holmes::sim
