#include "sim/trace.h"

#include <gtest/gtest.h>

#include <sstream>

namespace holmes::sim {
namespace {

/// Minimal structural JSON check: balanced brackets/braces outside strings.
bool json_balanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '[' || c == '{') ++depth;
    else if (c == ']' || c == '}') --depth;
    if (depth < 0) return false;
  }
  return depth == 0 && !in_string;
}

TaskGraph small_graph(SimResult* result_out) {
  TaskGraph g;
  const ResourceId gpu = g.add_resource("gpu0.compute");
  const ResourceId tx = g.add_resource("gpu0.tx");
  const ResourceId rx = g.add_resource("gpu1.rx");
  const TaskId c = g.add_compute(gpu, 1.5, "fwd", 7);
  const TaskId x = g.add_transfer(tx, rx, 1000, 1e6, 1e-6, "act", 3);
  g.add_dep(x, c);
  g.add_noop("join");
  *result_out = TaskGraphExecutor{}.run(g);
  return g;
}

TEST(Trace, ProducesBalancedJsonWithAllRows) {
  SimResult result({}, {}, 0);
  const TaskGraph g = small_graph(&result);
  std::ostringstream os;
  write_chrome_trace(os, g, result);
  const std::string trace = os.str();
  EXPECT_TRUE(json_balanced(trace)) << trace;
  EXPECT_NE(trace.find("\"fwd\""), std::string::npos);
  EXPECT_NE(trace.find("\"act\""), std::string::npos);
  EXPECT_NE(trace.find("gpu0.compute"), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  // Noops are dropped.
  EXPECT_EQ(trace.find("join"), std::string::npos);
}

TEST(Trace, TimestampsAreMicroseconds) {
  SimResult result({}, {}, 0);
  const TaskGraph g = small_graph(&result);
  std::ostringstream os;
  write_chrome_trace(os, g, result);
  // The 1.5 s compute shows up as dur 1.5e6 us.
  EXPECT_NE(os.str().find("\"dur\":1.5e+06"), std::string::npos) << os.str();
}

TEST(Trace, MinDurationFiltersShortTasks) {
  SimResult result({}, {}, 0);
  const TaskGraph g = small_graph(&result);
  TraceOptions options;
  options.min_duration = 1.0;  // keeps the 1.5 s compute, drops the transfer
  std::ostringstream os;
  write_chrome_trace(os, g, result, options);
  EXPECT_NE(os.str().find("\"fwd\""), std::string::npos);
  EXPECT_EQ(os.str().find("\"act\""), std::string::npos);
}

TEST(Trace, EscapesSpecialCharacters) {
  TaskGraph g;
  const ResourceId r = g.add_resource("weird\"name\\with\nstuff");
  g.add_compute(r, 1.0, "label\"quoted\"");
  const SimResult result = TaskGraphExecutor{}.run(g);
  std::ostringstream os;
  write_chrome_trace(os, g, result);
  EXPECT_TRUE(json_balanced(os.str())) << os.str();
  EXPECT_NE(os.str().find("\\\"quoted\\\""), std::string::npos);
}

TEST(Trace, EmptyGraph) {
  TaskGraph g;
  const SimResult result = TaskGraphExecutor{}.run(g);
  std::ostringstream os;
  TraceOptions options;
  options.process_name.clear();  // no metadata row either
  write_chrome_trace(os, g, result, options);
  EXPECT_EQ(os.str(), "[\n]");
}

TEST(Trace, EmitsProcessAndThreadNameMetadata) {
  SimResult result({}, {}, 0);
  const TaskGraph g = small_graph(&result);
  std::ostringstream os;
  write_chrome_trace(os, g, result);
  const std::string trace = os.str();
  EXPECT_TRUE(json_balanced(trace)) << trace;
  // Default process name plus one thread_name row per resource, so Perfetto
  // shows "gpu0.compute" etc. instead of bare tids.
  EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
  EXPECT_NE(trace.find("holmes simulation"), std::string::npos);
  std::size_t rows = 0;
  for (std::size_t at = trace.find("\"thread_name\""); at != std::string::npos;
       at = trace.find("\"thread_name\"", at + 1)) {
    ++rows;
  }
  EXPECT_EQ(rows, g.resource_count());
  EXPECT_NE(trace.find("\"ph\":\"M\""), std::string::npos);
}

TEST(Trace, EmitsCounterTracks) {
  SimResult result({}, {}, 0);
  const TaskGraph g = small_graph(&result);
  std::ostringstream os;
  write_chrome_trace(os, g, result);
  const std::string trace = os.str();
  EXPECT_NE(trace.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(trace.find("\"compute in flight\""), std::string::npos);
  EXPECT_NE(trace.find("\"links busy\""), std::string::npos);
  EXPECT_NE(trace.find("\"bytes in flight\""), std::string::npos);
}

TEST(Trace, CountersCoverTasksBelowMinDuration) {
  SimResult result({}, {}, 0);
  const TaskGraph g = small_graph(&result);
  TraceOptions options;
  options.min_duration = 1e9;  // drop every slice...
  std::ostringstream os;
  write_chrome_trace(os, g, result, options);
  // ...but the counter staircase still reflects them.
  EXPECT_EQ(os.str().find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(os.str().find("\"ph\":\"C\""), std::string::npos);
}

TEST(Trace, CountersCanBeDisabled) {
  SimResult result({}, {}, 0);
  const TaskGraph g = small_graph(&result);
  TraceOptions options;
  options.counters = false;
  std::ostringstream os;
  write_chrome_trace(os, g, result, options);
  EXPECT_EQ(os.str().find("\"ph\":\"C\""), std::string::npos);
  EXPECT_TRUE(json_balanced(os.str()));
}

}  // namespace
}  // namespace holmes::sim
