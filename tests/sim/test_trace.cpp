#include "sim/trace.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "util/json.h"

namespace holmes::sim {
namespace {

/// Minimal structural JSON check: balanced brackets/braces outside strings.
bool json_balanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '[' || c == '{') ++depth;
    else if (c == ']' || c == '}') --depth;
    if (depth < 0) return false;
  }
  return depth == 0 && !in_string;
}

TaskGraph small_graph(SimResult* result_out) {
  TaskGraph g;
  const ResourceId gpu = g.add_resource("gpu0.compute");
  const ResourceId tx = g.add_resource("gpu0.tx");
  const ResourceId rx = g.add_resource("gpu1.rx");
  const TaskId c = g.add_compute(gpu, 1.5, "fwd", 7);
  const TaskId x = g.add_transfer(tx, rx, 1000, 1e6, 1e-6, "act", 3);
  g.add_dep(x, c);
  g.add_noop("join");
  *result_out = TaskGraphExecutor{}.run(g);
  return g;
}

TEST(Trace, ProducesBalancedJsonWithAllRows) {
  SimResult result({}, {}, 0);
  const TaskGraph g = small_graph(&result);
  std::ostringstream os;
  write_chrome_trace(os, g, result);
  const std::string trace = os.str();
  EXPECT_TRUE(json_balanced(trace)) << trace;
  EXPECT_NE(trace.find("\"fwd\""), std::string::npos);
  EXPECT_NE(trace.find("\"act\""), std::string::npos);
  EXPECT_NE(trace.find("gpu0.compute"), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  // Noops are dropped.
  EXPECT_EQ(trace.find("join"), std::string::npos);
}

TEST(Trace, TimestampsAreMicroseconds) {
  SimResult result({}, {}, 0);
  const TaskGraph g = small_graph(&result);
  std::ostringstream os;
  write_chrome_trace(os, g, result);
  // The 1.5 s compute shows up as dur 1.5e6 us.
  EXPECT_NE(os.str().find("\"dur\":1.5e+06"), std::string::npos) << os.str();
}

TEST(Trace, MinDurationFiltersShortTasks) {
  SimResult result({}, {}, 0);
  const TaskGraph g = small_graph(&result);
  TraceOptions options;
  options.min_duration = 1.0;  // keeps the 1.5 s compute, drops the transfer
  std::ostringstream os;
  write_chrome_trace(os, g, result, options);
  EXPECT_NE(os.str().find("\"fwd\""), std::string::npos);
  EXPECT_EQ(os.str().find("\"act\""), std::string::npos);
}

TEST(Trace, EscapesSpecialCharacters) {
  TaskGraph g;
  const ResourceId r = g.add_resource("weird\"name\\with\nstuff");
  g.add_compute(r, 1.0, "label\"quoted\"");
  const SimResult result = TaskGraphExecutor{}.run(g);
  std::ostringstream os;
  write_chrome_trace(os, g, result);
  EXPECT_TRUE(json_balanced(os.str())) << os.str();
  EXPECT_NE(os.str().find("\\\"quoted\\\""), std::string::npos);
}

TEST(Trace, EmptyGraph) {
  TaskGraph g;
  const SimResult result = TaskGraphExecutor{}.run(g);
  std::ostringstream os;
  TraceOptions options;
  options.process_name.clear();  // no metadata row either
  write_chrome_trace(os, g, result, options);
  EXPECT_EQ(os.str(), "[\n]");
}

TEST(Trace, EmitsProcessAndThreadNameMetadata) {
  SimResult result({}, {}, 0);
  const TaskGraph g = small_graph(&result);
  std::ostringstream os;
  write_chrome_trace(os, g, result);
  const std::string trace = os.str();
  EXPECT_TRUE(json_balanced(trace)) << trace;
  // Default process name plus one thread_name row per resource, so Perfetto
  // shows "gpu0.compute" etc. instead of bare tids.
  EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
  EXPECT_NE(trace.find("holmes simulation"), std::string::npos);
  std::size_t rows = 0;
  for (std::size_t at = trace.find("\"thread_name\""); at != std::string::npos;
       at = trace.find("\"thread_name\"", at + 1)) {
    ++rows;
  }
  EXPECT_EQ(rows, g.resource_count());
  EXPECT_NE(trace.find("\"ph\":\"M\""), std::string::npos);
}

TEST(Trace, EmitsCounterTracks) {
  SimResult result({}, {}, 0);
  const TaskGraph g = small_graph(&result);
  std::ostringstream os;
  write_chrome_trace(os, g, result);
  const std::string trace = os.str();
  EXPECT_NE(trace.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(trace.find("\"compute in flight\""), std::string::npos);
  EXPECT_NE(trace.find("\"links busy\""), std::string::npos);
  EXPECT_NE(trace.find("\"bytes in flight\""), std::string::npos);
}

TEST(Trace, CountersCoverTasksBelowMinDuration) {
  SimResult result({}, {}, 0);
  const TaskGraph g = small_graph(&result);
  TraceOptions options;
  options.min_duration = 1e9;  // drop every slice...
  std::ostringstream os;
  write_chrome_trace(os, g, result, options);
  // ...but the counter staircase still reflects them.
  EXPECT_EQ(os.str().find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(os.str().find("\"ph\":\"C\""), std::string::npos);
}

TEST(Trace, CountersCanBeDisabled) {
  SimResult result({}, {}, 0);
  const TaskGraph g = small_graph(&result);
  TraceOptions options;
  options.counters = false;
  std::ostringstream os;
  write_chrome_trace(os, g, result, options);
  EXPECT_EQ(os.str().find("\"ph\":\"C\""), std::string::npos);
  EXPECT_TRUE(json_balanced(os.str()));
}

JsonValue parsed_trace(const TaskGraph& g, const SimResult& result,
                       const TraceOptions& options = {}) {
  std::ostringstream os;
  write_chrome_trace(os, g, result, options);
  return json_parse(os.str());
}

TEST(Trace, OutputIsValidJsonAndEventsReferenceRealTasks) {
  SimResult result({}, {}, 0);
  const TaskGraph g = small_graph(&result);
  const JsonValue trace = parsed_trace(g, result);
  ASSERT_TRUE(trace.is_array());
  for (const JsonValue& event : trace.as_array()) {
    const std::string& ph = event.at("ph").as_string();
    if (ph != "X" && ph != "s" && ph != "f") continue;
    // Every slice and flow endpoint names the task it came from.
    const double task = event.at("args").at("task").as_number();
    EXPECT_GE(task, 0.0);
    EXPECT_LT(task, static_cast<double>(g.task_count()));
  }
}

TEST(Trace, FlowArrowsPairUpAcrossRows) {
  SimResult result({}, {}, 0);
  const TaskGraph g = small_graph(&result);  // one cross-row dep: x -> c
  const JsonValue trace = parsed_trace(g, result);
  std::map<double, const JsonValue*> starts;
  std::map<double, const JsonValue*> finishes;
  for (const JsonValue& event : trace.as_array()) {
    const std::string& ph = event.at("ph").as_string();
    if (ph == "s") starts[event.at("id").as_number()] = &event;
    if (ph == "f") finishes[event.at("id").as_number()] = &event;
  }
  ASSERT_EQ(starts.size(), 1u);
  ASSERT_EQ(finishes.size(), 1u);
  for (const auto& [id, start] : starts) {
    ASSERT_TRUE(finishes.count(id));
    const JsonValue& finish = *finishes[id];
    EXPECT_EQ(start->at("cat").as_string(), "flow");
    EXPECT_EQ(finish.at("bp").as_string(), "e");
    // Arrow runs producer (compute, task 0) -> consumer (transfer, task 1)
    // across distinct rows.
    EXPECT_DOUBLE_EQ(start->at("args").at("task").as_number(), 0.0);
    EXPECT_DOUBLE_EQ(finish.at("args").at("task").as_number(), 1.0);
    EXPECT_NE(start->at("tid").as_number(), finish.at("tid").as_number());
    // "s" anchors at the producer's finish, "f" at the consumer's start —
    // here back-to-back, so the arrow is a point in time.
    EXPECT_DOUBLE_EQ(start->at("ts").as_number(), finish.at("ts").as_number());
  }
}

TEST(Trace, FlowsCanBeDisabled) {
  SimResult result({}, {}, 0);
  const TaskGraph g = small_graph(&result);
  TraceOptions options;
  options.flows = false;
  std::ostringstream os;
  write_chrome_trace(os, g, result, options);
  EXPECT_EQ(os.str().find("\"ph\":\"s\""), std::string::npos);
  EXPECT_EQ(os.str().find("\"ph\":\"f\""), std::string::npos);
}

TEST(Trace, FlowArrowsSkipDroppedSlices) {
  SimResult result({}, {}, 0);
  const TaskGraph g = small_graph(&result);
  TraceOptions options;
  options.min_duration = 1.0;  // drops the transfer slice
  const JsonValue trace = parsed_trace(g, result, options);
  for (const JsonValue& event : trace.as_array()) {
    const std::string& ph = event.at("ph").as_string();
    EXPECT_NE(ph, "s") << "arrow endpoint without a visible slice";
    EXPECT_NE(ph, "f");
  }
}

TEST(Trace, CriticalLaneDuplicatesChainTasks) {
  SimResult result({}, {}, 0);
  const TaskGraph g = small_graph(&result);
  TraceOptions options;
  options.critical_tasks = {0, 1};  // the compute and the transfer
  const JsonValue trace = parsed_trace(g, result, options);

  const double lane = static_cast<double>(g.resource_count());
  std::size_t critical_slices = 0;
  bool lane_named = false;
  for (const JsonValue& event : trace.as_array()) {
    const std::string& ph = event.at("ph").as_string();
    if (ph == "M" && event.at("name").as_string() == "thread_name" &&
        event.at("args").at("name").as_string() == "critical path") {
      lane_named = true;
      EXPECT_DOUBLE_EQ(event.at("tid").as_number(), lane);
    }
    if (ph == "X" && event.at("cat").as_string() == "critical") {
      ++critical_slices;
      EXPECT_DOUBLE_EQ(event.at("tid").as_number(), lane);
    }
  }
  EXPECT_TRUE(lane_named);
  EXPECT_EQ(critical_slices, 2u);
}

TEST(Trace, NoCriticalLaneWithoutCriticalTasks) {
  SimResult result({}, {}, 0);
  const TaskGraph g = small_graph(&result);
  std::ostringstream os;
  write_chrome_trace(os, g, result);
  EXPECT_EQ(os.str().find("critical path"), std::string::npos);
  EXPECT_EQ(os.str().find("\"cat\":\"critical\""), std::string::npos);
}

}  // namespace
}  // namespace holmes::sim
