#include "sim/scenario_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/self_profile.h"
#include "sim/executor.h"
#include "sim/task_graph.h"

namespace holmes::sim {
namespace {

TaskGraph make_graph(double duration, const std::string& label = "a") {
  TaskGraph g;
  const ResourceId r0 = g.add_resource("r0");
  const ResourceId r1 = g.add_resource("r1");
  const TaskId a = g.add_compute(r0, duration, label);
  const TaskId b = g.add_compute(r1, duration * 2);
  const TaskId t = g.add_transfer(r0, r1, 1000, 1e9, 1e-6);
  g.add_dep(t, a);
  g.add_dep(b, t);
  return g;
}

TEST(ScenarioRunner, RunsEveryScenarioExactlyOnce) {
  ScenarioRunner runner(4);
  EXPECT_GE(runner.threads(), 4u);
  std::vector<std::atomic<int>> hits(100);
  runner.run_all(hits.size(),
                 [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ScenarioRunner, ParallelResultsMatchSerial) {
  std::vector<double> serial(32), parallel(32);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    TaskGraph g = make_graph(1e-6 * static_cast<double>(i + 1));
    serial[i] = TaskGraphExecutor{}.run(g).makespan();
  }
  ScenarioRunner runner(4);
  runner.run_all(parallel.size(), [&](std::size_t i) {
    TaskGraph g = make_graph(1e-6 * static_cast<double>(i + 1));
    parallel[i] = TaskGraphExecutor{}.run(g).makespan();
  });
  EXPECT_EQ(serial, parallel);
}

TEST(ScenarioRunner, RethrowsWorkerExceptions) {
  ScenarioRunner runner(2);
  EXPECT_THROW(runner.run_all(8,
                              [](std::size_t i) {
                                if (i == 5) throw std::runtime_error("boom");
                              }),
               std::runtime_error);
}

TEST(ScenarioRunner, CountsScenariosOnCallingThreadProfile) {
  obs::SelfProfiler profiler;
  ScenarioRunner runner(2);
  runner.run_all(7, [](std::size_t) {});
  EXPECT_EQ(profiler.snapshot().counters.scenarios_run, 7u);
}

TEST(SimMemo, HitsOnStructurallyIdenticalGraphs) {
  SimMemo memo;
  TaskGraph g1 = make_graph(1e-6, "first");
  TaskGraph g2 = make_graph(1e-6, "renamed");  // labels must not matter
  const ExecutorOptions options;

  const SimMemo::Key k1 = SimMemo::key(g1, options);
  const SimMemo::Key k2 = SimMemo::key(g2, options);
  EXPECT_TRUE(k1 == k2);

  EXPECT_EQ(memo.find(k1), nullptr);  // miss
  auto result =
      std::make_shared<const SimResult>(TaskGraphExecutor{}.run(g1));
  memo.store(k1, result);
  const auto cached = memo.find(k2);  // hit via the structural twin
  ASSERT_NE(cached, nullptr);
  EXPECT_EQ(cached->makespan(), result->makespan());
  EXPECT_EQ(memo.hits(), 1u);
  EXPECT_EQ(memo.misses(), 1u);
  EXPECT_EQ(memo.size(), 1u);
}

TEST(SimMemo, KeySeparatesStructuresAndOptions) {
  const ExecutorOptions canonical;
  TaskGraph g = make_graph(1e-6);
  const SimMemo::Key base = SimMemo::key(g, canonical);

  // Different numeric structure.
  TaskGraph longer = make_graph(2e-6);
  EXPECT_FALSE(SimMemo::key(longer, canonical) == base);

  // Extra edge.
  TaskGraph extra = make_graph(1e-6);
  extra.add_dep(1, 0);
  EXPECT_FALSE(SimMemo::key(extra, canonical) == base);

  // Same graph, different tie-break policy or seed.
  ExecutorOptions permuted;
  permuted.tie_break = TieBreak::kPermuteAll;
  permuted.tie_seed = 1;
  EXPECT_FALSE(SimMemo::key(g, permuted) == base);
  ExecutorOptions reseeded = permuted;
  reseeded.tie_seed = 2;
  EXPECT_FALSE(SimMemo::key(g, reseeded) == SimMemo::key(g, permuted));
}

TEST(SimMemo, MutationInvalidatesByChangingTheKey) {
  const ExecutorOptions options;
  TaskGraph g = make_graph(1e-6);
  SimMemo memo;
  const SimMemo::Key before = SimMemo::key(g, options);
  memo.store(before, std::make_shared<const SimResult>(
                         TaskGraphExecutor{}.run(g)));

  // Growing the graph changes the structural key, so the stale entry can
  // never be returned for the mutated graph.
  g.add_compute(0, 5e-6);
  const SimMemo::Key after = SimMemo::key(g, options);
  EXPECT_FALSE(before == after);
  EXPECT_EQ(memo.find(after), nullptr);

  memo.clear();
  EXPECT_EQ(memo.size(), 0u);
  EXPECT_EQ(memo.find(before), nullptr);
}

TEST(SimMemo, FlushProfileMovesTalliesToCallingThread) {
  obs::SelfProfiler profiler;
  SimMemo memo;
  TaskGraph g = make_graph(1e-6);
  const SimMemo::Key k = SimMemo::key(g, {});
  memo.find(k);  // miss
  memo.store(k, std::make_shared<const SimResult>(TaskGraphExecutor{}.run(g)));
  memo.find(k);  // hit
  memo.find(k);  // hit
  memo.flush_profile();
  const auto counters = profiler.snapshot().counters;
  EXPECT_EQ(counters.memo_hits, 2u);
  EXPECT_EQ(counters.memo_misses, 1u);
  // Flushing resets the internal tallies.
  EXPECT_EQ(memo.hits(), 0u);
  EXPECT_EQ(memo.misses(), 0u);
}

}  // namespace
}  // namespace holmes::sim
