#include "sim/rate_timeline.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"

namespace holmes::sim {
namespace {

TEST(RateTimeline, EmptyTimelineIsExactIdentity) {
  RateTimeline rates;
  EXPECT_TRUE(rates.empty());
  EXPECT_EQ(rates.window_count(), 0u);
  // Bit-exact passthrough, not merely approximate: the executor relies on
  // occupancy == cost whenever no window intersects.
  const double cost = 0.1 + 0.2;  // a value with FP representation slack
  EXPECT_EQ(rates.stretched(0, 1, 5.0, cost), cost);
  EXPECT_EQ(rates.rate_at(0, 0.0), 1.0);
  EXPECT_EQ(rates.rate_at(12345, 1e9), 1.0);
}

TEST(RateTimeline, WindowHalvesServiceRateInsideItsSpan) {
  RateTimeline rates;
  rates.add_window(0, 1.0, 3.0, 0.5);
  EXPECT_FALSE(rates.empty());
  EXPECT_EQ(rates.rate_at(0, 0.5), 1.0);
  EXPECT_EQ(rates.rate_at(0, 1.0), 0.5);  // [begin, end): begin inclusive
  EXPECT_EQ(rates.rate_at(0, 2.9), 0.5);
  EXPECT_EQ(rates.rate_at(0, 3.0), 1.0);  // end exclusive
  // Cost 4 starting at 0: 1 declared second before the window, then the
  // window's 2 wall seconds deliver only 1, then 2 more after -> 5 wall.
  EXPECT_DOUBLE_EQ(rates.stretched(0, 0, 0.0, 4.0), 5.0);
}

TEST(RateTimeline, WorkOutsideWindowsIsExactlyUnstretched) {
  RateTimeline rates;
  rates.add_window(0, 100.0, 200.0, 0.25);
  const double cost = 1.0 / 3.0;
  EXPECT_EQ(rates.stretched(0, 0, 0.0, cost), cost);   // ends before
  EXPECT_EQ(rates.stretched(0, 0, 250.0, cost), cost); // starts after
  EXPECT_EQ(rates.stretched(7, 7, 150.0, cost), cost); // other resource
}

TEST(RateTimeline, OverlappingWindowsCompoundMultiplicatively) {
  RateTimeline rates;
  rates.add_window(0, 0.0, 10.0, 0.5);
  rates.add_window(0, 0.0, 10.0, 0.5);
  EXPECT_DOUBLE_EQ(rates.rate_at(0, 5.0), 0.25);
  EXPECT_DOUBLE_EQ(rates.stretched(0, 0, 0.0, 1.0), 4.0);
}

TEST(RateTimeline, TransferIsPacedByTheSlowerEndpoint) {
  RateTimeline rates;
  rates.add_window(1, 0.0, 100.0, 0.5);  // only the destination degrades
  // A paused receiver back-pressures the sender: min(rate(a), rate(b)).
  EXPECT_DOUBLE_EQ(rates.stretched(0, 1, 0.0, 2.0), 4.0);
  EXPECT_DOUBLE_EQ(rates.stretched(1, 0, 0.0, 2.0), 4.0);
  // Both endpoints degraded does not double-count.
  rates.add_window(0, 0.0, 100.0, 0.5);
  EXPECT_DOUBLE_EQ(rates.stretched(0, 1, 0.0, 2.0), 4.0);
}

TEST(RateTimeline, FactorsAboveOneNeverBeatNominalService) {
  RateTimeline rates;
  rates.add_window(0, 0.0, 10.0, 2.0);
  // rate_at reports the raw compound factor...
  EXPECT_DOUBLE_EQ(rates.rate_at(0, 5.0), 2.0);
  // ...but service is capped at nominal: hardware cannot run faster than
  // its data sheet, so a "recovery" window only cancels degradation.
  EXPECT_DOUBLE_EQ(rates.stretched(0, 0, 0.0, 4.0), 4.0);
  // A 2.0 burst overlapping a 0.5 degradation restores nominal exactly.
  rates.add_window(0, 0.0, 10.0, 0.5);
  EXPECT_DOUBLE_EQ(rates.stretched(0, 0, 0.0, 4.0), 4.0);
}

TEST(RateTimeline, TinyFactorIsClampedSoProgressContinues) {
  RateTimeline rates;
  rates.add_window(0, 0.0, 1e-3, 1e-12);
  const double occupancy = rates.stretched(0, 0, 0.0, 1.0);
  EXPECT_TRUE(std::isfinite(occupancy));
  EXPECT_GT(occupancy, 1.0);
}

TEST(RateTimeline, RejectsDegenerateWindows) {
  RateTimeline rates;
  EXPECT_THROW(rates.add_window(0, 3.0, 2.0, 0.5), ConfigError);   // inverted
  EXPECT_THROW(rates.add_window(0, -1.0, 2.0, 0.5), ConfigError);  // negative
  EXPECT_THROW(rates.add_window(0, 0.0, 2.0, 0.0), ConfigError);   // rate 0
  EXPECT_THROW(rates.add_window(0, 0.0, 2.0, -1.0), ConfigError);  // negative
  EXPECT_THROW(rates.add_window(-1, 0.0, 2.0, 0.5), ConfigError);  // resource
  EXPECT_TRUE(rates.empty()) << "rejected windows must not be recorded";
}

TEST(RateTimeline, ZeroLengthWindowIsAcceptedAsNoOp) {
  RateTimeline rates;
  // A window covering no time is legal (generated schedules may degenerate
  // to empty intervals) but records nothing: the timeline stays empty and
  // the fast bit-exact passthrough stays in force.
  rates.add_window(0, 2.0, 2.0, 0.5);
  EXPECT_TRUE(rates.empty());
  EXPECT_EQ(rates.window_count(), 0u);
  EXPECT_TRUE(rates.windows().empty());
  EXPECT_EQ(rates.rate_at(0, 2.0), 1.0);
  const double cost = 1.0 / 3.0;
  EXPECT_EQ(rates.stretched(0, 0, 1.5, cost), cost);
}

TEST(RateTimeline, BackToBackAdjacentWindowsStretchContinuously) {
  RateTimeline rates;
  rates.add_window(0, 1.0, 2.0, 0.5);
  rates.add_window(0, 2.0, 3.0, 0.5);
  // The shared boundary belongs to exactly one window ([begin, end) is
  // half-open): no instant is uncovered and none is double-counted, so the
  // pair behaves exactly like a single [1, 3) half-rate window. 3 declared
  // seconds from t=0: one at full rate, one at half rate (2 wall seconds,
  // filling [1, 3) exactly), one at full rate again — 4 wall seconds.
  EXPECT_EQ(rates.rate_at(0, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(rates.stretched(0, 0, 0.0, 3.0), 4.0);
  // Work finishing exactly on the boundary is stable too: 0.5 declared
  // seconds at half rate fill [1, 2) precisely.
  EXPECT_DOUBLE_EQ(rates.stretched(0, 0, 1.0, 0.5), 1.0);
  // A boundary-straddling task crosses without a seam: 1 declared second at
  // half rate takes 2 wall seconds regardless of where it starts in [1, 3).
  EXPECT_DOUBLE_EQ(rates.stretched(0, 0, 1.5, 0.5), 1.0);
}

TEST(RateTimeline, WindowsEnumerationIsSortedAndComplete) {
  RateTimeline rates;
  rates.add_window(3, 5.0, 6.0, 0.25);
  rates.add_window(1, 2.0, 4.0, 0.75);
  rates.add_window(1, 0.0, 2.0, 0.5);
  const auto windows = rates.windows();
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].resource, 1);
  EXPECT_EQ(windows[0].begin, 0.0);
  EXPECT_EQ(windows[0].end, 2.0);
  EXPECT_EQ(windows[0].factor, 0.5);
  EXPECT_EQ(windows[1].resource, 1);
  EXPECT_EQ(windows[1].begin, 2.0);
  EXPECT_EQ(windows[2].resource, 3);
  EXPECT_EQ(windows[2].factor, 0.25);
}

TEST(RateTimeline, ZeroCostTaskIsUntouched) {
  RateTimeline rates;
  rates.add_window(0, 0.0, 10.0, 0.5);
  EXPECT_EQ(rates.stretched(0, 0, 5.0, 0.0), 0.0);
}

}  // namespace
}  // namespace holmes::sim
