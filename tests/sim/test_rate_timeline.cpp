#include "sim/rate_timeline.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"

namespace holmes::sim {
namespace {

TEST(RateTimeline, EmptyTimelineIsExactIdentity) {
  RateTimeline rates;
  EXPECT_TRUE(rates.empty());
  EXPECT_EQ(rates.window_count(), 0u);
  // Bit-exact passthrough, not merely approximate: the executor relies on
  // occupancy == cost whenever no window intersects.
  const double cost = 0.1 + 0.2;  // a value with FP representation slack
  EXPECT_EQ(rates.stretched(0, 1, 5.0, cost), cost);
  EXPECT_EQ(rates.rate_at(0, 0.0), 1.0);
  EXPECT_EQ(rates.rate_at(12345, 1e9), 1.0);
}

TEST(RateTimeline, WindowHalvesServiceRateInsideItsSpan) {
  RateTimeline rates;
  rates.add_window(0, 1.0, 3.0, 0.5);
  EXPECT_FALSE(rates.empty());
  EXPECT_EQ(rates.rate_at(0, 0.5), 1.0);
  EXPECT_EQ(rates.rate_at(0, 1.0), 0.5);  // [begin, end): begin inclusive
  EXPECT_EQ(rates.rate_at(0, 2.9), 0.5);
  EXPECT_EQ(rates.rate_at(0, 3.0), 1.0);  // end exclusive
  // Cost 4 starting at 0: 1 declared second before the window, then the
  // window's 2 wall seconds deliver only 1, then 2 more after -> 5 wall.
  EXPECT_DOUBLE_EQ(rates.stretched(0, 0, 0.0, 4.0), 5.0);
}

TEST(RateTimeline, WorkOutsideWindowsIsExactlyUnstretched) {
  RateTimeline rates;
  rates.add_window(0, 100.0, 200.0, 0.25);
  const double cost = 1.0 / 3.0;
  EXPECT_EQ(rates.stretched(0, 0, 0.0, cost), cost);   // ends before
  EXPECT_EQ(rates.stretched(0, 0, 250.0, cost), cost); // starts after
  EXPECT_EQ(rates.stretched(7, 7, 150.0, cost), cost); // other resource
}

TEST(RateTimeline, OverlappingWindowsCompoundMultiplicatively) {
  RateTimeline rates;
  rates.add_window(0, 0.0, 10.0, 0.5);
  rates.add_window(0, 0.0, 10.0, 0.5);
  EXPECT_DOUBLE_EQ(rates.rate_at(0, 5.0), 0.25);
  EXPECT_DOUBLE_EQ(rates.stretched(0, 0, 0.0, 1.0), 4.0);
}

TEST(RateTimeline, TransferIsPacedByTheSlowerEndpoint) {
  RateTimeline rates;
  rates.add_window(1, 0.0, 100.0, 0.5);  // only the destination degrades
  // A paused receiver back-pressures the sender: min(rate(a), rate(b)).
  EXPECT_DOUBLE_EQ(rates.stretched(0, 1, 0.0, 2.0), 4.0);
  EXPECT_DOUBLE_EQ(rates.stretched(1, 0, 0.0, 2.0), 4.0);
  // Both endpoints degraded does not double-count.
  rates.add_window(0, 0.0, 100.0, 0.5);
  EXPECT_DOUBLE_EQ(rates.stretched(0, 1, 0.0, 2.0), 4.0);
}

TEST(RateTimeline, FactorsAboveOneNeverBeatNominalService) {
  RateTimeline rates;
  rates.add_window(0, 0.0, 10.0, 2.0);
  // rate_at reports the raw compound factor...
  EXPECT_DOUBLE_EQ(rates.rate_at(0, 5.0), 2.0);
  // ...but service is capped at nominal: hardware cannot run faster than
  // its data sheet, so a "recovery" window only cancels degradation.
  EXPECT_DOUBLE_EQ(rates.stretched(0, 0, 0.0, 4.0), 4.0);
  // A 2.0 burst overlapping a 0.5 degradation restores nominal exactly.
  rates.add_window(0, 0.0, 10.0, 0.5);
  EXPECT_DOUBLE_EQ(rates.stretched(0, 0, 0.0, 4.0), 4.0);
}

TEST(RateTimeline, TinyFactorIsClampedSoProgressContinues) {
  RateTimeline rates;
  rates.add_window(0, 0.0, 1e-3, 1e-12);
  const double occupancy = rates.stretched(0, 0, 0.0, 1.0);
  EXPECT_TRUE(std::isfinite(occupancy));
  EXPECT_GT(occupancy, 1.0);
}

TEST(RateTimeline, RejectsDegenerateWindows) {
  RateTimeline rates;
  EXPECT_THROW(rates.add_window(0, 2.0, 2.0, 0.5), ConfigError);   // empty
  EXPECT_THROW(rates.add_window(0, 3.0, 2.0, 0.5), ConfigError);   // inverted
  EXPECT_THROW(rates.add_window(0, -1.0, 2.0, 0.5), ConfigError);  // negative
  EXPECT_THROW(rates.add_window(0, 0.0, 2.0, 0.0), ConfigError);   // rate 0
  EXPECT_THROW(rates.add_window(0, 0.0, 2.0, -1.0), ConfigError);  // negative
  EXPECT_THROW(rates.add_window(-1, 0.0, 2.0, 0.5), ConfigError);  // resource
  EXPECT_TRUE(rates.empty()) << "rejected windows must not be recorded";
}

TEST(RateTimeline, ZeroCostTaskIsUntouched) {
  RateTimeline rates;
  rates.add_window(0, 0.0, 10.0, 0.5);
  EXPECT_EQ(rates.stretched(0, 0, 5.0, 0.0), 0.0);
}

}  // namespace
}  // namespace holmes::sim
