#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.h"

namespace holmes::sim {
namespace {

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator s;
  std::vector<SimTime> seen;
  s.after(1.0, [&] { seen.push_back(s.now()); });
  s.after(2.5, [&] { seen.push_back(s.now()); });
  const SimTime end = s.run();
  EXPECT_DOUBLE_EQ(end, 2.5);
  EXPECT_EQ(seen, (std::vector<SimTime>{1.0, 2.5}));
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator s;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) s.after(1.0, chain);
  };
  s.after(1.0, chain);
  const SimTime end = s.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(end, 5.0);
}

TEST(Simulator, CannotScheduleInThePast) {
  Simulator s;
  s.after(2.0, [&] { EXPECT_THROW(s.at(1.0, [] {}), InternalError); });
  s.run();
  EXPECT_THROW(s.after(-0.5, [] {}), InternalError);
}

TEST(Simulator, RunUntilLeavesLaterEventsQueued) {
  Simulator s;
  int fired = 0;
  s.after(1.0, [&] { ++fired; });
  s.after(10.0, [&] { ++fired; });
  s.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.pending_events(), 1u);
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StopAbortsRun) {
  Simulator s;
  int fired = 0;
  s.after(1.0, [&] {
    ++fired;
    s.stop();
  });
  s.after(2.0, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(Simulator, EmptyRunReturnsZero) {
  Simulator s;
  EXPECT_DOUBLE_EQ(s.run(), 0.0);
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
}

TEST(Simulator, SameTimeEventsFireInInsertionOrder) {
  Simulator s;
  std::vector<int> order;
  s.after(1.0, [&] { order.push_back(0); });
  s.after(1.0, [&] { order.push_back(1); });
  s.after(1.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace holmes::sim
