#include "sim/task_graph.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace holmes::sim {
namespace {

TEST(TaskGraph, AddsResourcesWithNames) {
  TaskGraph g;
  const ResourceId a = g.add_resource("gpu0");
  const ResourceId b = g.add_resource("gpu1");
  EXPECT_NE(a, b);
  EXPECT_EQ(g.resource_count(), 2u);
  EXPECT_EQ(g.resource_name(a), "gpu0");
  EXPECT_EQ(g.resource_name(b), "gpu1");
}

TEST(TaskGraph, ComputeTaskStoresFields) {
  TaskGraph g;
  const ResourceId r = g.add_resource("gpu0");
  const TaskId t = g.add_compute(r, 0.25, "fwd", 7);
  const Task& task = g.task(t);
  EXPECT_EQ(task.kind, TaskKind::kCompute);
  EXPECT_EQ(task.resource, r);
  EXPECT_DOUBLE_EQ(task.duration, 0.25);
  EXPECT_EQ(task.label, "fwd");
  EXPECT_EQ(task.tag, 7);
}

TEST(TaskGraph, TransferTaskStoresFields) {
  TaskGraph g;
  const ResourceId tx = g.add_resource("tx");
  const ResourceId rx = g.add_resource("rx");
  const TaskId t = g.add_transfer(tx, rx, 1000, 1e9, 1e-6, "p2p");
  const Task& task = g.task(t);
  EXPECT_EQ(task.kind, TaskKind::kTransfer);
  EXPECT_EQ(task.bytes, 1000);
  EXPECT_DOUBLE_EQ(task.bandwidth, 1e9);
  EXPECT_DOUBLE_EQ(task.latency, 1e-6);
}

TEST(TaskGraph, RejectsInvalidArguments) {
  TaskGraph g;
  const ResourceId r = g.add_resource("r");
  EXPECT_THROW(g.add_compute(99, 1.0), InternalError);
  EXPECT_THROW(g.add_compute(r, -1.0), InternalError);
  EXPECT_THROW(g.add_transfer(r, 99, 10, 1e9, 0), InternalError);
  EXPECT_THROW(g.add_transfer(r, r, 10, 0.0, 0), InternalError);
  EXPECT_THROW(g.add_transfer(r, r, -5, 1e9, 0), InternalError);
  EXPECT_THROW(g.add_transfer(r, r, 10, 1e9, -1e-6), InternalError);
}

TEST(TaskGraph, ZeroByteTransferNeedsNoBandwidth) {
  TaskGraph g;
  const ResourceId r = g.add_resource("r");
  EXPECT_NO_THROW(g.add_transfer(r, r, 0, 0.0, 1e-6));
}

TEST(TaskGraph, DepsAccumulate) {
  TaskGraph g;
  const ResourceId r = g.add_resource("r");
  const TaskId a = g.add_compute(r, 1.0);
  const TaskId b = g.add_compute(r, 1.0);
  const TaskId c = g.add_compute(r, 1.0);
  g.add_dep(c, a);
  g.add_dep(c, b);
  EXPECT_EQ(g.deps(c).size(), 2u);
}

TEST(TaskGraph, AddDepsSkipsInvalidTaskSentinel) {
  TaskGraph g;
  const ResourceId r = g.add_resource("r");
  const TaskId a = g.add_compute(r, 1.0);
  const TaskId b = g.add_compute(r, 1.0);
  g.add_deps(b, {kInvalidTask, a, kInvalidTask});
  EXPECT_EQ(g.deps(b).size(), 1u);
}

TEST(TaskGraph, SelfDependencyRejected) {
  TaskGraph g;
  const ResourceId r = g.add_resource("r");
  const TaskId a = g.add_compute(r, 1.0);
  EXPECT_THROW(g.add_dep(a, a), InternalError);
}

TEST(TaskGraph, NoopHasZeroCost) {
  TaskGraph g;
  const TaskId t = g.add_noop("join");
  EXPECT_EQ(g.task(t).kind, TaskKind::kNoop);
  EXPECT_DOUBLE_EQ(g.task(t).duration, 0.0);
}

TEST(TaskGraph, ChannelsAreDenseAndStable) {
  TaskGraph g;
  EXPECT_EQ(g.channel_count(), 0u);
  const ChannelId dp0 = g.channel("dp0");
  const ChannelId pp = g.channel("pp");
  EXPECT_EQ(dp0, 0);
  EXPECT_EQ(pp, 1);
  // Get-or-create: the same name maps to the same id.
  EXPECT_EQ(g.channel("dp0"), dp0);
  EXPECT_EQ(g.channel_count(), 2u);
  EXPECT_EQ(g.channel_name(dp0), "dp0");
  EXPECT_EQ(g.channel_name(pp), "pp");
}

TEST(TaskGraph, TransferCarriesChannel) {
  TaskGraph g;
  const ResourceId tx = g.add_resource("tx");
  const ResourceId rx = g.add_resource("rx");
  const ChannelId dp0 = g.channel("dp0");
  const TaskId attributed = g.add_transfer(tx, rx, 10, 1e9, 0, "a", 0, dp0);
  const TaskId plain = g.add_transfer(tx, rx, 10, 1e9, 0, "b");
  EXPECT_EQ(g.task(attributed).channel, dp0);
  EXPECT_EQ(g.task(plain).channel, kInvalidChannel);
  // Unknown channel ids are rejected.
  EXPECT_THROW(g.add_transfer(tx, rx, 10, 1e9, 0, "c", 0, 99), InternalError);
}

}  // namespace
}  // namespace holmes::sim
