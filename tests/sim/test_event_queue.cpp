#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/error.h"

namespace holmes::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop()();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop()();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.schedule(7.0, [] {});
  q.schedule(2.5, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.5);
}

TEST(EventQueue, NegativeTimeRejected) {
  EventQueue q;
  EXPECT_THROW(q.schedule(-1.0, [] {}), InternalError);
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), InternalError);
  EXPECT_THROW(q.next_time(), InternalError);
}

TEST(EventQueue, TiePermutationReordersEqualTimeEvents) {
  // Across a handful of seeds at least one must deviate from insertion
  // order; distinct timestamps must stay time-ordered regardless.
  bool reordered = false;
  for (std::uint64_t seed = 0; seed < 8 && !reordered; ++seed) {
    EventQueue q;
    q.set_tie_permutation(seed);
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
      q.schedule(5.0, [&order, i] { order.push_back(i); });
    }
    while (!q.empty()) q.pop()();
    std::vector<int> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
    for (int i = 0; i < 10; ++i) {
      if (order[static_cast<std::size_t>(i)] != i) reordered = true;
    }
  }
  EXPECT_TRUE(reordered);
}

TEST(EventQueue, TiePermutationKeepsTimeOrder) {
  EventQueue q;
  q.set_tie_permutation(42);
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop()();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiePermutationIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    EventQueue q;
    q.set_tie_permutation(seed);
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
      q.schedule(1.0, [&order, i] { order.push_back(i); });
    }
    while (!q.empty()) q.pop()();
    return order;
  };
  EXPECT_EQ(run(7), run(7));
}

TEST(EventQueue, TiePermutationRejectedOnNonEmptyQueue) {
  EventQueue q;
  q.schedule(1.0, [] {});
  EXPECT_THROW(q.set_tie_permutation(1), InternalError);
}

}  // namespace
}  // namespace holmes::sim
