#include "model/transformer.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace holmes::model {
namespace {

// The three architectures of Table 2.
const TransformerConfig kGpt3_6B{30, 3072, 32, 51200, 2048};
const TransformerConfig kGpt7_5B{36, 4096, 32, 51200, 2048};
const TransformerConfig kGpt39B{48, 8192, 64, 51200, 2048};

TEST(Transformer, Eq5MatchesPaperNominalSizes) {
  // Table 2 quotes 3.6 B, 7.5 B and 39.1 B; Eq. (5) should land within 2%.
  EXPECT_NEAR(kGpt3_6B.parameter_count() / 1e9, 3.6, 0.072);
  EXPECT_NEAR(kGpt7_5B.parameter_count() / 1e9, 7.5, 0.15);
  EXPECT_NEAR(kGpt39B.parameter_count() / 1e9, 39.1, 0.782);
}

TEST(Transformer, Eq5Decomposition) {
  for (const auto& cfg : {kGpt3_6B, kGpt7_5B, kGpt39B}) {
    const double recomposed =
        cfg.layers * cfg.layer_parameters() + cfg.embedding_parameters();
    EXPECT_NEAR(recomposed / cfg.parameter_count(), 1.0, 1e-12);
  }
}

TEST(Transformer, Eq6Decomposition) {
  const std::int64_t B = 768;
  for (const auto& cfg : {kGpt3_6B, kGpt7_5B, kGpt39B}) {
    const double recomposed =
        cfg.layers * cfg.layer_flops(B) + cfg.embedding_flops(B);
    EXPECT_NEAR(recomposed / cfg.flops_per_iteration(B), 1.0, 1e-12);
  }
}

TEST(Transformer, Eq6IsLinearInBatch) {
  const double f1 = kGpt3_6B.flops_per_iteration(768);
  const double f2 = kGpt3_6B.flops_per_iteration(1536);
  EXPECT_NEAR(f2 / f1, 2.0, 1e-12);
}

TEST(Transformer, Eq6Magnitude) {
  // Group 1 @ B=768 is on the order of 10^17 FLOPs per iteration — the
  // scale that makes a 32-GPU iteration take a few seconds at ~200 TFLOPS.
  const double f = kGpt3_6B.flops_per_iteration(768);
  EXPECT_GT(f, 1e16);
  EXPECT_LT(f, 1e18);
}

TEST(Transformer, ActivationBytes) {
  // 4 samples * 2048 seq * 3072 hidden * 2 bytes = 48 MiB.
  EXPECT_EQ(kGpt3_6B.activation_bytes(4), 4LL * 2048 * 3072 * 2);
  EXPECT_EQ(kGpt3_6B.activation_bytes(4, 4), 4LL * 2048 * 3072 * 4);
}

TEST(Transformer, ValidateRejectsBadDimensions) {
  TransformerConfig bad = kGpt3_6B;
  bad.layers = 0;
  EXPECT_THROW(bad.validate(), ConfigError);
  bad = kGpt3_6B;
  bad.hidden = -5;
  EXPECT_THROW(bad.validate(), ConfigError);
  bad = kGpt3_6B;
  bad.heads = 7;  // 3072 % 7 != 0
  EXPECT_THROW(bad.validate(), ConfigError);
  bad = kGpt3_6B;
  bad.vocab = 0;
  EXPECT_THROW(bad.validate(), ConfigError);
  EXPECT_NO_THROW(kGpt3_6B.validate());
}

TEST(Transformer, LargerModelsCostMore) {
  EXPECT_GT(kGpt7_5B.parameter_count(), kGpt3_6B.parameter_count());
  EXPECT_GT(kGpt39B.parameter_count(), kGpt7_5B.parameter_count());
  EXPECT_GT(kGpt7_5B.flops_per_iteration(768),
            kGpt3_6B.flops_per_iteration(768));
  EXPECT_GT(kGpt39B.layer_flops(4), kGpt7_5B.layer_flops(4));
}

}  // namespace
}  // namespace holmes::model
