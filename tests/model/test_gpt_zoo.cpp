#include "model/gpt_zoo.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace holmes::model {
namespace {

TEST(GptZoo, HasAllEightGroups) {
  const auto& groups = table2_groups();
  ASSERT_EQ(groups.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(groups[static_cast<std::size_t>(i)].id, i + 1);
  }
}

TEST(GptZoo, NominalSizesMatchEq5) {
  for (const auto& g : table2_groups()) {
    EXPECT_NEAR(g.config.parameter_count() / 1e9, g.nominal_billions,
                g.nominal_billions * 0.02)
        << "group " << g.id;
  }
}

TEST(GptZoo, Table2Architectures) {
  EXPECT_EQ(parameter_group(1).config.hidden, 3072);
  EXPECT_EQ(parameter_group(1).config.layers, 30);
  EXPECT_EQ(parameter_group(3).config.hidden, 4096);
  EXPECT_EQ(parameter_group(3).config.layers, 36);
  EXPECT_EQ(parameter_group(7).config.hidden, 8192);
  EXPECT_EQ(parameter_group(7).config.layers, 48);
  EXPECT_EQ(parameter_group(7).config.heads, 64);
  EXPECT_EQ(parameter_group(7).tensor_parallel, 8);
  EXPECT_EQ(parameter_group(5).pipeline_parallel, 3);
  EXPECT_EQ(parameter_group(4).batch_size, 2688);
  for (const auto& g : table2_groups()) {
    EXPECT_EQ(g.config.vocab, 51200);
    EXPECT_EQ(g.config.seq_len, 2048);
    EXPECT_EQ(g.micro_batch_size, 4);
  }
}

TEST(GptZoo, MicroBatchesForPaperNodeCounts) {
  // Group 1 (B=768, mb=4, p=2, t=1): 4 nodes -> d=16 -> m=12.
  EXPECT_EQ(parameter_group(1).micro_batches(16), 12);
  // 6 nodes -> d=24 -> m=8; 8 nodes -> d=32 -> m=6.
  EXPECT_EQ(parameter_group(1).micro_batches(24), 8);
  EXPECT_EQ(parameter_group(1).micro_batches(32), 6);
  // Group 3 (B=1536): d=16 -> 24.
  EXPECT_EQ(parameter_group(3).micro_batches(16), 24);
  // Group 7 (t=8, p=2, 8 nodes -> d=4): 1536/4/4 = 96.
  EXPECT_EQ(parameter_group(7).micro_batches(4), 96);
}

TEST(GptZoo, MicroBatchesRejectsIndivisible) {
  EXPECT_THROW(parameter_group(1).micro_batches(0), ConfigError);
  EXPECT_THROW(parameter_group(1).micro_batches(7), ConfigError);  // 768%7
}

TEST(GptZoo, LookupValidation) {
  EXPECT_THROW(parameter_group(0), ConfigError);
  EXPECT_THROW(parameter_group(9), ConfigError);
  EXPECT_NO_THROW(parameter_group(8));
}

TEST(Gpt3Family, ParameterCountsMatchNames) {
  // Eq. (5) counts slightly above the headline numbers because of our
  // larger embedding (51,200 vocab); allow a generous band.
  struct Expect {
    const char* name;
    double billions;
  };
  for (const Expect& e : std::initializer_list<Expect>{{"125M", 0.125},
                                                       {"350M", 0.35},
                                                       {"1.3B", 1.3},
                                                       {"2.7B", 2.7},
                                                       {"6.7B", 6.7},
                                                       {"13B", 13.0},
                                                       {"175B", 175.0}}) {
    const double count = gpt3(e.name).parameter_count() / 1e9;
    EXPECT_NEAR(count, e.billions, e.billions * 0.35) << e.name;
    EXPECT_GT(count, e.billions * 0.9) << e.name;
  }
}

TEST(Gpt3Family, AllNamesValidateAndGrowMonotonically) {
  double previous = 0;
  for (const std::string& name : gpt3_names()) {
    const model::TransformerConfig config = gpt3(name);
    EXPECT_NO_THROW(config.validate()) << name;
    const double count = config.parameter_count();
    EXPECT_GT(count, previous) << name;
    previous = count;
  }
}

TEST(Gpt3Family, UnknownNameRejected) {
  EXPECT_THROW(gpt3("9000B"), ConfigError);
  EXPECT_THROW(gpt3(""), ConfigError);
}

TEST(GptZoo, GroupsShareArchitectureAsInTable2) {
  // Groups 1-2 share the 3.6B arch; 3-6 the 7.5B arch; 7-8 the 39.1B arch.
  EXPECT_EQ(parameter_group(1).config.hidden, parameter_group(2).config.hidden);
  for (int id : {4, 5, 6}) {
    EXPECT_EQ(parameter_group(3).config.hidden,
              parameter_group(id).config.hidden);
    EXPECT_EQ(parameter_group(3).config.layers,
              parameter_group(id).config.layers);
  }
  EXPECT_EQ(parameter_group(7).config.hidden, parameter_group(8).config.hidden);
}

}  // namespace
}  // namespace holmes::model
