#include "model/memory.h"

#include <gtest/gtest.h>

#include "model/gpt_zoo.h"
#include "util/error.h"

namespace holmes::model {
namespace {

constexpr Bytes kA100 = 80LL * 1024 * 1024 * 1024;

TEST(Memory, PaperConfigsFitOn80GBA100s) {
  // Group 1 on 4 nodes: p=2, t=1 -> 15 layers/device, d=16, 1F1B keeps at
  // most p microbatches in flight.
  const auto& g1 = parameter_group(1);
  const auto est1 = estimate_device_memory(g1.config, 15, 1, 4, 2, 16);
  EXPECT_LT(est1.total(), kA100);

  // Group 7: 39B with t=8, p=2 -> 24 layers/device at tensor/8.
  const auto& g7 = parameter_group(7);
  const auto est7 = estimate_device_memory(g7.config, 24, 8, 4, 2, 4);
  EXPECT_LT(est7.total(), kA100);
}

TEST(Memory, UnshardedBigModelWouldNotFit) {
  // The whole 39B model on one device (t=1, p=1) blows past 80 GB — the
  // reason Table 2 uses t=8.
  const auto& g7 = parameter_group(7);
  const auto est = estimate_device_memory(g7.config, 48, 1, 4, 1, 1);
  EXPECT_GT(est.total(), kA100);
}

TEST(Memory, OptimizerShardingReducesFootprint) {
  const auto& g3 = parameter_group(3);
  const auto whole = estimate_device_memory(g3.config, 18, 1, 4, 2, 1);
  const auto sharded = estimate_device_memory(g3.config, 18, 1, 4, 2, 16);
  EXPECT_LT(sharded.optimizer_state, whole.optimizer_state);
  EXPECT_EQ(sharded.weights, whole.weights);
  EXPECT_NEAR(static_cast<double>(whole.optimizer_state) /
                  static_cast<double>(sharded.optimizer_state),
              16.0, 0.01);
}

TEST(Memory, MoreLayersMoreMemory) {
  const auto& cfg = parameter_group(3).config;
  const auto a = estimate_device_memory(cfg, 9, 1, 4, 2, 1);
  const auto b = estimate_device_memory(cfg, 18, 1, 4, 2, 1);
  EXPECT_GT(b.weights, a.weights);
  EXPECT_GT(b.activations, a.activations);
}

TEST(Memory, TensorParallelDividesWeights) {
  const auto& cfg = parameter_group(7).config;
  const auto t1 = estimate_device_memory(cfg, 24, 1, 4, 2, 1);
  const auto t8 = estimate_device_memory(cfg, 24, 8, 4, 2, 1);
  EXPECT_NEAR(static_cast<double>(t1.weights) / static_cast<double>(t8.weights),
              8.0, 0.01);
}

TEST(Memory, InFlightMicrobatchesScaleActivations) {
  const auto& cfg = parameter_group(1).config;
  const auto one = estimate_device_memory(cfg, 15, 1, 4, 1, 1);
  const auto four = estimate_device_memory(cfg, 15, 1, 4, 4, 1);
  EXPECT_NEAR(static_cast<double>(four.activations) /
                  static_cast<double>(one.activations),
              4.0, 0.01);
}

TEST(Memory, InvalidArgsRejected) {
  const auto& cfg = parameter_group(1).config;
  EXPECT_THROW(estimate_device_memory(cfg, -1, 1, 4, 1, 1), InternalError);
  EXPECT_THROW(estimate_device_memory(cfg, 15, 0, 4, 1, 1), InternalError);
  EXPECT_THROW(estimate_device_memory(cfg, 15, 1, 4, 0, 1), InternalError);
  EXPECT_THROW(estimate_device_memory(cfg, 15, 1, 4, 1, 0), InternalError);
}

TEST(Memory, TotalIsSumOfParts) {
  const auto& cfg = parameter_group(1).config;
  const auto est = estimate_device_memory(cfg, 15, 1, 4, 2, 4);
  EXPECT_EQ(est.total(), est.weights + est.gradients + est.optimizer_state +
                             est.activations);
}

}  // namespace
}  // namespace holmes::model
