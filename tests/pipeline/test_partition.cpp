#include "pipeline/partition.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/error.h"

namespace holmes::pipeline {
namespace {

using net::NicType;

int sum(const StagePartition& p) {
  return std::accumulate(p.begin(), p.end(), 0);
}

TEST(UniformPartition, EvenSplit) {
  EXPECT_EQ(uniform_partition(30, 2), (StagePartition{15, 15}));
  EXPECT_EQ(uniform_partition(36, 3), (StagePartition{12, 12, 12}));
}

TEST(UniformPartition, RemainderGoesToEarlyStages) {
  EXPECT_EQ(uniform_partition(31, 2), (StagePartition{16, 15}));
  EXPECT_EQ(uniform_partition(10, 4), (StagePartition{3, 3, 2, 2}));
}

TEST(UniformPartition, Degenerate) {
  EXPECT_EQ(uniform_partition(4, 4), (StagePartition{1, 1, 1, 1}));
  EXPECT_THROW(uniform_partition(3, 4), ConfigError);
  EXPECT_THROW(uniform_partition(3, 0), ConfigError);
}

TEST(SelfAdapting, PaperTwoStageExample) {
  // Eq. (2) with the paper's Table 1 speeds and alpha = 1.05:
  // N_ib = floor(1.05 * 197/357 * 30) = 17, N_roce = 30 - 17 = 13.
  const auto partition = self_adapting_partition(
      30, {NicType::kInfiniBand, NicType::kRoCE}, 1.05);
  EXPECT_EQ(partition, (StagePartition{17, 13}));
}

TEST(SelfAdapting, AlphaOneIsNearProportional) {
  // 197/357 * 36 = 19.87 -> floor 19; RoCE absorbs to 17.
  const auto partition = self_adapting_partition(
      36, {NicType::kInfiniBand, NicType::kRoCE}, 1.0);
  EXPECT_EQ(sum(partition), 36);
  EXPECT_GT(partition[0], partition[1]);
}

TEST(SelfAdapting, FasterStageNeverGetsFewerLayers) {
  for (double alpha : {0.9, 1.0, 1.05, 1.2}) {
    for (int layers : {12, 30, 36, 48}) {
      const auto p = self_adapting_partition(
          layers, {NicType::kInfiniBand, NicType::kRoCE}, alpha);
      EXPECT_EQ(sum(p), layers) << "alpha " << alpha;
      EXPECT_GE(p[0], p[1]) << "alpha " << alpha << " layers " << layers;
      EXPECT_GE(p[1], 1);
    }
  }
}

TEST(SelfAdapting, HomogeneousStagesCollapseToUniformish) {
  const auto p = self_adapting_partition(
      30, {NicType::kRoCE, NicType::kRoCE}, 1.0);
  EXPECT_EQ(sum(p), 30);
  EXPECT_LE(std::abs(p[0] - p[1]), 1);
}

TEST(SelfAdapting, ThreeStagesTableFourSetting) {
  // Table 4: stages on RoCE, RoCE, IB clusters; IB stage must get the most.
  const auto p = self_adapting_partition(
      36, {NicType::kRoCE, NicType::kRoCE, NicType::kInfiniBand}, 1.05);
  EXPECT_EQ(sum(p), 36);
  EXPECT_GT(p[2], p[0]);
  EXPECT_EQ(p[0], p[1]);
}

TEST(SelfAdapting, EthernetStageGetsLeast) {
  const auto p = self_adapting_partition(
      30, {NicType::kInfiniBand, NicType::kEthernet}, 1.0);
  EXPECT_EQ(sum(p), 30);
  EXPECT_GT(p[0], p[1]);
}

TEST(Proportional, CustomWeightsAndValidation) {
  EXPECT_EQ(proportional_partition(30, {2.0, 1.0}, 1.0),
            (StagePartition{20, 10}));
  EXPECT_THROW(proportional_partition(30, {}, 1.0), ConfigError);
  EXPECT_THROW(proportional_partition(30, {1.0, -1.0}, 1.0), ConfigError);
  EXPECT_THROW(proportional_partition(30, {1.0, 1.0}, 0.0), ConfigError);
  EXPECT_THROW(proportional_partition(1, {1.0, 1.0}, 1.0), ConfigError);
}

TEST(Proportional, ExtremeAlphaStillValid) {
  // alpha = 3 wildly over-allocates; result must stay a valid partition.
  const auto p = proportional_partition(30, {197.0, 160.0}, 3.0);
  EXPECT_EQ(sum(p), 30);
  EXPECT_GE(p[0], 1);
  EXPECT_GE(p[1], 1);
}

TEST(Proportional, ExtremeWeightRatioKeepsMinimumOneLayer) {
  const auto p = proportional_partition(10, {1000.0, 1.0}, 1.0);
  EXPECT_EQ(sum(p), 10);
  EXPECT_GE(p[1], 1);
}

TEST(StageSpeeds, DefaultsMatchTableOne) {
  const StageSpeeds s;
  EXPECT_DOUBLE_EQ(s.of(NicType::kInfiniBand), 197.0);
  EXPECT_DOUBLE_EQ(s.of(NicType::kRoCE), 160.0);
  EXPECT_DOUBLE_EQ(s.of(NicType::kEthernet), 122.0);
}

}  // namespace
}  // namespace holmes::pipeline
