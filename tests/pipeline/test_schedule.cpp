#include "pipeline/schedule.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace holmes::pipeline {
namespace {

struct Shape {
  int stages;
  int microbatches;
};

class ScheduleSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(ScheduleSweep, GPipeIsValid) {
  const auto [p, m] = GetParam();
  const auto programs = GPipeSchedule{}.programs(p, m);
  ASSERT_EQ(programs.size(), static_cast<std::size_t>(p));
  validate_schedule(programs, m);
}

TEST_P(ScheduleSweep, PipeDreamFlushIsValid) {
  const auto [p, m] = GetParam();
  const auto programs = PipeDreamFlushSchedule{}.programs(p, m);
  ASSERT_EQ(programs.size(), static_cast<std::size_t>(p));
  validate_schedule(programs, m);
}

TEST_P(ScheduleSweep, PipeDreamBoundsInFlightActivations) {
  // The whole point of 1F1B: stage s never holds more than
  // min(p - s, m) outstanding forward activations, while GPipe holds m.
  const auto [p, m] = GetParam();
  const auto programs = PipeDreamFlushSchedule{}.programs(p, m);
  for (int s = 0; s < p; ++s) {
    EXPECT_LE(max_in_flight(programs[static_cast<std::size_t>(s)]),
              std::min(p - s, m))
        << "stage " << s;
  }
  const auto gpipe = GPipeSchedule{}.programs(p, m);
  EXPECT_EQ(max_in_flight(gpipe[0]), m);
}

TEST_P(ScheduleSweep, EveryStageRunsTwiceMPerIteration) {
  const auto [p, m] = GetParam();
  for (const auto& program : PipeDreamFlushSchedule{}.programs(p, m)) {
    EXPECT_EQ(program.size(), static_cast<std::size_t>(2 * m));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ScheduleSweep,
                         ::testing::Values(Shape{1, 1}, Shape{1, 8},
                                           Shape{2, 12}, Shape{3, 16},
                                           Shape{4, 4}, Shape{4, 24},
                                           Shape{8, 96}, Shape{3, 2}),
                         [](const ::testing::TestParamInfo<Shape>& param_info) {
                           return "p" + std::to_string(param_info.param.stages) +
                                  "_m" +
                                  std::to_string(param_info.param.microbatches);
                         });

TEST(Schedule, LastStageAlternatesImmediately) {
  // Stage p-1 has zero warm-up: fwd0, bwd0, fwd1, bwd1, ...
  const auto programs = PipeDreamFlushSchedule{}.programs(4, 3);
  const StageProgram& last = programs[3];
  EXPECT_EQ(last[0], (PipelineOp{OpKind::kForward, 0}));
  EXPECT_EQ(last[1], (PipelineOp{OpKind::kBackward, 0}));
  EXPECT_EQ(last[2], (PipelineOp{OpKind::kForward, 1}));
  EXPECT_EQ(last[3], (PipelineOp{OpKind::kBackward, 1}));
}

TEST(Schedule, FirstStageWarmsUpPipelineDepth) {
  const auto programs = PipeDreamFlushSchedule{}.programs(4, 8);
  const StageProgram& first = programs[0];
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(first[static_cast<std::size_t>(i)].kind, OpKind::kForward);
  }
  EXPECT_EQ(first[3], (PipelineOp{OpKind::kForward, 3}));
  EXPECT_EQ(first[4], (PipelineOp{OpKind::kBackward, 0}));
}

TEST(Schedule, FewerMicrobatchesThanStages) {
  // m < p: warm-up truncates; schedule must still be valid.
  const auto programs = PipeDreamFlushSchedule{}.programs(6, 2);
  validate_schedule(programs, 2);
}

TEST(Schedule, InvalidArgsRejected) {
  EXPECT_THROW(PipeDreamFlushSchedule{}.programs(0, 4), ConfigError);
  EXPECT_THROW(PipeDreamFlushSchedule{}.programs(2, 0), ConfigError);
  EXPECT_THROW(GPipeSchedule{}.programs(-1, 4), ConfigError);
}

struct InterleavedShape {
  int stages;
  int microbatches;
  int chunks;
};

class InterleavedSweep : public ::testing::TestWithParam<InterleavedShape> {};

TEST_P(InterleavedSweep, IsValid) {
  const auto [p, m, c] = GetParam();
  const InterleavedSchedule schedule(c);
  const auto programs = schedule.programs(p, m);
  ASSERT_EQ(programs.size(), static_cast<std::size_t>(p));
  validate_schedule(programs, m, c);
}

TEST_P(InterleavedSweep, EveryStageRunsTwiceMCOps) {
  const auto [p, m, c] = GetParam();
  for (const auto& program : InterleavedSchedule(c).programs(p, m)) {
    EXPECT_EQ(program.size(), static_cast<std::size_t>(2 * m * c));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, InterleavedSweep,
    ::testing::Values(InterleavedShape{2, 4, 2}, InterleavedShape{2, 12, 2},
                      InterleavedShape{2, 12, 3}, InterleavedShape{3, 6, 2},
                      InterleavedShape{4, 8, 2}, InterleavedShape{4, 8, 4},
                      InterleavedShape{2, 2, 5}),
    [](const ::testing::TestParamInfo<InterleavedShape>& param_info) {
      return "p" + std::to_string(param_info.param.stages) + "_m" +
             std::to_string(param_info.param.microbatches) + "_c" +
             std::to_string(param_info.param.chunks);
    });

TEST(Interleaved, SingleChunkEqualsPipeDreamFlush) {
  const auto interleaved = InterleavedSchedule(1).programs(4, 8);
  const auto flush = PipeDreamFlushSchedule{}.programs(4, 8);
  EXPECT_EQ(interleaved, flush);
}

TEST(Interleaved, RequiresDivisibleMicrobatches) {
  EXPECT_THROW(InterleavedSchedule(2).programs(4, 6), ConfigError);
  EXPECT_THROW(InterleavedSchedule(0), ConfigError);
}

TEST(Interleaved, WarmupDeeperThanPlain1F1B) {
  // Stage 0 with 2 chunks warms up 2*(p-1) + (c-1)*p forwards.
  const auto programs = InterleavedSchedule(2).programs(2, 4);
  const StageProgram& first = programs[0];
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(first[static_cast<std::size_t>(i)].kind, OpKind::kForward);
  }
  // Forward order: chunk 0 for the first p micro-batches, then chunk 1.
  EXPECT_EQ(first[0], (PipelineOp{OpKind::kForward, 0, 0}));
  EXPECT_EQ(first[1], (PipelineOp{OpKind::kForward, 1, 0}));
  EXPECT_EQ(first[2], (PipelineOp{OpKind::kForward, 0, 1}));
  EXPECT_EQ(first[3], (PipelineOp{OpKind::kForward, 1, 1}));
  // Steady state: one more forward, then the first backward, which drains
  // the *last* chunk first.
  EXPECT_EQ(first[4], (PipelineOp{OpKind::kForward, 2, 0}));
  EXPECT_EQ(first[5].kind, OpKind::kBackward);
  EXPECT_EQ(first[5].chunk, 1);
}

TEST(ValidateSchedule, CatchesMissingBackward) {
  std::vector<StageProgram> bad = {{{OpKind::kForward, 0}}};
  EXPECT_THROW(validate_schedule(bad, 1), InternalError);
}

TEST(ValidateSchedule, CatchesBackwardBeforeForward) {
  std::vector<StageProgram> bad = {
      {{OpKind::kBackward, 0}, {OpKind::kForward, 0}}};
  EXPECT_THROW(validate_schedule(bad, 1), InternalError);
}

TEST(ValidateSchedule, CatchesCrossStageDeadlock) {
  // Stage 1 wants backward of mb 1 before mb 0's backward reached stage 0,
  // while stage 0 insists on draining mb 0 first in an impossible order:
  // construct stage 0 waiting on fwd(0) at stage... simplest deadlock:
  // stage 0 runs fwd1 before fwd0, stage 1 expects fwd0 first and won't
  // advance; both stages' per-stage orders are locally legal.
  std::vector<StageProgram> bad = {
      {{OpKind::kForward, 1},
       {OpKind::kBackward, 1},
       {OpKind::kForward, 0},
       {OpKind::kBackward, 0}},
      {{OpKind::kForward, 0},
       {OpKind::kBackward, 0},
       {OpKind::kForward, 1},
       {OpKind::kBackward, 1}},
  };
  EXPECT_THROW(validate_schedule(bad, 2), InternalError);
}

}  // namespace
}  // namespace holmes::pipeline
