#include "obs/self_profile.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/executor.h"
#include "sim/simulator.h"
#include "sim/task_graph.h"
#include "util/json.h"

namespace holmes::obs {
namespace {

namespace prof = self_profile;

/// A small fixed workload: diamond graph on two resources plus an event
/// chain, so every counter family has deterministic non-zero values.
void run_fixed_workload() {
  sim::TaskGraph g;
  const sim::ResourceId r0 = g.add_resource("r0");
  const sim::ResourceId r1 = g.add_resource("r1");
  (void)g.channel("chan");
  (void)g.channel("chan");  // existing name: no new channel
  const sim::TaskId a = g.add_compute(r0, 1e-3, "a");
  const sim::TaskId b = g.add_compute(r1, 2e-3, "b");
  const sim::TaskId t =
      g.add_transfer(r0, r1, 1 << 20, 1e9, 1e-6, "t", sim::TaskTag{});
  const sim::TaskId join = g.add_noop("join");
  g.add_dep(t, a);
  g.add_dep(join, t);
  g.add_dep(join, b);
  (void)sim::TaskGraphExecutor{}.run(g);

  sim::Simulator s;
  for (int i = 0; i < 5; ++i) s.after(1e-6 * i, [] {});
  (void)s.run();
}

TEST(SelfProfile, DisabledHooksCountNothing) {
  ASSERT_FALSE(prof::enabled());
  run_fixed_workload();  // no profiler active: must not crash, counts nowhere
  SelfProfiler profiler;
  const SelfProfile snap = profiler.snapshot();
  EXPECT_EQ(snap.counters.tasks_created, 0u);
  EXPECT_EQ(snap.counters.events_scheduled, 0u);
}

TEST(SelfProfile, CountersMatchWorkloadStructure) {
  SelfProfiler profiler;
  ASSERT_TRUE(prof::enabled());
  run_fixed_workload();
  const SelfProfileCounters& c = profiler.snapshot().counters;
  EXPECT_EQ(c.tasks_created, 4u);
  EXPECT_EQ(c.compute_tasks, 2u);
  EXPECT_EQ(c.transfer_tasks, 1u);
  EXPECT_EQ(c.noop_tasks, 1u);
  EXPECT_EQ(c.deps_added, 3u);
  EXPECT_EQ(c.resources_created, 2u);
  EXPECT_EQ(c.channels_created, 1u);  // second channel("chan") reuses it
  EXPECT_EQ(c.executor_runs, 1u);
  EXPECT_EQ(c.ready_pushes, 4u);
  EXPECT_EQ(c.ready_pops, 4u);
  EXPECT_GE(c.max_ready_queue, 2u);  // a and b are ready together
  EXPECT_EQ(c.events_scheduled, 5u);
  EXPECT_EQ(c.events_fired, 5u);
}

TEST(SelfProfile, CountersJsonIsByteIdenticalAcrossIdenticalRuns) {
  std::string first;
  std::string second;
  {
    SelfProfiler profiler;
    run_fixed_workload();
    first = counters_json(profiler.snapshot().counters);
  }
  {
    SelfProfiler profiler;
    run_fixed_workload();
    second = counters_json(profiler.snapshot().counters);
  }
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"tasks_created\":4"), std::string::npos);
}

TEST(SelfProfile, ProfilersNestAndRestore) {
  SelfProfiler outer;
  run_fixed_workload();
  {
    SelfProfiler inner;
    run_fixed_workload();
    EXPECT_EQ(inner.snapshot().counters.tasks_created, 4u);
  }
  run_fixed_workload();
  // The outer profiler missed the inner scope's work.
  EXPECT_EQ(outer.snapshot().counters.tasks_created, 8u);
}

TEST(SelfProfile, PhaseTimerAccumulatesAndStopsOnce) {
  SelfProfiler profiler;
  {
    prof::PhaseTimer timer(&SelfProfilePhases::graph_build_s);
    run_fixed_workload();
    timer.stop();
    timer.stop();  // idempotent: second stop adds nothing
  }
  const double first = profiler.snapshot().phases.graph_build_s;
  EXPECT_GT(first, 0.0);
  {
    prof::PhaseTimer timer(&SelfProfilePhases::graph_build_s);
    timer.stop();
  }
  const double second = profiler.snapshot().phases.graph_build_s;
  EXPECT_GE(second, first);  // accumulates, never resets
}

TEST(SelfProfile, DeltaSubtractsCountsAndKeepsGauge) {
  SelfProfiler profiler;
  run_fixed_workload();
  const SelfProfile before = profiler.snapshot();
  run_fixed_workload();
  const SelfProfile after = profiler.snapshot();
  const SelfProfile d = delta(before, after);
  EXPECT_EQ(d.counters.tasks_created, 4u);
  EXPECT_EQ(d.counters.ready_pops, 4u);
  // Gauge and RSS come from `after` as-is.
  EXPECT_EQ(d.counters.max_ready_queue, after.counters.max_ready_queue);
  EXPECT_EQ(d.peak_rss_bytes, after.peak_rss_bytes);
}

TEST(SelfProfile, SnapshotStampsPeakRss) {
  SelfProfiler profiler;
  EXPECT_GT(profiler.snapshot().peak_rss_bytes, 0);
}

TEST(SelfProfile, WriteJsonEmitsStableSchema) {
  SelfProfiler profiler;
  run_fixed_workload();
  std::ostringstream out;
  write_json(out, profiler.snapshot());
  const JsonValue doc = json_parse(out.str());
  EXPECT_EQ(doc.at("schema").as_string(), kSelfProfileSchema);
  EXPECT_DOUBLE_EQ(doc.at("counters").at("tasks_created").as_number(), 4.0);
  EXPECT_GE(doc.at("phases").at("total_s").as_number(), 0.0);
  EXPECT_GT(doc.at("peak_rss_bytes").as_number(), 0.0);
}

TEST(SelfProfile, PrintTextMentionsEveryCounterFamily) {
  SelfProfiler profiler;
  run_fixed_workload();
  std::ostringstream out;
  print_text(out, profiler.snapshot());
  const std::string text = out.str();
  EXPECT_NE(text.find("tasks"), std::string::npos);
  EXPECT_NE(text.find("ready queue"), std::string::npos);
  EXPECT_NE(text.find("events"), std::string::npos);
  EXPECT_NE(text.find("cost model"), std::string::npos);
  EXPECT_NE(text.find("peak RSS"), std::string::npos);
}

}  // namespace
}  // namespace holmes::obs
