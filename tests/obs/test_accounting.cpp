#include "obs/accounting.h"

#include <gtest/gtest.h>

#include "sim/executor.h"
#include "sim/task_graph.h"

namespace holmes::obs {
namespace {

using sim::TaskGraph;
using sim::TaskGraphExecutor;

TEST(Window, ClipIsIntersectionMeasure) {
  const Window w{1.0, 4.0};
  EXPECT_DOUBLE_EQ(w.length(), 3.0);
  EXPECT_DOUBLE_EQ(w.clip(0.0, 10.0), 3.0);
  EXPECT_DOUBLE_EQ(w.clip(2.0, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(w.clip(0.0, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(w.clip(5.0, 6.0), 0.0);
  EXPECT_DOUBLE_EQ(Window{}.clip(0.0, 2.5), 2.5);  // default covers all
}

TEST(AccountResources, DeviceBusyAndQueueing) {
  TaskGraph g;
  const auto gpu = g.add_resource("gpu0.compute");
  const auto a = g.add_compute(gpu, 2.0, "a");
  const auto b = g.add_compute(gpu, 3.0, "b");
  (void)a;
  (void)b;  // both ready at t=0; b queues behind a for 2 s
  const sim::SimResult result = TaskGraphExecutor{}.run(g);
  const auto accounts = account_resources(g, result);
  ASSERT_EQ(accounts.size(), 1u);
  const ResourceAccount& acc = accounts[0];
  EXPECT_TRUE(acc.is_device);
  EXPECT_FALSE(acc.is_link);
  EXPECT_EQ(acc.name, "gpu0.compute");
  EXPECT_DOUBLE_EQ(acc.busy, 5.0);
  EXPECT_DOUBLE_EQ(acc.waiting, 2.0);  // b sat ready for [0, 2)
  EXPECT_EQ(acc.tasks, 2u);
  EXPECT_DOUBLE_EQ(acc.utilization(Window{0.0, 5.0}), 1.0);
}

TEST(AccountResources, LinkBusyIsSerializationOnly) {
  TaskGraph g;
  const auto tx = g.add_resource("gpu0.NIC.tx");
  const auto rx = g.add_resource("gpu1.NIC.rx");
  // 1000 bytes at 1000 B/s -> 1 s serialization, plus 0.5 s latency.
  g.add_transfer(tx, rx, 1000, 1000.0, 0.5, "x");
  const sim::SimResult result = TaskGraphExecutor{}.run(g);
  const auto accounts = account_resources(g, result);
  ASSERT_EQ(accounts.size(), 2u);
  for (const ResourceAccount& acc : accounts) {
    EXPECT_TRUE(acc.is_link);
    EXPECT_DOUBLE_EQ(acc.busy, 1.0);  // not 1.5: latency occupies no port
    EXPECT_EQ(acc.bytes, 1000);
    EXPECT_EQ(acc.tasks, 1u);
  }
}

TEST(AccountResources, WindowRestrictsBusy) {
  TaskGraph g;
  const auto gpu = g.add_resource("gpu0.compute");
  g.add_compute(gpu, 4.0);  // [0, 4)
  const sim::SimResult result = TaskGraphExecutor{}.run(g);
  const auto accounts = account_resources(g, result, Window{1.0, 3.0});
  EXPECT_DOUBLE_EQ(accounts[0].busy, 2.0);
  EXPECT_EQ(accounts[0].tasks, 1u);
  const auto outside = account_resources(g, result, Window{10.0, 20.0});
  EXPECT_DOUBLE_EQ(outside[0].busy, 0.0);
  EXPECT_EQ(outside[0].tasks, 0u);
}

TEST(AccountChannels, AttributesTrafficPerCommunicator) {
  TaskGraph g;
  const auto tx = g.add_resource("tx");
  const auto rx = g.add_resource("rx");
  const auto dp0 = g.channel("dp0");
  const auto a = g.add_transfer(tx, rx, 1000, 1000.0, 0.0, "a", 0, dp0);
  const auto b = g.add_transfer(tx, rx, 2000, 1000.0, 0.0, "b", 0, dp0);
  g.add_dep(b, a);
  g.add_transfer(tx, rx, 500, 1000.0, 0.0, "un");  // unattributed
  const sim::SimResult result = TaskGraphExecutor{}.run(g);
  const auto accounts = account_channels(g, result);
  ASSERT_EQ(accounts.size(), 1u);
  const ChannelAccount& acc = accounts[0];
  EXPECT_EQ(acc.name, "dp0");
  EXPECT_EQ(acc.bytes, 3000);
  EXPECT_EQ(acc.transfers, 2u);
  EXPECT_DOUBLE_EQ(acc.busy, 3.0);
  EXPECT_GT(acc.span, 0.0);
  EXPECT_DOUBLE_EQ(acc.effective_bandwidth(), acc.bytes / acc.span);
}

TEST(AccountTasks, PredicateAndWindow) {
  TaskGraph g;
  const auto gpu = g.add_resource("gpu0.compute");
  const auto fwd = g.add_compute(gpu, 1.0, "fwd", /*tag=*/1);
  const auto bwd = g.add_compute(gpu, 2.0, "bwd", /*tag=*/2);
  g.add_dep(bwd, fwd);
  g.add_noop("join", /*tag=*/1);  // noops never count
  const sim::SimResult result = TaskGraphExecutor{}.run(g);

  const SpanAccount both = account_tasks(g, result, tag_in({1, 2}));
  EXPECT_DOUBLE_EQ(both.busy, 3.0);
  EXPECT_DOUBLE_EQ(both.span, 3.0);
  EXPECT_EQ(both.tasks, 2u);

  const SpanAccount only_fwd = account_tasks(g, result, tag_in({1}));
  EXPECT_DOUBLE_EQ(only_fwd.busy, 1.0);
  EXPECT_EQ(only_fwd.tasks, 1u);

  const SpanAccount none = account_tasks(g, result, tag_in({99}));
  EXPECT_EQ(none.tasks, 0u);
  EXPECT_DOUBLE_EQ(none.span, 0.0);
}

TEST(AccountOverlap, SplitsExposedFromHidden) {
  TaskGraph g;
  const auto gpu = g.add_resource("gpu0.compute");
  const auto tx = g.add_resource("tx");
  const auto rx = g.add_resource("rx");
  // Compute covers [0, 2); the transfer runs [1, 3) -> 1 s hidden, 1 s
  // exposed.
  g.add_compute(gpu, 2.0, "bwd", /*tag=*/2);
  const auto pre = g.add_compute(gpu, 1.0, "warm", /*tag=*/0);
  (void)pre;
  const auto x = g.add_transfer(tx, rx, 2000, 1000.0, 0.0, "rs", /*tag=*/4);
  // Delay the transfer start to t=1 via a 1 s dummy on its TX port.
  const auto hold = g.add_transfer(tx, rx, 1000, 1000.0, 0.0, "hold");
  g.add_dep(x, hold);
  const sim::SimResult result = TaskGraphExecutor{}.run(g);
  ASSERT_DOUBLE_EQ(result.timing(x).start, 1.0);
  const OverlapAccount acc =
      account_overlap(g, result, tag_in({4}), tag_in({2}));
  EXPECT_DOUBLE_EQ(acc.total, 2.0);
  EXPECT_DOUBLE_EQ(acc.overlapped, 1.0);
  EXPECT_DOUBLE_EQ(acc.exposed, 1.0);
}

TEST(AccountOverlap, FullyHiddenAndFullyExposed) {
  TaskGraph g;
  const auto gpu = g.add_resource("gpu0.compute");
  const auto tx = g.add_resource("tx");
  const auto rx = g.add_resource("rx");
  g.add_compute(gpu, 10.0, "bwd", /*tag=*/2);
  g.add_transfer(tx, rx, 1000, 1000.0, 0.0, "rs", /*tag=*/4);  // [0,1)
  const sim::SimResult result = TaskGraphExecutor{}.run(g);
  const OverlapAccount hidden =
      account_overlap(g, result, tag_in({4}), tag_in({2}));
  EXPECT_DOUBLE_EQ(hidden.exposed, 0.0);
  EXPECT_DOUBLE_EQ(hidden.overlapped, 1.0);
  // With no cover tasks, everything is exposed.
  const OverlapAccount exposed =
      account_overlap(g, result, tag_in({4}), tag_in({99}));
  EXPECT_DOUBLE_EQ(exposed.exposed, 1.0);
  EXPECT_DOUBLE_EQ(exposed.overlapped, 0.0);
}

}  // namespace
}  // namespace holmes::obs
