#include "obs/recorder.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "sim/executor.h"
#include "sim/task_graph.h"

namespace holmes::obs {
namespace {

using sim::TaskGraph;
using sim::TaskGraphExecutor;

TEST(RegistryRecorder, FillsRegistryWhileRunning) {
  TaskGraph g;
  const auto gpu = g.add_resource("gpu0.compute");
  const auto tx = g.add_resource("gpu0.NIC.tx");
  const auto rx = g.add_resource("gpu1.NIC.rx");
  const auto dp0 = g.channel("dp0");
  const auto c = g.add_compute(gpu, 2.0, "fwd");
  const auto x = g.add_transfer(tx, rx, 1000, 1000.0, 0.5, "rs", 0, dp0);
  g.add_dep(x, c);
  g.add_noop("join");

  MetricsRegistry registry;
  RegistryRecorder recorder(registry);
  const sim::SimResult result = TaskGraphExecutor{}.run(g, &recorder);

  EXPECT_DOUBLE_EQ(
      registry.counter("sim.tasks", Labels{{"kind", "compute"}}).value(), 1.0);
  EXPECT_DOUBLE_EQ(
      registry.counter("sim.tasks", Labels{{"kind", "transfer"}}).value(),
      1.0);
  EXPECT_DOUBLE_EQ(
      registry.counter("sim.tasks", Labels{{"kind", "noop"}}).value(), 1.0);
  EXPECT_DOUBLE_EQ(
      registry
          .counter("device.busy_seconds", Labels{{"device", "gpu0.compute"}})
          .value(),
      2.0);
  // Port busy time is the serialization only (1 s), not latency.
  EXPECT_DOUBLE_EQ(
      registry.counter("link.busy_seconds", Labels{{"link", "gpu0.NIC.tx"}})
          .value(),
      1.0);
  EXPECT_DOUBLE_EQ(
      registry.counter("link.busy_seconds", Labels{{"link", "gpu1.NIC.rx"}})
          .value(),
      1.0);
  // Egress bytes are attributed to the TX port only.
  EXPECT_DOUBLE_EQ(
      registry.counter("link.bytes", Labels{{"link", "gpu0.NIC.tx"}}).value(),
      1000.0);
  EXPECT_DOUBLE_EQ(
      registry.counter("comm.bytes", Labels{{"comm", "dp0"}}).value(), 1000.0);
  EXPECT_DOUBLE_EQ(
      registry.counter("comm.transfers", Labels{{"comm", "dp0"}}).value(),
      1.0);
  EXPECT_DOUBLE_EQ(registry.gauge("sim.makespan_seconds").value(),
                   result.makespan());
}

TEST(RegistryRecorder, RecordsQueueWaits) {
  TaskGraph g;
  const auto gpu = g.add_resource("gpu0.compute");
  g.add_compute(gpu, 2.0, "a");
  g.add_compute(gpu, 1.0, "b");  // ready at 0, waits 2 s for the resource

  MetricsRegistry registry;
  RegistryRecorder recorder(registry);
  TaskGraphExecutor{}.run(g, &recorder);

  const Histogram& wait =
      registry.histogram("sim.queue_wait_seconds", Labels{{"kind", "compute"}});
  EXPECT_DOUBLE_EQ(wait.total_weight(), 2.0);  // weighted by the wait itself
  EXPECT_DOUBLE_EQ(wait.max(), 2.0);
}

}  // namespace
}  // namespace holmes::obs
