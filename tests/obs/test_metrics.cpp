#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"

namespace holmes::obs {
namespace {

TEST(Labels, CanonicalKeyIsSortedAndStable) {
  const Labels a{{"device", "gpu0"}, {"kind", "compute"}};
  const Labels b{{"kind", "compute"}, {"device", "gpu0"}};
  EXPECT_EQ(a.key(), "{device=gpu0,kind=compute}");
  EXPECT_EQ(a, b);
  EXPECT_TRUE(Labels{}.empty());
  EXPECT_EQ(Labels{}.key(), "");
}

TEST(Labels, RejectsDuplicateKeys) {
  EXPECT_THROW((Labels{{"a", "1"}, {"a", "2"}}), Error);
}

TEST(Counter, AccumulatesValueAndEvents) {
  Counter c;
  c.add(1.5);
  c.add(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 4.0);
  EXPECT_EQ(c.events(), 2u);
}

TEST(Histogram, WeightedMeanAndQuantiles) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5, 2.0);   // bucket <=1, weight 2
  h.observe(5.0, 1.0);   // bucket <=10, weight 1
  h.observe(1000.0, 1.0);  // overflow
  EXPECT_DOUBLE_EQ(h.total_weight(), 4.0);
  EXPECT_DOUBLE_EQ(h.mean(), (0.5 * 2 + 5.0 + 1000.0) / 4.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  // Half the weight sits in the first bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
  // The tail falls into the overflow bucket -> reported as max().
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 1000.0);
  EXPECT_EQ(h.bucket_weights().size(), 4u);
  EXPECT_DOUBLE_EQ(h.bucket_weights()[0], 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_weights()[3], 1.0);
}

TEST(Histogram, EmptyIsZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, RejectsNonIncreasingBounds) {
  EXPECT_THROW(Histogram({2.0, 1.0}), Error);
}

TEST(MetricsRegistry, GetOrCreateReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.counter("sim.tasks", Labels{{"kind", "compute"}});
  a.add(1);
  Counter& b = registry.counter("sim.tasks", Labels{{"kind", "compute"}});
  EXPECT_EQ(&a, &b);
  EXPECT_DOUBLE_EQ(b.value(), 1.0);
  // Different labels are distinct instruments.
  registry.counter("sim.tasks", Labels{{"kind", "transfer"}}).add(5);
  EXPECT_DOUBLE_EQ(
      registry.counter("sim.tasks", Labels{{"kind", "compute"}}).value(), 1.0);
  registry.gauge("sim.makespan_seconds").set(2.5);
  registry.histogram("wait", {}, {0.1, 1.0}).observe(0.05);
  // compute counter + transfer counter + gauge + histogram.
  EXPECT_EQ(registry.size(), 4u);
}

TEST(MetricsRegistry, TextExportIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.counter("b.metric").add(2);
  registry.counter("a.metric", Labels{{"x", "1"}}).add(1);
  registry.gauge("c.metric").set(3);
  const std::string text = registry.to_text();
  const auto a = text.find("a.metric{x=1} 1");
  const auto b = text.find("b.metric 2");
  const auto c = text.find("c.metric 3");
  ASSERT_NE(a, std::string::npos) << text;
  ASSERT_NE(b, std::string::npos) << text;
  ASSERT_NE(c, std::string::npos) << text;
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(MetricsRegistry, JsonExportHasAllSections) {
  MetricsRegistry registry;
  registry.counter("sim.tasks").add(3);
  registry.gauge("sim.makespan_seconds").set(1.25);
  registry.histogram("wait", {}, {1.0}).observe(0.5, 2.0);
  std::ostringstream os;
  registry.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"sim.tasks\""), std::string::npos);
  EXPECT_NE(json.find("1.25"), std::string::npos);
}

}  // namespace
}  // namespace holmes::obs
