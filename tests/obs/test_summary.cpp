#include "obs/summary.h"

#include <gtest/gtest.h>

#include <sstream>

namespace holmes::obs {
namespace {

std::string render(const RunSummary& s) {
  std::ostringstream os;
  write_json(os, s);
  return os.str();
}

RunSummary sample() {
  RunSummary s;
  s.topology = "2x8:ib+2x8:roce";
  s.framework = "Holmes";
  s.workload = "group 1 (3.6B params)";
  s.iterations = 3;
  s.window_begin_s = 1.5;
  s.window_end_s = 3.5;
  s.iteration_s = 1.0;
  s.tflops_per_gpu = 150.5;
  s.throughput = 768.0;
  s.devices = {{"gpu0.compute", 0.9, 0.05, 0.45, 42}};
  s.stages = {{0, 2, 12, 1.8, 1.0, 0.1}};
  s.links = {{"gpu0.InfiniBand.tx", 0.25, 0.0, 0.125, 1000000, 10, 0.032}};
  s.comms = {{"dp0", 1000000, 10, 0.25, 0.5, 0.016}};
  s.grad_sync = {0.5, 0.4, 0.1};
  s.param_allgather = {0.25, 0.05, 0.2};
  return s;
}

// The schema is a contract: plotting pipelines and the stats CLI's --json
// consumers parse it. Any change to field names, order, or number
// formatting must bump kRunSummarySchema and update this golden string.
TEST(RunSummaryJson, GoldenSchema) {
  const std::string expected =
      "{\"schema\":\"holmes.run_summary.v1\","
      "\"topology\":\"2x8:ib+2x8:roce\","
      "\"framework\":\"Holmes\","
      "\"workload\":\"group 1 (3.6B params)\","
      "\"iterations\":3,"
      "\"window_begin_s\":1.5,\"window_end_s\":3.5,"
      "\"iteration_s\":1,\"tflops_per_gpu\":150.5,\"throughput\":768,"
      "\"devices\":[{\"name\":\"gpu0.compute\",\"busy_s\":0.9,"
      "\"waiting_s\":0.05,\"utilization\":0.45,\"tasks\":42}],"
      "\"stages\":[{\"stage\":0,\"devices\":2,\"layers\":12,"
      "\"compute_busy_s\":1.8,\"span_s\":1,\"bubble_fraction\":0.1}],"
      "\"links\":[{\"name\":\"gpu0.InfiniBand.tx\",\"busy_s\":0.25,"
      "\"waiting_s\":0,\"utilization\":0.125,\"bytes\":1000000,"
      "\"transfers\":10,\"effective_gbps\":0.032}],"
      "\"comms\":[{\"name\":\"dp0\",\"bytes\":1000000,\"transfers\":10,"
      "\"busy_s\":0.25,\"span_s\":0.5,\"bus_gbps\":0.016}],"
      "\"grad_sync\":{\"total_s\":0.5,\"overlapped_s\":0.4,"
      "\"exposed_s\":0.1},"
      "\"param_allgather\":{\"total_s\":0.25,\"overlapped_s\":0.05,"
      "\"exposed_s\":0.2}}";
  EXPECT_EQ(render(sample()), expected);
}

TEST(RunSummaryJson, OutputIsDeterministic) {
  EXPECT_EQ(render(sample()), render(sample()));
}

TEST(RunSummaryJson, EmptyBreakdownsStayValid) {
  RunSummary s;
  const std::string json = render(s);
  EXPECT_NE(json.find("\"devices\":[]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"stages\":[]"), std::string::npos);
  EXPECT_NE(json.find("\"links\":[]"), std::string::npos);
  EXPECT_NE(json.find("\"comms\":[]"), std::string::npos);
  EXPECT_NE(json.find("\"schema\":\"holmes.run_summary.v1\""),
            std::string::npos);
}

TEST(RunSummaryJson, EscapesStrings) {
  RunSummary s;
  s.workload = "odd \"name\"\nwith breaks";
  const std::string json = render(s);
  EXPECT_NE(json.find("odd \\\"name\\\"\\nwith breaks"), std::string::npos)
      << json;
}

}  // namespace
}  // namespace holmes::obs
