#include "obs/sensitivity.h"

#include <gtest/gtest.h>

#include "sim/executor.h"

namespace holmes::obs {
namespace {

using sim::TaskGraph;
using sim::TaskGraphExecutor;
using sim::TaskId;

/// compute(1 s) -> transfer(1 s busy + 0.5 s latency) -> compute(2 s).
TaskGraph chain_graph(sim::SimResult* result_out) {
  TaskGraph g;
  const auto gpu0 = g.add_resource("gpu0.compute");
  const auto tx = g.add_resource("gpu0.tx");
  const auto rx = g.add_resource("gpu1.rx");
  const auto gpu1 = g.add_resource("gpu1.compute");
  const TaskId c1 = g.add_compute(gpu0, 1.0, "fwd");
  const TaskId x = g.add_transfer(tx, rx, 1000, 1000.0, 0.5, "act");
  g.add_dep(x, c1);
  const TaskId c2 = g.add_compute(gpu1, 2.0, "fwd2");
  g.add_dep(c2, x);
  *result_out = TaskGraphExecutor{}.run(g);
  return g;
}

std::string by_kind(const PathSegment& segment, const sim::Task& task) {
  (void)task;
  return segment.kind == SegmentKind::kCompute ? "compute" : "link";
}

TEST(Sensitivity, AggregatesBusySegmentsPerClass) {
  sim::SimResult result({}, {}, 0);
  const TaskGraph g = chain_graph(&result);
  const CriticalPath path = extract_critical_path(g, result);
  const std::vector<WhatIf> whatifs =
      what_if_sensitivities(g, path, by_kind);

  // compute: 1 + 2 = 3 s; link: 1 s busy (the 0.5 s latency is excluded —
  // no bandwidth speedup removes propagation delay).
  ASSERT_EQ(whatifs.size(), 2u);
  EXPECT_EQ(whatifs[0].target, "compute");
  EXPECT_DOUBLE_EQ(whatifs[0].critical_s, 3.0);
  EXPECT_DOUBLE_EQ(whatifs[0].dmakespan_ds, -3.0);
  EXPECT_EQ(whatifs[1].target, "link");
  EXPECT_DOUBLE_EQ(whatifs[1].critical_s, 1.0);
}

TEST(Sensitivity, FirstOrderPredictionIsExactForPureChain) {
  // On a pure dependency chain the path cannot re-route, so the first-order
  // prediction is exact: doubling compute speed halves the compute seconds.
  sim::SimResult result({}, {}, 0);
  const TaskGraph g = chain_graph(&result);
  const CriticalPath path = extract_critical_path(g, result);
  const std::vector<WhatIf> whatifs =
      what_if_sensitivities(g, path, by_kind);
  ASSERT_FALSE(whatifs.empty());
  const WhatIf& compute = whatifs[0];

  EXPECT_DOUBLE_EQ(compute.predicted_savings(2.0), 1.5);
  EXPECT_DOUBLE_EQ(compute.predicted_makespan(result.makespan(), 2.0),
                   result.makespan() - 1.5);

  // Re-simulate with compute twice as fast and compare.
  TaskGraph fast;
  const auto gpu0 = fast.add_resource("gpu0.compute");
  const auto tx = fast.add_resource("gpu0.tx");
  const auto rx = fast.add_resource("gpu1.rx");
  const auto gpu1 = fast.add_resource("gpu1.compute");
  const TaskId c1 = fast.add_compute(gpu0, 0.5, "fwd");
  const TaskId x = fast.add_transfer(tx, rx, 1000, 1000.0, 0.5, "act");
  fast.add_dep(x, c1);
  const TaskId c2 = fast.add_compute(gpu1, 1.0, "fwd2");
  fast.add_dep(c2, x);
  const sim::SimResult fast_result = TaskGraphExecutor{}.run(fast);
  EXPECT_DOUBLE_EQ(fast_result.makespan(),
                   compute.predicted_makespan(result.makespan(), 2.0));
}

TEST(Sensitivity, QueueWaitCreditsTheBlockingOccupant) {
  // a holds gpu0 over [0,3]; b (fed by c elsewhere) is ready at 1.5 but
  // queues until a releases. The wait [1.5, 3] is controlled by a, so a's
  // class must carry a's *full* occupancy (1.5 busy + 1.5 wait).
  TaskGraph g;
  const auto gpu = g.add_resource("gpu0.compute");
  const auto other = g.add_resource("gpu1.compute");
  g.add_compute(gpu, 3.0, "hog");
  const TaskId c = g.add_compute(other, 1.5, "feeder");
  const TaskId b = g.add_compute(gpu, 1.0, "blocked");
  g.add_dep(b, c);
  const sim::SimResult result = TaskGraphExecutor{}.run(g);
  const CriticalPath path = extract_critical_path(g, result);
  const std::vector<WhatIf> whatifs = what_if_sensitivities(
      g, path, [](const PathSegment&, const sim::Task& task) {
        return "class/" + task.label;
      });

  ASSERT_EQ(whatifs.size(), 2u);
  EXPECT_EQ(whatifs[0].target, "class/hog");
  EXPECT_DOUBLE_EQ(whatifs[0].critical_s, 3.0);
  EXPECT_EQ(whatifs[1].target, "class/blocked");
  EXPECT_DOUBLE_EQ(whatifs[1].critical_s, 1.0);

  // The credit makes the first-order prediction exact here: halving a's
  // duration moves its release to 1.5, b runs [1.5, 2.5] — saving 1.5 s,
  // exactly predicted_savings(2.0) on 3.0 critical seconds.
  EXPECT_DOUBLE_EQ(whatifs[0].predicted_savings(2.0), 1.5);
  TaskGraph fast;
  const auto fgpu = fast.add_resource("gpu0.compute");
  const auto fother = fast.add_resource("gpu1.compute");
  fast.add_compute(fgpu, 1.5, "hog");
  const TaskId fc = fast.add_compute(fother, 1.5, "feeder");
  const TaskId fb = fast.add_compute(fgpu, 1.0, "blocked");
  fast.add_dep(fb, fc);
  EXPECT_DOUBLE_EQ(TaskGraphExecutor{}.run(fast).makespan(),
                   result.makespan() - 1.5);
}

TEST(Sensitivity, EmptyClassNamesAreExcluded) {
  sim::SimResult result({}, {}, 0);
  const TaskGraph g = chain_graph(&result);
  const CriticalPath path = extract_critical_path(g, result);
  const std::vector<WhatIf> whatifs = what_if_sensitivities(
      g, path, [](const PathSegment& segment, const sim::Task&) {
        return segment.kind == SegmentKind::kCompute ? "compute" : "";
      });
  ASSERT_EQ(whatifs.size(), 1u);
  EXPECT_EQ(whatifs[0].target, "compute");
}

TEST(Sensitivity, EmptyPathYieldsNoEntries) {
  TaskGraph g;
  const CriticalPath path =
      extract_critical_path(g, TaskGraphExecutor{}.run(g));
  EXPECT_TRUE(what_if_sensitivities(g, path, by_kind).empty());
}

TEST(Sensitivity, SortsDescendingWithNameTiebreak) {
  // Two equal-duration computes classified into different classes must come
  // out in name order.
  TaskGraph g;
  const auto gpu = g.add_resource("gpu0.compute");
  const TaskId c1 = g.add_compute(gpu, 1.0, "a");
  const TaskId c2 = g.add_compute(gpu, 1.0, "b");
  g.add_dep(c2, c1);
  const sim::SimResult result = TaskGraphExecutor{}.run(g);
  const CriticalPath path = extract_critical_path(g, result);
  const std::vector<WhatIf> whatifs = what_if_sensitivities(
      g, path, [&g](const PathSegment& segment, const sim::Task&) {
        return "class/" + g.task(segment.task).label;
      });
  ASSERT_EQ(whatifs.size(), 2u);
  EXPECT_EQ(whatifs[0].target, "class/a");
  EXPECT_EQ(whatifs[1].target, "class/b");
}

}  // namespace
}  // namespace holmes::obs
