#include "obs/critical_path.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/executor.h"

namespace holmes::obs {
namespace {

using sim::TaskGraph;
using sim::TaskGraphExecutor;
using sim::TaskId;

/// The core invariant: segments tile [0, makespan] with no gaps or
/// overlaps, using exact FP equality (starts are copies of constraint
/// times, never re-derived arithmetic).
void expect_exact_tiling(const CriticalPath& path) {
  ASSERT_FALSE(path.segments.empty());
  EXPECT_EQ(path.segments.front().begin, 0.0);
  for (std::size_t i = 1; i < path.segments.size(); ++i) {
    EXPECT_EQ(path.segments[i].begin, path.segments[i - 1].end)
        << "gap/overlap between segments " << i - 1 << " and " << i;
  }
  EXPECT_EQ(path.segments.back().end, path.makespan);
}

TEST(CriticalPath, EmptyGraph) {
  TaskGraph g;
  const CriticalPath path =
      extract_critical_path(g, TaskGraphExecutor{}.run(g));
  EXPECT_TRUE(path.segments.empty());
  EXPECT_TRUE(path.tasks.empty());
  EXPECT_EQ(path.makespan, 0.0);
}

TEST(CriticalPath, SingleComputeTask) {
  TaskGraph g;
  const auto gpu = g.add_resource("gpu0.compute");
  const TaskId c = g.add_compute(gpu, 2.0, "fwd");
  const CriticalPath path =
      extract_critical_path(g, TaskGraphExecutor{}.run(g));

  ASSERT_EQ(path.segments.size(), 1u);
  EXPECT_EQ(path.segments[0].task, c);
  EXPECT_EQ(path.segments[0].kind, SegmentKind::kCompute);
  EXPECT_EQ(path.segments[0].edge, PathEdge::kStart);
  EXPECT_EQ(path.segments[0].resource, gpu);
  expect_exact_tiling(path);
  EXPECT_EQ(path.makespan, 2.0);
}

TEST(CriticalPath, DependencyChainWithTransferLatency) {
  TaskGraph g;
  const auto gpu0 = g.add_resource("gpu0.compute");
  const auto tx = g.add_resource("gpu0.tx");
  const auto rx = g.add_resource("gpu1.rx");
  const auto gpu1 = g.add_resource("gpu1.compute");
  const TaskId c1 = g.add_compute(gpu0, 1.0, "fwd");
  // 1000 B at 1000 B/s: ports busy 1 s, then 0.5 s propagation latency.
  const TaskId x = g.add_transfer(tx, rx, 1000, 1000.0, 0.5, "act");
  g.add_dep(x, c1);
  const TaskId c2 = g.add_compute(gpu1, 2.0, "fwd2");
  g.add_dep(c2, x);

  const CriticalPath path =
      extract_critical_path(g, TaskGraphExecutor{}.run(g));

  // compute [0,1] -> comm busy [1,2] -> latency [2,2.5] -> compute [2.5,4.5]
  ASSERT_EQ(path.segments.size(), 4u);
  EXPECT_EQ(path.segments[0].task, c1);
  EXPECT_EQ(path.segments[0].kind, SegmentKind::kCompute);
  EXPECT_EQ(path.segments[1].task, x);
  EXPECT_EQ(path.segments[1].kind, SegmentKind::kCommBusy);
  EXPECT_EQ(path.segments[1].edge, PathEdge::kDependency);
  EXPECT_EQ(path.segments[1].resource, tx);
  EXPECT_EQ(path.segments[2].task, x);
  EXPECT_EQ(path.segments[2].kind, SegmentKind::kCommLatency);
  EXPECT_DOUBLE_EQ(path.segments[2].duration(), 0.5);
  EXPECT_EQ(path.segments[3].task, c2);
  EXPECT_EQ(path.segments[3].kind, SegmentKind::kCompute);
  EXPECT_EQ(path.segments[3].edge, PathEdge::kDependency);
  expect_exact_tiling(path);
  EXPECT_DOUBLE_EQ(path.makespan, 4.5);
  const std::vector<TaskId> expected_tasks = {c1, x, c2};
  EXPECT_EQ(path.tasks, expected_tasks);
}

TEST(CriticalPath, ResourceContentionProducesQueueWait) {
  TaskGraph g;
  const auto gpu = g.add_resource("gpu0.compute");
  const auto other = g.add_resource("gpu1.compute");
  const TaskId a = g.add_compute(gpu, 3.0, "hog");
  const TaskId c = g.add_compute(other, 1.5, "feeder");
  const TaskId b = g.add_compute(gpu, 1.0, "blocked");
  g.add_dep(b, c);

  // a holds gpu0 over [0,3]; b is ready at 1.5 but queues until 3.
  const CriticalPath path =
      extract_critical_path(g, TaskGraphExecutor{}.run(g));

  ASSERT_EQ(path.segments.size(), 3u);
  EXPECT_EQ(path.segments[0].task, a);
  EXPECT_EQ(path.segments[0].kind, SegmentKind::kCompute);
  EXPECT_DOUBLE_EQ(path.segments[0].end, 1.5);
  EXPECT_EQ(path.segments[1].task, b);
  EXPECT_EQ(path.segments[1].kind, SegmentKind::kQueueWait);
  EXPECT_EQ(path.segments[1].resource, gpu);  // the contended resource
  EXPECT_DOUBLE_EQ(path.segments[1].duration(), 1.5);
  EXPECT_EQ(path.segments[2].task, b);
  EXPECT_EQ(path.segments[2].kind, SegmentKind::kCompute);
  EXPECT_EQ(path.segments[2].edge, PathEdge::kResource);
  expect_exact_tiling(path);
  EXPECT_DOUBLE_EQ(path.makespan, 4.0);
}

TEST(CriticalPath, DependencyPreferredOverResourceOnTies) {
  // c2 starts exactly when c1 both finishes (dependency) and frees the
  // shared resource: the tie must resolve to the dependency edge.
  TaskGraph g;
  const auto gpu = g.add_resource("gpu0.compute");
  const TaskId c1 = g.add_compute(gpu, 1.0, "first");
  const TaskId c2 = g.add_compute(gpu, 1.0, "second");
  g.add_dep(c2, c1);

  const CriticalPath path =
      extract_critical_path(g, TaskGraphExecutor{}.run(g));
  ASSERT_EQ(path.segments.size(), 2u);
  EXPECT_EQ(path.segments[1].task, c2);
  EXPECT_EQ(path.segments[1].edge, PathEdge::kDependency);
  expect_exact_tiling(path);
}

TEST(CriticalPath, ExtractionIsDeterministic) {
  TaskGraph g;
  const auto gpu = g.add_resource("gpu0.compute");
  const auto other = g.add_resource("gpu1.compute");
  const TaskId a = g.add_compute(gpu, 2.0);
  const TaskId b = g.add_compute(other, 2.0);
  const TaskId join = g.add_noop("join");
  g.add_dep(join, a);
  g.add_dep(join, b);
  const TaskId tail = g.add_compute(gpu, 1.0);
  g.add_dep(tail, join);

  const sim::SimResult result = TaskGraphExecutor{}.run(g);
  const CriticalPath p1 = extract_critical_path(g, result);
  const CriticalPath p2 = extract_critical_path(g, result);
  ASSERT_EQ(p1.segments.size(), p2.segments.size());
  for (std::size_t i = 0; i < p1.segments.size(); ++i) {
    EXPECT_EQ(p1.segments[i].task, p2.segments[i].task);
    EXPECT_EQ(p1.segments[i].begin, p2.segments[i].begin);
  }
  EXPECT_EQ(p1.tasks, p2.tasks);
}

TEST(CriticalPathSummary, JsonIsStableAndCarriesSchema) {
  CriticalPathSummary s;
  s.topology = "2n";
  s.framework = "Holmes";
  s.workload = "group 1";
  s.makespan_s = 1.25;
  s.window_end_s = 1.25;
  s.buckets.push_back({"compute/stage0", "compute", 1.0, 0.8, 2});
  s.top_segments.push_back(
      {0, "fwd", "compute", "start", "gpu0.compute", "compute/stage0", 0.0, 1.0});
  s.sensitivities.push_back({"compute/stage0", 1.0, -1.0, 0.0909});
  s.total_segments = 2;

  std::ostringstream a;
  std::ostringstream b;
  write_json(a, s);
  write_json(b, s);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"schema\":\"holmes.critical_path.v1\""),
            std::string::npos);
  EXPECT_NE(a.str().find("\"buckets\":[{\"name\":\"compute/stage0\""),
            std::string::npos);
}

TEST(CriticalPathSummary, TextReportMentionsWindowOnlyWhenClipped) {
  CriticalPathSummary s;
  s.framework = "Holmes";
  s.workload = "group 1";
  s.topology = "2n";
  s.makespan_s = 2.0;
  s.window_end_s = 2.0;
  std::ostringstream full;
  print_text(full, s);
  EXPECT_EQ(full.str().find("attribution window"), std::string::npos);

  s.window_begin_s = 0.5;
  s.window_end_s = 1.5;
  std::ostringstream clipped;
  print_text(clipped, s);
  EXPECT_NE(clipped.str().find("attribution window [0.5, 1.5] s"),
            std::string::npos);
}

}  // namespace
}  // namespace holmes::obs
