#include "obs/timeline.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "obs/accounting.h"
#include "sim/executor.h"
#include "sim/rate_timeline.h"
#include "sim/task_graph.h"

namespace holmes::obs {
namespace {

using sim::TaskGraph;
using sim::TaskGraphExecutor;

// ---------------------------------------------------------------- StepSeries

TEST(StepSeries, FromDeltasCoalescesAndDropsNoOpBreakpoints) {
  const StepSeries s = StepSeries::from_deltas(
      {{1.0, 1.0}, {1.0, 1.0}, {3.0, -2.0}, {5.0, 0.0}});
  // Two equal-time deltas coalesce into one breakpoint; the zero delta at
  // t=5 changes nothing and is dropped entirely.
  ASSERT_EQ(s.breakpoints(), 2u);
  EXPECT_DOUBLE_EQ(s.times()[0], 1.0);
  EXPECT_DOUBLE_EQ(s.values()[0], 2.0);
  EXPECT_DOUBLE_EQ(s.times()[1], 3.0);
  EXPECT_DOUBLE_EQ(s.values()[1], 0.0);
  EXPECT_DOUBLE_EQ(s.value_at(0.5), 0.0);  // before the first breakpoint
  EXPECT_DOUBLE_EQ(s.value_at(1.0), 2.0);
  EXPECT_DOUBLE_EQ(s.value_at(2.9), 2.0);
  EXPECT_DOUBLE_EQ(s.value_at(3.0), 0.0);
  EXPECT_DOUBLE_EQ(s.value_at(100.0), 0.0);
}

TEST(StepSeries, FromDeltasIsStableUnderUnsortedInput) {
  // Deltas arrive out of time order; from_deltas stable-sorts them.
  const StepSeries s =
      StepSeries::from_deltas({{4.0, -1.0}, {2.0, 1.0}, {0.0, 1.0}, {6.0, -1.0}});
  ASSERT_EQ(s.breakpoints(), 4u);
  EXPECT_DOUBLE_EQ(s.value_at(1.0), 1.0);
  EXPECT_DOUBLE_EQ(s.value_at(3.0), 2.0);
  EXPECT_DOUBLE_EQ(s.value_at(5.0), 1.0);
  EXPECT_DOUBLE_EQ(s.value_at(7.0), 0.0);
}

TEST(StepSeries, FromLevelsDropsRepeatedValues) {
  const StepSeries s =
      StepSeries::from_levels({0.0, 1.0, 2.0, 3.0}, {1.0, 1.0, 0.5, 0.5});
  ASSERT_EQ(s.breakpoints(), 2u);
  EXPECT_DOUBLE_EQ(s.value_at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(s.value_at(1.5), 1.0);
  EXPECT_DOUBLE_EQ(s.value_at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(s.value_at(10.0), 0.5);  // last level holds forever
}

TEST(StepSeries, IntegralAverageAndMaximum) {
  // Value 2 on [1,3), 0 after.
  const StepSeries s = StepSeries::from_deltas({{1.0, 2.0}, {3.0, -2.0}});
  EXPECT_DOUBLE_EQ(s.integral(0.0, 4.0), 4.0);
  EXPECT_DOUBLE_EQ(s.integral(2.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(s.integral(3.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(s.average(0.0, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(s.average(1.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(s.average(5.0, 5.0), 0.0);  // empty window
  EXPECT_DOUBLE_EQ(s.maximum(0.0, 4.0), 2.0);
  EXPECT_DOUBLE_EQ(s.maximum_at(0.0, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(s.maximum(3.0, 4.0), 0.0);
}

TEST(StepSeries, BucketizeIsTimeWeightedMean) {
  // 1 on [0,2), 3 on [2,4).
  const StepSeries s =
      StepSeries::from_deltas({{0.0, 1.0}, {2.0, 2.0}, {4.0, -3.0}});
  const std::vector<double> two = s.bucketize(0.0, 4.0, 2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_DOUBLE_EQ(two[0], 1.0);
  EXPECT_DOUBLE_EQ(two[1], 3.0);
  const std::vector<double> one = s.bucketize(1.0, 3.0, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 2.0);  // half at 1, half at 3
  EXPECT_TRUE(s.bucketize(0.0, 4.0, 0).empty());
  EXPECT_TRUE(s.bucketize(4.0, 4.0, 3).empty());
}

TEST(StepSeries, IntervalsAtLeastMergesContiguousSegments) {
  // 1 on [0,2), 2 on [2,4), 1 on [4,5): threshold 1 must merge all three
  // contiguous segments into one interval; threshold 2 isolates the middle.
  const StepSeries s = StepSeries::from_deltas(
      {{0.0, 1.0}, {2.0, 1.0}, {4.0, -1.0}, {5.0, -1.0}});
  const auto merged = s.intervals_at_least(1.0, 0.0, 5.0);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_DOUBLE_EQ(merged[0].first, 0.0);
  EXPECT_DOUBLE_EQ(merged[0].second, 5.0);
  const auto strict = s.intervals_at_least(2.0, 0.0, 5.0);
  ASSERT_EQ(strict.size(), 1u);
  EXPECT_DOUBLE_EQ(strict[0].first, 2.0);
  EXPECT_DOUBLE_EQ(strict[0].second, 4.0);
  EXPECT_TRUE(s.intervals_at_least(3.0, 0.0, 5.0).empty());
  // Window clipping applies to the extracted intervals too.
  const auto clipped = s.intervals_at_least(1.0, 1.0, 3.0);
  ASSERT_EQ(clipped.size(), 1u);
  EXPECT_DOUBLE_EQ(clipped[0].first, 1.0);
  EXPECT_DOUBLE_EQ(clipped[0].second, 3.0);
}

// ------------------------------------------------------ extraction exactness

/// A small but non-trivial fixture: two devices, two NIC port pairs of
/// different classes, a channel, and enough dependencies that queueing and
/// overlap both occur.
TaskGraph mixed_graph() {
  TaskGraph g;
  const auto gpu0 = g.add_resource("gpu0.compute");
  const auto gpu1 = g.add_resource("gpu1.compute");
  const auto ib_tx = g.add_resource("gpu0.InfiniBand.tx");
  const auto ib_rx = g.add_resource("gpu1.InfiniBand.rx");
  const auto eth_tx = g.add_resource("gpu0.Ethernet.tx");
  const auto eth_rx = g.add_resource("gpu1.Ethernet.rx");
  const auto dp = g.channel("dp0");
  const auto a = g.add_compute(gpu0, 2.0, "fwd0");
  const auto b = g.add_compute(gpu0, 3.0, "fwd1");  // queues behind a
  const auto c = g.add_compute(gpu1, 1.0, "fwd2");
  // 1000 B at 1000 B/s -> 1 s serialization + 0.5 s latency.
  const auto x = g.add_transfer(ib_tx, ib_rx, 1000, 1000.0, 0.5, "p2p", 0, dp);
  g.add_dep(x, a);
  const auto y =
      g.add_transfer(eth_tx, eth_rx, 4000, 1000.0, 0.25, "grad", 0, dp);
  g.add_dep(y, b);
  const auto join = g.add_noop("join");
  g.add_dep(join, x);
  g.add_dep(join, y);
  (void)c;
  return g;
}

TEST(ExtractTimeline, AggregatesAreBitEqualToAccounting) {
  const TaskGraph g = mixed_graph();
  const sim::SimResult result = TaskGraphExecutor{}.run(g);
  const Timeline t = extract_timeline(g, result);
  const auto accounts = account_resources(g, result, t.window);
  const auto channel_accounts = account_channels(g, result, t.window);

  ASSERT_EQ(t.resources.size(), accounts.size());
  for (std::size_t r = 0; r < accounts.size(); ++r) {
    // Exact == on doubles is deliberate: the timeline copies the accounting
    // layer's numbers, it does not recompute them.
    EXPECT_EQ(t.resources[r].busy_total, accounts[r].busy) << accounts[r].name;
    EXPECT_EQ(t.resources[r].waiting_total, accounts[r].waiting);
    EXPECT_EQ(t.resources[r].bytes, accounts[r].bytes);
    EXPECT_EQ(t.resources[r].tasks, accounts[r].tasks);
    EXPECT_EQ(t.resources[r].is_device, accounts[r].is_device);
    EXPECT_EQ(t.resources[r].is_link, accounts[r].is_link);
    // The busy series must integrate to exactly the accounted busy time: a
    // serial resource's 0/1 occupancy sums disjoint task intervals in the
    // same order as the accounting pass.
    EXPECT_DOUBLE_EQ(t.resources[r].busy.integral(t.window.begin, t.window.end),
                     t.resources[r].busy_total)
        << accounts[r].name;
  }
  ASSERT_EQ(t.channels.size(), channel_accounts.size());
  for (std::size_t c = 0; c < channel_accounts.size(); ++c) {
    EXPECT_EQ(t.channels[c].bytes, channel_accounts[c].bytes);
    EXPECT_EQ(t.channels[c].transfers, channel_accounts[c].transfers);
    EXPECT_EQ(t.channels[c].busy_total, channel_accounts[c].busy);
    EXPECT_EQ(t.channels[c].name, channel_accounts[c].name);
  }
}

TEST(ExtractTimeline, DeviceOccupancyAndQueueDepth) {
  TaskGraph g;
  const auto gpu = g.add_resource("gpu0.compute");
  g.add_compute(gpu, 2.0, "a");
  g.add_compute(gpu, 3.0, "b");  // ready at 0, starts at 2
  const sim::SimResult result = TaskGraphExecutor{}.run(g);
  const Timeline t = extract_timeline(g, result);
  ASSERT_EQ(t.resources.size(), 1u);
  const ResourceTimeline& res = t.resources[0];
  EXPECT_DOUBLE_EQ(res.busy.value_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(res.busy.value_at(4.9), 1.0);
  EXPECT_DOUBLE_EQ(res.busy.value_at(5.0), 0.0);
  EXPECT_DOUBLE_EQ(res.busy.integral(0.0, 5.0), 5.0);
  // b is ready-but-blocked on [0, 2).
  EXPECT_DOUBLE_EQ(res.queue.value_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(res.queue.value_at(1.9), 1.0);
  EXPECT_DOUBLE_EQ(res.queue.value_at(2.0), 0.0);
  EXPECT_DOUBLE_EQ(res.queue.integral(0.0, 5.0), res.waiting_total);
  EXPECT_DOUBLE_EQ(t.makespan, 5.0);
}

TEST(ExtractTimeline, ChannelInFlightAndCumulativeCurves) {
  TaskGraph g;
  const auto tx = g.add_resource("gpu0.NIC.tx");
  const auto rx = g.add_resource("gpu1.NIC.rx");
  const auto dp = g.channel("dp0");
  // 1 s serialization + 0.5 s latency: in flight on [0, 1.5), delivered at
  // t=1.5.
  g.add_transfer(tx, rx, 1000, 1000.0, 0.5, "x", 0, dp);
  const sim::SimResult result = TaskGraphExecutor{}.run(g);
  const Timeline t = extract_timeline(g, result);
  ASSERT_EQ(t.channels.size(), 1u);
  const ChannelTimeline& chan = t.channels[0];
  EXPECT_EQ(chan.name, "dp0");
  EXPECT_DOUBLE_EQ(chan.in_flight.value_at(0.0), 1000.0);
  EXPECT_DOUBLE_EQ(chan.in_flight.value_at(1.49), 1000.0);
  EXPECT_DOUBLE_EQ(chan.in_flight.value_at(1.5), 0.0);
  EXPECT_DOUBLE_EQ(chan.cumulative.value_at(1.0), 0.0);
  EXPECT_DOUBLE_EQ(chan.cumulative.value_at(1.5), 1000.0);
  EXPECT_DOUBLE_EQ(chan.peak_in_flight, 1000.0);
  EXPECT_DOUBLE_EQ(chan.peak_at, 0.0);
  // The TX/RX ports are busy for the serialization second only.
  EXPECT_DOUBLE_EQ(t.resources[tx].busy.integral(0.0, t.makespan), 1.0);
  EXPECT_DOUBLE_EQ(t.resources[rx].busy.integral(0.0, t.makespan), 1.0);
}

TEST(ExtractTimeline, ClassSaturationIntervals) {
  const TaskGraph g = mixed_graph();
  const sim::SimResult result = TaskGraphExecutor{}.run(g);
  TimelineOptions options;
  options.saturation_threshold = 1.0;
  const auto classify = [](const std::string& name) -> std::string {
    if (name.find("InfiniBand") != std::string::npos) return "InfiniBand";
    if (name.find("Ethernet") != std::string::npos) return "Ethernet";
    return "compute";
  };
  const Timeline t = extract_timeline(g, result, options, classify);
  // Link classes only, sorted by name.
  ASSERT_EQ(t.classes.size(), 2u);
  EXPECT_EQ(t.classes[0].nic_class, "Ethernet");
  EXPECT_EQ(t.classes[1].nic_class, "InfiniBand");
  for (const ClassTimeline& cls : t.classes) {
    EXPECT_EQ(cls.ports, 2u);
    // Both ports of a p2p transfer are busy simultaneously for its 1-per-
    // byte serialization, so at threshold 1.0 the saturated measure equals
    // one port's busy time.
    EXPECT_DOUBLE_EQ(cls.saturated_total, cls.busy_total / 2.0);
    ASSERT_EQ(cls.saturated.size(), 1u);
    EXPECT_DOUBLE_EQ(cls.saturated[0].second - cls.saturated[0].first,
                     cls.saturated_total);
  }
  // The IB transfer serializes on [2, 3); Ethernet on [5, 9).
  EXPECT_DOUBLE_EQ(t.classes[1].saturated[0].first, 2.0);
  EXPECT_DOUBLE_EQ(t.classes[1].saturated[0].second, 3.0);
  EXPECT_DOUBLE_EQ(t.classes[0].saturated[0].first, 5.0);
  EXPECT_DOUBLE_EQ(t.classes[0].saturated[0].second, 9.0);
}

TEST(ExtractTimeline, TopTalkersRankByBytesThenId) {
  const TaskGraph g = mixed_graph();
  const sim::SimResult result = TaskGraphExecutor{}.run(g);
  const Timeline t = extract_timeline(g, result);
  // Four ports carried bytes: the Ethernet pair (4000 each) outranks the
  // InfiniBand pair (1000 each); ties break by ascending resource id.
  ASSERT_EQ(t.top_talkers.size(), 4u);
  EXPECT_EQ(t.top_talkers[0].name, "gpu0.Ethernet.tx");
  EXPECT_EQ(t.top_talkers[1].name, "gpu1.Ethernet.rx");
  EXPECT_EQ(t.top_talkers[2].name, "gpu0.InfiniBand.tx");
  EXPECT_EQ(t.top_talkers[3].name, "gpu1.InfiniBand.rx");
  EXPECT_DOUBLE_EQ(t.top_talkers[0].share, 4000.0 / 10000.0);
  EXPECT_DOUBLE_EQ(t.top_talkers[2].share, 1000.0 / 10000.0);
}

TEST(ExtractTimeline, WindowClipsAggregatesButNotSeries) {
  const TaskGraph g = mixed_graph();
  const sim::SimResult result = TaskGraphExecutor{}.run(g);
  TimelineOptions options;
  options.window = Window{0.0, 4.0};
  const Timeline t = extract_timeline(g, result, options);
  EXPECT_DOUBLE_EQ(t.window.end, 4.0);
  const auto accounts = account_resources(g, result, Window{0.0, 4.0});
  for (std::size_t r = 0; r < accounts.size(); ++r) {
    EXPECT_EQ(t.resources[r].busy_total, accounts[r].busy);
  }
  // A window end past the makespan clips to the makespan.
  TimelineOptions wide;
  wide.window = Window{0.0, 1e9};
  const Timeline clipped = extract_timeline(g, result, wide);
  EXPECT_DOUBLE_EQ(clipped.window.end, clipped.makespan);
}

TEST(ExtractTimeline, RateOverlayTracksEffectiveRate) {
  TaskGraph g;
  const auto tx = g.add_resource("gpu0.Ethernet.tx");
  const auto rx = g.add_resource("gpu1.Ethernet.rx");
  g.add_transfer(tx, rx, 4000, 1000.0, 0.0, "grad");
  sim::RateTimeline rates;
  rates.add_window(tx, 1.0, 3.0, 0.5);  // half speed on [1, 3)
  sim::ExecutorOptions exec_options;
  exec_options.rates = &rates;
  const sim::SimResult result = sim::TaskGraphExecutor{exec_options}.run(g);
  // 4 s of serialization: 1 s done on [0,1), 1 s on [1,3) at half speed,
  // the last 2 s at nominal -> makespan 5 s.
  EXPECT_DOUBLE_EQ(result.makespan(), 5.0);
  const Timeline t = extract_timeline(g, result, {}, {}, &rates);
  ASSERT_EQ(t.overlays.size(), 1u);
  const RateOverlay& overlay = t.overlays[0];
  EXPECT_EQ(overlay.resource, tx);
  EXPECT_EQ(overlay.name, "gpu0.Ethernet.tx");
  EXPECT_DOUBLE_EQ(overlay.effective.value_at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(overlay.effective.value_at(1.0), 0.5);
  EXPECT_DOUBLE_EQ(overlay.effective.value_at(2.9), 0.5);
  EXPECT_DOUBLE_EQ(overlay.effective.value_at(3.0), 1.0);
  EXPECT_DOUBLE_EQ(overlay.degraded_total, 2.0);
  // The stretched occupancy is what the busy series records — exactness
  // holds under degradation because ports_free carries the stretch.
  EXPECT_DOUBLE_EQ(t.resources[tx].busy.integral(0.0, t.makespan),
                   t.resources[tx].busy_total);
  EXPECT_DOUBLE_EQ(t.resources[tx].busy_total, 5.0);
}

TEST(ExtractTimeline, ParallelExtractionIsStructurallyIdentical) {
  const TaskGraph g = mixed_graph();
  const sim::SimResult result = TaskGraphExecutor{}.run(g);
  const auto classify = [](const std::string& name) -> std::string {
    return name.find(".compute") != std::string::npos ? "compute" : "NIC";
  };
  TimelineOptions serial;
  TimelineOptions fanned;
  fanned.threads = 4;
  const Timeline a = extract_timeline(g, result, serial, classify);
  const Timeline b = extract_timeline(g, result, fanned, classify);
  ASSERT_EQ(a.resources.size(), b.resources.size());
  for (std::size_t r = 0; r < a.resources.size(); ++r) {
    // Exact vector equality: each slot is a pure function of the event
    // lists, so the fan must not perturb a single bit.
    EXPECT_EQ(a.resources[r].busy.times(), b.resources[r].busy.times());
    EXPECT_EQ(a.resources[r].busy.values(), b.resources[r].busy.values());
    EXPECT_EQ(a.resources[r].queue.times(), b.resources[r].queue.times());
    EXPECT_EQ(a.resources[r].queue.values(), b.resources[r].queue.values());
    EXPECT_EQ(a.resources[r].busy_total, b.resources[r].busy_total);
  }
  ASSERT_EQ(a.channels.size(), b.channels.size());
  for (std::size_t c = 0; c < a.channels.size(); ++c) {
    EXPECT_EQ(a.channels[c].in_flight.times(), b.channels[c].in_flight.times());
    EXPECT_EQ(a.channels[c].in_flight.values(),
              b.channels[c].in_flight.values());
    EXPECT_EQ(a.channels[c].cumulative.times(),
              b.channels[c].cumulative.times());
    EXPECT_EQ(a.channels[c].peak_in_flight, b.channels[c].peak_in_flight);
    EXPECT_EQ(a.channels[c].peak_at, b.channels[c].peak_at);
  }
  ASSERT_EQ(a.classes.size(), b.classes.size());
  for (std::size_t k = 0; k < a.classes.size(); ++k) {
    EXPECT_EQ(a.classes[k].busy_ports.times(), b.classes[k].busy_ports.times());
    EXPECT_EQ(a.classes[k].busy_ports.values(),
              b.classes[k].busy_ports.values());
    EXPECT_EQ(a.classes[k].saturated, b.classes[k].saturated);
    EXPECT_EQ(a.classes[k].saturated_total, b.classes[k].saturated_total);
  }
  ASSERT_EQ(a.top_talkers.size(), b.top_talkers.size());
  for (std::size_t i = 0; i < a.top_talkers.size(); ++i) {
    EXPECT_EQ(a.top_talkers[i].name, b.top_talkers[i].name);
    EXPECT_EQ(a.top_talkers[i].bytes, b.top_talkers[i].bytes);
    EXPECT_EQ(a.top_talkers[i].share, b.top_talkers[i].share);
  }
}

}  // namespace
}  // namespace holmes::obs
