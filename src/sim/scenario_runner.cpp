#include "sim/scenario_runner.h"

#include <bit>
#include <cstring>

#include "obs/self_profile.h"

namespace holmes::sim {

namespace {

/// Two independent FNV-1a streams over the same byte feed. 64-bit FNV alone
/// is weak against engineered collisions; two offset/prime-perturbed streams
/// make an accidental 128-bit collision implausible for memo purposes.
struct Hash2 {
  std::uint64_t lo = 0xcbf29ce484222325ULL;
  std::uint64_t hi = 0x9e3779b97f4a7c15ULL;

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      lo = (lo ^ p[i]) * 0x100000001b3ULL;
      hi = (hi ^ p[i]) * 0x00000100000001b3ULL + 0x2545f4914f6cdd1dULL;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void i32(std::int32_t v) {
    u64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
  }
};

}  // namespace

SimMemo::Key SimMemo::key(const TaskGraph& graph,
                          const ExecutorOptions& options) {
  Hash2 h;
  h.u64(graph.task_count());
  h.u64(graph.resource_count());
  h.u64(graph.dep_count());
  for (const Task& t : graph.tasks()) {
    h.i32(static_cast<std::int32_t>(t.kind));
    h.i32(t.tag);
    h.i32(t.resource);
    h.f64(t.duration);
    h.i32(t.src_port);
    h.i32(t.dst_port);
    h.u64(static_cast<std::uint64_t>(t.bytes));
    h.f64(t.bandwidth);
    h.f64(t.latency);
    h.i32(t.channel);
    // label excluded: it never influences timing.
  }
  graph.build_adjacency();
  for (std::size_t i = 0; i < graph.task_count(); ++i) {
    const auto deps = graph.deps(static_cast<TaskId>(i));
    h.u64(deps.size());
    for (TaskId dep : deps) h.i32(dep);
  }
  h.i32(static_cast<std::int32_t>(options.tie_break));
  h.u64(options.tie_seed);
  return Key{h.lo, h.hi};
}

std::shared_ptr<const SimResult> SimMemo::find(const Key& key) {
  std::lock_guard lock(mutex_);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void SimMemo::store(const Key& key, std::shared_ptr<const SimResult> result) {
  std::lock_guard lock(mutex_);
  cache_.emplace(key, std::move(result));
}

void SimMemo::clear() {
  std::lock_guard lock(mutex_);
  cache_.clear();
}

std::size_t SimMemo::size() const {
  std::lock_guard lock(mutex_);
  return cache_.size();
}

void SimMemo::flush_profile() {
  namespace prof = obs::self_profile;
  prof::count(&obs::SelfProfileCounters::memo_hits,
              hits_.exchange(0, std::memory_order_relaxed));
  prof::count(&obs::SelfProfileCounters::memo_misses,
              misses_.exchange(0, std::memory_order_relaxed));
}

void ScenarioRunner::run_all(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  pool_.parallel_for(count, fn);
  obs::self_profile::count(&obs::SelfProfileCounters::scenarios_run, count);
}

}  // namespace holmes::sim
