#include "sim/rate_timeline.h"

#include <algorithm>

#include "util/error.h"

namespace holmes::sim {

namespace {
/// Floor on the compound rate so a fully paused port still drains: a window
/// cannot stall the simulation forever, only stretch it by up to 1e6x.
constexpr double kMinRate = 1e-6;

double clamped_product(const std::vector<double>& factors) {
  double rate = 1.0;
  for (double f : factors) rate *= f;
  return std::max(rate, kMinRate);
}
}  // namespace

void RateTimeline::add_window(ResourceId resource, SimTime begin, SimTime end,
                              double factor) {
  if (resource < 0) throw ConfigError("rate window needs a valid resource");
  if (!(begin >= 0)) throw ConfigError("rate window begins before time zero");
  if (!(end >= begin)) {
    throw ConfigError("rate window must end after it begins");
  }
  if (!(factor > 0)) throw ConfigError("rate window factor must be positive");
  // A zero-length window covers no time: accept it as a no-op so generated
  // fault schedules may degenerate to empty intervals without special cases.
  if (end == begin) return;
  const auto r = static_cast<std::size_t>(resource);
  if (r >= per_resource_.size()) per_resource_.resize(r + 1);
  per_resource_[r].push_back({begin, end, factor});
  // Keep each resource's windows sorted by begin so queries are scan-stable
  // regardless of insertion order.
  std::sort(per_resource_[r].begin(), per_resource_[r].end(),
            [](const Window& a, const Window& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              if (a.end != b.end) return a.end < b.end;
              return a.factor < b.factor;
            });
  ++window_count_;
}

std::vector<RateTimeline::AppliedWindow> RateTimeline::windows() const {
  std::vector<AppliedWindow> out;
  out.reserve(window_count_);
  for (std::size_t r = 0; r < per_resource_.size(); ++r) {
    for (const Window& w : per_resource_[r]) {
      out.push_back({static_cast<ResourceId>(r), w.begin, w.end, w.factor});
    }
  }
  return out;  // per-resource lists are kept sorted; ids ascend by loop order
}

const std::vector<RateTimeline::Window>* RateTimeline::windows_of(
    ResourceId resource) const {
  if (resource < 0 ||
      static_cast<std::size_t>(resource) >= per_resource_.size()) {
    return nullptr;
  }
  const auto& windows = per_resource_[static_cast<std::size_t>(resource)];
  return windows.empty() ? nullptr : &windows;
}

double RateTimeline::rate_at(ResourceId resource, SimTime t) const {
  const std::vector<Window>* windows = windows_of(resource);
  if (windows == nullptr) return 1.0;
  double rate = 1.0;
  for (const Window& w : *windows) {
    if (w.begin <= t && t < w.end) rate *= w.factor;
  }
  return std::max(rate, kMinRate);
}

SimTime RateTimeline::stretched(ResourceId a, ResourceId b, SimTime start,
                                SimTime cost) const {
  if (cost <= 0) return std::max<SimTime>(cost, 0);
  const std::vector<Window>* wa = windows_of(a);
  const std::vector<Window>* wb = a == b ? nullptr : windows_of(b);
  if (wa == nullptr && wb == nullptr) return cost;

  // Breakpoints after `start` where the combined rate may change. Windows
  // per resource are few (a fault plan holds a handful), so a small sort
  // beats anything cleverer.
  SimTime bps_storage[32];
  std::vector<SimTime> bps_overflow;
  std::size_t bp_count = 0;
  auto push_bp = [&](SimTime t) {
    if (t <= start) return;
    if (bp_count < 32) {
      bps_storage[bp_count++] = t;
    } else {
      bps_overflow.push_back(t);
    }
  };
  auto collect = [&](const std::vector<Window>* w) {
    if (w == nullptr) return;
    for (const Window& win : *w) {
      push_bp(win.begin);
      push_bp(win.end);
    }
  };
  collect(wa);
  collect(wb);
  if (bp_count == 0 && bps_overflow.empty()) return cost;  // all in the past

  auto combined_rate = [&](SimTime t) {
    double rate = 1.0;
    if (wa != nullptr) rate = std::min(rate, rate_at(a, t));
    if (wb != nullptr) rate = std::min(rate, rate_at(b, t));
    return rate;
  };

  std::vector<SimTime> bps(bps_storage, bps_storage + bp_count);
  bps.insert(bps.end(), bps_overflow.begin(), bps_overflow.end());
  std::sort(bps.begin(), bps.end());
  bps.erase(std::unique(bps.begin(), bps.end()), bps.end());

  // Piecewise integration: serve `cost` at the combined rate segment by
  // segment; past the last breakpoint every window has closed and the rate
  // is exactly 1 again.
  double remaining = cost;
  SimTime t = start;
  for (SimTime next : bps) {
    const double rate = combined_rate(t);
    const SimTime span = next - t;
    const double served = span * rate;
    if (served >= remaining) return (t + remaining / rate) - start;
    remaining -= served;
    t = next;
  }
  return (t - start) + remaining;  // tail rate is 1 by construction
}

}  // namespace holmes::sim
