#include "sim/task_graph.h"

#include <algorithm>
#include <limits>

// Header-only hooks: no-ops unless an obs::SelfProfiler is active on this
// thread, and no link dependency on holmes_obs.
#include "obs/self_profile.h"
#include "util/error.h"

namespace holmes::sim {

namespace {
using obs::SelfProfileCounters;
namespace prof = obs::self_profile;
}  // namespace

ResourceId TaskGraph::add_resource(std::string name) {
  HOLMES_CHECK(resource_names_.size() <
               static_cast<std::size_t>(std::numeric_limits<ResourceId>::max()));
  prof::count(&SelfProfileCounters::resources_created);
  resource_names_.push_back(std::move(name));
  return static_cast<ResourceId>(resource_names_.size() - 1);
}

TaskId TaskGraph::push(Task task) {
  HOLMES_CHECK(tasks_.size() <
               static_cast<std::size_t>(std::numeric_limits<TaskId>::max()));
  if (prof::enabled()) {
    prof::count(&SelfProfileCounters::tasks_created);
    switch (task.kind) {
      case TaskKind::kCompute:
        prof::count(&SelfProfileCounters::compute_tasks);
        break;
      case TaskKind::kTransfer:
        prof::count(&SelfProfileCounters::transfer_tasks);
        break;
      case TaskKind::kNoop:
        prof::count(&SelfProfileCounters::noop_tasks);
        break;
    }
  }
  adjacency_valid_ = false;
  tasks_.push_back(std::move(task));
  return static_cast<TaskId>(tasks_.size() - 1);
}

TaskId TaskGraph::add_compute(ResourceId resource, SimTime duration,
                              std::string label, TaskTag tag) {
  HOLMES_CHECK_MSG(resource >= 0 &&
                       static_cast<std::size_t>(resource) < resource_names_.size(),
                   "unknown resource");
  HOLMES_CHECK_MSG(duration >= 0, "negative compute duration");
  Task t;
  t.kind = TaskKind::kCompute;
  t.resource = resource;
  t.duration = duration;
  t.label = std::move(label);
  t.tag = tag;
  return push(std::move(t));
}

TaskId TaskGraph::add_transfer(ResourceId src_port, ResourceId dst_port,
                               Bytes bytes, double bandwidth, SimTime latency,
                               std::string label, TaskTag tag,
                               ChannelId channel) {
  HOLMES_CHECK_MSG(src_port >= 0 &&
                       static_cast<std::size_t>(src_port) < resource_names_.size(),
                   "unknown src port");
  HOLMES_CHECK_MSG(dst_port >= 0 &&
                       static_cast<std::size_t>(dst_port) < resource_names_.size(),
                   "unknown dst port");
  HOLMES_CHECK_MSG(bytes >= 0, "negative transfer size");
  HOLMES_CHECK_MSG(bytes == 0 || bandwidth > 0,
                   "non-empty transfer needs positive bandwidth");
  HOLMES_CHECK_MSG(latency >= 0, "negative latency");
  HOLMES_CHECK_MSG(channel == kInvalidChannel ||
                       (channel >= 0 && static_cast<std::size_t>(channel) <
                                            channel_names_.size()),
                   "unknown channel");
  Task t;
  t.kind = TaskKind::kTransfer;
  t.channel = channel;
  t.src_port = src_port;
  t.dst_port = dst_port;
  t.bytes = bytes;
  t.bandwidth = bandwidth;
  t.latency = latency;
  t.label = std::move(label);
  t.tag = tag;
  return push(std::move(t));
}

TaskId TaskGraph::add_noop(std::string label, TaskTag tag) {
  Task t;
  t.kind = TaskKind::kNoop;
  t.label = std::move(label);
  t.tag = tag;
  return push(std::move(t));
}

void TaskGraph::add_dep(TaskId task, TaskId dep) {
  HOLMES_CHECK_MSG(task >= 0 && static_cast<std::size_t>(task) < tasks_.size(),
                   "unknown task");
  HOLMES_CHECK_MSG(dep >= 0 && static_cast<std::size_t>(dep) < tasks_.size(),
                   "unknown dependency");
  HOLMES_CHECK_MSG(dep != task, "task cannot depend on itself");
  prof::count(&SelfProfileCounters::deps_added);
  adjacency_valid_ = false;
  edges_.push_back(Edge{task, dep});
}

void TaskGraph::add_deps(TaskId task, const std::vector<TaskId>& deps) {
  for (TaskId dep : deps) {
    if (dep != kInvalidTask) add_dep(task, dep);
  }
}

const Task& TaskGraph::task(TaskId id) const {
  HOLMES_CHECK(id >= 0 && static_cast<std::size_t>(id) < tasks_.size());
  return tasks_[static_cast<std::size_t>(id)];
}

const std::string& TaskGraph::resource_name(ResourceId id) const {
  HOLMES_CHECK(id >= 0 && static_cast<std::size_t>(id) < resource_names_.size());
  return resource_names_[static_cast<std::size_t>(id)];
}

ChannelId TaskGraph::channel(const std::string& name) {
  for (std::size_t i = 0; i < channel_names_.size(); ++i) {
    if (channel_names_[i] == name) return static_cast<ChannelId>(i);
  }
  HOLMES_CHECK(channel_names_.size() <
               static_cast<std::size_t>(std::numeric_limits<ChannelId>::max()));
  prof::count(&SelfProfileCounters::channels_created);
  channel_names_.push_back(name);
  return static_cast<ChannelId>(channel_names_.size() - 1);
}

const std::string& TaskGraph::channel_name(ChannelId id) const {
  HOLMES_CHECK(id >= 0 && static_cast<std::size_t>(id) < channel_names_.size());
  return channel_names_[static_cast<std::size_t>(id)];
}

std::span<const TaskId> TaskGraph::deps(TaskId id) const {
  HOLMES_CHECK(id >= 0 && static_cast<std::size_t>(id) < tasks_.size());
  if (!adjacency_valid_) build_adjacency();
  const std::size_t i = static_cast<std::size_t>(id);
  return {dep_list_.data() + dep_offset_[i],
          dep_list_.data() + dep_offset_[i + 1]};
}

std::span<const TaskId> TaskGraph::dependents(TaskId id) const {
  HOLMES_CHECK(id >= 0 && static_cast<std::size_t>(id) < tasks_.size());
  if (!adjacency_valid_) build_adjacency();
  const std::size_t i = static_cast<std::size_t>(id);
  return {dependent_list_.data() + dependent_offset_[i],
          dependent_list_.data() + dependent_offset_[i + 1]};
}

std::span<const SchedTask> TaskGraph::sched_tasks() const {
  if (!adjacency_valid_) build_adjacency();
  return {sched_tasks_.data(), sched_tasks_.size()};
}

std::span<const std::uint32_t> TaskGraph::dep_offsets() const {
  if (!adjacency_valid_) build_adjacency();
  return {dep_offset_.data(), dep_offset_.size()};
}

std::span<const std::uint32_t> TaskGraph::dependent_offsets() const {
  if (!adjacency_valid_) build_adjacency();
  return {dependent_offset_.data(), dependent_offset_.size()};
}

std::span<const TaskId> TaskGraph::dependent_list() const {
  if (!adjacency_valid_) build_adjacency();
  return {dependent_list_.data(), dependent_list_.size()};
}

std::size_t TaskGraph::max_dependent_count() const {
  if (!adjacency_valid_) build_adjacency();
  return max_dependents_;
}

void TaskGraph::build_adjacency() const {
  if (adjacency_valid_) return;
  const std::size_t n = tasks_.size();
  // Counting sort: one pass to count degrees, a prefix sum for offsets, a
  // second pass to scatter. Stable — within a task, list order equals
  // edge-declaration (add_dep) order.
  dep_offset_.assign(n + 1, 0);
  dependent_offset_.assign(n + 1, 0);
  for (const Edge& e : edges_) {
    ++dep_offset_[static_cast<std::size_t>(e.task) + 1];
    ++dependent_offset_[static_cast<std::size_t>(e.dep) + 1];
  }
  max_dependents_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    max_dependents_ = std::max<std::size_t>(max_dependents_,
                                            dependent_offset_[i + 1]);
    dep_offset_[i + 1] += dep_offset_[i];
    dependent_offset_[i + 1] += dependent_offset_[i];
  }
  dep_list_.resize(edges_.size());
  dependent_list_.resize(edges_.size());
  std::vector<std::uint32_t> dep_cursor(dep_offset_.begin(),
                                        dep_offset_.end() - 1);
  std::vector<std::uint32_t> dependent_cursor(dependent_offset_.begin(),
                                              dependent_offset_.end() - 1);
  for (const Edge& e : edges_) {
    dep_list_[dep_cursor[static_cast<std::size_t>(e.task)]++] = e.dep;
    dependent_list_[dependent_cursor[static_cast<std::size_t>(e.dep)]++] =
        e.task;
  }
  sched_tasks_.assign(n, SchedTask{});
  for (std::size_t i = 0; i < n; ++i) {
    const Task& t = tasks_[i];
    SchedTask& s = sched_tasks_[i];
    s.out_begin = dependent_offset_[i];
    s.out_count = dependent_offset_[i + 1] - dependent_offset_[i];
    const std::uint32_t inl = std::min(s.out_count, SchedTask::kInlineOut);
    for (std::uint32_t j = 0; j < inl; ++j) {
      s.out[j] = dependent_list_[s.out_begin + j];
    }
    s.kind = t.kind;
    // See the SchedTask doc comment: every kind resolves to valid resource
    // indices so placement is branch-free; noops park on the scratch slot.
    const auto scratch = static_cast<ResourceId>(resource_names_.size());
    switch (t.kind) {
      case TaskKind::kCompute:
        s.resource = t.resource;
        s.dst_port = t.resource;
        s.cost = t.duration;
        s.latency = 0;
        break;
      case TaskKind::kTransfer:
        s.resource = t.src_port;
        s.dst_port = t.dst_port;
        s.cost = t.bytes > 0 ? static_cast<double>(t.bytes) / t.bandwidth
                             : 0.0;
        s.latency = t.latency;
        break;
      case TaskKind::kNoop:
        s.resource = scratch;
        s.dst_port = scratch;
        s.cost = 0;
        s.latency = 0;
        break;
    }
  }
  adjacency_valid_ = true;
}

}  // namespace holmes::sim
