#pragma once

/// \file executor.h
/// Simulates a TaskGraph over its resources and reports per-task timing.
///
/// Scheduling discipline: a task becomes *ready* when all its dependencies
/// have finished. Ready tasks claim their resources greedily in ready-time
/// order (ties broken by task id), i.e. a task may reserve a busy resource
/// and start when it frees up. This is the standard list-scheduling model
/// used by network/compute co-simulators and is fully deterministic.
///
/// That tie-by-id discipline is a *documented contract*, and ExecutorOptions
/// exists to verify it: the permuting tie-break policies deliberately
/// reorder equal-ready-time tasks under a seeded hash so the determinism
/// checker (verify::check_determinism, `holmes_cli check`) can prove which
/// results depend on tie order and which do not — the gate the future
/// parallel engine must keep green.

#include <cstdint>
#include <vector>

#include "sim/task_graph.h"
#include "util/units.h"

namespace holmes::sim {

struct TaskTiming {
  SimTime start = 0;
  SimTime finish = 0;
  /// Instant the task's serial resources freed: start plus the (possibly
  /// rate-stretched) occupancy. `finish` additionally includes the
  /// propagation latency, so consumers reconstructing port release times
  /// must use this field — recomputing bytes/bandwidth from the task is
  /// wrong whenever a fault timeline stretched the occupancy.
  SimTime ports_free = 0;
};

class SimResult;

/// Event sink fed by the executor while a simulation runs. Implementations
/// (e.g. obs::RegistryRecorder) turn scheduling events into live metrics.
///
/// Callback order is the executor's deterministic scheduling order: tasks
/// are announced when they are *placed* (ready-time order, ties by id), not
/// sorted by start time — consumers needing a time-ordered view should sort
/// afterwards or read the SimResult.
class ExecutionObserver {
 public:
  virtual ~ExecutionObserver() = default;

  /// Fired once per task, after its start/finish are fixed. `ready_at` is
  /// when the task's dependencies had all finished; `timing.start -
  /// ready_at` is therefore the time it queued for a busy resource.
  virtual void on_task_scheduled(const TaskGraph& graph, TaskId id,
                                 const TaskTiming& timing,
                                 SimTime ready_at) = 0;

  /// Fired once after the last task, with the complete result.
  virtual void on_run_complete(const TaskGraph& graph,
                               const SimResult& result) {
    (void)graph;
    (void)result;
  }
};

/// Result of simulating one task graph.
class SimResult {
 public:
  SimResult(std::vector<TaskTiming> timing, std::vector<SimTime> resource_busy,
            SimTime makespan)
      : timing_(std::move(timing)),
        resource_busy_(std::move(resource_busy)),
        makespan_(makespan) {}

  /// Time at which the last task finished.
  SimTime makespan() const { return makespan_; }

  const TaskTiming& timing(TaskId id) const;
  const std::vector<TaskTiming>& timings() const { return timing_; }

  /// Total time `resource` was occupied.
  SimTime resource_busy(ResourceId resource) const;

  /// Occupancy fraction of `resource` over the makespan (0 when empty).
  double resource_utilization(ResourceId resource) const;

  /// Sum of (finish - start) over all tasks in `graph` carrying `tag`.
  SimTime tag_busy(const TaskGraph& graph, TaskTag tag) const;

  /// Wall-span (latest finish - earliest start) of all tasks carrying `tag`;
  /// 0 when no task carries the tag.
  SimTime tag_span(const TaskGraph& graph, TaskTag tag) const;

 private:
  std::vector<TaskTiming> timing_;
  std::vector<SimTime> resource_busy_;
  SimTime makespan_ = 0;
};

/// How the executor orders tasks that become ready at the same simulated
/// time.
enum class TieBreak {
  /// The documented production discipline: ascending task id.
  kCanonical,
  /// Permutes only *resource-disjoint* groups of tied tasks (tasks that
  /// share no resource with each other); tied tasks contending for the same
  /// resource keep their id order. Placement of resource-disjoint tasks
  /// commutes, so any divergence from kCanonical output is an executor bug —
  /// this is the policy `holmes_cli check` drives by default.
  kPermuteDisjoint,
  /// Permutes every tie by a seeded hash of the task id. Tied tasks
  /// contending for a resource swap places, so results legitimately change
  /// whenever the schedule depends on tie order; use it to *find* such
  /// schedule-order-sensitive graphs (the HV405 fixtures).
  kPermuteAll,
};

class RateTimeline;

struct ExecutorOptions {
  TieBreak tie_break = TieBreak::kCanonical;
  /// Seed for the permuting policies; ignored by kCanonical.
  std::uint64_t tie_seed = 0;
  /// Optional time-varying resource rates (see sim/rate_timeline.h): a
  /// task's occupancy stretches while any of its resources is degraded.
  /// Not owned; must outlive the run. Null (the default) keeps the
  /// fixed-rate fast path byte-for-byte unchanged. Runs with a timeline
  /// must bypass SimMemo — the memo key hashes graph structure and
  /// tie-break options only, not execution-time rates.
  const RateTimeline* rates = nullptr;
};

class TaskGraphExecutor {
 public:
  TaskGraphExecutor() = default;
  explicit TaskGraphExecutor(const ExecutorOptions& options)
      : options_(options) {}

  /// Simulates `graph` from time zero. Throws holmes::ConfigError when the
  /// dependency graph contains a cycle (some tasks can never run). When
  /// `observer` is non-null it receives one on_task_scheduled per task plus
  /// a final on_run_complete.
  SimResult run(const TaskGraph& graph, ExecutionObserver* observer = nullptr);

 private:
  ExecutorOptions options_;
};

}  // namespace holmes::sim
