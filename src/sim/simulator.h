#pragma once

/// \file simulator.h
/// Discrete-event simulator: a virtual clock plus an event queue.
///
/// The simulator never touches wall-clock time; `now()` only advances when
/// events fire. All higher-level timing (task-graph execution, collective
/// schedules, pipeline iterations) runs on top of this clock.
///
/// Event storage is arena-backed (see event_queue.h); run() recycles the
/// arena whenever the queue drains, so a simulator reused across runs
/// reaches a steady state with zero allocator traffic per event.

#include <utility>

#include "sim/event_queue.h"
#include "util/error.h"
#include "util/units.h"

namespace holmes::sim {

class Simulator {
 public:
  /// Current simulated time in seconds.
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `when`. `when` must be >= now().
  template <typename F>
  void at(SimTime when, F&& fn) {
    HOLMES_CHECK_MSG(when >= now_, "cannot schedule an event in the past");
    queue_.schedule(when, std::forward<F>(fn));
  }

  /// Schedules `fn` `delay` seconds from now. `delay` must be >= 0.
  template <typename F>
  void after(SimTime delay, F&& fn) {
    HOLMES_CHECK_MSG(delay >= 0, "negative delay");
    queue_.schedule(now_ + delay, std::forward<F>(fn));
  }

  /// Runs events until the queue drains (or stop() is called from inside an
  /// event). Returns the final simulated time.
  SimTime run();

  /// Runs events with timestamps <= `until`; leaves later events queued.
  /// Returns min(until, time of last fired event).
  SimTime run_until(SimTime until);

  /// Requests that run()/run_until() return after the current event.
  void stop() { stopping_ = true; }

  /// Forwards to EventQueue::set_tie_permutation. Must be called before any
  /// event is scheduled; see event_queue.h for the race-hunting rationale.
  void set_tie_permutation(std::uint64_t seed) {
    queue_.set_tie_permutation(seed);
  }

  std::size_t pending_events() const { return queue_.size(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  bool stopping_ = false;
};

}  // namespace holmes::sim
