#pragma once

/// \file scenario_runner.h
/// Scenario-level parallelism for the DES engine.
///
/// A single simulation is deliberately single-threaded (determinism is the
/// contract `holmes_cli check` enforces), but the workloads above it —
/// autotune layout sweeps, determinism-check permutation fans, parameter
/// studies — run many *independent* simulations. ScenarioRunner fans those
/// across a util::ThreadPool; SimMemo short-circuits scenarios whose task
/// graph and executor options are structurally identical to one already
/// simulated (layout sweeps frequently revisit equivalent configurations).
///
/// Determinism: each scenario still runs on one thread, and callers index
/// results by scenario, so a parallel sweep produces byte-identical output
/// to a serial one regardless of completion order. The memo key hashes the
/// graph *structure* (kinds, tags, resources, durations, transfer
/// parameters, channels, edges) plus the executor options; labels are
/// excluded — they never influence timing.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "sim/executor.h"
#include "sim/task_graph.h"
#include "util/thread_pool.h"

namespace holmes::sim {

/// Structural-hash memo of simulation results. Thread-safe; share one
/// instance across a sweep and consult it per scenario.
class SimMemo {
 public:
  /// 128-bit structural key (two independent 64-bit FNV-style streams; a
  /// collision would need both to collide simultaneously).
  struct Key {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    bool operator==(const Key& other) const {
      return lo == other.lo && hi == other.hi;
    }
  };

  /// Hashes the structure of `graph` under `options`. Labels and resource /
  /// channel *names* are excluded; counts, kinds, tags, numeric parameters,
  /// edges, and the tie-break policy are all folded in.
  static Key key(const TaskGraph& graph, const ExecutorOptions& options);

  /// Returns the memoized result for `key`, or nullptr (counting a hit or
  /// a miss accordingly).
  std::shared_ptr<const SimResult> find(const Key& key);

  /// Stores `result` for `key` (first writer wins; later stores of the same
  /// key are dropped — structurally identical runs produce identical
  /// results, so which copy survives is immaterial).
  void store(const Key& key, std::shared_ptr<const SimResult> result);

  void clear();
  std::size_t size() const;

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

  /// Flushes hit/miss totals to the *calling thread's* self-profile (worker
  /// threads carry no profiler, so per-lookup counting would be invisible)
  /// and resets the internal tallies.
  void flush_profile();

 private:
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ULL));
    }
  };

  mutable std::mutex mutex_;
  std::unordered_map<Key, std::shared_ptr<const SimResult>, KeyHash> cache_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

/// Fans `count` independent scenarios across a thread pool.
class ScenarioRunner {
 public:
  /// Spawns a pool of `threads` workers; 0 means hardware concurrency.
  explicit ScenarioRunner(std::size_t threads = 0) : pool_(threads) {}

  std::size_t threads() const { return pool_.size(); }

  /// Runs fn(i) for i in [0, count) across the pool and waits for all of
  /// them; rethrows the first exception encountered. Counts
  /// `scenarios_run` on the calling thread's self-profile.
  void run_all(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  ThreadPool pool_;
};

}  // namespace holmes::sim
