#include "sim/trace.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/rate_timeline.h"
#include "util/json.h"

namespace holmes::sim {

namespace {

const char* kind_name(TaskKind kind) {
  switch (kind) {
    case TaskKind::kCompute: return "compute";
    case TaskKind::kTransfer: return "transfer";
    case TaskKind::kNoop: return "noop";
  }
  return "?";
}

/// Accumulates step deltas per timestamp for one counter track and emits
/// the resulting staircase as "C" events. Steps append to a flat vector —
/// one sort at emit time replaces the per-step ordered-map rebalancing the
/// old implementation paid on every call.
class CounterTrack {
 public:
  CounterTrack(std::string name, std::string unit)
      : name_(std::move(name)), unit_(std::move(unit)) {}

  void step(SimTime at, double delta) { steps_.push_back({at, delta}); }

  void emit(std::ostream& out, int pid, bool* first) {
    // stable_sort keeps equal-timestamp deltas in step() call order, so the
    // per-timestamp sum adds in exactly the order the old map accumulated —
    // output stays byte-identical.
    std::stable_sort(steps_.begin(), steps_.end(),
                     [](const std::pair<SimTime, double>& a,
                        const std::pair<SimTime, double>& b) {
                       return a.first < b.first;
                     });
    double value = 0;
    for (std::size_t i = 0; i < steps_.size();) {
      const SimTime at = steps_[i].first;
      double delta = 0;
      for (; i < steps_.size() && steps_[i].first == at; ++i) {
        delta += steps_[i].second;
      }
      if (delta == 0) continue;
      value += delta;
      if (!*first) out << ",";
      *first = false;
      // Clamp tiny negative float residue so the track never dips below 0.
      const double shown = value < 0 && value > -1e-9 ? 0 : value;
      out << "\n{\"name\":\"" << json_escape(name_)
          << "\",\"ph\":\"C\",\"pid\":" << pid << ",\"ts\":" << at * 1e6
          << ",\"args\":{\"" << unit_ << "\":" << json_number(shown) << "}}";
    }
  }

 private:
  std::string name_;
  std::string unit_;
  std::vector<std::pair<SimTime, double>> steps_;  ///< unsorted until emit
};

}  // namespace

void write_chrome_trace(std::ostream& out, const TaskGraph& graph,
                        const SimResult& result, const TraceOptions& options) {
  out << "[";
  bool first = true;

  // Process-name metadata, then thread-name metadata: one row per resource.
  if (!options.process_name.empty()) {
    first = false;
    out << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << options.pid
        << ",\"args\":{\"name\":\"" << json_escape(options.process_name)
        << "\"}}";
  }
  for (std::size_t r = 0; r < graph.resource_count(); ++r) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << options.pid
        << ",\"tid\":" << r << ",\"args\":{\"name\":\""
        << json_escape(graph.resource_name(static_cast<ResourceId>(r)))
        << "\"}}";
  }
  // The emphasized critical-path lane sits below the resource rows.
  const std::size_t critical_row = graph.resource_count();
  if (!options.critical_tasks.empty()) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << options.pid
        << ",\"tid\":" << critical_row
        << ",\"args\":{\"name\":\"critical path\"}}";
  }

  CounterTrack compute_track("compute in flight", "devices");
  CounterTrack link_track("links busy", "ports");
  CounterTrack bytes_track("bytes in flight", "bytes");

  // Rows of the slices actually emitted, for flow-arrow endpoints (arrows
  // must land on visible slices; -1 marks dropped/noop tasks).
  std::vector<ResourceId> slice_row(graph.task_count(), -1);

  for (std::size_t i = 0; i < graph.task_count(); ++i) {
    const Task& task = graph.tasks()[i];
    const TaskTiming& timing = result.timing(static_cast<TaskId>(i));
    const SimTime duration = timing.finish - timing.start;
    if (task.kind == TaskKind::kNoop) continue;

    if (options.counters) {
      if (task.kind == TaskKind::kCompute) {
        if (duration > 0) {
          compute_track.step(timing.start, 1);
          compute_track.step(timing.finish, -1);
        }
      } else {
        // Ports are busy for the serialization time only; the payload is
        // "in flight" until the transfer completes (incl. latency).
        const SimTime serialization = std::max(0.0, duration - task.latency);
        if (serialization > 0) {
          link_track.step(timing.start, 1);
          link_track.step(timing.start + serialization, -1);
        }
        if (task.bytes > 0 && duration > 0) {
          bytes_track.step(timing.start, static_cast<double>(task.bytes));
          bytes_track.step(timing.finish, -static_cast<double>(task.bytes));
        }
      }
    }

    if (duration < options.min_duration) continue;
    const ResourceId row =
        task.kind == TaskKind::kTransfer ? task.src_port : task.resource;
    slice_row[i] = row;
    if (!first) out << ",";
    first = false;
    // Chrome trace timestamps are microseconds.
    out << "\n{\"name\":\""
        << json_escape(task.label.empty() ? kind_name(task.kind) : task.label)
        << "\",\"cat\":\"" << kind_name(task.kind)
        << "\",\"ph\":\"X\",\"pid\":" << options.pid << ",\"tid\":" << row
        << ",\"ts\":" << timing.start * 1e6 << ",\"dur\":" << duration * 1e6
        << ",\"args\":{\"task\":" << i << ",\"tag\":" << task.tag
        << ",\"bytes\":" << task.bytes << "}}";
  }

  if (options.flows) {
    // One arrow per cross-row dependency edge: "s" anchored at the
    // producer's finish on its row, "f" (bp:"e" = bind to the enclosing
    // slice) at the consumer's start. Same-row edges read off adjacency.
    int flow_id = 0;
    for (std::size_t i = 0; i < graph.task_count(); ++i) {
      if (slice_row[i] < 0) continue;
      const TaskTiming& timing = result.timing(static_cast<TaskId>(i));
      for (TaskId dep : graph.deps(static_cast<TaskId>(i))) {
        const auto d = static_cast<std::size_t>(dep);
        if (slice_row[d] < 0 || slice_row[d] == slice_row[i]) continue;
        ++flow_id;
        const SimTime dep_finish = result.timing(dep).finish;
        if (!first) out << ",";
        first = false;
        out << "\n{\"name\":\"dep\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":"
            << flow_id << ",\"pid\":" << options.pid
            << ",\"tid\":" << slice_row[d] << ",\"ts\":" << dep_finish * 1e6
            << ",\"args\":{\"task\":" << d << "}}";
        out << ",\n{\"name\":\"dep\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":"
            << "\"e\",\"id\":" << flow_id << ",\"pid\":" << options.pid
            << ",\"tid\":" << slice_row[i] << ",\"ts\":" << timing.start * 1e6
            << ",\"args\":{\"task\":" << i << "}}";
      }
    }
  }

  // Duplicate the critical chain onto its own lane so the binding sequence
  // reads contiguously; cat "critical" makes the lane filterable.
  for (TaskId id : options.critical_tasks) {
    const Task& task = graph.task(id);
    if (task.kind == TaskKind::kNoop) continue;
    const TaskTiming& timing = result.timing(id);
    const SimTime duration = timing.finish - timing.start;
    if (duration < options.min_duration) continue;
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\""
        << json_escape(task.label.empty() ? kind_name(task.kind) : task.label)
        << "\",\"cat\":\"critical\",\"ph\":\"X\",\"pid\":" << options.pid
        << ",\"tid\":" << critical_row << ",\"ts\":" << timing.start * 1e6
        << ",\"dur\":" << duration * 1e6 << ",\"args\":{\"task\":" << id
        << ",\"tag\":" << task.tag << ",\"bytes\":" << task.bytes << "}}";
  }

  if (options.counters) {
    compute_track.emit(out, options.pid, &first);
    link_track.emit(out, options.pid, &first);
    bytes_track.emit(out, options.pid, &first);
  }

  // Effective-rate tracks: one breakpoint-exact staircase per resource a
  // rate window degraded, charting min(1, compound factor) — the pacing the
  // executor actually integrated through — so fault windows read as dips
  // right next to the slices they stretch.
  if (options.rates != nullptr && !options.rates->empty()) {
    const std::vector<RateTimeline::AppliedWindow> windows =
        options.rates->windows();
    auto emit_counter = [&](const std::string& name, SimTime at,
                            double value) {
      if (!first) out << ",";
      first = false;
      out << "\n{\"name\":\"" << json_escape(name)
          << "\",\"ph\":\"C\",\"pid\":" << options.pid << ",\"ts\":" << at * 1e6
          << ",\"args\":{\"rate\":" << json_number(value) << "}}";
    };
    for (std::size_t i = 0; i < windows.size();) {
      const ResourceId resource = windows[i].resource;
      const std::size_t begin = i;
      std::vector<SimTime> bps;
      while (i < windows.size() && windows[i].resource == resource) {
        bps.push_back(windows[i].begin);
        bps.push_back(windows[i].end);
        ++i;
      }
      std::sort(bps.begin(), bps.end());
      bps.erase(std::unique(bps.begin(), bps.end()), bps.end());
      const std::string track =
          "rate " + graph.resource_name(resource);
      double last = 1.0;
      emit_counter(track, 0.0, 1.0);
      for (SimTime t : bps) {
        double factor = 1.0;
        for (std::size_t w = begin; w < i; ++w) {
          if (windows[w].begin <= t && t < windows[w].end) {
            factor *= windows[w].factor;
          }
        }
        const double effective = std::min(1.0, factor);
        if (effective == last) continue;
        emit_counter(track, t, effective);
        last = effective;
      }
    }
  }
  out << "\n]";
}

}  // namespace holmes::sim
