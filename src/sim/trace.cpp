#include "sim/trace.h"

#include <cstdio>

namespace holmes::sim {

namespace {

/// JSON string escape for labels and resource names (ASCII control chars,
/// quotes, backslashes).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* kind_name(TaskKind kind) {
  switch (kind) {
    case TaskKind::kCompute: return "compute";
    case TaskKind::kTransfer: return "transfer";
    case TaskKind::kNoop: return "noop";
  }
  return "?";
}

}  // namespace

void write_chrome_trace(std::ostream& out, const TaskGraph& graph,
                        const SimResult& result, const TraceOptions& options) {
  out << "[";
  bool first = true;

  // Thread-name metadata: one row per resource.
  for (std::size_t r = 0; r < graph.resource_count(); ++r) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << options.pid
        << ",\"tid\":" << r << ",\"args\":{\"name\":\""
        << json_escape(graph.resource_name(static_cast<ResourceId>(r)))
        << "\"}}";
  }

  for (std::size_t i = 0; i < graph.task_count(); ++i) {
    const Task& task = graph.tasks()[i];
    const TaskTiming& timing = result.timing(static_cast<TaskId>(i));
    const SimTime duration = timing.finish - timing.start;
    if (duration < options.min_duration) continue;
    if (task.kind == TaskKind::kNoop) continue;
    const ResourceId row =
        task.kind == TaskKind::kTransfer ? task.src_port : task.resource;
    if (!first) out << ",";
    first = false;
    // Chrome trace timestamps are microseconds.
    out << "\n{\"name\":\""
        << json_escape(task.label.empty() ? kind_name(task.kind) : task.label)
        << "\",\"cat\":\"" << kind_name(task.kind)
        << "\",\"ph\":\"X\",\"pid\":" << options.pid << ",\"tid\":" << row
        << ",\"ts\":" << timing.start * 1e6 << ",\"dur\":" << duration * 1e6
        << ",\"args\":{\"tag\":" << task.tag << ",\"bytes\":" << task.bytes
        << "}}";
  }
  out << "\n]";
}

}  // namespace holmes::sim
