#pragma once

/// \file event_queue.h
/// Time-ordered event queue for the discrete-event simulator.
///
/// Events at equal timestamps fire in insertion order (a monotone sequence
/// number breaks ties), which keeps every simulation fully deterministic.
///
/// For determinism *verification* the insertion-order discipline can be
/// deliberately scrambled: set_tie_permutation reorders equal-timestamp
/// events under a seeded hash of their sequence number. A model whose
/// observable results change under the permutation depends on tie order —
/// exactly the race the `holmes_cli check` subcommand hunts for.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/units.h"

namespace holmes::sim {

/// Callback invoked when simulated time reaches the event's timestamp.
using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedules `fn` at absolute simulated time `when`.
  void schedule(SimTime when, EventFn fn);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Timestamp of the next event. Requires !empty().
  SimTime next_time() const;

  /// Removes and returns the next event's callback. Requires !empty().
  EventFn pop();

  /// Scrambles tie order: events scheduled at equal timestamps fire in
  /// ascending mix64(seed ^ seq) order instead of insertion order. Must be
  /// called while the queue is empty; affects all subsequent schedules.
  void set_tie_permutation(std::uint64_t seed);

 private:
  struct Entry {
    SimTime when;
    std::uint64_t key;  ///< tie-break key: seq, or mix64(seed ^ seq)
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      if (a.key != b.key) return a.key > b.key;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  bool permute_ties_ = false;
  std::uint64_t tie_seed_ = 0;
};

}  // namespace holmes::sim
