#pragma once

/// \file event_queue.h
/// Time-ordered event queue for the discrete-event simulator.
///
/// Events at equal timestamps fire in insertion order (a monotone sequence
/// number breaks ties), which keeps every simulation fully deterministic.
///
/// For determinism *verification* the insertion-order discipline can be
/// deliberately scrambled: set_tie_permutation reorders equal-timestamp
/// events under a seeded hash of their sequence number. A model whose
/// observable results change under the permutation depends on tie order —
/// exactly the race the `holmes_cli check` subcommand hunts for.
///
/// Storage model (the production-scale rewrite): an event is a small POD
/// record — timestamp, tie key, and a (function pointer, context pointer)
/// pair — ordered by a 4-ary heap of those records. The callable a caller
/// passes to schedule() is bump-allocated from a monotonic Arena, so
/// scheduling performs no per-event heap allocation and heap sifts move
/// plain 40-byte structs instead of std::function objects. Contexts stay
/// alive until reset_storage() (the Simulator resets after each drained
/// run); the rare non-trivially-destructible callable is tracked on a
/// destructor side-list and destroyed at reset/destruction.

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/self_profile.h"
#include "util/arena.h"
#include "util/error.h"
#include "util/quad_heap.h"
#include "util/rng.h"
#include "util/units.h"

namespace holmes::sim {

/// A popped event, ready to fire: invoke with operator(). The context it
/// points at lives in the queue's arena, valid until reset_storage().
class FiredEvent {
 public:
  FiredEvent(void (*fire)(void*), void* ctx) : fire_(fire), ctx_(ctx) {}
  void operator()() const { fire_(ctx_); }

 private:
  void (*fire_)(void*);
  void* ctx_;
};

class EventQueue {
 public:
  EventQueue() = default;
  ~EventQueue() { destroy_contexts(); }
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` (any void() callable) at absolute simulated time
  /// `when`. The callable is copied/moved into the queue's arena.
  template <typename F>
  void schedule(SimTime when, F&& fn) {
    using Fn = std::decay_t<F>;
    HOLMES_CHECK_MSG(when >= 0, "event time must be non-negative");
    obs::self_profile::count(&obs::SelfProfileCounters::events_scheduled);
    void* ctx = arena_.allocate(sizeof(Fn), alignof(Fn));
    ::new (ctx) Fn(std::forward<F>(fn));
    if constexpr (!std::is_trivially_destructible_v<Fn>) {
      dtors_.push_back({ctx, [](void* p) { static_cast<Fn*>(p)->~Fn(); }});
    }
    const std::uint64_t seq = next_seq_++;
    const std::uint64_t key = permute_ties_ ? mix64(tie_seed_ ^ seq) : seq;
    heap_.push(Entry{when, key, seq,
                     [](void* p) { (*static_cast<Fn*>(p))(); }, ctx});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Timestamp of the next event. Requires !empty().
  SimTime next_time() const;

  /// Removes and returns the next event, ready to invoke. Requires
  /// !empty().
  FiredEvent pop();

  /// Scrambles tie order: events scheduled at equal timestamps fire in
  /// ascending mix64(seed ^ seq) order instead of insertion order. Must be
  /// called while the queue is empty; affects all subsequent schedules.
  void set_tie_permutation(std::uint64_t seed);

  /// Recycles all event storage (the arena and the fired-event contexts).
  /// Requires an empty queue: contexts of pending events would dangle.
  void reset_storage();

  /// Arena bytes bump-allocated for event contexts since the last reset.
  std::size_t arena_bytes_allocated() const {
    return arena_.bytes_allocated();
  }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t key;  ///< tie-break key: seq, or mix64(seed ^ seq)
    std::uint64_t seq;
    void (*fire)(void*);
    void* ctx;
  };
  struct Earlier {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when < b.when;
      if (a.key != b.key) return a.key < b.key;
      return a.seq < b.seq;
    }
  };

  void destroy_contexts();

  QuadHeap<Entry, Earlier> heap_;
  Arena arena_;
  /// Deferred destructors for non-trivially-destructible callables; run at
  /// reset_storage()/destruction (contexts outlive their pop for arena
  /// lifetime reasons, and pending events may never fire at all).
  std::vector<std::pair<void*, void (*)(void*)>> dtors_;
  std::uint64_t next_seq_ = 0;
  bool permute_ties_ = false;
  std::uint64_t tie_seed_ = 0;
};

}  // namespace holmes::sim
