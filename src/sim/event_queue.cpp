#include "sim/event_queue.h"

#include "obs/self_profile.h"
#include "util/error.h"
#include "util/rng.h"

namespace holmes::sim {

void EventQueue::schedule(SimTime when, EventFn fn) {
  HOLMES_CHECK_MSG(when >= 0, "event time must be non-negative");
  obs::self_profile::count(&obs::SelfProfileCounters::events_scheduled);
  const std::uint64_t seq = next_seq_++;
  const std::uint64_t key = permute_ties_ ? mix64(tie_seed_ ^ seq) : seq;
  heap_.push(Entry{when, key, seq, std::move(fn)});
}

void EventQueue::set_tie_permutation(std::uint64_t seed) {
  HOLMES_CHECK_MSG(heap_.empty(),
                   "tie permutation must be set while the queue is empty");
  permute_ties_ = true;
  tie_seed_ = seed;
}

SimTime EventQueue::next_time() const {
  HOLMES_CHECK(!heap_.empty());
  return heap_.top().when;
}

EventFn EventQueue::pop() {
  HOLMES_CHECK(!heap_.empty());
  // priority_queue::top() is const; the callback must be moved out, so we
  // cast away constness of the owning entry right before popping it. The
  // entry is discarded immediately afterwards.
  EventFn fn = std::move(const_cast<Entry&>(heap_.top()).fn);
  heap_.pop();
  obs::self_profile::count(&obs::SelfProfileCounters::events_fired);
  return fn;
}

}  // namespace holmes::sim
