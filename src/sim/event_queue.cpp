#include "sim/event_queue.h"

#include "obs/self_profile.h"
#include "util/error.h"

namespace holmes::sim {

void EventQueue::schedule(SimTime when, EventFn fn) {
  HOLMES_CHECK_MSG(when >= 0, "event time must be non-negative");
  obs::self_profile::count(&obs::SelfProfileCounters::events_scheduled);
  heap_.push(Entry{when, next_seq_++, std::move(fn)});
}

SimTime EventQueue::next_time() const {
  HOLMES_CHECK(!heap_.empty());
  return heap_.top().when;
}

EventFn EventQueue::pop() {
  HOLMES_CHECK(!heap_.empty());
  // priority_queue::top() is const; the callback must be moved out, so we
  // cast away constness of the owning entry right before popping it. The
  // entry is discarded immediately afterwards.
  EventFn fn = std::move(const_cast<Entry&>(heap_.top()).fn);
  heap_.pop();
  obs::self_profile::count(&obs::SelfProfileCounters::events_fired);
  return fn;
}

}  // namespace holmes::sim
