#include "sim/event_queue.h"

namespace holmes::sim {

void EventQueue::set_tie_permutation(std::uint64_t seed) {
  HOLMES_CHECK_MSG(heap_.empty(),
                   "tie permutation must be set while the queue is empty");
  permute_ties_ = true;
  tie_seed_ = seed;
}

SimTime EventQueue::next_time() const {
  HOLMES_CHECK(!heap_.empty());
  return heap_.top().when;
}

FiredEvent EventQueue::pop() {
  HOLMES_CHECK(!heap_.empty());
  const Entry& top = heap_.top();
  FiredEvent event(top.fire, top.ctx);
  heap_.pop();
  obs::self_profile::count(&obs::SelfProfileCounters::events_fired);
  return event;
}

void EventQueue::destroy_contexts() {
  // Reverse order: later events may reference state owned by earlier ones.
  for (auto it = dtors_.rbegin(); it != dtors_.rend(); ++it) {
    it->second(it->first);
  }
  dtors_.clear();
}

void EventQueue::reset_storage() {
  HOLMES_CHECK_MSG(heap_.empty(),
                   "cannot reset event storage with events pending");
  destroy_contexts();
  arena_.reset();
}

}  // namespace holmes::sim
