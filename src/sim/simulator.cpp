#include "sim/simulator.h"

#include "util/error.h"

namespace holmes::sim {

void Simulator::at(SimTime when, EventFn fn) {
  HOLMES_CHECK_MSG(when >= now_, "cannot schedule an event in the past");
  queue_.schedule(when, std::move(fn));
}

void Simulator::after(SimTime delay, EventFn fn) {
  HOLMES_CHECK_MSG(delay >= 0, "negative delay");
  queue_.schedule(now_ + delay, std::move(fn));
}

SimTime Simulator::run() {
  stopping_ = false;
  while (!queue_.empty() && !stopping_) {
    now_ = queue_.next_time();
    queue_.pop()();
  }
  return now_;
}

SimTime Simulator::run_until(SimTime until) {
  stopping_ = false;
  while (!queue_.empty() && !stopping_ && queue_.next_time() <= until) {
    now_ = queue_.next_time();
    queue_.pop()();
  }
  return now_;
}

}  // namespace holmes::sim
