#include "sim/simulator.h"

namespace holmes::sim {

SimTime Simulator::run() {
  stopping_ = false;
  while (!queue_.empty() && !stopping_) {
    now_ = queue_.next_time();
    queue_.pop()();
  }
  // The queue drained (or will be drained by a later run()): recycle the
  // event arena. Safe here — no callback is in flight and no event context
  // can be referenced again.
  if (queue_.empty()) queue_.reset_storage();
  return now_;
}

SimTime Simulator::run_until(SimTime until) {
  stopping_ = false;
  while (!queue_.empty() && !stopping_ && queue_.next_time() <= until) {
    now_ = queue_.next_time();
    queue_.pop()();
  }
  if (queue_.empty()) queue_.reset_storage();
  return now_;
}

}  // namespace holmes::sim
