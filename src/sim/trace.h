#pragma once

/// \file trace.h
/// Chrome-trace export of a simulated task graph.
///
/// Writes the `chrome://tracing` / Perfetto JSON array format: one complete
/// ("X") event per task, with the task's resource as the thread row. Rows
/// are labeled via "M" (process_name / thread_name) metadata events, and
/// counter ("C") tracks chart global state over time — devices computing,
/// ports transferring, payload bytes in flight. Flow events ("s"/"f")
/// draw producer→consumer arrows across rows, and an optional emphasized
/// "critical path" row duplicates the critical chain's slices so the
/// binding constraint sequence reads as one contiguous lane. Load the file
/// in https://ui.perfetto.dev to inspect pipeline bubbles, the overlap of
/// gradient reduce-scatter with backward compute, or NIC port contention.

#include <ostream>
#include <string>
#include <vector>

#include "sim/executor.h"
#include "sim/task_graph.h"

namespace holmes::sim {

class RateTimeline;

struct TraceOptions {
  /// Tasks shorter than this (seconds) are dropped to keep files small
  /// (noops and empty transfers are invisible in a viewer anyway).
  SimTime min_duration = 0;
  /// Process id recorded in the trace (useful when concatenating multiple
  /// simulations into one file).
  int pid = 1;
  /// Process row label emitted as "process_name" metadata.
  std::string process_name = "holmes simulation";
  /// Emit "C" counter tracks ("compute in flight", "links busy",
  /// "bytes in flight"). Counters always cover *all* tasks, regardless of
  /// min_duration, so the aggregate view stays exact.
  bool counters = true;
  /// Emit flow arrows ("s" at the producer's finish, "f" with bp:"e" at
  /// the consumer's start) for dependency edges that hop between rows.
  /// Same-row edges are implied by slice adjacency and stay arrow-free.
  /// Both endpoint slices must be visible under min_duration.
  bool flows = true;
  /// Tasks to duplicate onto an emphasized extra "critical path" row (tid
  /// = resource count), e.g. obs::CriticalPath::tasks. Slices there carry
  /// cat "critical" so the lane is filterable.
  std::vector<TaskId> critical_tasks;
  /// Optional rate timeline the run executed under (see
  /// sim/rate_timeline.h). When set and non-empty, one breakpoint-exact
  /// "rate <resource>" counter track per degraded resource charts the
  /// effective service rate (min(1, compound factor)) so fault windows are
  /// visible as dips right next to the slices they stretch. Not owned.
  const RateTimeline* rates = nullptr;
};

/// Writes the trace of `graph` as executed in `result`. Transfers appear on
/// their source port's row; compute on its resource's row. The stream is
/// left without a trailing newline so callers can embed the array.
void write_chrome_trace(std::ostream& out, const TaskGraph& graph,
                        const SimResult& result,
                        const TraceOptions& options = {});

}  // namespace holmes::sim
