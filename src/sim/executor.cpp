#include "sim/executor.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <sstream>

#include "obs/self_profile.h"
#include "sim/rate_timeline.h"
#include "util/error.h"
#include "util/quad_heap.h"
#include "util/rng.h"

namespace holmes::sim {

namespace {

/// Heap slot for a released-but-not-placed task under kPermuteDisjoint:
/// ordered by ready time alone. Equal-time entries are drained together into
/// a pool and ordered there, so their relative heap order is irrelevant.
struct ReadySlot {
  SimTime ready;
  TaskId id;
};
struct ReadySooner {
  bool operator()(const ReadySlot& a, const ReadySlot& b) const {
    return a.ready < b.ready;
  }
};

/// Canonical heap slot: (ready, id) packed order-preservingly into one
/// 128-bit integer. Under TieBreak::kCanonical the tie key *is* the task
/// id, so (ready, id) already encodes the complete (ready, key, id)
/// placement order — and because sim times are non-negative, the IEEE-754
/// bit pattern of `ready` compares exactly like the double itself. A single
/// integer comparison per heap step lets the sift loops compile to
/// conditional moves instead of data-dependent branches; with near-random
/// ready times those branches mispredict almost every level and dominate
/// the whole executor otherwise. (__int128 is a GCC/Clang built-in; both
/// compilers this project supports provide it.)
using PackedSlot = unsigned __int128;
struct PackedSooner {
  bool operator()(PackedSlot a, PackedSlot b) const { return a < b; }
};
inline PackedSlot pack_slot(SimTime ready, TaskId id) {
  return (PackedSlot(std::bit_cast<std::uint64_t>(ready)) << 32) |
         static_cast<std::uint32_t>(id);
}
inline SimTime packed_ready(PackedSlot s) {
  return std::bit_cast<SimTime>(static_cast<std::uint64_t>(s >> 32));
}
inline TaskId packed_id(PackedSlot s) {
  return static_cast<TaskId>(static_cast<std::uint32_t>(s));
}

/// Heap slot for the canonical / permute-all driver. Placement order is
/// exactly ascending (ready, tie key, id), and each task is pushed once, so
/// the triples are unique — one ordered heap reproduces the schedule with no
/// separate tie-group pass. Under the canonical tie-break the key *is* the
/// task id, which makes execution order independent of container iteration
/// details; permute-all substitutes a seeded hash.
struct OrderedSlot {
  SimTime ready;
  std::uint64_t key;
  TaskId id;
};
struct OrderedSooner {
  bool operator()(const OrderedSlot& a, const OrderedSlot& b) const {
    if (a.ready != b.ready) return a.ready < b.ready;
    if (a.key != b.key) return a.key < b.key;
    return a.id < b.id;
  }
};

/// Per-task mutable scheduling state, fused so releasing a dependent
/// touches one cache line: latest dependency finish + dependencies left.
struct TaskState {
  SimTime ready = 0;
  std::uint32_t indeg = 0;
};

/// Union-find over positions of one equal-ready-time pool; used by
/// TieBreak::kPermuteDisjoint to group tied tasks that (transitively) share
/// a resource. Tasks in different components commute.
class PoolComponents {
 public:
  explicit PoolComponents(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

const TaskTiming& SimResult::timing(TaskId id) const {
  HOLMES_CHECK(id >= 0 && static_cast<std::size_t>(id) < timing_.size());
  return timing_[static_cast<std::size_t>(id)];
}

SimTime SimResult::resource_busy(ResourceId resource) const {
  HOLMES_CHECK(resource >= 0 &&
               static_cast<std::size_t>(resource) < resource_busy_.size());
  return resource_busy_[static_cast<std::size_t>(resource)];
}

double SimResult::resource_utilization(ResourceId resource) const {
  if (makespan_ <= 0) return 0;
  return resource_busy(resource) / makespan_;
}

SimTime SimResult::tag_busy(const TaskGraph& graph, TaskTag tag) const {
  SimTime total = 0;
  for (std::size_t i = 0; i < graph.task_count(); ++i) {
    if (graph.tasks()[i].tag == tag) {
      total += timing_[i].finish - timing_[i].start;
    }
  }
  return total;
}

SimTime SimResult::tag_span(const TaskGraph& graph, TaskTag tag) const {
  SimTime first = std::numeric_limits<SimTime>::infinity();
  SimTime last = -std::numeric_limits<SimTime>::infinity();
  bool any = false;
  for (std::size_t i = 0; i < graph.task_count(); ++i) {
    if (graph.tasks()[i].tag == tag) {
      any = true;
      first = std::min(first, timing_[i].start);
      last = std::max(last, timing_[i].finish);
    }
  }
  return any ? last - first : 0;
}

SimResult TaskGraphExecutor::run(const TaskGraph& graph,
                                 ExecutionObserver* observer) {
  // Self-profiling: counts are batched into locals and flushed once after the
  // loop so the unprofiled inner loop stays untouched and the profiled one
  // pays no thread-local access per task.
  namespace prof = obs::self_profile;
  const bool profiled = prof::enabled();
  prof::PhaseTimer event_loop_timer(&obs::SelfProfilePhases::event_loop_s);
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  std::uint64_t peak_ready = 0;

  const std::size_t n = graph.task_count();

  // The CSR adjacency and compact scheduling records are cached on the
  // graph, so repeated runs over the same graph pay for them once. The hot
  // loop walks the raw arrays directly.
  graph.build_adjacency();
  const std::span<const SchedTask> sched = graph.sched_tasks();
  const std::uint32_t* const dep_off = graph.dep_offsets().data();
  const TaskId* const out_list = graph.dependent_list().data();

  std::vector<TaskState> state(n);
  for (std::size_t i = 0; i < n; ++i) {
    state[i].indeg = dep_off[i + 1] - dep_off[i];
  }

  std::vector<TaskTiming> timing(n);
  // One extra slot: the scratch resource noop SchedTasks resolve to (see the
  // SchedTask doc). Its busy tally only ever accumulates zeros and is
  // dropped before the result is built.
  std::vector<SimTime> resource_avail(graph.resource_count() + 1, 0);
  std::vector<SimTime> resource_busy(graph.resource_count() + 1, 0);

  // Seeded tie key used by TieBreak::kPermuteAll (canonical keys are the
  // task ids themselves and never materialize).
  auto tie_key = [&](TaskId id) {
    return mix64(options_.tie_seed ^ static_cast<std::uint64_t>(id));
  };

  // Release buffer for the pool driver, which must hold same-time arrivals
  // back until the current tie group resolves. The ordered drivers bypass it
  // and push straight into their heap.
  std::vector<ReadySlot> released;
  released.reserve(graph.max_dependent_count());

  std::size_t completed = 0;
  SimTime makespan = 0;

  // Time-varying rates (fault injection): hoisted to one pointer so the
  // fixed-rate hot path pays a single perfectly predicted branch per task.
  const RateTimeline* const rates =
      options_.rates != nullptr && !options_.rates->empty() ? options_.rates
                                                            : nullptr;

  // Places one ready task: claims its resources, fixes start/finish, and
  // hands newly released dependents to `emit(ready, id)` — the ordered
  // drivers push straight into their heap, the pool driver buffers. Shared
  // by every tie-break driver so the placement semantics cannot drift
  // between them.
  auto place_task = [&](SimTime ready_at, TaskId id, auto&& emit) {
    const SchedTask& task = sched[static_cast<std::size_t>(id)];

    // Dependent state lines are the placement's only unpredictable demand
    // loads left; start them before the arithmetic below needs the results.
    {
      const std::uint32_t pin =
          task.out_count < SchedTask::kInlineOut ? task.out_count
                                                 : SchedTask::kInlineOut;
      for (std::uint32_t j = 0; j < pin; ++j) {
        __builtin_prefetch(&state[static_cast<std::size_t>(task.out[j])], 1);
      }
    }

    // Unified branch-free placement; bit-exact per kind (SchedTask doc).
    // Ports are occupied only for the (precomputed) serialization time; the
    // propagation latency delays the dependents, not the ports.
    SimTime& src = resource_avail[static_cast<std::size_t>(task.resource)];
    SimTime& dst = resource_avail[static_cast<std::size_t>(task.dst_port)];
    const SimTime start = std::max(ready_at, std::max(src, dst));
    // Occupancy equals declared cost unless a rate timeline stretches it —
    // a pure function of (resources, start, cost), so placement of
    // resource-disjoint tasks still commutes and the tie-break determinism
    // contract survives fault injection.
    const SimTime occupancy =
        rates == nullptr
            ? task.cost
            : rates->stretched(task.resource, task.dst_port, start, task.cost);
    const SimTime ports_free = start + occupancy;
    const SimTime finish = (start + task.latency) + occupancy;
    src = ports_free;
    dst = ports_free;
    resource_busy[static_cast<std::size_t>(task.resource)] += occupancy;
    resource_busy[static_cast<std::size_t>(task.dst_port)] +=
        task.dst_port != task.resource ? occupancy : 0.0;

    timing[static_cast<std::size_t>(id)] = {start, finish, ports_free};
    makespan = std::max(makespan, finish);
    ++completed;
    if (observer != nullptr) {
      observer->on_task_scheduled(graph, id,
                                  timing[static_cast<std::size_t>(id)],
                                  ready_at);
    }

    // Release order is irrelevant to results: ready-time maxing and
    // indegree decrements commute, and every downstream container orders by
    // the unique (ready, key, id) triple.
    auto release = [&](TaskId next) {
      TaskState& s = state[static_cast<std::size_t>(next)];
      if (finish > s.ready) s.ready = finish;
      if (--s.indeg == 0) {
        emit(s.ready, next);
        ++pushes;
        // The task now waits in the ready queue for a while (typically tens
        // of placements on large graphs). Task ids arrive in near-random
        // order there, so the lines its placement will touch are almost
        // never resident — warm them now, off the critical path. Everything
        // placement reads lives in the task's single SchedTask line.
        __builtin_prefetch(&sched[static_cast<std::size_t>(next)]);
        __builtin_prefetch(&timing[static_cast<std::size_t>(next)], 1);
      }
    };
    const std::uint32_t inline_out =
        task.out_count < SchedTask::kInlineOut ? task.out_count
                                               : SchedTask::kInlineOut;
    for (std::uint32_t j = 0; j < inline_out; ++j) release(task.out[j]);
    for (std::uint32_t j = SchedTask::kInlineOut; j < task.out_count; ++j) {
      release(out_list[task.out_begin + j]);
    }
  };

  // Canonical and permute-all: place strictly in (ready, key, id) order —
  // the production hot loop. One ordered heap IS the schedule: pop the
  // minimum, place it, push what it releases. No tie-group pass is needed
  // because the comparator already encodes the full tie-break. `make_slot`
  // maps a released (ready, id) pair to the heap's slot type: canonical
  // uses the packed 16-byte integer slot; permute-all carries the seeded
  // hash in a 24-byte struct slot.
  auto run_ordered = [&](auto& heap, auto make_slot, auto ready_of,
                         auto id_of) {
    heap.reserve(std::min<std::size_t>(n, 4096));
    for (std::size_t i = 0; i < n; ++i) {
      if (state[i].indeg == 0) {
        heap.push(make_slot(0, static_cast<TaskId>(i)));
        ++pushes;
      }
    }
    if (profiled) peak_ready = heap.size();

    while (!heap.empty()) {
      const auto slot = heap.top();
      heap.pop();
      ++pops;
      place_task(ready_of(slot), id_of(slot),
                 [&](SimTime ready, TaskId id) {
                   heap.push(make_slot(ready, id));
                 });
      if (profiled && heap.size() > peak_ready) peak_ready = heap.size();
    }
  };

  if (options_.tie_break == TieBreak::kCanonical) {
    QuadHeap<PackedSlot, PackedSooner> heap;
    run_ordered(heap, pack_slot, packed_ready, packed_id);
  } else if (options_.tie_break == TieBreak::kPermuteAll) {
    QuadHeap<OrderedSlot, OrderedSooner> heap;
    run_ordered(
        heap,
        [&](SimTime ready, TaskId id) {
          return OrderedSlot{ready, tie_key(id), id};
        },
        [](const OrderedSlot& s) { return s.ready; },
        [](const OrderedSlot& s) { return s.id; });
  } else {
    QuadHeap<ReadySlot, ReadySooner> heap;
    heap.reserve(std::min<std::size_t>(n, 4096));
    // Permute-disjoint: drain each equal-ready-time tie group and place it
    // one resource-disjoint component at a time, in seeded component order.
    // Tasks sharing a resource stay in id order (their order is
    // schedule-relevant); tasks that share nothing commute, so reordering
    // them must not change any timing — divergence is an executor bug.
    for (std::size_t i = 0; i < n; ++i) {
      if (state[i].indeg == 0) {
        heap.push({0, static_cast<TaskId>(i)});
        ++pushes;
      }
    }
    if (profiled) peak_ready = heap.size();

    // Flat replacement for a map<ResourceId, pool position>: epoch-stamped
    // claims, reset per pool pass by bumping the epoch.
    std::vector<std::size_t> owner(graph.resource_count(), 0);
    std::vector<std::uint32_t> owner_epoch(graph.resource_count(), 0);
    std::uint32_t epoch = 0;

    std::vector<TaskId> pool;
    while (!heap.empty()) {
      const SimTime now = heap.top().ready;
      pool.clear();
      for (;;) {
        while (!heap.empty() && heap.top().ready == now) {
          pool.push_back(heap.top().id);
          heap.pop();
          ++pops;
        }
        if (pool.empty()) break;
        std::sort(pool.begin(), pool.end());

        // Flush no-resource tasks (noops) first: they commute with every
        // tied task, and their zero-cost chains release same-time dependents
        // that must join the pool *before* component order is fixed —
        // otherwise a dependent could be sequenced after a contender the
        // canonical discipline would have placed it before.
        std::vector<TaskId> holders;
        bool flushed = false;
        auto buffer = [&](SimTime ready, TaskId id) {
          released.push_back({ready, id});
        };
        for (TaskId id : pool) {
          if (sched[static_cast<std::size_t>(id)].kind == TaskKind::kNoop) {
            place_task(now, id, buffer);
            flushed = true;
          } else {
            holders.push_back(id);
          }
        }
        pool = std::move(holders);
        for (const ReadySlot& slot : released) heap.push(slot);
        released.clear();
        if (profiled && heap.size() + pool.size() > peak_ready) {
          peak_ready = heap.size() + pool.size();
        }
        if (flushed || pool.empty()) continue;  // re-drain the releases

        // Group the pool into components of (transitively) shared resources.
        PoolComponents uf(pool.size());
        ++epoch;
        for (std::size_t i = 0; i < pool.size(); ++i) {
          const SchedTask& task = sched[static_cast<std::size_t>(pool[i])];
          ResourceId touched[2] = {-1, -1};
          if (task.kind == TaskKind::kCompute) {
            touched[0] = task.resource;
          } else if (task.kind == TaskKind::kTransfer) {
            touched[0] = task.resource;
            touched[1] = task.dst_port;
          }
          for (ResourceId r : touched) {
            if (r < 0) continue;
            const auto ri = static_cast<std::size_t>(r);
            if (owner_epoch[ri] == epoch) {
              uf.unite(i, owner[ri]);
            } else {
              owner_epoch[ri] = epoch;
              owner[ri] = i;
            }
          }
        }

        // Place the component whose seeded key is smallest; same-time
        // arrivals it releases re-enter the pool on the next pass, joining
        // whatever component they share resources with.
        std::size_t best_root = pool.size();
        std::uint64_t best_key = 0;
        for (std::size_t i = 0; i < pool.size(); ++i) {
          if (uf.find(i) != i) continue;
          std::uint64_t min_id = static_cast<std::uint64_t>(pool[i]);
          for (std::size_t j = 0; j < pool.size(); ++j) {
            if (uf.find(j) == i) {
              min_id = std::min(min_id, static_cast<std::uint64_t>(pool[j]));
            }
          }
          const std::uint64_t key = mix64(options_.tie_seed ^ min_id);
          if (best_root == pool.size() || key < best_key) {
            best_root = i;
            best_key = key;
          }
        }
        std::vector<TaskId> remaining;
        for (std::size_t i = 0; i < pool.size(); ++i) {
          if (uf.find(i) == best_root) {
            place_task(now, pool[i], buffer);
          } else {
            remaining.push_back(pool[i]);
          }
        }
        pool = std::move(remaining);
        for (const ReadySlot& slot : released) heap.push(slot);
        released.clear();
        if (profiled && heap.size() + pool.size() > peak_ready) {
          peak_ready = heap.size() + pool.size();
        }
      }
    }
  }

  if (profiled) {
    prof::count(&obs::SelfProfileCounters::executor_runs);
    prof::count(&obs::SelfProfileCounters::ready_pushes, pushes);
    prof::count(&obs::SelfProfileCounters::ready_pops, pops);
    prof::raise(&obs::SelfProfileCounters::max_ready_queue, peak_ready);
  }

  if (completed != n) {
    std::ostringstream os;
    os << "task graph has a dependency cycle: " << (n - completed) << " of "
       << n << " tasks never became ready";
    throw ConfigError(os.str());
  }

  resource_busy.pop_back();  // drop the scratch slot (zeros by construction)
  SimResult result(std::move(timing), std::move(resource_busy), makespan);
  if (observer != nullptr) observer->on_run_complete(graph, result);
  return result;
}

}  // namespace holmes::sim
