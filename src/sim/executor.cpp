#include "sim/executor.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <queue>
#include <sstream>

#include "obs/self_profile.h"
#include "util/error.h"
#include "util/rng.h"

namespace holmes::sim {

namespace {

/// (ready time, tie key, task id) ordering for the ready queue: earliest
/// ready first, then lowest key. Under the canonical tie-break the key *is*
/// the task id, which makes execution order independent of container
/// iteration details; the permuting policies substitute a seeded hash.
struct ReadyEntry {
  SimTime ready;
  std::uint64_t key;
  TaskId id;
};
struct ReadyLater {
  bool operator()(const ReadyEntry& a, const ReadyEntry& b) const {
    if (a.ready != b.ready) return a.ready > b.ready;
    if (a.key != b.key) return a.key > b.key;
    return a.id > b.id;
  }
};

/// Union-find over positions of one equal-ready-time pool; used by
/// TieBreak::kPermuteDisjoint to group tied tasks that (transitively) share
/// a resource. Tasks in different components commute.
class PoolComponents {
 public:
  explicit PoolComponents(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

const TaskTiming& SimResult::timing(TaskId id) const {
  HOLMES_CHECK(id >= 0 && static_cast<std::size_t>(id) < timing_.size());
  return timing_[static_cast<std::size_t>(id)];
}

SimTime SimResult::resource_busy(ResourceId resource) const {
  HOLMES_CHECK(resource >= 0 &&
               static_cast<std::size_t>(resource) < resource_busy_.size());
  return resource_busy_[static_cast<std::size_t>(resource)];
}

double SimResult::resource_utilization(ResourceId resource) const {
  if (makespan_ <= 0) return 0;
  return resource_busy(resource) / makespan_;
}

SimTime SimResult::tag_busy(const TaskGraph& graph, TaskTag tag) const {
  SimTime total = 0;
  for (std::size_t i = 0; i < graph.task_count(); ++i) {
    if (graph.tasks()[i].tag == tag) {
      total += timing_[i].finish - timing_[i].start;
    }
  }
  return total;
}

SimTime SimResult::tag_span(const TaskGraph& graph, TaskTag tag) const {
  SimTime first = std::numeric_limits<SimTime>::infinity();
  SimTime last = -std::numeric_limits<SimTime>::infinity();
  bool any = false;
  for (std::size_t i = 0; i < graph.task_count(); ++i) {
    if (graph.tasks()[i].tag == tag) {
      any = true;
      first = std::min(first, timing_[i].start);
      last = std::max(last, timing_[i].finish);
    }
  }
  return any ? last - first : 0;
}

SimResult TaskGraphExecutor::run(const TaskGraph& graph,
                                 ExecutionObserver* observer) {
  // Self-profiling: counts are batched into locals and flushed once after the
  // loop so the unprofiled inner loop stays untouched and the profiled one
  // pays no thread-local access per task.
  namespace prof = obs::self_profile;
  const bool profiled = prof::enabled();
  prof::PhaseTimer event_loop_timer(&obs::SelfProfilePhases::event_loop_s);
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  std::uint64_t peak_ready = 0;

  const auto& tasks = graph.tasks();
  const std::size_t n = tasks.size();

  std::vector<std::size_t> indegree(n, 0);
  std::vector<std::vector<TaskId>> dependents(n);
  for (std::size_t i = 0; i < n; ++i) {
    indegree[i] = tasks[i].deps.size();
    for (TaskId dep : tasks[i].deps) {
      dependents[static_cast<std::size_t>(dep)].push_back(
          static_cast<TaskId>(i));
    }
  }

  std::vector<TaskTiming> timing(n);
  std::vector<SimTime> ready_time(n, 0);
  std::vector<SimTime> resource_avail(graph.resource_count(), 0);
  std::vector<SimTime> resource_busy(graph.resource_count(), 0);

  // Tie keys: canonical and disjoint-permute queue in id order (the latter
  // reorders whole resource-disjoint components after draining a tie group);
  // permute-all hashes every id so ties interleave under the seed.
  const bool hash_keys = options_.tie_break == TieBreak::kPermuteAll;
  auto tie_key = [&](TaskId id) {
    return hash_keys ? mix64(options_.tie_seed ^ static_cast<std::uint64_t>(id))
                     : static_cast<std::uint64_t>(id);
  };

  std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, ReadyLater> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) {
      ready.push({0, tie_key(static_cast<TaskId>(i)), static_cast<TaskId>(i)});
      ++pushes;
    }
  }
  if (profiled) peak_ready = ready.size();

  std::size_t completed = 0;
  SimTime makespan = 0;

  // Places one ready task: claims its resources, fixes start/finish, and
  // releases dependents into the ready queue. Shared by every tie-break
  // driver so the placement semantics cannot drift between them.
  auto place_task = [&](SimTime ready_at, TaskId id) {
    const Task& task = tasks[static_cast<std::size_t>(id)];

    SimTime start = ready_at;
    SimTime finish = ready_at;
    switch (task.kind) {
      case TaskKind::kCompute: {
        auto& avail = resource_avail[static_cast<std::size_t>(task.resource)];
        start = std::max(ready_at, avail);
        finish = start + task.duration;
        avail = finish;
        resource_busy[static_cast<std::size_t>(task.resource)] += task.duration;
        break;
      }
      case TaskKind::kTransfer: {
        auto& src = resource_avail[static_cast<std::size_t>(task.src_port)];
        auto& dst = resource_avail[static_cast<std::size_t>(task.dst_port)];
        start = std::max({ready_at, src, dst});
        const SimTime serialization =
            task.bytes > 0 ? static_cast<double>(task.bytes) / task.bandwidth
                           : 0.0;
        // Ports are occupied only while bytes stream through them; the
        // propagation latency delays the dependents, not the ports.
        src = dst = start + serialization;
        finish = start + task.latency + serialization;
        resource_busy[static_cast<std::size_t>(task.src_port)] += serialization;
        if (task.dst_port != task.src_port) {
          resource_busy[static_cast<std::size_t>(task.dst_port)] += serialization;
        }
        break;
      }
      case TaskKind::kNoop:
        break;
    }

    timing[static_cast<std::size_t>(id)] = {start, finish};
    makespan = std::max(makespan, finish);
    ++completed;
    if (observer != nullptr) {
      observer->on_task_scheduled(graph, id,
                                  timing[static_cast<std::size_t>(id)],
                                  ready_at);
    }

    for (TaskId next : dependents[static_cast<std::size_t>(id)]) {
      auto& rt = ready_time[static_cast<std::size_t>(next)];
      rt = std::max(rt, finish);
      if (--indegree[static_cast<std::size_t>(next)] == 0) {
        ready.push({rt, tie_key(next), next});
        ++pushes;
      }
    }
    if (profiled && ready.size() > peak_ready) peak_ready = ready.size();
  };

  if (options_.tie_break != TieBreak::kPermuteDisjoint) {
    // Canonical and permute-all: the queue order (ready, key) is the
    // schedule order — the production hot loop.
    while (!ready.empty()) {
      const auto [ready_at, key, id] = ready.top();
      ready.pop();
      ++pops;
      place_task(ready_at, id);
    }
  } else {
    // Permute-disjoint: drain each equal-ready-time tie group and place it
    // one resource-disjoint component at a time, in seeded component order.
    // Tasks sharing a resource stay in id order (their order is
    // schedule-relevant); tasks that share nothing commute, so reordering
    // them must not change any timing — divergence is an executor bug.
    std::vector<TaskId> pool;
    while (!ready.empty()) {
      const SimTime now = ready.top().ready;
      pool.clear();
      for (;;) {
        while (!ready.empty() && ready.top().ready == now) {
          pool.push_back(ready.top().id);
          ready.pop();
          ++pops;
        }
        if (pool.empty()) break;
        std::sort(pool.begin(), pool.end());

        // Flush no-resource tasks (noops) first: they commute with every
        // tied task, and their zero-cost chains release same-time dependents
        // that must join the pool *before* component order is fixed —
        // otherwise a dependent could be sequenced after a contender the
        // canonical discipline would have placed it before.
        std::vector<TaskId> holders;
        bool flushed = false;
        for (TaskId id : pool) {
          if (tasks[static_cast<std::size_t>(id)].kind == TaskKind::kNoop) {
            place_task(now, id);
            flushed = true;
          } else {
            holders.push_back(id);
          }
        }
        pool = std::move(holders);
        if (flushed || pool.empty()) continue;  // re-drain the releases

        // Group the pool into components of (transitively) shared resources.
        PoolComponents uf(pool.size());
        std::map<ResourceId, std::size_t> owner;
        for (std::size_t i = 0; i < pool.size(); ++i) {
          const Task& task = tasks[static_cast<std::size_t>(pool[i])];
          ResourceId touched[2] = {-1, -1};
          if (task.kind == TaskKind::kCompute) {
            touched[0] = task.resource;
          } else if (task.kind == TaskKind::kTransfer) {
            touched[0] = task.src_port;
            touched[1] = task.dst_port;
          }
          for (ResourceId r : touched) {
            if (r < 0) continue;
            auto [it, inserted] = owner.emplace(r, i);
            if (!inserted) uf.unite(i, it->second);
          }
        }

        // Place the component whose seeded key is smallest; same-time
        // arrivals it releases re-enter the pool on the next pass, joining
        // whatever component they share resources with.
        std::size_t best_root = pool.size();
        std::uint64_t best_key = 0;
        for (std::size_t i = 0; i < pool.size(); ++i) {
          if (uf.find(i) != i) continue;
          std::uint64_t min_id = static_cast<std::uint64_t>(pool[i]);
          for (std::size_t j = 0; j < pool.size(); ++j) {
            if (uf.find(j) == i) {
              min_id = std::min(min_id, static_cast<std::uint64_t>(pool[j]));
            }
          }
          const std::uint64_t key = mix64(options_.tie_seed ^ min_id);
          if (best_root == pool.size() || key < best_key) {
            best_root = i;
            best_key = key;
          }
        }
        std::vector<TaskId> remaining;
        for (std::size_t i = 0; i < pool.size(); ++i) {
          if (uf.find(i) == best_root) {
            place_task(now, pool[i]);
          } else {
            remaining.push_back(pool[i]);
          }
        }
        pool = std::move(remaining);
      }
    }
  }

  if (profiled) {
    prof::count(&obs::SelfProfileCounters::executor_runs);
    prof::count(&obs::SelfProfileCounters::ready_pushes, pushes);
    prof::count(&obs::SelfProfileCounters::ready_pops, pops);
    prof::raise(&obs::SelfProfileCounters::max_ready_queue, peak_ready);
  }

  if (completed != n) {
    std::ostringstream os;
    os << "task graph has a dependency cycle: " << (n - completed) << " of "
       << n << " tasks never became ready";
    throw ConfigError(os.str());
  }

  SimResult result(std::move(timing), std::move(resource_busy), makespan);
  if (observer != nullptr) observer->on_run_complete(graph, result);
  return result;
}

}  // namespace holmes::sim
