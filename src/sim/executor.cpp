#include "sim/executor.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>
#include <sstream>

#include "obs/self_profile.h"
#include "util/error.h"

namespace holmes::sim {

namespace {

/// (ready time, task id) ordering for the ready queue: earliest ready first,
/// then lowest id, which makes execution order independent of container
/// iteration details.
struct ReadyEntry {
  SimTime ready;
  TaskId id;
};
struct ReadyLater {
  bool operator()(const ReadyEntry& a, const ReadyEntry& b) const {
    if (a.ready != b.ready) return a.ready > b.ready;
    return a.id > b.id;
  }
};

}  // namespace

const TaskTiming& SimResult::timing(TaskId id) const {
  HOLMES_CHECK(id >= 0 && static_cast<std::size_t>(id) < timing_.size());
  return timing_[static_cast<std::size_t>(id)];
}

SimTime SimResult::resource_busy(ResourceId resource) const {
  HOLMES_CHECK(resource >= 0 &&
               static_cast<std::size_t>(resource) < resource_busy_.size());
  return resource_busy_[static_cast<std::size_t>(resource)];
}

double SimResult::resource_utilization(ResourceId resource) const {
  if (makespan_ <= 0) return 0;
  return resource_busy(resource) / makespan_;
}

SimTime SimResult::tag_busy(const TaskGraph& graph, TaskTag tag) const {
  SimTime total = 0;
  for (std::size_t i = 0; i < graph.task_count(); ++i) {
    if (graph.tasks()[i].tag == tag) {
      total += timing_[i].finish - timing_[i].start;
    }
  }
  return total;
}

SimTime SimResult::tag_span(const TaskGraph& graph, TaskTag tag) const {
  SimTime first = std::numeric_limits<SimTime>::infinity();
  SimTime last = -std::numeric_limits<SimTime>::infinity();
  bool any = false;
  for (std::size_t i = 0; i < graph.task_count(); ++i) {
    if (graph.tasks()[i].tag == tag) {
      any = true;
      first = std::min(first, timing_[i].start);
      last = std::max(last, timing_[i].finish);
    }
  }
  return any ? last - first : 0;
}

SimResult TaskGraphExecutor::run(const TaskGraph& graph,
                                 ExecutionObserver* observer) {
  // Self-profiling: counts are batched into locals and flushed once after the
  // loop so the unprofiled inner loop stays untouched and the profiled one
  // pays no thread-local access per task.
  namespace prof = obs::self_profile;
  const bool profiled = prof::enabled();
  prof::PhaseTimer event_loop_timer(&obs::SelfProfilePhases::event_loop_s);
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  std::uint64_t peak_ready = 0;

  const auto& tasks = graph.tasks();
  const std::size_t n = tasks.size();

  std::vector<std::size_t> indegree(n, 0);
  std::vector<std::vector<TaskId>> dependents(n);
  for (std::size_t i = 0; i < n; ++i) {
    indegree[i] = tasks[i].deps.size();
    for (TaskId dep : tasks[i].deps) {
      dependents[static_cast<std::size_t>(dep)].push_back(
          static_cast<TaskId>(i));
    }
  }

  std::vector<TaskTiming> timing(n);
  std::vector<SimTime> ready_time(n, 0);
  std::vector<SimTime> resource_avail(graph.resource_count(), 0);
  std::vector<SimTime> resource_busy(graph.resource_count(), 0);

  std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, ReadyLater> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) {
      ready.push({0, static_cast<TaskId>(i)});
      ++pushes;
    }
  }
  if (profiled) peak_ready = ready.size();

  std::size_t completed = 0;
  SimTime makespan = 0;
  while (!ready.empty()) {
    const auto [ready_at, id] = ready.top();
    ready.pop();
    ++pops;
    const Task& task = tasks[static_cast<std::size_t>(id)];

    SimTime start = ready_at;
    SimTime finish = ready_at;
    switch (task.kind) {
      case TaskKind::kCompute: {
        auto& avail = resource_avail[static_cast<std::size_t>(task.resource)];
        start = std::max(ready_at, avail);
        finish = start + task.duration;
        avail = finish;
        resource_busy[static_cast<std::size_t>(task.resource)] += task.duration;
        break;
      }
      case TaskKind::kTransfer: {
        auto& src = resource_avail[static_cast<std::size_t>(task.src_port)];
        auto& dst = resource_avail[static_cast<std::size_t>(task.dst_port)];
        start = std::max({ready_at, src, dst});
        const SimTime serialization =
            task.bytes > 0 ? static_cast<double>(task.bytes) / task.bandwidth
                           : 0.0;
        // Ports are occupied only while bytes stream through them; the
        // propagation latency delays the dependents, not the ports.
        src = dst = start + serialization;
        finish = start + task.latency + serialization;
        resource_busy[static_cast<std::size_t>(task.src_port)] += serialization;
        if (task.dst_port != task.src_port) {
          resource_busy[static_cast<std::size_t>(task.dst_port)] += serialization;
        }
        break;
      }
      case TaskKind::kNoop:
        break;
    }

    timing[static_cast<std::size_t>(id)] = {start, finish};
    makespan = std::max(makespan, finish);
    ++completed;
    if (observer != nullptr) {
      observer->on_task_scheduled(graph, id,
                                  timing[static_cast<std::size_t>(id)],
                                  ready_at);
    }

    for (TaskId next : dependents[static_cast<std::size_t>(id)]) {
      auto& rt = ready_time[static_cast<std::size_t>(next)];
      rt = std::max(rt, finish);
      if (--indegree[static_cast<std::size_t>(next)] == 0) {
        ready.push({rt, next});
        ++pushes;
      }
    }
    if (profiled && ready.size() > peak_ready) peak_ready = ready.size();
  }

  if (profiled) {
    prof::count(&obs::SelfProfileCounters::executor_runs);
    prof::count(&obs::SelfProfileCounters::ready_pushes, pushes);
    prof::count(&obs::SelfProfileCounters::ready_pops, pops);
    prof::raise(&obs::SelfProfileCounters::max_ready_queue, peak_ready);
  }

  if (completed != n) {
    std::ostringstream os;
    os << "task graph has a dependency cycle: " << (n - completed) << " of "
       << n << " tasks never became ready";
    throw ConfigError(os.str());
  }

  SimResult result(std::move(timing), std::move(resource_busy), makespan);
  if (observer != nullptr) observer->on_run_complete(graph, result);
  return result;
}

}  // namespace holmes::sim
