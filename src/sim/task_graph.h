#pragma once

/// \file task_graph.h
/// Task-graph representation of one unit of simulated work (typically a
/// single training iteration).
///
/// A task graph contains:
///  - resources: serial execution units (a device's compute engine, a NIC's
///    TX port, a NIC's RX port). A resource runs at most one task at a time.
///  - tasks: Compute (occupies one resource for a precomputed duration),
///    Transfer (occupies a TX and an RX port for the serialization time and
///    completes after an additional propagation latency), and Noop (zero
///    cost; used as join/fork points).
///  - dependencies: edges that must complete before a task may start.
///
/// Higher layers (comm collectives, pipeline schedules, optimizer overlap)
/// express themselves purely through this structure; overlap of computation
/// with communication falls out of resources being independent.

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.h"

namespace holmes::sim {

using TaskId = std::int32_t;
using ResourceId = std::int32_t;

/// Logical traffic channel a transfer belongs to (typically a communicator
/// such as "dp0", or "pp" for pipeline point-to-point hops). Channels let
/// the observability layer attribute bytes and bandwidth per communicator
/// without parsing labels; they have no effect on scheduling.
using ChannelId = std::int32_t;

inline constexpr TaskId kInvalidTask = -1;
inline constexpr ChannelId kInvalidChannel = -1;

enum class TaskKind : std::uint8_t { kCompute, kTransfer, kNoop };

/// Accounting category for a task. Metrics aggregate start/finish spans and
/// busy time per tag (e.g. "time spent in grads-reduce-scatter", Fig. 3).
/// Tags are plain integers; the core library defines the canonical values.
using TaskTag = std::int32_t;
inline constexpr TaskTag kUntagged = 0;

struct Task {
  TaskKind kind = TaskKind::kNoop;
  TaskTag tag = kUntagged;

  // Compute: the executing resource. Transfer: unused (-1).
  ResourceId resource = -1;
  // Compute: duration in seconds.
  SimTime duration = 0;

  // Transfer fields.
  ResourceId src_port = -1;
  ResourceId dst_port = -1;
  Bytes bytes = 0;
  double bandwidth = 0;  ///< bytes per second on the resolved path
  SimTime latency = 0;   ///< propagation latency of the resolved path
  ChannelId channel = kInvalidChannel;  ///< owning communicator, if any

  std::string label;  ///< optional; used in traces and error messages

  std::vector<TaskId> deps;
};

class TaskGraph {
 public:
  /// Registers a serial resource and returns its id.
  ResourceId add_resource(std::string name);

  /// Adds a compute task occupying `resource` for `duration` seconds.
  TaskId add_compute(ResourceId resource, SimTime duration,
                     std::string label = {}, TaskTag tag = kUntagged);

  /// Adds a point-to-point transfer of `bytes` over a path with the given
  /// bandwidth (bytes/s) and latency (s). The TX and RX ports are occupied
  /// for the serialization time bytes/bandwidth; the transfer's dependents
  /// additionally wait for the propagation latency.
  TaskId add_transfer(ResourceId src_port, ResourceId dst_port, Bytes bytes,
                      double bandwidth, SimTime latency,
                      std::string label = {}, TaskTag tag = kUntagged,
                      ChannelId channel = kInvalidChannel);

  /// Returns the channel named `name`, registering it on first use. Channel
  /// ids are dense and stable in registration order.
  ChannelId channel(const std::string& name);

  /// Adds a zero-cost join/fork point.
  TaskId add_noop(std::string label = {}, TaskTag tag = kUntagged);

  /// Declares that `task` cannot start before `dep` finishes.
  void add_dep(TaskId task, TaskId dep);

  /// Declares dependencies on several tasks at once; kInvalidTask entries
  /// are ignored, which lets callers pass optional predecessors verbatim.
  void add_deps(TaskId task, const std::vector<TaskId>& deps);

  std::size_t task_count() const { return tasks_.size(); }
  std::size_t resource_count() const { return resource_names_.size(); }
  std::size_t channel_count() const { return channel_names_.size(); }

  const Task& task(TaskId id) const;
  const std::string& resource_name(ResourceId id) const;
  const std::string& channel_name(ChannelId id) const;

  const std::vector<Task>& tasks() const { return tasks_; }

 private:
  TaskId push(Task task);

  std::vector<Task> tasks_;
  std::vector<std::string> resource_names_;
  std::vector<std::string> channel_names_;
};

}  // namespace holmes::sim
