#pragma once

/// \file task_graph.h
/// Task-graph representation of one unit of simulated work (typically a
/// single training iteration).
///
/// A task graph contains:
///  - resources: serial execution units (a device's compute engine, a NIC's
///    TX port, a NIC's RX port). A resource runs at most one task at a time.
///  - tasks: Compute (occupies one resource for a precomputed duration),
///    Transfer (occupies a TX and an RX port for the serialization time and
///    completes after an additional propagation latency), and Noop (zero
///    cost; used as join/fork points).
///  - dependencies: edges that must complete before a task may start.
///
/// Higher layers (comm collectives, pipeline schedules, optimizer overlap)
/// express themselves purely through this structure; overlap of computation
/// with communication falls out of resources being independent.
///
/// Memory layout: dependencies live in one flat edge list, compiled on
/// demand into a cached CSR adjacency (dep and dependent index arrays).
/// Tasks therefore carry no per-task dependency vector — building a
/// million-edge graph performs zero per-dependency heap allocations, and
/// the executor walks contiguous arrays. Read dependencies through
/// `deps(id)` / `dependents(id)`; the first call after a mutation pays one
/// linear counting-sort pass, later calls are free.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/units.h"

namespace holmes::sim {

using TaskId = std::int32_t;
using ResourceId = std::int32_t;

/// Logical traffic channel a transfer belongs to (typically a communicator
/// such as "dp0", or "pp" for pipeline point-to-point hops). Channels let
/// the observability layer attribute bytes and bandwidth per communicator
/// without parsing labels; they have no effect on scheduling.
using ChannelId = std::int32_t;

inline constexpr TaskId kInvalidTask = -1;
inline constexpr ChannelId kInvalidChannel = -1;

enum class TaskKind : std::uint8_t { kCompute, kTransfer, kNoop };

/// Compact per-task scheduling record: everything placing one task needs —
/// resources, precomputed costs, *and* the first dependents — fused into
/// exactly one cache line (vs the ~120-byte Task with its label string and a
/// separate adjacency lookup). On large graphs task ids reach the ready
/// queue in near-random order, so placement is bound by cache misses; one
/// line per task is the difference between one miss and three. Built and
/// cached by TaskGraph::build_adjacency(); `cost` is the compute duration or
/// the transfer serialization time (bytes / bandwidth, precomputed — the
/// division leaves the hot loop). Dependents beyond the inline capacity
/// continue in dependent_list()[out_begin + kInlineOut ...].
struct alignas(64) SchedTask {
  /// Dependents stored inline; graphs built from collectives and pipeline
  /// schedules have out-degree <= 2 almost everywhere.
  static constexpr std::uint32_t kInlineOut = 7;

  /// `resource` and `dst_port` are always valid indices so placement needs
  /// no per-kind branching: a compute sets dst_port = resource, and a noop
  /// parks both on the scratch slot at index resource_count() (executors
  /// size their per-resource arrays resource_count() + 1). With latency and
  /// cost 0 for the degenerate kinds, every task places as
  ///   start  = max(ready, avail[resource], avail[dst_port])
  ///   ports  = start + cost
  ///   finish = (start + latency) + cost
  /// which is bit-exact against the per-kind formulas: x + 0.0 == x for the
  /// non-negative times the graph admits, and the scratch slot's avail can
  /// never exceed `ready` because tasks place in nondecreasing ready order.
  SimTime cost = 0;         ///< occupancy time of the claimed resource(s)
  SimTime latency = 0;      ///< transfer propagation latency (0 otherwise)
  ResourceId resource = -1; ///< compute resource / TX port / scratch (noop)
  ResourceId dst_port = -1; ///< RX port; = resource (compute), scratch (noop)
  std::uint32_t out_begin = 0;  ///< this task's slice of dependent_list()
  std::uint32_t out_count = 0;  ///< total dependent count
  TaskKind kind = TaskKind::kNoop;
  TaskId out[kInlineOut] = {};  ///< first min(out_count, kInlineOut) dependents
};
static_assert(sizeof(SchedTask) == 64, "SchedTask must fill one cache line");

/// Accounting category for a task. Metrics aggregate start/finish spans and
/// busy time per tag (e.g. "time spent in grads-reduce-scatter", Fig. 3).
/// Tags are plain integers; the core library defines the canonical values.
using TaskTag = std::int32_t;
inline constexpr TaskTag kUntagged = 0;

struct Task {
  TaskKind kind = TaskKind::kNoop;
  TaskTag tag = kUntagged;

  // Compute: the executing resource. Transfer: unused (-1).
  ResourceId resource = -1;
  // Compute: duration in seconds.
  SimTime duration = 0;

  // Transfer fields.
  ResourceId src_port = -1;
  ResourceId dst_port = -1;
  Bytes bytes = 0;
  double bandwidth = 0;  ///< bytes per second on the resolved path
  SimTime latency = 0;   ///< propagation latency of the resolved path
  ChannelId channel = kInvalidChannel;  ///< owning communicator, if any

  std::string label;  ///< optional; used in traces and error messages

  /// Dependencies of a *raw* task-set fixture (see verify::TaskSetRef):
  /// known-bad graphs the TaskGraph API would refuse are expressed as bare
  /// `std::vector<Task>` with this field filled in. Tasks owned by a
  /// TaskGraph leave it empty — the graph stores dependencies in its flat
  /// edge list instead; read them via TaskGraph::deps(id).
  std::vector<TaskId> deps;
};

class TaskGraph {
 public:
  /// Registers a serial resource and returns its id.
  ResourceId add_resource(std::string name);

  /// Adds a compute task occupying `resource` for `duration` seconds.
  TaskId add_compute(ResourceId resource, SimTime duration,
                     std::string label = {}, TaskTag tag = kUntagged);

  /// Adds a point-to-point transfer of `bytes` over a path with the given
  /// bandwidth (bytes/s) and latency (s). The TX and RX ports are occupied
  /// for the serialization time bytes/bandwidth; the transfer's dependents
  /// additionally wait for the propagation latency.
  TaskId add_transfer(ResourceId src_port, ResourceId dst_port, Bytes bytes,
                      double bandwidth, SimTime latency,
                      std::string label = {}, TaskTag tag = kUntagged,
                      ChannelId channel = kInvalidChannel);

  /// Returns the channel named `name`, registering it on first use. Channel
  /// ids are dense and stable in registration order.
  ChannelId channel(const std::string& name);

  /// Adds a zero-cost join/fork point.
  TaskId add_noop(std::string label = {}, TaskTag tag = kUntagged);

  /// Declares that `task` cannot start before `dep` finishes.
  void add_dep(TaskId task, TaskId dep);

  /// Declares dependencies on several tasks at once; kInvalidTask entries
  /// are ignored, which lets callers pass optional predecessors verbatim.
  void add_deps(TaskId task, const std::vector<TaskId>& deps);

  std::size_t task_count() const { return tasks_.size(); }
  std::size_t resource_count() const { return resource_names_.size(); }
  std::size_t channel_count() const { return channel_names_.size(); }
  /// Dependency edges declared so far.
  std::size_t dep_count() const { return edges_.size(); }

  /// Largest dependent (out-degree) count of any task; a sizing hint for
  /// release buffers. Compiled with the adjacency.
  std::size_t max_dependent_count() const;

  const Task& task(TaskId id) const;
  const std::string& resource_name(ResourceId id) const;
  const std::string& channel_name(ChannelId id) const;

  const std::vector<Task>& tasks() const { return tasks_; }

  /// Dependencies of `id` in add_dep order (a view into the cached CSR
  /// adjacency; valid until the next graph mutation).
  std::span<const TaskId> deps(TaskId id) const;

  /// Tasks that depend on `id`, in edge-declaration order (same validity).
  std::span<const TaskId> dependents(TaskId id) const;

  /// Compact scheduling records, one per task (same cache validity as the
  /// adjacency views).
  std::span<const SchedTask> sched_tasks() const;

  /// Raw CSR arrays, for hot loops that inline the adjacency walk or issue
  /// prefetches by address. `offsets` has task_count()+1 entries; task `i`'s
  /// neighbours are `list[offsets[i] .. offsets[i+1])`. Same cache validity
  /// as deps()/dependents().
  std::span<const std::uint32_t> dep_offsets() const;
  std::span<const std::uint32_t> dependent_offsets() const;
  std::span<const TaskId> dependent_list() const;

  /// Compiles the CSR adjacency now if any mutation invalidated it.
  /// Implied by deps()/dependents(); call explicitly before sharing the
  /// graph read-only across threads (lazy builds are not synchronized).
  void build_adjacency() const;

 private:
  TaskId push(Task task);

  /// One dependency edge: `task` waits for `dep`.
  struct Edge {
    TaskId task;
    TaskId dep;
  };

  std::vector<Task> tasks_;
  std::vector<Edge> edges_;
  std::vector<std::string> resource_names_;
  std::vector<std::string> channel_names_;

  // Cached CSR views of edges_, built by build_adjacency(). offsets have
  // task_count()+1 entries; lists are edge-count long. Stable: per-task
  // order equals edge-declaration order (counting sort).
  mutable bool adjacency_valid_ = false;
  mutable std::vector<std::uint32_t> dep_offset_;
  mutable std::vector<TaskId> dep_list_;
  mutable std::vector<std::uint32_t> dependent_offset_;
  mutable std::vector<TaskId> dependent_list_;
  mutable std::vector<SchedTask> sched_tasks_;
  mutable std::size_t max_dependents_ = 0;
};

}  // namespace holmes::sim
