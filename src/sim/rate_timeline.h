#pragma once

/// \file rate_timeline.h
/// Time-varying resource service rates for the executor.
///
/// A RateTimeline scales the service rate of individual resources inside
/// piecewise-constant time windows: a window (resource, [begin, end),
/// factor) means one second of declared cost on `resource` takes 1/factor
/// wall-clock seconds while the window is active. This is the executor-side
/// half of fault injection (core/faults.h): transient NIC degradation — PFC
/// pause storms, congested uplinks — lowers a port's factor for a bounded
/// interval without touching the task graph, so the same graph can be
/// simulated fault-free and degraded and the results compared task by task.
///
/// Determinism: a timeline is immutable during a run and `stretched` is a
/// pure function of (resources, start, cost). Placement of resource-disjoint
/// tasks therefore still commutes, which preserves the TieBreak
/// determinism contract (`holmes_cli check` stays green with a timeline
/// active — tests lock this).
///
/// Tasks spanning two resources (transfers occupy a TX and an RX port) are
/// paced by the *slower* endpoint at every instant, matching how a paused
/// receiver back-pressures a sender.

#include <vector>

#include "sim/task_graph.h"
#include "util/units.h"

namespace holmes::sim {

class RateTimeline {
 public:
  /// Scales `resource`'s service rate by `factor` inside [begin, end).
  /// `factor` must be > 0 (0.25 = quarter speed; values > 1 model recovery
  /// bursts) and is clamped below at 1e-6 so progress is always possible.
  /// Overlapping windows on one resource compound multiplicatively;
  /// back-to-back adjacent windows ([a,b) then [b,c)) stretch continuously
  /// with no gap or double-count at the shared boundary. A zero-length
  /// window (end == begin) covers no time and is accepted as a no-op:
  /// nothing is recorded. Throws holmes::ConfigError on a degenerate window
  /// (end < begin, negative begin, non-positive factor, negative resource).
  void add_window(ResourceId resource, SimTime begin, SimTime end,
                  double factor);

  /// True when no window was added; the executor skips all stretching.
  bool empty() const { return window_count_ == 0; }

  /// Number of windows added.
  std::size_t window_count() const { return window_count_; }

  /// Effective rate of `resource` at time `t`: the product of every active
  /// window's factor, 1.0 when none applies (including resources the
  /// timeline never heard of — e.g. the executor's scratch slot).
  double rate_at(ResourceId resource, SimTime t) const;

  /// Wall-clock occupancy needed to serve `cost` declared seconds of work
  /// starting at `start`, paced at every instant by the slower of the two
  /// resources (pass the same id twice for single-resource tasks). Exactly
  /// `cost` when no window intersects the occupancy interval.
  SimTime stretched(ResourceId a, ResourceId b, SimTime start,
                    SimTime cost) const;

  /// One recorded window with its resource, for consumers that need the
  /// breakpoint structure itself (trace counter tracks, timeline overlays).
  struct AppliedWindow {
    ResourceId resource = 0;
    SimTime begin = 0;
    SimTime end = 0;
    double factor = 1.0;
  };

  /// Every recorded window, sorted by (resource, begin, end, factor) — the
  /// same deterministic order regardless of insertion order.
  std::vector<AppliedWindow> windows() const;

 private:
  struct Window {
    SimTime begin = 0;
    SimTime end = 0;
    double factor = 1.0;
  };

  const std::vector<Window>* windows_of(ResourceId resource) const;

  /// Indexed by resource id; most entries stay empty.
  std::vector<std::vector<Window>> per_resource_;
  std::size_t window_count_ = 0;
};

}  // namespace holmes::sim
