#include "net/nic.h"

#include <algorithm>
#include <cctype>

#include "util/error.h"

namespace holmes::net {

std::string to_string(NicType type) {
  switch (type) {
    case NicType::kInfiniBand: return "InfiniBand";
    case NicType::kRoCE: return "RoCE";
    case NicType::kEthernet: return "Ethernet";
  }
  return "?";
}

std::string to_string(FabricKind kind) {
  switch (kind) {
    case FabricKind::kNVLink: return "NVLink";
    case FabricKind::kPCIe: return "PCIe";
    case FabricKind::kInfiniBand: return "InfiniBand";
    case FabricKind::kRoCE: return "RoCE";
    case FabricKind::kEthernet: return "Ethernet";
  }
  return "?";
}

NicType parse_nic_type(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "infiniband" || lower == "ib") return NicType::kInfiniBand;
  if (lower == "roce") return NicType::kRoCE;
  if (lower == "ethernet" || lower == "eth") return NicType::kEthernet;
  throw ConfigError("unknown NIC type: '" + name + "'");
}

}  // namespace holmes::net
