#pragma once

/// \file topology_parse.h
/// Textual topology specs, so CLIs and configs can describe multi-cluster
/// environments compactly:
///
///   spec     := cluster ( "+" cluster )*
///   cluster  := NODES "x" GPUS ":" NIC [ "@" GBPS ]
///   NIC      := ib | infiniband | roce | eth | ethernet   (case-insensitive)
///
/// Examples: "2x8:ib+2x8:roce"   (the paper's Hybrid environment)
///           "4x8:eth"           (pure Ethernet)
///           "1x8:ib@100 + 3x8:roce"  (IB cluster capped at 100 Gbps)
///
/// Whitespace around tokens is ignored.

#include <string>

#include "net/topology.h"

namespace holmes::net {

/// Parses a topology spec. Throws holmes::ConfigError with a pointer to the
/// offending token on malformed input.
Topology parse_topology(const std::string& spec);

/// Renders a topology back into spec form (inverse of parse_topology for
/// specs without custom names).
std::string format_topology(const Topology& topo);

}  // namespace holmes::net
