#include "net/topology.h"

#include <algorithm>

#include "util/error.h"

namespace holmes::net {

Topology::Topology(std::vector<ClusterSpec> clusters, FabricCatalog catalog)
    : clusters_(std::move(clusters)), catalog_(catalog) {
  if (clusters_.empty()) throw ConfigError("topology needs at least one cluster");
  int rank = 0;
  int global_node = 0;
  for (std::size_t ci = 0; ci < clusters_.size(); ++ci) {
    const auto& c = clusters_[ci];
    if (c.nodes <= 0) {
      throw ConfigError("cluster '" + c.name + "' has no nodes");
    }
    if (c.gpus_per_node <= 0) {
      throw ConfigError("cluster '" + c.name + "' has no GPUs per node");
    }
    for (int k = 0; k < c.nodes; ++k, ++global_node) {
      for (int j = 0; j < c.gpus_per_node; ++j, ++rank) {
        devices_.push_back(DeviceInfo{rank, static_cast<int>(ci), k,
                                      global_node, j, c.nic});
      }
    }
  }
  total_nodes_ = global_node;
}

Topology Topology::homogeneous(int nodes, NicType nic, int gpus_per_node) {
  return Topology({ClusterSpec{to_string(nic) + "-cluster", nodes,
                               gpus_per_node, nic}});
}

Topology Topology::hybrid_two_clusters(int nodes_per_cluster,
                                       int gpus_per_node) {
  return Topology({
      ClusterSpec{"IB-cluster", nodes_per_cluster, gpus_per_node,
                  NicType::kInfiniBand},
      ClusterSpec{"RoCE-cluster", nodes_per_cluster, gpus_per_node,
                  NicType::kRoCE},
  });
}

Topology Topology::split_clusters(int nodes_per_cluster, NicType nic,
                                  int gpus_per_node) {
  return Topology({
      ClusterSpec{to_string(nic) + "-cluster-A", nodes_per_cluster,
                  gpus_per_node, nic},
      ClusterSpec{to_string(nic) + "-cluster-B", nodes_per_cluster,
                  gpus_per_node, nic},
  });
}

int Topology::gpus_per_node() const {
  const int g = clusters_.front().gpus_per_node;
  for (const auto& c : clusters_) {
    HOLMES_CHECK_MSG(c.gpus_per_node == g,
                     "clusters disagree on GPUs per node");
  }
  return g;
}

const ClusterSpec& Topology::cluster(int index) const {
  HOLMES_CHECK(index >= 0 && index < cluster_count());
  return clusters_[static_cast<std::size_t>(index)];
}

const DeviceInfo& Topology::device(int rank) const {
  HOLMES_CHECK_MSG(rank >= 0 && rank < world_size(), "rank out of range");
  return devices_[static_cast<std::size_t>(rank)];
}

std::vector<int> Topology::ranks_in_cluster(int cluster) const {
  std::vector<int> ranks;
  for (const auto& d : devices_) {
    if (d.cluster == cluster) ranks.push_back(d.rank);
  }
  return ranks;
}

FabricKind Topology::fabric_between(int rank_a, int rank_b) const {
  const DeviceInfo& a = device(rank_a);
  const DeviceInfo& b = device(rank_b);
  HOLMES_CHECK_MSG(rank_a != rank_b, "no fabric between a device and itself");

  if (a.global_node == b.global_node) {
    return clusters_[static_cast<std::size_t>(a.cluster)].has_nvlink
               ? FabricKind::kNVLink
               : FabricKind::kPCIe;
  }
  // Cross-cluster pairs and any IB<->RoCE pair fall back to Ethernet: the
  // two RDMA implementations are mutually incompatible and clusters never
  // share a high-speed switch (paper §2.2 case 2).
  if (a.cluster != b.cluster) return FabricKind::kEthernet;
  if (!rdma_compatible(a.nic, b.nic)) return FabricKind::kEthernet;
  return rdma_fabric(a.nic);
}

PathInfo Topology::path(int rank_a, int rank_b) const {
  return path_on(rank_a, rank_b, fabric_between(rank_a, rank_b));
}

PathInfo Topology::path_on(int rank_a, int rank_b, FabricKind fabric) const {
  // Each endpoint's port caps the achievable bandwidth.
  const PathInfo from_a = fabric_path_from(rank_a, fabric);
  const PathInfo from_b = fabric_path_from(rank_b, fabric);
  PathInfo path{fabric, std::min(from_a.bandwidth, from_b.bandwidth),
                std::max(from_a.latency, from_b.latency)};
  if (fabric == FabricKind::kEthernet &&
      cluster_of(rank_a) != cluster_of(rank_b)) {
    path.bandwidth *= inter_cluster_.bandwidth_factor;
    path.latency += inter_cluster_.extra_latency;
  }
  return path;
}

FabricKind Topology::fastest_common_fabric(const std::vector<int>& ranks) const {
  HOLMES_CHECK_MSG(ranks.size() >= 2, "need at least two ranks");
  bool same_node = true;
  bool same_cluster = true;
  const DeviceInfo& first = device(ranks.front());
  for (int r : ranks) {
    const DeviceInfo& d = device(r);
    same_node &= d.global_node == first.global_node;
    same_cluster &= d.cluster == first.cluster;
  }
  if (same_node) {
    return clusters_[static_cast<std::size_t>(first.cluster)].has_nvlink
               ? FabricKind::kNVLink
               : FabricKind::kPCIe;
  }
  if (same_cluster && first.nic != NicType::kEthernet) {
    return rdma_fabric(first.nic);
  }
  return FabricKind::kEthernet;
}

PathInfo Topology::fabric_path_from(int rank, FabricKind fabric) const {
  const DeviceInfo& d = device(rank);
  const ClusterSpec& c = clusters_[static_cast<std::size_t>(d.cluster)];
  FabricSpec spec = catalog_.spec(fabric);
  // A cluster may override its RDMA NIC port speed (e.g. 100 Gbps IB).
  const bool is_rdma = fabric == FabricKind::kInfiniBand ||
                       fabric == FabricKind::kRoCE;
  if (is_rdma && c.nic_gbps > 0) spec.bandwidth_gbps = c.nic_gbps;
  return PathInfo{fabric, spec.effective_bandwidth(), spec.latency};
}

}  // namespace holmes::net
