#include "net/topology_parse.h"

#include <cctype>
#include <sstream>
#include <vector>

#include "util/error.h"

namespace holmes::net {

namespace {

std::string strip(const std::string& s) {
  std::size_t first = 0;
  std::size_t last = s.size();
  while (first < last && std::isspace(static_cast<unsigned char>(s[first]))) {
    ++first;
  }
  while (last > first && std::isspace(static_cast<unsigned char>(s[last - 1]))) {
    --last;
  }
  return s.substr(first, last - first);
}

int parse_positive_int(const std::string& token, const char* what) {
  std::size_t consumed = 0;
  int value = 0;
  try {
    value = std::stoi(token, &consumed);
  } catch (const std::exception&) {
    throw ConfigError(std::string("expected ") + what + ", got '" + token + "'");
  }
  if (consumed != token.size() || value <= 0) {
    throw ConfigError(std::string("expected positive ") + what + ", got '" +
                      token + "'");
  }
  return value;
}

ClusterSpec parse_cluster(const std::string& token, int index) {
  const std::string body = strip(token);
  const std::size_t x = body.find('x');
  const std::size_t colon = body.find(':');
  if (x == std::string::npos || colon == std::string::npos || x > colon) {
    throw ConfigError("cluster spec must look like '2x8:ib', got '" + body +
                      "'");
  }
  ClusterSpec cluster;
  cluster.nodes = parse_positive_int(strip(body.substr(0, x)), "node count");
  cluster.gpus_per_node =
      parse_positive_int(strip(body.substr(x + 1, colon - x - 1)), "GPU count");

  std::string nic = strip(body.substr(colon + 1));
  const std::size_t at = nic.find('@');
  if (at != std::string::npos) {
    cluster.nic_gbps = static_cast<double>(
        parse_positive_int(strip(nic.substr(at + 1)), "Gbps"));
    nic = strip(nic.substr(0, at));
  }
  cluster.nic = parse_nic_type(nic);
  cluster.name = to_string(cluster.nic) + "-cluster-" + std::to_string(index);
  return cluster;
}

}  // namespace

Topology parse_topology(const std::string& spec) {
  std::vector<ClusterSpec> clusters;
  std::stringstream stream(spec);
  std::string token;
  int index = 0;
  while (std::getline(stream, token, '+')) {
    if (strip(token).empty()) {
      throw ConfigError("empty cluster spec in '" + spec + "'");
    }
    clusters.push_back(parse_cluster(token, index++));
  }
  if (clusters.empty()) throw ConfigError("empty topology spec");
  return Topology(std::move(clusters));
}

std::string format_topology(const Topology& topo) {
  std::ostringstream os;
  for (int c = 0; c < topo.cluster_count(); ++c) {
    const ClusterSpec& cluster = topo.cluster(c);
    if (c > 0) os << "+";
    os << cluster.nodes << "x" << cluster.gpus_per_node << ":";
    switch (cluster.nic) {
      case NicType::kInfiniBand: os << "ib"; break;
      case NicType::kRoCE: os << "roce"; break;
      case NicType::kEthernet: os << "eth"; break;
    }
    if (cluster.nic_gbps > 0) {
      os << "@" << static_cast<long long>(cluster.nic_gbps);
    }
  }
  return os.str();
}

}  // namespace holmes::net
