#pragma once

/// \file ports.h
/// Binding between a Topology and a sim::TaskGraph: registers one compute
/// resource plus per-fabric TX/RX port resources for every device, and
/// emits point-to-point transfer tasks over the resolved path.
///
/// Separate TX/RX resources per fabric are what let computation overlap
/// with communication, and NVLink traffic overlap with NIC traffic, exactly
/// as on real hardware.
///
/// Port granularity mirrors the paper's testbed: every GPU owns a dedicated
/// RDMA NIC (and its NVLink/PCIe endpoints), but commodity *Ethernet* is
/// one NIC per node shared by all of its GPUs — the physical reason
/// Ethernet training is so much slower than its 25 Gbps nominal rate
/// suggests, and why a global Ethernet fallback is catastrophic.

#include <vector>

#include "net/topology.h"
#include "sim/task_graph.h"

namespace holmes::net {

class PortMap {
 public:
  /// Registers resources for every device of `topo` in `graph`. The graph
  /// must outlive neither object; PortMap only stores ids.
  /// `ethernet_ports_per_node` controls how many Ethernet NIC port pairs a
  /// node exposes; GPUs share them round-robin (gpu % ports). 1 models a
  /// single management NIC; gpus_per_node models a fully provisioned pod.
  PortMap(const Topology& topo, sim::TaskGraph& graph,
          int ethernet_ports_per_node = 4);

  /// The device's compute engine (forward/backward kernels run here).
  sim::ResourceId compute(int rank) const;

  /// The device's transmit port on `fabric`. For Ethernet this is the
  /// node-shared port.
  sim::ResourceId tx(int rank, FabricKind fabric) const;

  /// The device's receive port on `fabric`. For Ethernet this is the
  /// node-shared port.
  sim::ResourceId rx(int rank, FabricKind fabric) const;

 private:
  static constexpr int kFabricCount = 5;
  int world_size_;
  std::vector<sim::ResourceId> compute_;
  std::vector<sim::ResourceId> tx_;  ///< rank * kFabricCount + fabric
  std::vector<sim::ResourceId> rx_;
  int eth_ports_per_node_;
  std::vector<sim::ResourceId> node_eth_tx_;  ///< node * ports + port
  std::vector<sim::ResourceId> node_eth_rx_;
  std::vector<int> node_of_;                  ///< rank -> global node
  std::vector<int> gpu_in_node_;              ///< rank -> index within node
};

/// Emits a transfer task moving `bytes` from `src` to `dst` over the fabric
/// the topology resolves for that pair, and returns its id. A zero-byte
/// transfer still models one message latency (control traffic). `channel`
/// optionally attributes the traffic to a communicator for accounting.
sim::TaskId emit_transfer(sim::TaskGraph& graph, const PortMap& ports,
                          const Topology& topo, int src, int dst, Bytes bytes,
                          std::string label = {},
                          sim::TaskTag tag = sim::kUntagged,
                          sim::ChannelId channel = sim::kInvalidChannel);

/// Same, but forces the traffic onto `fabric` (used by communicators whose
/// transport was already selected for the whole group). The fabric must be
/// reachable between the pair — callers are expected to have consulted
/// fastest_common_fabric; this function checks only that endpoints exist.
sim::TaskId emit_transfer_on(sim::TaskGraph& graph, const PortMap& ports,
                             const Topology& topo, FabricKind fabric, int src,
                             int dst, Bytes bytes, std::string label = {},
                             sim::TaskTag tag = sim::kUntagged,
                             sim::ChannelId channel = sim::kInvalidChannel);

}  // namespace holmes::net
