#pragma once

/// \file nic.h
/// NIC and fabric taxonomy.
///
/// The paper's core constraint: InfiniBand and RoCE are both RDMA
/// implementations but are mutually incompatible, so two devices whose NICs
/// differ can only talk over commodity Ethernet. This header defines the
/// vocabulary; holmes::net::Topology applies the rules.

#include <string>

namespace holmes::net {

/// The RDMA/Ethernet NIC installed in a cluster's nodes.
enum class NicType {
  kInfiniBand,  ///< dedicated RDMA fabric
  kRoCE,        ///< RDMA over Converged Ethernet
  kEthernet,    ///< commodity NIC only (no RDMA capability)
};

/// The interconnect a particular device pair communicates over once NIC
/// compatibility has been resolved.
enum class FabricKind {
  kNVLink,      ///< intra-node GPU-GPU
  kPCIe,        ///< intra-node fallback when NVLink is absent
  kInfiniBand,  ///< intra-cluster RDMA (IB clusters)
  kRoCE,        ///< intra-cluster RDMA (RoCE clusters)
  kEthernet,    ///< everything else: cross-cluster, or mixed-NIC pairs
};

/// True when two NICs of the given types can establish an RDMA connection
/// with each other. IB and RoCE are incompatible; Ethernet NICs never speak
/// RDMA at all.
constexpr bool rdma_compatible(NicType a, NicType b) {
  return a == b && a != NicType::kEthernet;
}

/// The fabric an RDMA connection between NICs of type `t` runs on.
constexpr FabricKind rdma_fabric(NicType t) {
  return t == NicType::kInfiniBand ? FabricKind::kInfiniBand
                                   : FabricKind::kRoCE;
}

std::string to_string(NicType type);
std::string to_string(FabricKind kind);

/// Parses "InfiniBand" / "IB", "RoCE", "Ethernet" / "Eth" (case-insensitive).
/// Throws holmes::ConfigError on anything else.
NicType parse_nic_type(const std::string& name);

}  // namespace holmes::net
