#include "net/ports.h"

#include "util/error.h"

namespace holmes::net {

namespace {
std::size_t fabric_index(FabricKind fabric) {
  const auto i = static_cast<std::size_t>(fabric);
  HOLMES_CHECK(i < 5);
  return i;
}
}  // namespace

PortMap::PortMap(const Topology& topo, sim::TaskGraph& graph,
                 int ethernet_ports_per_node)
    : world_size_(topo.world_size()),
      eth_ports_per_node_(ethernet_ports_per_node) {
  HOLMES_CHECK_MSG(ethernet_ports_per_node >= 1,
                   "need at least one Ethernet port per node");
  compute_.reserve(static_cast<std::size_t>(world_size_));
  tx_.reserve(static_cast<std::size_t>(world_size_) * kFabricCount);
  rx_.reserve(static_cast<std::size_t>(world_size_) * kFabricCount);
  node_of_.reserve(static_cast<std::size_t>(world_size_));
  gpu_in_node_.reserve(static_cast<std::size_t>(world_size_));
  // Node-shared Ethernet port pairs.
  for (int node = 0; node < topo.total_nodes(); ++node) {
    for (int port = 0; port < eth_ports_per_node_; ++port) {
      const std::string base = "node" + std::to_string(node) + ".Ethernet" +
                               std::to_string(port);
      node_eth_tx_.push_back(graph.add_resource(base + ".tx"));
      node_eth_rx_.push_back(graph.add_resource(base + ".rx"));
    }
  }
  for (int rank = 0; rank < world_size_; ++rank) {
    const std::string base = "gpu" + std::to_string(rank);
    compute_.push_back(graph.add_resource(base + ".compute"));
    node_of_.push_back(topo.node_of(rank));
    gpu_in_node_.push_back(topo.device(rank).gpu_in_node);
    for (int f = 0; f < kFabricCount; ++f) {
      const std::string fname = to_string(static_cast<FabricKind>(f));
      tx_.push_back(graph.add_resource(base + "." + fname + ".tx"));
      rx_.push_back(graph.add_resource(base + "." + fname + ".rx"));
    }
  }
}

sim::ResourceId PortMap::compute(int rank) const {
  HOLMES_CHECK(rank >= 0 && rank < world_size_);
  return compute_[static_cast<std::size_t>(rank)];
}

sim::ResourceId PortMap::tx(int rank, FabricKind fabric) const {
  HOLMES_CHECK(rank >= 0 && rank < world_size_);
  if (fabric == FabricKind::kEthernet) {
    const auto node = node_of_[static_cast<std::size_t>(rank)];
    const auto port = gpu_in_node_[static_cast<std::size_t>(rank)] %
                      eth_ports_per_node_;
    return node_eth_tx_[static_cast<std::size_t>(node * eth_ports_per_node_ +
                                                 port)];
  }
  return tx_[static_cast<std::size_t>(rank) * kFabricCount +
             fabric_index(fabric)];
}

sim::ResourceId PortMap::rx(int rank, FabricKind fabric) const {
  HOLMES_CHECK(rank >= 0 && rank < world_size_);
  if (fabric == FabricKind::kEthernet) {
    const auto node = node_of_[static_cast<std::size_t>(rank)];
    const auto port = gpu_in_node_[static_cast<std::size_t>(rank)] %
                      eth_ports_per_node_;
    return node_eth_rx_[static_cast<std::size_t>(node * eth_ports_per_node_ +
                                                 port)];
  }
  return rx_[static_cast<std::size_t>(rank) * kFabricCount +
             fabric_index(fabric)];
}

sim::TaskId emit_transfer(sim::TaskGraph& graph, const PortMap& ports,
                          const Topology& topo, int src, int dst, Bytes bytes,
                          std::string label, sim::TaskTag tag,
                          sim::ChannelId channel) {
  return emit_transfer_on(graph, ports, topo, topo.fabric_between(src, dst),
                          src, dst, bytes, std::move(label), tag, channel);
}

sim::TaskId emit_transfer_on(sim::TaskGraph& graph, const PortMap& ports,
                             const Topology& topo, FabricKind fabric, int src,
                             int dst, Bytes bytes, std::string label,
                             sim::TaskTag tag, sim::ChannelId channel) {
  HOLMES_CHECK_MSG(src != dst, "transfer endpoints must differ");
  const PathInfo path = topo.path_on(src, dst, fabric);
  return graph.add_transfer(ports.tx(src, fabric), ports.rx(dst, fabric),
                            bytes, path.bandwidth, path.latency,
                            std::move(label), tag, channel);
}

}  // namespace holmes::net
