#pragma once

/// \file fabric.h
/// Performance characteristics of each interconnect fabric.
///
/// Nominal bandwidths follow the paper's testbed (Table 1: 200 Gbps IB and
/// RoCE, 25 Gbps Ethernet) and public A100 specs for NVLink/PCIe. The
/// `efficiency` factor folds protocol overhead, congestion sensitivity, and
/// flow-control quality into a single achievable fraction: this is where the
/// paper's empirical observation lives that RoCE at the same nominal 200 Gbps
/// delivers noticeably lower training throughput than InfiniBand (Table 1).

#include <array>

#include "net/nic.h"
#include "util/units.h"

namespace holmes::net {

struct FabricSpec {
  FabricKind kind = FabricKind::kEthernet;
  double bandwidth_gbps = 0;  ///< nominal per-port bandwidth, Gbit/s
  double efficiency = 1.0;    ///< achievable fraction of nominal
  SimTime latency = 0;        ///< per-message one-way latency, seconds

  /// Achievable bandwidth in bytes/second.
  double effective_bandwidth() const {
    return units::gbps_to_bytes_per_sec(bandwidth_gbps) * efficiency;
  }
};

/// Table of fabric specs; value-type, copy to customise. The defaults are
/// the library's calibration baseline (see src/core/cost_model.h and
/// EXPERIMENTS.md for how they were chosen).
class FabricCatalog {
 public:
  /// Catalog prefilled with the calibrated defaults.
  FabricCatalog();

  const FabricSpec& spec(FabricKind kind) const;
  FabricSpec& spec(FabricKind kind);

  void set(const FabricSpec& spec);

 private:
  std::array<FabricSpec, 5> specs_;
};

}  // namespace holmes::net
