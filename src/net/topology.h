#pragma once

/// \file topology.h
/// Multi-cluster GPU topology with global rank numbering (paper §2.4).
///
/// A topology is a list of clusters; cluster i has f_i nodes of G devices
/// each. Devices are numbered rank 0..N-1 in (cluster, node, gpu) order,
/// matching the paper's rank_{G·((Σ f_a)+k−1)+j} convention (we use 0-based
/// indices throughout).
///
/// Connectivity rules (§2.2):
///  - same node                  -> NVLink (or PCIe when NVLink is absent)
///  - same cluster, RDMA NICs    -> that cluster's RDMA fabric (IB or RoCE)
///  - same cluster, Ethernet NICs-> Ethernet
///  - different clusters         -> Ethernet (clusters never share a
///                                  high-speed switch; IB and RoCE are
///                                  mutually incompatible anyway)

#include <string>
#include <vector>

#include "net/fabric.h"
#include "net/nic.h"
#include "util/units.h"

namespace holmes::net {

/// Describes one homogeneous cluster.
struct ClusterSpec {
  std::string name;
  int nodes = 0;          ///< f_i
  int gpus_per_node = 8;  ///< G
  NicType nic = NicType::kInfiniBand;
  /// Per-GPU NIC bandwidth override in Gbit/s; <= 0 means "use the fabric
  /// catalog default for this NIC type".
  double nic_gbps = 0;
  /// Whether GPUs inside one node are linked by NVLink (else PCIe).
  bool has_nvlink = true;
};

struct DeviceInfo {
  int rank = -1;
  int cluster = -1;          ///< index into clusters()
  int node_in_cluster = -1;  ///< 0-based k within the cluster
  int global_node = -1;      ///< node index across the whole topology
  int gpu_in_node = -1;      ///< 0-based j within the node
  NicType nic = NicType::kEthernet;
};

/// Resolved characteristics of the path between two devices.
struct PathInfo {
  FabricKind fabric = FabricKind::kEthernet;
  double bandwidth = 0;  ///< achievable bytes/second
  SimTime latency = 0;   ///< one-way seconds
};

/// Degradation applied to Ethernet paths that leave a cluster: clusters
/// share no high-speed interconnect (paper §2.2 case 2), so cross-cluster
/// traffic crosses routed, oversubscribed aggregation links instead of the
/// cluster's own switched network.
struct InterClusterLink {
  double bandwidth_factor = 0.40;
  SimTime extra_latency = units::microseconds(500);
};

class Topology {
 public:
  /// Builds a topology from cluster specs. Throws ConfigError when a spec is
  /// degenerate (no nodes, no GPUs).
  Topology(std::vector<ClusterSpec> clusters, FabricCatalog catalog = {});

  // ---- Convenience factories used across tests and benches ----

  /// One cluster of `nodes` nodes, all on `nic` — the paper's homogeneous
  /// environments (InfiniBand / RoCE / Ethernet rows).
  static Topology homogeneous(int nodes, NicType nic, int gpus_per_node = 8);

  /// Two equal clusters, IB + RoCE, no shared high-speed switch — the
  /// paper's *Hybrid* environment.
  static Topology hybrid_two_clusters(int nodes_per_cluster,
                                      int gpus_per_node = 8);

  /// Two equal clusters with the *same* NIC type but no shared high-speed
  /// switch (Fig. 4's "InfiniBand & Ethernet" / "RoCE & Ethernet" cases).
  static Topology split_clusters(int nodes_per_cluster, NicType nic,
                                 int gpus_per_node = 8);

  // ---- Structure queries ----

  int world_size() const { return static_cast<int>(devices_.size()); }
  int cluster_count() const { return static_cast<int>(clusters_.size()); }
  int total_nodes() const { return total_nodes_; }
  int gpus_per_node() const;  ///< requires all clusters to share G

  const std::vector<ClusterSpec>& clusters() const { return clusters_; }
  const ClusterSpec& cluster(int index) const;
  const DeviceInfo& device(int rank) const;
  const FabricCatalog& catalog() const { return catalog_; }

  int cluster_of(int rank) const { return device(rank).cluster; }
  int node_of(int rank) const { return device(rank).global_node; }

  /// Ranks of every device in `cluster`, ascending.
  std::vector<int> ranks_in_cluster(int cluster) const;

  // ---- Connectivity ----

  /// The fabric a pair of distinct devices communicates over.
  FabricKind fabric_between(int rank_a, int rank_b) const;

  /// Fully resolved path between two distinct devices.
  PathInfo path(int rank_a, int rank_b) const;

  /// Path between two distinct devices over an explicitly chosen fabric
  /// (the transport a NIC-oblivious stack forces). Applies the
  /// inter-cluster degradation when the pair spans clusters over Ethernet.
  PathInfo path_on(int rank_a, int rank_b, FabricKind fabric) const;

  const InterClusterLink& inter_cluster_link() const { return inter_cluster_; }
  void set_inter_cluster_link(const InterClusterLink& link) {
    inter_cluster_ = link;
  }

  /// The fastest fabric available between *every* pair in `ranks`. This is
  /// the transport a communicator spanning `ranks` ends up on, and is the
  /// single choke-point implementing the paper's NIC-compatibility rules.
  /// Requires at least 2 ranks.
  FabricKind fastest_common_fabric(const std::vector<int>& ranks) const;

  /// Path characteristics of `fabric` as seen from device `rank` (its port
  /// speed may be capped by the cluster's nic_gbps override).
  PathInfo fabric_path_from(int rank, FabricKind fabric) const;

 private:
  std::vector<ClusterSpec> clusters_;
  std::vector<DeviceInfo> devices_;
  FabricCatalog catalog_;
  InterClusterLink inter_cluster_;
  int total_nodes_ = 0;
};

}  // namespace holmes::net
