#include "net/fabric.h"

#include "util/error.h"

namespace holmes::net {

namespace {
std::size_t index_of(FabricKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  HOLMES_CHECK(i < 5);
  return i;
}
}  // namespace

FabricCatalog::FabricCatalog() {
  // NVLink third-gen (A100): 300 GB/s usable per direction = 2400 Gbps.
  set({FabricKind::kNVLink, 2400.0, 0.85, units::microseconds(1.5)});
  // PCIe 4.0 x16: ~32 GB/s nominal.
  set({FabricKind::kPCIe, 256.0, 0.80, units::microseconds(2.5)});
  // 200 Gbps HDR InfiniBand: near-wire-rate RDMA, microsecond latency.
  set({FabricKind::kInfiniBand, 200.0, 0.92, units::microseconds(3.0)});
  // 200 Gbps RoCE v2: same wire speed, but under ring-collective training
  // load PFC pause storms, ECN back-off, and switch-buffer incast leave a
  // fraction of nominal as goodput (paper Table 1: 160 vs 197 TFLOPS at
  // identical nominal bandwidth; EXPERIMENTS.md documents the calibration).
  set({FabricKind::kRoCE, 200.0, 0.30, units::microseconds(25.0)});
  // 25 Gbps commodity Ethernet with TCP: node-shared NICs (see
  // net::PortMap), single-stream TCP goodput well under wire rate,
  // kernel-stack latency.
  set({FabricKind::kEthernet, 25.0, 0.60, units::microseconds(80.0)});
}

const FabricSpec& FabricCatalog::spec(FabricKind kind) const {
  return specs_[index_of(kind)];
}

FabricSpec& FabricCatalog::spec(FabricKind kind) {
  return specs_[index_of(kind)];
}

void FabricCatalog::set(const FabricSpec& spec) {
  specs_[index_of(spec.kind)] = spec;
}

}  // namespace holmes::net
