#include "comm/communicator.h"

#include <algorithm>
#include <unordered_set>

#include "comm/hierarchical.h"
#include "util/error.h"

namespace holmes::comm {

Communicator::Communicator(const net::Topology& topo, std::vector<int> ranks,
                           std::string name)
    : topo_(&topo), ranks_(std::move(ranks)), name_(std::move(name)) {
  if (ranks_.empty()) throw ConfigError("communicator '" + name_ + "' is empty");
  std::unordered_set<int> seen;
  for (int r : ranks_) {
    if (r < 0 || r >= topo.world_size()) {
      throw ConfigError("communicator '" + name_ + "' has out-of-range rank " +
                        std::to_string(r));
    }
    if (!seen.insert(r).second) {
      throw ConfigError("communicator '" + name_ + "' repeats rank " +
                        std::to_string(r));
    }
  }
}

net::FabricKind Communicator::transport() const {
  if (size() == 1) return net::FabricKind::kNVLink;
  return topo_->fastest_common_fabric(ranks_);
}

bool Communicator::is_rdma_capable() const {
  const net::FabricKind f = transport();
  return f != net::FabricKind::kEthernet;
}

void Communicator::all_reduce(const BufferSet& buffers) const {
  HOLMES_CHECK_MSG(static_cast<int>(buffers.size()) == size(),
                   "buffer count must equal group size");
  all_reduce_inplace(buffers);
}

void Communicator::reduce_scatter(const BufferSet& buffers) const {
  HOLMES_CHECK_MSG(static_cast<int>(buffers.size()) == size(),
                   "buffer count must equal group size");
  reduce_scatter_inplace(buffers);
}

void Communicator::all_gather(const BufferSet& buffers) const {
  HOLMES_CHECK_MSG(static_cast<int>(buffers.size()) == size(),
                   "buffer count must equal group size");
  all_gather_inplace(buffers);
}

void Communicator::broadcast(const BufferSet& buffers, int root_member) const {
  HOLMES_CHECK_MSG(static_cast<int>(buffers.size()) == size(),
                   "buffer count must equal group size");
  broadcast_inplace(buffers, root_member);
}

void Communicator::all_to_all(const BufferSet& send, const BufferSet& recv) const {
  HOLMES_CHECK_MSG(static_cast<int>(send.size()) == size(),
                   "buffer count must equal group size");
  comm::all_to_all(send, recv);
}

TaskHandles Communicator::lower_all_reduce(sim::TaskGraph& graph,
                                           const net::PortMap& ports,
                                           Bytes bytes,
                                           const TaskHandles& ready,
                                           sim::TaskTag tag) const {
  return lower_steps(graph, ports, ring_all_reduce_steps(size(), bytes), ready,
                     tag, name_ + ".allreduce");
}

TaskHandles Communicator::lower_hierarchical_all_reduce(
    sim::TaskGraph& graph, const net::PortMap& ports, Bytes bytes,
    const TaskHandles& ready, sim::TaskTag tag) const {
  std::vector<int> node_of_member;
  node_of_member.reserve(ranks_.size());
  for (int r : ranks_) node_of_member.push_back(topo_->node_of(r));
  return lower_steps(graph, ports,
                     hierarchical_all_reduce_steps(node_of_member, bytes),
                     ready, tag, name_ + ".hier-allreduce");
}

void Communicator::hierarchical_all_reduce(const BufferSet& buffers) const {
  HOLMES_CHECK_MSG(static_cast<int>(buffers.size()) == size(),
                   "buffer count must equal group size");
  std::vector<int> node_of_member;
  node_of_member.reserve(ranks_.size());
  for (int r : ranks_) node_of_member.push_back(topo_->node_of(r));
  const auto elems = static_cast<std::int64_t>(buffers.front().size());
  apply_steps(hierarchical_all_reduce_steps(node_of_member, elems), buffers,
              buffers);
}

TaskHandles Communicator::lower_reduce_scatter(sim::TaskGraph& graph,
                                               const net::PortMap& ports,
                                               Bytes bytes,
                                               const TaskHandles& ready,
                                               sim::TaskTag tag) const {
  return lower_steps(graph, ports, ring_reduce_scatter_steps(size(), bytes),
                     ready, tag, name_ + ".reducescatter");
}

TaskHandles Communicator::lower_all_gather(sim::TaskGraph& graph,
                                           const net::PortMap& ports,
                                           Bytes bytes,
                                           const TaskHandles& ready,
                                           sim::TaskTag tag) const {
  return lower_steps(graph, ports, ring_all_gather_steps(size(), bytes), ready,
                     tag, name_ + ".allgather");
}

TaskHandles Communicator::lower_broadcast(sim::TaskGraph& graph,
                                          const net::PortMap& ports,
                                          Bytes bytes, int root_member,
                                          const TaskHandles& ready,
                                          sim::TaskTag tag) const {
  return lower_steps(graph, ports, broadcast_steps(size(), root_member, bytes),
                     ready, tag, name_ + ".broadcast");
}

TaskHandles Communicator::lower_all_to_all(sim::TaskGraph& graph,
                                           const net::PortMap& ports,
                                           Bytes bytes_per_block,
                                           const TaskHandles& ready,
                                           sim::TaskTag tag) const {
  return lower_steps(graph, ports, all_to_all_steps(size(), bytes_per_block),
                     ready, tag, name_ + ".alltoall");
}

TaskHandles Communicator::lower_barrier(sim::TaskGraph& graph,
                                        const net::PortMap& ports,
                                        const TaskHandles& ready,
                                        sim::TaskTag tag) const {
  // One byte per chunk: the ring degenerates to a latency-only token pass.
  return lower_steps(graph, ports, ring_all_reduce_steps(size(), size()),
                     ready, tag, name_ + ".barrier");
}

TaskHandles Communicator::lower_steps(sim::TaskGraph& graph,
                                      const net::PortMap& ports,
                                      const std::vector<CollectiveStep>& steps,
                                      const TaskHandles& ready,
                                      sim::TaskTag tag,
                                      const std::string& op) const {
  const int n = size();
  HOLMES_CHECK_MSG(ready.empty() || static_cast<int>(ready.size()) == n,
                   "ready handles must be empty or one per member");
  TaskHandles last_recv(static_cast<std::size_t>(n), sim::kInvalidTask);
  if (!ready.empty()) last_recv = ready;
  TaskHandles last_send(static_cast<std::size_t>(n), sim::kInvalidTask);

  // Attribute every transfer of this collective to the communicator's
  // channel, so the observability layer can report per-communicator bytes
  // and effective bus bandwidth without label parsing.
  const sim::ChannelId channel = graph.channel(name_);

  // Process round by round; a send depends on what its rank had received by
  // the *end of the previous round* (never on same-round arrivals, which
  // would serialize the ring and destroy its pipelining).
  std::size_t i = 0;
  while (i < steps.size()) {
    const int round = steps[i].round;
    const TaskHandles recv_snapshot = last_recv;
    std::vector<std::vector<sim::TaskId>> arrivals(static_cast<std::size_t>(n));
    for (; i < steps.size() && steps[i].round == round; ++i) {
      const CollectiveStep& s = steps[i];
      const int src_rank = ranks_[static_cast<std::size_t>(s.src)];
      const int dst_rank = ranks_[static_cast<std::size_t>(s.dst)];
      const bool cross_node =
          topo_->node_of(src_rank) != topo_->node_of(dst_rank);
      const sim::TaskId t =
          (internode_override_ && cross_node)
              ? net::emit_transfer_on(graph, ports, *topo_,
                                      *internode_override_, src_rank, dst_rank,
                                      s.count, op + ".r" + std::to_string(round),
                                      tag, channel)
              : net::emit_transfer(graph, ports, *topo_, src_rank, dst_rank,
                                   s.count, op + ".r" + std::to_string(round),
                                   tag, channel);
      graph.add_deps(t, {recv_snapshot[static_cast<std::size_t>(s.src)]});
      arrivals[static_cast<std::size_t>(s.dst)].push_back(t);
      last_send[static_cast<std::size_t>(s.src)] = t;
    }
    for (int m = 0; m < n; ++m) {
      auto& in = arrivals[static_cast<std::size_t>(m)];
      if (in.empty()) continue;
      if (in.size() == 1) {
        last_recv[static_cast<std::size_t>(m)] = in.front();
      } else {
        const sim::TaskId join = graph.add_noop(op + ".join", tag);
        graph.add_deps(join, in);
        last_recv[static_cast<std::size_t>(m)] = join;
      }
    }
  }

  TaskHandles done(static_cast<std::size_t>(n), sim::kInvalidTask);
  for (int m = 0; m < n; ++m) {
    const sim::TaskId recv = last_recv[static_cast<std::size_t>(m)];
    const sim::TaskId send = last_send[static_cast<std::size_t>(m)];
    if (send == sim::kInvalidTask) {
      done[static_cast<std::size_t>(m)] = recv;  // may be the ready handle
    } else if (recv == sim::kInvalidTask || recv == send) {
      done[static_cast<std::size_t>(m)] = send;
    } else {
      const sim::TaskId join = graph.add_noop(op + ".done", tag);
      graph.add_deps(join, {recv, send});
      done[static_cast<std::size_t>(m)] = join;
    }
  }
  return done;
}

}  // namespace holmes::comm
