#pragma once

/// \file hierarchical.h
/// Hierarchical (node-aware) all-reduce.
///
/// The flat rank-order ring crosses the inter-node fabric through a single
/// NIC pair per node boundary, leaving the other GPUs' NICs idle — which is
/// what the paper's testbed numbers reflect (see EXPERIMENTS.md). NCCL's
/// hierarchical algorithm uses *all* NICs:
///
///   phase A: ring reduce-scatter inside each node (NVLink) — local rank i
///            ends up owning 1/L of the node's partial sum;
///   phase B: L concurrent inter-node ring all-reduces, one per shard,
///            each running between the shard's owners across nodes — every
///            GPU's NIC carries 1/L of the inter-node volume;
///   phase C: ring all-gather inside each node (NVLink).
///
/// Provided as the library's optional optimization (bench_hierarchical
/// quantifies the gain); the flat ring stays the default because it is what
/// reproduces the paper's measurements.

#include <vector>

#include "comm/collective_steps.h"

namespace holmes::comm {

/// Step program for a hierarchical all-reduce. `node_of_member[i]` is the
/// node hosting group member i; every node must host the same number of
/// members (>= 1) and members of one node must be contiguous in group
/// order. Throws holmes::ConfigError otherwise. Degenerates to a flat ring
/// when there is a single node, and to the inter-node phase alone when
/// every node hosts exactly one member.
std::vector<CollectiveStep> hierarchical_all_reduce_steps(
    const std::vector<int>& node_of_member, std::int64_t elems);

}  // namespace holmes::comm
