#pragma once

/// \file communicator.h
/// A communicator binds a group of global ranks to a topology, mirroring an
/// NCCL communicator. It offers:
///  - numeric collectives on real buffers (eager; tests and small demos),
///  - timed lowerings that emit the same step program as transfer tasks
///    into a sim::TaskGraph (benches and the training simulator).
///
/// Transport: every hop resolves the fabric of its concrete device pair, so
/// a ring whose neighbours sit in one cluster runs on RDMA while a hop that
/// crosses clusters (or crosses the IB/RoCE divide) drops to Ethernet. A
/// round completes when its slowest hop completes, so one bad hop gates the
/// whole collective — precisely the pathology the paper's Automatic NIC
/// Selection removes by never *forming* such groups.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "comm/collective_steps.h"
#include "comm/inprocess.h"
#include "net/ports.h"
#include "net/topology.h"
#include "sim/task_graph.h"

namespace holmes::comm {

/// Per-group-member dependency handles for timed collectives: `ready[i]`
/// gates member i's first send (kInvalidTask = ready at time zero), and the
/// returned `done[i]` fires when member i's buffer holds the final result
/// and its last send has drained.
using TaskHandles = std::vector<sim::TaskId>;

class Communicator {
 public:
  /// Creates a communicator over `ranks` (global topology ranks, at least
  /// one, all distinct). The topology must outlive the communicator.
  Communicator(const net::Topology& topo, std::vector<int> ranks,
               std::string name = "comm");

  /// Forces every *inter-node* hop of this communicator onto `fabric`
  /// (intra-node hops keep NVLink/PCIe). This models a NIC-oblivious stack:
  /// when a job spans incompatible RDMA NIC types, stock NCCL cannot bring
  /// up a uniform RDMA transport and falls back to TCP over Ethernet for
  /// all inter-node traffic. Holmes' Automatic NIC Selection is precisely
  /// the removal of this global fallback.
  void force_internode_fabric(net::FabricKind fabric) {
    internode_override_ = fabric;
  }
  std::optional<net::FabricKind> internode_fabric_override() const {
    return internode_override_;
  }

  int size() const { return static_cast<int>(ranks_.size()); }
  const std::vector<int>& ranks() const { return ranks_; }
  const std::string& name() const { return name_; }
  const net::Topology& topology() const { return *topo_; }

  /// The fastest fabric shared by *all* members (diagnostic; individual
  /// hops may ride faster per-pair fabrics). Size-1 groups report NVLink.
  net::FabricKind transport() const;

  /// True when every member pair can use RDMA or better — the property
  /// Automatic NIC Selection establishes for data-parallel groups.
  bool is_rdma_capable() const;

  // ---- Numeric collectives (eager, real data; buffers[i] belongs to
  //      group member i) ----

  void all_reduce(const BufferSet& buffers) const;
  void reduce_scatter(const BufferSet& buffers) const;
  void all_gather(const BufferSet& buffers) const;
  void broadcast(const BufferSet& buffers, int root_member) const;
  void all_to_all(const BufferSet& send, const BufferSet& recv) const;

  // ---- Timed lowerings (emit transfer tasks; return per-member done
  //      handles) ----

  TaskHandles lower_all_reduce(sim::TaskGraph& graph, const net::PortMap& ports,
                               Bytes bytes, const TaskHandles& ready,
                               sim::TaskTag tag = sim::kUntagged) const;

  /// Node-aware hierarchical all-reduce (see comm/hierarchical.h): uses
  /// every member's NIC for the inter-node phase instead of one flat ring.
  /// Requires each node's members to be contiguous in group order and
  /// equally sized per node.
  TaskHandles lower_hierarchical_all_reduce(
      sim::TaskGraph& graph, const net::PortMap& ports, Bytes bytes,
      const TaskHandles& ready, sim::TaskTag tag = sim::kUntagged) const;

  /// Numeric hierarchical all-reduce on real buffers (same step program as
  /// the timed lowering).
  void hierarchical_all_reduce(const BufferSet& buffers) const;
  TaskHandles lower_reduce_scatter(sim::TaskGraph& graph,
                                   const net::PortMap& ports, Bytes bytes,
                                   const TaskHandles& ready,
                                   sim::TaskTag tag = sim::kUntagged) const;
  TaskHandles lower_all_gather(sim::TaskGraph& graph, const net::PortMap& ports,
                               Bytes bytes, const TaskHandles& ready,
                               sim::TaskTag tag = sim::kUntagged) const;
  TaskHandles lower_broadcast(sim::TaskGraph& graph, const net::PortMap& ports,
                              Bytes bytes, int root_member,
                              const TaskHandles& ready,
                              sim::TaskTag tag = sim::kUntagged) const;
  TaskHandles lower_all_to_all(sim::TaskGraph& graph, const net::PortMap& ports,
                               Bytes bytes_per_block, const TaskHandles& ready,
                               sim::TaskTag tag = sim::kUntagged) const;

  /// Barrier: a zero-payload all-reduce (latency-only ring).
  TaskHandles lower_barrier(sim::TaskGraph& graph, const net::PortMap& ports,
                            const TaskHandles& ready,
                            sim::TaskTag tag = sim::kUntagged) const;

 private:
  TaskHandles lower_steps(sim::TaskGraph& graph, const net::PortMap& ports,
                          const std::vector<CollectiveStep>& steps,
                          const TaskHandles& ready, sim::TaskTag tag,
                          const std::string& op) const;

  const net::Topology* topo_;
  std::vector<int> ranks_;
  std::string name_;
  std::optional<net::FabricKind> internode_override_;
};

}  // namespace holmes::comm
