#include "comm/collective_steps.h"

#include <algorithm>
#include <map>

#include "util/error.h"

namespace holmes::comm {

namespace {
int mod(int a, int n) { return ((a % n) + n) % n; }
}  // namespace

ChunkLayout::ChunkLayout(std::int64_t elems, int chunks)
    : elems_(elems), chunks_(chunks) {
  HOLMES_CHECK_MSG(elems >= 0, "negative element count");
  HOLMES_CHECK_MSG(chunks >= 1, "need at least one chunk");
}

std::int64_t ChunkLayout::offset(int chunk) const {
  HOLMES_CHECK(chunk >= 0 && chunk < chunks_);
  const std::int64_t base = elems_ / chunks_;
  const std::int64_t longer = elems_ % chunks_;
  // First `longer` chunks have (base + 1) elements.
  return static_cast<std::int64_t>(chunk) * base + std::min<std::int64_t>(chunk, longer);
}

std::int64_t ChunkLayout::count(int chunk) const {
  HOLMES_CHECK(chunk >= 0 && chunk < chunks_);
  const std::int64_t base = elems_ / chunks_;
  const std::int64_t longer = elems_ % chunks_;
  return base + (chunk < longer ? 1 : 0);
}

int ring_owned_chunk(int n, int rank) {
  HOLMES_CHECK(n >= 1 && rank >= 0 && rank < n);
  return mod(rank + 1, n);
}

std::vector<CollectiveStep> ring_reduce_scatter_steps(int n, std::int64_t elems) {
  HOLMES_CHECK_MSG(n >= 1, "group must be non-empty");
  std::vector<CollectiveStep> steps;
  if (n == 1 || elems == 0) return steps;
  const ChunkLayout layout(elems, n);
  steps.reserve(static_cast<std::size_t>(n) * (n - 1));
  for (int s = 0; s < n - 1; ++s) {
    for (int i = 0; i < n; ++i) {
      const int chunk = mod(i - s, n);
      if (layout.count(chunk) == 0) continue;
      steps.push_back(CollectiveStep{s, i, mod(i + 1, n),
                                     layout.offset(chunk), layout.offset(chunk),
                                     layout.count(chunk), /*reduce=*/true});
    }
  }
  return steps;
}

std::vector<CollectiveStep> ring_all_gather_steps(int n, std::int64_t elems) {
  HOLMES_CHECK_MSG(n >= 1, "group must be non-empty");
  std::vector<CollectiveStep> steps;
  if (n == 1 || elems == 0) return steps;
  const ChunkLayout layout(elems, n);
  steps.reserve(static_cast<std::size_t>(n) * (n - 1));
  for (int s = 0; s < n - 1; ++s) {
    for (int i = 0; i < n; ++i) {
      const int chunk = mod(i + 1 - s, n);
      if (layout.count(chunk) == 0) continue;
      steps.push_back(CollectiveStep{s, i, mod(i + 1, n),
                                     layout.offset(chunk), layout.offset(chunk),
                                     layout.count(chunk), /*reduce=*/false});
    }
  }
  return steps;
}

std::vector<CollectiveStep> ring_all_reduce_steps(int n, std::int64_t elems) {
  std::vector<CollectiveStep> steps = ring_reduce_scatter_steps(n, elems);
  std::vector<CollectiveStep> gather = ring_all_gather_steps(n, elems);
  for (auto& step : gather) step.round += n - 1;
  steps.insert(steps.end(), gather.begin(), gather.end());
  return steps;
}

std::vector<CollectiveStep> broadcast_steps(int n, int root, std::int64_t elems) {
  HOLMES_CHECK_MSG(n >= 1, "group must be non-empty");
  HOLMES_CHECK_MSG(root >= 0 && root < n, "broadcast root out of range");
  std::vector<CollectiveStep> steps;
  if (n == 1 || elems == 0) return steps;
  // Pipeline the buffer as n chunks through the ring starting at root:
  // chunk j leaves ring position q at round j + q.
  const ChunkLayout layout(elems, n);
  for (int j = 0; j < n; ++j) {
    if (layout.count(j) == 0) continue;
    for (int q = 0; q < n - 1; ++q) {
      steps.push_back(CollectiveStep{j + q, mod(root + q, n),
                                     mod(root + q + 1, n), layout.offset(j),
                                     layout.offset(j), layout.count(j),
                                     /*reduce=*/false});
    }
  }
  std::stable_sort(steps.begin(), steps.end(),
                   [](const CollectiveStep& a, const CollectiveStep& b) {
                     return a.round < b.round;
                   });
  return steps;
}

std::vector<CollectiveStep> reduce_steps(int n, int root, std::int64_t elems) {
  HOLMES_CHECK_MSG(root >= 0 && root < n, "reduce root out of range");
  std::vector<CollectiveStep> steps = ring_reduce_scatter_steps(n, elems);
  if (n == 1 || elems == 0) return steps;
  // Final gather round: every rank forwards its owned (fully reduced) chunk
  // straight to the root.
  const ChunkLayout layout(elems, n);
  for (int i = 0; i < n; ++i) {
    if (i == root) continue;
    const int chunk = ring_owned_chunk(n, i);
    if (layout.count(chunk) == 0) continue;
    steps.push_back(CollectiveStep{n - 1, i, root, layout.offset(chunk),
                                   layout.offset(chunk), layout.count(chunk),
                                   /*reduce=*/false});
  }
  return steps;
}

std::vector<CollectiveStep> all_to_all_steps(int n, std::int64_t block_elems) {
  HOLMES_CHECK_MSG(n >= 1, "group must be non-empty");
  HOLMES_CHECK_MSG(block_elems >= 0, "negative block size");
  std::vector<CollectiveStep> steps;
  if (n == 1 || block_elems == 0) return steps;
  // Round s: rank i exchanges with rank (i + s) mod n. Send layout is keyed
  // by destination, receive layout by source.
  for (int s = 1; s < n; ++s) {
    for (int i = 0; i < n; ++i) {
      const int dst = mod(i + s, n);
      steps.push_back(CollectiveStep{s - 1, i, dst, dst * block_elems,
                                     i * block_elems, block_elems,
                                     /*reduce=*/false});
    }
  }
  return steps;
}

void validate_steps(const std::vector<CollectiveStep>& steps, int n,
                    std::int64_t elems, bool in_place) {
  struct Region {
    int rank;
    std::int64_t lo, hi;
  };
  std::map<int, std::vector<Region>> writes_by_round;
  for (const auto& s : steps) {
    HOLMES_CHECK_MSG(s.src >= 0 && s.src < n, "step src out of range");
    HOLMES_CHECK_MSG(s.dst >= 0 && s.dst < n, "step dst out of range");
    HOLMES_CHECK_MSG(s.src != s.dst, "step sends to itself");
    HOLMES_CHECK_MSG(s.count > 0, "step moves nothing");
    HOLMES_CHECK_MSG(s.src_offset >= 0 && s.dst_offset >= 0, "negative offset");
    if (elems >= 0) {
      HOLMES_CHECK_MSG(s.src_offset + s.count <= elems, "src region overflows");
      HOLMES_CHECK_MSG(s.dst_offset + s.count <= elems, "dst region overflows");
    }
    writes_by_round[s.round].push_back(
        Region{s.dst, s.dst_offset, s.dst_offset + s.count});
  }
  // Intra-round hazard check (in-place execution only): a step's source
  // region must not be written by any step of the same round.
  if (!in_place) return;
  for (const auto& s : steps) {
    for (const auto& w : writes_by_round[s.round]) {
      if (w.rank != s.src) continue;
      const std::int64_t lo = std::max(w.lo, s.src_offset);
      const std::int64_t hi = std::min(w.hi, s.src_offset + s.count);
      HOLMES_CHECK_MSG(lo >= hi, "intra-round read/write hazard");
    }
  }
}

Bytes bytes_sent_by(const std::vector<CollectiveStep>& steps, int rank,
                    Bytes bytes_per_elem) {
  Bytes total = 0;
  for (const auto& s : steps) {
    if (s.src == rank) total += s.count * bytes_per_elem;
  }
  return total;
}

}  // namespace holmes::comm
