#pragma once

/// \file inprocess.h
/// Eager execution of collective step programs on real float buffers.
///
/// This is the numeric backend: tests use it to prove the step programs are
/// the genuine NCCL-style algorithms (sums match, chunk ownership matches),
/// which in turn validates the timed lowering that shares the same programs.

#include <span>
#include <vector>

#include "comm/collective_steps.h"

namespace holmes::comm {

/// Per-rank views of a logical buffer. buffers[i] is group-rank i's copy.
using BufferSet = std::vector<std::span<float>>;

/// Applies `steps` in order: reduce steps accumulate into the destination,
/// copy steps overwrite. `src` and `dst` may alias (in-place collectives
/// pass the same set twice); correctness then relies on the program's
/// intra-round disjointness invariant (see validate_steps).
void apply_steps(const std::vector<CollectiveStep>& steps, const BufferSet& src,
                 const BufferSet& dst);

/// In-place ring all-reduce: every buffer ends up holding the element-wise
/// sum of all inputs.
void all_reduce_inplace(const BufferSet& buffers);

/// In-place ring reduce-scatter: afterwards group-rank i's region for
/// ring_owned_chunk(n, i) holds the full sum; other regions hold partials.
void reduce_scatter_inplace(const BufferSet& buffers);

/// In-place ring all-gather. Precondition: rank i's owned-chunk region is
/// authoritative (exactly the postcondition of reduce_scatter_inplace).
void all_gather_inplace(const BufferSet& buffers);

/// In-place pipelined broadcast from `root`.
void broadcast_inplace(const BufferSet& buffers, int root);

/// In-place reduce to `root`: root's buffer ends up with the sum. Non-root
/// buffers are clobbered with partials.
void reduce_inplace(const BufferSet& buffers, int root);

/// All-to-all: send[i] holds n equal blocks keyed by destination; recv[i]
/// receives n blocks keyed by source. Buffers must not alias.
void all_to_all(const BufferSet& send, const BufferSet& recv);

}  // namespace holmes::comm
