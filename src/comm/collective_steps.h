#pragma once

/// \file collective_steps.h
/// Backend-agnostic step programs for collective operations.
///
/// A collective is expressed as a list of point-to-point steps grouped into
/// rounds. The same program drives two backends:
///  - the in-process backend executes the data movement on real float
///    buffers (numerically verified in tests), and
///  - the sim backend lowers each step to a timed transfer task.
///
/// The ring algorithms are the bandwidth-optimal ones used by NCCL/Horovod:
/// reduce-scatter and all-gather each move (n-1)/n of the buffer per rank,
/// so all-reduce moves 2(n-1)/n — this cost is *produced* by the program
/// rather than hardcoded anywhere.
///
/// Program invariant (checked by validate_steps, relied upon by both
/// backends): within one round, no step reads a buffer region on some rank
/// that another step of the same round writes. Rounds therefore execute
/// correctly when applied sequentially in emission order.

#include <cstdint>
#include <vector>

#include "util/units.h"

namespace holmes::comm {

/// One point-to-point hop of a collective. Ranks are *indices within the
/// group* (0..n-1), not global topology ranks. Offsets/counts are in
/// elements of the logical buffer.
struct CollectiveStep {
  int round = 0;
  int src = -1;
  int dst = -1;
  std::int64_t src_offset = 0;
  std::int64_t dst_offset = 0;
  std::int64_t count = 0;
  bool reduce = false;  ///< dst += src (true) or dst = src (false)

  bool operator==(const CollectiveStep&) const = default;
};

/// Splits `elems` into `chunks` near-equal contiguous pieces; the first
/// (elems % chunks) chunks are one element longer.
class ChunkLayout {
 public:
  ChunkLayout(std::int64_t elems, int chunks);
  std::int64_t offset(int chunk) const;
  std::int64_t count(int chunk) const;
  int chunks() const { return chunks_; }
  std::int64_t elems() const { return elems_; }

 private:
  std::int64_t elems_;
  int chunks_;
};

/// After ring reduce-scatter over n ranks, group-rank `rank` holds the fully
/// reduced chunk with this index (the ring convention places rank i's chunk
/// at (i+1) mod n).
int ring_owned_chunk(int n, int rank);

/// Ring reduce-scatter: n-1 rounds, each rank sends one chunk per round to
/// its successor, accumulating. Empty for n == 1.
std::vector<CollectiveStep> ring_reduce_scatter_steps(int n, std::int64_t elems);

/// Ring all-gather: n-1 rounds propagating each rank's owned chunk around
/// the ring. Precondition: rank i's region for ring_owned_chunk(n, i) holds
/// the data to distribute. Empty for n == 1.
std::vector<CollectiveStep> ring_all_gather_steps(int n, std::int64_t elems);

/// Ring all-reduce: reduce-scatter rounds followed by all-gather rounds
/// (round numbers continue across the phases).
std::vector<CollectiveStep> ring_all_reduce_steps(int n, std::int64_t elems);

/// Pipelined chunked ring broadcast from `root`: the buffer is cut into n
/// chunks that stream around the ring, so large broadcasts approach full
/// link bandwidth instead of paying n-1 serial full-buffer hops.
std::vector<CollectiveStep> broadcast_steps(int n, int root, std::int64_t elems);

/// Reduce to `root`: ring reduce-scatter, then each rank forwards its owned
/// chunk to the root in one final gather round.
std::vector<CollectiveStep> reduce_steps(int n, int root, std::int64_t elems);

/// All-to-all (personalized exchange): each rank holds n blocks of
/// `block_elems` keyed by destination and receives n blocks keyed by source.
/// The self-block is not a step (backends copy it locally).
std::vector<CollectiveStep> all_to_all_steps(int n, std::int64_t block_elems);

/// Validates a step program against the class invariants: indices in
/// [0, n), src != dst, positive counts, regions within [0, elems), and —
/// when `in_place` is true — the intra-round read/write disjointness rule
/// that makes aliased (in-place) execution safe. Throws
/// holmes::InternalError on violation. `elems` < 0 skips the bounds check
/// and `in_place` should be false for all-to-all, whose source and
/// destination buffers are distinct.
void validate_steps(const std::vector<CollectiveStep>& steps, int n,
                    std::int64_t elems, bool in_place = true);

/// Total bytes a single rank transmits when executing `steps`, assuming
/// `bytes_per_elem`-sized elements; used by tests to pin the ring cost
/// factors (e.g. all-reduce == 2(n-1)/n * buffer).
Bytes bytes_sent_by(const std::vector<CollectiveStep>& steps, int rank,
                    Bytes bytes_per_elem);

}  // namespace holmes::comm
