#include "comm/halving_doubling.h"

#include "util/error.h"
#include "util/math_util.h"

namespace holmes::comm {

namespace {

/// Element span of the chunk range [first, first + count) of `layout`.
std::pair<std::int64_t, std::int64_t> chunk_span(const ChunkLayout& layout,
                                                 int first, int count) {
  const std::int64_t begin = layout.offset(first);
  const std::int64_t end = first + count < layout.chunks()
                               ? layout.offset(first + count)
                               : layout.elems();
  return {begin, end - begin};
}

}  // namespace

std::vector<CollectiveStep> halving_doubling_all_reduce_steps(
    int n, std::int64_t elems) {
  if (n < 1) throw ConfigError("group must be non-empty");
  if (!is_pow2(n)) {
    throw ConfigError("halving-doubling needs a power-of-two group, got " +
                      std::to_string(n));
  }
  std::vector<CollectiveStep> steps;
  if (n == 1 || elems == 0) return steps;

  const ChunkLayout layout(elems, n);
  // Per-rank chunk window [lo, lo + cnt).
  std::vector<int> lo(static_cast<std::size_t>(n), 0);
  int cnt = n;
  int round = 0;

  // Recursive halving (reduce-scatter): partners at distance n/2, n/4, ...
  // exchange the half of their window they will not keep.
  while (cnt > 1) {
    const int half = cnt / 2;
    for (int i = 0; i < n; ++i) {
      const int partner = i ^ half;
      // i sends the half it discards; the partner keeps that half.
      const bool keeps_upper = (i & half) != 0;
      const int sent_first = lo[static_cast<std::size_t>(i)] +
                             (keeps_upper ? 0 : half);
      const auto [offset, count] = chunk_span(layout, sent_first, half);
      if (count > 0) {
        steps.push_back(CollectiveStep{round, i, partner, offset, offset,
                                       count, /*reduce=*/true});
      }
    }
    for (int i = 0; i < n; ++i) {
      if ((i & half) != 0) lo[static_cast<std::size_t>(i)] += half;
    }
    cnt = half;
    ++round;
  }
  // Invariant of the halving phase: rank i now owns exactly chunk i.

  // Recursive doubling (all-gather): partners at distance 1, 2, ... copy
  // their whole window to each other.
  for (int distance = 1; distance < n; distance *= 2) {
    for (int i = 0; i < n; ++i) {
      const int partner = i ^ distance;
      const auto [offset, count] =
          chunk_span(layout, lo[static_cast<std::size_t>(i)], cnt);
      if (count > 0) {
        steps.push_back(CollectiveStep{round, i, partner, offset, offset,
                                       count, /*reduce=*/false});
      }
    }
    for (int i = 0; i < n; ++i) {
      lo[static_cast<std::size_t>(i)] =
          std::min(lo[static_cast<std::size_t>(i)],
                   lo[static_cast<std::size_t>(i ^ distance)]);
    }
    cnt *= 2;
    ++round;
  }
  return steps;
}

std::vector<CollectiveStep> suggested_all_reduce_steps(
    int n, std::int64_t elems, std::int64_t threshold_elems) {
  if (n >= 2 && is_pow2(n) && elems < threshold_elems) {
    return halving_doubling_all_reduce_steps(n, elems);
  }
  return ring_all_reduce_steps(n, elems);
}

}  // namespace holmes::comm
