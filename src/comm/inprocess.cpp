#include "comm/inprocess.h"

#include <algorithm>

#include "util/error.h"

namespace holmes::comm {

namespace {

void check_uniform(const BufferSet& buffers) {
  HOLMES_CHECK_MSG(!buffers.empty(), "empty buffer set");
  for (const auto& b : buffers) {
    HOLMES_CHECK_MSG(b.size() == buffers.front().size(),
                     "buffers must have equal length");
  }
}

}  // namespace

void apply_steps(const std::vector<CollectiveStep>& steps, const BufferSet& src,
                 const BufferSet& dst) {
  HOLMES_CHECK_MSG(src.size() == dst.size(), "src/dst rank count mismatch");
  for (const auto& s : steps) {
    HOLMES_CHECK(s.src >= 0 && static_cast<std::size_t>(s.src) < src.size());
    HOLMES_CHECK(s.dst >= 0 && static_cast<std::size_t>(s.dst) < dst.size());
    const std::span<float> from = src[static_cast<std::size_t>(s.src)];
    const std::span<float> to = dst[static_cast<std::size_t>(s.dst)];
    HOLMES_CHECK_MSG(
        s.src_offset + s.count <= static_cast<std::int64_t>(from.size()),
        "step reads past src buffer");
    HOLMES_CHECK_MSG(
        s.dst_offset + s.count <= static_cast<std::int64_t>(to.size()),
        "step writes past dst buffer");
    const float* in = from.data() + s.src_offset;
    float* out = to.data() + s.dst_offset;
    if (s.reduce) {
      for (std::int64_t k = 0; k < s.count; ++k) out[k] += in[k];
    } else {
      std::copy(in, in + s.count, out);
    }
  }
}

void all_reduce_inplace(const BufferSet& buffers) {
  check_uniform(buffers);
  const int n = static_cast<int>(buffers.size());
  const auto elems = static_cast<std::int64_t>(buffers.front().size());
  apply_steps(ring_all_reduce_steps(n, elems), buffers, buffers);
}

void reduce_scatter_inplace(const BufferSet& buffers) {
  check_uniform(buffers);
  const int n = static_cast<int>(buffers.size());
  const auto elems = static_cast<std::int64_t>(buffers.front().size());
  apply_steps(ring_reduce_scatter_steps(n, elems), buffers, buffers);
}

void all_gather_inplace(const BufferSet& buffers) {
  check_uniform(buffers);
  const int n = static_cast<int>(buffers.size());
  const auto elems = static_cast<std::int64_t>(buffers.front().size());
  apply_steps(ring_all_gather_steps(n, elems), buffers, buffers);
}

void broadcast_inplace(const BufferSet& buffers, int root) {
  check_uniform(buffers);
  const int n = static_cast<int>(buffers.size());
  const auto elems = static_cast<std::int64_t>(buffers.front().size());
  apply_steps(broadcast_steps(n, root, elems), buffers, buffers);
}

void reduce_inplace(const BufferSet& buffers, int root) {
  check_uniform(buffers);
  const int n = static_cast<int>(buffers.size());
  const auto elems = static_cast<std::int64_t>(buffers.front().size());
  apply_steps(reduce_steps(n, root, elems), buffers, buffers);
}

void all_to_all(const BufferSet& send, const BufferSet& recv) {
  HOLMES_CHECK_MSG(send.size() == recv.size(), "send/recv rank count mismatch");
  check_uniform(send);
  check_uniform(recv);
  const int n = static_cast<int>(send.size());
  const auto total = static_cast<std::int64_t>(send.front().size());
  HOLMES_CHECK_MSG(static_cast<std::int64_t>(recv.front().size()) == total,
                   "send/recv buffer length mismatch");
  HOLMES_CHECK_MSG(total % n == 0, "all-to-all buffer not divisible by group");
  const std::int64_t block = total / n;
  apply_steps(all_to_all_steps(n, block), send, recv);
  // Self-blocks move locally (no network step).
  for (int i = 0; i < n; ++i) {
    const float* in = send[static_cast<std::size_t>(i)].data() + i * block;
    float* out = recv[static_cast<std::size_t>(i)].data() + i * block;
    std::copy(in, in + block, out);
  }
}

}  // namespace holmes::comm
