#include "comm/hierarchical.h"

#include <algorithm>
#include <map>

#include "util/error.h"

namespace holmes::comm {

std::vector<CollectiveStep> hierarchical_all_reduce_steps(
    const std::vector<int>& node_of_member, std::int64_t elems) {
  const int n = static_cast<int>(node_of_member.size());
  if (n <= 0) throw ConfigError("hierarchical all-reduce needs members");
  if (elems < 0) throw ConfigError("negative element count");

  // Collect node blocks; members of one node must be contiguous.
  std::vector<std::pair<int, int>> blocks;  // (first member, count)
  for (int i = 0; i < n; ++i) {
    if (i == 0 || node_of_member[static_cast<std::size_t>(i)] !=
                      node_of_member[static_cast<std::size_t>(i - 1)]) {
      blocks.emplace_back(i, 0);
    }
    ++blocks.back().second;
  }
  {
    std::map<int, int> seen;
    for (int node : node_of_member) ++seen[node];
    if (seen.size() != blocks.size()) {
      throw ConfigError("members of one node must be contiguous in group order");
    }
  }
  const int locals = blocks.front().second;  // L
  for (const auto& [first, count] : blocks) {
    if (count != locals) {
      throw ConfigError("every node must host the same number of members");
    }
  }
  const int nodes = static_cast<int>(blocks.size());  // M

  // Degenerate shapes: a single node (pure NVLink ring) or one member per
  // node (pure inter-node ring) — the flat ring is already optimal.
  if (nodes == 1 || locals == 1) return ring_all_reduce_steps(n, elems);

  std::vector<CollectiveStep> steps;
  const ChunkLayout local(elems, locals);

  // Phase A: ring reduce-scatter inside each node.
  int round_base = 0;
  for (int k = 0; k < nodes; ++k) {
    const int base = blocks[static_cast<std::size_t>(k)].first;
    for (CollectiveStep s : ring_reduce_scatter_steps(locals, elems)) {
      s.round += round_base;
      s.src += base;
      s.dst += base;
      steps.push_back(s);
    }
  }
  round_base += locals - 1;

  // Phase B: per shard j, an inter-node ring all-reduce over the shard's
  // region among its owners (local rank (j-1) mod L of every node).
  for (int j = 0; j < locals; ++j) {
    const std::int64_t offset = local.offset(j);
    if (local.count(j) == 0) continue;
    const int owner_local = (j - 1 + locals) % locals;
    for (CollectiveStep s : ring_all_reduce_steps(nodes, local.count(j))) {
      s.round += round_base;
      s.src = blocks[static_cast<std::size_t>(s.src)].first + owner_local;
      s.dst = blocks[static_cast<std::size_t>(s.dst)].first + owner_local;
      s.src_offset += offset;
      s.dst_offset += offset;
      steps.push_back(s);
    }
  }
  round_base += 2 * (nodes - 1);

  // Phase C: ring all-gather inside each node.
  for (int k = 0; k < nodes; ++k) {
    const int base = blocks[static_cast<std::size_t>(k)].first;
    for (CollectiveStep s : ring_all_gather_steps(locals, elems)) {
      s.round += round_base;
      s.src += base;
      s.dst += base;
      steps.push_back(s);
    }
  }

  // Keep emission order round-major so in-place sequential application and
  // the round-by-round timed lowering both stay valid.
  std::stable_sort(steps.begin(), steps.end(),
                   [](const CollectiveStep& a, const CollectiveStep& b) {
                     return a.round < b.round;
                   });
  return steps;
}

}  // namespace holmes::comm
