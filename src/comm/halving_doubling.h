#pragma once

/// \file halving_doubling.h
/// Recursive halving-doubling all-reduce.
///
/// The ring algorithm is bandwidth-optimal but pays 2(n-1) latency rounds;
/// recursive halving (reduce-scatter) + recursive doubling (all-gather)
/// moves the same 2(n-1)/n volume in only 2*log2(n) rounds, winning for
/// small payloads and large groups — exactly NCCL's reasoning when it
/// switches algorithms by buffer size. Restricted to power-of-two group
/// sizes (the classic formulation); callers fall back to the ring
/// otherwise (see suggested_all_reduce_steps).

#include <vector>

#include "comm/collective_steps.h"

namespace holmes::comm {

/// Step program for halving-doubling all-reduce over n ranks (n must be a
/// power of two; throws holmes::ConfigError otherwise). Empty for n == 1
/// or elems == 0.
std::vector<CollectiveStep> halving_doubling_all_reduce_steps(
    int n, std::int64_t elems);

/// Size-based algorithm selection, mirroring NCCL's protocol switch:
/// payloads below `threshold_elems` on power-of-two groups use
/// halving-doubling; everything else uses the ring.
std::vector<CollectiveStep> suggested_all_reduce_steps(
    int n, std::int64_t elems, std::int64_t threshold_elems = 1 << 20);

}  // namespace holmes::comm
