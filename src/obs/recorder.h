#pragma once

/// \file recorder.h
/// Bridges the simulation executor's event stream into a MetricsRegistry.
///
/// Attach a RegistryRecorder to TaskGraphExecutor::run (or pass it through
/// TrainingSimulator::run) and the registry fills up while the simulation
/// executes:
///
///   sim.tasks{kind=...}                 counter, one increment per task
///   device.busy_seconds{device=...}     counter, compute occupancy
///   device.tasks{device=...}            counter
///   link.busy_seconds{link=...}         counter, port serialization time
///   link.bytes{link=...}                counter, egress bytes per TX port
///   comm.bytes{comm=...}                counter, per-channel payload
///   comm.transfers{comm=...}            counter
///   sim.queue_wait_seconds{kind=...}    histogram of start - ready_at,
///                                       weighted by the wait itself
///   sim.makespan_seconds                gauge, set at run completion
///
/// Instrument references are cached per resource/channel id, so the hot
/// path does no map lookups after the first task on each entity.

#include <vector>

#include "obs/metrics.h"
#include "sim/executor.h"

namespace holmes::obs {

class RegistryRecorder final : public sim::ExecutionObserver {
 public:
  /// The registry must outlive the recorder. One recorder instance is
  /// meant for one run; reuse across runs keeps accumulating (counters are
  /// monotone) but the id->instrument caches assume one graph.
  explicit RegistryRecorder(MetricsRegistry& registry)
      : registry_(&registry) {}

  void on_task_scheduled(const sim::TaskGraph& graph, sim::TaskId id,
                         const sim::TaskTiming& timing,
                         SimTime ready_at) override;
  void on_run_complete(const sim::TaskGraph& graph,
                       const sim::SimResult& result) override;

  MetricsRegistry& registry() { return *registry_; }

 private:
  Counter& device_busy(const sim::TaskGraph& graph, sim::ResourceId id);
  Counter& device_tasks(const sim::TaskGraph& graph, sim::ResourceId id);
  Counter& link_busy(const sim::TaskGraph& graph, sim::ResourceId id);
  Counter& link_bytes(const sim::TaskGraph& graph, sim::ResourceId id);
  Counter& comm_bytes(const sim::TaskGraph& graph, sim::ChannelId id);
  Counter& comm_transfers(const sim::TaskGraph& graph, sim::ChannelId id);

  MetricsRegistry* registry_;
  // Lazily grown id -> instrument caches (nullptr until first touch).
  std::vector<Counter*> device_busy_, device_tasks_;
  std::vector<Counter*> link_busy_, link_bytes_;
  std::vector<Counter*> comm_bytes_, comm_transfers_;
};

}  // namespace holmes::obs
