#pragma once

/// \file self_profile.h
/// Engine self-profiling: where does the *simulator's* wall time go?
///
/// PRs 1-3 made the simulated workload observable; this layer observes the
/// DES engine itself so perf work on ROADMAP item 3 ("engine at production
/// scale") has a measurement substrate. It collects
///
///  - **counters** over the hot path: task/dependency/resource/channel
///    allocations in TaskGraph, ready-queue pushes/pops and peak depth in
///    TaskGraphExecutor, event-queue churn in EventQueue, and cost-model
///    evaluations — all driven by deterministic code, so two identical runs
///    produce byte-identical counter JSON (tests lock this);
///  - **phase timers**: wall seconds of graph build, event-loop dispatch and
///    post-run accounting inside TrainingSimulator::run (plus the run
///    total), measured with std::chrono::steady_clock;
///  - **peak RSS** of the process at snapshot time.
///
/// Everything is off unless a SelfProfiler is alive on the *current thread*:
/// the hooks test one thread-local pointer and return, so an unprofiled
/// simulation pays a predictable branch per (already expensive) allocation
/// or queue operation and nothing in the executor's inner loop, which
/// batches its counts locally and flushes once per run. Thread-locality
/// also keeps the hooks race-free under the thread pool (a profiler only
/// sees work executed on its own thread) and clean under tsan.
///
/// The stable JSON schema is `holmes.self_profile.v1`; TrainingSimulator
/// attaches a per-run delta to SimArtifacts so `holmes_cli stats`/`explain
/// --self-profile` and the `holmes_cli bench` trajectory can surface it
/// (docs/observability.md).

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace holmes::obs {

inline constexpr const char* kSelfProfileSchema = "holmes.self_profile.v1";

/// Deterministic engine counters. Every field is driven purely by the
/// structure of the simulated work, never by wall time, so identical runs
/// produce identical values.
struct SelfProfileCounters {
  // TaskGraph allocations.
  std::uint64_t tasks_created = 0;
  std::uint64_t compute_tasks = 0;
  std::uint64_t transfer_tasks = 0;
  std::uint64_t noop_tasks = 0;
  std::uint64_t deps_added = 0;
  std::uint64_t resources_created = 0;
  std::uint64_t channels_created = 0;
  // TaskGraphExecutor ready queue (the DES hot loop).
  std::uint64_t executor_runs = 0;
  std::uint64_t ready_pushes = 0;
  std::uint64_t ready_pops = 0;
  std::uint64_t max_ready_queue = 0;  ///< peak ready-queue depth (gauge)
  // sim::EventQueue churn (the callback-driven Simulator).
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_fired = 0;
  // core::CostModel evaluations during lowering.
  std::uint64_t cost_model_evals = 0;
  // util::Arena (arena-backed event storage): blocks reserved and bytes
  // bump-allocated.
  std::uint64_t arena_blocks = 0;
  std::uint64_t arena_bytes = 0;
  // sim::SimMemo structural-hash cache and sim::ScenarioRunner fan-out.
  // Memo and scenario totals are aggregated across worker threads by their
  // owners and flushed to the orchestrating thread's profile.
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  /// Runs that could have used a shared memo but were forced around it
  /// because an active fault timeline is not part of the memo key (see
  /// core/faults.h and sim/rate_timeline.h).
  std::uint64_t memo_bypass = 0;
  std::uint64_t scenarios_run = 0;
};

/// Wall seconds per engine phase (steady clock). Non-deterministic by
/// nature; the schema keeps them separate from the counters so tests and
/// baselines can require byte-stability of the latter only.
struct SelfProfilePhases {
  double graph_build_s = 0;  ///< plan lowering into the TaskGraph
  double event_loop_s = 0;   ///< TaskGraphExecutor::run dispatch loop
  double accounting_s = 0;   ///< post-run metric derivation
  double total_s = 0;        ///< whole TrainingSimulator::run
};

struct SelfProfile {
  SelfProfileCounters counters;
  SelfProfilePhases phases;
  std::int64_t peak_rss_bytes = 0;  ///< process peak RSS at snapshot time
};

namespace self_profile {

/// The profile collecting on this thread; nullptr disables every hook.
inline thread_local SelfProfile* tl_active = nullptr;

inline bool enabled() { return tl_active != nullptr; }

/// Adds `n` to a counter field of the active profile, if any.
inline void count(std::uint64_t SelfProfileCounters::*field,
                  std::uint64_t n = 1) {
  if (tl_active != nullptr) tl_active->counters.*field += n;
}

/// Raises a gauge field to `value` if the active profile's is lower.
inline void raise(std::uint64_t SelfProfileCounters::*field,
                  std::uint64_t value) {
  if (tl_active != nullptr && tl_active->counters.*field < value) {
    tl_active->counters.*field = value;
  }
}

/// Adds wall seconds to a phase field of the active profile, if any.
inline void add_phase(double SelfProfilePhases::*field, double seconds) {
  if (tl_active != nullptr) tl_active->phases.*field += seconds;
}

/// RAII phase timer: measures from construction to stop()/destruction and
/// adds the elapsed wall seconds to `field`. Costs one branch when no
/// profiler is active (the clock is never read).
class PhaseTimer {
 public:
  explicit PhaseTimer(double SelfProfilePhases::*field)
      : field_(field), armed_(enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
  ~PhaseTimer() { stop(); }

  /// Flushes the elapsed time once; later calls (and the destructor) no-op.
  void stop() {
    if (!armed_) return;
    armed_ = false;
    add_phase(field_, std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count());
  }

 private:
  double SelfProfilePhases::*field_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace self_profile

/// Scoped enablement: installs a fresh profile as this thread's collector
/// for its lifetime (restoring any outer profiler on destruction, so
/// profilers nest). Read results with snapshot().
class SelfProfiler {
 public:
  SelfProfiler()
      : previous_(self_profile::tl_active) {
    self_profile::tl_active = &profile_;
  }
  SelfProfiler(const SelfProfiler&) = delete;
  SelfProfiler& operator=(const SelfProfiler&) = delete;
  ~SelfProfiler() { self_profile::tl_active = previous_; }

  /// Copy of everything collected so far, stamped with the current peak RSS.
  SelfProfile snapshot() const;

 private:
  SelfProfile profile_;
  SelfProfile* previous_;
};

/// Field-wise `after - before` over counters and phases (peak RSS is taken
/// from `after`): the profile of the work between two snapshots.
SelfProfile delta(const SelfProfile& before, const SelfProfile& after);

/// Process peak resident set size in bytes (0 where unsupported).
std::int64_t current_peak_rss_bytes();

/// The counters object alone (`{"tasks_created":…}`), byte-stable — the
/// piece determinism tests and trajectory baselines compare exactly.
std::string counters_json(const SelfProfileCounters& counters);

/// Writes the full stable holmes.self_profile.v1 document (no trailing
/// newline): schema, counters, phases, peak_rss_bytes.
void write_json(std::ostream& out, const SelfProfile& profile);

/// Human-readable rendering for `--self-profile` text reports.
void print_text(std::ostream& out, const SelfProfile& profile);

}  // namespace holmes::obs
