#include "obs/accounting.h"

#include <algorithm>
#include <utility>

namespace holmes::obs {

SimTime Window::clip(SimTime s, SimTime f) const {
  const SimTime lo = std::max(s, begin);
  const SimTime hi = std::min(f, end);
  return std::max(0.0, hi - lo);
}

namespace {

/// Serialization time of a transfer as the executor scheduled it.
SimTime serialization_of(const sim::Task& task,
                         const sim::TaskTiming& timing) {
  return std::max(0.0, timing.finish - timing.start - task.latency);
}

/// True when [s, f) (or the instant s for zero-length tasks) intersects the
/// window.
bool in_window(const Window& window, SimTime s, SimTime f) {
  if (s >= window.begin && s < window.end) return true;
  return f > window.begin && s < window.end;
}

/// Latest dependency finish (the task's data-ready time).
SimTime dep_ready(const sim::TaskGraph& graph, const sim::SimResult& result,
                  sim::TaskId id) {
  SimTime ready = 0;
  for (sim::TaskId dep : graph.deps(id)) {
    ready = std::max(ready, result.timing(dep).finish);
  }
  return ready;
}

/// Measure of the union of intervals (assumed individually well-formed).
SimTime union_measure(std::vector<std::pair<SimTime, SimTime>>& intervals) {
  if (intervals.empty()) return 0;
  std::sort(intervals.begin(), intervals.end());
  SimTime total = 0;
  SimTime lo = intervals.front().first;
  SimTime hi = intervals.front().second;
  for (const auto& [s, f] : intervals) {
    if (s > hi) {
      total += hi - lo;
      lo = s;
      hi = f;
    } else {
      hi = std::max(hi, f);
    }
  }
  return total + (hi - lo);
}

/// Intersection measure of one interval against a sorted, disjoint list.
SimTime covered_by(SimTime s, SimTime f,
                   const std::vector<std::pair<SimTime, SimTime>>& merged) {
  SimTime covered = 0;
  // merged is sorted; a binary search would do, but span lists are short.
  for (const auto& [lo, hi] : merged) {
    if (hi <= s) continue;
    if (lo >= f) break;
    covered += std::min(f, hi) - std::max(s, lo);
  }
  return covered;
}

std::vector<std::pair<SimTime, SimTime>> merge(
    std::vector<std::pair<SimTime, SimTime>> intervals) {
  std::vector<std::pair<SimTime, SimTime>> merged;
  if (intervals.empty()) return merged;
  std::sort(intervals.begin(), intervals.end());
  merged.push_back(intervals.front());
  for (const auto& [s, f] : intervals) {
    if (s > merged.back().second) {
      merged.emplace_back(s, f);
    } else {
      merged.back().second = std::max(merged.back().second, f);
    }
  }
  return merged;
}

}  // namespace

std::vector<ResourceAccount> account_resources(const sim::TaskGraph& graph,
                                               const sim::SimResult& result,
                                               const Window& window) {
  std::vector<ResourceAccount> accounts(graph.resource_count());
  for (std::size_t r = 0; r < accounts.size(); ++r) {
    accounts[r].id = static_cast<sim::ResourceId>(r);
    accounts[r].name = graph.resource_name(static_cast<sim::ResourceId>(r));
  }

  for (std::size_t i = 0; i < graph.task_count(); ++i) {
    const sim::Task& task = graph.tasks()[i];
    const sim::TaskTiming& timing = result.timing(static_cast<sim::TaskId>(i));
    switch (task.kind) {
      case sim::TaskKind::kCompute: {
        ResourceAccount& acc =
            accounts[static_cast<std::size_t>(task.resource)];
        acc.is_device = true;
        acc.busy += window.clip(timing.start, timing.finish);
        if (in_window(window, timing.start, timing.finish)) ++acc.tasks;
        const SimTime ready =
            dep_ready(graph, result, static_cast<sim::TaskId>(i));
        acc.waiting += window.clip(ready, timing.start);
        break;
      }
      case sim::TaskKind::kTransfer: {
        const SimTime serialization = serialization_of(task, timing);
        const SimTime busy =
            window.clip(timing.start, timing.start + serialization);
        const SimTime wait =
            window.clip(dep_ready(graph, result, static_cast<sim::TaskId>(i)),
                        timing.start);
        const bool counted =
            in_window(window, timing.start, timing.start + serialization);
        ResourceAccount& src =
            accounts[static_cast<std::size_t>(task.src_port)];
        src.is_link = true;
        src.busy += busy;
        src.waiting += wait;
        if (counted) {
          src.bytes += task.bytes;
          ++src.tasks;
        }
        if (task.dst_port != task.src_port) {
          ResourceAccount& dst =
              accounts[static_cast<std::size_t>(task.dst_port)];
          dst.is_link = true;
          dst.busy += busy;
          dst.waiting += wait;
          if (counted) {
            dst.bytes += task.bytes;
            ++dst.tasks;
          }
        }
        break;
      }
      case sim::TaskKind::kNoop:
        break;
    }
  }
  return accounts;
}

std::vector<ChannelAccount> account_channels(const sim::TaskGraph& graph,
                                             const sim::SimResult& result,
                                             const Window& window) {
  std::vector<ChannelAccount> accounts(graph.channel_count());
  std::vector<SimTime> first(accounts.size(),
                             std::numeric_limits<SimTime>::infinity());
  std::vector<SimTime> last(accounts.size(),
                            -std::numeric_limits<SimTime>::infinity());
  for (std::size_t c = 0; c < accounts.size(); ++c) {
    accounts[c].id = static_cast<sim::ChannelId>(c);
    accounts[c].name = graph.channel_name(static_cast<sim::ChannelId>(c));
  }
  for (std::size_t i = 0; i < graph.task_count(); ++i) {
    const sim::Task& task = graph.tasks()[i];
    if (task.kind != sim::TaskKind::kTransfer ||
        task.channel == sim::kInvalidChannel) {
      continue;
    }
    const sim::TaskTiming& timing = result.timing(static_cast<sim::TaskId>(i));
    if (timing.start < window.begin || timing.start >= window.end) continue;
    ChannelAccount& acc = accounts[static_cast<std::size_t>(task.channel)];
    acc.bytes += task.bytes;
    ++acc.transfers;
    acc.busy += serialization_of(task, timing);
    first[static_cast<std::size_t>(task.channel)] =
        std::min(first[static_cast<std::size_t>(task.channel)], timing.start);
    last[static_cast<std::size_t>(task.channel)] =
        std::max(last[static_cast<std::size_t>(task.channel)], timing.finish);
  }
  for (std::size_t c = 0; c < accounts.size(); ++c) {
    if (accounts[c].transfers > 0) {
      accounts[c].span = std::min(last[c], window.end) - first[c];
    }
  }
  return accounts;
}

SpanAccount account_tasks(const sim::TaskGraph& graph,
                          const sim::SimResult& result,
                          const TaskPredicate& predicate,
                          const Window& window) {
  SpanAccount account;
  SimTime first = std::numeric_limits<SimTime>::infinity();
  SimTime last = -std::numeric_limits<SimTime>::infinity();
  for (std::size_t i = 0; i < graph.task_count(); ++i) {
    const sim::Task& task = graph.tasks()[i];
    if (task.kind == sim::TaskKind::kNoop) continue;
    if (!predicate(static_cast<sim::TaskId>(i), task)) continue;
    const sim::TaskTiming& timing = result.timing(static_cast<sim::TaskId>(i));
    const SimTime busy = window.clip(timing.start, timing.finish);
    if (busy <= 0 &&
        (timing.finish <= window.begin || timing.start >= window.end)) {
      continue;
    }
    account.busy += busy;
    ++account.tasks;
    first = std::min(first, std::max(timing.start, window.begin));
    last = std::max(last, std::min(timing.finish, window.end));
  }
  if (account.tasks > 0) {
    account.first = first;
    account.last = last;
    account.span = last - first;
  }
  return account;
}

OverlapAccount account_overlap(const sim::TaskGraph& graph,
                               const sim::SimResult& result,
                               const TaskPredicate& span_tasks,
                               const TaskPredicate& cover_tasks,
                               const Window& window) {
  std::vector<std::pair<SimTime, SimTime>> spans;
  std::vector<std::pair<SimTime, SimTime>> covers;
  for (std::size_t i = 0; i < graph.task_count(); ++i) {
    const sim::Task& task = graph.tasks()[i];
    if (task.kind == sim::TaskKind::kNoop) continue;
    const sim::TaskTiming& timing = result.timing(static_cast<sim::TaskId>(i));
    const SimTime lo = std::max(timing.start, window.begin);
    const SimTime hi = std::min(timing.finish, window.end);
    if (hi <= lo) continue;
    if (span_tasks(static_cast<sim::TaskId>(i), task)) {
      spans.emplace_back(lo, hi);
    }
    if (cover_tasks(static_cast<sim::TaskId>(i), task)) {
      covers.emplace_back(lo, hi);
    }
  }
  OverlapAccount account;
  const std::vector<std::pair<SimTime, SimTime>> merged_covers =
      merge(std::move(covers));
  std::vector<std::pair<SimTime, SimTime>> merged_spans =
      merge(std::move(spans));
  account.total = union_measure(merged_spans);
  for (const auto& [s, f] : merged_spans) {
    account.overlapped += covered_by(s, f, merged_covers);
  }
  account.exposed = account.total - account.overlapped;
  return account;
}

TaskPredicate tag_in(std::vector<sim::TaskTag> tags) {
  return [tags = std::move(tags)](sim::TaskId, const sim::Task& task) {
    return std::find(tags.begin(), tags.end(), task.tag) != tags.end();
  };
}

}  // namespace holmes::obs
