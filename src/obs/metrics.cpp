#include "obs/metrics.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/error.h"
#include "util/json.h"

namespace holmes::obs {

Labels::Labels(
    std::initializer_list<std::pair<std::string, std::string>> kv)
    : items_(kv) {
  std::sort(items_.begin(), items_.end());
  for (std::size_t i = 1; i < items_.size(); ++i) {
    HOLMES_CHECK_MSG(items_[i - 1].first != items_[i].first,
                     "duplicate label key '" + items_[i].first + "'");
  }
  if (items_.empty()) return;
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) os << ",";
    os << items_[i].first << "=" << items_[i].second;
  }
  os << "}";
  key_ = os.str();
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    HOLMES_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                     "histogram bounds must be strictly increasing");
  }
  buckets_.assign(bounds_.size() + 1, 0.0);
}

void Histogram::observe(double value, double weight) {
  HOLMES_CHECK_MSG(weight >= 0, "negative histogram weight");
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())] += weight;
  total_weight_ += weight;
  weighted_sum_ += value * weight;
  max_ = std::max(max_, value);
}

double Histogram::mean() const {
  return total_weight_ > 0 ? weighted_sum_ / total_weight_ : 0.0;
}

double Histogram::quantile(double q) const {
  HOLMES_CHECK_MSG(q >= 0 && q <= 1, "quantile must be in [0,1]");
  if (total_weight_ <= 0) return 0.0;
  const double target = q * total_weight_;
  double cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target) {
      return i < bounds_.size() ? bounds_[i] : max_;
    }
  }
  return max_;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  return counters_[{name, labels}];
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  return gauges_[{name, labels}];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels,
                                      std::vector<double> bounds) {
  const Key key{name, labels};
  const auto it = histograms_.find(key);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(key, Histogram(std::move(bounds))).first->second;
}

std::size_t MetricsRegistry::size() const {
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::string MetricsRegistry::to_text() const {
  std::ostringstream os;
  for (const auto& [key, c] : counters_) {
    os << key.first << key.second.key() << " " << c.value() << "\n";
  }
  for (const auto& [key, g] : gauges_) {
    os << key.first << key.second.key() << " " << g.value() << "\n";
  }
  for (const auto& [key, h] : histograms_) {
    os << key.first << key.second.key() << " mean=" << h.mean()
       << " weight=" << h.total_weight() << " max=" << h.max() << "\n";
  }
  return os.str();
}

namespace {

void write_key(std::ostream& out, const MetricsRegistry::Key& key) {
  out << "{\"name\":\"" << json_escape(key.first) << "\",\"labels\":{";
  const auto& items = key.second.items();
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << json_escape(items[i].first) << "\":\""
        << json_escape(items[i].second) << "\"";
  }
  out << "}";
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& out) const {
  out << "{\"counters\":[";
  bool first = true;
  for (const auto& [key, c] : counters_) {
    if (!first) out << ",";
    first = false;
    write_key(out, key);
    out << ",\"value\":" << json_number(c.value())
        << ",\"events\":" << c.events() << "}";
  }
  out << "],\"gauges\":[";
  first = true;
  for (const auto& [key, g] : gauges_) {
    if (!first) out << ",";
    first = false;
    write_key(out, key);
    out << ",\"value\":" << json_number(g.value()) << "}";
  }
  out << "],\"histograms\":[";
  first = true;
  for (const auto& [key, h] : histograms_) {
    if (!first) out << ",";
    first = false;
    write_key(out, key);
    out << ",\"mean\":" << json_number(h.mean())
        << ",\"weight\":" << json_number(h.total_weight())
        << ",\"max\":" << json_number(h.max()) << "}";
  }
  out << "]}";
}

}  // namespace holmes::obs
