#include "obs/recorder.h"

#include <algorithm>

namespace holmes::obs {

namespace {

const char* kind_label(sim::TaskKind kind) {
  switch (kind) {
    case sim::TaskKind::kCompute: return "compute";
    case sim::TaskKind::kTransfer: return "transfer";
    case sim::TaskKind::kNoop: return "noop";
  }
  return "?";
}

Counter& cached(std::vector<Counter*>& cache, std::int32_t id,
                MetricsRegistry& registry, const char* name,
                const char* label_key, const std::string& label_value) {
  const auto index = static_cast<std::size_t>(id);
  if (index >= cache.size()) cache.resize(index + 1, nullptr);
  if (cache[index] == nullptr) {
    cache[index] = &registry.counter(name, Labels{{label_key, label_value}});
  }
  return *cache[index];
}

}  // namespace

Counter& RegistryRecorder::device_busy(const sim::TaskGraph& graph,
                                       sim::ResourceId id) {
  return cached(device_busy_, id, *registry_, "device.busy_seconds", "device",
                graph.resource_name(id));
}

Counter& RegistryRecorder::device_tasks(const sim::TaskGraph& graph,
                                        sim::ResourceId id) {
  return cached(device_tasks_, id, *registry_, "device.tasks", "device",
                graph.resource_name(id));
}

Counter& RegistryRecorder::link_busy(const sim::TaskGraph& graph,
                                     sim::ResourceId id) {
  return cached(link_busy_, id, *registry_, "link.busy_seconds", "link",
                graph.resource_name(id));
}

Counter& RegistryRecorder::link_bytes(const sim::TaskGraph& graph,
                                      sim::ResourceId id) {
  return cached(link_bytes_, id, *registry_, "link.bytes", "link",
                graph.resource_name(id));
}

Counter& RegistryRecorder::comm_bytes(const sim::TaskGraph& graph,
                                      sim::ChannelId id) {
  return cached(comm_bytes_, id, *registry_, "comm.bytes", "comm",
                graph.channel_name(id));
}

Counter& RegistryRecorder::comm_transfers(const sim::TaskGraph& graph,
                                          sim::ChannelId id) {
  return cached(comm_transfers_, id, *registry_, "comm.transfers", "comm",
                graph.channel_name(id));
}

void RegistryRecorder::on_task_scheduled(const sim::TaskGraph& graph,
                                         sim::TaskId id,
                                         const sim::TaskTiming& timing,
                                         SimTime ready_at) {
  const sim::Task& task = graph.tasks()[static_cast<std::size_t>(id)];
  registry_->counter("sim.tasks", Labels{{"kind", kind_label(task.kind)}})
      .add(1);

  const double wait = std::max(0.0, timing.start - ready_at);
  if (task.kind != sim::TaskKind::kNoop) {
    registry_
        ->histogram("sim.queue_wait_seconds",
                    Labels{{"kind", kind_label(task.kind)}},
                    {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0})
        .observe(wait, wait);
  }

  switch (task.kind) {
    case sim::TaskKind::kCompute:
      device_busy(graph, task.resource).add(task.duration);
      device_tasks(graph, task.resource).add(1);
      break;
    case sim::TaskKind::kTransfer: {
      const SimTime serialization =
          std::max(0.0, timing.finish - timing.start - task.latency);
      link_busy(graph, task.src_port).add(serialization);
      if (task.dst_port != task.src_port) {
        link_busy(graph, task.dst_port).add(serialization);
      }
      link_bytes(graph, task.src_port)
          .add(static_cast<double>(task.bytes));
      if (task.channel != sim::kInvalidChannel) {
        comm_bytes(graph, task.channel)
            .add(static_cast<double>(task.bytes));
        comm_transfers(graph, task.channel).add(1);
      }
      break;
    }
    case sim::TaskKind::kNoop:
      break;
  }
}

void RegistryRecorder::on_run_complete(const sim::TaskGraph& graph,
                                       const sim::SimResult& result) {
  (void)graph;
  registry_->gauge("sim.makespan_seconds").set(result.makespan());
}

}  // namespace holmes::obs
