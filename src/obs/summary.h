#pragma once

/// \file summary.h
/// Stable JSON run-summary schema.
///
/// One RunSummary captures everything the benches, tests, and external
/// plotting need to explain a simulated training run: headline metrics,
/// per-device utilization, per-stage pipeline-bubble fractions, per-link
/// busy/contention time, per-communicator traffic, and the exposed-vs-
/// overlapped split of the gradient synchronization (the paper's Fig. 3 /
/// Table 5 story).
///
/// The writer emits keys in a fixed order with "%.12g" numbers, so output
/// is byte-stable for fixed inputs — tests/obs/test_summary.cpp locks the
/// schema with a golden file. Bump `kRunSummarySchema` whenever a field is
/// added, renamed, or re-interpreted.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace holmes::obs {

inline constexpr const char* kRunSummarySchema = "holmes.run_summary.v1";

struct RunSummary {
  // ---- identity ----
  std::string schema = kRunSummarySchema;
  std::string topology;   ///< e.g. "2x8:ib+2x8:roce"
  std::string framework;  ///< planner name, e.g. "Holmes"
  std::string workload;   ///< e.g. "group 3 (GPT 175B)"
  int iterations = 0;     ///< simulated iterations (incl. warm-up)

  /// Measured steady-state window in simulated seconds (post-warm-up).
  double window_begin_s = 0;
  double window_end_s = 0;

  // ---- headline metrics ----
  double iteration_s = 0;
  double tflops_per_gpu = 0;
  double throughput = 0;  ///< samples/s aggregate

  // ---- breakdowns ----
  struct Device {
    std::string name;       ///< resource name, e.g. "gpu3.compute"
    double busy_s = 0;      ///< compute occupancy inside the window
    double waiting_s = 0;   ///< ready-but-blocked (resource contention)
    double utilization = 0; ///< busy / window length
    std::uint64_t tasks = 0;
  };

  struct Stage {
    int stage = 0;
    int devices = 0;              ///< ranks on this physical stage
    int layers = 0;               ///< transformer layers hosted
    double compute_busy_s = 0;    ///< fwd+bwd busy over the measured iteration
    double span_s = 0;            ///< wall span of that compute
    double bubble_fraction = 0;   ///< 1 - busy / (devices * span)
  };

  struct Link {
    std::string name;       ///< port resource name, e.g. "gpu0.InfiniBand.tx"
    double busy_s = 0;      ///< serialization seconds inside the window
    double waiting_s = 0;   ///< transfers blocked on this port (contention)
    double utilization = 0;
    std::int64_t bytes = 0;
    std::uint64_t transfers = 0;
    double effective_gbps = 0;  ///< bytes/busy, as Gbit/s
  };

  struct Comm {
    std::string name;       ///< channel name, e.g. "dp0"
    std::int64_t bytes = 0;
    std::uint64_t transfers = 0;
    double busy_s = 0;
    double span_s = 0;
    double bus_gbps = 0;    ///< bytes/span, as Gbit/s
  };

  /// Exposure split of one communication family over the measured
  /// iteration: `total_s` is the union wall time, `overlapped_s` the part
  /// hidden under forward/backward compute, `exposed_s` the remainder that
  /// directly lengthens the iteration.
  struct Overlap {
    double total_s = 0;
    double overlapped_s = 0;
    double exposed_s = 0;
  };

  std::vector<Device> devices;
  std::vector<Stage> stages;
  std::vector<Link> links;
  std::vector<Comm> comms;
  Overlap grad_sync;
  Overlap param_allgather;
};

/// Writes the summary as a single stable JSON object (no trailing newline).
void write_json(std::ostream& out, const RunSummary& summary);

}  // namespace holmes::obs
