#include "obs/self_profile.h"

#include <ostream>
#include <sstream>

#include "util/json.h"
#include "util/table.h"
#include "util/units.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace holmes::obs {

SelfProfile SelfProfiler::snapshot() const {
  SelfProfile copy = profile_;
  copy.peak_rss_bytes = current_peak_rss_bytes();
  return copy;
}

SelfProfile delta(const SelfProfile& before, const SelfProfile& after) {
  SelfProfile d = after;
  const SelfProfileCounters& b = before.counters;
  SelfProfileCounters& c = d.counters;
  c.tasks_created -= b.tasks_created;
  c.compute_tasks -= b.compute_tasks;
  c.transfer_tasks -= b.transfer_tasks;
  c.noop_tasks -= b.noop_tasks;
  c.deps_added -= b.deps_added;
  c.resources_created -= b.resources_created;
  c.channels_created -= b.channels_created;
  c.executor_runs -= b.executor_runs;
  c.ready_pushes -= b.ready_pushes;
  c.ready_pops -= b.ready_pops;
  // max_ready_queue is a gauge, not a count: the window's peak is the outer
  // peak unless the window raised it, so keep `after`'s value as-is.
  c.events_scheduled -= b.events_scheduled;
  c.events_fired -= b.events_fired;
  c.cost_model_evals -= b.cost_model_evals;
  c.arena_blocks -= b.arena_blocks;
  c.arena_bytes -= b.arena_bytes;
  c.memo_hits -= b.memo_hits;
  c.memo_misses -= b.memo_misses;
  c.memo_bypass -= b.memo_bypass;
  c.scenarios_run -= b.scenarios_run;
  d.phases.graph_build_s -= before.phases.graph_build_s;
  d.phases.event_loop_s -= before.phases.event_loop_s;
  d.phases.accounting_s -= before.phases.accounting_s;
  d.phases.total_s -= before.phases.total_s;
  return d;
}

std::int64_t current_peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::int64_t>(usage.ru_maxrss);
#else
  // Linux reports ru_maxrss in kibibytes.
  return static_cast<std::int64_t>(usage.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

std::string counters_json(const SelfProfileCounters& c) {
  std::ostringstream out;
  out << "{\"tasks_created\":" << c.tasks_created
      << ",\"compute_tasks\":" << c.compute_tasks
      << ",\"transfer_tasks\":" << c.transfer_tasks
      << ",\"noop_tasks\":" << c.noop_tasks
      << ",\"deps_added\":" << c.deps_added
      << ",\"resources_created\":" << c.resources_created
      << ",\"channels_created\":" << c.channels_created
      << ",\"executor_runs\":" << c.executor_runs
      << ",\"ready_pushes\":" << c.ready_pushes
      << ",\"ready_pops\":" << c.ready_pops
      << ",\"max_ready_queue\":" << c.max_ready_queue
      << ",\"events_scheduled\":" << c.events_scheduled
      << ",\"events_fired\":" << c.events_fired
      << ",\"cost_model_evals\":" << c.cost_model_evals
      << ",\"arena_blocks\":" << c.arena_blocks
      << ",\"arena_bytes\":" << c.arena_bytes
      << ",\"memo_hits\":" << c.memo_hits
      << ",\"memo_misses\":" << c.memo_misses
      << ",\"memo_bypass\":" << c.memo_bypass
      << ",\"scenarios_run\":" << c.scenarios_run << "}";
  return out.str();
}

void write_json(std::ostream& out, const SelfProfile& profile) {
  out << "{\"schema\":\"" << kSelfProfileSchema
      << "\",\"counters\":" << counters_json(profile.counters)
      << ",\"phases\":{\"graph_build_s\":"
      << json_number(profile.phases.graph_build_s)
      << ",\"event_loop_s\":" << json_number(profile.phases.event_loop_s)
      << ",\"accounting_s\":" << json_number(profile.phases.accounting_s)
      << ",\"total_s\":" << json_number(profile.phases.total_s)
      << "},\"peak_rss_bytes\":" << profile.peak_rss_bytes << "}";
}

void print_text(std::ostream& out, const SelfProfile& profile) {
  const SelfProfileCounters& c = profile.counters;
  out << "engine self-profile\n"
      << "  phases      build " << format_time(profile.phases.graph_build_s)
      << "   event loop " << format_time(profile.phases.event_loop_s)
      << "   accounting " << format_time(profile.phases.accounting_s)
      << "   total " << format_time(profile.phases.total_s) << "\n"
      << "  tasks       " << c.tasks_created << " created (" << c.compute_tasks
      << " compute, " << c.transfer_tasks << " transfer, " << c.noop_tasks
      << " noop), " << c.deps_added << " deps\n"
      << "  ready queue " << c.ready_pops << " pops, peak depth "
      << c.max_ready_queue << " (" << c.executor_runs << " executor run"
      << (c.executor_runs == 1 ? "" : "s") << ")\n"
      << "  events      " << c.events_scheduled << " scheduled, "
      << c.events_fired << " fired\n"
      << "  arena       " << c.arena_blocks << " blocks, "
      << format_bytes(static_cast<std::int64_t>(c.arena_bytes))
      << " bump-allocated\n"
      << "  memo        " << c.memo_hits << " hits, " << c.memo_misses
      << " misses, " << c.memo_bypass << " bypassed ("
      << c.scenarios_run << " scenarios)\n"
      << "  cost model  " << c.cost_model_evals << " evaluations\n"
      << "  peak RSS    " << format_bytes(profile.peak_rss_bytes) << "\n";
}

}  // namespace holmes::obs
