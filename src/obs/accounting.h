#pragma once

/// \file accounting.h
/// Derived accounting over a simulated TaskGraph + SimResult.
///
/// Everything here is computed *after* the run from the task timings — no
/// instrumentation required — and every quantity can be restricted to a
/// window (e.g. the steady-state iterations, excluding warm-up):
///
///  - per-resource busy / queueing (contention) time and utilization,
///    with resources classified into devices (run compute) and links
///    (carry transfers);
///  - per-channel (communicator) bytes, busy time, wall span, and the
///    effective bus bandwidth those imply;
///  - busy/span aggregates over arbitrary task subsets (used by the core
///    layer for per-stage pipeline-bubble fractions);
///  - interval-union overlap accounting: how much of one task family's
///    wall time is covered by another's — the paper's exposed-vs-hidden
///    grad-sync question (Fig. 3, Table 5).

#include <functional>
#include <limits>
#include <vector>

#include "sim/executor.h"
#include "sim/task_graph.h"

namespace holmes::obs {

/// Half-open observation window [begin, end). The default covers any run.
struct Window {
  SimTime begin = 0;
  SimTime end = std::numeric_limits<SimTime>::infinity();

  SimTime length() const { return end - begin; }
  /// Portion of [s, f) inside the window (>= 0).
  SimTime clip(SimTime s, SimTime f) const;
};

/// Per-resource account. Ports are occupied for a transfer's serialization
/// time only (propagation latency occupies no resource), matching the
/// executor's busy accounting.
struct ResourceAccount {
  sim::ResourceId id = -1;
  std::string name;
  bool is_device = false;  ///< ran at least one compute task
  bool is_link = false;    ///< carried at least one transfer
  SimTime busy = 0;        ///< occupied seconds inside the window
  /// Seconds tasks sat ready-but-blocked waiting for this resource. For a
  /// transfer, the wait is attributed to both of its ports (it blocks on
  /// whichever frees last; per-port attribution is not observable).
  SimTime waiting = 0;
  Bytes bytes = 0;  ///< egress + ingress payload (links only)
  std::size_t tasks = 0;

  double utilization(const Window& window) const {
    return window.length() > 0 ? busy / window.length() : 0.0;
  }
};

/// Accounts every resource of the graph over `window`. Index == ResourceId.
std::vector<ResourceAccount> account_resources(const sim::TaskGraph& graph,
                                               const sim::SimResult& result,
                                               const Window& window = {});

/// Per-channel (communicator) traffic account.
struct ChannelAccount {
  sim::ChannelId id = -1;
  std::string name;
  Bytes bytes = 0;          ///< payload summed over member transfers
  std::size_t transfers = 0;
  SimTime busy = 0;         ///< summed serialization seconds
  SimTime span = 0;         ///< last finish - first start inside the window
  /// Bus-bandwidth view: payload moved per wall-second of channel activity
  /// (bytes / span). 0 when the span is empty.
  double effective_bandwidth() const {
    return span > 0 ? static_cast<double>(bytes) / span : 0.0;
  }
};

/// Accounts every registered channel over `window`. Index == ChannelId.
/// Transfers are attributed to the window they *start* in.
std::vector<ChannelAccount> account_channels(const sim::TaskGraph& graph,
                                             const sim::SimResult& result,
                                             const Window& window = {});

/// Busy/span aggregate of an arbitrary task subset.
struct SpanAccount {
  SimTime busy = 0;   ///< summed clipped durations
  SimTime span = 0;   ///< last finish - first start (clipped), 0 when empty
  SimTime first = 0;  ///< earliest clipped start (0 when empty)
  SimTime last = 0;   ///< latest clipped finish (0 when empty)
  std::size_t tasks = 0;
};

using TaskPredicate = std::function<bool(sim::TaskId, const sim::Task&)>;

/// Aggregates every task matching `predicate` over `window`. Noops are
/// skipped (zero duration, they only distort spans).
SpanAccount account_tasks(const sim::TaskGraph& graph,
                          const sim::SimResult& result,
                          const TaskPredicate& predicate,
                          const Window& window = {});

/// Exposure accounting: of the wall time covered by `span_tasks` (union of
/// their [start, finish) intervals), how much is overlapped by at least one
/// `cover_tasks` interval, and how much is exposed (nothing to hide under)?
struct OverlapAccount {
  SimTime total = 0;       ///< measure of the span-task interval union
  SimTime overlapped = 0;  ///< covered by some cover-task interval
  SimTime exposed = 0;     ///< total - overlapped
};

OverlapAccount account_overlap(const sim::TaskGraph& graph,
                               const sim::SimResult& result,
                               const TaskPredicate& span_tasks,
                               const TaskPredicate& cover_tasks,
                               const Window& window = {});

/// Predicate matching any of the given tags (convenience for the canonical
/// per-iteration tag scheme).
TaskPredicate tag_in(std::vector<sim::TaskTag> tags);

}  // namespace holmes::obs
