#pragma once

/// \file sensitivity.h
/// First-order what-if analysis over a critical path.
///
/// Slack analysis: time the critical path spends inside a class of work
/// (one stage's compute, one NIC class's serialization) is exactly the
/// first-order derivative of the makespan with respect to that class's
/// *relative speed*. Speeding the class up by a factor (1+eps) shrinks
/// every one of its critical segments by the factor, so
///
///     d(makespan) / d(speedup) |_{speedup=1}  =  -seconds_on_path
///     makespan(1+eps) ~ makespan - seconds_on_path * (1 - 1/(1+eps)).
///
/// The prediction is first-order: once a class stops dominating, the path
/// re-routes through other work and the true saving flattens. Tests
/// validate the prediction against brute-force re-simulation for small
/// speedups (tests/core/test_critical_path_e2e.cpp).
///
/// Queue-wait time is credited to the *blocking occupant's* class: the wait
/// ends exactly when the occupant releases the resource, so speeding the
/// occupant up shrinks the wait one-for-one (busy part + wait tail together
/// span the occupant's full serial occupancy). Propagation-latency segments
/// have no speedup-addressable owner and are excluded from every total.

#include <functional>
#include <string>
#include <vector>

#include "obs/critical_path.h"

namespace holmes::obs {

/// Sensitivity of the makespan to speeding up one class of work.
struct WhatIf {
  std::string target;         ///< class name, e.g. "link/Ethernet"
  SimTime critical_s = 0;     ///< path seconds attributable to the class
  double dmakespan_ds = 0;    ///< = -critical_s (per unit relative speedup)

  /// Predicted makespan after speeding the class up by `factor` (> 1).
  SimTime predicted_makespan(SimTime makespan, double factor) const {
    return makespan - predicted_savings(factor);
  }
  /// Predicted saving for a speedup `factor` (exact within the first-order
  /// model: every critical segment of the class scales by 1/factor).
  SimTime predicted_savings(double factor) const {
    return critical_s * (1.0 - 1.0 / factor);
  }
};

/// Maps a segment to the name of its speedup-addressable class, or "" to
/// exclude it. For busy segments the task is the segment's own; for
/// kQueueWait it is the blocking occupant (PathSegment::holder). Latency
/// segments are never offered.
using SegmentClassifier =
    std::function<std::string(const PathSegment&, const sim::Task&)>;

/// Aggregates the path's busy segments into per-class sensitivities,
/// descending by critical_s (ties by name). Classes whose path time is 0
/// are dropped.
std::vector<WhatIf> what_if_sensitivities(const sim::TaskGraph& graph,
                                          const CriticalPath& path,
                                          const SegmentClassifier& classify);

}  // namespace holmes::obs
