#include "obs/sensitivity.h"

#include <algorithm>
#include <map>

namespace holmes::obs {

std::vector<WhatIf> what_if_sensitivities(const sim::TaskGraph& graph,
                                          const CriticalPath& path,
                                          const SegmentClassifier& classify) {
  std::map<std::string, SimTime> totals;
  for (const PathSegment& segment : path.segments) {
    // Busy time is controlled by the segment's own task; queue wait by the
    // blocking occupant (its release frees the resource), so the wait is
    // credited to the occupant's class. Propagation latency has no
    // speedup-addressable owner.
    sim::TaskId source = sim::kInvalidTask;
    if (segment.kind == SegmentKind::kCompute ||
        segment.kind == SegmentKind::kCommBusy) {
      source = segment.task;
    } else if (segment.kind == SegmentKind::kQueueWait) {
      source = segment.holder;
    }
    if (source == sim::kInvalidTask) continue;
    const std::string target = classify(segment, graph.task(source));
    if (target.empty()) continue;
    totals[target] += segment.duration();
  }

  std::vector<WhatIf> result;
  result.reserve(totals.size());
  for (const auto& [target, seconds] : totals) {
    if (seconds <= 0) continue;
    result.push_back({target, seconds, -seconds});
  }
  std::sort(result.begin(), result.end(), [](const WhatIf& a, const WhatIf& b) {
    if (a.critical_s != b.critical_s) return a.critical_s > b.critical_s;
    return a.target < b.target;
  });
  return result;
}

}  // namespace holmes::obs
