#include "obs/critical_path.h"

#include <algorithm>
#include <limits>
#include <ostream>

#include "util/error.h"
#include "util/json.h"
#include "util/table.h"
#include "util/units.h"

namespace holmes::obs {

namespace {

/// The instant `task` releases its serial resources — the executor's own
/// recorded ports_free, so comparisons against start times are exact even
/// when a fault timeline stretched the occupancy beyond bytes/bandwidth.
SimTime release_time(const sim::Task& /*task*/, const sim::TaskTiming& timing) {
  return timing.ports_free;
}

/// When `task`'s dependencies had all finished (the executor's ready time).
SimTime ready_time(const sim::TaskGraph& graph, const sim::SimResult& result,
                   sim::TaskId id) {
  SimTime ready = 0;
  for (sim::TaskId dep : graph.deps(id)) {
    ready = std::max(ready, result.timing(dep).finish);
  }
  return ready;
}

/// One occupancy of a serial resource.
struct Occupancy {
  SimTime acquire = 0;
  SimTime release = 0;
  sim::TaskId task = sim::kInvalidTask;
};

/// Chain element plus how it was entered (walking forward in time).
struct ChainLink {
  sim::TaskId task = sim::kInvalidTask;
  PathEdge edge = PathEdge::kStart;
  /// For kResource: the contended resource the *successor* waited on.
  sim::ResourceId blocked_resource = -1;
};

}  // namespace

const char* to_string(PathEdge edge) {
  switch (edge) {
    case PathEdge::kStart: return "start";
    case PathEdge::kDependency: return "dependency";
    case PathEdge::kResource: return "resource";
  }
  return "?";
}

const char* to_string(SegmentKind kind) {
  switch (kind) {
    case SegmentKind::kCompute: return "compute";
    case SegmentKind::kCommBusy: return "comm";
    case SegmentKind::kCommLatency: return "latency";
    case SegmentKind::kQueueWait: return "wait";
  }
  return "?";
}

CriticalPath extract_critical_path(const sim::TaskGraph& graph,
                                   const sim::SimResult& result) {
  CriticalPath path;
  path.makespan = result.makespan();
  const std::size_t n = graph.task_count();
  if (n == 0) return path;

  // Per-resource occupancy lists in acquire order (ties by task id), for
  // finding the occupant whose release bound a resource-blocked start.
  std::vector<std::vector<Occupancy>> occupancy(graph.resource_count());
  for (std::size_t i = 0; i < n; ++i) {
    const sim::Task& task = graph.tasks()[i];
    const sim::TaskTiming& timing = result.timing(static_cast<sim::TaskId>(i));
    const SimTime release = release_time(task, timing);
    if (task.kind == sim::TaskKind::kCompute) {
      occupancy[static_cast<std::size_t>(task.resource)].push_back(
          {timing.start, release, static_cast<sim::TaskId>(i)});
    } else if (task.kind == sim::TaskKind::kTransfer) {
      occupancy[static_cast<std::size_t>(task.src_port)].push_back(
          {timing.start, release, static_cast<sim::TaskId>(i)});
      if (task.dst_port != task.src_port) {
        occupancy[static_cast<std::size_t>(task.dst_port)].push_back(
            {timing.start, release, static_cast<sim::TaskId>(i)});
      }
    }
  }
  // Prefix maxima of release times let the blocker search below stop as
  // soon as no earlier occupant can still be holding the resource (sorted
  // order only approximates placement order around zero-duration
  // occupancies, so a plain "previous entry" lookup would be unsound).
  std::vector<std::vector<SimTime>> release_prefix_max(graph.resource_count());
  for (std::size_t r = 0; r < occupancy.size(); ++r) {
    auto& list = occupancy[r];
    std::sort(list.begin(), list.end(), [](const Occupancy& a, const Occupancy& b) {
      if (a.acquire != b.acquire) return a.acquire < b.acquire;
      return a.task < b.task;
    });
    auto& prefix = release_prefix_max[r];
    prefix.reserve(list.size());
    SimTime running = -std::numeric_limits<SimTime>::infinity();
    for (const Occupancy& o : list) {
      running = std::max(running, o.release);
      prefix.push_back(running);
    }
  }

  // The occupant of `resource` whose release bound a start at `at`,
  // searching before task `after` in occupancy order. Returns kInvalidTask
  // when no prior occupant released exactly then (the resource was not the
  // binding constraint).
  auto blocking_occupant = [&](sim::ResourceId resource, SimTime at,
                               sim::TaskId after) {
    const auto& list = occupancy[static_cast<std::size_t>(resource)];
    const auto& prefix = release_prefix_max[static_cast<std::size_t>(resource)];
    auto it = std::find_if(list.begin(), list.end(), [after](const Occupancy& o) {
      return o.task == after;
    });
    HOLMES_CHECK(it != list.end());
    while (it != list.begin()) {
      --it;
      const auto index = static_cast<std::size_t>(it - list.begin());
      if (prefix[index] < at) break;  // nothing earlier still holds it
      if (it->release == at) return it->task;
    }
    return sim::kInvalidTask;
  };

  // Terminal task: latest finish, ties to the lowest id.
  sim::TaskId terminal = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (result.timing(static_cast<sim::TaskId>(i)).finish >
        result.timing(terminal).finish) {
      terminal = static_cast<sim::TaskId>(i);
    }
  }

  // Walk the binding constraints backwards from the terminal task. Each
  // link records the edge that bound its own start — i.e. how it is
  // entered when reading the chain forward in time.
  std::vector<ChainLink> chain;  // reverse time order while walking
  sim::TaskId cur = terminal;
  while (true) {
    chain.push_back({cur, PathEdge::kStart, -1});
    HOLMES_CHECK_MSG(chain.size() <= 2 * n + 1,
                     "critical-path walk did not terminate");
    const sim::Task& task = graph.task(cur);
    const sim::TaskTiming& timing = result.timing(cur);
    if (timing.start <= 0) break;

    const SimTime ready = ready_time(graph, result, cur);
    if (ready == timing.start) {
      // Dependency-bound: the latest-finishing dependency (lowest id wins
      // ties) is the predecessor.
      sim::TaskId pred = sim::kInvalidTask;
      for (sim::TaskId dep : graph.deps(cur)) {
        if (result.timing(dep).finish == ready &&
            (pred == sim::kInvalidTask || dep < pred)) {
          pred = dep;
        }
      }
      HOLMES_CHECK(pred != sim::kInvalidTask);
      chain.back().edge = PathEdge::kDependency;
      cur = pred;
      continue;
    }

    // Resource-bound: one of the task's serial resources was held until
    // exactly this start time.
    std::vector<sim::ResourceId> resources;
    if (task.kind == sim::TaskKind::kCompute) {
      resources = {task.resource};
    } else if (task.kind == sim::TaskKind::kTransfer) {
      resources = {task.src_port, task.dst_port};
    }
    sim::TaskId pred = sim::kInvalidTask;
    sim::ResourceId bound_resource = -1;
    for (sim::ResourceId r : resources) {
      const sim::TaskId candidate = blocking_occupant(r, timing.start, cur);
      if (candidate != sim::kInvalidTask) {
        pred = candidate;
        bound_resource = r;
        break;
      }
    }
    HOLMES_CHECK_MSG(pred != sim::kInvalidTask,
                     "no binding constraint found for a delayed task");
    chain.back().edge = PathEdge::kResource;
    chain.back().blocked_resource = bound_resource;
    cur = pred;
  }
  std::reverse(chain.begin(), chain.end());

  // Chain -> segments. Interval k spans [start_k, start_{k+1}) (the last
  // spans to the makespan); split busy / latency / queue-wait parts.
  path.tasks.reserve(chain.size());
  for (const ChainLink& link : chain) path.tasks.push_back(link.task);

  auto emit = [&path](sim::TaskId task, SegmentKind kind, PathEdge edge,
                      SimTime begin, SimTime end, sim::ResourceId resource,
                      sim::TaskId holder) {
    if (end <= begin) return;
    path.segments.push_back({task, kind, edge, begin, end, resource, holder});
  };

  for (std::size_t k = 0; k < chain.size(); ++k) {
    const ChainLink& link = chain[k];
    const sim::Task& task = graph.task(link.task);
    const sim::TaskTiming& timing = result.timing(link.task);
    const bool last = k + 1 == chain.size();
    const SimTime next_bind =
        last ? path.makespan : result.timing(chain[k + 1].task).start;
    const SimTime release = release_time(task, timing);
    const SegmentKind busy_kind = task.kind == sim::TaskKind::kTransfer
                                      ? SegmentKind::kCommBusy
                                      : SegmentKind::kCompute;
    const sim::ResourceId own_resource =
        task.kind == sim::TaskKind::kTransfer ? task.src_port : task.resource;

    if (!last && chain[k + 1].edge == PathEdge::kResource) {
      // The successor sat ready while this task held the resource: the tail
      // of the interval from its ready time is queue wait (contention).
      const SimTime ready_next = ready_time(graph, result, chain[k + 1].task);
      const SimTime wait_begin = std::max(timing.start, ready_next);
      emit(link.task, busy_kind, link.edge, timing.start, wait_begin,
           own_resource, link.task);
      emit(chain[k + 1].task, SegmentKind::kQueueWait, PathEdge::kResource,
           wait_begin, next_bind, chain[k + 1].blocked_resource, link.task);
    } else {
      // Dependency-bound successor (or the terminal task): the interval
      // runs to this task's finish; a transfer contributes its propagation
      // latency after the ports free.
      emit(link.task, busy_kind, link.edge, timing.start,
           std::min(release, next_bind), own_resource, link.task);
      emit(link.task, SegmentKind::kCommLatency, link.edge,
           std::min(release, next_bind), next_bind, own_resource, link.task);
    }
  }
  return path;
}

// ---------------------------------------------------------------------------
// Stable JSON + text report
// ---------------------------------------------------------------------------

namespace {

void field(std::ostream& out, const char* key, const std::string& value,
           bool* first) {
  if (!*first) out << ",";
  *first = false;
  out << "\"" << key << "\":\"" << json_escape(value) << "\"";
}

void field(std::ostream& out, const char* key, double value, bool* first) {
  if (!*first) out << ",";
  *first = false;
  out << "\"" << key << "\":" << json_number(value);
}

void field(std::ostream& out, const char* key, std::uint64_t value,
           bool* first) {
  if (!*first) out << ",";
  *first = false;
  out << "\"" << key << "\":" << value;
}

void field(std::ostream& out, const char* key, std::int32_t value,
           bool* first) {
  if (!*first) out << ",";
  *first = false;
  out << "\"" << key << "\":" << value;
}

}  // namespace

void write_json(std::ostream& out, const CriticalPathSummary& s) {
  out << "{";
  bool first = true;
  field(out, "schema", s.schema, &first);
  field(out, "topology", s.topology, &first);
  field(out, "framework", s.framework, &first);
  field(out, "workload", s.workload, &first);
  field(out, "makespan_s", s.makespan_s, &first);
  field(out, "iteration_s", s.iteration_s, &first);
  field(out, "window_begin_s", s.window_begin_s, &first);
  field(out, "window_end_s", s.window_end_s, &first);
  field(out, "total_segments", s.total_segments, &first);
  out << ",\"buckets\":[";
  for (std::size_t i = 0; i < s.buckets.size(); ++i) {
    const CriticalPathSummary::Bucket& b = s.buckets[i];
    if (i > 0) out << ",";
    out << "{";
    bool f = true;
    field(out, "name", b.name, &f);
    field(out, "kind", b.kind, &f);
    field(out, "seconds", b.seconds, &f);
    field(out, "share", b.share, &f);
    field(out, "segments", b.segments, &f);
    out << "}";
  }
  out << "],\"top_segments\":[";
  for (std::size_t i = 0; i < s.top_segments.size(); ++i) {
    const CriticalPathSummary::Segment& seg = s.top_segments[i];
    if (i > 0) out << ",";
    out << "{";
    bool f = true;
    field(out, "task", seg.task, &f);
    field(out, "label", seg.label, &f);
    field(out, "kind", seg.kind, &f);
    field(out, "edge", seg.edge, &f);
    field(out, "resource", seg.resource, &f);
    field(out, "bucket", seg.bucket, &f);
    field(out, "begin_s", seg.begin_s, &f);
    field(out, "end_s", seg.end_s, &f);
    out << "}";
  }
  out << "],\"sensitivities\":[";
  for (std::size_t i = 0; i < s.sensitivities.size(); ++i) {
    const CriticalPathSummary::Sensitivity& sv = s.sensitivities[i];
    if (i > 0) out << ",";
    out << "{";
    bool f = true;
    field(out, "bucket", sv.bucket, &f);
    field(out, "critical_s", sv.critical_s, &f);
    field(out, "dmakespan_ds", sv.dmakespan_ds, &f);
    field(out, "savings_10pct_s", sv.savings_10pct_s, &f);
    out << "}";
  }
  out << "]}";
}

void print_text(std::ostream& out, const CriticalPathSummary& s,
                std::size_t top) {
  out << s.framework << " / " << s.workload << " on " << s.topology << "\n"
      << "critical path over " << format_time(s.makespan_s) << " makespan ("
      << s.total_segments << " segments)\n";
  const bool windowed = s.window_begin_s > 0 || s.window_end_s < s.makespan_s;
  if (windowed) {
    out << "attribution window [" << json_number(s.window_begin_s) << ", "
        << json_number(s.window_end_s) << "] s\n";
  }
  out << "\n";

  TextTable buckets({"Bucket", "Kind", "Seconds", "Share %", "Segments"});
  for (const CriticalPathSummary::Bucket& b : s.buckets) {
    buckets.add_row({b.name, b.kind, TextTable::num(b.seconds, 4),
                     TextTable::num(b.share * 100, 1),
                     TextTable::num(static_cast<std::int64_t>(b.segments))});
  }
  out << (windowed
              ? "makespan attribution (buckets sum to the window exactly)\n"
              : "makespan attribution (buckets sum to the makespan exactly)\n")
      << buckets.to_string();

  TextTable segments({"Start", "Duration", "Kind", "Bucket", "Task", "Resource"});
  for (std::size_t i = 0; i < std::min(top, s.top_segments.size()); ++i) {
    const CriticalPathSummary::Segment& seg = s.top_segments[i];
    segments.add_row({TextTable::num(seg.begin_s, 4),
                      format_time(seg.end_s - seg.begin_s), seg.kind,
                      seg.bucket, seg.label, seg.resource});
  }
  out << "\nlongest segments (" << std::min(top, s.top_segments.size())
      << " of " << s.total_segments << ")\n"
      << segments.to_string();

  TextTable whatif({"Speed up", "On path", "d(makespan)/d(speed)", "10% => saves"});
  for (std::size_t i = 0; i < std::min(top, s.sensitivities.size()); ++i) {
    const CriticalPathSummary::Sensitivity& sv = s.sensitivities[i];
    whatif.add_row({sv.bucket, format_time(sv.critical_s),
                    TextTable::num(sv.dmakespan_ds, 4),
                    format_time(sv.savings_10pct_s)});
  }
  out << "\nwhat-if sensitivities (first-order, slack analysis)\n"
      << whatif.to_string();
}

}  // namespace holmes::obs
