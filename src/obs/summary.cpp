#include "obs/summary.h"

#include <ostream>

#include "util/json.h"

namespace holmes::obs {

namespace {

void field(std::ostream& out, const char* key, const std::string& value,
           bool* first) {
  if (!*first) out << ",";
  *first = false;
  out << "\"" << key << "\":\"" << json_escape(value) << "\"";
}

void field(std::ostream& out, const char* key, double value, bool* first) {
  if (!*first) out << ",";
  *first = false;
  out << "\"" << key << "\":" << json_number(value);
}

void field(std::ostream& out, const char* key, std::int64_t value,
           bool* first) {
  if (!*first) out << ",";
  *first = false;
  out << "\"" << key << "\":" << value;
}

void field(std::ostream& out, const char* key, std::uint64_t value,
           bool* first) {
  if (!*first) out << ",";
  *first = false;
  out << "\"" << key << "\":" << value;
}

void field(std::ostream& out, const char* key, int value, bool* first) {
  field(out, key, static_cast<std::int64_t>(value), first);
}

void write_overlap(std::ostream& out, const char* key,
                   const RunSummary::Overlap& o, bool* first) {
  if (!*first) out << ",";
  *first = false;
  out << "\"" << key << "\":{";
  bool f = true;
  field(out, "total_s", o.total_s, &f);
  field(out, "overlapped_s", o.overlapped_s, &f);
  field(out, "exposed_s", o.exposed_s, &f);
  out << "}";
}

}  // namespace

void write_json(std::ostream& out, const RunSummary& s) {
  out << "{";
  bool first = true;
  field(out, "schema", s.schema, &first);
  field(out, "topology", s.topology, &first);
  field(out, "framework", s.framework, &first);
  field(out, "workload", s.workload, &first);
  field(out, "iterations", s.iterations, &first);
  field(out, "window_begin_s", s.window_begin_s, &first);
  field(out, "window_end_s", s.window_end_s, &first);
  field(out, "iteration_s", s.iteration_s, &first);
  field(out, "tflops_per_gpu", s.tflops_per_gpu, &first);
  field(out, "throughput", s.throughput, &first);

  out << ",\"devices\":[";
  for (std::size_t i = 0; i < s.devices.size(); ++i) {
    const RunSummary::Device& d = s.devices[i];
    if (i > 0) out << ",";
    out << "{";
    bool f = true;
    field(out, "name", d.name, &f);
    field(out, "busy_s", d.busy_s, &f);
    field(out, "waiting_s", d.waiting_s, &f);
    field(out, "utilization", d.utilization, &f);
    field(out, "tasks", d.tasks, &f);
    out << "}";
  }
  out << "],\"stages\":[";
  for (std::size_t i = 0; i < s.stages.size(); ++i) {
    const RunSummary::Stage& st = s.stages[i];
    if (i > 0) out << ",";
    out << "{";
    bool f = true;
    field(out, "stage", st.stage, &f);
    field(out, "devices", st.devices, &f);
    field(out, "layers", st.layers, &f);
    field(out, "compute_busy_s", st.compute_busy_s, &f);
    field(out, "span_s", st.span_s, &f);
    field(out, "bubble_fraction", st.bubble_fraction, &f);
    out << "}";
  }
  out << "],\"links\":[";
  for (std::size_t i = 0; i < s.links.size(); ++i) {
    const RunSummary::Link& l = s.links[i];
    if (i > 0) out << ",";
    out << "{";
    bool f = true;
    field(out, "name", l.name, &f);
    field(out, "busy_s", l.busy_s, &f);
    field(out, "waiting_s", l.waiting_s, &f);
    field(out, "utilization", l.utilization, &f);
    field(out, "bytes", l.bytes, &f);
    field(out, "transfers", l.transfers, &f);
    field(out, "effective_gbps", l.effective_gbps, &f);
    out << "}";
  }
  out << "],\"comms\":[";
  for (std::size_t i = 0; i < s.comms.size(); ++i) {
    const RunSummary::Comm& c = s.comms[i];
    if (i > 0) out << ",";
    out << "{";
    bool f = true;
    field(out, "name", c.name, &f);
    field(out, "bytes", c.bytes, &f);
    field(out, "transfers", c.transfers, &f);
    field(out, "busy_s", c.busy_s, &f);
    field(out, "span_s", c.span_s, &f);
    field(out, "bus_gbps", c.bus_gbps, &f);
    out << "}";
  }
  out << "]";
  write_overlap(out, "grad_sync", s.grad_sync, &first);
  write_overlap(out, "param_allgather", s.param_allgather, &first);
  out << "}";
}

}  // namespace holmes::obs
