#pragma once

/// \file timeline.h
/// Exact time-resolved telemetry derived from executed TaskTiming records.
///
/// Every artifact the observability layer emitted before this file is an
/// aggregate over the whole run (or a single window): utilizations, bubble
/// fractions, critical-path buckets. This file adds the *time axis back*:
///
///  - per-resource busy occupancy (0/1 for a serial resource) and
///    ready-queue depth as piecewise-constant step series;
///  - per-channel in-flight bytes and cumulative delivered-byte curves;
///  - per-NIC-class busy-port counts with saturation-interval extraction
///    (maximal intervals where at least `threshold` of the class's ports
///    are simultaneously busy — the paper's Fig. 3 "the Ethernet fallback
///    is the binding constraint *while* grad-sync is in flight" made
///    machine-checkable);
///  - effective-vs-nominal rate overlays wherever a sim::RateTimeline
///    degraded a resource (fault windows become visible dips);
///  - per-link "top talker" ranking and per-channel burst/peak detection.
///
/// Exactness contract: every aggregate (busy seconds, waiting seconds,
/// bytes, task counts) is copied from obs/accounting.h — the same per-task
/// arithmetic in the same task-id iteration order — so the timeline's
/// totals equal the accounting layer's *bit for bit*. Occupancy intervals
/// use the executor's `ports_free` stretching via serialization_of, never a
/// recomputed bytes/bandwidth. The step series are built from four
/// (key, id)-sorted views of the executed tasks — by start, by busy end, by
/// ready instant, by channel finish — followed by linear walks and
/// two-pointer merges; every delta is integer-valued, so the merged running
/// sums match an id-ordered from_deltas construction bit for bit.
/// Extraction is optionally fanned across threads per sort/output slot and
/// stays byte-identical because each slot is an independent pure function
/// of its inputs.

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/accounting.h"
#include "sim/executor.h"
#include "sim/task_graph.h"

namespace holmes::sim {
class RateTimeline;
}  // namespace holmes::sim

namespace holmes::obs {

/// Piecewise-constant step series: value is values()[i] on
/// [times()[i], times()[i+1]) and values().back() from times().back() on;
/// 0.0 before the first breakpoint (and everywhere when empty).
class StepSeries {
 public:
  StepSeries() = default;

  /// Builds from (time, delta) events: the value at t is the sum of every
  /// delta stamped <= t. Events are stable-sorted by time (insertion order
  /// breaks ties, keeping construction deterministic for the id-ordered
  /// passes that feed it); equal-time deltas coalesce into one breakpoint
  /// and breakpoints that do not change the value are dropped.
  static StepSeries from_deltas(std::vector<std::pair<SimTime, double>> deltas);

  /// Builds from explicit breakpoints: `values[i]` holds on
  /// [times[i], times[i+1]). Times must be strictly increasing.
  static StepSeries from_levels(std::vector<SimTime> times,
                                std::vector<double> values);

  bool empty() const { return times_.empty(); }
  std::size_t breakpoints() const { return times_.size(); }
  const std::vector<SimTime>& times() const { return times_; }
  const std::vector<double>& values() const { return values_; }

  /// Value at time `t` (0.0 before the first breakpoint).
  double value_at(SimTime t) const;

  /// Maximum value attained anywhere in [begin, end); 0 when the window is
  /// empty or the series is silent there.
  double maximum(SimTime begin, SimTime end) const;

  /// First instant in [begin, end) at which `maximum` is attained (begin
  /// when the series is silent).
  SimTime maximum_at(SimTime begin, SimTime end) const;

  /// Integral of the series over [begin, end).
  double integral(SimTime begin, SimTime end) const;

  /// Time-weighted mean over [begin, end); 0 for an empty window.
  double average(SimTime begin, SimTime end) const;

  /// `buckets` time-weighted means tiling [begin, end) into equal buckets.
  std::vector<double> bucketize(SimTime begin, SimTime end,
                                int buckets) const;

  /// Maximal intervals inside [begin, end) where the value is >=
  /// `threshold`, in time order.
  std::vector<std::pair<SimTime, SimTime>> intervals_at_least(
      double threshold, SimTime begin, SimTime end) const;

 private:
  std::vector<SimTime> times_;
  std::vector<double> values_;
};

/// Classifies a resource name into a reporting class (e.g. "Ethernet",
/// "InfiniBand", "compute"). Supplied by the core layer, which owns the
/// naming scheme; an empty function classifies everything as "unknown".
using ResourceClassifier = std::function<std::string(const std::string&)>;

struct TimelineOptions {
  /// Observation window for the aggregates, saturation extraction, and
  /// derived analysis. The step series always cover the whole run.
  Window window = {};
  /// An instant is *saturated* for a class when at least this fraction of
  /// the class's ports are simultaneously busy (1.0 = every port).
  double saturation_threshold = 1.0;
  /// Extraction threads; 1 = serial. Output is byte-identical regardless.
  int threads = 1;
  /// Precomputed accounting aggregates to copy instead of re-deriving them.
  /// The exactness contract is on the caller: these must come from
  /// account_resources / account_channels over this extraction's *resolved*
  /// window (see Timeline::window), or the copied totals will not match the
  /// step series. Null (the default): accounting runs inside extraction.
  const std::vector<ResourceAccount>* resource_accounts = nullptr;
  const std::vector<ChannelAccount>* channel_accounts = nullptr;
};

struct ResourceTimeline {
  sim::ResourceId id = -1;
  std::string name;
  std::string nic_class;   ///< classifier output ("compute" for devices)
  bool is_device = false;
  bool is_link = false;
  SimTime busy_total = 0;     ///< accounting-exact, window-clipped
  SimTime waiting_total = 0;  ///< accounting-exact, window-clipped
  Bytes bytes = 0;
  std::size_t tasks = 0;
  StepSeries busy;   ///< 0/1 occupancy (serial resources never overlap)
  StepSeries queue;  ///< ready-but-blocked task count for this resource
};

struct ChannelTimeline {
  sim::ChannelId id = -1;
  std::string name;
  Bytes bytes = 0;  ///< accounting-exact, start-in-window attribution
  std::size_t transfers = 0;
  SimTime busy_total = 0;
  StepSeries in_flight;   ///< bytes in flight (start..finish of members)
  StepSeries cumulative;  ///< bytes delivered (steps up at each finish)
  double peak_in_flight = 0;  ///< max in-flight bytes inside the window
  SimTime peak_at = 0;        ///< first instant the peak is attained
};

struct ClassTimeline {
  std::string nic_class;
  std::size_t ports = 0;   ///< link resources in the class
  SimTime busy_total = 0;  ///< sum of member busy totals, id order
  StepSeries busy_ports;   ///< simultaneously busy port count
  /// Maximal saturated intervals inside the window (see
  /// TimelineOptions::saturation_threshold), and their total measure.
  std::vector<std::pair<SimTime, SimTime>> saturated;
  SimTime saturated_total = 0;
};

struct RateOverlay {
  sim::ResourceId resource = -1;
  std::string name;
  StepSeries effective;       ///< min(1, compound factor), breakpoint-exact
  SimTime degraded_total = 0; ///< seconds with effective rate < 1 in-window
};

struct TopTalker {
  sim::ResourceId resource = -1;
  std::string name;
  std::string nic_class;
  Bytes bytes = 0;
  SimTime busy = 0;
  double share = 0;  ///< bytes / total link bytes (0 when no link traffic)
};

struct Timeline {
  Window window;        ///< resolved: end clipped to the makespan
  SimTime makespan = 0;
  std::vector<ResourceTimeline> resources;  ///< index == ResourceId
  std::vector<ChannelTimeline> channels;    ///< index == ChannelId
  std::vector<ClassTimeline> classes;       ///< link classes, sorted by name
  std::vector<RateOverlay> overlays;        ///< resources a rate window hit
  std::vector<TopTalker> top_talkers;       ///< links by bytes desc, id asc
};

/// Extracts the full time-resolved telemetry of one executed run. `rates`
/// (optional) contributes the effective-rate overlays; `classify` names the
/// NIC class of each resource.
Timeline extract_timeline(const sim::TaskGraph& graph,
                          const sim::SimResult& result,
                          const TimelineOptions& options = {},
                          const ResourceClassifier& classify = {},
                          const sim::RateTimeline* rates = nullptr);

}  // namespace holmes::obs
