#pragma once

/// \file metrics.h
/// Lightweight metrics registry for the simulation substrate.
///
/// Instruments are keyed by (name, label set); labels identify the entity
/// being measured (device, link, communicator, task kind). The registry
/// hands out stable references, so hot paths — the executor's event loop —
/// look an instrument up once and then update it with a plain add/set
/// (see obs/recorder.h). Iteration order is deterministic (lexicographic
/// by name, then label key), which keeps every export reproducible.
///
/// Three instrument kinds, mirroring what the paper's analysis needs:
///  - Counter: monotone accumulations (bytes moved, tasks completed,
///    busy-seconds).
///  - Gauge: last-written values (makespan, in-flight tasks).
///  - Histogram: time-weighted distributions — each observation carries a
///    weight in seconds, so mean() answers "averaged over *time*, what was
///    the queueing delay", not "averaged over events".

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace holmes::obs {

/// Immutable-after-construction sorted label set, e.g.
/// {device=gpu0, kind=compute}.
class Labels {
 public:
  Labels() = default;
  Labels(std::initializer_list<std::pair<std::string, std::string>> kv);

  const std::vector<std::pair<std::string, std::string>>& items() const {
    return items_;
  }
  bool empty() const { return items_.empty(); }

  /// Canonical rendering "{a=b,c=d}" ("" when empty); doubles as the sort /
  /// identity key.
  const std::string& key() const { return key_; }

  bool operator==(const Labels& other) const { return key_ == other.key_; }
  bool operator<(const Labels& other) const { return key_ < other.key_; }

 private:
  std::vector<std::pair<std::string, std::string>> items_;
  std::string key_;
};

class Counter {
 public:
  void add(double delta) {
    value_ += delta;
    ++events_;
  }
  double value() const { return value_; }
  std::uint64_t events() const { return events_; }

 private:
  double value_ = 0;
  std::uint64_t events_ = 0;
};

class Gauge {
 public:
  void set(double value) { value_ = value; }
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Weighted histogram with explicit upper bounds; observations above the
/// last bound land in a +Inf overflow bucket.
class Histogram {
 public:
  /// `bounds` must be strictly increasing (may be empty: distribution-free
  /// mean/weight tracking only).
  explicit Histogram(std::vector<double> bounds = {});

  void observe(double value, double weight = 1.0);

  double total_weight() const { return total_weight_; }
  double weighted_sum() const { return weighted_sum_; }
  /// Weight-averaged observation; 0 when nothing was observed.
  double mean() const;
  double max() const { return max_; }

  const std::vector<double>& bounds() const { return bounds_; }
  /// One weight per bound plus the overflow bucket (size bounds()+1).
  const std::vector<double>& bucket_weights() const { return buckets_; }

  /// Smallest bound whose cumulative weight covers quantile `q` in [0,1];
  /// returns max() for the overflow bucket and 0 on an empty histogram.
  double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<double> buckets_;
  double total_weight_ = 0;
  double weighted_sum_ = 0;
  double max_ = 0;
};

class MetricsRegistry {
 public:
  /// Get-or-create. References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  /// `bounds` is consulted only when the histogram is first created.
  Histogram& histogram(const std::string& name, const Labels& labels = {},
                       std::vector<double> bounds = {});

  std::size_t size() const;

  /// "name{labels} value" per line, sorted — the debug/test export.
  std::string to_text() const;

  /// Stable machine-readable export:
  /// {"counters":[{"name":..,"labels":{..},"value":..,"events":..},...],
  ///  "gauges":[...],"histograms":[...]}.
  void write_json(std::ostream& out) const;

  using Key = std::pair<std::string, Labels>;
  const std::map<Key, Counter>& counters() const { return counters_; }
  const std::map<Key, Gauge>& gauges() const { return gauges_; }
  const std::map<Key, Histogram>& histograms() const { return histograms_; }

 private:
  std::map<Key, Counter> counters_;
  std::map<Key, Gauge> gauges_;
  std::map<Key, Histogram> histograms_;
};

}  // namespace holmes::obs
