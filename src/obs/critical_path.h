#pragma once

/// \file critical_path.h
/// Critical-path extraction and makespan attribution over a finished run.
///
/// The executor's schedule is fully determined by two constraint families:
/// dependency edges (a task starts no earlier than its latest-finishing
/// dependency) and per-resource serial order (a task starts no earlier than
/// its resources free up). The *critical path* is the chain of tasks walked
/// backwards from the makespan task along whichever constraint was binding
/// at each step. Because every task's start time equals one of its
/// constraint times exactly, consecutive chain elements tile the timeline:
/// the segment list produced here partitions [0, makespan] with no gaps and
/// no overlaps, so segment durations sum to the makespan *exactly* — the
/// invariant `holmes_cli explain` and the tests rely on.
///
/// Each chain interval is split into up to three segments:
///  - kCompute / kCommBusy: the chain task occupying its resource,
///  - kCommLatency: a transfer's propagation latency (the wire is busy but
///    no port is), only when the successor waited for the full finish,
///  - kQueueWait: the tail of an interval during which the *next* chain
///    task was ready but its resource was still held — resource contention
///    made visible. Wait is attributed to the final blocking occupant; a
///    task blocked across several occupants shows the earlier portion under
///    those occupants' own segments.
///
/// Attribution to buckets (per-stage compute, per-NIC-class communication,
/// queue wait) is a layer above: see CriticalPathSummary and
/// core::build_critical_path_summary, which add the plan context this
/// graph-level module deliberately knows nothing about.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/executor.h"
#include "sim/task_graph.h"

namespace holmes::obs {

/// How one chain element was reached from its predecessor (walking forward
/// in time): it was the first task, its binding constraint was a dependency
/// edge, or its resource was held by the previous occupant.
enum class PathEdge : std::uint8_t { kStart, kDependency, kResource };

/// What a segment's span of the timeline was spent on.
enum class SegmentKind : std::uint8_t {
  kCompute,      ///< a compute task occupying its device
  kCommBusy,     ///< a transfer's serialization on its ports
  kCommLatency,  ///< a transfer's propagation latency
  kQueueWait,    ///< the next chain task sat ready, blocked on a resource
};

const char* to_string(PathEdge edge);
const char* to_string(SegmentKind kind);

struct PathSegment {
  sim::TaskId task = sim::kInvalidTask;  ///< chain task this span belongs to
  SegmentKind kind = SegmentKind::kCompute;
  PathEdge edge = PathEdge::kStart;  ///< how `task` entered the chain
  SimTime begin = 0;
  SimTime end = 0;
  /// Resource the span occupied (compute resource, transfer src port) or,
  /// for kQueueWait, the contended resource the next task waited on.
  sim::ResourceId resource = -1;
  /// The task whose execution controls this span's end: the span's own task
  /// for busy/latency segments; for kQueueWait, the blocking occupant whose
  /// release freed the resource. Sensitivity analysis credits wait time to
  /// the holder's class — speeding the holder shrinks the wait one-for-one.
  sim::TaskId holder = sim::kInvalidTask;

  SimTime duration() const { return end - begin; }
};

struct CriticalPath {
  std::vector<PathSegment> segments;  ///< time order; tiles [0, makespan]
  SimTime makespan = 0;
  /// Distinct chain tasks in time order (one task may span several
  /// segments). Handy for trace emphasis (TraceOptions::critical_tasks).
  std::vector<sim::TaskId> tasks;
};

/// Extracts the critical path of `result` over `graph`. Deterministic: ties
/// (several constraints binding at the same instant) prefer dependency
/// edges over resource order, then the lowest task id.
CriticalPath extract_critical_path(const sim::TaskGraph& graph,
                                   const sim::SimResult& result);

// ---------------------------------------------------------------------------
// Stable summary schema (holmes.critical_path.v1)
// ---------------------------------------------------------------------------

inline constexpr const char* kCriticalPathSchema = "holmes.critical_path.v1";

/// Everything `holmes_cli explain` reports: the attributed buckets, the
/// dominant segments, and the first-order what-if sensitivities. Built from
/// a CriticalPath plus plan context by core::build_critical_path_summary;
/// written as stable JSON by write_json below (fixed key order, "%.12g"
/// numbers — byte-stable for fixed inputs, like the run summary).
struct CriticalPathSummary {
  std::string schema = kCriticalPathSchema;
  std::string topology;
  std::string framework;
  std::string workload;
  double makespan_s = 0;
  double iteration_s = 0;
  /// Attribution window (defaults to [0, makespan]). Buckets partition the
  /// critical path *clipped to this window*, so their seconds sum to
  /// window_end_s - window_begin_s.
  double window_begin_s = 0;
  double window_end_s = 0;

  /// One attribution bucket: a named share of the makespan. Buckets
  /// partition the (windowed) critical path, so their seconds sum to the
  /// window span — the full makespan by default.
  struct Bucket {
    std::string name;    ///< e.g. "compute/stage0", "comm/Ethernet/pp p2p"
    std::string kind;    ///< "compute" | "comm" | "latency" | "wait"
    double seconds = 0;
    double share = 0;    ///< seconds / makespan
    std::uint64_t segments = 0;
  };

  /// One reported segment (the longest `top` of the full path).
  struct Segment {
    std::int32_t task = -1;
    std::string label;
    std::string kind;      ///< SegmentKind as text
    std::string edge;      ///< PathEdge as text
    std::string resource;  ///< resource name
    std::string bucket;    ///< owning attribution bucket
    double begin_s = 0;
    double end_s = 0;
  };

  /// First-order what-if: speeding the bucket's resource class up by a
  /// factor (1+eps) removes ~eps * critical_s from the makespan, i.e.
  /// d(makespan)/d(relative speedup) = -critical_s. Queue-wait time counts
  /// toward the *blocking occupant's* class (its release ends the wait);
  /// latency is not speedup-addressable and carries no sensitivity entry.
  struct Sensitivity {
    std::string bucket;
    double critical_s = 0;       ///< seconds of the path in this bucket
    double dmakespan_ds = 0;     ///< = -critical_s
    double savings_10pct_s = 0;  ///< predicted saving for a 10% speedup
  };

  std::vector<Bucket> buckets;        ///< descending seconds
  std::vector<Segment> top_segments;  ///< descending duration
  std::vector<Sensitivity> sensitivities;  ///< descending critical_s
  std::uint64_t total_segments = 0;   ///< before the top-N cut
};

/// Writes the summary as a single stable JSON object (no trailing newline).
void write_json(std::ostream& out, const CriticalPathSummary& summary);

/// Human-readable report: bucket table, top segments, what-if table.
void print_text(std::ostream& out, const CriticalPathSummary& summary,
                std::size_t top = 16);

}  // namespace holmes::obs
