#include "obs/timeline.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <utility>

#include "sim/rate_timeline.h"
#include "sim/scenario_runner.h"
#include "util/error.h"

namespace holmes::obs {

namespace {

/// Serialization time of a transfer as the executor scheduled it — the
/// ports' occupancy interval, including any RateTimeline stretching (the
/// executor folded it into finish/ports_free; recomputing bytes/bandwidth
/// would be wrong under a fault window). Identical to the accounting
/// layer's helper.
SimTime serialization_of(const sim::Task& task,
                         const sim::TaskTiming& timing) {
  return std::max(0.0, timing.finish - timing.start - task.latency);
}

using Deltas = std::vector<std::pair<SimTime, double>>;

/// Visits the constant segments of a step series restricted to [begin, end).
template <typename Fn>
void for_each_segment(const std::vector<SimTime>& times,
                      const std::vector<double>& values, SimTime begin,
                      SimTime end, Fn&& fn) {
  if (end <= begin) return;
  if (times.empty()) {
    fn(begin, end, 0.0);
    return;
  }
  std::size_t i = static_cast<std::size_t>(
      std::upper_bound(times.begin(), times.end(), begin) - times.begin());
  SimTime lo = begin;
  while (lo < end) {
    const SimTime hi = i < times.size() ? std::min(times[i], end) : end;
    const double value = i == 0 ? 0.0 : values[i - 1];
    if (hi > lo) fn(lo, hi, value);
    lo = hi;
    if (i >= times.size()) break;
    ++i;
  }
}

/// One occupancy interval of a serial resource.
struct Interval {
  SimTime begin = 0;
  SimTime end = 0;
};

/// (time, bytes) events of one channel, in emission (task-id) order.
using ByteEvents = std::vector<std::pair<SimTime, double>>;

/// LSD radix sort on the IEEE-754 bit patterns (sign-flipped so the integer
/// order matches the double order for every finite value, -0.0 included).
/// Comparison sorts run at ~n log n branchy compares; the big per-class
/// event lists here are worth the four counting passes instead.
void radix_sort_times(std::vector<SimTime>& v) {
  const std::size_t n = v.size();
  // Reused per worker thread: the big per-class lists would otherwise pay
  // fresh page faults on every call.
  thread_local std::vector<std::uint64_t> keys;
  thread_local std::vector<std::uint64_t> scratch;
  keys.resize(n);
  scratch.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(SimTime));
    std::memcpy(&bits, &v[i], sizeof(bits));
    bits ^= (bits >> 63) != 0 ? ~std::uint64_t{0} : std::uint64_t{1} << 63;
    keys[i] = bits;
  }
  thread_local std::vector<std::uint64_t> counts(1 << 16);
  for (int pass = 0; pass < 4; ++pass) {
    const int shift = pass * 16;
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      counts[(keys[i] >> shift) & 0xFFFF]++;
    }
    std::uint64_t offset = 0;
    for (std::uint64_t& c : counts) {
      const std::uint64_t count = c;
      c = offset;
      offset += count;
    }
    for (std::size_t i = 0; i < n; ++i) {
      scratch[counts[(keys[i] >> shift) & 0xFFFF]++] = keys[i];
    }
    keys.swap(scratch);
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t bits = keys[i];
    bits ^= (bits >> 63) != 0 ? std::uint64_t{1} << 63 : ~std::uint64_t{0};
    std::memcpy(&v[i], &bits, sizeof(bits));
  }
}

/// Time-sorts an event list unless the id-ordered emission already left it
/// sorted (graph builders lay tasks down in rough time order, so the check
/// usually saves the sort). Every consumer below coalesces equal-time
/// events into one commutative integer-valued sum, so the output does not
/// depend on how — or whether — the equal-key sort ran.
void sort_times(std::vector<SimTime>& v) {
  if (std::is_sorted(v.begin(), v.end())) return;
  if (v.size() >= 4096) {
    radix_sort_times(v);
  } else {
    std::sort(v.begin(), v.end());
  }
}

void sort_events(ByteEvents& v) {
  const auto before = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  if (!std::is_sorted(v.begin(), v.end(), before)) {
    std::sort(v.begin(), v.end(), before);
  }
}

void sort_intervals(std::vector<Interval>& v) {
  const auto before = [](const Interval& a, const Interval& b) {
    return a.begin < b.begin;
  };
  if (!std::is_sorted(v.begin(), v.end(), before)) {
    std::stable_sort(v.begin(), v.end(), before);
  }
}

/// Merges a +1 and a -1 event stream (each time-sorted) into the step
/// series StepSeries::from_deltas would build from the union, in linear
/// time. The deltas are integer-valued, so the running sum is bit-exact
/// regardless of equal-time consumption order.
StepSeries merge_counts(const std::vector<SimTime>& up,
                        const std::vector<SimTime>& down) {
  std::vector<SimTime> times;
  std::vector<double> values;
  times.reserve(up.size() + down.size());
  values.reserve(up.size() + down.size());
  std::size_t i = 0;
  std::size_t j = 0;
  double value = 0;
  while (i < up.size() || j < down.size()) {
    const SimTime t = j >= down.size() ? up[i]
                      : i >= up.size() ? down[j]
                                       : std::min(up[i], down[j]);
    while (i < up.size() && up[i] == t) {
      value += 1.0;
      ++i;
    }
    while (j < down.size() && down[j] == t) {
      value -= 1.0;
      ++j;
    }
    times.push_back(t);
    values.push_back(value);
  }
  return StepSeries::from_levels(std::move(times), std::move(values));
}

/// merge_counts with per-event byte weights (channel in-flight curves).
/// Byte counts are integers well under 2^53, so the running sum stays
/// exact here too.
StepSeries merge_bytes(const ByteEvents& up, const ByteEvents& down) {
  std::vector<SimTime> times;
  std::vector<double> values;
  times.reserve(up.size() + down.size());
  values.reserve(up.size() + down.size());
  std::size_t i = 0;
  std::size_t j = 0;
  double value = 0;
  while (i < up.size() || j < down.size()) {
    const SimTime t = j >= down.size() ? up[i].first
                      : i >= up.size() ? down[j].first
                                       : std::min(up[i].first, down[j].first);
    while (i < up.size() && up[i].first == t) {
      value += up[i].second;
      ++i;
    }
    while (j < down.size() && down[j].first == t) {
      value -= down[j].second;
      ++j;
    }
    times.push_back(t);
    values.push_back(value);
  }
  return StepSeries::from_levels(std::move(times), std::move(values));
}

/// Running sum of a time-sorted byte-event stream (cumulative delivery).
StepSeries accumulate_bytes(const ByteEvents& events) {
  std::vector<SimTime> times;
  std::vector<double> values;
  times.reserve(events.size());
  values.reserve(events.size());
  double value = 0;
  std::size_t i = 0;
  while (i < events.size()) {
    const SimTime t = events[i].first;
    while (i < events.size() && events[i].first == t) {
      value += events[i].second;
      ++i;
    }
    times.push_back(t);
    values.push_back(value);
  }
  return StepSeries::from_levels(std::move(times), std::move(values));
}

/// 0/1 occupancy of a serial resource from its start-sorted intervals. The
/// executor never overlaps tasks on one resource, so the series falls out
/// of a single walk that coalesces back-to-back intervals (exactly the
/// breakpoints from_deltas keeps). Should the disjointness invariant ever
/// break, the general delta path reproduces from_deltas semantics bit for
/// bit.
StepSeries busy_from_intervals(const std::vector<Interval>& intervals) {
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    if (intervals[i].begin < intervals[i - 1].end) {
      Deltas deltas;
      deltas.reserve(intervals.size() * 2);
      for (const Interval& w : intervals) {
        deltas.emplace_back(w.begin, 1.0);
        deltas.emplace_back(w.end, -1.0);
      }
      return StepSeries::from_deltas(std::move(deltas));
    }
  }
  std::vector<SimTime> times;
  std::vector<double> values;
  times.reserve(intervals.size() * 2);
  values.reserve(intervals.size() * 2);
  std::size_t i = 0;
  while (i < intervals.size()) {
    const SimTime begin = intervals[i].begin;
    SimTime end = intervals[i].end;
    ++i;
    while (i < intervals.size() && intervals[i].begin == end) {
      end = intervals[i].end;
      ++i;
    }
    times.push_back(begin);
    values.push_back(1.0);
    times.push_back(end);
    values.push_back(0.0);
  }
  return StepSeries::from_levels(std::move(times), std::move(values));
}

}  // namespace

StepSeries StepSeries::from_deltas(
    std::vector<std::pair<SimTime, double>> deltas) {
  StepSeries series;
  if (deltas.empty()) return series;
  // Stable by time: insertion order (one deterministic id-ordered pass)
  // breaks ties, so the summation order — and with it the exact floating-
  // point value at every breakpoint — is reproducible.
  std::stable_sort(deltas.begin(), deltas.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  series.times_.reserve(deltas.size());
  series.values_.reserve(deltas.size());
  double value = 0;
  std::size_t i = 0;
  while (i < deltas.size()) {
    const SimTime at = deltas[i].first;
    while (i < deltas.size() && deltas[i].first == at) {
      value += deltas[i].second;
      ++i;
    }
    const double previous =
        series.values_.empty() ? 0.0 : series.values_.back();
    if (value == previous) continue;  // breakpoint changes nothing
    series.times_.push_back(at);
    series.values_.push_back(value);
  }
  return series;
}

StepSeries StepSeries::from_levels(std::vector<SimTime> times,
                                   std::vector<double> values) {
  StepSeries series;
  for (std::size_t i = 0; i < times.size() && i < values.size(); ++i) {
    const double previous =
        series.values_.empty() ? 0.0 : series.values_.back();
    if (values[i] == previous) continue;
    series.times_.push_back(times[i]);
    series.values_.push_back(values[i]);
  }
  return series;
}

double StepSeries::value_at(SimTime t) const {
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  if (it == times_.begin()) return 0.0;
  return values_[static_cast<std::size_t>(it - times_.begin()) - 1];
}

double StepSeries::maximum(SimTime begin, SimTime end) const {
  double best = 0.0;
  for_each_segment(times_, values_, begin, end,
                   [&](SimTime, SimTime, double v) {
                     best = std::max(best, v);
                   });
  return best;
}

SimTime StepSeries::maximum_at(SimTime begin, SimTime end) const {
  double best = 0.0;
  SimTime at = begin;
  bool found = false;
  for_each_segment(times_, values_, begin, end,
                   [&](SimTime lo, SimTime, double v) {
                     if (!found || v > best) {
                       best = v;
                       at = lo;
                       found = true;
                     }
                   });
  return at;
}

double StepSeries::integral(SimTime begin, SimTime end) const {
  double total = 0.0;
  for_each_segment(times_, values_, begin, end,
                   [&](SimTime lo, SimTime hi, double v) {
                     total += v * (hi - lo);
                   });
  return total;
}

double StepSeries::average(SimTime begin, SimTime end) const {
  return end > begin ? integral(begin, end) / (end - begin) : 0.0;
}

std::vector<double> StepSeries::bucketize(SimTime begin, SimTime end,
                                          int buckets) const {
  std::vector<double> out;
  if (buckets <= 0 || end <= begin) return out;
  out.reserve(static_cast<std::size_t>(buckets));
  const SimTime width = end - begin;
  for (int b = 0; b < buckets; ++b) {
    const SimTime lo = begin + width * b / buckets;
    const SimTime hi = b + 1 == buckets ? end : begin + width * (b + 1) / buckets;
    out.push_back(average(lo, hi));
  }
  return out;
}

std::vector<std::pair<SimTime, SimTime>> StepSeries::intervals_at_least(
    double threshold, SimTime begin, SimTime end) const {
  std::vector<std::pair<SimTime, SimTime>> intervals;
  for_each_segment(times_, values_, begin, end,
                   [&](SimTime lo, SimTime hi, double v) {
                     if (v < threshold) return;
                     if (!intervals.empty() && intervals.back().second == lo) {
                       intervals.back().second = hi;  // contiguous: extend
                     } else {
                       intervals.emplace_back(lo, hi);
                     }
                   });
  return intervals;
}

Timeline extract_timeline(const sim::TaskGraph& graph,
                          const sim::SimResult& result,
                          const TimelineOptions& options,
                          const ResourceClassifier& classify,
                          const sim::RateTimeline* rates) {
  Timeline timeline;
  timeline.makespan = result.makespan();
  timeline.window.begin = std::max(0.0, options.window.begin);
  timeline.window.end =
      std::min(options.window.end, timeline.makespan);
  if (timeline.window.end < timeline.window.begin) {
    timeline.window.end = timeline.window.begin;
  }
  const Window& window = timeline.window;

  // Every phase below fans independent slots over one shared pool when the
  // caller asked for threads; each slot is a pure function of its inputs,
  // so serial and fanned extraction are byte-identical.
  std::unique_ptr<sim::ScenarioRunner> pool;
  if (options.threads > 1) {
    pool = std::make_unique<sim::ScenarioRunner>(
        static_cast<std::size_t>(options.threads));
  }
  const auto fan = [&](std::size_t slots,
                       const std::function<void(std::size_t)>& fn) {
    if (pool != nullptr && slots > 1) {
      pool->run_all(slots, fn);
    } else {
      for (std::size_t slot = 0; slot < slots; ++slot) fn(slot);
    }
  };

  // Aggregates come straight from the accounting layer: same per-task
  // arithmetic, same id iteration order, so the timeline's totals are
  // bit-identical to what `stats` reports for this window. Callers that
  // already ran accounting over the resolved window pass the results in;
  // otherwise the two independent passes are computed (and fanned) here.
  std::vector<ResourceAccount> own_accounts;
  std::vector<ChannelAccount> own_channels;
  const bool need_resources = options.resource_accounts == nullptr;
  const bool need_channels = options.channel_accounts == nullptr;
  if (need_resources || need_channels) {
    fan(2, [&](std::size_t slot) {
      if (slot == 0 && need_resources) {
        own_accounts = account_resources(graph, result, window);
      }
      if (slot == 1 && need_channels) {
        own_channels = account_channels(graph, result, window);
      }
    });
  }
  const std::vector<ResourceAccount>& accounts =
      need_resources ? own_accounts : *options.resource_accounts;
  const std::vector<ChannelAccount>& channel_accounts =
      need_channels ? own_channels : *options.channel_accounts;
  HOLMES_CHECK_MSG(accounts.size() == graph.resource_count(),
                   "resource accounts do not match the task graph");

  timeline.resources.resize(accounts.size());
  timeline.channels.resize(channel_accounts.size());

  // Resource metadata, link classes, and the resource -> class slot map.
  std::map<std::string, std::size_t> class_index;
  for (std::size_t r = 0; r < accounts.size(); ++r) {
    ResourceTimeline& res = timeline.resources[r];
    res.id = accounts[r].id;
    res.name = accounts[r].name;
    res.nic_class = classify ? classify(res.name) : std::string("unknown");
    res.is_device = accounts[r].is_device;
    res.is_link = accounts[r].is_link;
    res.busy_total = accounts[r].busy;
    res.waiting_total = accounts[r].waiting;
    res.bytes = accounts[r].bytes;
    res.tasks = accounts[r].tasks;
    if (res.is_link) class_index.emplace(res.nic_class, 0);
  }
  timeline.classes.resize(class_index.size());
  {
    std::size_t next = 0;
    for (auto& [name, index] : class_index) {
      index = next;
      timeline.classes[next].nic_class = name;
      ++next;
    }
  }
  constexpr std::size_t kNoClass = static_cast<std::size_t>(-1);
  std::vector<std::size_t> res_class(accounts.size(), kNoClass);
  for (std::size_t r = 0; r < accounts.size(); ++r) {
    const ResourceTimeline& res = timeline.resources[r];
    if (!res.is_link) continue;
    const std::size_t cls = class_index[res.nic_class];
    res_class[r] = cls;
    timeline.classes[cls].ports += 1;
    timeline.classes[cls].busy_total += res.busy_total;
  }

  // One id-ordered O(V + E) pass derives each task's ready instant (latest
  // dependency finish) and busy-interval end — the `ports_free` stretching
  // for transfers, via the accounting layer's serialization helper — and
  // appends its events to per-resource / per-class / per-channel lists.
  // The lists inherit id order; time-sorting them is deferred into the
  // per-slot finalizers (where it usually reduces to an is_sorted check).
  struct PortEvents {
    std::vector<Interval> busy;       ///< occupancy intervals
    std::vector<SimTime> queue_up;    ///< +1 at ready
    std::vector<SimTime> queue_down;  ///< -1 at start
  };
  struct ClassEvents {
    std::vector<SimTime> up;    ///< +1 at busy start
    std::vector<SimTime> down;  ///< -1 at busy end
  };
  struct ChannelEvents {
    ByteEvents start;   ///< +bytes at start (in-flight rise)
    ByteEvents finish;  ///< -bytes at finish; cumulative delivery
  };
  std::vector<PortEvents> ports(accounts.size());
  std::vector<ClassEvents> class_events(timeline.classes.size());
  std::vector<ChannelEvents> channel_events(channel_accounts.size());

  const auto each_port = [&](const sim::Task& task, auto&& fn) {
    if (task.kind == sim::TaskKind::kCompute) {
      fn(static_cast<std::size_t>(task.resource));
      return;
    }
    fn(static_cast<std::size_t>(task.src_port));
    if (task.dst_port != task.src_port) {
      fn(static_cast<std::size_t>(task.dst_port));
    }
  };

  const std::size_t task_count = graph.task_count();
  for (std::size_t i = 0; i < task_count; ++i) {
    const sim::Task& task = graph.tasks()[i];
    if (task.kind == sim::TaskKind::kNoop) continue;
    const auto id = static_cast<sim::TaskId>(i);
    const sim::TaskTiming& timing = result.timing(id);
    SimTime ready = 0;
    for (sim::TaskId dep : graph.deps(id)) {
      ready = std::max(ready, result.timing(dep).finish);
    }
    const SimTime end_busy =
        task.kind == sim::TaskKind::kCompute
            ? timing.finish
            : timing.start + serialization_of(task, timing);
    if (end_busy > timing.start) {
      each_port(task, [&](std::size_t port) {
        ports[port].busy.push_back({timing.start, end_busy});
        if (res_class[port] != kNoClass) {
          class_events[res_class[port]].up.push_back(timing.start);
          class_events[res_class[port]].down.push_back(end_busy);
        }
      });
    }
    if (timing.start > ready) {
      each_port(task, [&](std::size_t port) {
        ports[port].queue_up.push_back(ready);
        ports[port].queue_down.push_back(timing.start);
      });
    }
    if (task.kind == sim::TaskKind::kTransfer &&
        task.channel != sim::kInvalidChannel) {
      ChannelEvents& chan =
          channel_events[static_cast<std::size_t>(task.channel)];
      if (timing.finish > timing.start) {
        chan.start.emplace_back(timing.start,
                                static_cast<double>(task.bytes));
      }
      chan.finish.emplace_back(timing.finish,
                               static_cast<double>(task.bytes));
    }
  }

  // Effective-rate overlays: one per resource a rate window touched.
  std::vector<sim::RateTimeline::AppliedWindow> rate_windows;
  if (rates != nullptr && !rates->empty()) rate_windows = rates->windows();
  std::vector<std::pair<sim::ResourceId, Deltas>> overlay_events;
  for (std::size_t i = 0; i < rate_windows.size();) {
    const sim::ResourceId resource = rate_windows[i].resource;
    // Breakpoints where the compound factor may change; the effective rate
    // on each segment is min(1, product of active factors), the exact
    // pacing `stretched` integrates through (modulo its 1e-6 floor, far
    // below any factor a fault plan admits).
    std::vector<SimTime> bps;
    const std::size_t first = i;
    while (i < rate_windows.size() && rate_windows[i].resource == resource) {
      bps.push_back(rate_windows[i].begin);
      bps.push_back(rate_windows[i].end);
      ++i;
    }
    std::sort(bps.begin(), bps.end());
    bps.erase(std::unique(bps.begin(), bps.end()), bps.end());
    Deltas levels;  // encoded as (time, level) pairs, converted below
    for (SimTime t : bps) {
      double factor = 1.0;
      for (std::size_t w = first; w < i; ++w) {
        if (rate_windows[w].begin <= t && t < rate_windows[w].end) {
          factor *= rate_windows[w].factor;
        }
      }
      levels.emplace_back(t, std::min(1.0, factor));
    }
    overlay_events.emplace_back(resource, std::move(levels));
  }
  timeline.overlays.resize(overlay_events.size());

  // Finalize: every slot below is an independent pure function of the
  // event lists above (including its own deferred time-sort).
  const std::size_t resource_slots = accounts.size();
  const std::size_t channel_slots = channel_accounts.size();
  const std::size_t class_slots = timeline.classes.size();
  const std::size_t overlay_slots = overlay_events.size();
  const std::size_t total_slots =
      resource_slots + channel_slots + class_slots + overlay_slots;
  auto run_slot = [&](std::size_t slot) {
    if (slot < resource_slots) {
      ResourceTimeline& res = timeline.resources[slot];
      PortEvents& events = ports[slot];
      sort_intervals(events.busy);
      sort_times(events.queue_up);
      sort_times(events.queue_down);
      res.busy = busy_from_intervals(events.busy);
      res.queue = merge_counts(events.queue_up, events.queue_down);
      return;
    }
    slot -= resource_slots;
    if (slot < channel_slots) {
      ChannelTimeline& chan = timeline.channels[slot];
      ChannelEvents& events = channel_events[slot];
      sort_events(events.start);
      sort_events(events.finish);
      chan.id = channel_accounts[slot].id;
      chan.name = channel_accounts[slot].name;
      chan.bytes = channel_accounts[slot].bytes;
      chan.transfers = channel_accounts[slot].transfers;
      chan.busy_total = channel_accounts[slot].busy;
      chan.in_flight = merge_bytes(events.start, events.finish);
      chan.cumulative = accumulate_bytes(events.finish);
      chan.peak_in_flight = chan.in_flight.maximum(window.begin, window.end);
      chan.peak_at = chan.in_flight.maximum_at(window.begin, window.end);
      return;
    }
    slot -= channel_slots;
    if (slot < class_slots) {
      ClassTimeline& cls = timeline.classes[slot];
      ClassEvents& events = class_events[slot];
      sort_times(events.up);
      sort_times(events.down);
      cls.busy_ports = merge_counts(events.up, events.down);
      const double bar =
          options.saturation_threshold * static_cast<double>(cls.ports);
      cls.saturated =
          cls.busy_ports.intervals_at_least(bar, window.begin, window.end);
      cls.saturated_total = 0;
      for (const auto& [lo, hi] : cls.saturated) {
        cls.saturated_total += hi - lo;
      }
      return;
    }
    slot -= class_slots;
    RateOverlay& overlay = timeline.overlays[slot];
    overlay.resource = overlay_events[slot].first;
    overlay.name = graph.resource_name(overlay_events[slot].first);
    std::vector<SimTime> times;
    std::vector<double> values;
    times.push_back(0.0);
    values.push_back(1.0);
    for (const auto& [t, level] : overlay_events[slot].second) {
      times.push_back(t);
      values.push_back(level);
    }
    overlay.effective = StepSeries::from_levels(std::move(times),
                                               std::move(values));
    // Degraded time = window measure where the effective rate sits below 1.
    overlay.degraded_total = 0;
    for_each_segment(overlay.effective.times(), overlay.effective.values(),
                     window.begin, window.end,
                     [&](SimTime lo, SimTime hi, double v) {
                       if (v < 1.0) overlay.degraded_total += hi - lo;
                     });
  };
  fan(total_slots, run_slot);

  // Top talkers: links ranked by window bytes (descending, id ascending).
  Bytes total_link_bytes = 0;
  for (const ResourceTimeline& res : timeline.resources) {
    if (res.is_link) total_link_bytes += res.bytes;
  }
  for (const ResourceTimeline& res : timeline.resources) {
    if (!res.is_link || res.bytes <= 0) continue;
    TopTalker talker;
    talker.resource = res.id;
    talker.name = res.name;
    talker.nic_class = res.nic_class;
    talker.bytes = res.bytes;
    talker.busy = res.busy_total;
    talker.share = total_link_bytes > 0
                       ? static_cast<double>(res.bytes) /
                             static_cast<double>(total_link_bytes)
                       : 0.0;
    timeline.top_talkers.push_back(std::move(talker));
  }
  std::stable_sort(timeline.top_talkers.begin(), timeline.top_talkers.end(),
                   [](const TopTalker& a, const TopTalker& b) {
                     if (a.bytes != b.bytes) return a.bytes > b.bytes;
                     return a.resource < b.resource;
                   });
  return timeline;
}

}  // namespace holmes::obs
