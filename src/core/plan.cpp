#include "core/plan.h"

#include "util/error.h"

namespace holmes::core {

bool is_heterogeneous_job(const net::Topology& topo) {
  return topo.cluster_count() > 1;
}

TrainingPlan Planner::plan(const net::Topology& topo,
                           const model::ParameterGroup& workload) const {
  const parallel::ParallelConfig degrees = parallel::derive_config(
      topo, workload.tensor_parallel, workload.pipeline_parallel);

  const parallel::MegatronGroupBuilder megatron_builder;
  const parallel::HolmesGroupBuilder holmes_builder;
  const parallel::GroupBuilder& builder =
      config_.groups == GroupPolicy::kClusterAligned
          ? static_cast<const parallel::GroupBuilder&>(holmes_builder)
          : static_cast<const parallel::GroupBuilder&>(megatron_builder);
  parallel::ParallelGroups groups = builder.build(topo, degrees);
  parallel::validate_groups(groups, topo);

  // Effective NIC per stage: the hosting cluster's NIC, or Ethernet when
  // the stage straddles clusters (its DP traffic can only use Ethernet).
  std::vector<net::NicType> stage_nics;
  for (int cluster : parallel::stage_clusters(groups, topo)) {
    stage_nics.push_back(cluster >= 0 ? topo.cluster(cluster).nic
                                      : net::NicType::kEthernet);
  }

  const bool fallback =
      config_.transport == TransportPolicy::kGlobalEthernetFallback &&
      is_heterogeneous_job(topo);
  if (fallback) {
    // With every inter-node byte on Ethernet, per-stage NIC distinctions
    // vanish; partitioning must see the NICs the traffic actually uses.
    for (auto& nic : stage_nics) nic = net::NicType::kEthernet;
  }

  // The interleaved schedule needs micro-batch counts divisible by the
  // stage count (Megatron's own constraint); check early for a clear error.
  const int chunks = config_.effective_chunks();
  const std::int64_t micro_batches = workload.micro_batches(degrees.data);
  if (chunks > 1 && micro_batches % degrees.pipeline != 0) {
    throw ConfigError("interleaved schedule needs micro-batches (" +
                      std::to_string(micro_batches) +
                      ") divisible by pipeline degree " +
                      std::to_string(degrees.pipeline));
  }

  // Partition layers over *virtual* stages (p * chunks entries; plain
  // schedules have chunks == 1). Virtual stage v runs on physical stage
  // v % p, so its NIC weight is that stage's.
  std::vector<net::NicType> virtual_nics;
  virtual_nics.reserve(static_cast<std::size_t>(degrees.pipeline) * chunks);
  for (int v = 0; v < degrees.pipeline * chunks; ++v) {
    virtual_nics.push_back(
        stage_nics[static_cast<std::size_t>(v % degrees.pipeline)]);
  }

  // Eq. (2)'s S(NIC) values are measured under full data-parallel load
  // (Table 1, d = 16). With d <= 2 the gradient synchronization volume is
  // too small to differentiate stage speed by NIC, so adapting the
  // partition to those stale speeds would overfit; fall back to uniform.
  const bool adapt = config_.partition == PartitionPolicy::kSelfAdapting &&
                     degrees.data >= 4;
  pipeline::StagePartition partition =
      adapt ? pipeline::self_adapting_partition(workload.config.layers,
                                                virtual_nics, config_.alpha)
            : pipeline::uniform_partition(workload.config.layers,
                                          degrees.pipeline * chunks);

  TrainingPlan plan{config_,
                    degrees,
                    std::move(groups),
                    std::move(partition),
                    std::move(stage_nics),
                    fallback,
                    workload,
                    micro_batches};
  return plan;
}

}  // namespace holmes::core
