#include "core/preflight.h"

#include <sstream>

#include "util/error.h"
#include "util/logging.h"

namespace holmes::core {

verify::PlanView make_plan_view(const TrainingPlan& plan) {
  verify::PlanView view;
  view.groups = &plan.groups;
  view.partition = &plan.partition;
  view.stage_nics = &plan.stage_nics;
  view.model = &plan.workload.config;
  view.micro_batch_size = plan.workload.micro_batch_size;
  view.micro_batches = plan.micro_batches;
  view.ethernet_fallback = plan.ethernet_fallback;
  view.per_group_transport =
      plan.framework.transport == TransportPolicy::kPerGroupBest;
  const int d = plan.degrees.data;
  view.optimizer_shards = plan.framework.dp_sync.shards_optimizer() ? d : 1;
  view.weight_shards = plan.framework.dp_sync.shards_weights() ? d : 1;
  return view;
}

verify::LintReport lint_training_plan(const net::Topology& topo,
                                      const TrainingPlan& plan) {
  return verify::lint_plan(topo, make_plan_view(plan));
}

verify::LintReport lint_artifacts(const SimArtifacts& artifacts) {
  verify::GraphLintOptions options;
  options.serial_programs = artifacts.compute_resource;
  verify::LintReport report = verify::lint_graph(artifacts.graph, options);
  if (artifacts.result.has_value()) {
    report.merge(
        verify::lint_execution(artifacts.graph, *artifacts.result, options));
  }
  return report;
}

void preflight_or_throw(const net::Topology& topo, const TrainingPlan& plan) {
  if (log_level() > LogLevel::kDebug) {
    return;
  }
  const verify::LintReport report = lint_training_plan(topo, plan);
  for (const verify::Diagnostic& diag : report.diagnostics()) {
    HOLMES_LOG(kDebug) << "preflight " << diag.rule << " ["
                       << verify::to_string(diag.severity) << "] "
                       << diag.subject << ": " << diag.message;
  }
  if (!report.ok()) {
    std::ostringstream oss;
    oss << "plan pre-flight failed (" << report.count(verify::Severity::kError)
        << " error(s)); first: ";
    for (const verify::Diagnostic& diag : report.diagnostics()) {
      if (diag.severity == verify::Severity::kError) {
        oss << diag.rule << " " << diag.subject << ": " << diag.message;
        break;
      }
    }
    throw ConfigError(oss.str());
  }
}

}  // namespace holmes::core
