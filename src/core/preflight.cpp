#include "core/preflight.h"

#include <sstream>

#include "util/error.h"
#include "util/logging.h"

namespace holmes::core {

verify::PlanView make_plan_view(const TrainingPlan& plan) {
  verify::PlanView view;
  view.groups = &plan.groups;
  view.partition = &plan.partition;
  view.stage_nics = &plan.stage_nics;
  view.model = &plan.workload.config;
  view.micro_batch_size = plan.workload.micro_batch_size;
  view.micro_batches = plan.micro_batches;
  view.ethernet_fallback = plan.ethernet_fallback;
  view.per_group_transport =
      plan.framework.transport == TransportPolicy::kPerGroupBest;
  const int d = plan.degrees.data;
  view.optimizer_shards = plan.framework.dp_sync.shards_optimizer() ? d : 1;
  view.weight_shards = plan.framework.dp_sync.shards_weights() ? d : 1;
  return view;
}

verify::LintReport lint_training_plan(const net::Topology& topo,
                                      const TrainingPlan& plan) {
  return verify::lint_plan(topo, make_plan_view(plan));
}

verify::LintReport lint_artifacts(const SimArtifacts& artifacts,
                                  const net::Topology* topo) {
  verify::GraphLintOptions options;
  options.serial_programs = artifacts.compute_resource;
  verify::LintReport report = verify::lint_graph(artifacts.graph, options);
  if (artifacts.result.has_value()) {
    report.merge(
        verify::lint_execution(artifacts.graph, *artifacts.result, options));
  }
  verify::FlowLintOptions flow = topo != nullptr
                                     ? make_flow_options(artifacts, *topo)
                                     : verify::FlowLintOptions{};
  const sim::SimResult* result =
      artifacts.result.has_value() ? &*artifacts.result : nullptr;
  report.merge(verify::lint_flow(verify::as_ref(artifacts.graph), result, flow));
  return report;
}

verify::FlowLintOptions make_flow_options(const SimArtifacts& artifacts,
                                          const net::Topology& topo) {
  verify::FlowLintOptions options;
  const sim::TaskGraph& graph = artifacts.graph;
  options.resource_cluster.assign(graph.resource_count(), -1);

  // Cluster of a global node index: walk the cluster node counts in rank
  // order (nodes are numbered across clusters in declaration order).
  auto cluster_of_node = [&](int node) -> int {
    int first = 0;
    for (int c = 0; c < topo.cluster_count(); ++c) {
      const int nodes = topo.cluster(c).nodes;
      if (node < first + nodes) return c;
      first += nodes;
    }
    return -1;
  };
  auto parse_index = [](const std::string& name, const char* prefix) -> int {
    const std::size_t plen = std::char_traits<char>::length(prefix);
    if (name.compare(0, plen, prefix) != 0) return -1;
    int value = 0;
    std::size_t i = plen;
    if (i >= name.size() || name[i] < '0' || name[i] > '9') return -1;
    for (; i < name.size() && name[i] >= '0' && name[i] <= '9'; ++i) {
      value = value * 10 + (name[i] - '0');
    }
    return value;
  };
  for (std::size_t r = 0; r < graph.resource_count(); ++r) {
    const std::string& name =
        graph.resource_name(static_cast<sim::ResourceId>(r));
    int cluster = -1;
    if (const int rank = parse_index(name, "gpu"); rank >= 0) {
      if (rank < topo.world_size()) cluster = topo.cluster_of(rank);
    } else if (const int node = parse_index(name, "node"); node >= 0) {
      cluster = cluster_of_node(node);
    }
    options.resource_cluster[r] = cluster;
  }
  return options;
}

void preflight_or_throw(const net::Topology& topo, const TrainingPlan& plan) {
  if (log_level() > LogLevel::kDebug) {
    return;
  }
  const verify::LintReport report = lint_training_plan(topo, plan);
  for (const verify::Diagnostic& diag : report.diagnostics()) {
    HOLMES_LOG(kDebug) << "preflight " << diag.rule << " ["
                       << verify::to_string(diag.severity) << "] "
                       << diag.subject << ": " << diag.message;
  }
  if (!report.ok()) {
    std::ostringstream oss;
    oss << "plan pre-flight failed (" << report.count(verify::Severity::kError)
        << " error(s)); first: ";
    for (const verify::Diagnostic& diag : report.diagnostics()) {
      if (diag.severity == verify::Severity::kError) {
        oss << diag.rule << " " << diag.subject << ": " << diag.message;
        break;
      }
    }
    throw ConfigError(oss.str());
  }
}

}  // namespace holmes::core
