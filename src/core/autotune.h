#pragma once

/// \file autotune.h
/// Parallel-layout auto-tuner.
///
/// The paper fixes (t, p) per parameter group (Table 2) and names
/// "scheduling methods for diverse environments" as future work. This
/// module searches the layout space for a model on a concrete topology:
/// every (tensor, pipeline) pair that divides the world size, fits the
/// per-device memory budget, and divides the global batch is planned and
/// simulated; candidates come back ranked by throughput.

#include <vector>

#include "core/training_sim.h"

namespace holmes::core {

struct TuneOptions {
  /// Per-device memory budget (default: the paper's 80 GB A100).
  Bytes device_memory = 80LL * 1024 * 1024 * 1024;
  /// Iterations per simulation (>= 2; 3 gives a steady-state read).
  int iterations = 3;
  /// Cap on the pipeline degree to bound the search (0 = no cap).
  int max_pipeline = 0;
  /// Worker threads for the search (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Optional simulation memo shared across candidates — and across sweeps,
  /// when the caller keeps it alive (see sim::SimMemo). Candidates whose
  /// lowered graphs are structurally identical to one already simulated
  /// reuse the cached result; hit/miss totals flush to the calling thread's
  /// self-profile after the sweep.
  sim::SimMemo* memo = nullptr;
};

struct TuneCandidate {
  int tensor = 1;
  int pipeline = 1;
  int data = 1;
  IterationMetrics metrics;
  Bytes estimated_memory = 0;  ///< worst-stage per-device footprint
};

/// Explores all feasible (t, p) layouts of `workload`'s model on `topo`
/// under `framework` and returns them sorted by descending throughput.
/// The workload's own (t, p) are ignored — only its model, micro-batch and
/// batch size are used. Throws holmes::ConfigError when no layout is
/// feasible.
std::vector<TuneCandidate> autotune(const FrameworkConfig& framework,
                                    const net::Topology& topo,
                                    const model::ParameterGroup& workload,
                                    const TuneOptions& options = {},
                                    const CostModel& cost = {});

}  // namespace holmes::core
