#pragma once

/// \file run_stats.h
/// Builds the stable obs::RunSummary from a simulated run's artifacts.
///
/// TrainingSimulator::run hands back a SimArtifacts (task graph + timings +
/// iteration markers); this module joins it with the plan's structure
/// (stage membership, layer partition) and the obs accounting to produce
/// per-device utilization, per-stage pipeline-bubble fractions, per-link
/// busy/contention time, per-communicator traffic, and the exposed-vs-
/// overlapped split of the gradient synchronization — everything the
/// `holmes_cli stats` subcommand and the JSON export surface report.

#include "core/plan.h"
#include "core/training_sim.h"
#include "net/topology.h"
#include "obs/critical_path.h"
#include "obs/summary.h"

namespace holmes::core {

/// NIC class of a port resource ("NVLink", "PCIe", "InfiniBand", "RoCE",
/// "Ethernet", or "unknown"); the PortMap bakes the fabric name into every
/// port's resource name ("gpu3.RoCE.tx", "node0.Ethernet0.rx"). Shared by
/// the critical-path buckets, the timeline report, and the saturation lint
/// so every surface classifies fabrics identically.
const char* nic_class_of(const std::string& resource_name);

/// Workload identity string shared by every report surface, e.g.
/// "group 2 (175B params)".
std::string workload_label(const TrainingPlan& plan);

/// Options for build_run_summary (holmes_cli stats' knobs).
struct RunSummaryOptions {
  /// When true, accounting is clipped to [max(0, window_begin),
  /// window_end < 0 ? makespan : min(window_end, makespan)) — the same
  /// clipping semantics `explain --window` applies — instead of the
  /// default steady-state window. Throws when the clipped window is empty.
  bool override_window = false;
  double window_begin = 0;
  double window_end = -1;
};

/// Derives the full run summary. `artifacts` must be populated (run with a
/// non-null artifacts pointer); throws otherwise. All breakdowns are
/// restricted to the steady-state window (warm-up excluded) unless
/// `options` overrides it; per-stage and overlap accounting use the final
/// measured iteration's tags.
obs::RunSummary build_run_summary(const net::Topology& topo,
                                  const TrainingPlan& plan,
                                  const IterationMetrics& metrics,
                                  const SimArtifacts& artifacts,
                                  const RunSummaryOptions& options = {});

/// Options for build_critical_path_summary (holmes_cli explain's knobs).
struct CriticalPathOptions {
  std::size_t top_segments = 16;  ///< cap on the reported longest segments
  double window_begin = 0;        ///< clip attribution to [begin, end]
  double window_end = -1;         ///< < 0 means "through the makespan"
};

/// Extracts the run's critical path and attributes it to plan-aware
/// buckets: per-stage compute ("compute/stage<k>"), per-NIC-class and
/// per-communicator-kind transfer serialization ("comm/<class>/<kind>"),
/// propagation latency ("latency/<class>") and queue wait
/// ("wait/compute" | "wait/<class>"). Bucket seconds sum exactly to the
/// attribution window (the full makespan by default). Also derives the
/// first-order what-if sensitivities ("compute/stage<k>", "link/<class>").
/// When `path_out` is non-null it receives the raw (unclipped) path, e.g.
/// for trace emphasis. Throws unless `artifacts` is populated.
obs::CriticalPathSummary build_critical_path_summary(
    const net::Topology& topo, const TrainingPlan& plan,
    const IterationMetrics& metrics, const SimArtifacts& artifacts,
    const CriticalPathOptions& options = {},
    obs::CriticalPath* path_out = nullptr);

}  // namespace holmes::core
