#pragma once

/// \file run_stats.h
/// Builds the stable obs::RunSummary from a simulated run's artifacts.
///
/// TrainingSimulator::run hands back a SimArtifacts (task graph + timings +
/// iteration markers); this module joins it with the plan's structure
/// (stage membership, layer partition) and the obs accounting to produce
/// per-device utilization, per-stage pipeline-bubble fractions, per-link
/// busy/contention time, per-communicator traffic, and the exposed-vs-
/// overlapped split of the gradient synchronization — everything the
/// `holmes_cli stats` subcommand and the JSON export surface report.

#include "core/plan.h"
#include "core/training_sim.h"
#include "net/topology.h"
#include "obs/summary.h"

namespace holmes::core {

/// Derives the full run summary. `artifacts` must be populated (run with a
/// non-null artifacts pointer); throws otherwise. All breakdowns are
/// restricted to the steady-state window (warm-up excluded); per-stage and
/// overlap accounting use the final measured iteration's tags.
obs::RunSummary build_run_summary(const net::Topology& topo,
                                  const TrainingPlan& plan,
                                  const IterationMetrics& metrics,
                                  const SimArtifacts& artifacts);

}  // namespace holmes::core
