#include "core/analytic.h"

#include <algorithm>
#include <limits>

#include "util/error.h"

namespace holmes::core {

namespace {

/// Ring collective time over `members` moving `volume` bytes per rank:
/// (d-1)/d * V through the slowest hop, plus one latency per round.
SimTime ring_time(const net::Topology& topo, const TrainingPlan& plan,
                  const std::vector<int>& members, Bytes volume) {
  const int d = static_cast<int>(members.size());
  if (d <= 1 || volume == 0) return 0;
  double min_bandwidth = std::numeric_limits<double>::infinity();
  SimTime max_latency = 0;
  for (int j = 0; j < d; ++j) {
    const int src = members[static_cast<std::size_t>(j)];
    const int dst = members[static_cast<std::size_t>((j + 1) % d)];
    const net::PathInfo path =
        plan.ethernet_fallback && topo.node_of(src) != topo.node_of(dst)
            ? topo.path_on(src, dst, net::FabricKind::kEthernet)
            : topo.path(src, dst);
    min_bandwidth = std::min(min_bandwidth, path.bandwidth);
    max_latency = std::max(max_latency, path.latency);
  }
  return static_cast<double>(d - 1) / d * static_cast<double>(volume) /
             min_bandwidth +
         (d - 1) * max_latency;
}

}  // namespace

AnalyticBreakdown analytic_iteration(const net::Topology& topo,
                                     const TrainingPlan& plan,
                                     const CostModel& cost) {
  const model::TransformerConfig& cfg = plan.workload.config;
  const int t = plan.degrees.tensor;
  const int p = plan.degrees.pipeline;
  const int d = plan.degrees.data;
  const int virtual_stages = plan.virtual_stages();
  const int mb = plan.workload.micro_batch_size;
  const auto m = static_cast<double>(plan.micro_batches);
  HOLMES_CHECK_MSG(static_cast<int>(plan.partition.size()) == virtual_stages,
                   "partition/virtual-stage count mismatch");

  // Per-physical-stage micro-batch time (summing the device's chunks) and
  // parameter count.
  std::vector<SimTime> stage_time(static_cast<std::size_t>(p), 0);
  std::vector<double> stage_params(static_cast<std::size_t>(p), 0);
  for (int v = 0; v < virtual_stages; ++v) {
    double emb_share = 0;
    if (virtual_stages == 1) {
      emb_share = 1.0;
    } else if (v == 0 || v == virtual_stages - 1) {
      emb_share = 0.5;
    }
    const int layers = plan.partition[static_cast<std::size_t>(v)];
    const double flops =
        (layers * cfg.layer_flops(mb) + emb_share * cfg.embedding_flops(mb)) / t;
    const double interference =
        cost.nic_interference(plan.stage_nics[static_cast<std::size_t>(v % p)]);
    stage_time[static_cast<std::size_t>(v % p)] +=
        cost.compute_seconds(flops, t) * interference;
    stage_params[static_cast<std::size_t>(v % p)] +=
        (layers * cfg.layer_parameters() + emb_share * cfg.embedding_parameters()) /
        t;
  }

  AnalyticBreakdown out;
  out.overhead = cost.iteration_overhead;
  SimTime slowest = 0;
  SimTime average = 0;
  for (SimTime time : stage_time) {
    slowest = std::max(slowest, time);
    average += time / p;
  }
  out.steady_compute = m * slowest;
  out.pipeline_bubble = (p - 1) * average;

  // Slowest stage's data-parallel synchronization bounds the flush phase.
  for (int s = 0; s < p; ++s) {
    const double params = stage_params[static_cast<std::size_t>(s)];
    // Every tp index shares the same member geometry; tp=0 is
    // representative.
    std::vector<int> members;
    members.reserve(static_cast<std::size_t>(d));
    for (int dp = 0; dp < d; ++dp) {
      members.push_back(plan.groups.rank_at({0, dp, s}));
    }
    const SimTime rs = ring_time(
        topo, plan, members,
        static_cast<Bytes>(params * cost.grad_bytes_per_param));
    const SimTime ag = ring_time(
        topo, plan, members,
        static_cast<Bytes>(params * cost.param_bytes *
                           plan.framework.dp_sync.allgather_passes()));
    const bool shards = plan.framework.dp_sync.shards_optimizer();
    const SimTime opt =
        cost.optimizer_seconds(shards ? params / d : params);
    // Classic DDP all-reduces (2x the reduce-scatter volume) and skips the
    // all-gather.
    const SimTime sync = shards ? rs + ag : 2 * rs;
    if (sync + opt >
        out.grad_reduce_scatter + out.param_allgather + out.optimizer) {
      out.grad_reduce_scatter = shards ? rs : 2 * rs;
      out.param_allgather = shards ? ag : 0;
      out.optimizer = opt;
    }
  }
  return out;
}

}  // namespace holmes::core
