#pragma once

/// \file faults.h
/// First-class fault injection and elastic recovery.
///
/// A FaultPlan is a deterministic, seeded fault schedule for one simulated
/// training job: transient NIC degradation windows (time-scoped bandwidth
/// multipliers lowered onto the affected ports as a sim::RateTimeline),
/// persistent compute stragglers, an optional permanent node loss at a
/// simulated timestamp, and the checkpoint/restart cost model that governs
/// how much work a failure destroys. Plans round-trip through the stable
/// `holmes.fault_plan.v1` JSON schema so benches, the CLI and CI fixtures
/// share one format.
///
/// run_fault_injection is the elastic-recovery experiment built on top
/// (`holmes_cli inject`): it simulates the job fault-free, then under the
/// plan's faults with the static partition, measures per-stage effective
/// speeds from the executed graph (compute busy plus NIC-port occupancy, so
/// both stragglers and degraded fabrics register), re-runs the partitioner
/// with the measured speeds (Eq. (2) generalized beyond NIC classes), and
/// reports how much of the lost throughput the re-plan recovers. A node
/// loss additionally rebuilds the topology without the dead node, re-plans
/// on the survivors, and accounts the checkpoint-replay downtime. The
/// result serializes as `holmes.recovery_report.v1` — deliberately
/// *unstamped* (no build fingerprint), so a committed golden report is
/// byte-stable across machines like the engine goldens.
///
/// Fault sanity is the HV5xx verifier family (see verify/rules.h): HV501
/// window sanity, HV502 scope resolution, HV503 checkpoint-model sanity —
/// all checked by lint_fault_plan before any simulation — and HV504, the
/// post-hoc invariant that no recovered run beats its own fault-free flow
/// lower bound. docs/robustness.md describes the model end to end.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/perturbation.h"
#include "core/plan.h"
#include "core/training_sim.h"
#include "net/topology.h"
#include "verify/diagnostics.h"

namespace holmes::core {

inline constexpr const char* kFaultPlanSchema = "holmes.fault_plan.v1";
inline constexpr const char* kRecoveryReportSchema = "holmes.recovery_report.v1";

/// Persistent compute straggler. Scope is either one explicit rank
/// (`rank >= 0`) or every rank matching the cluster/node filters
/// (-1 = wildcard), mirroring NicDegradation's scoping.
struct ComputeStraggler {
  int rank = -1;             ///< exact global rank; -1 = use cluster/node scope
  int cluster = -1;          ///< cluster filter when rank < 0; -1 = all
  int node_in_cluster = -1;  ///< node filter when rank < 0; -1 = all
  double slowdown = 1.0;     ///< compute duration multiplier (> 1 is slower)
};

/// Permanent loss of one node at a simulated instant.
struct NodeFailure {
  double at_s = -1;          ///< failure time in simulated seconds; < 0 = none
  int cluster = 0;
  int node_in_cluster = 0;
};

/// Checkpoint/restart cost model: training state is saved every
/// `period_iterations` iterations at `save_s` cost; recovering from a
/// failure costs `restart_s` plus replaying everything since the last
/// completed checkpoint.
struct CheckpointModel {
  int period_iterations = 0;  ///< 0 = never checkpoint
  double save_s = 0;
  double restart_s = 0;
};

struct FaultPlan {
  std::vector<NicDegradation> nic_degradation;
  std::vector<ComputeStraggler> stragglers;
  NodeFailure node_failure;
  CheckpointModel checkpoint;
  /// Seed forwarded to Perturbations (jitter stream, if ever combined).
  std::uint64_t seed = 0x5EED;

  bool has_node_failure() const { return node_failure.at_s >= 0; }
  bool empty() const {
    return nic_degradation.empty() && stragglers.empty() && !has_node_failure();
  }
};

/// Parses a `holmes.fault_plan.v1` document. Unknown keys are rejected;
/// missing optional sections default. Throws holmes::ConfigError on
/// malformed JSON, a wrong schema tag, or ill-typed fields. (Semantic
/// sanity — window ordering, scope resolution — is lint_fault_plan's job,
/// so a CLI can report every problem instead of dying on the first.)
FaultPlan parse_fault_plan(const std::string& json);

/// Serializes the plan back to its stable JSON document (no trailing
/// newline, fixed key order); parse + serialize round-trips byte-exactly.
std::string fault_plan_json(const FaultPlan& plan);

/// HV501/HV502/HV503 against a concrete topology. `horizon_s`, when > 0,
/// additionally warns about degradation windows and failures that open
/// after the simulated horizon and thus can never take effect.
verify::LintReport lint_fault_plan(const FaultPlan& plan,
                                   const net::Topology& topo,
                                   double horizon_s = -1);

/// Lowers the plan's runtime faults (degradation windows, stragglers) to
/// the Perturbations TrainingSimulator executes. Node failure and the
/// checkpoint model are orchestration-level (run_fault_injection) and do
/// not lower. Scopes that resolve to no rank lower to nothing — run
/// lint_fault_plan first to catch them.
Perturbations lower_fault_plan(const FaultPlan& plan,
                               const net::Topology& topo);

struct RecoveryOptions {
  FrameworkConfig framework = FrameworkConfig::holmes();
  int group_id = 1;  ///< parameter group (model/gpt_zoo.h Table 2)
  int iterations = 3;
};

/// One simulated leg of the experiment.
struct RecoveryRun {
  double iteration_s = 0;  ///< steady-state seconds per iteration
  double throughput = 0;   ///< samples/s aggregate
  double makespan_s = 0;   ///< full simulated span (all iterations)
};

struct RecoveryReport {
  /// HV501-503 pre-flight plus HV504 post-hoc. `valid` is false when the
  /// pre-flight failed and no simulation ran.
  verify::LintReport lint;
  bool valid = false;

  std::string topology;
  std::string framework;
  std::string workload;
  int iterations = 0;

  FaultPlan plan;  ///< echoed into the report for self-containment

  RecoveryRun fault_free;  ///< static plan, no faults
  RecoveryRun faulted;     ///< static plan under the fault schedule
  RecoveryRun replanned;   ///< measured-speed re-partition under the faults

  std::vector<int> static_partition;
  std::vector<int> replanned_partition;
  /// Per-virtual-stage measured speed weights fed to
  /// pipeline::proportional_partition (normalized so the fastest stage is
  /// 1); derived from the faulted run's executed graph.
  std::vector<double> measured_weights;

  /// (replanned - faulted) / (fault_free - faulted) throughput; 1 when the
  /// faults cost nothing. The acceptance bar for a 2x straggler is >= 0.5:
  /// re-planning must recover at least half the loss.
  double recovery_ratio = 0;

  /// The headline recovered makespan: the replanned faulted run, or — when
  /// a node was lost — the composed timeline (run to the failure, pay
  /// checkpoint overhead and restart, replay the remaining iterations on
  /// the surviving topology).
  double recovered_makespan_s = 0;

  // ---- node loss & checkpoint accounting (all 0/false when no failure) --
  bool node_lost = false;
  bool recoverable = false;   ///< survivors could be re-planned
  std::string unrecoverable_reason;
  int failed_ranks = 0;
  int checkpointed_iterations = 0;  ///< completed checkpoints before failure
  double checkpoint_overhead_s = 0; ///< save_s * checkpoints taken
  double lost_work_s = 0;     ///< simulated progress destroyed by the failure
  double restart_s = 0;
  double downtime_s = 0;      ///< lost_work_s + restart_s
  double elastic_throughput = 0;    ///< survivors' steady-state samples/s

  /// Critical-path attribution delta, faulted vs fault-free, joined by
  /// bucket name (ascending; absent buckets contribute 0), plus synthetic
  /// "recovery/*" buckets (lost work, restart, checkpoint saves) so the
  /// downtime is attributed alongside compute/comm/wait.
  struct BucketDelta {
    std::string name;
    double fault_free_s = 0;
    double faulted_s = 0;
    double delta_s = 0;
  };
  std::vector<BucketDelta> bucket_deltas;

  /// Per-NIC-class occupancy timelines (busy ports / class ports) of the
  /// faulted vs fault-free legs, each bucketed over its own [0, makespan)
  /// so the *shapes* compare even though faults stretch the run (see
  /// obs/timeline.h). Joined by class name; a class absent from one leg
  /// contributes zeros. The fallback fabric filling up while grad-sync is
  /// degraded — the paper's Fig. 3 — shows here as a positive Ethernet
  /// delta hump.
  static constexpr int kTimelineBuckets = 16;
  struct ClassOccupancyDelta {
    std::string nic_class;
    std::vector<double> fault_free;  ///< kTimelineBuckets occupancy means
    std::vector<double> faulted;
    std::vector<double> delta;       ///< faulted - fault_free, per bucket
  };
  std::vector<ClassOccupancyDelta> timeline_deltas;
};

/// Runs the full injection experiment described in the file comment.
/// Deterministic: identical inputs produce a byte-identical report.
RecoveryReport run_fault_injection(const net::Topology& topo,
                                   const FaultPlan& plan,
                                   const RecoveryOptions& options = {});

/// Writes the report as a single stable, *unstamped* JSON object (no
/// trailing newline) — `holmes.recovery_report.v1`.
void write_recovery_report_json(std::ostream& out,
                                const RecoveryReport& report);

/// Human-readable rendering for the CLI.
void print_recovery_report(std::ostream& out, const RecoveryReport& report);

}  // namespace holmes::core
