#include "core/report.h"

#include <algorithm>
#include <sstream>

#include "util/csv.h"
#include "util/error.h"
#include "util/table.h"

namespace holmes::core {

ExperimentGrid::ExperimentGrid(std::string title, std::string row_header)
    : title_(std::move(title)), row_header_(std::move(row_header)) {}

void ExperimentGrid::set(const std::string& row, const std::string& column,
                         const IterationMetrics& metrics) {
  if (std::find(rows_.begin(), rows_.end(), row) == rows_.end()) {
    rows_.push_back(row);
  }
  if (std::find(columns_.begin(), columns_.end(), column) == columns_.end()) {
    columns_.push_back(column);
  }
  cells_[{row, column}] = metrics;
}

bool ExperimentGrid::has(const std::string& row,
                         const std::string& column) const {
  return cells_.count({row, column}) > 0;
}

const IterationMetrics& ExperimentGrid::at(const std::string& row,
                                           const std::string& column) const {
  const auto it = cells_.find({row, column});
  HOLMES_CHECK_MSG(it != cells_.end(), "missing grid cell");
  return it->second;
}

ExperimentGrid::Extractor ExperimentGrid::tflops() {
  return [](const IterationMetrics& m) { return m.tflops_per_gpu; };
}
ExperimentGrid::Extractor ExperimentGrid::throughput() {
  return [](const IterationMetrics& m) { return m.throughput; };
}
ExperimentGrid::Extractor ExperimentGrid::iteration_seconds() {
  return [](const IterationMetrics& m) { return m.iteration_time; };
}
ExperimentGrid::Extractor ExperimentGrid::grad_sync_seconds() {
  return [](const IterationMetrics& m) { return m.grad_sync_span; };
}
ExperimentGrid::Extractor ExperimentGrid::grad_sync_exposed_seconds() {
  return [](const IterationMetrics& m) { return m.grad_sync_exposed; };
}

std::string ExperimentGrid::to_text(const Extractor& extract,
                                    int precision) const {
  std::vector<std::string> headers = {row_header_};
  headers.insert(headers.end(), columns_.begin(), columns_.end());
  TextTable table(std::move(headers));
  for (const std::string& row : rows_) {
    std::vector<std::string> cells = {row};
    for (const std::string& column : columns_) {
      cells.push_back(has(row, column)
                          ? TextTable::num(extract(at(row, column)), precision)
                          : "-");
    }
    table.add_row(std::move(cells));
  }
  return title_ + "\n\n" + table.to_string();
}

std::string ExperimentGrid::to_markdown(const Extractor& extract,
                                        int precision) const {
  std::ostringstream os;
  os << "### " << title_ << "\n\n| " << row_header_;
  for (const std::string& column : columns_) os << " | " << column;
  os << " |\n|" << std::string(3, '-');
  for (std::size_t c = 0; c < columns_.size(); ++c) os << "|" << "---";
  os << "|\n";
  for (const std::string& row : rows_) {
    os << "| " << row;
    for (const std::string& column : columns_) {
      os << " | "
         << (has(row, column)
                 ? TextTable::num(extract(at(row, column)), precision)
                 : std::string("-"));
    }
    os << " |\n";
  }
  return os.str();
}

std::string ExperimentGrid::to_csv() const {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row("row", "column", "tflops", "throughput", "iteration_s",
          "grad_sync_s", "grad_exposed_s", "allgather_s", "optimizer_s");
  for (const std::string& row : rows_) {
    for (const std::string& column : columns_) {
      if (!has(row, column)) continue;
      const IterationMetrics& m = at(row, column);
      csv.row(row, column, m.tflops_per_gpu, m.throughput, m.iteration_time,
              m.grad_sync_span, m.grad_sync_exposed, m.param_allgather_span,
              m.optimizer_span);
    }
  }
  return os.str();
}

}  // namespace holmes::core
