#pragma once

/// \file framework.h
/// Framework descriptors: each LLM training framework the paper compares is
/// a bundle of documented planning choices over the shared substrate, so
/// performance differences are attributable to policy, not implementation.
///
///  | framework          | groups          | transport       | partition      | dp sync     |
///  |--------------------|-----------------|-----------------|----------------|-------------|
///  | Holmes             | cluster-aligned | per-group best  | self-adapting  | overlapped  |
///  | Megatron-LM        | launcher order  | global fallback | uniform        | all-reduce  |
///  | Megatron-DeepSpeed | launcher order  | global fallback | uniform        | ZeRO-1      |
///  | Megatron-LLaMA     | launcher order  | global fallback | uniform        | overlapped  |
///
/// "Global fallback": in a heterogeneous job (multiple clusters or mixed
/// NIC types) stock NCCL cannot establish a uniform RDMA transport and
/// downgrades all inter-node traffic to TCP/Ethernet. Holmes' Automatic
/// NIC Selection builds per-group communicators that keep RDMA wherever
/// the group's members allow it.

#include <string>

#include "optimizer/dp_strategy.h"

namespace holmes::core {

enum class GroupPolicy { kLauncherOrder, kClusterAligned };
enum class TransportPolicy { kPerGroupBest, kGlobalEthernetFallback };
enum class PartitionPolicy { kUniform, kSelfAdapting };
enum class SchedulePolicy { kGPipe, kOneFOneB, kInterleaved };

struct FrameworkConfig {
  std::string name;
  GroupPolicy groups = GroupPolicy::kLauncherOrder;
  TransportPolicy transport = TransportPolicy::kGlobalEthernetFallback;
  PartitionPolicy partition = PartitionPolicy::kUniform;
  optimizer::DpSyncConfig dp_sync = optimizer::DpSyncConfig::all_reduce();
  /// Self-adapting partition hyper-parameter (paper: 1.05).
  double alpha = 1.05;
  /// Pipeline execution schedule. All frameworks default to PipeDream-Flush
  /// (1F1B); the interleaved schedule adds `virtual_chunks` model chunks
  /// per device (ignored otherwise).
  SchedulePolicy schedule = SchedulePolicy::kOneFOneB;
  int virtual_chunks = 1;

  /// Number of model chunks each device hosts under the configured
  /// schedule (1 unless interleaved).
  int effective_chunks() const {
    return schedule == SchedulePolicy::kInterleaved ? virtual_chunks : 1;
  }

  /// Returns a copy running the given schedule (chunks only meaningful for
  /// kInterleaved).
  FrameworkConfig with_schedule(SchedulePolicy policy, int chunks = 2) const;

  static FrameworkConfig holmes();
  static FrameworkConfig megatron_lm();
  static FrameworkConfig megatron_deepspeed();
  static FrameworkConfig megatron_llama();

  // ---- Ablations (Table 5) ----

  /// Holmes without Self-Adapting Pipeline Partition (uniform instead).
  FrameworkConfig without_self_adapting() const;
  /// Holmes without the Overlapped Distributed Optimizer (plain ZeRO-1).
  FrameworkConfig without_overlapped_optimizer() const;
};

}  // namespace holmes::core
