#include "core/experiment.h"

#include "util/error.h"

namespace holmes::core {

std::string to_string(NicEnv env) {
  switch (env) {
    case NicEnv::kInfiniBand: return "InfiniBand";
    case NicEnv::kRoCE: return "RoCE";
    case NicEnv::kEthernet: return "Ethernet";
    case NicEnv::kHybrid: return "Hybrid";
    case NicEnv::kSplitIB: return "InfiniBand & Ethernet";
    case NicEnv::kSplitRoCE: return "RoCE & Ethernet";
  }
  return "?";
}

net::Topology make_environment(NicEnv env, int total_nodes,
                               int gpus_per_node) {
  const bool split = env == NicEnv::kHybrid || env == NicEnv::kSplitIB ||
                     env == NicEnv::kSplitRoCE;
  if (split && total_nodes % 2 != 0) {
    throw ConfigError("environment '" + to_string(env) +
                      "' needs an even node count, got " +
                      std::to_string(total_nodes));
  }
  switch (env) {
    case NicEnv::kInfiniBand:
      return net::Topology::homogeneous(total_nodes, net::NicType::kInfiniBand,
                                        gpus_per_node);
    case NicEnv::kRoCE:
      return net::Topology::homogeneous(total_nodes, net::NicType::kRoCE,
                                        gpus_per_node);
    case NicEnv::kEthernet:
      return net::Topology::homogeneous(total_nodes, net::NicType::kEthernet,
                                        gpus_per_node);
    case NicEnv::kHybrid:
      return net::Topology::hybrid_two_clusters(total_nodes / 2, gpus_per_node);
    case NicEnv::kSplitIB:
      return net::Topology::split_clusters(total_nodes / 2,
                                           net::NicType::kInfiniBand,
                                           gpus_per_node);
    case NicEnv::kSplitRoCE:
      return net::Topology::split_clusters(total_nodes / 2,
                                           net::NicType::kRoCE, gpus_per_node);
  }
  throw ConfigError("unknown environment");
}

IterationMetrics run_experiment(const FrameworkConfig& framework,
                                const net::Topology& topo, int group_id,
                                const CostModel& cost, int iterations) {
  const Planner planner(framework);
  const TrainingPlan plan = planner.plan(topo, model::parameter_group(group_id));
  return TrainingSimulator(cost).run(topo, plan, iterations);
}

IterationMetrics run_experiment(const FrameworkConfig& framework, NicEnv env,
                                int total_nodes, int group_id,
                                const CostModel& cost, int iterations) {
  const net::Topology topo = make_environment(env, total_nodes);
  return run_experiment(framework, topo, group_id, cost, iterations);
}

}  // namespace holmes::core
