#pragma once

/// \file perturbation.h
/// Runtime perturbations: stragglers and compute jitter.
///
/// The paper assumes "communication between devices is stable and all
/// devices are consistently online" and names fault handling as future
/// work. This module takes the first step: deterministic (seeded)
/// perturbation of the simulated execution, so the sensitivity of each
/// scheduling policy to slow devices can be measured — see
/// bench_straggler.

#include <cstdint>
#include <map>

#include "util/rng.h"
#include "util/units.h"

namespace holmes::core {

struct Perturbations {
  /// Per-rank compute slowdown multipliers (> 1 = straggler). Ranks not
  /// listed run at nominal speed.
  std::map<int, double> device_slowdown;

  /// Log-uniform compute jitter: every compute task's duration is scaled
  /// by a factor drawn uniformly from [1, 1 + compute_jitter]. 0 disables.
  double compute_jitter = 0.0;

  /// Seed for the jitter stream; identical seeds reproduce identical runs.
  std::uint64_t seed = 0x5EED;

  bool empty() const {
    return device_slowdown.empty() && compute_jitter == 0.0;
  }

  /// Effective multiplier for one compute task on `rank`. `rng` must be the
  /// simulation's perturbation stream (advanced once per call when jitter
  /// is enabled, so call order must be deterministic — it is: task creation
  /// order).
  double factor(int rank, Rng& rng) const {
    double f = 1.0;
    const auto it = device_slowdown.find(rank);
    if (it != device_slowdown.end()) f *= it->second;
    if (compute_jitter > 0) f *= rng.uniform(1.0, 1.0 + compute_jitter);
    return f;
  }
};

}  // namespace holmes::core
