#pragma once

/// \file perturbation.h
/// Runtime perturbations: stragglers, compute jitter, and transient NIC
/// degradation windows.
///
/// The paper assumes "communication between devices is stable and all
/// devices are consistently online" and names fault handling as future
/// work. This module is the runtime half of that story: deterministic
/// (seeded) perturbation of the simulated execution — per-rank compute
/// slowdowns, jitter, and time-windowed bandwidth degradation — so the
/// sensitivity of each scheduling policy to slow devices and flaky fabrics
/// can be measured. bench_straggler covers the static slowdowns;
/// core/faults.h builds full fault schedules (holmes.fault_plan.v1) on top
/// and docs/robustness.md describes the model.

#include <cstdint>
#include <map>
#include <vector>

#include "util/rng.h"
#include "util/units.h"

namespace holmes::core {

/// Transient NIC degradation: a time-windowed bandwidth multiplier scoped
/// to a cluster (or one node within it). Models PFC pause storms and
/// congested uplinks — the affected devices' RDMA ports serve traffic at
/// `bandwidth_factor` of nominal inside [begin_s, end_s). Lowered by
/// TrainingSimulator into a sim::RateTimeline on the ports of every rank in
/// scope (the node-shared Ethernet ports degrade instead when the scoped
/// cluster has Ethernet-only NICs).
struct NicDegradation {
  int cluster = -1;          ///< cluster index; -1 = every cluster
  int node_in_cluster = -1;  ///< 0-based node within the cluster; -1 = all
  double begin_s = 0;        ///< window start, simulated seconds
  double end_s = 0;          ///< window end (exclusive), simulated seconds
  double bandwidth_factor = 1.0;  ///< achievable fraction inside the window
};

struct Perturbations {
  /// Per-rank compute slowdown multipliers (> 1 = straggler). Ranks not
  /// listed run at nominal speed.
  std::map<int, double> device_slowdown;

  /// Log-uniform compute jitter: every compute task's duration is scaled
  /// by a factor drawn uniformly from [1, 1 + compute_jitter]. 0 disables.
  double compute_jitter = 0.0;

  /// Transient NIC degradation windows (fault injection; see
  /// core/faults.h). Active windows force the simulator to bypass any
  /// shared SimMemo — execution-time rates are not part of the memo key —
  /// and the bypass is counted in the engine self-profile.
  std::vector<NicDegradation> nic_degradation;

  /// Seed for the jitter stream; identical seeds reproduce identical runs.
  std::uint64_t seed = 0x5EED;

  bool empty() const {
    return device_slowdown.empty() && compute_jitter == 0.0 &&
           nic_degradation.empty();
  }

  /// Effective multiplier for one compute task on `rank`. `rng` must be the
  /// simulation's perturbation stream (advanced once per call when jitter
  /// is enabled, so call order must be deterministic — it is: task creation
  /// order).
  double factor(int rank, Rng& rng) const {
    double f = 1.0;
    const auto it = device_slowdown.find(rank);
    if (it != device_slowdown.end()) f *= it->second;
    if (compute_jitter > 0) f *= rng.uniform(1.0, 1.0 + compute_jitter);
    return f;
  }
};

}  // namespace holmes::core
