#include "core/framework.h"

namespace holmes::core {

FrameworkConfig FrameworkConfig::holmes() {
  FrameworkConfig config;
  config.name = "Holmes";
  config.groups = GroupPolicy::kClusterAligned;
  config.transport = TransportPolicy::kPerGroupBest;
  config.partition = PartitionPolicy::kSelfAdapting;
  config.dp_sync = optimizer::DpSyncConfig::overlapped();
  return config;
}

FrameworkConfig FrameworkConfig::megatron_lm() {
  FrameworkConfig config;
  config.name = "Megatron-LM";
  config.groups = GroupPolicy::kLauncherOrder;
  config.transport = TransportPolicy::kGlobalEthernetFallback;
  config.partition = PartitionPolicy::kUniform;
  config.dp_sync = optimizer::DpSyncConfig::all_reduce();
  return config;
}

FrameworkConfig FrameworkConfig::megatron_deepspeed() {
  FrameworkConfig config = megatron_lm();
  config.name = "Megatron-DeepSpeed";
  config.dp_sync = optimizer::DpSyncConfig::distributed();
  return config;
}

FrameworkConfig FrameworkConfig::megatron_llama() {
  FrameworkConfig config = megatron_lm();
  config.name = "Megatron-LLaMA";
  config.dp_sync = optimizer::DpSyncConfig::overlapped();
  return config;
}

FrameworkConfig FrameworkConfig::without_self_adapting() const {
  FrameworkConfig config = *this;
  config.name += " w/o Self-Adapting-Partition";
  config.partition = PartitionPolicy::kUniform;
  return config;
}

FrameworkConfig FrameworkConfig::with_schedule(SchedulePolicy policy,
                                               int chunks) const {
  FrameworkConfig config = *this;
  config.schedule = policy;
  config.virtual_chunks = policy == SchedulePolicy::kInterleaved ? chunks : 1;
  switch (policy) {
    case SchedulePolicy::kGPipe: config.name += " [gpipe]"; break;
    case SchedulePolicy::kOneFOneB: break;
    case SchedulePolicy::kInterleaved:
      config.name += " [interleaved-" + std::to_string(chunks) + "]";
      break;
  }
  return config;
}

FrameworkConfig FrameworkConfig::without_overlapped_optimizer() const {
  FrameworkConfig config = *this;
  config.name += " w/o Overlapped Optimizer";
  config.dp_sync = optimizer::DpSyncConfig::distributed();
  return config;
}

}  // namespace holmes::core
