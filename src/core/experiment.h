#pragma once

/// \file experiment.h
/// Named NIC environments from the paper's evaluation and a one-call
/// experiment runner shared by the bench binaries and integration tests.

#include <string>

#include "core/training_sim.h"

namespace holmes::core {

/// The environments of §4.1 ("NIC Environment") plus Fig. 4's split cases.
enum class NicEnv {
  kInfiniBand,  ///< one cluster, IB NICs
  kRoCE,        ///< one cluster, RoCE NICs
  kEthernet,    ///< one cluster, Ethernet NICs only
  kHybrid,      ///< two equal clusters, IB + RoCE, no shared switch
  kSplitIB,     ///< two equal IB clusters, no shared switch (Fig. 4)
  kSplitRoCE,   ///< two equal RoCE clusters, no shared switch (Fig. 4)
};

std::string to_string(NicEnv env);

/// Builds the topology for `env` over `total_nodes` nodes (split
/// environments need an even count). Throws holmes::ConfigError otherwise.
net::Topology make_environment(NicEnv env, int total_nodes,
                               int gpus_per_node = 8);

/// Plans and simulates parameter group `group_id` with `framework` on the
/// given topology; returns steady-state metrics.
IterationMetrics run_experiment(const FrameworkConfig& framework,
                                const net::Topology& topo, int group_id,
                                const CostModel& cost = {},
                                int iterations = 3);

/// Convenience overload building the topology from a named environment.
IterationMetrics run_experiment(const FrameworkConfig& framework, NicEnv env,
                                int total_nodes, int group_id,
                                const CostModel& cost = {},
                                int iterations = 3);

}  // namespace holmes::core
