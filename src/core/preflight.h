#pragma once

/// \file preflight.h
/// Adapter between the planning layer and the static verifier.
///
/// `holmes_verify` deliberately layers below `core` (it knows nothing about
/// TrainingPlan or SimArtifacts); this module owns the downward mapping:
///
///  - make_plan_view   — TrainingPlan -> verify::PlanView (non-owning; the
///                       plan must outlive the view)
///  - lint_training_plan — run the HV1xx plan rules against a resolved plan
///  - lint_artifacts   — run the HV2xx graph rules (and, when timings are
///                       present, the HV3xx execution and HV4xx flow rules)
///                       against the artifacts a TrainingSimulator::run left
///                       behind
///  - make_flow_options — derive the HV4xx options from a topology: the
///                       resource -> cluster map (parsed from the canonical
///                       "gpu<rank>.*" / "node<n>.*" resource names) that
///                       the channel-cut-balance rule needs
///  - preflight_or_throw — the debug-mode hook TrainingSimulator::run calls
///                       before lowering: logs every diagnostic and throws
///                       ConfigError when any rule fires at error severity.
///
/// The pre-flight only engages when the log level is kDebug or lower, so
/// production sweeps pay nothing for it.

#include "core/training_sim.h"
#include "net/topology.h"
#include "verify/flow_lints.h"
#include "verify/graph_lints.h"
#include "verify/plan_lints.h"

namespace holmes::core {

/// Builds the verifier's non-owning view of `plan`. The returned view
/// borrows `plan`'s groups/partition/stage_nics/model; `plan` must outlive
/// it.
verify::PlanView make_plan_view(const TrainingPlan& plan);

/// Runs every plan-family (HV1xx) rule against `plan` on `topo`.
verify::LintReport lint_training_plan(const net::Topology& topo,
                                      const TrainingPlan& plan);

/// Runs the graph-family (HV2xx) rules against `artifacts.graph`, using the
/// rank -> compute-resource map as the serial programs for the deadlock
/// rule, and — when `artifacts.result` is populated — the execution-family
/// (HV3xx) and flow-family (HV4xx) rules against the timings. `topo`, when
/// non-null, enables the cluster-aware flow rules (HV404) via
/// make_flow_options.
verify::LintReport lint_artifacts(const SimArtifacts& artifacts,
                                  const net::Topology* topo = nullptr);

/// Builds the HV4xx flow-lint options for `artifacts.graph` on `topo`:
/// resolves every resource to its owning cluster by parsing the canonical
/// resource names ("gpu<rank>.*" via the rank's device, "node<n>.*" via the
/// global node index); unparseable names stay -1 (excluded from HV404).
verify::FlowLintOptions make_flow_options(const SimArtifacts& artifacts,
                                          const net::Topology& topo);

/// Debug-mode pre-flight: when logging at kDebug or lower, lints `plan` and
/// logs each diagnostic; throws holmes::ConfigError if any error-severity
/// diagnostic fired. No-op at higher log levels.
void preflight_or_throw(const net::Topology& topo, const TrainingPlan& plan);

}  // namespace holmes::core
