#pragma once

/// \file report.h
/// Experiment result grids with human- and machine-readable renderers.
///
/// Benches and the CLI accumulate (row, column) -> metrics cells and render
/// them as an aligned text table (stdout), GitHub markdown (reports), or
/// CSV (plotting pipelines). One grid holds one metric view; the value
/// extractor picks which IterationMetrics field a rendering shows.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/training_sim.h"

namespace holmes::core {

class ExperimentGrid {
 public:
  /// `title` heads every rendering; `row_header` labels the first column.
  ExperimentGrid(std::string title, std::string row_header);

  /// Records the metrics of one scenario cell. Rows/columns appear in
  /// first-insertion order. Re-setting a cell overwrites it.
  void set(const std::string& row, const std::string& column,
           const IterationMetrics& metrics);

  bool has(const std::string& row, const std::string& column) const;
  const IterationMetrics& at(const std::string& row,
                             const std::string& column) const;

  const std::vector<std::string>& rows() const { return rows_; }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::string& title() const { return title_; }

  /// Extracts the rendered value from a cell (e.g. TFLOPS or throughput).
  using Extractor = std::function<double(const IterationMetrics&)>;
  static Extractor tflops();
  static Extractor throughput();
  static Extractor iteration_seconds();
  static Extractor grad_sync_seconds();
  /// The part of the grad sync not hidden under fwd/bwd compute (Table 5).
  static Extractor grad_sync_exposed_seconds();

  /// Aligned text table of one metric (missing cells render as "-").
  std::string to_text(const Extractor& extract, int precision = 2) const;

  /// GitHub-flavoured markdown table of one metric.
  std::string to_markdown(const Extractor& extract, int precision = 2) const;

  /// CSV with one line per cell: row,column,tflops,throughput,iteration_s,
  /// grad_sync_s,grad_exposed_s,allgather_s,optimizer_s. Includes a header.
  std::string to_csv() const;

 private:
  std::string title_;
  std::string row_header_;
  std::vector<std::string> rows_;
  std::vector<std::string> columns_;
  std::map<std::pair<std::string, std::string>, IterationMetrics> cells_;
};

}  // namespace holmes::core
