#pragma once

/// \file analytic.h
/// Closed-form first-order estimate of the steady-state iteration time.
///
/// Serves two purposes: (1) cross-validation — the DES should agree with
/// the textbook pipeline/ring formulas within tens of percent wherever the
/// formulas apply (homogeneous clusters, 1F1B, no overlap), which the
/// `AnalyticAgreement` tests assert; (2) a fast pre-filter for layout
/// search (evaluating the formula is ~10^4x cheaper than a simulation).
///
/// Model (plain 1F1B, non-overlapped distributed optimizer):
///   T ~= overhead + m * max_stage(tf + tb)            (steady cadence)
///        + (p - 1) * avg_stage(tf + tb)               (fill/drain bubble)
///        + RS(d, grads) + params/d / opt_rate + AG(d, params)
/// with ring time X(d, V) = (d-1)/d * V / bw_bottleneck + (d-1) * latency.

#include "core/cost_model.h"
#include "core/plan.h"

namespace holmes::core {

struct AnalyticBreakdown {
  SimTime overhead = 0;
  SimTime steady_compute = 0;   ///< m * slowest-stage per-micro-batch time
  SimTime pipeline_bubble = 0;  ///< (p-1) fill/drain
  SimTime grad_reduce_scatter = 0;
  SimTime optimizer = 0;
  SimTime param_allgather = 0;

  SimTime total() const {
    return overhead + steady_compute + pipeline_bubble + grad_reduce_scatter +
           optimizer + param_allgather;
  }
};

/// First-order breakdown for `plan` on `topo`. Meaningful for 1F1B without
/// communication overlap (the formula ignores overlap and p2p exposure);
/// other plans still produce a value, interpreted as their non-overlapped
/// bound.
AnalyticBreakdown analytic_iteration(const net::Topology& topo,
                                     const TrainingPlan& plan,
                                     const CostModel& cost = {});

}  // namespace holmes::core
