#include "core/timeline_report.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/run_stats.h"
#include "net/topology_parse.h"
#include "sim/rate_timeline.h"
#include "util/build_info.h"
#include "util/error.h"
#include "util/json.h"
#include "util/units.h"
#include "verify/rules.h"

namespace holmes::core {

namespace {

std::string percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

/// Ten-level ASCII sparkline of values already normalized to [0, 1].
std::string sparkline(const std::vector<double>& values) {
  static constexpr char kLevels[] = " .:-=+*#%@";
  std::string line;
  line.reserve(values.size());
  for (double v : values) {
    const double clamped = std::min(1.0, std::max(0.0, v));
    const int level =
        std::min(9, static_cast<int>(clamped * 10.0));
    line.push_back(kLevels[level]);
  }
  return line;
}

void write_bucket_array(std::ostream& out, const obs::StepSeries& series,
                        const obs::Window& window, int buckets,
                        double scale = 1.0) {
  const std::vector<double> values =
      series.bucketize(window.begin, window.end, buckets);
  out << "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out << ",";
    out << json_number(values[i] * scale);
  }
  out << "]";
}

/// Cumulative curves are sampled at bucket *right edges* (the delivered
/// total by the end of each bucket) rather than time-averaged, so the last
/// sample equals the window's delivered total exactly.
void write_sampled_array(std::ostream& out, const obs::StepSeries& series,
                         const obs::Window& window, int buckets) {
  const double span = window.end - window.begin;
  out << "[";
  for (int i = 0; i < buckets; ++i) {
    if (i != 0) out << ",";
    const double edge =
        i + 1 == buckets
            ? window.end
            : window.begin + span * (static_cast<double>(i + 1) / buckets);
    out << json_number(series.value_at(edge));
  }
  out << "]";
}

bool keep_resource(const obs::ResourceTimeline& res,
                   const TimelineReportOptions& options) {
  if (!res.is_device && !res.is_link) return false;
  // Idle links (no busy time, no bytes) are elided, mirroring the stats
  // report, so hybrid-topology documents stay reviewable as goldens.
  if (res.is_link && res.busy_total <= 0 && res.bytes <= 0) return false;
  if (!options.resource_filter.empty() &&
      res.name.find(options.resource_filter) == std::string::npos) {
    return false;
  }
  return true;
}

}  // namespace

TimelineSummary build_timeline_summary(const net::Topology& topo,
                                       const TrainingPlan& plan,
                                       const IterationMetrics& metrics,
                                       const SimArtifacts& artifacts,
                                       const TimelineReportOptions& options) {
  HOLMES_CHECK_MSG(artifacts.result.has_value(),
                   "timeline needs populated artifacts (pass a SimArtifacts* "
                   "to TrainingSimulator::run)");
  const sim::SimResult& result = *artifacts.result;

  TimelineSummary summary;
  summary.topology = net::format_topology(topo);
  summary.framework = plan.framework.name;
  summary.workload = workload_label(plan);
  summary.iteration_s = metrics.iteration_time;
  summary.options = options;
  summary.options.buckets = std::max(1, options.buckets);
  summary.options.top_talkers = std::max(0, options.top_talkers);

  obs::TimelineOptions extract;
  if (options.override_window) {
    // explain's clipping semantics, shared verbatim: clip to the run and
    // reject windows that end up empty.
    const double begin = std::max(0.0, options.window_begin);
    const double end = options.window_end < 0
                           ? result.makespan()
                           : std::min(options.window_end, result.makespan());
    HOLMES_CHECK_MSG(begin < end, "timeline window is empty (begin >= end)");
    extract.window = {begin, end};
  }
  extract.saturation_threshold = options.saturation_threshold;
  extract.threads = options.threads;

  const sim::RateTimeline* rates =
      artifacts.rates.empty() ? nullptr : &artifacts.rates;
  summary.timeline = obs::extract_timeline(
      artifacts.graph, result, extract,
      [](const std::string& name) -> std::string {
        if (name.find(".compute") != std::string::npos) return "compute";
        return nic_class_of(name);
      },
      rates);

  // HV406: the Fig. 3 diagnosis. The rule is always *checked* once a
  // timeline exists; it *fires* when the Ethernet fallback fabric is
  // saturated for more than the configured share of the observed window.
  summary.lint.mark_checked(verify::kRuleFabricSaturation);
  const double span =
      summary.timeline.window.end - summary.timeline.window.begin;
  for (const obs::ClassTimeline& cls : summary.timeline.classes) {
    if (cls.nic_class != "Ethernet") continue;
    const double share = span > 0 ? cls.saturated_total / span : 0.0;
    if (share > options.saturation_warn_share) {
      char buf[256];
      std::snprintf(
          buf, sizeof(buf),
          "the Ethernet fallback fabric is saturated (>= %.0f%% of its %zu "
          "ports busy) for %s of the observed window (threshold %s): the "
          "fallback NIC, not compute, bounds this run",
          options.saturation_threshold * 100.0, cls.ports,
          percent(share).c_str(), percent(options.saturation_warn_share).c_str());
      summary.lint.add(verify::kRuleFabricSaturation,
                       verify::Severity::kWarning, "Ethernet", buf);
    }
  }
  return summary;
}

void write_timeline_json(std::ostream& out, const TimelineSummary& summary) {
  const obs::Timeline& t = summary.timeline;
  const obs::Window& window = t.window;
  const int buckets = std::max(1, summary.options.buckets);
  const double span = window.end - window.begin;

  out << "{\"schema\":\"" << kTimelineSchema << "\",\"fingerprint\":";
  write_build_info_json(out, current_build_info());
  out << ",\"topology\":\"" << json_escape(summary.topology) << "\""
      << ",\"framework\":\"" << json_escape(summary.framework) << "\""
      << ",\"workload\":\"" << json_escape(summary.workload) << "\""
      << ",\"iteration_s\":" << json_number(summary.iteration_s)
      << ",\"makespan_s\":" << json_number(t.makespan)
      << ",\"window_begin_s\":" << json_number(window.begin)
      << ",\"window_end_s\":" << json_number(window.end)
      << ",\"buckets\":" << buckets
      << ",\"saturation_threshold\":"
      << json_number(summary.options.saturation_threshold)
      << ",\"saturation_warn_share\":"
      << json_number(summary.options.saturation_warn_share);

  out << ",\"resources\":[";
  bool first = true;
  for (const obs::ResourceTimeline& res : t.resources) {
    if (!keep_resource(res, summary.options)) continue;
    if (!first) out << ",";
    first = false;
    out << "{\"id\":" << res.id << ",\"name\":\"" << json_escape(res.name)
        << "\",\"class\":\"" << json_escape(res.nic_class) << "\",\"kind\":\""
        << (res.is_device ? "device" : "link") << "\""
        << ",\"busy_s\":" << json_number(res.busy_total)
        << ",\"waiting_s\":" << json_number(res.waiting_total)
        << ",\"utilization\":"
        << json_number(span > 0 ? res.busy_total / span : 0.0)
        << ",\"bytes\":" << res.bytes << ",\"tasks\":" << res.tasks
        << ",\"occupancy\":";
    write_bucket_array(out, res.busy, window, buckets);
    out << ",\"queue_depth\":";
    write_bucket_array(out, res.queue, window, buckets);
    out << "}";
  }
  out << "]";

  out << ",\"channels\":[";
  first = true;
  for (const obs::ChannelTimeline& chan : t.channels) {
    if (chan.transfers == 0 && chan.bytes == 0) continue;
    if (!first) out << ",";
    first = false;
    out << "{\"id\":" << chan.id << ",\"name\":\"" << json_escape(chan.name)
        << "\",\"bytes\":" << chan.bytes
        << ",\"transfers\":" << chan.transfers
        << ",\"busy_s\":" << json_number(chan.busy_total)
        << ",\"peak_in_flight_bytes\":" << json_number(chan.peak_in_flight)
        << ",\"peak_at_s\":" << json_number(chan.peak_at)
        << ",\"in_flight\":";
    write_bucket_array(out, chan.in_flight, window, buckets);
    out << ",\"cumulative\":";
    write_sampled_array(out, chan.cumulative, window, buckets);
    out << "}";
  }
  out << "]";

  out << ",\"classes\":[";
  first = true;
  for (const obs::ClassTimeline& cls : t.classes) {
    if (!first) out << ",";
    first = false;
    const double ports = static_cast<double>(cls.ports);
    out << "{\"class\":\"" << json_escape(cls.nic_class)
        << "\",\"ports\":" << cls.ports
        << ",\"busy_s\":" << json_number(cls.busy_total) << ",\"occupancy\":";
    write_bucket_array(out, cls.busy_ports, window, buckets,
                       ports > 0 ? 1.0 / ports : 0.0);
    out << ",\"saturated_s\":" << json_number(cls.saturated_total)
        << ",\"saturated_share\":"
        << json_number(span > 0 ? cls.saturated_total / span : 0.0)
        << ",\"saturated_intervals\":[";
    for (std::size_t i = 0; i < cls.saturated.size(); ++i) {
      if (i != 0) out << ",";
      out << "{\"begin_s\":" << json_number(cls.saturated[i].first)
          << ",\"end_s\":" << json_number(cls.saturated[i].second) << "}";
    }
    out << "]}";
  }
  out << "]";

  out << ",\"rate_overlays\":[";
  first = true;
  for (const obs::RateOverlay& overlay : t.overlays) {
    if (!first) out << ",";
    first = false;
    out << "{\"resource\":" << overlay.resource << ",\"name\":\""
        << json_escape(overlay.name)
        << "\",\"degraded_s\":" << json_number(overlay.degraded_total)
        << ",\"effective_rate\":";
    write_bucket_array(out, overlay.effective, window, buckets);
    out << "}";
  }
  out << "]";

  out << ",\"top_talkers\":[";
  const std::size_t talkers =
      std::min(t.top_talkers.size(),
               static_cast<std::size_t>(summary.options.top_talkers));
  for (std::size_t i = 0; i < talkers; ++i) {
    const obs::TopTalker& talker = t.top_talkers[i];
    if (i != 0) out << ",";
    out << "{\"resource\":" << talker.resource << ",\"name\":\""
        << json_escape(talker.name) << "\",\"class\":\""
        << json_escape(talker.nic_class) << "\",\"bytes\":" << talker.bytes
        << ",\"busy_s\":" << json_number(talker.busy)
        << ",\"share\":" << json_number(talker.share) << "}";
  }
  out << "]";

  out << ",\"lint\":";
  verify::write_json(out, summary.lint);
  out << "}";
}

void print_timeline(std::ostream& out, const TimelineSummary& summary) {
  const obs::Timeline& t = summary.timeline;
  const obs::Window& window = t.window;
  const int buckets = std::max(1, summary.options.buckets);
  const double span = window.end - window.begin;

  out << "timeline: " << summary.framework << " on " << summary.topology
      << "\n  workload " << summary.workload << ", iteration "
      << format_time(summary.iteration_s) << "\n  window ["
      << json_number(window.begin) << ", " << json_number(window.end)
      << ") s of " << format_time(t.makespan) << " makespan, " << buckets
      << " buckets\n";

  out << "\nfabric occupancy (busy ports / class ports):\n";
  for (const obs::ClassTimeline& cls : t.classes) {
    const double ports = static_cast<double>(cls.ports);
    std::vector<double> values =
        cls.busy_ports.bucketize(window.begin, window.end, buckets);
    double peak = 0;
    for (double& v : values) {
      if (ports > 0) v /= ports;
      peak = std::max(peak, v);
    }
    const double avg =
        span > 0 && ports > 0 ? cls.busy_total / (span * ports) : 0.0;
    char head[64];
    std::snprintf(head, sizeof(head), "  %-10s %2zu port%s |",
                  cls.nic_class.c_str(), cls.ports,
                  cls.ports == 1 ? " " : "s");
    out << head << sparkline(values) << "| avg " << percent(avg) << " peak "
        << percent(peak);
    if (cls.saturated_total > 0) {
      out << " saturated " << format_time(cls.saturated_total) << " ("
          << percent(span > 0 ? cls.saturated_total / span : 0.0) << ")";
    }
    out << "\n";
  }

  const std::size_t talkers =
      std::min(t.top_talkers.size(),
               static_cast<std::size_t>(summary.options.top_talkers));
  if (talkers > 0) {
    out << "\ntop talkers (bytes on link, share of all link traffic):\n";
    for (std::size_t i = 0; i < talkers; ++i) {
      const obs::TopTalker& talker = t.top_talkers[i];
      char line[160];
      std::snprintf(line, sizeof(line), "  %2zu. %-28s %-10s %10s  %s busy  %s\n",
                    i + 1, talker.name.c_str(), talker.nic_class.c_str(),
                    format_bytes(talker.bytes).c_str(),
                    format_time(talker.busy).c_str(),
                    percent(talker.share).c_str());
      out << line;
    }
  }

  bool header = false;
  for (const obs::ChannelTimeline& chan : t.channels) {
    if (chan.transfers == 0 && chan.bytes == 0) continue;
    if (!header) {
      out << "\nchannels (peak bytes in flight):\n";
      header = true;
    }
    std::vector<double> values =
        chan.in_flight.bucketize(window.begin, window.end, buckets);
    if (chan.peak_in_flight > 0) {
      for (double& v : values) v /= chan.peak_in_flight;
    }
    char head[64];
    std::snprintf(head, sizeof(head), "  %-12s |", chan.name.c_str());
    out << head << sparkline(values) << "| "
        << format_bytes(chan.bytes) << " in " << chan.transfers
        << " transfers, peak "
        << format_bytes(static_cast<Bytes>(chan.peak_in_flight)) << " at "
        << format_time(chan.peak_at) << "\n";
  }

  if (!t.overlays.empty()) {
    out << "\neffective rate (1.0 = nominal; dips are degradation windows):\n";
    for (const obs::RateOverlay& overlay : t.overlays) {
      const std::vector<double> values =
          overlay.effective.bucketize(window.begin, window.end, buckets);
      char head[64];
      std::snprintf(head, sizeof(head), "  %-28s |", overlay.name.c_str());
      out << head << sparkline(values) << "| degraded "
          << format_time(overlay.degraded_total) << "\n";
    }
  }

  out << "\n";
  verify::print_text(out, summary.lint);
}

}  // namespace holmes::core
