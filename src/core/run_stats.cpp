#include "core/run_stats.h"

#include <cstdio>
#include <string>
#include <vector>

#include "core/tags.h"
#include "net/topology_parse.h"
#include "obs/accounting.h"
#include "util/error.h"
#include "util/units.h"

namespace holmes::core {

namespace {

std::string format_billions(double billions) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", billions);
  return buf;
}

}  // namespace

obs::RunSummary build_run_summary(const net::Topology& topo,
                                  const TrainingPlan& plan,
                                  const IterationMetrics& metrics,
                                  const SimArtifacts& artifacts) {
  HOLMES_CHECK_MSG(artifacts.result.has_value(),
                   "run summary needs populated artifacts (pass a "
                   "SimArtifacts* to TrainingSimulator::run)");
  const sim::TaskGraph& graph = artifacts.graph;
  const sim::SimResult& result = *artifacts.result;
  const obs::Window window{artifacts.window_begin(), artifacts.window_end()};
  const int last = artifacts.iterations - 1;
  auto last_tag = [last](sim::TaskTag base) {
    return tags::for_iteration(base, last);
  };

  obs::RunSummary s;
  s.topology = net::format_topology(topo);
  s.framework = plan.framework.name;
  s.workload = "group " + std::to_string(plan.workload.id) + " (" +
               format_billions(plan.workload.nominal_billions) + "B params)";
  s.iterations = artifacts.iterations;
  s.window_begin_s = window.begin;
  s.window_end_s = window.end;
  s.iteration_s = metrics.iteration_time;
  s.tflops_per_gpu = metrics.tflops_per_gpu;
  s.throughput = metrics.throughput;

  // ---- per-resource accounts: devices and links ----
  const std::vector<obs::ResourceAccount> resources =
      obs::account_resources(graph, result, window);
  for (const obs::ResourceAccount& r : resources) {
    if (r.is_device) {
      obs::RunSummary::Device d;
      d.name = r.name;
      d.busy_s = r.busy;
      d.waiting_s = r.waiting;
      d.utilization = r.utilization(window);
      d.tasks = r.tasks;
      s.devices.push_back(std::move(d));
    } else if (r.is_link && (r.busy > 0 || r.bytes > 0)) {
      obs::RunSummary::Link l;
      l.name = r.name;
      l.busy_s = r.busy;
      l.waiting_s = r.waiting;
      l.utilization = r.utilization(window);
      l.bytes = r.bytes;
      l.transfers = r.tasks;
      l.effective_gbps =
          r.busy > 0
              ? units::bytes_per_sec_to_gbps(static_cast<double>(r.bytes) /
                                             r.busy)
              : 0.0;
      s.links.push_back(std::move(l));
    }
  }

  // ---- per-stage pipeline-bubble fraction, over the measured iteration ----
  const int p = plan.degrees.pipeline;
  const int virtual_stages = plan.virtual_stages();
  for (int stage = 0; stage < p; ++stage) {
    const std::vector<int> ranks = plan.groups.stage_ranks(stage);
    std::vector<bool> on_stage(graph.resource_count(), false);
    for (int rank : ranks) {
      on_stage[static_cast<std::size_t>(
          artifacts.compute_resource[static_cast<std::size_t>(rank)])] = true;
    }
    const sim::TaskTag fwd = last_tag(tags::kForward);
    const sim::TaskTag bwd = last_tag(tags::kBackward);
    const obs::SpanAccount acct = obs::account_tasks(
        graph, result,
        [&](sim::TaskId, const sim::Task& task) {
          return (task.tag == fwd || task.tag == bwd) && task.resource >= 0 &&
                 on_stage[static_cast<std::size_t>(task.resource)];
        },
        window);
    obs::RunSummary::Stage st;
    st.stage = stage;
    st.devices = static_cast<int>(ranks.size());
    for (int v = stage; v < virtual_stages; v += p) {
      st.layers += plan.partition[static_cast<std::size_t>(v)];
    }
    st.compute_busy_s = acct.busy;
    st.span_s = acct.span;
    const double capacity = st.devices * acct.span;
    st.bubble_fraction = capacity > 0 ? 1.0 - acct.busy / capacity : 0.0;
    s.stages.push_back(st);
  }

  // ---- per-communicator traffic ----
  for (const obs::ChannelAccount& c :
       obs::account_channels(graph, result, window)) {
    if (c.transfers == 0) continue;
    obs::RunSummary::Comm comm;
    comm.name = c.name;
    comm.bytes = c.bytes;
    comm.transfers = c.transfers;
    comm.busy_s = c.busy;
    comm.span_s = c.span;
    comm.bus_gbps = units::bytes_per_sec_to_gbps(c.effective_bandwidth());
    s.comms.push_back(std::move(comm));
  }

  // ---- exposed vs overlapped communication, measured iteration ----
  const obs::TaskPredicate compute_cover =
      obs::tag_in({last_tag(tags::kForward), last_tag(tags::kBackward)});
  const obs::OverlapAccount grad = obs::account_overlap(
      graph, result,
      obs::tag_in({last_tag(tags::kGradReduceScatter),
                   last_tag(tags::kGradAllReduce)}),
      compute_cover, window);
  s.grad_sync = {grad.total, grad.overlapped, grad.exposed};
  const obs::OverlapAccount gather = obs::account_overlap(
      graph, result, obs::tag_in({last_tag(tags::kParamAllGather)}),
      compute_cover, window);
  s.param_allgather = {gather.total, gather.overlapped, gather.exposed};

  return s;
}

}  // namespace holmes::core
