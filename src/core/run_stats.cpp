#include "core/run_stats.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/tags.h"
#include "net/topology_parse.h"
#include "obs/accounting.h"
#include "obs/sensitivity.h"
#include "util/error.h"
#include "util/units.h"

namespace holmes::core {

namespace {

std::string format_billions(double billions) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", billions);
  return buf;
}

/// Communicator kind of a transfer, from its canonical per-iteration tag
/// (tag = base + iteration * kIterationStride); falls back to the channel
/// name for transfers outside the canonical set.
std::string comm_kind_of(const sim::TaskGraph& graph, const sim::Task& task) {
  switch (task.tag % tags::kIterationStride) {
    case tags::kActivationP2P: return "pp p2p";
    case tags::kGradReduceScatter: return "grad reduce-scatter";
    case tags::kGradAllReduce: return "grad all-reduce";
    case tags::kParamAllGather: return "param all-gather";
    default: break;
  }
  if (task.channel != sim::kInvalidChannel) {
    return graph.channel_name(task.channel);
  }
  return "other";
}

}  // namespace

const char* nic_class_of(const std::string& resource_name) {
  static constexpr const char* kClasses[] = {"NVLink", "PCIe", "InfiniBand",
                                             "RoCE", "Ethernet"};
  for (const char* cls : kClasses) {
    if (resource_name.find(cls) != std::string::npos) return cls;
  }
  return "unknown";
}

std::string workload_label(const TrainingPlan& plan) {
  return "group " + std::to_string(plan.workload.id) + " (" +
         format_billions(plan.workload.nominal_billions) + "B params)";
}

obs::RunSummary build_run_summary(const net::Topology& topo,
                                  const TrainingPlan& plan,
                                  const IterationMetrics& metrics,
                                  const SimArtifacts& artifacts,
                                  const RunSummaryOptions& options) {
  HOLMES_CHECK_MSG(artifacts.result.has_value(),
                   "run summary needs populated artifacts (pass a "
                   "SimArtifacts* to TrainingSimulator::run)");
  const sim::TaskGraph& graph = artifacts.graph;
  const sim::SimResult& result = *artifacts.result;
  obs::Window window{artifacts.window_begin(), artifacts.window_end()};
  if (options.override_window) {
    // explain's clipping semantics, shared verbatim: clip to the run and
    // reject windows that end up empty.
    const double begin = std::max(0.0, options.window_begin);
    const double end = options.window_end < 0
                           ? result.makespan()
                           : std::min(options.window_end, result.makespan());
    HOLMES_CHECK_MSG(begin < end, "stats window is empty (begin >= end)");
    window = {begin, end};
  }
  const int last = artifacts.iterations - 1;
  auto last_tag = [last](sim::TaskTag base) {
    return tags::for_iteration(base, last);
  };

  obs::RunSummary s;
  s.topology = net::format_topology(topo);
  s.framework = plan.framework.name;
  s.workload = workload_label(plan);
  s.iterations = artifacts.iterations;
  s.window_begin_s = window.begin;
  s.window_end_s = window.end;
  s.iteration_s = metrics.iteration_time;
  s.tflops_per_gpu = metrics.tflops_per_gpu;
  s.throughput = metrics.throughput;

  // ---- per-resource accounts: devices and links ----
  const std::vector<obs::ResourceAccount> resources =
      obs::account_resources(graph, result, window);
  for (const obs::ResourceAccount& r : resources) {
    if (r.is_device) {
      obs::RunSummary::Device d;
      d.name = r.name;
      d.busy_s = r.busy;
      d.waiting_s = r.waiting;
      d.utilization = r.utilization(window);
      d.tasks = r.tasks;
      s.devices.push_back(std::move(d));
    } else if (r.is_link && (r.busy > 0 || r.bytes > 0)) {
      obs::RunSummary::Link l;
      l.name = r.name;
      l.busy_s = r.busy;
      l.waiting_s = r.waiting;
      l.utilization = r.utilization(window);
      l.bytes = r.bytes;
      l.transfers = r.tasks;
      l.effective_gbps =
          r.busy > 0
              ? units::bytes_per_sec_to_gbps(static_cast<double>(r.bytes) /
                                             r.busy)
              : 0.0;
      s.links.push_back(std::move(l));
    }
  }

  // ---- per-stage pipeline-bubble fraction, over the measured iteration ----
  const int p = plan.degrees.pipeline;
  const int virtual_stages = plan.virtual_stages();
  for (int stage = 0; stage < p; ++stage) {
    const std::vector<int> ranks = plan.groups.stage_ranks(stage);
    std::vector<bool> on_stage(graph.resource_count(), false);
    for (int rank : ranks) {
      on_stage[static_cast<std::size_t>(
          artifacts.compute_resource[static_cast<std::size_t>(rank)])] = true;
    }
    const sim::TaskTag fwd = last_tag(tags::kForward);
    const sim::TaskTag bwd = last_tag(tags::kBackward);
    const obs::SpanAccount acct = obs::account_tasks(
        graph, result,
        [&](sim::TaskId, const sim::Task& task) {
          return (task.tag == fwd || task.tag == bwd) && task.resource >= 0 &&
                 on_stage[static_cast<std::size_t>(task.resource)];
        },
        window);
    obs::RunSummary::Stage st;
    st.stage = stage;
    st.devices = static_cast<int>(ranks.size());
    for (int v = stage; v < virtual_stages; v += p) {
      st.layers += plan.partition[static_cast<std::size_t>(v)];
    }
    st.compute_busy_s = acct.busy;
    st.span_s = acct.span;
    const double capacity = st.devices * acct.span;
    st.bubble_fraction = capacity > 0 ? 1.0 - acct.busy / capacity : 0.0;
    s.stages.push_back(st);
  }

  // ---- per-communicator traffic ----
  for (const obs::ChannelAccount& c :
       obs::account_channels(graph, result, window)) {
    if (c.transfers == 0) continue;
    obs::RunSummary::Comm comm;
    comm.name = c.name;
    comm.bytes = c.bytes;
    comm.transfers = c.transfers;
    comm.busy_s = c.busy;
    comm.span_s = c.span;
    comm.bus_gbps = units::bytes_per_sec_to_gbps(c.effective_bandwidth());
    s.comms.push_back(std::move(comm));
  }

  // ---- exposed vs overlapped communication, measured iteration ----
  const obs::TaskPredicate compute_cover =
      obs::tag_in({last_tag(tags::kForward), last_tag(tags::kBackward)});
  const obs::OverlapAccount grad = obs::account_overlap(
      graph, result,
      obs::tag_in({last_tag(tags::kGradReduceScatter),
                   last_tag(tags::kGradAllReduce)}),
      compute_cover, window);
  s.grad_sync = {grad.total, grad.overlapped, grad.exposed};
  const obs::OverlapAccount gather = obs::account_overlap(
      graph, result, obs::tag_in({last_tag(tags::kParamAllGather)}),
      compute_cover, window);
  s.param_allgather = {gather.total, gather.overlapped, gather.exposed};

  return s;
}

obs::CriticalPathSummary build_critical_path_summary(
    const net::Topology& topo, const TrainingPlan& plan,
    const IterationMetrics& metrics, const SimArtifacts& artifacts,
    const CriticalPathOptions& options, obs::CriticalPath* path_out) {
  HOLMES_CHECK_MSG(artifacts.result.has_value(),
                   "critical-path summary needs populated artifacts (pass a "
                   "SimArtifacts* to TrainingSimulator::run)");
  const sim::TaskGraph& graph = artifacts.graph;
  const sim::SimResult& result = *artifacts.result;

  const obs::CriticalPath path = obs::extract_critical_path(graph, result);
  if (path_out != nullptr) *path_out = path;

  const double window_begin = std::max(0.0, options.window_begin);
  const double window_end =
      options.window_end < 0 ? path.makespan
                             : std::min(options.window_end, path.makespan);
  HOLMES_CHECK_MSG(window_begin < window_end,
                   "critical-path window is empty (begin >= end)");

  // Clip to the attribution window; the default window keeps everything, so
  // bucket seconds telescope to the full makespan.
  obs::CriticalPath clipped;
  clipped.makespan = path.makespan;
  clipped.tasks = path.tasks;
  for (obs::PathSegment segment : path.segments) {
    segment.begin = std::max(segment.begin, window_begin);
    segment.end = std::min(segment.end, window_end);
    if (segment.end > segment.begin) clipped.segments.push_back(segment);
  }

  // Compute resource -> pipeline stage, via the plan's group matrices.
  std::vector<int> stage_of(graph.resource_count(), -1);
  for (int rank = 0; rank < topo.world_size(); ++rank) {
    stage_of[static_cast<std::size_t>(
        artifacts.compute_resource[static_cast<std::size_t>(rank)])] =
        plan.groups.coord_of(rank).stage;
  }
  auto stage_bucket = [&](sim::ResourceId resource) -> std::string {
    const int stage =
        resource >= 0 ? stage_of[static_cast<std::size_t>(resource)] : -1;
    return stage >= 0 ? "compute/stage" + std::to_string(stage)
                      : std::string("compute/other");
  };

  auto bucket_of = [&](const obs::PathSegment& segment) -> std::string {
    switch (segment.kind) {
      case obs::SegmentKind::kCompute:
        return stage_bucket(segment.resource);
      case obs::SegmentKind::kCommBusy:
        return std::string("comm/") +
               nic_class_of(graph.resource_name(segment.resource)) + "/" +
               comm_kind_of(graph, graph.task(segment.task));
      case obs::SegmentKind::kCommLatency:
        return std::string("latency/") +
               nic_class_of(graph.resource_name(segment.resource));
      case obs::SegmentKind::kQueueWait: {
        const std::string& name = graph.resource_name(segment.resource);
        if (name.find(".compute") != std::string::npos) return "wait/compute";
        return std::string("wait/") + nic_class_of(name);
      }
    }
    return "other";
  };

  obs::CriticalPathSummary s;
  s.topology = net::format_topology(topo);
  s.framework = plan.framework.name;
  s.workload = workload_label(plan);
  s.makespan_s = path.makespan;
  s.iteration_s = metrics.iteration_time;
  s.window_begin_s = window_begin;
  s.window_end_s = window_end;
  s.total_segments = clipped.segments.size();

  // ---- attribution buckets (partition the window) ----
  std::map<std::string, obs::CriticalPathSummary::Bucket> buckets;
  for (const obs::PathSegment& segment : clipped.segments) {
    const std::string name = bucket_of(segment);
    obs::CriticalPathSummary::Bucket& b = buckets[name];
    if (b.name.empty()) {
      b.name = name;
      b.kind = obs::to_string(segment.kind);
    }
    b.seconds += segment.duration();
    ++b.segments;
  }
  const double window_span = window_end - window_begin;
  for (auto& [name, bucket] : buckets) {
    bucket.share = window_span > 0 ? bucket.seconds / window_span : 0.0;
    s.buckets.push_back(bucket);
  }
  std::sort(s.buckets.begin(), s.buckets.end(),
            [](const obs::CriticalPathSummary::Bucket& a,
               const obs::CriticalPathSummary::Bucket& b) {
              if (a.seconds != b.seconds) return a.seconds > b.seconds;
              return a.name < b.name;
            });

  // ---- longest segments ----
  std::vector<obs::PathSegment> longest = clipped.segments;
  std::sort(longest.begin(), longest.end(),
            [](const obs::PathSegment& a, const obs::PathSegment& b) {
              if (a.duration() != b.duration())
                return a.duration() > b.duration();
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.task < b.task;
            });
  if (longest.size() > options.top_segments) {
    longest.resize(options.top_segments);
  }
  s.top_segments.reserve(longest.size());
  for (const obs::PathSegment& segment : longest) {
    const sim::Task& task = graph.task(segment.task);
    obs::CriticalPathSummary::Segment out;
    out.task = segment.task;
    out.label = task.label.empty() ? "task" + std::to_string(segment.task)
                                   : task.label;
    out.kind = obs::to_string(segment.kind);
    out.edge = obs::to_string(segment.edge);
    out.resource =
        segment.resource >= 0 ? graph.resource_name(segment.resource) : "";
    out.bucket = bucket_of(segment);
    out.begin_s = segment.begin;
    out.end_s = segment.end;
    s.top_segments.push_back(std::move(out));
  }

  // ---- first-order what-if sensitivities over the windowed path ----
  const std::vector<obs::WhatIf> whatifs = obs::what_if_sensitivities(
      graph, clipped,
      // `task` is the segment's controlling task: its own for busy spans,
      // the blocking occupant for queue waits. Either way segment.resource
      // is the resource that task occupied (a wait's contended resource IS
      // the holder's), so the class lookups below work for both.
      [&](const obs::PathSegment& segment, const sim::Task& task) -> std::string {
        if (task.kind == sim::TaskKind::kCompute) {
          const std::string bucket = stage_bucket(segment.resource);
          return bucket == "compute/other" ? std::string() : bucket;
        }
        return std::string("link/") +
               nic_class_of(graph.resource_name(segment.resource));
      });
  s.sensitivities.reserve(whatifs.size());
  for (const obs::WhatIf& w : whatifs) {
    s.sensitivities.push_back(
        {w.target, w.critical_s, w.dmakespan_ds, w.predicted_savings(1.1)});
  }

  return s;
}

}  // namespace holmes::core
