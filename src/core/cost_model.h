#pragma once

/// \file cost_model.h
/// Calibrated device-side cost constants. Network-side constants live in
/// net::FabricCatalog; together they are the only tunables of the
/// reproduction (see EXPERIMENTS.md for the calibration procedure: the
/// constants are pinned once against Table 1's anchor row and every other
/// table/figure is then *predicted*).

#include "net/nic.h"
#include "util/units.h"

namespace holmes::core {

struct CostModel {
  /// A100 peak fp16/bf16 tensor-core throughput (paper: 312 TFLOP/s).
  double peak_tflops = 312.0;

  /// Achievable fraction of peak for the transformer GEMMs when compute is
  /// not communication-bound (model FLOPs utilization).
  double mfu = 0.68;

  /// Multiplicative compute efficiency when tensor parallelism is active:
  /// folds the per-layer NVLink all-reduces and kernel fragmentation of
  /// t > 1 into the compute rate rather than emitting millions of tiny
  /// transfer tasks.
  double tp_efficiency = 0.85;

  /// Of a layer's combined fwd+bwd FLOPs (Eq. 6), the forward fraction.
  /// Backward is ~2x forward for transformer GEMMs.
  double forward_fraction = 1.0 / 3.0;

  /// Gradients are accumulated and synchronized in fp32 (Megatron DDP
  /// default), parameters are all-gathered in bf16.
  int grad_bytes_per_param = 4;
  int param_bytes = 2;
  /// Activations cross pipeline stages in bf16.
  int activation_bytes_per_value = 2;

  /// Adam fused-kernel throughput (parameter elements per second per GPU)
  /// for the optimizer-step compute cost.
  double optimizer_elems_per_sec = 5e9;

  /// Multiplicative slowdown of useful compute on nodes whose training
  /// traffic rides the given NIC. This captures the paper's Table 1
  /// observation that a GPU's *achieved* TFLOPS depends on its NIC even at
  /// identical nominal bandwidth: RoCE's PFC pause storms and the Ethernet
  /// TCP stack's CPU/interrupt load steal cycles and stall the PCIe/NUMA
  /// fabric, degrading kernels that themselves never touch the network.
  double roce_interference = 1.10;
  double ethernet_interference = 1.05;

  double nic_interference(net::NicType nic) const;

  /// Overlapped-optimizer prefetch distance: parameter all-gather of bucket
  /// b must land before the (b * prefetch_stride)-th op of the next
  /// iteration (clamped to the program length). Megatron-LLaMA's
  /// just-in-time prefetch runs asynchronously well ahead of consumption;
  /// larger strides model a deeper prefetch window.
  int prefetch_stride = 4;

  /// Seconds of fixed per-iteration overhead (data loader, kernel launch,
  /// logging) charged to every device once per iteration.
  SimTime iteration_overhead = 0.05;

  /// Compute seconds for `flops` floating-point operations at tensor
  /// parallel degree t (t > 1 applies tp_efficiency).
  SimTime compute_seconds(double flops, int tensor_parallel) const;

  /// Compute seconds of an optimizer step over `elems` parameters.
  SimTime optimizer_seconds(double elems) const;
};

}  // namespace holmes::core
