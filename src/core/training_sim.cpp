#include "core/training_sim.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "comm/communicator.h"
#include "core/preflight.h"
#include "core/tags.h"
#include "net/ports.h"
#include "obs/accounting.h"
#include "optimizer/dp_strategy.h"
#include "pipeline/schedule.h"
#include "sim/executor.h"
#include "sim/rate_timeline.h"
#include "sim/scenario_runner.h"
#include "sim/trace.h"
#include "util/error.h"

namespace holmes::core {

namespace {

/// Per-virtual-stage analytic quantities derived from the plan. Virtual
/// stage v runs on physical stage v % p; with plain schedules chunks == 1
/// and virtual == physical.
struct StageCost {
  SimTime fwd_seconds = 0;   ///< forward compute per micro-batch per device
  SimTime bwd_seconds = 0;   ///< backward compute per micro-batch per device
  double params_per_device = 0;  ///< parameter elements of this chunk
};

std::vector<StageCost> stage_costs(const TrainingPlan& plan,
                                   const CostModel& cost) {
  const model::TransformerConfig& cfg = plan.workload.config;
  const int t = plan.degrees.tensor;
  const int p = plan.degrees.pipeline;
  const int virtual_stages = plan.virtual_stages();
  const int mb = plan.workload.micro_batch_size;
  std::vector<StageCost> stages(static_cast<std::size_t>(virtual_stages));
  for (int v = 0; v < virtual_stages; ++v) {
    // The embedding/logit GEMMs live on the first and last virtual stages.
    double emb_share = 0;
    if (virtual_stages == 1) {
      emb_share = 1.0;
    } else if (v == 0 || v == virtual_stages - 1) {
      emb_share = 0.5;
    }
    const int layers = plan.partition[static_cast<std::size_t>(v)];
    const double flops_per_microbatch =
        (layers * cfg.layer_flops(mb) + emb_share * cfg.embedding_flops(mb)) /
        t;
    // Kernels on this stage run slower when its nodes' training traffic
    // rides a noisier NIC (see CostModel::nic_interference).
    const double interference =
        cost.nic_interference(plan.stage_nics[static_cast<std::size_t>(v % p)]);
    StageCost& stage = stages[static_cast<std::size_t>(v)];
    stage.fwd_seconds =
        cost.compute_seconds(flops_per_microbatch * cost.forward_fraction, t) *
        interference;
    stage.bwd_seconds =
        cost.compute_seconds(flops_per_microbatch * (1.0 - cost.forward_fraction),
                             t) *
        interference;
    stage.params_per_device =
        (layers * cfg.layer_parameters() + emb_share * cfg.embedding_parameters()) /
        t;
  }
  return stages;
}

std::vector<pipeline::StageProgram> build_programs(const TrainingPlan& plan) {
  const int p = plan.degrees.pipeline;
  const auto m = static_cast<int>(plan.micro_batches);
  switch (plan.framework.schedule) {
    case SchedulePolicy::kGPipe:
      return pipeline::GPipeSchedule{}.programs(p, m);
    case SchedulePolicy::kOneFOneB:
      return pipeline::PipeDreamFlushSchedule{}.programs(p, m);
    case SchedulePolicy::kInterleaved:
      return pipeline::InterleavedSchedule{plan.chunks()}.programs(p, m);
  }
  throw ConfigError("unknown schedule policy");
}

}  // namespace

SimTime SimArtifacts::window_begin() const {
  HOLMES_CHECK_MSG(result.has_value() && !iteration_markers.empty(),
                   "artifacts not populated");
  return result->timing(iteration_markers.front()).finish;
}

SimTime SimArtifacts::window_end() const {
  HOLMES_CHECK_MSG(result.has_value() && !iteration_markers.empty(),
                   "artifacts not populated");
  return result->timing(iteration_markers.back()).finish;
}

IterationMetrics TrainingSimulator::run(const net::Topology& topo,
                                        const TrainingPlan& plan,
                                        int iterations,
                                        const Perturbations& perturbations,
                                        std::ostream* chrome_trace,
                                        SimArtifacts* artifacts,
                                        sim::ExecutionObserver* observer) const {
  if (iterations < 2) {
    throw ConfigError("need at least 2 iterations (1 warm-up + 1 measured)");
  }
  // Engine self-profile: snapshot the active collector (if any) so the
  // artifacts carry exactly this run's delta, even when the caller profiles
  // several runs under one SelfProfiler.
  namespace prof = obs::self_profile;
  const bool profiled = prof::enabled();
  obs::SelfProfile profile_before;
  std::chrono::steady_clock::time_point run_start{};
  if (profiled) {
    profile_before = *prof::tl_active;
    run_start = std::chrono::steady_clock::now();
  }
  // Debug-mode static pre-flight: lint the plan before lowering it. No-op
  // unless logging at kDebug or lower (see core/preflight.h).
  preflight_or_throw(topo, plan);
  prof::PhaseTimer graph_build_timer(&obs::SelfProfilePhases::graph_build_s);
  const int t = plan.degrees.tensor;
  const int p = plan.degrees.pipeline;
  const int d = plan.degrees.data;
  const int n = topo.world_size();
  const int virtual_stages = plan.virtual_stages();
  const auto m = static_cast<int>(plan.micro_batches);
  HOLMES_CHECK_MSG(m >= 1, "plan has no micro-batches");
  HOLMES_CHECK_MSG(static_cast<int>(plan.partition.size()) == virtual_stages,
                   "partition/virtual-stage count mismatch");

  const std::vector<StageCost> stages = stage_costs(plan, cost_);
  // Gradient/parameter bytes each device synchronizes: the sum over the
  // model chunks it hosts.
  std::vector<double> device_params(static_cast<std::size_t>(p), 0.0);
  for (int v = 0; v < virtual_stages; ++v) {
    device_params[static_cast<std::size_t>(v % p)] +=
        stages[static_cast<std::size_t>(v)].params_per_device;
  }
  const Bytes act_bytes =
      plan.workload.config.activation_bytes(plan.workload.micro_batch_size,
                                            cost_.activation_bytes_per_value) /
      t;

  sim::TaskGraph graph;
  const net::PortMap ports(topo, graph);

  const std::vector<pipeline::StageProgram> programs = build_programs(plan);

  // Data-parallel communicators, one per (tp, stage) — Eq. (4)'s group
  // index is i = tp + stage * t.
  std::vector<comm::Communicator> dp_comms;
  dp_comms.reserve(plan.groups.dp_groups().size());
  for (std::size_t i = 0; i < plan.groups.dp_groups().size(); ++i) {
    dp_comms.emplace_back(topo, plan.groups.dp_groups()[i],
                          "dp" + std::to_string(i));
    if (plan.ethernet_fallback) {
      dp_comms.back().force_internode_fabric(net::FabricKind::kEthernet);
    }
  }

  const optimizer::DpSyncConfig& sync = plan.framework.dp_sync;
  const int buckets = sync.effective_buckets();

  // Transient NIC degradation (fault injection): lower the scoped windows
  // onto the affected ranks' fabric port resources as a time-varying rate
  // timeline. Ranks on an RDMA cluster degrade their dedicated NIC ports;
  // Ethernet-only clusters degrade the node-shared Ethernet ports (each
  // shared port exactly once per window, not once per rank riding it).
  sim::RateTimeline rate_timeline;
  sim::ExecutorOptions exec_options = exec_options_;
  if (!perturbations.nic_degradation.empty()) {
    for (const NicDegradation& window : perturbations.nic_degradation) {
      std::vector<sim::ResourceId> affected;
      for (int rank = 0; rank < n; ++rank) {
        const net::DeviceInfo& device = topo.device(rank);
        if (window.cluster >= 0 && device.cluster != window.cluster) continue;
        if (window.node_in_cluster >= 0 &&
            device.node_in_cluster != window.node_in_cluster) {
          continue;
        }
        const net::FabricKind fabric =
            device.nic == net::NicType::kEthernet
                ? net::FabricKind::kEthernet
                : net::rdma_fabric(device.nic);
        affected.push_back(ports.tx(rank, fabric));
        affected.push_back(ports.rx(rank, fabric));
      }
      std::sort(affected.begin(), affected.end());
      affected.erase(std::unique(affected.begin(), affected.end()),
                     affected.end());
      for (sim::ResourceId port : affected) {
        rate_timeline.add_window(port, window.begin_s, window.end_s,
                                 window.bandwidth_factor);
      }
    }
    exec_options.rates = &rate_timeline;
  }

  // Seeded perturbation stream: compute durations are scaled per task in
  // deterministic creation order, so runs reproduce exactly per seed.
  Rng perturb_rng(perturbations.seed);
  auto perturbed = [&](int rank, SimTime seconds) {
    if (perturbations.empty()) return seconds;
    return seconds * perturbations.factor(rank, perturb_rng);
  };

  // Emits the point-to-point transfer for an activation or gradient hop,
  // honoring the Ethernet fallback for cross-node pairs. All hops share
  // the "pp" accounting channel.
  const sim::ChannelId pp_channel = graph.channel("pp");
  auto emit_p2p = [&](int src, int dst, const char* label, sim::TaskTag tag) {
    const bool cross_node = topo.node_of(src) != topo.node_of(dst);
    return plan.ethernet_fallback && cross_node
               ? net::emit_transfer_on(graph, ports, topo,
                                       net::FabricKind::kEthernet, src, dst,
                                       act_bytes, label, tag, pp_channel)
               : net::emit_transfer(graph, ports, topo, src, dst, act_bytes,
                                    label, tag, pp_channel);
  };

  // Cross-iteration state, indexed by global rank.
  std::vector<sim::TaskId> gate(static_cast<std::size_t>(n),
                                sim::kInvalidTask);
  // Parameter all-gather prefetch: (bucket index, task).
  std::vector<std::vector<std::pair<int, sim::TaskId>>> prefetch(
      static_cast<std::size_t>(n));

  std::vector<sim::TaskId> iteration_markers;

  // Per-rank scratch rebuilt each iteration.
  std::vector<sim::TaskId> tail(static_cast<std::size_t>(n));
  std::vector<std::vector<sim::TaskId>> bucket_done(
      static_cast<std::size_t>(n));

  for (int it = 0; it < iterations; ++it) {
    auto tag = [it](sim::TaskTag base) { return tags::for_iteration(base, it); };

    // fwd/bwd task handles per (tp, dp) replica: [virtual stage][microbatch].
    // bwd_head is the first bucket sub-task (what the incoming gradient
    // transfer gates); bwd_tail the last.
    std::vector<sim::TaskId> fwd(static_cast<std::size_t>(virtual_stages) * m);
    std::vector<sim::TaskId> bwd_head(fwd.size());
    std::vector<sim::TaskId> bwd_tail(fwd.size());
    auto idx = [m](int v, int microbatch) {
      return static_cast<std::size_t>(v) * m + microbatch;
    };

    for (auto& b : bucket_done) b.clear();

    for (int tp = 0; tp < t; ++tp) {
      for (int dp = 0; dp < d; ++dp) {
        // ---- Pass A: compute tasks, program-order chained per device ----
        for (int s = 0; s < p; ++s) {
          const int rank = plan.groups.rank_at({tp, dp, s});

          // Fixed per-iteration overhead starts the device's program.
          const sim::TaskId overhead = graph.add_compute(
              ports.compute(rank), cost_.iteration_overhead, "overhead");
          graph.add_deps(overhead, {gate[static_cast<std::size_t>(rank)]});
          tail[static_cast<std::size_t>(rank)] = overhead;

          const pipeline::StageProgram& program =
              programs[static_cast<std::size_t>(s)];
          const int last_op = static_cast<int>(program.size()) - 1;
          for (int k = 0; k <= last_op; ++k) {
            const pipeline::PipelineOp& op = program[static_cast<std::size_t>(k)];
            const int v = op.chunk * p + s;
            const StageCost& sc = stages[static_cast<std::size_t>(v)];
            sim::TaskId task;
            if (op.kind == pipeline::OpKind::kForward) {
              task = graph.add_compute(ports.compute(rank),
                                       perturbed(rank, sc.fwd_seconds),
                                       "fwd", tag(tags::kForward));
              graph.add_deps(task, {tail[static_cast<std::size_t>(rank)]});
              fwd[idx(v, op.microbatch)] = task;
            } else {
              // Backward. The device's final backward op is split into
              // gradient buckets for the overlapped optimizer.
              const bool split = sync.overlaps_backward() && k == last_op;
              const int pieces = split ? buckets : 1;
              sim::TaskId head = sim::kInvalidTask;
              sim::TaskId prev = tail[static_cast<std::size_t>(rank)];
              for (int b = 0; b < pieces; ++b) {
                const sim::TaskId piece = graph.add_compute(
                    ports.compute(rank),
                    perturbed(rank, sc.bwd_seconds / pieces), "bwd",
                    tag(tags::kBackward));
                graph.add_deps(piece, {prev});
                if (b == 0) {
                  head = piece;
                  graph.add_dep(piece, fwd[idx(v, op.microbatch)]);
                }
                if (split) {
                  bucket_done[static_cast<std::size_t>(rank)].push_back(piece);
                }
                prev = piece;
              }
              task = prev;
              bwd_head[idx(v, op.microbatch)] = head;
              bwd_tail[idx(v, op.microbatch)] = task;
            }
            tail[static_cast<std::size_t>(rank)] = task;

            // Parameter all-gather prefetch from the previous iteration:
            // bucket b's all-gather must land before this device's op at
            // index b * prefetch_stride (clamped) of this iteration.
            for (const auto& [bucket, prefetched] :
                 prefetch[static_cast<std::size_t>(rank)]) {
              if (std::min(bucket * cost_.prefetch_stride, last_op) == k) {
                graph.add_dep(task, prefetched);
              }
            }
          }
        }

        // ---- Pass B: inter-stage transfers over the virtual pipeline ----
        for (int v = 1; v < virtual_stages; ++v) {
          const int dst = plan.groups.rank_at({tp, dp, v % p});
          const int src = plan.groups.rank_at({tp, dp, (v - 1) % p});
          for (int microbatch = 0; microbatch < m; ++microbatch) {
            if (src == dst) {
              // Chunk boundary within one device (p == 1): direct
              // dependency, no wire traffic.
              graph.add_dep(fwd[idx(v, microbatch)], fwd[idx(v - 1, microbatch)]);
              graph.add_dep(bwd_head[idx(v - 1, microbatch)],
                            bwd_tail[idx(v, microbatch)]);
              continue;
            }
            const sim::TaskId f =
                emit_p2p(src, dst, "act", tag(tags::kActivationP2P));
            graph.add_dep(f, fwd[idx(v - 1, microbatch)]);
            graph.add_dep(fwd[idx(v, microbatch)], f);

            const sim::TaskId b =
                emit_p2p(dst, src, "grad", tag(tags::kActivationP2P));
            graph.add_dep(b, bwd_tail[idx(v, microbatch)]);
            graph.add_dep(bwd_head[idx(v - 1, microbatch)], b);
          }
        }
      }
    }

    // ---- Data-parallel synchronization + optimizer, per (tp, stage) ----
    for (int s = 0; s < p; ++s) {
      const double params = device_params[static_cast<std::size_t>(s)];
      const Bytes grad_bytes =
          static_cast<Bytes>(params * cost_.grad_bytes_per_param);
      const Bytes param_bytes = static_cast<Bytes>(params * cost_.param_bytes);
      for (int tp = 0; tp < t; ++tp) {
        const comm::Communicator& dp_comm =
            dp_comms[static_cast<std::size_t>(tp + s * t)];
        std::vector<int> members(static_cast<std::size_t>(d));
        comm::TaskHandles ready(static_cast<std::size_t>(d));
        for (int dp = 0; dp < d; ++dp) {
          members[static_cast<std::size_t>(dp)] =
              plan.groups.rank_at({tp, dp, s});
          ready[static_cast<std::size_t>(dp)] = tail[static_cast<std::size_t>(
              members[static_cast<std::size_t>(dp)])];
        }

        switch (sync.kind) {
          case optimizer::DpSyncKind::kAllReduce: {
            const comm::TaskHandles done = dp_comm.lower_all_reduce(
                graph, ports, grad_bytes, ready, tag(tags::kGradAllReduce));
            for (int j = 0; j < d; ++j) {
              const int rank = members[static_cast<std::size_t>(j)];
              const sim::TaskId opt = graph.add_compute(
                  ports.compute(rank),
                  perturbed(rank, cost_.optimizer_seconds(params)), "adam",
                  tag(tags::kOptimizerStep));
              graph.add_deps(opt, {done[static_cast<std::size_t>(j)],
                                   tail[static_cast<std::size_t>(rank)]});
              gate[static_cast<std::size_t>(rank)] = opt;
              prefetch[static_cast<std::size_t>(rank)].clear();
            }
            break;
          }
          case optimizer::DpSyncKind::kDistributedOptimizer:
          case optimizer::DpSyncKind::kFullyShardedOptimizer: {
            // ZeRO-3 re-gathers parameters for the backward pass too:
            // modeled as doubled all-gather volume in the sync phase.
            const Bytes ag_bytes = param_bytes * sync.allgather_passes();
            const comm::TaskHandles reduced = dp_comm.lower_reduce_scatter(
                graph, ports, grad_bytes, ready, tag(tags::kGradReduceScatter));
            comm::TaskHandles updated(static_cast<std::size_t>(d));
            for (int j = 0; j < d; ++j) {
              const int rank = members[static_cast<std::size_t>(j)];
              const sim::TaskId opt = graph.add_compute(
                  ports.compute(rank),
                  perturbed(rank, cost_.optimizer_seconds(params / d)), "adam", tag(tags::kOptimizerStep));
              graph.add_deps(opt, {reduced[static_cast<std::size_t>(j)],
                                   tail[static_cast<std::size_t>(rank)]});
              updated[static_cast<std::size_t>(j)] = opt;
            }
            const comm::TaskHandles gathered = dp_comm.lower_all_gather(
                graph, ports, ag_bytes, updated, tag(tags::kParamAllGather));
            for (int j = 0; j < d; ++j) {
              const int rank = members[static_cast<std::size_t>(j)];
              gate[static_cast<std::size_t>(rank)] =
                  gathered[static_cast<std::size_t>(j)];
              prefetch[static_cast<std::size_t>(rank)].clear();
            }
            break;
          }
          case optimizer::DpSyncKind::kOverlappedDistributedOptimizer: {
            const std::vector<Bytes> grad_buckets =
                optimizer::bucket_sizes(grad_bytes, buckets);
            const std::vector<Bytes> param_buckets =
                optimizer::bucket_sizes(param_bytes, buckets);
            for (int j = 0; j < d; ++j) {
              prefetch[static_cast<std::size_t>(
                           members[static_cast<std::size_t>(j)])]
                  .clear();
            }
            for (int b = 0; b < buckets; ++b) {
              comm::TaskHandles bucket_ready(static_cast<std::size_t>(d));
              for (int j = 0; j < d; ++j) {
                const int rank = members[static_cast<std::size_t>(j)];
                const auto& pieces = bucket_done[static_cast<std::size_t>(rank)];
                HOLMES_CHECK_MSG(static_cast<int>(pieces.size()) == buckets,
                                 "bucket bookkeeping mismatch");
                bucket_ready[static_cast<std::size_t>(j)] =
                    pieces[static_cast<std::size_t>(b)];
              }
              const comm::TaskHandles reduced = dp_comm.lower_reduce_scatter(
                  graph, ports, grad_buckets[static_cast<std::size_t>(b)],
                  bucket_ready, tag(tags::kGradReduceScatter));
              comm::TaskHandles updated(static_cast<std::size_t>(d));
              for (int j = 0; j < d; ++j) {
                const int rank = members[static_cast<std::size_t>(j)];
                const sim::TaskId opt = graph.add_compute(
                    ports.compute(rank),
                    perturbed(rank, cost_.optimizer_seconds(params / d / buckets)),
                    "adam",
                    tag(tags::kOptimizerStep));
                graph.add_deps(opt, {reduced[static_cast<std::size_t>(j)]});
                updated[static_cast<std::size_t>(j)] = opt;
              }
              const comm::TaskHandles gathered = dp_comm.lower_all_gather(
                  graph, ports, param_buckets[static_cast<std::size_t>(b)],
                  updated, tag(tags::kParamAllGather));
              for (int j = 0; j < d; ++j) {
                const int rank = members[static_cast<std::size_t>(j)];
                const sim::TaskId done = gathered[static_cast<std::size_t>(j)];
                if (b == 0) {
                  gate[static_cast<std::size_t>(rank)] = done;
                } else {
                  prefetch[static_cast<std::size_t>(rank)].emplace_back(b, done);
                }
              }
            }
            break;
          }
        }
      }
    }

    // Iteration marker: fires when every device's optimizer state is final
    // (including prefetchable all-gathers, so the last iteration measures
    // complete work).
    const sim::TaskId marker =
        graph.add_noop("iteration_end", tag(tags::kIterationEnd));
    for (int rank = 0; rank < n; ++rank) {
      graph.add_deps(marker, {gate[static_cast<std::size_t>(rank)]});
      for (const auto& [bucket, task] : prefetch[static_cast<std::size_t>(rank)]) {
        (void)bucket;
        graph.add_dep(marker, task);
      }
    }
    iteration_markers.push_back(marker);
  }

  graph_build_timer.stop();
  // Memoized path: when no live observer needs per-task events, a
  // structurally identical (graph, options) pair simulated earlier under
  // the shared memo is reused verbatim — simulation results are pure
  // functions of the structure the memo key hashes. The executor accounts
  // its own dispatch loop as event_loop_s (memo hits skip it entirely).
  sim::SimResult result = [&]() -> sim::SimResult {
    // An active rate timeline forces a bypass: the memo key hashes graph
    // structure and tie-break options, not execution-time rates, so two
    // scenarios differing only in their fault windows would collide.
    const bool rates_active = exec_options.rates != nullptr;
    if (memo_ != nullptr && observer == nullptr && !rates_active) {
      const sim::SimMemo::Key key = sim::SimMemo::key(graph, exec_options);
      if (std::shared_ptr<const sim::SimResult> cached = memo_->find(key)) {
        return *cached;
      }
      auto fresh = std::make_shared<const sim::SimResult>(
          sim::TaskGraphExecutor{exec_options}.run(graph, nullptr));
      memo_->store(key, fresh);
      return *fresh;
    }
    if (memo_ != nullptr && observer == nullptr && rates_active) {
      prof::count(&obs::SelfProfileCounters::memo_bypass);
    }
    return sim::TaskGraphExecutor{exec_options}.run(graph, observer);
  }();
  if (chrome_trace != nullptr) {
    sim::TraceOptions trace_options;
    trace_options.rates = exec_options.rates;
    sim::write_chrome_trace(*chrome_trace, graph, result, trace_options);
  }

  prof::PhaseTimer accounting_timer(&obs::SelfProfilePhases::accounting_s);
  const int last = iterations - 1;
  const SimTime iter_end =
      result.timing(iteration_markers[static_cast<std::size_t>(last)]).finish;
  const SimTime first_end =
      result.timing(iteration_markers.front()).finish;

  IterationMetrics metrics;
  // Average period over every post-warm-up iteration: a single
  // marker-to-marker difference is not robust when perturbations
  // desynchronize the replicas (the interval then oscillates around the
  // true period; a one-sample read can even dip below the compute bound).
  metrics.iteration_time = (iter_end - first_end) / (iterations - 1);
  const double total_flops =
      plan.workload.config.flops_per_iteration(plan.workload.batch_size);
  metrics.tflops_per_gpu = total_flops / (metrics.iteration_time * n) / 1e12;
  metrics.throughput =
      static_cast<double>(plan.workload.batch_size) / metrics.iteration_time;

  auto last_tag = [last](sim::TaskTag base) {
    return tags::for_iteration(base, last);
  };
  metrics.grad_sync_span =
      std::max(result.tag_span(graph, last_tag(tags::kGradReduceScatter)),
               result.tag_span(graph, last_tag(tags::kGradAllReduce)));
  metrics.param_allgather_span =
      result.tag_span(graph, last_tag(tags::kParamAllGather));
  metrics.optimizer_span =
      result.tag_span(graph, last_tag(tags::kOptimizerStep));
  metrics.forward_busy = result.tag_busy(graph, last_tag(tags::kForward));
  metrics.backward_busy = result.tag_busy(graph, last_tag(tags::kBackward));
  metrics.task_count = graph.task_count();

  // Split the measured iteration's grad-sync wall time into the part hidden
  // under forward/backward compute and the part that extends the iteration
  // (interval-union arithmetic; Table 5's ablation metric).
  const obs::OverlapAccount grad_overlap = obs::account_overlap(
      graph, result,
      obs::tag_in({last_tag(tags::kGradReduceScatter),
                   last_tag(tags::kGradAllReduce)}),
      obs::tag_in({last_tag(tags::kForward), last_tag(tags::kBackward)}));
  metrics.grad_sync_overlapped = grad_overlap.overlapped;
  metrics.grad_sync_exposed = grad_overlap.exposed;
  accounting_timer.stop();

  if (profiled) {
    prof::add_phase(&obs::SelfProfilePhases::total_s,
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - run_start)
                        .count());
  }
  if (artifacts != nullptr) {
    if (profiled) {
      obs::SelfProfile profile_after = *prof::tl_active;
      profile_after.peak_rss_bytes = obs::current_peak_rss_bytes();
      artifacts->self_profile = obs::delta(profile_before, profile_after);
    } else {
      artifacts->self_profile.reset();
    }
    artifacts->compute_resource.clear();
    artifacts->compute_resource.reserve(static_cast<std::size_t>(n));
    for (int rank = 0; rank < n; ++rank) {
      artifacts->compute_resource.push_back(ports.compute(rank));
    }
    artifacts->iteration_markers = std::move(iteration_markers);
    artifacts->iterations = iterations;
    artifacts->rates = std::move(rate_timeline);
    artifacts->result = std::move(result);
    artifacts->graph = std::move(graph);  // last: invalidates graph
  }
  return metrics;
}

}  // namespace holmes::core
