#include "core/autotune.h"

#include <algorithm>
#include <mutex>

#include "model/memory.h"
#include "sim/scenario_runner.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace holmes::core {

namespace {

/// Worst-stage memory footprint of a (t, p) layout: the first stage holds
/// the most layers (uniform split puts remainders early) plus its share of
/// the embedding, with up to p micro-batches of activations in flight
/// (1F1B) and optimizer state sharded d ways when the framework shards.
Bytes estimate_layout_memory(const FrameworkConfig& framework,
                             const model::ParameterGroup& workload, int t,
                             int p, int d) {
  const int layers_first_stage = ceil_div(workload.config.layers, p);
  const int optimizer_shards = framework.dp_sync.shards_optimizer() ? d : 1;
  const int weight_shards = framework.dp_sync.shards_weights() ? d : 1;
  return model::estimate_device_memory(
             workload.config, layers_first_stage, t,
             workload.micro_batch_size,
             std::min<int>(p, 8),  // in-flight micro-batches under 1F1B
             optimizer_shards, {}, weight_shards)
      .total();
}

}  // namespace

std::vector<TuneCandidate> autotune(const FrameworkConfig& framework,
                                    const net::Topology& topo,
                                    const model::ParameterGroup& workload,
                                    const TuneOptions& options,
                                    const CostModel& cost) {
  const int n = topo.world_size();
  const int gpus = topo.gpus_per_node();

  // Enumerate feasible layouts.
  struct Layout {
    int t, p, d;
    Bytes memory;
  };
  std::vector<Layout> layouts;
  for (int t = 1; t <= gpus; ++t) {
    if (gpus % t != 0 || n % t != 0) continue;
    const int max_p = options.max_pipeline > 0
                          ? std::min(options.max_pipeline, workload.config.layers)
                          : workload.config.layers;
    for (int p = 1; p <= max_p; ++p) {
      if (n % (t * p) != 0) continue;
      const int d = n / (t * p);
      if (workload.batch_size % (static_cast<std::int64_t>(d) *
                                 workload.micro_batch_size) !=
          0) {
        continue;
      }
      const Bytes memory = estimate_layout_memory(framework, workload, t, p, d);
      if (memory > options.device_memory) continue;
      layouts.push_back({t, p, d, memory});
    }
  }
  if (layouts.empty()) {
    throw ConfigError(
        "no feasible (tensor, pipeline) layout for this model on " +
        std::to_string(n) + " GPUs within the memory budget");
  }
  HOLMES_LOG(kInfo) << "autotune: simulating " << layouts.size()
                    << " candidate layouts";

  std::vector<TuneCandidate> candidates(layouts.size());
  sim::ScenarioRunner runner(options.threads);
  std::mutex failures_mutex;
  std::vector<std::string> failures;
  runner.run_all(layouts.size(), [&](std::size_t i) {
    const Layout& layout = layouts[i];
    model::ParameterGroup variant = workload;
    variant.tensor_parallel = layout.t;
    variant.pipeline_parallel = layout.p;
    try {
      const TrainingPlan plan = Planner(framework).plan(topo, variant);
      TrainingSimulator simulator(cost);
      simulator.set_memo(options.memo);
      const IterationMetrics metrics =
          simulator.run(topo, plan, options.iterations);
      candidates[i] = {layout.t, layout.p, layout.d, metrics, layout.memory};
    } catch (const Error& e) {
      // Layouts the planner rejects (e.g. interleaved divisibility) simply
      // drop out of the ranking.
      std::lock_guard lock(failures_mutex);
      failures.emplace_back(e.what());
    }
  });
  if (options.memo != nullptr) options.memo->flush_profile();

  std::vector<TuneCandidate> ranked;
  for (auto& c : candidates) {
    if (c.metrics.throughput > 0) ranked.push_back(c);
  }
  if (ranked.empty()) {
    throw ConfigError("every candidate layout failed to plan; first error: " +
                      (failures.empty() ? std::string("?") : failures.front()));
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const TuneCandidate& a, const TuneCandidate& b) {
              return a.metrics.throughput > b.metrics.throughput;
            });
  return ranked;
}

}  // namespace holmes::core
