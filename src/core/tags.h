#pragma once

/// \file tags.h
/// Canonical task-tag values used by the training simulator for per-op
/// accounting (e.g. Fig. 3's grads-reduce-scatter timing). Tags are scoped
/// per simulated iteration: iteration `i` uses base + i * kIterationStride,
/// so metrics can read the steady-state iteration in isolation.

#include "sim/task_graph.h"

namespace holmes::core::tags {

inline constexpr sim::TaskTag kForward = 1;
inline constexpr sim::TaskTag kBackward = 2;
inline constexpr sim::TaskTag kActivationP2P = 3;
inline constexpr sim::TaskTag kGradReduceScatter = 4;
inline constexpr sim::TaskTag kGradAllReduce = 5;
inline constexpr sim::TaskTag kParamAllGather = 6;
inline constexpr sim::TaskTag kOptimizerStep = 7;
inline constexpr sim::TaskTag kIterationEnd = 8;

inline constexpr sim::TaskTag kIterationStride = 16;

/// Tag value for `base` within iteration `iteration`.
constexpr sim::TaskTag for_iteration(sim::TaskTag base, int iteration) {
  return base + iteration * kIterationStride;
}

}  // namespace holmes::core::tags
