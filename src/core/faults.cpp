#include "core/faults.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>

#include "core/run_stats.h"
#include "model/gpt_zoo.h"
#include "obs/timeline.h"
#include "net/nic.h"
#include "pipeline/partition.h"
#include "util/error.h"
#include "util/json.h"
#include "verify/flow_lints.h"
#include "verify/rules.h"

namespace holmes::core {

namespace {

std::string format_seconds(double s) {
  std::ostringstream os;
  os.precision(12);
  os << s;
  return os.str();
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

[[noreturn]] void bad_field(const std::string& where, const std::string& key) {
  throw ConfigError("fault plan: unknown key '" + key + "' in " + where);
}

double num_or(const JsonValue& obj, const std::string& key, double fallback) {
  const JsonValue* v = obj.find(key);
  return v == nullptr ? fallback : v->as_number();
}

int int_or(const JsonValue& obj, const std::string& key, int fallback) {
  const JsonValue* v = obj.find(key);
  return v == nullptr ? fallback : static_cast<int>(v->as_number());
}

void check_keys(const JsonValue& obj, const std::string& where,
                std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : obj.as_object()) {
    if (std::find_if(allowed.begin(), allowed.end(), [&](const char* a) {
          return key == a;
        }) == allowed.end()) {
      bad_field(where, key);
    }
  }
}

NicDegradation parse_window(const JsonValue& obj) {
  check_keys(obj, "nic_degradation[]",
             {"cluster", "node_in_cluster", "begin_s", "end_s",
              "bandwidth_factor"});
  NicDegradation w;
  w.cluster = int_or(obj, "cluster", -1);
  w.node_in_cluster = int_or(obj, "node_in_cluster", -1);
  w.begin_s = num_or(obj, "begin_s", 0);
  w.end_s = num_or(obj, "end_s", 0);
  w.bandwidth_factor = num_or(obj, "bandwidth_factor", 1.0);
  return w;
}

ComputeStraggler parse_straggler(const JsonValue& obj) {
  check_keys(obj, "stragglers[]",
             {"rank", "cluster", "node_in_cluster", "slowdown"});
  ComputeStraggler s;
  s.rank = int_or(obj, "rank", -1);
  s.cluster = int_or(obj, "cluster", -1);
  s.node_in_cluster = int_or(obj, "node_in_cluster", -1);
  s.slowdown = num_or(obj, "slowdown", 1.0);
  return s;
}

// ---------------------------------------------------------------------------
// Scope resolution shared by the lints and the lowering
// ---------------------------------------------------------------------------

std::vector<int> ranks_in_scope(const net::Topology& topo, int cluster,
                                int node_in_cluster) {
  std::vector<int> ranks;
  for (int rank = 0; rank < topo.world_size(); ++rank) {
    const net::DeviceInfo& device = topo.device(rank);
    if (cluster >= 0 && device.cluster != cluster) continue;
    if (node_in_cluster >= 0 && device.node_in_cluster != node_in_cluster) {
      continue;
    }
    ranks.push_back(rank);
  }
  return ranks;
}

std::vector<int> straggler_ranks(const net::Topology& topo,
                                 const ComputeStraggler& s) {
  if (s.rank >= 0) {
    if (s.rank >= topo.world_size()) return {};
    return {s.rank};
  }
  return ranks_in_scope(topo, s.cluster, s.node_in_cluster);
}

std::string window_subject(const NicDegradation& w, std::size_t index) {
  std::ostringstream os;
  os << "nic_degradation[" << index << "]";
  if (w.cluster >= 0) os << " cluster " << w.cluster;
  if (w.node_in_cluster >= 0) os << " node " << w.node_in_cluster;
  return os.str();
}

// ---------------------------------------------------------------------------
// Measured stage speeds from an executed run
// ---------------------------------------------------------------------------

/// Effective busy seconds of `rank` in the executed graph: compute
/// occupancy plus the heavier direction of its primary NIC's port occupancy
/// (stretched occupancy under an active fault timeline, so degraded fabrics
/// register just like slow devices).
double effective_busy(const net::Topology& topo, const SimArtifacts& artifacts,
                      int rank) {
  const sim::SimResult& result = *artifacts.result;
  double busy = result.resource_busy(
      artifacts.compute_resource[static_cast<std::size_t>(rank)]);

  const net::DeviceInfo& device = topo.device(rank);
  double port = 0;
  if (device.nic == net::NicType::kEthernet) {
    // Node-shared ports: take the busiest Ethernet port of the rank's node.
    const std::string prefix =
        "node" + std::to_string(device.global_node) + ".Ethernet";
    for (std::size_t r = 0; r < artifacts.graph.resource_count(); ++r) {
      const std::string& name =
          artifacts.graph.resource_name(static_cast<sim::ResourceId>(r));
      if (name.compare(0, prefix.size(), prefix) == 0) {
        port = std::max(port,
                        result.resource_busy(static_cast<sim::ResourceId>(r)));
      }
    }
  } else {
    const std::string base = "gpu" + std::to_string(rank) + "." +
                             to_string(net::rdma_fabric(device.nic));
    for (std::size_t r = 0; r < artifacts.graph.resource_count(); ++r) {
      const std::string& name =
          artifacts.graph.resource_name(static_cast<sim::ResourceId>(r));
      if (name == base + ".tx" || name == base + ".rx") {
        port = std::max(port,
                        result.resource_busy(static_cast<sim::ResourceId>(r)));
      }
    }
  }
  return busy + port;
}

/// Per-virtual-stage speed weights measured from the faulted run: a stage's
/// speed is its hosted layer count over the slowest member device's
/// effective busy time — exactly the generalization of
/// bench_straggler's NIC-class speeds to *measured* speeds. Normalized so
/// the fastest stage weighs 1.
std::vector<double> measure_stage_weights(const net::Topology& topo,
                                          const TrainingPlan& plan,
                                          const SimArtifacts& artifacts) {
  const int p = plan.degrees.pipeline;
  const std::size_t stages = plan.partition.size();
  // Layers hosted per *physical* stage (virtual stages fold onto p).
  std::vector<int> phys_layers(static_cast<std::size_t>(p), 0);
  for (std::size_t v = 0; v < stages; ++v) {
    phys_layers[v % static_cast<std::size_t>(p)] += plan.partition[v];
  }
  std::vector<double> phys_busy(static_cast<std::size_t>(p), 0.0);
  for (int s = 0; s < p; ++s) {
    for (int rank : plan.groups.stage_ranks(s)) {
      phys_busy[static_cast<std::size_t>(s)] =
          std::max(phys_busy[static_cast<std::size_t>(s)],
                   effective_busy(topo, artifacts, rank));
    }
  }
  std::vector<double> weights(stages, 1.0);
  for (std::size_t v = 0; v < stages; ++v) {
    const std::size_t s = v % static_cast<std::size_t>(p);
    if (phys_busy[s] > 0 && phys_layers[s] > 0) {
      weights[v] = static_cast<double>(phys_layers[s]) / phys_busy[s];
    }
  }
  const double top = *std::max_element(weights.begin(), weights.end());
  if (top > 0) {
    for (double& w : weights) w /= top;
  }
  return weights;
}

RecoveryRun summarize(const IterationMetrics& metrics,
                      const SimArtifacts& artifacts) {
  RecoveryRun run;
  run.iteration_s = metrics.iteration_time;
  run.throughput = metrics.throughput;
  run.makespan_s = artifacts.result->makespan();
  return run;
}

/// HV504 for one executed leg: the leg's makespan must dominate its own
/// graph's fault-free flow chain bound (declared costs; NIC stretching only
/// ever grows spans, so the bound stays valid under any fault timeline).
void check_recovery_invariant(verify::LintReport& report,
                              const std::string& leg,
                              const SimArtifacts& artifacts) {
  const verify::FlowAnalysis flow = verify::analyze_flow(artifacts.graph);
  if (!flow.valid) return;
  const double makespan = artifacts.result->makespan();
  // Exact comparison is too strict across the stretching arithmetic; allow
  // the same relative tolerance the flow lints use.
  const double eps = 1e-9 * std::max(1.0, flow.chain_bound_s);
  if (makespan < flow.chain_bound_s - eps) {
    report.add(verify::kRuleRecoveryInvariant, verify::Severity::kError, leg,
               "recovered makespan " + format_seconds(makespan) +
                   " s beats the fault-free chain bound " +
                   format_seconds(flow.chain_bound_s) +
                   " s — recovery accounting is wrong");
  }
}

std::string json_int_array(const std::vector<int>& values) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << ",";
    os << values[i];
  }
  os << "]";
  return os.str();
}

std::string json_num_array(const std::vector<double>& values) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << ",";
    os << json_number(values[i]);
  }
  os << "]";
  return os.str();
}

void write_run_json(std::ostream& out, const RecoveryRun& run) {
  out << "{\"iteration_s\":" << json_number(run.iteration_s)
      << ",\"throughput\":" << json_number(run.throughput)
      << ",\"makespan_s\":" << json_number(run.makespan_s) << "}";
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& json) {
  const JsonValue doc = json_parse(json);
  if (!doc.is_object()) {
    throw ConfigError("fault plan: document must be a JSON object");
  }
  check_keys(doc, "fault plan",
             {"schema", "seed", "nic_degradation", "stragglers",
              "node_failure", "checkpoint"});
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || schema->as_string() != kFaultPlanSchema) {
    throw ConfigError(std::string("fault plan: expected schema \"") +
                      kFaultPlanSchema + "\"");
  }
  FaultPlan plan;
  plan.seed = static_cast<std::uint64_t>(num_or(doc, "seed", 0x5EED));
  if (const JsonValue* windows = doc.find("nic_degradation")) {
    for (const JsonValue& w : windows->as_array()) {
      plan.nic_degradation.push_back(parse_window(w));
    }
  }
  if (const JsonValue* stragglers = doc.find("stragglers")) {
    for (const JsonValue& s : stragglers->as_array()) {
      plan.stragglers.push_back(parse_straggler(s));
    }
  }
  if (const JsonValue* failure = doc.find("node_failure")) {
    check_keys(*failure, "node_failure", {"at_s", "cluster", "node_in_cluster"});
    plan.node_failure.at_s = num_or(*failure, "at_s", -1);
    plan.node_failure.cluster = int_or(*failure, "cluster", 0);
    plan.node_failure.node_in_cluster = int_or(*failure, "node_in_cluster", 0);
  }
  if (const JsonValue* ckpt = doc.find("checkpoint")) {
    check_keys(*ckpt, "checkpoint",
               {"period_iterations", "save_s", "restart_s"});
    plan.checkpoint.period_iterations = int_or(*ckpt, "period_iterations", 0);
    plan.checkpoint.save_s = num_or(*ckpt, "save_s", 0);
    plan.checkpoint.restart_s = num_or(*ckpt, "restart_s", 0);
  }
  return plan;
}

std::string fault_plan_json(const FaultPlan& plan) {
  std::ostringstream out;
  out << "{\"schema\":\"" << kFaultPlanSchema << "\",\"seed\":" << plan.seed
      << ",\"nic_degradation\":[";
  for (std::size_t i = 0; i < plan.nic_degradation.size(); ++i) {
    const NicDegradation& w = plan.nic_degradation[i];
    if (i > 0) out << ",";
    out << "{\"cluster\":" << w.cluster
        << ",\"node_in_cluster\":" << w.node_in_cluster
        << ",\"begin_s\":" << json_number(w.begin_s)
        << ",\"end_s\":" << json_number(w.end_s)
        << ",\"bandwidth_factor\":" << json_number(w.bandwidth_factor) << "}";
  }
  out << "],\"stragglers\":[";
  for (std::size_t i = 0; i < plan.stragglers.size(); ++i) {
    const ComputeStraggler& s = plan.stragglers[i];
    if (i > 0) out << ",";
    out << "{\"rank\":" << s.rank << ",\"cluster\":" << s.cluster
        << ",\"node_in_cluster\":" << s.node_in_cluster
        << ",\"slowdown\":" << json_number(s.slowdown) << "}";
  }
  out << "],\"node_failure\":{\"at_s\":" << json_number(plan.node_failure.at_s)
      << ",\"cluster\":" << plan.node_failure.cluster
      << ",\"node_in_cluster\":" << plan.node_failure.node_in_cluster
      << "},\"checkpoint\":{\"period_iterations\":"
      << plan.checkpoint.period_iterations
      << ",\"save_s\":" << json_number(plan.checkpoint.save_s)
      << ",\"restart_s\":" << json_number(plan.checkpoint.restart_s) << "}}";
  return out.str();
}

verify::LintReport lint_fault_plan(const FaultPlan& plan,
                                   const net::Topology& topo,
                                   double horizon_s) {
  verify::LintReport report;
  report.mark_checked(verify::kRuleFaultWindowSane);
  report.mark_checked(verify::kRuleFaultScopeValid);
  report.mark_checked(verify::kRuleCheckpointModelSane);

  // HV501: window and parameter sanity.
  for (std::size_t i = 0; i < plan.nic_degradation.size(); ++i) {
    const NicDegradation& w = plan.nic_degradation[i];
    const std::string subject = window_subject(w, i);
    if (w.begin_s < 0) {
      report.add(verify::kRuleFaultWindowSane, verify::Severity::kError,
                 subject, "window begins at negative simulated time " +
                              format_seconds(w.begin_s) + " s");
    }
    if (w.end_s <= w.begin_s) {
      report.add(verify::kRuleFaultWindowSane, verify::Severity::kError,
                 subject, "window end " + format_seconds(w.end_s) +
                              " s does not lie after its begin " +
                              format_seconds(w.begin_s) + " s");
    }
    if (w.bandwidth_factor <= 0) {
      report.add(verify::kRuleFaultWindowSane, verify::Severity::kError,
                 subject,
                 "bandwidth factor " + format_seconds(w.bandwidth_factor) +
                     " must be positive (use a small factor for a near-dead "
                     "link, node_failure for a dead one)");
    }
    if (horizon_s > 0 && w.begin_s >= horizon_s) {
      report.add(verify::kRuleFaultWindowSane, verify::Severity::kWarning,
                 subject, "window opens at " + format_seconds(w.begin_s) +
                              " s, after the simulated horizon " +
                              format_seconds(horizon_s) +
                              " s — it can never take effect");
    }
  }
  for (std::size_t i = 0; i < plan.stragglers.size(); ++i) {
    const ComputeStraggler& s = plan.stragglers[i];
    if (s.slowdown <= 0) {
      report.add(verify::kRuleFaultWindowSane, verify::Severity::kError,
                 "stragglers[" + std::to_string(i) + "]",
                 "slowdown " + format_seconds(s.slowdown) +
                     " must be positive");
    }
  }

  // HV502: every scope must resolve to at least one device.
  for (std::size_t i = 0; i < plan.nic_degradation.size(); ++i) {
    const NicDegradation& w = plan.nic_degradation[i];
    if (ranks_in_scope(topo, w.cluster, w.node_in_cluster).empty()) {
      report.add(verify::kRuleFaultScopeValid, verify::Severity::kError,
                 window_subject(w, i),
                 "scope resolves to no device in the topology");
    }
  }
  for (std::size_t i = 0; i < plan.stragglers.size(); ++i) {
    if (straggler_ranks(topo, plan.stragglers[i]).empty()) {
      report.add(verify::kRuleFaultScopeValid, verify::Severity::kError,
                 "stragglers[" + std::to_string(i) + "]",
                 "scope resolves to no device in the topology");
    }
  }
  if (plan.has_node_failure()) {
    const NodeFailure& f = plan.node_failure;
    const bool cluster_ok =
        f.cluster >= 0 && f.cluster < topo.cluster_count();
    const bool node_ok =
        cluster_ok && f.node_in_cluster >= 0 &&
        f.node_in_cluster < topo.cluster(f.cluster).nodes;
    if (!node_ok) {
      report.add(verify::kRuleFaultScopeValid, verify::Severity::kError,
                 "node_failure",
                 "names node " + std::to_string(f.node_in_cluster) +
                     " of cluster " + std::to_string(f.cluster) +
                     ", which does not exist in the topology");
    }
    if (horizon_s > 0 && f.at_s >= horizon_s) {
      report.add(verify::kRuleFaultWindowSane, verify::Severity::kWarning,
                 "node_failure",
                 "failure at " + format_seconds(f.at_s) +
                     " s lies after the simulated horizon " +
                     format_seconds(horizon_s) + " s");
    }
  }

  // HV503: the checkpoint model must be usable.
  if (plan.checkpoint.period_iterations < 0) {
    report.add(verify::kRuleCheckpointModelSane, verify::Severity::kError,
               "checkpoint", "period_iterations must be >= 0");
  }
  if (plan.checkpoint.save_s < 0 || plan.checkpoint.restart_s < 0) {
    report.add(verify::kRuleCheckpointModelSane, verify::Severity::kError,
               "checkpoint", "save_s and restart_s must be non-negative");
  }
  if (plan.has_node_failure() && plan.checkpoint.period_iterations <= 0) {
    report.add(verify::kRuleCheckpointModelSane, verify::Severity::kError,
               "checkpoint",
               "a node failure is scheduled but no checkpoint model exists "
               "to recover from (period_iterations must be > 0)");
  }
  return report;
}

Perturbations lower_fault_plan(const FaultPlan& plan,
                               const net::Topology& topo) {
  Perturbations perturb;
  perturb.seed = plan.seed;
  perturb.nic_degradation = plan.nic_degradation;
  for (const ComputeStraggler& s : plan.stragglers) {
    for (int rank : straggler_ranks(topo, s)) {
      auto [it, inserted] = perturb.device_slowdown.try_emplace(rank, 1.0);
      it->second *= s.slowdown;
    }
  }
  // Drop identity slowdowns so an all-1.0 plan still counts as empty.
  for (auto it = perturb.device_slowdown.begin();
       it != perturb.device_slowdown.end();) {
    it = it->second == 1.0 ? perturb.device_slowdown.erase(it) : ++it;
  }
  return perturb;
}

RecoveryReport run_fault_injection(const net::Topology& topo,
                                   const FaultPlan& plan,
                                   const RecoveryOptions& options) {
  RecoveryReport report;
  report.plan = plan;
  report.iterations = options.iterations;
  report.lint = lint_fault_plan(plan, topo);
  if (!report.lint.ok()) return report;  // valid stays false: nothing ran
  report.valid = true;

  const model::ParameterGroup& workload =
      model::parameter_group(options.group_id);
  const TrainingPlan static_plan =
      Planner(options.framework).plan(topo, workload);
  report.static_partition = static_plan.partition;
  const Perturbations perturb = lower_fault_plan(plan, topo);

  TrainingSimulator simulator;

  // Leg 1: fault-free baseline.
  SimArtifacts ff_artifacts;
  const IterationMetrics ff_metrics = simulator.run(
      topo, static_plan, options.iterations, {}, nullptr, &ff_artifacts);
  report.fault_free = summarize(ff_metrics, ff_artifacts);

  // Identity strings come from the canonical summary builder so the report
  // names things exactly like the run summary does.
  const obs::RunSummary identity =
      build_run_summary(topo, static_plan, ff_metrics, ff_artifacts);
  report.topology = identity.topology;
  report.framework = identity.framework;
  report.workload = identity.workload;

  // Leg 2: the static plan under the fault schedule.
  SimArtifacts fs_artifacts;
  const IterationMetrics fs_metrics =
      simulator.run(topo, static_plan, options.iterations, perturb, nullptr,
                    &fs_artifacts);
  report.faulted = summarize(fs_metrics, fs_artifacts);

  // Leg 3: measured-speed re-partition, simulated under the same faults.
  // A single measurement under-corrects: effective busy time folds in
  // communication that does not shrink when layers move off a slow stage,
  // so the first re-plan lands short of the balance point. Iterate
  // measure -> re-partition -> simulate until the partition stops changing
  // (bounded rounds; oscillation is broken by keeping the best-throughput
  // round). Each round is one deterministic simulation, so the loop — and
  // therefore the report — stays byte-stable.
  report.measured_weights =
      measure_stage_weights(topo, static_plan, fs_artifacts);
  std::vector<double> weights = report.measured_weights;
  TrainingPlan tuned = static_plan;
  IterationMetrics rp_metrics{};
  SimArtifacts rp_artifacts;  // best round's artifacts (HV504 below)
  std::vector<int> last_partition;  // last candidate actually simulated
  bool have_best = false;
  for (int round = 0; round < 4; ++round) {
    TrainingPlan candidate = static_plan;
    // Alpha 1.05 is the paper's Eq. (2) over-allocation: measured busy time
    // folds in communication and thus *over*estimates a slow stage's speed,
    // so fast stages deliberately get a little more than proportional.
    candidate.partition = pipeline::proportional_partition(
        workload.config.layers, weights, 1.05);
    if (candidate.partition == last_partition) break;  // fixed point
    last_partition = candidate.partition;
    SimArtifacts artifacts;
    const IterationMetrics metrics = simulator.run(
        topo, candidate, options.iterations, perturb, nullptr, &artifacts);
    weights = measure_stage_weights(topo, candidate, artifacts);
    if (!have_best || metrics.throughput > rp_metrics.throughput) {
      have_best = true;
      tuned = candidate;
      rp_metrics = metrics;
      rp_artifacts = std::move(artifacts);
    }
  }
  report.replanned_partition = tuned.partition;
  report.replanned = summarize(rp_metrics, rp_artifacts);
  report.recovered_makespan_s = report.replanned.makespan_s;

  const double lost = report.fault_free.throughput - report.faulted.throughput;
  const double regained =
      report.replanned.throughput - report.faulted.throughput;
  report.recovery_ratio =
      lost > 1e-12 ? regained / lost : (regained >= 0 ? 1.0 : 0.0);

  // Node loss: checkpoint-replay accounting plus an elastic re-plan on the
  // surviving topology.
  if (plan.has_node_failure()) {
    report.node_lost = true;
    report.restart_s = plan.checkpoint.restart_s;
    const NodeFailure& failure = plan.node_failure;
    report.failed_ranks = topo.cluster(failure.cluster).gpus_per_node;

    // A checkpoint taken at iteration i (1-based, every `period`) becomes
    // durable save_s after the iteration's marker finishes. The failure
    // destroys all progress since the last durable checkpoint.
    const sim::SimResult& fs_result = *fs_artifacts.result;
    const double horizon = fs_result.makespan();
    const double at = std::min(failure.at_s, horizon);
    const int period = plan.checkpoint.period_iterations;
    double last_durable = 0;
    for (int i = period; i <= options.iterations && period > 0; i += period) {
      const sim::TaskId marker =
          fs_artifacts.iteration_markers[static_cast<std::size_t>(i - 1)];
      const double durable =
          fs_result.timings()[static_cast<std::size_t>(marker)].finish +
          plan.checkpoint.save_s;
      if (durable <= at) {
        report.checkpointed_iterations = i;
        last_durable = durable;
      }
    }
    report.checkpoint_overhead_s =
        period > 0 ? plan.checkpoint.save_s *
                         (report.checkpointed_iterations / period)
                   : 0;
    report.lost_work_s = std::max(0.0, at - last_durable);
    report.downtime_s = report.lost_work_s + report.restart_s;

    // Shrink the topology by the dead node and re-plan on the survivors.
    std::vector<net::ClusterSpec> specs = topo.clusters();
    specs[static_cast<std::size_t>(failure.cluster)].nodes -= 1;
    std::erase_if(specs, [](const net::ClusterSpec& c) { return c.nodes == 0; });
    if (specs.empty()) {
      report.recoverable = false;
      report.unrecoverable_reason = "every node in the topology failed";
    } else {
      try {
        const net::Topology survivors(specs, topo.catalog());
        const TrainingPlan elastic_plan =
            Planner(options.framework).plan(survivors, workload);
        const Perturbations elastic_perturb =
            lower_fault_plan(plan, survivors);
        SimArtifacts el_artifacts;
        const IterationMetrics el_metrics =
            simulator.run(survivors, elastic_plan, options.iterations,
                          elastic_perturb, nullptr, &el_artifacts);
        report.recoverable = true;
        report.elastic_throughput = el_metrics.throughput;
        const int remaining =
            options.iterations - report.checkpointed_iterations;
        report.recovered_makespan_s =
            at + report.checkpoint_overhead_s + report.restart_s +
            static_cast<double>(remaining) * el_metrics.iteration_time;
        check_recovery_invariant(report.lint, "elastic", el_artifacts);
      } catch (const ConfigError& e) {
        report.recoverable = false;
        report.unrecoverable_reason = e.what();
      }
    }
  }

  // HV504 on every executed leg.
  report.lint.mark_checked(verify::kRuleRecoveryInvariant);
  check_recovery_invariant(report.lint, "faulted", fs_artifacts);
  check_recovery_invariant(report.lint, "replanned", rp_artifacts);

  // Critical-path attribution delta (faulted vs fault-free), joined by
  // bucket name, plus the synthetic recovery buckets.
  const obs::CriticalPathSummary ff_path =
      build_critical_path_summary(topo, static_plan, ff_metrics, ff_artifacts);
  const obs::CriticalPathSummary fs_path =
      build_critical_path_summary(topo, static_plan, fs_metrics, fs_artifacts);
  std::map<std::string, RecoveryReport::BucketDelta> joined;
  for (const obs::CriticalPathSummary::Bucket& b : ff_path.buckets) {
    joined[b.name].name = b.name;
    joined[b.name].fault_free_s = b.seconds;
  }
  for (const obs::CriticalPathSummary::Bucket& b : fs_path.buckets) {
    joined[b.name].name = b.name;
    joined[b.name].faulted_s = b.seconds;
  }
  if (report.node_lost) {
    joined["recovery/lost_work"] = {"recovery/lost_work", 0,
                                    report.lost_work_s, 0};
    joined["recovery/restart"] = {"recovery/restart", 0, report.restart_s, 0};
    joined["recovery/checkpoint_save"] = {"recovery/checkpoint_save", 0,
                                          report.checkpoint_overhead_s, 0};
  }
  for (auto& [name, delta] : joined) {
    delta.delta_s = delta.faulted_s - delta.fault_free_s;
    report.bucket_deltas.push_back(delta);
  }

  // Per-NIC-class occupancy shape delta, each leg bucketed over its own
  // full run so the curves compare even though faults stretch the span.
  const auto class_occupancy = [](const SimArtifacts& artifacts) {
    const obs::Timeline timeline = obs::extract_timeline(
        artifacts.graph, *artifacts.result, {},
        [](const std::string& name) -> std::string {
          if (name.find(".compute") != std::string::npos) return "compute";
          return nic_class_of(name);
        });
    std::map<std::string, std::vector<double>> curves;
    for (const obs::ClassTimeline& cls : timeline.classes) {
      std::vector<double> values =
          cls.busy_ports.bucketize(timeline.window.begin, timeline.window.end,
                                   RecoveryReport::kTimelineBuckets);
      if (cls.ports > 0) {
        for (double& v : values) v /= static_cast<double>(cls.ports);
      }
      curves[cls.nic_class] = std::move(values);
    }
    return curves;
  };
  const std::map<std::string, std::vector<double>> ff_curves =
      class_occupancy(ff_artifacts);
  const std::map<std::string, std::vector<double>> fs_curves =
      class_occupancy(fs_artifacts);
  std::map<std::string, RecoveryReport::ClassOccupancyDelta> shapes;
  for (const auto& [name, curve] : ff_curves) {
    shapes[name].nic_class = name;
    shapes[name].fault_free = curve;
  }
  for (const auto& [name, curve] : fs_curves) {
    shapes[name].nic_class = name;
    shapes[name].faulted = curve;
  }
  for (auto& [name, shape] : shapes) {
    const std::vector<double> zeros(RecoveryReport::kTimelineBuckets, 0.0);
    if (shape.fault_free.empty()) shape.fault_free = zeros;
    if (shape.faulted.empty()) shape.faulted = zeros;
    shape.delta.resize(RecoveryReport::kTimelineBuckets);
    for (int b = 0; b < RecoveryReport::kTimelineBuckets; ++b) {
      shape.delta[static_cast<std::size_t>(b)] =
          shape.faulted[static_cast<std::size_t>(b)] -
          shape.fault_free[static_cast<std::size_t>(b)];
    }
    report.timeline_deltas.push_back(shape);
  }
  return report;
}

void write_recovery_report_json(std::ostream& out,
                                const RecoveryReport& report) {
  out << "{\"schema\":\"" << kRecoveryReportSchema << "\",\"verdict\":\""
      << (report.valid && report.lint.ok() ? "pass" : "fail")
      << "\",\"valid\":" << (report.valid ? "true" : "false")
      << ",\"topology\":\"" << json_escape(report.topology)
      << "\",\"framework\":\"" << json_escape(report.framework)
      << "\",\"workload\":\"" << json_escape(report.workload)
      << "\",\"iterations\":" << report.iterations
      << ",\"fault_plan\":" << fault_plan_json(report.plan);
  out << ",\"fault_free\":";
  write_run_json(out, report.fault_free);
  out << ",\"faulted\":";
  write_run_json(out, report.faulted);
  out << ",\"replanned\":";
  write_run_json(out, report.replanned);
  out << ",\"static_partition\":" << json_int_array(report.static_partition)
      << ",\"replanned_partition\":"
      << json_int_array(report.replanned_partition)
      << ",\"measured_weights\":" << json_num_array(report.measured_weights)
      << ",\"recovery_ratio\":" << json_number(report.recovery_ratio)
      << ",\"recovered_makespan_s\":"
      << json_number(report.recovered_makespan_s);
  out << ",\"node_failure\":{\"occurred\":"
      << (report.node_lost ? "true" : "false")
      << ",\"recoverable\":" << (report.recoverable ? "true" : "false")
      << ",\"reason\":\"" << json_escape(report.unrecoverable_reason)
      << "\",\"failed_ranks\":" << report.failed_ranks
      << ",\"checkpointed_iterations\":" << report.checkpointed_iterations
      << ",\"checkpoint_overhead_s\":"
      << json_number(report.checkpoint_overhead_s)
      << ",\"lost_work_s\":" << json_number(report.lost_work_s)
      << ",\"restart_s\":" << json_number(report.restart_s)
      << ",\"downtime_s\":" << json_number(report.downtime_s)
      << ",\"elastic_throughput\":" << json_number(report.elastic_throughput)
      << "}";
  out << ",\"critical_path_delta\":[";
  for (std::size_t i = 0; i < report.bucket_deltas.size(); ++i) {
    const RecoveryReport::BucketDelta& d = report.bucket_deltas[i];
    if (i > 0) out << ",";
    out << "{\"name\":\"" << json_escape(d.name)
        << "\",\"fault_free_s\":" << json_number(d.fault_free_s)
        << ",\"faulted_s\":" << json_number(d.faulted_s)
        << ",\"delta_s\":" << json_number(d.delta_s) << "}";
  }
  out << "],\"timeline_delta\":[";
  for (std::size_t i = 0; i < report.timeline_deltas.size(); ++i) {
    const RecoveryReport::ClassOccupancyDelta& d = report.timeline_deltas[i];
    if (i > 0) out << ",";
    out << "{\"class\":\"" << json_escape(d.nic_class)
        << "\",\"fault_free\":" << json_num_array(d.fault_free)
        << ",\"faulted\":" << json_num_array(d.faulted)
        << ",\"delta\":" << json_num_array(d.delta) << "}";
  }
  out << "],\"lint\":";
  verify::write_json(out, report.lint);
  out << "}";
}

void print_recovery_report(std::ostream& out, const RecoveryReport& report) {
  out << "fault injection: " << report.framework << " on " << report.topology
      << ", " << report.workload << "\n";
  if (!report.valid) {
    out << "  fault plan rejected by pre-flight lints:\n";
    verify::print_text(out, report.lint);
    return;
  }
  auto line = [&](const char* label, const RecoveryRun& run) {
    out << "  " << label << "iteration " << format_seconds(run.iteration_s)
        << " s, throughput " << format_seconds(run.throughput)
        << " samples/s\n";
  };
  line("fault-free  ", report.fault_free);
  line("faulted     ", report.faulted);
  line("re-planned  ", report.replanned);
  out << "  recovery ratio " << format_seconds(report.recovery_ratio)
      << " (share of lost throughput regained by the measured-speed "
         "re-partition)\n";
  if (report.node_lost) {
    out << "  node failure at " << format_seconds(report.plan.node_failure.at_s)
        << " s: " << report.failed_ranks << " ranks lost, "
        << report.checkpointed_iterations
        << " iterations checkpointed, lost work "
        << format_seconds(report.lost_work_s) << " s, downtime "
        << format_seconds(report.downtime_s) << " s\n";
    if (report.recoverable) {
      out << "  elastic re-plan on survivors: throughput "
          << format_seconds(report.elastic_throughput)
          << " samples/s, recovered makespan "
          << format_seconds(report.recovered_makespan_s) << " s\n";
    } else {
      out << "  unrecoverable: " << report.unrecoverable_reason << "\n";
    }
  }
  for (const RecoveryReport::ClassOccupancyDelta& d : report.timeline_deltas) {
    double ff = 0;
    double fs = 0;
    for (double v : d.fault_free) ff += v;
    for (double v : d.faulted) fs += v;
    ff /= RecoveryReport::kTimelineBuckets;
    fs /= RecoveryReport::kTimelineBuckets;
    out << "  " << d.nic_class << " occupancy: fault-free "
        << format_seconds(ff * 100) << "%, faulted "
        << format_seconds(fs * 100)
        << "% (shape curves in the JSON timeline_delta)\n";
  }
  verify::print_text(out, report.lint);
}

}  // namespace holmes::core
