#include "core/cost_model.h"

#include "obs/self_profile.h"
#include "util/error.h"

namespace holmes::core {

SimTime CostModel::compute_seconds(double flops, int tensor_parallel) const {
  HOLMES_CHECK_MSG(flops >= 0, "negative FLOP count");
  HOLMES_CHECK_MSG(tensor_parallel >= 1, "tensor parallel degree must be >= 1");
  obs::self_profile::count(&obs::SelfProfileCounters::cost_model_evals);
  double rate = peak_tflops * 1e12 * mfu;
  if (tensor_parallel > 1) rate *= tp_efficiency;
  return flops / rate;
}

SimTime CostModel::optimizer_seconds(double elems) const {
  HOLMES_CHECK_MSG(elems >= 0, "negative element count");
  obs::self_profile::count(&obs::SelfProfileCounters::cost_model_evals);
  return elems / optimizer_elems_per_sec;
}

double CostModel::nic_interference(net::NicType nic) const {
  switch (nic) {
    case net::NicType::kInfiniBand: return 1.0;
    case net::NicType::kRoCE: return roce_interference;
    case net::NicType::kEthernet: return ethernet_interference;
  }
  return 1.0;
}

}  // namespace holmes::core
