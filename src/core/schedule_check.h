#pragma once

/// \file schedule_check.h
/// End-to-end schedule-race determinism check over a full training run.
///
/// verify::check_determinism probes a bare task graph; this module drives
/// the same probe through the whole pipeline the CLI exercises: plan ->
/// TrainingSimulator -> run summary + critical path JSON. The canonical run
/// is serialized once, then every seeded tie permutation re-runs the
/// simulator and the two documents are byte-compared. Any differing byte is
/// a schedule race (HV405): either the executor's outcome depends on how
/// equal-ready-time ties happen to be ordered, or downstream accounting is
/// order-sensitive. The HV4xx flow cross-checks (static lower bound vs
/// simulated makespan) ride along on the canonical artifacts, so a single
/// `holmes_cli check` invocation validates both the bounds and the
/// determinism story for a configuration.
///
/// The result serializes as `holmes.check_report.v1` — fingerprint-stamped,
/// byte-stable for fixed inputs.

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/plan.h"
#include "core/training_sim.h"
#include "net/topology.h"
#include "sim/executor.h"
#include "util/build_info.h"
#include "verify/flow_lints.h"

namespace holmes::core {

struct ScheduleCheckOptions {
  /// Seeded tie-permutation re-runs compared against the canonical run.
  int permutations = 5;
  /// Base seed; permutation k runs with tie_seed = base_seed + k.
  std::uint64_t base_seed = 0x484F4C4D4553ull;  // "HOLMES"
  /// Permutation policy (see sim::TieBreak). The resource-disjoint default
  /// must never diverge; `kPermuteAll` additionally flags schedules whose
  /// outcome depends on tie order among resource-sharing tasks.
  sim::TieBreak tie_break = sim::TieBreak::kPermuteDisjoint;
  /// Simulated training iterations per run (TrainingSimulator::run).
  int iterations = 3;
  /// Worker threads for the permutation fan-out (1 = serial in the calling
  /// thread, 0 = hardware concurrency). The permuted runs are independent
  /// simulations compared in seed order, so the report is byte-identical at
  /// any thread count (sim::ScenarioRunner's contract).
  std::size_t threads = 1;
  /// Perturbations applied identically to the canonical run and every tie
  /// permutation — a fault plan's degradation windows and stragglers lower
  /// to these (core/faults.h), so `holmes_cli check --fault-plan` proves the
  /// determinism contract holds *with the faults active*. When NIC windows
  /// are present the HV402 cross-check tolerates stretched busy time
  /// (verify::FlowLintOptions::allow_stretched).
  Perturbations perturbations;
};

/// Everything one check run produces: the merged lint report (HV4xx flow
/// rules on the canonical artifacts plus any HV405 divergences), the flow
/// analysis itself, and the comparison bookkeeping the report serializes.
struct ScheduleCheckResult {
  verify::LintReport report;
  verify::FlowAnalysis flow;
  double makespan_s = 0;      ///< canonical run's makespan
  int permutations = 0;       ///< re-runs actually compared
  int diverged = 0;           ///< re-runs whose JSON differed
  sim::TieBreak tie_break = sim::TieBreak::kPermuteDisjoint;
  std::uint64_t base_seed = 0;
};

/// Human-readable policy name for CLI flags and reports ("canonical",
/// "disjoint", "all").
std::string to_string(sim::TieBreak tie_break);

/// Runs the canonical simulation of `plan` on `topo`, serializes its
/// `holmes.run_summary.v1` and `holmes.critical_path.v1` documents, then
/// re-runs under `options.permutations` seeded tie permutations and
/// byte-compares both documents against the canonical bytes. Divergences
/// are reported as HV405 errors naming the first task whose timing differs;
/// the HV4xx flow lints on the canonical artifacts are merged in.
ScheduleCheckResult check_schedule_determinism(
    const net::Topology& topo, const TrainingPlan& plan,
    const ScheduleCheckOptions& options = {});

inline constexpr const char* kCheckReportSchema = "holmes.check_report.v1";

/// Writes the check result as a single stable JSON object (no trailing
/// newline): schema, build fingerprint, verdict, the permutation setup and
/// divergence count, the flow bounds next to the simulated makespan, and
/// the nested (unstamped) lint report.
void write_check_report_json(std::ostream& out,
                             const ScheduleCheckResult& result,
                             const BuildInfo& fingerprint);

}  // namespace holmes::core
