#pragma once

/// \file timeline_report.h
/// Builds the stable `holmes.timeline.v1` document from a simulated run.
///
/// obs/timeline.h extracts the exact time-resolved telemetry; this module
/// joins it with the plan's identity strings and the topology's NIC naming
/// (core::nic_class_of), runs the HV406 fallback-fabric saturation lint
/// over the class occupancy curves, and serializes the result as
/// fingerprint-stamped, byte-stable JSON plus a terminal report with ASCII
/// sparklines — everything `holmes_cli timeline` surfaces.
///
/// Exactness and determinism contract: every scalar aggregate in the
/// document is bit-identical to the accounting layer's (obs/accounting.h)
/// for the same window, the bucketed curves are pure deterministic
/// functions of the executed timings, and the document is byte-identical
/// whether extraction ran serially or fanned across threads, and across
/// resource-disjoint tie-break seeds (the schedule-stability the HV405
/// checker proves).

#include <iosfwd>
#include <string>

#include "core/plan.h"
#include "core/training_sim.h"
#include "net/topology.h"
#include "obs/timeline.h"
#include "verify/diagnostics.h"

namespace holmes::core {

inline constexpr const char* kTimelineSchema = "holmes.timeline.v1";

/// Options for build_timeline_summary (holmes_cli timeline's knobs).
struct TimelineReportOptions {
  /// When true, clip to [max(0, window_begin), window_end < 0 ? makespan :
  /// min(window_end, makespan)) — `explain --window` semantics — instead
  /// of the default full run. Throws when the clipped window is empty.
  bool override_window = false;
  double window_begin = 0;
  double window_end = -1;
  /// Resolution of the bucketed curves in the JSON and the sparklines.
  int buckets = 48;
  /// Keep only resources whose name contains this substring (classes,
  /// channels, and aggregates always cover every resource).
  std::string resource_filter;
  /// Cap on the reported top-talker ranking.
  int top_talkers = 8;
  /// An instant saturates a NIC class when at least this fraction of the
  /// class's ports is simultaneously busy.
  double saturation_threshold = 1.0;
  /// HV406 fires when the Ethernet fallback is saturated for more than
  /// this share of the observed window.
  double saturation_warn_share = 0.25;
  /// Extraction threads; byte-identical output regardless.
  int threads = 1;
};

struct TimelineSummary {
  std::string topology;
  std::string framework;
  std::string workload;
  double iteration_s = 0;
  obs::Timeline timeline;
  TimelineReportOptions options;  ///< as resolved by the builder
  verify::LintReport lint;        ///< HV406 saturation diagnosis
};

/// Extracts the timeline of `artifacts` (which must be populated) and runs
/// the saturation lint. The artifacts' persisted rate timeline feeds the
/// effective-rate overlays.
TimelineSummary build_timeline_summary(
    const net::Topology& topo, const TrainingPlan& plan,
    const IterationMetrics& metrics, const SimArtifacts& artifacts,
    const TimelineReportOptions& options = {});

/// Stable holmes.timeline.v1 JSON, fingerprint-stamped, fixed key order,
/// no trailing newline: byte-identical for identical runs.
void write_timeline_json(std::ostream& out, const TimelineSummary& summary);

/// Terminal report: per-class occupancy sparklines with saturation totals,
/// top talkers, per-channel peaks, rate overlays, and the lint verdict.
void print_timeline(std::ostream& out, const TimelineSummary& summary);

}  // namespace holmes::core
