#include "core/schedule_check.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/preflight.h"
#include "core/run_stats.h"
#include "obs/critical_path.h"
#include "obs/summary.h"
#include "sim/scenario_runner.h"
#include "util/json.h"
#include "verify/rules.h"

namespace holmes::core {
namespace {

/// One full simulated run plus the two byte-stable documents the check
/// compares across tie permutations.
struct RunSnapshot {
  IterationMetrics metrics;
  SimArtifacts artifacts;
  std::string run_summary_json;
  std::string critical_path_json;
};

RunSnapshot run_once(const net::Topology& topo, const TrainingPlan& plan,
                     int iterations, const Perturbations& perturbations,
                     const sim::ExecutorOptions& exec) {
  RunSnapshot snap;
  TrainingSimulator simulator;
  simulator.set_executor_options(exec);
  snap.metrics = simulator.run(topo, plan, iterations, perturbations,
                               /*chrome_trace=*/nullptr, &snap.artifacts);
  {
    std::ostringstream oss;
    obs::write_json(oss,
                    build_run_summary(topo, plan, snap.metrics, snap.artifacts));
    snap.run_summary_json = oss.str();
  }
  {
    std::ostringstream oss;
    obs::write_json(oss, build_critical_path_summary(topo, plan, snap.metrics,
                                                     snap.artifacts));
    snap.critical_path_json = oss.str();
  }
  return snap;
}

std::string task_subject(const sim::TaskGraph& graph, sim::TaskId id) {
  std::string subject = "task " + std::to_string(id);
  const std::string& label = graph.task(id).label;
  if (!label.empty()) subject += " '" + label + "'";
  return subject;
}

std::string format_seconds(double s) {
  std::ostringstream os;
  os.precision(12);
  os << s;
  return os.str();
}

/// Names the first task whose timing differs bitwise between the canonical
/// and a permuted run, or falls back to the coarser signals (busy time,
/// makespan, serialized accounting) when every timing matched.
std::pair<std::string, std::string> describe_divergence(
    const RunSnapshot& canonical, const RunSnapshot& permuted,
    std::uint64_t seed) {
  std::ostringstream os;
  os << "tie permutation (seed " << seed << ") ";
  const sim::SimResult& base = *canonical.artifacts.result;
  const sim::SimResult& perm = *permuted.artifacts.result;
  const std::size_t n = canonical.artifacts.graph.task_count();
  if (perm.timings().size() == n) {
    for (std::size_t i = 0; i < n; ++i) {
      const sim::TaskTiming& a = base.timings()[i];
      const sim::TaskTiming& b = perm.timings()[i];
      if (a.start != b.start || a.finish != b.finish) {
        os << "moved it from start " << format_seconds(a.start) << " s to "
           << format_seconds(b.start) << " s (finish "
           << format_seconds(a.finish) << " s -> " << format_seconds(b.finish)
           << " s)";
        return {task_subject(canonical.artifacts.graph,
                             static_cast<sim::TaskId>(i)),
                os.str()};
      }
    }
  }
  if (base.makespan() != perm.makespan()) {
    os << "changed the makespan from " << format_seconds(base.makespan())
       << " s to " << format_seconds(perm.makespan()) << " s";
    return {"run", os.str()};
  }
  os << "changed the serialized "
     << (canonical.run_summary_json != permuted.run_summary_json
             ? "run summary"
             : "critical path")
     << " without moving any task timing (order-sensitive accounting)";
  return {"run", os.str()};
}

}  // namespace

std::string to_string(sim::TieBreak tie_break) {
  switch (tie_break) {
    case sim::TieBreak::kCanonical:
      return "canonical";
    case sim::TieBreak::kPermuteDisjoint:
      return "disjoint";
    case sim::TieBreak::kPermuteAll:
      return "all";
  }
  return "unknown";
}

ScheduleCheckResult check_schedule_determinism(
    const net::Topology& topo, const TrainingPlan& plan,
    const ScheduleCheckOptions& options) {
  ScheduleCheckResult result;
  result.tie_break = options.tie_break;
  result.base_seed = options.base_seed;

  const RunSnapshot canonical =
      run_once(topo, plan, options.iterations, options.perturbations,
               sim::ExecutorOptions{});
  result.makespan_s = canonical.artifacts.result->makespan();
  result.flow = verify::analyze_flow(canonical.artifacts.graph);

  // The flow bounds ride along on the canonical run: static lower bound vs
  // simulated makespan (HV401/HV402), buffer watermark (HV403), cluster-cut
  // balance (HV404). Active NIC degradation windows stretch occupancy, so
  // HV402 must tolerate busy time above the static load.
  verify::FlowLintOptions flow_options =
      make_flow_options(canonical.artifacts, topo);
  flow_options.allow_stretched = !options.perturbations.nic_degradation.empty();
  result.report.merge(verify::lint_flow(verify::as_ref(canonical.artifacts.graph),
                                        &*canonical.artifacts.result,
                                        flow_options));

  result.report.mark_checked(verify::kRuleScheduleRace);
  // Permuted runs are independent simulations; fan them across a pool when
  // asked. Divergences are compared and reported in seed order afterwards,
  // so the report bytes do not depend on the thread count.
  std::vector<RunSnapshot> permuted(
      static_cast<std::size_t>(std::max(options.permutations, 0)));
  auto run_permutation = [&](std::size_t k) {
    sim::ExecutorOptions exec;
    exec.tie_break = options.tie_break;
    exec.tie_seed = options.base_seed + static_cast<std::uint64_t>(k);
    permuted[k] =
        run_once(topo, plan, options.iterations, options.perturbations, exec);
  };
  if (options.threads == 1 || permuted.size() <= 1) {
    for (std::size_t k = 0; k < permuted.size(); ++k) run_permutation(k);
  } else {
    sim::ScenarioRunner runner(options.threads);
    runner.run_all(permuted.size(), run_permutation);
  }
  for (std::size_t k = 0; k < permuted.size(); ++k) {
    const std::uint64_t seed = options.base_seed + static_cast<std::uint64_t>(k);
    const RunSnapshot& snap = permuted[k];
    result.permutations += 1;
    if (snap.run_summary_json == canonical.run_summary_json &&
        snap.critical_path_json == canonical.critical_path_json) {
      continue;
    }
    result.diverged += 1;
    auto [subject, message] = describe_divergence(canonical, snap, seed);
    result.report.add(verify::kRuleScheduleRace, verify::Severity::kError,
                      std::move(subject), std::move(message));
  }
  return result;
}

void write_check_report_json(std::ostream& out,
                             const ScheduleCheckResult& result,
                             const BuildInfo& fingerprint) {
  out << "{\"schema\":\"" << kCheckReportSchema << "\",\"fingerprint\":";
  write_build_info_json(out, fingerprint);
  out << ",\"verdict\":\"" << (result.report.ok() ? "pass" : "fail") << "\""
      << ",\"policy\":\"" << to_string(result.tie_break) << "\""
      << ",\"permutations\":" << result.permutations
      << ",\"diverged\":" << result.diverged
      << ",\"base_seed\":" << result.base_seed
      << ",\"makespan_s\":" << json_number(result.makespan_s)
      << ",\"flow\":{\"chain_bound_s\":" << json_number(result.flow.chain_bound_s)
      << ",\"resource_bound_s\":" << json_number(result.flow.resource_bound_s)
      << ",\"makespan_bound_s\":" << json_number(result.flow.makespan_bound_s)
      << ",\"bound_fraction\":"
      << json_number(result.makespan_s > 0
                         ? result.flow.makespan_bound_s / result.makespan_s
                         : 0.0);
  Bytes peak = 0;
  std::string peak_endpoint;
  for (const verify::FlowAnalysis::EndpointWatermark& w :
       result.flow.watermarks) {
    if (w.peak_bytes > peak) {
      peak = w.peak_bytes;
      peak_endpoint = w.endpoint;
    }
  }
  out << ",\"peak_inflight_bytes\":" << peak << ",\"peak_inflight_endpoint\":\""
      << json_escape(peak_endpoint) << "\"}";
  out << ",\"lint\":";
  verify::write_json(out, result.report);
  out << "}";
}

}  // namespace holmes::core
