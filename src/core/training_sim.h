#pragma once

/// \file training_sim.h
/// Lowers a TrainingPlan into per-iteration task graphs and simulates them.
///
/// Several iterations are chained (default 3) and the metrics are read from
/// the *last* one, so steady-state effects — the overlapped optimizer's
/// parameter all-gather hiding under the next iteration's forward pass,
/// warm pipelines — emerge from the dependency structure rather than being
/// modeled analytically.

#include <iosfwd>

#include "core/cost_model.h"
#include "core/perturbation.h"
#include "core/plan.h"
#include "util/units.h"

namespace holmes::core {

struct IterationMetrics {
  SimTime iteration_time = 0;   ///< steady-state seconds per iteration
  double tflops_per_gpu = 0;    ///< Eq. (6) FLOPs / (time * N), in TFLOP/s
  double throughput = 0;        ///< samples (sequences) per second, aggregate

  /// Wall-span of the gradient reduce-scatter (or all-reduce, for the
  /// classic DDP strategy) in the measured iteration — Fig. 3's metric.
  SimTime grad_sync_span = 0;
  /// Wall-span of the parameter all-gather (distributed optimizers only).
  SimTime param_allgather_span = 0;
  /// Wall-span of the optimizer step compute.
  SimTime optimizer_span = 0;
  /// Aggregate busy seconds of forward / backward compute across devices.
  SimTime forward_busy = 0;
  SimTime backward_busy = 0;

  std::size_t task_count = 0;   ///< simulated tasks across all iterations
};

class TrainingSimulator {
 public:
  explicit TrainingSimulator(CostModel cost = {}) : cost_(cost) {}

  /// Simulates `iterations` chained training iterations of `plan` on
  /// `topo` and reports steady-state metrics from the last one.
  /// `iterations` must be >= 2 (one warm-up minimum). `perturbations`
  /// optionally slows individual devices or adds seeded compute jitter
  /// (see core/perturbation.h).
  IterationMetrics run(const net::Topology& topo, const TrainingPlan& plan,
                       int iterations = 3,
                       const Perturbations& perturbations = {},
                       std::ostream* chrome_trace = nullptr) const;

  const CostModel& cost_model() const { return cost_; }

 private:
  CostModel cost_;
};

}  // namespace holmes::core
